// The versioned binary trace/catalog formats (BINARY_FORMAT.md). Three
// contracts under test: the text and binary encodings are interchangeable
// (byte-identical text -> binary -> text round trip, byte-identical metric
// JSON whichever format replays the workload), a catalog survives its round
// trip with every derived constant intact, and corrupt/truncated/mismatched
// files fail with a Status — never a crash, never a half-mutated catalog.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "catalog/binary_io.h"
#include "catalog/file_catalog.h"
#include "catalog/workload.h"
#include "common/rng.h"
#include "core/config_io.h"
#include "core/experiment.h"

namespace locaware::catalog {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class BinaryFormatFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    CatalogConfig ccfg;
    ccfg.num_files = 300;
    ccfg.keyword_pool_size = 900;
    Rng catalog_rng(7);
    catalog_ = std::move(FileCatalog::Generate(ccfg, &catalog_rng)).ValueOrDie();
    WorkloadConfig wcfg;
    wcfg.num_queries = 400;
    Rng workload_rng(8);
    workload_ = std::move(QueryWorkload::Generate(wcfg, catalog_, /*num_peers=*/150,
                                                  &workload_rng))
                    .ValueOrDie();
  }

  std::string Temp(const std::string& name) const {
    return ::testing::TempDir() + "/locaware_binfmt_" + name;
  }

  FileCatalog catalog_;
  QueryWorkload workload_;
};

TEST_F(BinaryFormatFixture, TextToBinaryToTextIsByteIdentical) {
  // The `locaware_cli convert` path: each hop through a scratch catalog must
  // preserve the stream exactly, so text -> binary -> text reproduces the
  // original file byte for byte.
  const std::string text1 = Temp("rt1.trace");
  const std::string bin = Temp("rt.bin");
  const std::string text2 = Temp("rt2.trace");
  ASSERT_TRUE(workload_.SaveTrace(text1, catalog_).ok());

  FileCatalog scratch1;
  auto loaded_text = QueryWorkload::LoadAuto(text1, &scratch1);
  ASSERT_TRUE(loaded_text.ok()) << loaded_text.status().ToString();
  ASSERT_TRUE(loaded_text.ValueOrDie().SaveBinary(bin, scratch1).ok());

  FileCatalog scratch2;
  auto loaded_bin = QueryWorkload::LoadAuto(bin, &scratch2);
  ASSERT_TRUE(loaded_bin.ok()) << loaded_bin.status().ToString();
  ASSERT_TRUE(loaded_bin.ValueOrDie().SaveTrace(text2, scratch2).ok());

  EXPECT_EQ(ReadFileBytes(text1), ReadFileBytes(text2));
  std::remove(text1.c_str());
  std::remove(bin.c_str());
  std::remove(text2.c_str());
}

TEST_F(BinaryFormatFixture, BinaryReplayMatchesTheOriginalStream) {
  const std::string path = Temp("stream.bin");
  ASSERT_TRUE(workload_.SaveBinary(path, catalog_).ok());
  // Loading through the *same* catalog resolves to the same ids, so every
  // field must match the generated stream exactly.
  auto loaded = QueryWorkload::LoadBinary(path, &catalog_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& replay = loaded.ValueOrDie().queries();
  ASSERT_EQ(replay.size(), workload_.queries().size());
  for (size_t i = 0; i < replay.size(); ++i) {
    const QueryEvent& a = workload_.queries()[i];
    const QueryEvent& b = replay[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.requester, b.requester);
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.submit_time, b.submit_time);
    EXPECT_EQ(a.keywords, b.keywords);
  }
  std::remove(path.c_str());
}

TEST_F(BinaryFormatFixture, LoadAutoSniffsBothFormats) {
  const std::string text = Temp("auto.trace");
  const std::string bin = Temp("auto.bin");
  ASSERT_TRUE(workload_.SaveTrace(text, catalog_).ok());
  ASSERT_TRUE(workload_.SaveBinary(bin, catalog_).ok());
  auto from_text = QueryWorkload::LoadAuto(text, &catalog_);
  auto from_bin = QueryWorkload::LoadAuto(bin, &catalog_);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(from_bin.ok());
  ASSERT_EQ(from_text.ValueOrDie().queries().size(),
            from_bin.ValueOrDie().queries().size());
  for (size_t i = 0; i < from_text.ValueOrDie().queries().size(); ++i) {
    EXPECT_EQ(from_text.ValueOrDie().queries()[i].keywords,
              from_bin.ValueOrDie().queries()[i].keywords);
  }
  std::remove(text.c_str());
  std::remove(bin.c_str());
}

TEST_F(BinaryFormatFixture, PeekTraceQueryCountReadsBothFormats) {
  const std::string text = Temp("peek.trace");
  const std::string bin = Temp("peek.bin");
  ASSERT_TRUE(workload_.SaveTrace(text, catalog_).ok());
  ASSERT_TRUE(workload_.SaveBinary(bin, catalog_).ok());
  auto text_count = PeekTraceQueryCount(text);
  auto bin_count = PeekTraceQueryCount(bin);
  ASSERT_TRUE(text_count.ok());
  ASSERT_TRUE(bin_count.ok());
  EXPECT_EQ(text_count.ValueOrDie(), workload_.queries().size());
  EXPECT_EQ(bin_count.ValueOrDie(), workload_.queries().size());
  std::remove(text.c_str());
  std::remove(bin.c_str());
}

TEST_F(BinaryFormatFixture, CatalogRoundTripRebuildsEveryDerivedConstant) {
  const std::string path = Temp("catalog.bin");
  ASSERT_TRUE(catalog_.SaveBinary(path).ok());
  auto loaded = FileCatalog::LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const FileCatalog& copy = loaded.ValueOrDie();
  ASSERT_EQ(copy.num_files(), catalog_.num_files());
  ASSERT_EQ(copy.num_keywords(), catalog_.num_keywords());
  ASSERT_EQ(copy.keywords_per_file(), catalog_.keywords_per_file());
  for (FileId f = 0; f < catalog_.num_files(); ++f) {
    EXPECT_EQ(copy.filename(f), catalog_.filename(f));
    EXPECT_EQ(copy.keywords(f), catalog_.keywords(f));
    EXPECT_EQ(copy.sorted_keywords(f), catalog_.sorted_keywords(f));
    EXPECT_EQ(copy.FileSetFnv(f), catalog_.FileSetFnv(f));
  }
  for (KeywordId kw = 0; kw < catalog_.num_keywords(); ++kw) {
    EXPECT_EQ(copy.keyword(kw), catalog_.keyword(kw));
    EXPECT_EQ(copy.KeywordFnv(kw), catalog_.KeywordFnv(kw));
    EXPECT_EQ(copy.LookupKeyword(catalog_.keyword(kw)), kw);
  }
  // The inverted index came back too: posting-list intersection agrees.
  const auto& probe = catalog_.sorted_keywords(0);
  EXPECT_EQ(copy.FindMatches(probe), catalog_.FindMatches(probe));
  EXPECT_EQ(copy.LookupFilename(catalog_.filename(5)), FileId{5});
  std::remove(path.c_str());
}

TEST_F(BinaryFormatFixture, MintedKeywordsSurviveTheCatalogRoundTrip) {
  const KeywordId minted = catalog_.InternKeyword("zzqvnotinpool");
  const std::string path = Temp("minted.bin");
  ASSERT_TRUE(catalog_.SaveBinary(path).ok());
  auto loaded = FileCatalog::LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().LookupKeyword("zzqvnotinpool"), minted);
  std::remove(path.c_str());
}

TEST_F(BinaryFormatFixture, RejectsCorruptHeadersWithoutCrashing) {
  const std::string path = Temp("corrupt.bin");
  ASSERT_TRUE(workload_.SaveBinary(path, catalog_).ok());
  const std::string good = ReadFileBytes(path);
  ASSERT_GT(good.size(), 50u);

  // Wrong magic: not even recognizably a trace.
  std::string bad = good;
  bad[0] = 'X';
  WriteFileBytes(path, bad);
  FileCatalog scratch;
  EXPECT_FALSE(QueryWorkload::LoadBinary(path, &scratch).ok());
  // LoadAuto falls through to the text parser, which must also reject it.
  EXPECT_FALSE(QueryWorkload::LoadAuto(path, &scratch).ok());

  // Future version: refuse rather than misparse.
  bad = good;
  bad[8] = static_cast<char>(99);
  WriteFileBytes(path, bad);
  EXPECT_FALSE(QueryWorkload::LoadBinary(path, &scratch).ok());

  // A catalog magic fed to the trace loader (and vice versa).
  {
    const std::string cat_path = Temp("crossmagic.bin");
    ASSERT_TRUE(catalog_.SaveBinary(cat_path).ok());
    EXPECT_FALSE(QueryWorkload::LoadBinary(cat_path, &scratch).ok());
    EXPECT_FALSE(FileCatalog::LoadBinary(path).ok());
    std::remove(cat_path.c_str());
  }

  // Truncations at every section boundary flavor: header, counts, payload.
  for (size_t keep : {size_t{4}, size_t{11}, size_t{20}, good.size() / 2,
                      good.size() - 1}) {
    WriteFileBytes(path, good.substr(0, keep));
    EXPECT_FALSE(QueryWorkload::LoadBinary(path, &scratch).ok()) << keep;
  }

  // Trailing garbage breaks the exact-size tiling check.
  WriteFileBytes(path, good + "x");
  EXPECT_FALSE(QueryWorkload::LoadBinary(path, &scratch).ok());

  // Hostile header: a record count far beyond the file must be rejected
  // before any allocation is sized by it (overflow-guarded bounds).
  bad = good;
  for (size_t i = 0; i < 8; ++i) bad[12 + 24 + i] = static_cast<char>(0xFF);
  WriteFileBytes(path, bad);
  EXPECT_FALSE(QueryWorkload::LoadBinary(path, &scratch).ok());

  // Nothing above minted anything into the scratch catalog.
  EXPECT_EQ(scratch.num_keywords(), 0u);

  // Empty and missing files.
  WriteFileBytes(path, "");
  EXPECT_FALSE(QueryWorkload::LoadBinary(path, &scratch).ok());
  EXPECT_FALSE(QueryWorkload::LoadAuto("/nonexistent/locaware.bin", &scratch).ok());
  std::remove(path.c_str());
}

TEST_F(BinaryFormatFixture, RejectsCorruptCatalogWithoutCrashing) {
  const std::string path = Temp("catcorrupt.bin");
  ASSERT_TRUE(catalog_.SaveBinary(path).ok());
  const std::string good = ReadFileBytes(path);
  for (size_t keep : {size_t{4}, size_t{12}, size_t{30}, good.size() / 2,
                      good.size() - 1}) {
    WriteFileBytes(path, good.substr(0, keep));
    EXPECT_FALSE(FileCatalog::LoadBinary(path).ok()) << keep;
  }
  WriteFileBytes(path, good + "zz");
  EXPECT_FALSE(FileCatalog::LoadBinary(path).ok());
  std::remove(path.c_str());
}

// The end-to-end contract the formats exist for: one experiment, seed 42,
// workload replayed once from a text trace and once from its binary
// encoding — the metric JSON must match byte for byte (the binary row also
// runs sharded, crossing format against shard count).
TEST(BinaryFormatExperimentTest, MetricJsonIsByteIdenticalAcrossTraceFormats) {
  core::ExperimentConfig cfg =
      core::MakePaperConfig(core::ProtocolKind::kDicas, /*num_queries=*/400,
                            /*seed=*/42);
  cfg.num_peers = 200;
  cfg.underlay.num_routers = 50;
  cfg.catalog.num_files = 500;
  cfg.catalog.keyword_pool_size = 1500;
  cfg.workload.query_rate_per_peer_s = 0.01;

  // Regenerate catalog + workload exactly as Engine::Setup will (same
  // name-keyed splits), then persist the stream in both formats.
  Rng root(cfg.seed);
  Rng catalog_rng = root.Split("catalog");
  auto catalog = std::move(FileCatalog::Generate(cfg.catalog, &catalog_rng))
                     .ValueOrDie();
  Rng workload_rng = root.Split("workload");
  auto workload = std::move(QueryWorkload::Generate(cfg.workload, catalog,
                                                    cfg.num_peers, &workload_rng))
                      .ValueOrDie();
  const std::string text = ::testing::TempDir() + "/locaware_binfmt_e2e.trace";
  const std::string bin = ::testing::TempDir() + "/locaware_binfmt_e2e.bin";
  ASSERT_TRUE(workload.SaveTrace(text, catalog).ok());
  ASSERT_TRUE(workload.SaveBinary(bin, catalog).ok());

  cfg.trace_path = text;
  auto from_text = core::RunExperiment(cfg, /*buckets=*/5);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();

  cfg.trace_path = bin;
  cfg.scheduler.shards = 4;
  auto from_bin = core::RunExperiment(cfg, /*buckets=*/5);
  ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();

  EXPECT_EQ(core::ResultToJson(from_text.ValueOrDie()),
            core::ResultToJson(from_bin.ValueOrDie()));
  std::remove(text.c_str());
  std::remove(bin.c_str());
}

}  // namespace
}  // namespace locaware::catalog
