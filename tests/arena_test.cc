// Arena: the shard-local allocator under the engine's per-peer containers.
// The properties that matter are the ones the data plane leans on: class
// rounding and 16-byte alignment (SmallVector stores arbitrary T), free-list
// recycling (spill buffers double, so freed ones must be reused verbatim),
// Reserve actually pre-sizing the bump space, and the SmallVector binding
// rules (spill into the arena, buffer provenance across set_arena/move/copy).
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/small_vector.h"

namespace locaware {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  common::Arena arena;
  std::vector<std::pair<unsigned char*, size_t>> chunks;
  for (size_t bytes : {1u, 7u, 16u, 24u, 100u, 4096u}) {
    auto* p = static_cast<unsigned char*>(arena.Allocate(bytes));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u) << bytes;
    std::memset(p, 0xAB, bytes);  // ASan/valgrind would flag overlap
    chunks.emplace_back(p, bytes);
  }
  for (size_t i = 0; i < chunks.size(); ++i) {
    for (size_t j = i + 1; j < chunks.size(); ++j) {
      const bool disjoint = chunks[i].first + chunks[i].second <= chunks[j].first ||
                            chunks[j].first + chunks[j].second <= chunks[i].first;
      EXPECT_TRUE(disjoint) << i << " vs " << j;
    }
  }
}

TEST(ArenaTest, DeallocateRecyclesSameSizeClass) {
  common::Arena arena;
  void* a = arena.Allocate(48);  // class 64
  arena.Deallocate(a, 48);
  // Any request that rounds to the same class must pop the freed chunk.
  void* b = arena.Allocate(64);
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena.freelist_hits(), 1u);
  // A different class must not.
  arena.Deallocate(b, 64);
  void* c = arena.Allocate(128);
  EXPECT_NE(b, c);
  EXPECT_EQ(arena.freelist_hits(), 1u);
}

TEST(ArenaTest, FreeListIsLifoPerClass) {
  common::Arena arena;
  void* a = arena.Allocate(32);
  void* b = arena.Allocate(32);
  arena.Deallocate(a, 32);
  arena.Deallocate(b, 32);
  EXPECT_EQ(arena.Allocate(32), b);
  EXPECT_EQ(arena.Allocate(32), a);
}

TEST(ArenaTest, ReservePreSizesOneBlock) {
  common::Arena arena;
  arena.Reserve(1 << 20);
  EXPECT_EQ(arena.num_blocks(), 1u);
  EXPECT_GE(arena.bytes_reserved(), size_t{1} << 20);
  // A megabyte of small allocations fits without growing.
  for (int i = 0; i < (1 << 20) / 64; ++i) arena.Allocate(64);
  EXPECT_EQ(arena.num_blocks(), 1u);
}

TEST(ArenaTest, BlocksGrowGeometrically) {
  common::Arena arena;
  // Outgrow the 64KB default block repeatedly: each new block at least
  // doubles, so even a 16MB total settles in O(log n) blocks.
  for (int i = 0; i < (16 << 20) / 4096; ++i) arena.Allocate(4096);
  EXPECT_GE(arena.bytes_reserved(), size_t{16} << 20);
  EXPECT_LE(arena.num_blocks(), 10u);
}

TEST(ArenaSmallVectorTest, SpillDrawsFromArenaAndOutgrownBuffersRecycle) {
  common::Arena arena;
  SmallVector<uint32_t, 2> a;
  a.set_arena(&arena);
  a.push_back(1);
  a.push_back(2);
  EXPECT_TRUE(a.is_inline());
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Growing 2 -> 4 -> 8 spills into the arena and frees the outgrown
  // 4-slot (16-byte, one size class) buffer back to it.
  for (uint32_t i = 3; i <= 8; ++i) a.push_back(i);
  EXPECT_FALSE(a.is_inline());
  EXPECT_GT(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.freelist_hits(), 0u);
  // Doubling keeps every freed buffer exactly class-sized, so a sibling
  // vector's first spill (also 4 slots) must recycle it verbatim.
  SmallVector<uint32_t, 2> b;
  b.set_arena(&arena);
  for (uint32_t i = 0; i < 3; ++i) b.push_back(i);
  EXPECT_EQ(arena.freelist_hits(), 1u);
  for (uint32_t i = 1; i <= 8; ++i) EXPECT_EQ(a[i - 1], i);
}

TEST(ArenaSmallVectorTest, SetArenaMigratesASpilledBuffer) {
  // Binding an arena after the vector already spilled to ::operator new must
  // move the buffer into the arena — the destructor will Deallocate into
  // whatever arena_ holds, so provenance and binding must always agree.
  common::Arena arena;
  SmallVector<uint32_t, 2> v;
  for (uint32_t i = 0; i < 16; ++i) v.push_back(i);
  EXPECT_FALSE(v.is_inline());
  v.set_arena(&arena);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  for (uint32_t i = 0; i < 16; ++i) EXPECT_EQ(v[i], i);
  v.push_back(16);
  EXPECT_EQ(v.size(), 17u);
}

TEST(ArenaSmallVectorTest, MoveCarriesTheSourceArenaWithTheBuffer) {
  common::Arena arena;
  SmallVector<uint32_t, 2> src;
  src.set_arena(&arena);
  for (uint32_t i = 0; i < 8; ++i) src.push_back(i);
  const size_t allocated = arena.bytes_allocated();
  SmallVector<uint32_t, 2> dst(std::move(src));
  // The buffer moved wholesale; the destination must inherit its owner.
  EXPECT_EQ(dst.arena(), &arena);
  EXPECT_EQ(arena.bytes_allocated(), allocated);
  ASSERT_EQ(dst.size(), 8u);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_EQ(dst[i], i);
}

TEST(ArenaSmallVectorTest, CopyDoesNotInheritTheSourceArena) {
  common::Arena arena;
  SmallVector<uint32_t, 2> src;
  src.set_arena(&arena);
  for (uint32_t i = 0; i < 8; ++i) src.push_back(i);
  SmallVector<uint32_t, 2> copy(src);
  // A copy allocates its own buffer, so it keeps its own (null) binding.
  EXPECT_EQ(copy.arena(), nullptr);
  ASSERT_EQ(copy.size(), 8u);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_EQ(copy[i], i);
  copy.push_back(8);
  EXPECT_EQ(src.size(), 8u);
}

TEST(ArenaSmallVectorTest, ClearKeepsCapacityForReuse) {
  // GoOffline clears adjacency rows but peers rejoin: the arena-owned
  // capacity must survive the clear and absorb the re-fill allocation-free.
  common::Arena arena;
  SmallVector<uint32_t, 2> v;
  v.set_arena(&arena);
  for (uint32_t i = 0; i < 32; ++i) v.push_back(i);
  const size_t allocated = arena.bytes_allocated();
  v.clear();
  EXPECT_TRUE(v.empty());
  for (uint32_t i = 0; i < 32; ++i) v.push_back(i);
  EXPECT_EQ(arena.bytes_allocated(), allocated);
}

}  // namespace
}  // namespace locaware
