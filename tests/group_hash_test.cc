#include "core/group_hash.h"

#include <map>

#include <gtest/gtest.h>

namespace locaware::core {
namespace {

TEST(GroupHashTest, KeywordOrderDoesNotMatter) {
  // A full-keyword query must land in the filename's group whatever the
  // keyword order — that is what makes Dicas work for "filename search".
  const GroupId a = GroupOfKeywords({"alpha", "beta", "gamma"}, 8);
  EXPECT_EQ(GroupOfKeywords({"gamma", "alpha", "beta"}, 8), a);
  EXPECT_EQ(GroupOfKeywords({"beta", "gamma", "alpha"}, 8), a);
}

TEST(GroupHashTest, FilenameAndKeywordsAgree) {
  EXPECT_EQ(GroupOfFilename("alpha beta gamma", 8),
            GroupOfKeywords({"alpha", "beta", "gamma"}, 8));
  // Tokenization normalizes case and separators first.
  EXPECT_EQ(GroupOfFilename("Alpha-Beta_GAMMA", 8),
            GroupOfKeywords({"alpha", "beta", "gamma"}, 8));
}

TEST(GroupHashTest, PartialQueryUsuallyMisses) {
  // The keyword-search weakness: a query with fewer keywords hashes to an
  // unrelated group. Verify it differs for at least most of a sample.
  int differs = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string a = "kw" + std::to_string(3 * i);
    const std::string b = "kw" + std::to_string(3 * i + 1);
    const std::string c = "kw" + std::to_string(3 * i + 2);
    if (GroupOfKeywords({a, b, c}, 8) != GroupOfKeywords({a, b}, 8)) ++differs;
  }
  EXPECT_GT(differs, 150);  // ~7/8 expected
}

TEST(GroupHashTest, GroupsAreInRange) {
  for (int m : {1, 2, 4, 16}) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_LT(GroupOfKeyword("kw" + std::to_string(i), m), m);
      EXPECT_LT(GroupOfKeywords({"a" + std::to_string(i), "b"}, m), m);
    }
  }
}

TEST(GroupHashTest, GroupsAreBalanced) {
  std::map<GroupId, int> counts;
  for (int i = 0; i < 40000; ++i) {
    ++counts[GroupOfKeyword("keyword" + std::to_string(i), 4)];
  }
  for (const auto& [g, c] : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(GroupHashTest, KeywordGroupsDeduplicates) {
  // Find two keywords in the same group, then check dedup.
  std::string a = "aaa", match;
  const GroupId ga = GroupOfKeyword(a, 2);
  for (int i = 0; i < 100; ++i) {
    std::string cand = "kw" + std::to_string(i);
    if (GroupOfKeyword(cand, 2) == ga) {
      match = cand;
      break;
    }
  }
  ASSERT_FALSE(match.empty());
  EXPECT_EQ(KeywordGroups({a, match}, 2).size(), 1u);
}

TEST(GroupHashTest, KeywordGroupsCoverEachKeyword) {
  const std::vector<std::string> kws{"alpha", "beta", "gamma"};
  const auto groups = KeywordGroups(kws, 16);
  for (const auto& kw : kws) {
    const GroupId g = GroupOfKeyword(kw, 16);
    EXPECT_NE(std::find(groups.begin(), groups.end(), g), groups.end());
  }
  EXPECT_LE(groups.size(), 3u);
}

TEST(GroupHashTest, SingleGroupDegenerates) {
  EXPECT_EQ(GroupOfKeywords({"x", "y"}, 1), 0u);
  EXPECT_EQ(GroupOfKeyword("x", 1), 0u);
}

TEST(GroupHashTest, ZeroGroupsDies) {
  EXPECT_DEATH(GroupOfKeyword("x", 0), "CHECK");
}

}  // namespace
}  // namespace locaware::core
