#include "net/underlay.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace locaware::net {
namespace {

GeometricUnderlayConfig SmallConfig() {
  GeometricUnderlayConfig cfg;
  cfg.num_routers = 50;
  cfg.num_peers = 200;
  cfg.num_landmarks = 4;
  return cfg;
}

TEST(GeometricUnderlayTest, BuildSucceeds) {
  Rng rng(1);
  auto built = GeometricUnderlay::Build(SmallConfig(), &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto& u = *built.ValueOrDie();
  EXPECT_EQ(u.num_peers(), 200u);
  EXPECT_EQ(u.num_routers(), 50u);
  EXPECT_EQ(u.num_landmarks(), 4u);
  EXPECT_GT(u.num_router_edges(), 49u);  // at least a spanning structure
}

TEST(GeometricUnderlayTest, RejectsBadConfigs) {
  Rng rng(1);
  GeometricUnderlayConfig cfg = SmallConfig();
  cfg.num_routers = 0;
  EXPECT_FALSE(GeometricUnderlay::Build(cfg, &rng).ok());

  cfg = SmallConfig();
  cfg.num_peers = 0;
  EXPECT_FALSE(GeometricUnderlay::Build(cfg, &rng).ok());

  cfg = SmallConfig();
  cfg.num_landmarks = 100;  // > routers
  EXPECT_FALSE(GeometricUnderlay::Build(cfg, &rng).ok());

  cfg = SmallConfig();
  cfg.min_rtt_ms = 500;
  cfg.max_rtt_ms = 10;
  EXPECT_FALSE(GeometricUnderlay::Build(cfg, &rng).ok());

  cfg = SmallConfig();
  cfg.access_min_ms = 5;
  cfg.access_max_ms = 1;
  EXPECT_FALSE(GeometricUnderlay::Build(cfg, &rng).ok());
}

TEST(GeometricUnderlayTest, RttIsSymmetricZeroDiagonal) {
  Rng rng(2);
  auto u = std::move(GeometricUnderlay::Build(SmallConfig(), &rng)).ValueOrDie();
  for (PeerId a = 0; a < 20; ++a) {
    EXPECT_EQ(u->RttMs(a, a), 0.0);
    for (PeerId b = 0; b < 20; ++b) {
      EXPECT_DOUBLE_EQ(u->RttMs(a, b), u->RttMs(b, a));
    }
  }
}

TEST(GeometricUnderlayTest, RttsLieInConfiguredBand) {
  Rng rng(3);
  GeometricUnderlayConfig cfg = SmallConfig();
  cfg.num_peers = 300;
  auto u = std::move(GeometricUnderlay::Build(cfg, &rng)).ValueOrDie();
  double lo = 1e18, hi = 0;
  for (PeerId a = 0; a < 100; ++a) {
    for (PeerId b = a + 1; b < 100; ++b) {
      const double rtt = u->RttMs(a, b);
      lo = std::min(lo, rtt);
      hi = std::max(hi, rtt);
    }
  }
  // Distinct peers: RTT within ~the paper band (the normalization guarantees
  // max <= max_rtt; min is >= 4 * access_lo by construction).
  EXPECT_GE(lo, cfg.min_rtt_ms * 0.5);
  EXPECT_LE(hi, cfg.max_rtt_ms + 1e-9);
  EXPECT_GT(hi, 100.0);  // the band is actually used, not collapsed
}

TEST(GeometricUnderlayTest, TriangleInequalityOverRouterCore) {
  // Shortest-path metrics satisfy the triangle inequality on the router core.
  Rng rng(4);
  auto u = std::move(GeometricUnderlay::Build(SmallConfig(), &rng)).ValueOrDie();
  for (RouterId a = 0; a < 20; ++a) {
    for (RouterId b = 0; b < 20; ++b) {
      for (RouterId c = 0; c < 20; ++c) {
        EXPECT_LE(u->RouterLatencyMs(a, b),
                  u->RouterLatencyMs(a, c) + u->RouterLatencyMs(c, b) + 1e-9);
      }
    }
  }
}

TEST(GeometricUnderlayTest, SameRouterPeersAreClose) {
  Rng rng(5);
  GeometricUnderlayConfig cfg = SmallConfig();
  cfg.num_peers = 500;  // guarantee same-router pairs
  auto u = std::move(GeometricUnderlay::Build(cfg, &rng)).ValueOrDie();
  for (PeerId a = 0; a < u->num_peers(); ++a) {
    for (PeerId b = a + 1; b < u->num_peers(); ++b) {
      if (u->peer_router(a) == u->peer_router(b)) {
        EXPECT_LT(u->RttMs(a, b), 50.0);  // only two access links
        return;
      }
    }
  }
  FAIL() << "no same-router pair found";
}

TEST(GeometricUnderlayTest, PairLowerBoundIsValidAndTighterThanGlobalMin) {
  Rng rng(6);
  auto built = GeometricUnderlay::Build(SmallConfig(), &rng);
  ASSERT_TRUE(built.ok());
  const auto& u = *built.ValueOrDie();
  EXPECT_EQ(u.num_locations(), u.num_routers());
  // The property the pairwise lookahead matrix rests on: for every distinct
  // peer pair, the bound at their locations never exceeds the true RTT, and
  // never undercuts the global floor.
  bool some_pair_beats_global = false;
  for (PeerId a = 0; a < 80; ++a) {
    for (PeerId b = a + 1; b < 80; ++b) {
      const double bound = u.PairRttLowerBoundMs(u.LocationOf(a), u.LocationOf(b));
      EXPECT_LE(bound, u.RttMs(a, b) + 1e-9) << a << "," << b;
      EXPECT_GE(bound, u.MinPairRttMs() - 1e-9) << a << "," << b;
      if (bound > 2.0 * u.MinPairRttMs()) some_pair_beats_global = true;
    }
  }
  // Locality is the point: far routers must yield far tighter bounds than
  // the one global minimum.
  EXPECT_TRUE(some_pair_beats_global);
}

TEST(UniformUnderlayTest, PairLowerBoundFallsBackToGlobalMin) {
  Rng rng(6);
  UniformUnderlayConfig cfg;
  cfg.num_peers = 50;
  auto built = UniformUnderlay::Build(cfg, &rng);
  ASSERT_TRUE(built.ok());
  const auto& u = *built.ValueOrDie();
  // Geometry-free control model: one location, the global min everywhere.
  EXPECT_EQ(u.num_locations(), 1u);
  EXPECT_EQ(u.LocationOf(7), 0u);
  EXPECT_EQ(u.PairRttLowerBoundMs(0, 0), u.MinPairRttMs());
}

TEST(GeometricUnderlayTest, DeterministicForSameSeed) {
  Rng rng1(7), rng2(7);
  auto u1 = std::move(GeometricUnderlay::Build(SmallConfig(), &rng1)).ValueOrDie();
  auto u2 = std::move(GeometricUnderlay::Build(SmallConfig(), &rng2)).ValueOrDie();
  for (PeerId a = 0; a < 50; ++a) {
    for (PeerId b = 0; b < 50; ++b) {
      EXPECT_DOUBLE_EQ(u1->RttMs(a, b), u2->RttMs(a, b));
    }
  }
}

TEST(GeometricUnderlayTest, LandmarksAreSpreadApart) {
  Rng rng(8);
  auto u = std::move(GeometricUnderlay::Build(SmallConfig(), &rng)).ValueOrDie();
  // Greedy max-min placement: no two landmarks share a router.
  for (size_t i = 0; i < u->num_landmarks(); ++i) {
    for (size_t j = i + 1; j < u->num_landmarks(); ++j) {
      EXPECT_NE(u->landmark_router(i), u->landmark_router(j));
    }
  }
}

TEST(GeometricUnderlayTest, LandmarkRttPositive) {
  Rng rng(9);
  auto u = std::move(GeometricUnderlay::Build(SmallConfig(), &rng)).ValueOrDie();
  for (PeerId p = 0; p < 50; ++p) {
    for (size_t l = 0; l < u->num_landmarks(); ++l) {
      EXPECT_GT(u->LandmarkRttMs(p, l), 0.0);
    }
  }
}

TEST(GeometricUnderlayTest, SingleRouterDegenerateCase) {
  Rng rng(10);
  GeometricUnderlayConfig cfg;
  cfg.num_routers = 1;
  cfg.num_peers = 10;
  cfg.num_landmarks = 1;
  auto built = GeometricUnderlay::Build(cfg, &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto& u = *built.ValueOrDie();
  // All traffic crosses only access links.
  EXPECT_GT(u.RttMs(0, 1), 0.0);
  EXPECT_LT(u.RttMs(0, 1), 50.0);
}

TEST(GeometricUnderlayTest, DescribeMentionsShape) {
  Rng rng(11);
  auto u = std::move(GeometricUnderlay::Build(SmallConfig(), &rng)).ValueOrDie();
  const std::string desc = u->Describe();
  EXPECT_NE(desc.find("routers=50"), std::string::npos);
  EXPECT_NE(desc.find("peers=200"), std::string::npos);
}

// --- Barabási–Albert model ---

TEST(BarabasiAlbertTest, BuildsConnectedGraph) {
  Rng rng(30);
  GeometricUnderlayConfig cfg = SmallConfig();
  cfg.model = RouterGraphModel::kBarabasiAlbert;
  cfg.num_routers = 150;
  auto built = GeometricUnderlay::Build(cfg, &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto& u = *built.ValueOrDie();
  EXPECT_EQ(u.model(), RouterGraphModel::kBarabasiAlbert);
  // m=2 attachment: ~2 edges per arriving router.
  EXPECT_GE(u.num_router_edges(), 149u);
  EXPECT_LE(u.num_router_edges(), 300u);
  // Connectivity is by construction; RTTs finite and in-band.
  for (PeerId a = 0; a < 30; ++a) {
    for (PeerId b = a + 1; b < 30; ++b) {
      EXPECT_GT(u.RttMs(a, b), 0.0);
      EXPECT_LE(u.RttMs(a, b), cfg.max_rtt_ms + 1e-9);
    }
  }
}

TEST(BarabasiAlbertTest, DegreesAreHeavyTailed) {
  Rng rng(31);
  GeometricUnderlayConfig cfg = SmallConfig();
  cfg.model = RouterGraphModel::kBarabasiAlbert;
  cfg.num_routers = 300;
  auto u = std::move(GeometricUnderlay::Build(cfg, &rng)).ValueOrDie();
  size_t max_degree = 0;
  size_t total = 0;
  for (RouterId r = 0; r < u->num_routers(); ++r) {
    max_degree = std::max(max_degree, u->RouterDegree(r));
    total += u->RouterDegree(r);
  }
  const double mean = static_cast<double>(total) / 300.0;
  // Preferential attachment produces hubs far above the mean (a Waxman graph
  // of the same density would cap around ~3x mean).
  EXPECT_GT(static_cast<double>(max_degree), 4.0 * mean);
}

TEST(BarabasiAlbertTest, RejectsZeroAttachment) {
  Rng rng(32);
  GeometricUnderlayConfig cfg = SmallConfig();
  cfg.model = RouterGraphModel::kBarabasiAlbert;
  cfg.ba_links_per_router = 0;
  EXPECT_FALSE(GeometricUnderlay::Build(cfg, &rng).ok());
}

TEST(BarabasiAlbertTest, DescribeNamesModel) {
  Rng rng(33);
  GeometricUnderlayConfig cfg = SmallConfig();
  cfg.model = RouterGraphModel::kBarabasiAlbert;
  auto u = std::move(GeometricUnderlay::Build(cfg, &rng)).ValueOrDie();
  EXPECT_NE(u->Describe().find("barabasi-albert"), std::string::npos);
  EXPECT_STREQ(RouterGraphModelName(RouterGraphModel::kWaxman), "waxman");
}

// --- UniformUnderlay ---

TEST(UniformUnderlayTest, BuildAndBand) {
  Rng rng(20);
  UniformUnderlayConfig cfg;
  cfg.num_peers = 100;
  cfg.num_landmarks = 4;
  auto u = std::move(UniformUnderlay::Build(cfg, &rng)).ValueOrDie();
  for (PeerId a = 0; a < 100; ++a) {
    for (PeerId b = a + 1; b < 100; ++b) {
      const double rtt = u->RttMs(a, b);
      EXPECT_GE(rtt, cfg.min_rtt_ms);
      EXPECT_LE(rtt, cfg.max_rtt_ms);
    }
  }
}

TEST(UniformUnderlayTest, SymmetricAndStable) {
  Rng rng(21);
  UniformUnderlayConfig cfg;
  cfg.num_peers = 50;
  auto u = std::move(UniformUnderlay::Build(cfg, &rng)).ValueOrDie();
  const double first = u->RttMs(3, 17);
  EXPECT_DOUBLE_EQ(u->RttMs(17, 3), first);
  EXPECT_DOUBLE_EQ(u->RttMs(3, 17), first);  // repeated call identical
  EXPECT_EQ(u->RttMs(9, 9), 0.0);
}

TEST(UniformUnderlayTest, RejectsBadConfig) {
  Rng rng(22);
  UniformUnderlayConfig cfg;
  cfg.num_peers = 0;
  EXPECT_FALSE(UniformUnderlay::Build(cfg, &rng).ok());
  cfg.num_peers = 10;
  cfg.min_rtt_ms = 100;
  cfg.max_rtt_ms = 100;
  EXPECT_FALSE(UniformUnderlay::Build(cfg, &rng).ok());
}

class UnderlayScaleTest : public ::testing::TestWithParam<size_t> {};

/// Property: the geometric build stays connected and in-band across router
/// counts (the Waxman graph gets patched whatever its density).
TEST_P(UnderlayScaleTest, AlwaysConnectedAndInBand) {
  Rng rng(100 + GetParam());
  GeometricUnderlayConfig cfg;
  cfg.num_routers = GetParam();
  cfg.num_peers = 100;
  cfg.num_landmarks = std::min<size_t>(4, GetParam());
  auto built = GeometricUnderlay::Build(cfg, &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto& u = *built.ValueOrDie();
  for (PeerId a = 0; a < 30; ++a) {
    for (PeerId b = a + 1; b < 30; ++b) {
      const double rtt = u.RttMs(a, b);
      EXPECT_GT(rtt, 0.0);
      EXPECT_LE(rtt, cfg.max_rtt_ms + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RouterCounts, UnderlayScaleTest,
                         ::testing::Values(2, 5, 20, 100, 400));

}  // namespace
}  // namespace locaware::net
