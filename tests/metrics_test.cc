#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include "metrics/report.h"

namespace locaware::metrics {
namespace {

QueryRecord MakeRecord(bool success, double distance, uint64_t msgs,
                       AnswerSource source = AnswerSource::kFileStore,
                       bool loc_match = false) {
  QueryRecord r;
  r.success = success;
  r.download_distance_ms = distance;
  r.query_msgs = msgs;
  r.source = success ? source : AnswerSource::kNone;
  r.provider_loc_match = loc_match;
  return r;
}

TEST(MetricsCollectorTest, BeginQueryAllocatesSequentialSlots) {
  MetricsCollector mc;
  EXPECT_EQ(mc.BeginQuery(100, 1, 0), 0u);
  EXPECT_EQ(mc.BeginQuery(101, 2, 5), 1u);
  EXPECT_EQ(mc.records().size(), 2u);
  EXPECT_EQ(mc.records()[0].qid, 100u);
  EXPECT_EQ(mc.records()[1].submitted_at, 5);
}

TEST(MetricsCollectorTest, RecordIsMutable) {
  MetricsCollector mc;
  const size_t slot = mc.BeginQuery(1, 1, 0);
  mc.Record(slot)->success = true;
  mc.Record(slot)->query_msgs = 42;
  EXPECT_TRUE(mc.records()[0].success);
  EXPECT_EQ(mc.records()[0].TotalSearchMessages(), 42u);
}

TEST(MetricsCollectorTest, MaintenanceCountersAccumulate) {
  MetricsCollector mc;
  mc.AddBloomUpdate(3, 100);
  mc.AddBloomUpdate(1, 50);
  EXPECT_EQ(mc.bloom_update_msgs(), 4u);
  EXPECT_EQ(mc.bloom_update_bytes(), 150u);
  mc.AddChurnEvent();
  mc.AddStaleFailure();
  EXPECT_EQ(mc.churn_events(), 1u);
  EXPECT_EQ(mc.stale_failures(), 1u);
}

TEST(MetricsCollectorTest, OutOfRangeSlotDies) {
  MetricsCollector mc;
  EXPECT_DEATH(mc.Record(0), "CHECK");
}

TEST(QueryRecordTest, TotalSumsAllMessageKinds) {
  QueryRecord r;
  r.query_msgs = 10;
  r.response_msgs = 3;
  r.probe_msgs = 4;
  EXPECT_EQ(r.TotalSearchMessages(), 17u);
}

TEST(BucketizeTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(Bucketize({}, 10).empty());
  EXPECT_TRUE(Bucketize({MakeRecord(true, 1, 1)}, 0).empty());
  // More buckets than records: clamps to one record per bucket.
  const auto pts = Bucketize({MakeRecord(true, 1, 1), MakeRecord(false, 0, 2)}, 10);
  EXPECT_EQ(pts.size(), 2u);
}

TEST(BucketizeTest, SplitsEvenlyWithRemainderInLastBucket) {
  std::vector<QueryRecord> records;
  for (int i = 0; i < 25; ++i) records.push_back(MakeRecord(true, 10, 1));
  const auto pts = Bucketize(records, 4);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].queries_begin, 0u);
  EXPECT_EQ(pts[0].queries_end, 6u);
  EXPECT_EQ(pts[3].queries_end, 25u);  // remainder folded into the last bucket
}

TEST(BucketizeTest, SuccessRatePerBucket) {
  std::vector<QueryRecord> records;
  // First half all successes, second half all failures.
  for (int i = 0; i < 10; ++i) records.push_back(MakeRecord(true, 10, 1));
  for (int i = 0; i < 10; ++i) records.push_back(MakeRecord(false, 0, 1));
  const auto pts = Bucketize(records, 2);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].success_rate, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].success_rate, 0.0);
}

TEST(BucketizeTest, DownloadDistanceAveragesSuccessesOnly) {
  std::vector<QueryRecord> records{
      MakeRecord(true, 100, 1),
      MakeRecord(false, 0, 1),  // failure must not drag the average down
      MakeRecord(true, 200, 1),
  };
  const auto pts = Bucketize(records, 1);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].avg_download_ms, 150.0);
}

TEST(BucketizeTest, LocalStoreHitsExcludedFromDistance) {
  std::vector<QueryRecord> records{
      MakeRecord(true, 100, 1),
      MakeRecord(true, 0, 0, AnswerSource::kLocalStore, true),
  };
  const auto pts = Bucketize(records, 1);
  // A local-store hit involved no download; the average covers real
  // transfers only.
  EXPECT_DOUBLE_EQ(pts[0].avg_download_ms, 100.0);
  EXPECT_DOUBLE_EQ(pts[0].success_rate, 1.0);
}

TEST(BucketizeTest, MessagesCountFailuresToo) {
  std::vector<QueryRecord> records{MakeRecord(true, 10, 6), MakeRecord(false, 0, 4)};
  const auto pts = Bucketize(records, 1);
  EXPECT_DOUBLE_EQ(pts[0].msgs_per_query, 5.0);
}

TEST(BucketizeTest, CacheShareAndLocMatch) {
  std::vector<QueryRecord> records{
      MakeRecord(true, 10, 1, AnswerSource::kResponseIndex, true),
      MakeRecord(true, 10, 1, AnswerSource::kFileStore, false),
      MakeRecord(true, 10, 1, AnswerSource::kLocalIndex, true),
      MakeRecord(false, 0, 1),
  };
  const auto pts = Bucketize(records, 1);
  EXPECT_NEAR(pts[0].cache_answer_share, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pts[0].loc_match_rate, 2.0 / 3.0, 1e-12);
}

TEST(SummarizeTest, WholeRunRollup) {
  MetricsCollector mc;
  for (int i = 0; i < 4; ++i) {
    const size_t slot = mc.BeginQuery(i, 0, i);
    *mc.Record(slot) = MakeRecord(i % 2 == 0, 50, 10);
    mc.Record(slot)->providers_offered = 2;
  }
  mc.AddBloomUpdate(5, 500);
  const Summary s = Summarize(mc);
  EXPECT_EQ(s.num_queries, 4u);
  EXPECT_DOUBLE_EQ(s.success_rate, 0.5);
  EXPECT_DOUBLE_EQ(s.msgs_per_query, 10.0);
  EXPECT_DOUBLE_EQ(s.avg_download_ms, 50.0);
  EXPECT_DOUBLE_EQ(s.avg_providers_offered, 2.0);
  EXPECT_EQ(s.bloom_update_msgs, 5u);
  EXPECT_EQ(s.bloom_update_bytes, 500u);
}

TEST(SummarizeTest, EmptyCollector) {
  MetricsCollector mc;
  const Summary s = Summarize(mc);
  EXPECT_EQ(s.num_queries, 0u);
  EXPECT_EQ(s.success_rate, 0.0);
}

TEST(ReportTest, FigureTableContainsLabelsAndValues) {
  LabeledSeries a{"Locaware", Bucketize({MakeRecord(true, 10, 2)}, 1)};
  LabeledSeries b{"Flooding", Bucketize({MakeRecord(true, 20, 30)}, 1)};
  const std::string table =
      FormatFigureTable({a, b}, Field::kMsgsPerQuery, "Search traffic");
  EXPECT_NE(table.find("Search traffic"), std::string::npos);
  EXPECT_NE(table.find("Locaware"), std::string::npos);
  EXPECT_NE(table.find("Flooding"), std::string::npos);
  EXPECT_NE(table.find("30.000"), std::string::npos);
}

TEST(ReportTest, CsvHasHeaderAndRows) {
  LabeledSeries a{"A", Bucketize({MakeRecord(true, 10, 2), MakeRecord(true, 30, 2)}, 2)};
  const std::string csv = FormatFigureCsv({a}, Field::kDownloadMs);
  EXPECT_NE(csv.find("queries,A"), std::string::npos);
  EXPECT_NE(csv.find("10.000000"), std::string::npos);
  EXPECT_NE(csv.find("30.000000"), std::string::npos);
}

TEST(ReportTest, RaggedSeriesDie) {
  LabeledSeries a{"A", Bucketize({MakeRecord(true, 10, 2)}, 1)};
  LabeledSeries b{"B", {}};
  EXPECT_DEATH(FormatFigureTable({a, b}, Field::kSuccessRate, "t"), "ragged");
}

TEST(ByPopularityTest, SplitsByRankBands) {
  std::vector<QueryRecord> records;
  auto add = [&](uint32_t rank, bool success, AnswerSource source, double dist) {
    QueryRecord r = MakeRecord(success, dist, 1, source);
    r.target_rank = rank;
    records.push_back(r);
  };
  add(0, true, AnswerSource::kResponseIndex, 100);
  add(0, true, AnswerSource::kFileStore, 200);
  add(5, false, AnswerSource::kNone, 0);
  add(50, true, AnswerSource::kFileStore, 300);
  add(2000, false, AnswerSource::kNone, 0);

  const auto bands = ByPopularity(records, {1, 10, 100, 3000});
  ASSERT_EQ(bands.size(), 4u);

  EXPECT_EQ(bands[0].rank_begin, 0u);
  EXPECT_EQ(bands[0].rank_end, 1u);
  EXPECT_EQ(bands[0].queries, 2u);
  EXPECT_DOUBLE_EQ(bands[0].success_rate, 1.0);
  EXPECT_DOUBLE_EQ(bands[0].cache_answer_share, 0.5);
  EXPECT_DOUBLE_EQ(bands[0].avg_download_ms, 150.0);

  EXPECT_EQ(bands[1].queries, 1u);
  EXPECT_DOUBLE_EQ(bands[1].success_rate, 0.0);

  EXPECT_EQ(bands[2].queries, 1u);
  EXPECT_DOUBLE_EQ(bands[2].avg_download_ms, 300.0);

  EXPECT_EQ(bands[3].queries, 1u);
}

TEST(ByPopularityTest, LocalStoreHitsExcludedFromBandDistance) {
  std::vector<QueryRecord> records;
  QueryRecord r = MakeRecord(true, 0, 0, AnswerSource::kLocalStore);
  r.target_rank = 0;
  records.push_back(r);
  QueryRecord r2 = MakeRecord(true, 80, 1, AnswerSource::kFileStore);
  r2.target_rank = 0;
  records.push_back(r2);
  const auto bands = ByPopularity(records, {1});
  ASSERT_EQ(bands.size(), 1u);
  EXPECT_DOUBLE_EQ(bands[0].avg_download_ms, 80.0);
  EXPECT_DOUBLE_EQ(bands[0].success_rate, 1.0);
}

TEST(ByPopularityTest, EmptyInputsGiveEmptyBands) {
  const auto bands = ByPopularity({}, {10, 100});
  ASSERT_EQ(bands.size(), 2u);
  EXPECT_EQ(bands[0].queries, 0u);
  EXPECT_EQ(bands[0].success_rate, 0.0);
}

TEST(ReportTest, FieldValueSelectsCorrectly) {
  BucketPoint p;
  p.success_rate = 0.5;
  p.msgs_per_query = 7;
  p.avg_download_ms = 123;
  p.loc_match_rate = 0.25;
  EXPECT_EQ(FieldValue(p, Field::kSuccessRate), 0.5);
  EXPECT_EQ(FieldValue(p, Field::kMsgsPerQuery), 7.0);
  EXPECT_EQ(FieldValue(p, Field::kDownloadMs), 123.0);
  EXPECT_EQ(FieldValue(p, Field::kLocMatchRate), 0.25);
}

}  // namespace
}  // namespace locaware::metrics
