#include "core/config_io.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace locaware::core {
namespace {

TEST(ConfigIoTest, FormatParseRoundTripDefaults) {
  const ExperimentConfig original = MakePaperConfig(ProtocolKind::kLocaware);
  auto parsed = ParseConfig(FormatConfig(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ExperimentConfig& c = parsed.ValueOrDie();
  EXPECT_EQ(c.protocol, original.protocol);
  EXPECT_EQ(c.num_peers, original.num_peers);
  EXPECT_EQ(c.seed, original.seed);
  EXPECT_EQ(c.workload.num_queries, original.workload.num_queries);
  EXPECT_EQ(c.params.ttl, original.params.ttl);
  EXPECT_EQ(c.params.bloom_bits, original.params.bloom_bits);
  EXPECT_EQ(c.params.ri.max_filenames, original.params.ri.max_filenames);
  EXPECT_EQ(c.params.ri.max_providers_per_file,
            original.params.ri.max_providers_per_file);
}

TEST(ConfigIoTest, RoundTripNonDefaultEverything) {
  ExperimentConfig original = MakePaperConfig(ProtocolKind::kDicasKeys, 1234, 99);
  original.label = "custom run";
  original.num_peers = 321;
  original.avg_degree = 4.5;
  original.num_landmarks = 5;
  original.use_uniform_underlay = true;
  original.underlay.num_routers = 77;
  original.underlay.model = net::RouterGraphModel::kBarabasiAlbert;
  original.underlay.min_rtt_ms = 20;
  original.underlay.max_rtt_ms = 300;
  original.files_per_peer = 7;
  original.catalog.num_files = 555;
  original.catalog.keyword_pool_size = 1111;
  original.catalog.keywords_per_file = 4;
  original.workload.zipf_exponent = 0.8;
  original.workload.query_rate_per_peer_s = 0.5;
  original.workload.min_query_keywords = 2;
  original.workload.max_query_keywords = 4;
  original.churn.enabled = true;
  original.churn.mean_session_s = 111;
  original.churn.mean_offline_s = 22;
  original.churn.rejoin_links = 5;
  original.params.ttl = 9;
  original.params.num_groups = 8;
  original.params.fallback_fanout = 3;
  original.params.bloom_bits = 2400;
  original.params.bloom_hashes = 6;
  original.params.maintenance_interval = 42 * sim::kSecond;
  original.params.query_deadline = 9 * sim::kSecond;
  original.params.max_response_providers = 5;
  original.params.requester_becomes_provider = false;
  original.params.loc_aware_routing = true;
  original.params.selection = SelectionStrategy::kMinRtt;
  original.params.dht_successors = 6;
  original.params.dht_fingers = 16;
  original.params.dht_republish_interval = 120 * sim::kSecond;
  original.params.ri.max_filenames = 99;
  original.params.ri.max_providers_per_file = 3;
  original.params.ri.entry_ttl = 77 * sim::kSecond;
  original.params.ri.eviction = cache::EvictionPolicy::kRandom;
  original.scheduler.shards = 6;
  original.scheduler.workers = 3;
  original.scheduler.work_stealing = false;
  original.scheduler.placement = sim::PlacementStrategy::kClustered;
  original.scheduler.event_reserve_hint = 4096;

  auto parsed = ParseConfig(FormatConfig(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ExperimentConfig& c = parsed.ValueOrDie();
  EXPECT_EQ(c.label, "custom run");
  EXPECT_EQ(c.protocol, ProtocolKind::kDicasKeys);
  EXPECT_EQ(c.num_peers, 321u);
  EXPECT_DOUBLE_EQ(c.avg_degree, 4.5);
  EXPECT_EQ(c.num_landmarks, 5u);
  EXPECT_TRUE(c.use_uniform_underlay);
  EXPECT_EQ(c.underlay.num_routers, 77u);
  EXPECT_EQ(c.underlay.model, net::RouterGraphModel::kBarabasiAlbert);
  EXPECT_DOUBLE_EQ(c.underlay.min_rtt_ms, 20);
  EXPECT_DOUBLE_EQ(c.underlay.max_rtt_ms, 300);
  EXPECT_EQ(c.files_per_peer, 7u);
  EXPECT_EQ(c.catalog.num_files, 555u);
  EXPECT_EQ(c.catalog.keywords_per_file, 4u);
  EXPECT_DOUBLE_EQ(c.workload.zipf_exponent, 0.8);
  EXPECT_TRUE(c.churn.enabled);
  EXPECT_EQ(c.churn.rejoin_links, 5u);
  EXPECT_EQ(c.params.ttl, 9u);
  EXPECT_EQ(c.params.num_groups, 8u);
  EXPECT_EQ(c.params.fallback_fanout, 3u);
  EXPECT_EQ(c.params.maintenance_interval, 42 * sim::kSecond);
  EXPECT_EQ(c.params.query_deadline, 9 * sim::kSecond);
  EXPECT_FALSE(c.params.requester_becomes_provider);
  EXPECT_TRUE(c.params.loc_aware_routing);
  ASSERT_TRUE(c.params.selection.has_value());
  EXPECT_EQ(*c.params.selection, SelectionStrategy::kMinRtt);
  EXPECT_EQ(c.params.dht_successors, 6u);
  EXPECT_EQ(c.params.dht_fingers, 16u);
  EXPECT_EQ(c.params.dht_republish_interval, 120 * sim::kSecond);
  EXPECT_EQ(c.params.ri.max_filenames, 99u);
  EXPECT_EQ(c.params.ri.entry_ttl, 77 * sim::kSecond);
  EXPECT_EQ(c.params.ri.eviction, cache::EvictionPolicy::kRandom);
  EXPECT_EQ(c.scheduler.shards, 6u);
  EXPECT_EQ(c.scheduler.workers, 3u);
  EXPECT_FALSE(c.scheduler.work_stealing);
  EXPECT_EQ(c.scheduler.placement, sim::PlacementStrategy::kClustered);
  EXPECT_EQ(c.scheduler.event_reserve_hint, 4096u);
}

TEST(ConfigIoTest, DeprecatedFlatSchedulerKeysStillParse) {
  // Pre-SchedulerConfig configs used flat keys; they must keep working (with
  // a stderr warning) so existing config files and --set scripts survive.
  auto parsed = ParseConfig(
      "shards = 4\n"
      "workers = 2\n"
      "work_stealing = false\n"
      "event_reserve_hint = 512\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ExperimentConfig& c = parsed.ValueOrDie();
  EXPECT_EQ(c.scheduler.shards, 4u);
  EXPECT_EQ(c.scheduler.workers, 2u);
  EXPECT_FALSE(c.scheduler.work_stealing);
  EXPECT_EQ(c.scheduler.event_reserve_hint, 512u);
}

TEST(ConfigIoTest, RejectsUnknownPlacement) {
  EXPECT_FALSE(ParseConfig("scheduler.placement = random\n").ok());
}

TEST(ParsePlacementStrategyTest, AllNamesAndCases) {
  EXPECT_EQ(ParsePlacementStrategy("modulo").ValueOrDie(),
            sim::PlacementStrategy::kModulo);
  EXPECT_EQ(ParsePlacementStrategy("Clustered").ValueOrDie(),
            sim::PlacementStrategy::kClustered);
  EXPECT_EQ(ParsePlacementStrategy("CLUSTERED").ValueOrDie(),
            sim::PlacementStrategy::kClustered);
  EXPECT_FALSE(ParsePlacementStrategy("spectral").ok());
}

TEST(ConfigIoTest, TracePathRoundTrips) {
  ExperimentConfig original = MakePaperConfig(ProtocolKind::kLocaware);
  original.trace_path = "/data/run1.trace";
  auto parsed = ParseConfig(FormatConfig(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().trace_path, "/data/run1.trace");
  // Empty trace_path is simply omitted from the serialization.
  original.trace_path.clear();
  EXPECT_EQ(FormatConfig(original).find("trace_path"), std::string::npos);
}

TEST(ConfigIoTest, CommentsAndBlankLinesIgnored) {
  auto parsed = ParseConfig(
      "# a comment\n"
      "\n"
      "num_peers = 10  # trailing comment\n"
      "   \t  \n"
      "seed = 5\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.ValueOrDie().num_peers, 10u);
  EXPECT_EQ(parsed.ValueOrDie().seed, 5u);
}

TEST(ConfigIoTest, UnspecifiedFieldsKeepDefaults) {
  auto parsed = ParseConfig("protocol = dicas\n");
  ASSERT_TRUE(parsed.ok());
  const ExperimentConfig& c = parsed.ValueOrDie();
  EXPECT_EQ(c.protocol, ProtocolKind::kDicas);
  EXPECT_EQ(c.num_peers, 1000u);  // default intact
  EXPECT_EQ(c.params.ttl, 7u);
}

TEST(ConfigIoTest, RejectsUnknownKey) {
  auto parsed = ParseConfig("no_such_knob = 1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("no_such_knob"), std::string::npos);
}

TEST(ConfigIoTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseConfig("num_peers 10\n").ok());     // no '='
  EXPECT_FALSE(ParseConfig("= 10\n").ok());             // empty key
  EXPECT_FALSE(ParseConfig("num_peers =\n").ok());      // empty value
  EXPECT_FALSE(ParseConfig("num_peers = ten\n").ok());  // not a number
  EXPECT_FALSE(ParseConfig("avg_degree = 3..0\n").ok());
  EXPECT_FALSE(ParseConfig("churn.enabled = maybe\n").ok());
  EXPECT_FALSE(ParseConfig("protocol = gnutella2\n").ok());
  EXPECT_FALSE(ParseConfig("ri.eviction = mru\n").ok());
  EXPECT_FALSE(ParseConfig("underlay.model = ring\n").ok());
  EXPECT_FALSE(ParseConfig("params.selection = psychic\n").ok());
}

TEST(ConfigIoTest, SaveLoadFile) {
  const std::string path = ::testing::TempDir() + "/locaware_cfg_test.cfg";
  ExperimentConfig original = MakePaperConfig(ProtocolKind::kFlooding, 77, 3);
  ASSERT_TRUE(SaveConfig(original, path).ok());
  auto loaded = LoadConfig(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().protocol, ProtocolKind::kFlooding);
  EXPECT_EQ(loaded.ValueOrDie().workload.num_queries, 77u);
  EXPECT_EQ(loaded.ValueOrDie().seed, 3u);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadConfig(path).ok());
}

TEST(ParseProtocolKindTest, AllNamesAndCases) {
  EXPECT_EQ(ParseProtocolKind("flooding").ValueOrDie(), ProtocolKind::kFlooding);
  EXPECT_EQ(ParseProtocolKind("Dicas").ValueOrDie(), ProtocolKind::kDicas);
  EXPECT_EQ(ParseProtocolKind("DICAS-KEYS").ValueOrDie(), ProtocolKind::kDicasKeys);
  EXPECT_EQ(ParseProtocolKind("dicaskeys").ValueOrDie(), ProtocolKind::kDicasKeys);
  EXPECT_EQ(ParseProtocolKind("Locaware").ValueOrDie(), ProtocolKind::kLocaware);
  EXPECT_EQ(ParseProtocolKind("dht").ValueOrDie(), ProtocolKind::kDht);
  EXPECT_EQ(ParseProtocolKind("DHT").ValueOrDie(), ProtocolKind::kDht);
  EXPECT_EQ(ParseProtocolKind("Hybrid").ValueOrDie(), ProtocolKind::kHybrid);
  EXPECT_FALSE(ParseProtocolKind("napster").ok());
}

TEST(ConfigIoTest, DhtProtocolsRoundTripThroughSerialization) {
  for (ProtocolKind kind : {ProtocolKind::kDht, ProtocolKind::kHybrid}) {
    ExperimentConfig original = MakePaperConfig(kind, 50, 11);
    original.params.dht_republish_interval = 90 * sim::kSecond;
    auto parsed = ParseConfig(FormatConfig(original));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed.ValueOrDie().protocol, kind);
    EXPECT_EQ(parsed.ValueOrDie().params.dht_republish_interval, 90 * sim::kSecond);
  }
}

TEST(ParseSelectionStrategyTest, AllNames) {
  EXPECT_EQ(ParseSelectionStrategy("locid-then-rtt").ValueOrDie(),
            SelectionStrategy::kLocIdThenRtt);
  EXPECT_EQ(ParseSelectionStrategy("min-rtt").ValueOrDie(), SelectionStrategy::kMinRtt);
  EXPECT_EQ(ParseSelectionStrategy("random").ValueOrDie(), SelectionStrategy::kRandom);
  EXPECT_EQ(ParseSelectionStrategy("first-responder").ValueOrDie(),
            SelectionStrategy::kFirstResponder);
  EXPECT_FALSE(ParseSelectionStrategy("closest").ok());
}

TEST(ResultToJsonTest, ContainsSummaryAndSeries) {
  ExperimentResult result;
  result.label = "Locaware";
  result.summary.num_queries = 100;
  result.summary.success_rate = 0.25;
  result.summary.msgs_per_query = 40.5;
  metrics::BucketPoint p;
  p.queries_end = 50;
  p.success_rate = 0.2;
  result.series.push_back(p);
  p.queries_end = 100;
  p.success_rate = 0.3;
  result.series.push_back(p);

  const std::string json = ResultToJson(result);
  EXPECT_NE(json.find("\"label\": \"Locaware\""), std::string::npos);
  EXPECT_NE(json.find("\"num_queries\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"success_rate\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"queries_end\": 50"), std::string::npos);
  EXPECT_NE(json.find("\"queries_end\": 100"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ConfigIoTest, PatchViaAppendedLineWinsLast) {
  // The CLI's --set mechanism: append an override line to a serialized
  // config; the last assignment wins.
  ExperimentConfig base = MakePaperConfig(ProtocolKind::kLocaware);
  auto patched = ParseConfig(FormatConfig(base) + "\nparams.ttl = 3\n");
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(patched.ValueOrDie().params.ttl, 3u);
}

}  // namespace
}  // namespace locaware::core
