// The interned-symbol contract, property-tested: every id-plane fast path
// (catalog matching, response-index posting lists, group hashing, Bloom probe
// hashes, wire-size accounting) must agree exactly with a string-based
// reference implementation of the same rule.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "cache/response_index.h"
#include "catalog/file_catalog.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/group_hash.h"
#include "overlay/message.h"

namespace locaware {
namespace {

using catalog::CatalogConfig;
using catalog::FileCatalog;

CatalogConfig DenseCatalog() {
  CatalogConfig cfg;
  cfg.num_files = 300;
  cfg.keyword_pool_size = 90;  // heavy keyword reuse -> multi-file matches
  cfg.keywords_per_file = 3;
  return cfg;
}

/// Keyword strings of an id set, resolved through the catalog.
std::vector<std::string> Strings(const FileCatalog& cat,
                                 const std::vector<KeywordId>& kws) {
  std::vector<std::string> out;
  for (KeywordId kw : kws) out.push_back(cat.keyword(kw));
  return out;
}

/// Draws a random query: 1..3 keyword ids, usually from a real file (so hits
/// exist), sometimes fully random (so misses exist). Sorted + deduplicated.
std::vector<KeywordId> RandomQuery(const FileCatalog& cat, Rng* rng) {
  std::vector<KeywordId> kws;
  const size_t n = static_cast<size_t>(rng->UniformInt(1, 3));
  if (rng->Bernoulli(0.7)) {
    const FileId f = static_cast<FileId>(rng->UniformInt(0, cat.num_files() - 1));
    const auto& file_kws = cat.keywords(f);
    for (size_t pos : rng->SampleIndices(file_kws.size(), std::min(n, file_kws.size()))) {
      kws.push_back(file_kws[pos]);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      kws.push_back(static_cast<KeywordId>(rng->UniformInt(0, cat.num_keywords() - 1)));
    }
  }
  std::sort(kws.begin(), kws.end());
  kws.erase(std::unique(kws.begin(), kws.end()), kws.end());
  return kws;
}

TEST(InternPropertyTest, CatalogMatchesAgreesWithStringReference) {
  Rng rng(11);
  auto cat = std::move(FileCatalog::Generate(DenseCatalog(), &rng)).ValueOrDie();
  Rng query_rng(12);
  for (int trial = 0; trial < 500; ++trial) {
    const std::vector<KeywordId> query = RandomQuery(cat, &query_rng);
    const std::vector<std::string> query_strings = Strings(cat, query);
    // Reference: the string-era rule, string compares over tokenized names.
    std::set<FileId> expected;
    for (FileId f = 0; f < cat.num_files(); ++f) {
      if (ContainsAllKeywords(TokenizeKeywords(cat.filename(f)), query_strings)) {
        expected.insert(f);
      }
    }
    std::set<FileId> got;
    for (FileId f = 0; f < cat.num_files(); ++f) {
      if (cat.Matches(f, query)) got.insert(f);
    }
    EXPECT_EQ(got, expected) << "trial " << trial;
    const auto fast = cat.FindMatches(query);
    EXPECT_EQ(std::set<FileId>(fast.begin(), fast.end()), expected)
        << "trial " << trial;
  }
}

TEST(InternPropertyTest, ResponseIndexLookupAgreesWithStringReference) {
  Rng rng(21);
  auto cat = std::move(FileCatalog::Generate(DenseCatalog(), &rng)).ValueOrDie();

  cache::ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  cache::ResponseIndex ri(cfg);
  // A string-mirror of the index contents: filename string -> FileId.
  std::vector<FileId> resident;

  Rng op_rng(22);
  sim::SimTime now = 0;
  for (int step = 0; step < 800; ++step) {
    ++now;
    if (op_rng.Bernoulli(0.4)) {
      const FileId f = static_cast<FileId>(op_rng.UniformInt(0, cat.num_files() - 1));
      const auto outcome = ri.AddProvider(
          f, cat.sorted_keywords(f),
          cache::ProviderEntry{static_cast<PeerId>(op_rng.UniformInt(0, 30)), 0, 0},
          now);
      if (outcome.file_inserted) resident.push_back(f);
      for (const auto& gone : outcome.evicted) {
        resident.erase(std::find(resident.begin(), resident.end(), gone.file));
      }
    } else {
      const std::vector<KeywordId> query = RandomQuery(cat, &op_rng);
      const std::vector<std::string> query_strings = Strings(cat, query);
      // Reference hit set: string containment over the resident files'
      // tokenized filenames.
      std::set<FileId> expected;
      for (FileId f : resident) {
        if (ContainsAllKeywords(TokenizeKeywords(cat.filename(f)), query_strings)) {
          expected.insert(f);
        }
      }
      std::set<FileId> got;
      for (const auto& hit : ri.LookupByKeywords(query, now)) got.insert(hit.file);
      ASSERT_EQ(got, expected) << "step " << step;
    }
  }
}

TEST(InternPropertyTest, GroupHashesAgreeWithStringReference) {
  Rng rng(31);
  auto cat = std::move(FileCatalog::Generate(DenseCatalog(), &rng)).ValueOrDie();
  for (uint16_t m : {1, 4, 8, 64}) {
    for (FileId f = 0; f < 50; ++f) {
      // Whole-file group: precomputed set hash == string-era filename hash.
      EXPECT_EQ(core::GroupOfSetFnv(cat.FileSetFnv(f), m),
                core::GroupOfFilename(cat.filename(f), m));
    }
    Rng query_rng(32);
    for (int trial = 0; trial < 100; ++trial) {
      const std::vector<KeywordId> query = RandomQuery(cat, &query_rng);
      EXPECT_EQ(core::GroupOfSetFnv(cat.CanonicalSetFnv(query), m),
                core::GroupOfKeywords(Strings(cat, query), m));
      for (KeywordId kw : query) {
        EXPECT_EQ(core::GroupOfKeywordFnv(cat.KeywordFnv(kw), m),
                  core::GroupOfKeyword(cat.keyword(kw), m));
      }
    }
  }
}

TEST(InternPropertyTest, BloomProbeHashesAgreeWithStringInserts) {
  Rng rng(41);
  auto cat = std::move(FileCatalog::Generate(DenseCatalog(), &rng)).ValueOrDie();
  bloom::BloomFilter by_hash(1200, 4);
  bloom::BloomFilter by_string(1200, 4);
  for (KeywordId kw = 0; kw < cat.num_keywords(); ++kw) {
    EXPECT_EQ(by_hash.ProbePositions(cat.KeywordBloomHash(kw)),
              by_string.ProbePositions(cat.keyword(kw)));
  }
  for (KeywordId kw = 0; kw < cat.num_keywords(); kw += 3) {
    by_hash.Insert(cat.KeywordBloomHash(kw));
    by_string.Insert(cat.keyword(kw));
  }
  EXPECT_EQ(by_hash, by_string);
  for (KeywordId kw = 0; kw < cat.num_keywords(); ++kw) {
    EXPECT_EQ(by_hash.MayContain(cat.KeywordBloomHash(kw)),
              by_string.MayContain(cat.keyword(kw)));
  }
}

TEST(InternRegressionTest, EstimateSizeBytesIsByteIdenticalToStringEncoding) {
  Rng rng(51);
  auto cat = std::move(FileCatalog::Generate(DenseCatalog(), &rng)).ValueOrDie();
  Rng query_rng(52);

  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<KeywordId> query = RandomQuery(cat, &query_rng);
    const std::vector<std::string> query_strings = Strings(cat, query);

    overlay::QueryMessage q;
    q.qid = trial;
    q.origin = 1;
    q.keywords = query;
    // String-era reference: header(23) + address(6) + locid(1) + ttl/hops(2)
    // + per keyword (len + 1).
    size_t expected_q = 23 + 6 + 1 + 2;
    for (const std::string& kw : query_strings) expected_q += kw.size() + 1;
    EXPECT_EQ(EstimateSizeBytes(q, cat), expected_q) << "trial " << trial;

    overlay::ResponseMessage r;
    r.qid = trial;
    r.query_keywords = query;
    const size_t num_records = static_cast<size_t>(query_rng.UniformInt(0, 3));
    size_t expected_r = 23 + 2 * 6 + 1 + 1;
    for (const std::string& kw : query_strings) expected_r += kw.size() + 1;
    for (size_t i = 0; i < num_records; ++i) {
      overlay::ResponseRecord rec;
      rec.file = static_cast<FileId>(query_rng.UniformInt(0, cat.num_files() - 1));
      const size_t providers = static_cast<size_t>(query_rng.UniformInt(1, 3));
      for (size_t p = 0; p < providers; ++p) {
        rec.providers.push_back(overlay::ProviderInfo{static_cast<PeerId>(p), 0});
      }
      expected_r += cat.filename(rec.file).size() + 1;
      expected_r += providers * (6 + 1);
      r.records.push_back(std::move(rec));
    }
    EXPECT_EQ(EstimateSizeBytes(r, cat), expected_r) << "trial " << trial;
  }
}

}  // namespace
}  // namespace locaware
