#include "cache/response_index.h"

#include <set>

#include <gtest/gtest.h>

#include "sim/sim_time.h"

namespace locaware::cache {
namespace {

using sim::kSecond;

ResponseIndexConfig SmallConfig() {
  ResponseIndexConfig cfg;
  cfg.max_filenames = 3;
  cfg.max_providers_per_file = 2;
  return cfg;
}

ProviderEntry P(PeerId peer, LocId loc = 0) { return ProviderEntry{peer, loc, 0}; }

/// Materializes a query list (LookupByKeywords takes a span; a braced list
/// needs a home with a lifetime).
std::vector<KeywordId> Q(std::initializer_list<KeywordId> ids) { return ids; }

// A small id universe: keywords by number, files by number. Keyword-id sets
// are sorted ascending per the id-plane contract.
constexpr KeywordId kAlpha = 1, kBeta = 2, kGamma = 3, kDelta = 4;
constexpr FileId kAbc = 10;   // {alpha, beta, gamma}
constexpr FileId kAd = 11;    // {alpha, delta}
const std::vector<KeywordId> kAbcKws{kAlpha, kBeta, kGamma};
const std::vector<KeywordId> kAdKws{kAlpha, kDelta};

/// Files f1..f4 used by the eviction tests: each has a shared keyword 100
/// and a unique keyword (200 + i).
std::vector<KeywordId> FKws(KeywordId i) {
  return {100, static_cast<KeywordId>(200 + i)};
}

TEST(ResponseIndexTest, RemoveProviderInvalidatesDepartedPeer) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider(kAbc, kAbcKws, P(7), 0);
  ri.AddProvider(kAbc, kAbcKws, P(8), 1);
  ri.AddProvider(kAd, kAdKws, P(7), 2);

  // Peer 7 departs: kAbc keeps provider 8; kAd loses its only provider and is
  // reported with its keywords so derived structures (Locaware's counting
  // Bloom filter) can delete them.
  const auto removed = ri.RemoveProvider(7);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].file, kAd);
  EXPECT_EQ(removed[0].keywords, kAdKws);
  EXPECT_FALSE(ri.Contains(kAd));
  auto hit = ri.LookupFile(kAbc, 3);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 1u);
  EXPECT_EQ(hit->providers[0].provider, 8u);
  // A peer the index never knew is a clean no-op, and departure-driven drops
  // are counted apart from age expiries.
  EXPECT_TRUE(ri.RemoveProvider(99).empty());
  EXPECT_EQ(ri.stats().invalidations, 2u);
  EXPECT_EQ(ri.stats().expirations, 0u);
}

TEST(ResponseIndexTest, InsertAndExactLookup) {
  ResponseIndex ri(SmallConfig());
  const auto outcome = ri.AddProvider(kAbc, kAbcKws, P(7, 3), 100);
  EXPECT_TRUE(outcome.file_inserted);
  EXPECT_TRUE(outcome.provider_inserted);
  EXPECT_TRUE(outcome.evicted.empty());

  auto hit = ri.LookupFile(kAbc, 200);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 1u);
  EXPECT_EQ(hit->providers[0].provider, 7u);
  EXPECT_EQ(hit->providers[0].loc_id, 3u);
  EXPECT_EQ(hit->providers[0].added_at, 100);
}

TEST(ResponseIndexTest, KeywordLookupUsesContainment) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider(kAbc, kAbcKws, P(1), 0);
  EXPECT_EQ(ri.LookupByKeywords(Q({kBeta}), 1).size(), 1u);
  EXPECT_EQ(ri.LookupByKeywords(Q({kAlpha, kGamma}), 1).size(), 1u);
  EXPECT_TRUE(ri.LookupByKeywords(Q({kDelta}), 1).empty());
  EXPECT_TRUE(ri.LookupByKeywords(Q({kAlpha, kDelta}), 1).empty());
}

TEST(ResponseIndexTest, MultipleFilesCanMatchOneQuery) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider(kAbc, kAbcKws, P(1), 0);
  ri.AddProvider(kAd, kAdKws, P(2), 0);
  EXPECT_EQ(ri.LookupByKeywords(Q({kAlpha}), 1).size(), 2u);
}

TEST(ResponseIndexTest, ProvidersAreMostRecentFirstAndBounded) {
  ResponseIndex ri(SmallConfig());  // 2 providers max
  ri.AddProvider(kAbc, kAbcKws, P(1), 10);
  ri.AddProvider(kAbc, kAbcKws, P(2), 20);
  ri.AddProvider(kAbc, kAbcKws, P(3), 30);  // evicts peer 1

  auto hit = ri.LookupFile(kAbc, 40);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 2u);
  EXPECT_EQ(hit->providers[0].provider, 3u);  // "most recent pf entries
  EXPECT_EQ(hit->providers[1].provider, 2u);  //  replace the oldest ones"
}

TEST(ResponseIndexTest, ReAddingProviderRefreshesIt) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider(kAbc, kAbcKws, P(1, 5), 10);
  ri.AddProvider(kAbc, kAbcKws, P(2), 20);
  ri.AddProvider(kAbc, kAbcKws, P(1, 9), 30);  // refresh peer 1

  auto hit = ri.LookupFile(kAbc, 40);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 2u);  // not duplicated
  EXPECT_EQ(hit->providers[0].provider, 1u);
  EXPECT_EQ(hit->providers[0].loc_id, 9u);  // locId updated on refresh
  EXPECT_EQ(hit->providers[0].added_at, 30);
}

TEST(ResponseIndexTest, CapacityEvictionReportsVictimWithKeywords) {
  ResponseIndex ri(SmallConfig());  // 3 files max
  ri.AddProvider(1, FKws(1), P(1), 1);
  ri.AddProvider(2, FKws(2), P(2), 2);
  ri.AddProvider(3, FKws(3), P(3), 3);
  const auto outcome = ri.AddProvider(4, FKws(4), P(4), 4);
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].file, 1u);  // LRU victim
  EXPECT_EQ(outcome.evicted[0].keywords, FKws(1));
  EXPECT_EQ(ri.num_filenames(), 3u);
  EXPECT_FALSE(ri.Contains(1));
}

TEST(ResponseIndexTest, LookupRefreshesLruPosition) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider(1, FKws(1), P(1), 1);
  ri.AddProvider(2, FKws(2), P(2), 2);
  ri.AddProvider(3, FKws(3), P(3), 3);
  // Touch file 1 so file 2 becomes the LRU victim.
  ri.LookupFile(1, 4);
  const auto outcome = ri.AddProvider(4, FKws(4), P(4), 5);
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].file, 2u);
  EXPECT_TRUE(ri.Contains(1));
}

TEST(ResponseIndexTest, FifoIgnoresUse) {
  ResponseIndexConfig cfg = SmallConfig();
  cfg.eviction = EvictionPolicy::kFifo;
  ResponseIndex ri(cfg);
  ri.AddProvider(1, FKws(1), P(1), 1);
  ri.AddProvider(2, FKws(2), P(2), 2);
  ri.AddProvider(3, FKws(3), P(3), 3);
  ri.LookupFile(1, 4);  // FIFO must not care
  const auto outcome = ri.AddProvider(4, FKws(4), P(4), 5);
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].file, 1u);
}

TEST(ResponseIndexTest, RandomEvictionStillBoundsCapacity) {
  ResponseIndexConfig cfg = SmallConfig();
  cfg.eviction = EvictionPolicy::kRandom;
  ResponseIndex ri(cfg);
  for (int i = 0; i < 50; ++i) {
    ri.AddProvider(static_cast<FileId>(i), FKws(static_cast<KeywordId>(i)),
                   P(static_cast<PeerId>(i)), i);
    EXPECT_LE(ri.num_filenames(), 3u);
  }
  EXPECT_EQ(ri.stats().evictions, 47u);
}

TEST(ResponseIndexTest, StaleProvidersAreFilteredFromLookups) {
  ResponseIndexConfig cfg = SmallConfig();
  cfg.entry_ttl = 10 * kSecond;
  ResponseIndex ri(cfg);
  ri.AddProvider(kAbc, kAbcKws, P(1), 0);
  ri.AddProvider(kAbc, kAbcKws, P(2), 5 * kSecond);

  // At t=12s provider 1 (age 12s) is stale, provider 2 (age 7s) is live.
  auto hit = ri.LookupFile(kAbc, 12 * kSecond);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 1u);
  EXPECT_EQ(hit->providers[0].provider, 2u);

  // At t=20s everything is stale: no hit, but the entry still exists until a
  // sweep removes it (lookups never erase).
  EXPECT_FALSE(ri.LookupFile(kAbc, 20 * kSecond).has_value());
  EXPECT_TRUE(ri.Contains(kAbc));
}

TEST(ResponseIndexTest, ExpireStaleSweepsAndReportsKeywords) {
  ResponseIndexConfig cfg = SmallConfig();
  cfg.entry_ttl = 10 * kSecond;
  ResponseIndex ri(cfg);
  ri.AddProvider(kAbc, kAbcKws, P(1), 0);
  ri.AddProvider(2, FKws(2), P(2), 8 * kSecond);

  const auto removed = ri.ExpireStale(15 * kSecond);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].file, kAbc);
  EXPECT_EQ(removed[0].keywords, kAbcKws);
  EXPECT_FALSE(ri.Contains(kAbc));
  EXPECT_TRUE(ri.Contains(2));
  EXPECT_GT(ri.stats().expirations, 0u);
}

TEST(ResponseIndexTest, ExpireStaleNoTtlIsNoOp) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider(kAbc, kAbcKws, P(1), 0);
  EXPECT_TRUE(ri.ExpireStale(1000 * kSecond).empty());
  EXPECT_TRUE(ri.Contains(kAbc));
}

TEST(ResponseIndexTest, EraseRemovesEntry) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider(kAbc, kAbcKws, P(1), 0);
  EXPECT_TRUE(ri.Erase(kAbc));
  EXPECT_FALSE(ri.Erase(kAbc));
  EXPECT_EQ(ri.num_filenames(), 0u);
  // The inverted index dropped the postings too: no keyword matches remain.
  EXPECT_TRUE(ri.LookupByKeywords(Q({kAlpha}), 1).empty());
}

TEST(ResponseIndexTest, TotalProviderCountTracksDuplication) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider(1, FKws(1), P(1), 1);
  ri.AddProvider(1, FKws(1), P(2), 2);
  ri.AddProvider(2, FKws(2), P(3), 3);
  EXPECT_EQ(ri.TotalProviderCount(), 3u);
}

TEST(ResponseIndexTest, FilesAndKeywordsAccessors) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider(kAbc, kAbcKws, P(1), 0);
  const auto files = ri.Files();
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], kAbc);
  EXPECT_EQ(ri.KeywordsOf(kAbc), kAbcKws);
  EXPECT_DEATH(ri.KeywordsOf(999), "absent");
}

TEST(ResponseIndexTest, SweepsAndReportsAreSortedNotTableOrder) {
  // The backing table is unordered; everything the index *reports as a list*
  // must be deterministic regardless of table layout. The contract: Files(),
  // the expiry sweep, and the departed-provider sweep all act in sorted
  // FileId order. Insertion order here is deliberately scrambled so that a
  // container whose iteration order follows insertion (or a hash layout
  // correlated with it) would fail without the collect-and-sort rule.
  ResponseIndexConfig cfg;
  cfg.max_filenames = 16;
  cfg.entry_ttl = 10;
  ResponseIndex ri(cfg);
  const std::vector<FileId> scrambled = {9, 3, 14, 1, 12, 7, 5, 11};
  for (FileId f : scrambled) {
    ri.AddProvider(f, FKws(static_cast<KeywordId>(f)), P(42), /*now=*/0);
  }

  std::vector<FileId> expected = scrambled;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(ri.Files(), expected);

  // Everything is stale at t=100: the sweep must report in sorted order.
  const auto expired = ri.ExpireStale(100);
  ASSERT_EQ(expired.size(), scrambled.size());
  for (size_t i = 0; i < expired.size(); ++i) {
    EXPECT_EQ(expired[i].file, expected[i]) << "expiry sweep not sorted at " << i;
  }

  // Same for the departure sweep.
  for (FileId f : scrambled) {
    ri.AddProvider(f, FKws(static_cast<KeywordId>(f)), P(42), /*now=*/200);
  }
  const auto invalidated = ri.RemoveProvider(42);
  ASSERT_EQ(invalidated.size(), scrambled.size());
  for (size_t i = 0; i < invalidated.size(); ++i) {
    EXPECT_EQ(invalidated[i].file, expected[i])
        << "departure sweep not sorted at " << i;
  }
}

TEST(ResponseIndexTest, StatsCountHitsAndMisses) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider(kAbc, kAbcKws, P(1), 0);
  ri.LookupByKeywords(Q({kAlpha}), 1);  // hit
  ri.LookupByKeywords(Q({kDelta}), 1);  // miss
  ri.LookupFile(kAbc, 1);            // hit
  EXPECT_EQ(ri.stats().lookups, 3u);
  EXPECT_EQ(ri.stats().hits, 2u);
  EXPECT_EQ(ri.stats().inserts, 1u);
}

TEST(ResponseIndexTest, SingleProviderModeModelsDicas) {
  ResponseIndexConfig cfg = SmallConfig();
  cfg.max_providers_per_file = 1;
  ResponseIndex ri(cfg);
  ri.AddProvider(kAbc, kAbcKws, P(1), 1);
  ri.AddProvider(kAbc, kAbcKws, P(2), 2);
  auto hit = ri.LookupFile(kAbc, 3);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 1u);
  EXPECT_EQ(hit->providers[0].provider, 2u);  // newest replaces the only slot
}

TEST(ResponseIndexTest, InvalidConfigDies) {
  ResponseIndexConfig cfg;
  cfg.max_filenames = 0;
  EXPECT_DEATH(ResponseIndex{cfg}, "CHECK");
  cfg = ResponseIndexConfig{};
  cfg.max_providers_per_file = 0;
  EXPECT_DEATH(ResponseIndex{cfg}, "CHECK");
}

class EvictionPolicyTest : public ::testing::TestWithParam<EvictionPolicy> {};

/// Property: whatever the policy, capacity is a hard bound and every eviction
/// is reported exactly once with its keywords.
TEST_P(EvictionPolicyTest, CapacityIsRespectedAndEvictionsReported) {
  ResponseIndexConfig cfg;
  cfg.max_filenames = 5;
  cfg.max_providers_per_file = 2;
  cfg.eviction = GetParam();
  ResponseIndex ri(cfg);

  std::set<FileId> resident;
  size_t reported_evictions = 0;
  for (int i = 0; i < 100; ++i) {
    const FileId file = static_cast<FileId>(i);
    const auto outcome =
        ri.AddProvider(file, FKws(static_cast<KeywordId>(i)), P(i % 7), i);
    resident.insert(file);
    for (const auto& gone : outcome.evicted) {
      EXPECT_TRUE(resident.erase(gone.file) == 1) << gone.file;
      EXPECT_EQ(gone.keywords.size(), 2u);
      ++reported_evictions;
    }
    EXPECT_LE(ri.num_filenames(), 5u);
    EXPECT_EQ(ri.num_filenames(), resident.size());
  }
  EXPECT_EQ(reported_evictions, 95u);
  EXPECT_EQ(ri.stats().evictions, 95u);
}

INSTANTIATE_TEST_SUITE_P(Policies, EvictionPolicyTest,
                         ::testing::Values(EvictionPolicy::kLru, EvictionPolicy::kFifo,
                                           EvictionPolicy::kRandom),
                         [](const auto& info) {
                           return EvictionPolicyName(info.param);
                         });

}  // namespace
}  // namespace locaware::cache
