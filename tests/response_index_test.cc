#include "cache/response_index.h"

#include <set>

#include <gtest/gtest.h>

#include "sim/sim_time.h"

namespace locaware::cache {
namespace {

using sim::kSecond;

ResponseIndexConfig SmallConfig() {
  ResponseIndexConfig cfg;
  cfg.max_filenames = 3;
  cfg.max_providers_per_file = 2;
  return cfg;
}

ProviderEntry P(PeerId peer, LocId loc = 0) { return ProviderEntry{peer, loc, 0}; }

const std::vector<std::string> kAbcKws{"alpha", "beta", "gamma"};

TEST(ResponseIndexTest, InsertAndExactLookup) {
  ResponseIndex ri(SmallConfig());
  const auto outcome = ri.AddProvider("alpha beta gamma", kAbcKws, P(7, 3), 100);
  EXPECT_TRUE(outcome.filename_inserted);
  EXPECT_TRUE(outcome.provider_inserted);
  EXPECT_TRUE(outcome.evicted.empty());

  auto hit = ri.LookupFilename("alpha beta gamma", 200);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 1u);
  EXPECT_EQ(hit->providers[0].provider, 7u);
  EXPECT_EQ(hit->providers[0].loc_id, 3u);
  EXPECT_EQ(hit->providers[0].added_at, 100);
}

TEST(ResponseIndexTest, KeywordLookupUsesContainment) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1), 0);
  EXPECT_EQ(ri.LookupByKeywords({"beta"}, 1).size(), 1u);
  EXPECT_EQ(ri.LookupByKeywords({"gamma", "alpha"}, 1).size(), 1u);
  EXPECT_TRUE(ri.LookupByKeywords({"delta"}, 1).empty());
  EXPECT_TRUE(ri.LookupByKeywords({"alpha", "delta"}, 1).empty());
}

TEST(ResponseIndexTest, MultipleFilenamesCanMatchOneQuery) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1), 0);
  ri.AddProvider("alpha delta", {"alpha", "delta"}, P(2), 0);
  EXPECT_EQ(ri.LookupByKeywords({"alpha"}, 1).size(), 2u);
}

TEST(ResponseIndexTest, ProvidersAreMostRecentFirstAndBounded) {
  ResponseIndex ri(SmallConfig());  // 2 providers max
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1), 10);
  ri.AddProvider("alpha beta gamma", kAbcKws, P(2), 20);
  ri.AddProvider("alpha beta gamma", kAbcKws, P(3), 30);  // evicts peer 1

  auto hit = ri.LookupFilename("alpha beta gamma", 40);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 2u);
  EXPECT_EQ(hit->providers[0].provider, 3u);  // "most recent pf entries
  EXPECT_EQ(hit->providers[1].provider, 2u);  //  replace the oldest ones"
}

TEST(ResponseIndexTest, ReAddingProviderRefreshesIt) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1, 5), 10);
  ri.AddProvider("alpha beta gamma", kAbcKws, P(2), 20);
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1, 9), 30);  // refresh peer 1

  auto hit = ri.LookupFilename("alpha beta gamma", 40);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 2u);  // not duplicated
  EXPECT_EQ(hit->providers[0].provider, 1u);
  EXPECT_EQ(hit->providers[0].loc_id, 9u);  // locId updated on refresh
  EXPECT_EQ(hit->providers[0].added_at, 30);
}

TEST(ResponseIndexTest, CapacityEvictionReportsVictimWithKeywords) {
  ResponseIndex ri(SmallConfig());  // 3 filenames max
  ri.AddProvider("f one", {"f", "one"}, P(1), 1);
  ri.AddProvider("f two", {"f", "two"}, P(2), 2);
  ri.AddProvider("f three", {"f", "three"}, P(3), 3);
  const auto outcome = ri.AddProvider("f four", {"f", "four"}, P(4), 4);
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].filename, "f one");  // LRU victim
  EXPECT_EQ(outcome.evicted[0].keywords, (std::vector<std::string>{"f", "one"}));
  EXPECT_EQ(ri.num_filenames(), 3u);
  EXPECT_FALSE(ri.Contains("f one"));
}

TEST(ResponseIndexTest, LookupRefreshesLruPosition) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider("f one", {"f", "one"}, P(1), 1);
  ri.AddProvider("f two", {"f", "two"}, P(2), 2);
  ri.AddProvider("f three", {"f", "three"}, P(3), 3);
  // Touch "f one" so "f two" becomes the LRU victim.
  ri.LookupFilename("f one", 4);
  const auto outcome = ri.AddProvider("f four", {"f", "four"}, P(4), 5);
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].filename, "f two");
  EXPECT_TRUE(ri.Contains("f one"));
}

TEST(ResponseIndexTest, FifoIgnoresUse) {
  ResponseIndexConfig cfg = SmallConfig();
  cfg.eviction = EvictionPolicy::kFifo;
  ResponseIndex ri(cfg);
  ri.AddProvider("f one", {"f", "one"}, P(1), 1);
  ri.AddProvider("f two", {"f", "two"}, P(2), 2);
  ri.AddProvider("f three", {"f", "three"}, P(3), 3);
  ri.LookupFilename("f one", 4);  // FIFO must not care
  const auto outcome = ri.AddProvider("f four", {"f", "four"}, P(4), 5);
  ASSERT_EQ(outcome.evicted.size(), 1u);
  EXPECT_EQ(outcome.evicted[0].filename, "f one");
}

TEST(ResponseIndexTest, RandomEvictionStillBoundsCapacity) {
  ResponseIndexConfig cfg = SmallConfig();
  cfg.eviction = EvictionPolicy::kRandom;
  ResponseIndex ri(cfg);
  for (int i = 0; i < 50; ++i) {
    ri.AddProvider("file " + std::to_string(i), {"file", std::to_string(i)},
                   P(static_cast<PeerId>(i)), i);
    EXPECT_LE(ri.num_filenames(), 3u);
  }
  EXPECT_EQ(ri.stats().evictions, 47u);
}

TEST(ResponseIndexTest, StaleProvidersAreFilteredFromLookups) {
  ResponseIndexConfig cfg = SmallConfig();
  cfg.entry_ttl = 10 * kSecond;
  ResponseIndex ri(cfg);
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1), 0);
  ri.AddProvider("alpha beta gamma", kAbcKws, P(2), 5 * kSecond);

  // At t=12s provider 1 (age 12s) is stale, provider 2 (age 7s) is live.
  auto hit = ri.LookupFilename("alpha beta gamma", 12 * kSecond);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 1u);
  EXPECT_EQ(hit->providers[0].provider, 2u);

  // At t=20s everything is stale: no hit, but the entry still exists until a
  // sweep removes it (lookups never erase).
  EXPECT_FALSE(ri.LookupFilename("alpha beta gamma", 20 * kSecond).has_value());
  EXPECT_TRUE(ri.Contains("alpha beta gamma"));
}

TEST(ResponseIndexTest, ExpireStaleSweepsAndReportsKeywords) {
  ResponseIndexConfig cfg = SmallConfig();
  cfg.entry_ttl = 10 * kSecond;
  ResponseIndex ri(cfg);
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1), 0);
  ri.AddProvider("f two", {"f", "two"}, P(2), 8 * kSecond);

  const auto removed = ri.ExpireStale(15 * kSecond);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].filename, "alpha beta gamma");
  EXPECT_EQ(removed[0].keywords, kAbcKws);
  EXPECT_FALSE(ri.Contains("alpha beta gamma"));
  EXPECT_TRUE(ri.Contains("f two"));
  EXPECT_GT(ri.stats().expirations, 0u);
}

TEST(ResponseIndexTest, ExpireStaleNoTtlIsNoOp) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1), 0);
  EXPECT_TRUE(ri.ExpireStale(1000 * kSecond).empty());
  EXPECT_TRUE(ri.Contains("alpha beta gamma"));
}

TEST(ResponseIndexTest, EraseRemovesEntry) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1), 0);
  EXPECT_TRUE(ri.Erase("alpha beta gamma"));
  EXPECT_FALSE(ri.Erase("alpha beta gamma"));
  EXPECT_EQ(ri.num_filenames(), 0u);
}

TEST(ResponseIndexTest, TotalProviderCountTracksDuplication) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider("f one", {"f", "one"}, P(1), 1);
  ri.AddProvider("f one", {"f", "one"}, P(2), 2);
  ri.AddProvider("f two", {"f", "two"}, P(3), 3);
  EXPECT_EQ(ri.TotalProviderCount(), 3u);
}

TEST(ResponseIndexTest, FilenamesAndKeywordsAccessors) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1), 0);
  const auto names = ri.Filenames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "alpha beta gamma");
  EXPECT_EQ(ri.KeywordsOf("alpha beta gamma"), kAbcKws);
  EXPECT_DEATH(ri.KeywordsOf("absent"), "absent");
}

TEST(ResponseIndexTest, StatsCountHitsAndMisses) {
  ResponseIndex ri(SmallConfig());
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1), 0);
  ri.LookupByKeywords({"alpha"}, 1);   // hit
  ri.LookupByKeywords({"nothere"}, 1); // miss
  ri.LookupFilename("alpha beta gamma", 1);  // hit
  EXPECT_EQ(ri.stats().lookups, 3u);
  EXPECT_EQ(ri.stats().hits, 2u);
  EXPECT_EQ(ri.stats().inserts, 1u);
}

TEST(ResponseIndexTest, SingleProviderModeModelsDicas) {
  ResponseIndexConfig cfg = SmallConfig();
  cfg.max_providers_per_file = 1;
  ResponseIndex ri(cfg);
  ri.AddProvider("alpha beta gamma", kAbcKws, P(1), 1);
  ri.AddProvider("alpha beta gamma", kAbcKws, P(2), 2);
  auto hit = ri.LookupFilename("alpha beta gamma", 3);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 1u);
  EXPECT_EQ(hit->providers[0].provider, 2u);  // newest replaces the only slot
}

TEST(ResponseIndexTest, InvalidConfigDies) {
  ResponseIndexConfig cfg;
  cfg.max_filenames = 0;
  EXPECT_DEATH(ResponseIndex{cfg}, "CHECK");
  cfg = ResponseIndexConfig{};
  cfg.max_providers_per_file = 0;
  EXPECT_DEATH(ResponseIndex{cfg}, "CHECK");
}

class EvictionPolicyTest : public ::testing::TestWithParam<EvictionPolicy> {};

/// Property: whatever the policy, capacity is a hard bound and every eviction
/// is reported exactly once with its keywords.
TEST_P(EvictionPolicyTest, CapacityIsRespectedAndEvictionsReported) {
  ResponseIndexConfig cfg;
  cfg.max_filenames = 5;
  cfg.max_providers_per_file = 2;
  cfg.eviction = GetParam();
  ResponseIndex ri(cfg);

  std::set<std::string> resident;
  size_t reported_evictions = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string name = "file " + std::to_string(i);
    const auto outcome =
        ri.AddProvider(name, {"file", std::to_string(i)}, P(i % 7), i);
    resident.insert(name);
    for (const auto& gone : outcome.evicted) {
      EXPECT_TRUE(resident.erase(gone.filename) == 1) << gone.filename;
      EXPECT_EQ(gone.keywords.size(), 2u);
      ++reported_evictions;
    }
    EXPECT_LE(ri.num_filenames(), 5u);
    EXPECT_EQ(ri.num_filenames(), resident.size());
  }
  EXPECT_EQ(reported_evictions, 95u);
  EXPECT_EQ(ri.stats().evictions, 95u);
}

INSTANTIATE_TEST_SUITE_P(Policies, EvictionPolicyTest,
                         ::testing::Values(EvictionPolicy::kLru, EvictionPolicy::kFifo,
                                           EvictionPolicy::kRandom),
                         [](const auto& info) {
                           return EvictionPolicyName(info.param);
                         });

}  // namespace
}  // namespace locaware::cache
