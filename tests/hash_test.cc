#include "common/hash.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace locaware {
namespace {

TEST(Fnv1aTest, KnownVectors) {
  // Canonical FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1aTest, RawBytesOverloadAgrees) {
  const std::string s = "locaware";
  EXPECT_EQ(Fnv1a64(s), Fnv1a64(s.data(), s.size()));
}

TEST(Fnv1aTest, SensitiveToEveryByte) {
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("bbc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abc "));
}

TEST(Murmur3Test, DeterministicAcrossCalls) {
  const auto a = Murmur3_128("hello world");
  const auto b = Murmur3_128("hello world");
  EXPECT_EQ(a, b);
}

TEST(Murmur3Test, SeedChangesOutput) {
  EXPECT_NE(Murmur3_128("hello", 0), Murmur3_128("hello", 1));
}

TEST(Murmur3Test, EmptyInputIsValid) {
  const auto [h1, h2] = Murmur3_128("");
  // Zero-length input with seed 0 hashes to (0, 0) in canonical Murmur3.
  EXPECT_EQ(h1, 0u);
  EXPECT_EQ(h2, 0u);
  const auto seeded = Murmur3_128("", 42);
  EXPECT_NE(seeded.first, 0u);
}

TEST(Murmur3Test, AllTailLengthsDistinct) {
  // Exercise every tail-switch branch (lengths 0..16) and beyond one block.
  std::set<std::pair<uint64_t, uint64_t>> hashes;
  std::string s;
  for (int len = 0; len <= 40; ++len) {
    hashes.insert(Murmur3_128(s));
    s += static_cast<char>('a' + (len % 26));
  }
  EXPECT_EQ(hashes.size(), 41u);
}

TEST(Murmur3Test, HalvesDifferFromEachOther) {
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    const auto [h1, h2] = Murmur3_128("key" + std::to_string(i));
    equal += (h1 == h2);
  }
  EXPECT_EQ(equal, 0);
}

TEST(Murmur3Test, AvalancheOnSingleBitChange) {
  const auto a = Murmur3_128("keyword0");
  const auto b = Murmur3_128("keyword1");
  // Count differing bits in the first halves; a good hash flips ~32 of 64.
  const int diff = __builtin_popcountll(a.first ^ b.first);
  EXPECT_GT(diff, 10);
  EXPECT_LT(diff, 54);
}

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2), HashCombine(HashCombine(0, 2), 1));
}

TEST(HashCombineTest, NoTrivialFixedPoint) {
  EXPECT_NE(HashCombine(0, 0), 0u);
}

TEST(HashDistributionTest, FnvModSmallIsBalanced) {
  // The Dicas group hash uses Fnv1a64(filename) mod M; verify no pathological
  // skew for M = 4 over realistic keyword-like strings.
  constexpr int kGroups = 4;
  int counts[kGroups] = {};
  for (int i = 0; i < 40000; ++i) {
    ++counts[Fnv1a64("kw" + std::to_string(i) + " other words") % kGroups];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

}  // namespace
}  // namespace locaware
