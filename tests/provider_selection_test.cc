#include "core/provider_selection.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/underlay.h"

namespace locaware::core {
namespace {

class SelectionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(1);
    net::GeometricUnderlayConfig cfg;
    cfg.num_routers = 40;
    cfg.num_peers = 100;
    cfg.num_landmarks = 4;
    underlay_ = std::move(net::GeometricUnderlay::Build(cfg, &rng)).ValueOrDie();
    rng_ = std::make_unique<Rng>(2);
  }

  Candidate C(PeerId provider, LocId loc) {
    Candidate c;
    c.provider = provider;
    c.loc_id = loc;
    return c;
  }

  std::unique_ptr<net::GeometricUnderlay> underlay_;
  std::unique_ptr<Rng> rng_;
};

TEST_F(SelectionFixture, LocIdMatchWinsWithoutProbes) {
  const std::vector<Candidate> cands{C(10, 5), C(11, 3), C(12, 3)};
  const auto out = SelectProvider(SelectionStrategy::kLocIdThenRtt, cands,
                                  /*requester=*/0, /*requester_loc=*/3, *underlay_,
                                  rng_.get());
  EXPECT_EQ(out.chosen, 1u);  // first matching locId
  EXPECT_EQ(out.probe_msgs, 0u);
}

TEST_F(SelectionFixture, FallsBackToRttProbing) {
  const std::vector<Candidate> cands{C(10, 5), C(11, 6), C(12, 7)};
  const auto out = SelectProvider(SelectionStrategy::kLocIdThenRtt, cands, 0,
                                  /*requester_loc=*/3, *underlay_, rng_.get());
  EXPECT_EQ(out.probe_msgs, 6u);  // 2 per candidate
  // The chosen candidate has the minimal RTT.
  const double chosen_rtt = underlay_->RttMs(0, cands[out.chosen].provider);
  for (const Candidate& c : cands) {
    EXPECT_LE(chosen_rtt, underlay_->RttMs(0, c.provider) + 1e-9);
  }
}

TEST_F(SelectionFixture, MinRttAlwaysProbes) {
  const std::vector<Candidate> cands{C(10, 3), C(11, 3)};
  const auto out = SelectProvider(SelectionStrategy::kMinRtt, cands, 0, 3,
                                  *underlay_, rng_.get());
  EXPECT_EQ(out.probe_msgs, 4u);
  const double chosen_rtt = underlay_->RttMs(0, cands[out.chosen].provider);
  EXPECT_LE(chosen_rtt, underlay_->RttMs(0, cands[1 - out.chosen].provider) + 1e-9);
}

TEST_F(SelectionFixture, FirstResponderTakesHead) {
  const std::vector<Candidate> cands{C(42, 9), C(11, 3)};
  const auto out = SelectProvider(SelectionStrategy::kFirstResponder, cands, 0, 3,
                                  *underlay_, rng_.get());
  EXPECT_EQ(out.chosen, 0u);
  EXPECT_EQ(out.probe_msgs, 0u);
}

TEST_F(SelectionFixture, RandomCoversAllCandidates) {
  const std::vector<Candidate> cands{C(10, 0), C(11, 1), C(12, 2), C(13, 3)};
  std::set<size_t> chosen;
  for (int i = 0; i < 200; ++i) {
    chosen.insert(SelectProvider(SelectionStrategy::kRandom, cands, 0, 9,
                                 *underlay_, rng_.get())
                      .chosen);
  }
  EXPECT_EQ(chosen.size(), 4u);
}

TEST_F(SelectionFixture, SingleCandidateShortCircuits) {
  const std::vector<Candidate> cands{C(10, 7)};
  for (auto strategy :
       {SelectionStrategy::kLocIdThenRtt, SelectionStrategy::kMinRtt,
        SelectionStrategy::kRandom, SelectionStrategy::kFirstResponder}) {
    const auto out = SelectProvider(strategy, cands, 0, 3, *underlay_, rng_.get());
    EXPECT_EQ(out.chosen, 0u);
  }
}

TEST_F(SelectionFixture, EmptyCandidatesDie) {
  EXPECT_DEATH(SelectProvider(SelectionStrategy::kRandom, {}, 0, 0, *underlay_,
                              rng_.get()),
               "no candidates");
}

TEST_F(SelectionFixture, TieBreaksTowardEarlierCandidate) {
  // Duplicate provider id -> identical RTT; the earlier index must win so
  // fresher providers are preferred on ties.
  const std::vector<Candidate> cands{C(10, 1), C(10, 1)};
  const auto out = SelectProvider(SelectionStrategy::kMinRtt, cands, 0, 9,
                                  *underlay_, rng_.get());
  EXPECT_EQ(out.chosen, 0u);
}

}  // namespace
}  // namespace locaware::core
