#include "metrics/svg_plot.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace locaware::metrics {
namespace {

LabeledSeries MakeSeries(const std::string& label, std::vector<double> values) {
  LabeledSeries s;
  s.label = label;
  uint64_t x = 0;
  for (double v : values) {
    BucketPoint p;
    p.queries_end = (x += 500);
    p.avg_download_ms = v;
    p.success_rate = v / 1000.0;
    p.msgs_per_query = v * 2;
    s.points.push_back(p);
  }
  return s;
}

TEST(SvgPlotTest, ProducesWellFormedSvg) {
  const std::vector<LabeledSeries> series{
      MakeSeries("Locaware", {150, 140, 135}),
      MakeSeries("Flooding", {178, 177, 179}),
  };
  const std::string svg = RenderSvgChart(series, Field::kDownloadMs,
                                         "Download distance", SvgChartOptions{});
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);  // starts with <svg
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One polyline per series, one legend label each.
  size_t polylines = 0;
  for (size_t pos = 0; (pos = svg.find("<polyline", pos)) != std::string::npos;
       ++pos) {
    ++polylines;
  }
  EXPECT_EQ(polylines, 2u);
  EXPECT_NE(svg.find("Locaware"), std::string::npos);
  EXPECT_NE(svg.find("Flooding"), std::string::npos);
  EXPECT_NE(svg.find("Download distance"), std::string::npos);
}

TEST(SvgPlotTest, EscapesXmlInLabels) {
  const std::vector<LabeledSeries> series{MakeSeries("A<&>B", {1, 2})};
  const std::string svg =
      RenderSvgChart(series, Field::kDownloadMs, "T\"itle", SvgChartOptions{});
  EXPECT_EQ(svg.find("A<&>B"), std::string::npos);
  EXPECT_NE(svg.find("A&lt;&amp;&gt;B"), std::string::npos);
  EXPECT_NE(svg.find("T&quot;itle"), std::string::npos);
}

TEST(SvgPlotTest, SinglePointSeriesDoesNotDivideByZero) {
  const std::vector<LabeledSeries> series{MakeSeries("solo", {42})};
  const std::string svg =
      RenderSvgChart(series, Field::kDownloadMs, "one point", SvgChartOptions{});
  EXPECT_NE(svg.find("<circle"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("inf"), std::string::npos);
}

TEST(SvgPlotTest, FlatZeroSeriesStillRenders) {
  const std::vector<LabeledSeries> series{MakeSeries("zeros", {0, 0, 0})};
  const std::string svg =
      RenderSvgChart(series, Field::kDownloadMs, "flat", SvgChartOptions{});
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

TEST(SvgPlotTest, YLabelRendered) {
  SvgChartOptions options;
  options.y_label = "ms RTT";
  const std::vector<LabeledSeries> series{MakeSeries("a", {1, 2, 3})};
  const std::string svg = RenderSvgChart(series, Field::kDownloadMs, "t", options);
  EXPECT_NE(svg.find("ms RTT"), std::string::npos);
}

TEST(SvgPlotTest, RaggedSeriesDie) {
  std::vector<LabeledSeries> series{MakeSeries("a", {1, 2, 3}),
                                    MakeSeries("b", {1, 2})};
  EXPECT_DEATH(RenderSvgChart(series, Field::kDownloadMs, "t", SvgChartOptions{}),
               "ragged");
}

TEST(SvgPlotTest, EmptyInputsDie) {
  EXPECT_DEATH(RenderSvgChart({}, Field::kDownloadMs, "t", SvgChartOptions{}),
               "no series");
  std::vector<LabeledSeries> empty_points{LabeledSeries{"a", {}}};
  EXPECT_DEATH(RenderSvgChart(empty_points, Field::kDownloadMs, "t",
                              SvgChartOptions{}),
               "empty series");
}

TEST(SvgPlotTest, WriteToFile) {
  const std::string path = ::testing::TempDir() + "/locaware_chart_test.svg";
  const std::vector<LabeledSeries> series{MakeSeries("a", {5, 6, 7})};
  ASSERT_TRUE(
      WriteSvgChart(series, Field::kMsgsPerQuery, "t", SvgChartOptions{}, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line.rfind("<svg", 0), 0u);
  in.close();
  std::remove(path.c_str());
}

TEST(SvgPlotTest, WriteToBadPathFails) {
  const std::vector<LabeledSeries> series{MakeSeries("a", {5})};
  EXPECT_FALSE(WriteSvgChart(series, Field::kDownloadMs, "t", SvgChartOptions{},
                             "/nonexistent/dir/chart.svg")
                   .ok());
}

}  // namespace
}  // namespace locaware::metrics
