#include "common/status.h"

#include <gtest/gtest.h>

namespace locaware {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad degree");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad degree");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad degree");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r(7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s.size(), 1000u);
}

TEST(ResultTest, ConstructingFromOkStatusDies) {
  EXPECT_DEATH({ Result<int> r{Status::OK()}; (void)r; }, "OK status");
}

TEST(ResultTest, ValueOrDieOnErrorDies) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH(r.ValueOrDie(), "boom");
}

TEST(ReturnNotOkTest, PropagatesError) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    LOCAWARE_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(ReturnNotOkTest, PassesThroughOk) {
  auto succeeds = [] { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    LOCAWARE_RETURN_NOT_OK(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace locaware
