#include "bloom/bloom_filter.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_delta.h"
#include "bloom/counting_bloom.h"
#include "common/rng.h"

namespace locaware::bloom {
namespace {

std::vector<std::string> MakeKeys(size_t n, const std::string& prefix = "kw") {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(prefix + std::to_string(i));
  return keys;
}

TEST(BloomFilterTest, StartsEmpty) {
  BloomFilter bf(1200, 4);
  EXPECT_EQ(bf.CountOnes(), 0u);
  EXPECT_EQ(bf.FillRatio(), 0.0);
  EXPECT_FALSE(bf.MayContain("anything"));
}

TEST(BloomFilterTest, NoFalseNegatives) {
  // The paper's core guarantee (§4.2): "it never returns false negatives".
  BloomFilter bf(1200, 4);
  const auto keys = MakeKeys(150);
  for (const auto& k : keys) bf.Insert(k);
  for (const auto& k : keys) EXPECT_TRUE(bf.MayContain(k)) << k;
}

TEST(BloomFilterTest, FalsePositiveRateNearTheory) {
  // 150 keys in 1200 bits with k=4: fill ≈ 1-(1-1/m)^(kn) ≈ 0.39,
  // fp ≈ 0.39^4 ≈ 2.4%. Accept up to ~2x that.
  BloomFilter bf(1200, 4);
  for (const auto& k : MakeKeys(150)) bf.Insert(k);
  int fp = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    fp += bf.MayContain("absent" + std::to_string(i));
  }
  const double rate = static_cast<double>(fp) / kProbes;
  EXPECT_LT(rate, 0.05);
  EXPECT_GT(rate, 0.002);  // a filter this full is not fp-free
}

TEST(BloomFilterTest, EstimatedFpRateTracksFill) {
  BloomFilter bf(1200, 4);
  EXPECT_EQ(bf.EstimatedFpRate(), 0.0);
  for (const auto& k : MakeKeys(150)) bf.Insert(k);
  EXPECT_GT(bf.EstimatedFpRate(), 0.001);
  EXPECT_LT(bf.EstimatedFpRate(), 0.2);
}

TEST(BloomFilterTest, ClearResets) {
  BloomFilter bf(256, 3);
  bf.Insert("x");
  EXPECT_GT(bf.CountOnes(), 0u);
  bf.Clear();
  EXPECT_EQ(bf.CountOnes(), 0u);
  EXPECT_FALSE(bf.MayContain("x"));
}

TEST(BloomFilterTest, InsertIsIdempotentOnBits) {
  BloomFilter bf(512, 4);
  bf.Insert("same");
  const size_t ones = bf.CountOnes();
  bf.Insert("same");
  EXPECT_EQ(bf.CountOnes(), ones);
}

TEST(BloomFilterTest, BitOpsRoundTrip) {
  BloomFilter bf(100, 2);
  bf.SetBit(63);
  bf.SetBit(64);  // word boundary
  bf.SetBit(99);
  EXPECT_TRUE(bf.TestBit(63));
  EXPECT_TRUE(bf.TestBit(64));
  EXPECT_TRUE(bf.TestBit(99));
  bf.ClearBit(64);
  EXPECT_FALSE(bf.TestBit(64));
  bf.ToggleBit(64);
  EXPECT_TRUE(bf.TestBit(64));
  EXPECT_DEATH(bf.TestBit(100), "CHECK");
}

TEST(BloomFilterTest, ProbePositionsInRangeAndStable) {
  BloomFilter bf(1200, 4);
  const auto p1 = bf.ProbePositions("key");
  const auto p2 = bf.ProbePositions("key");
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1.size(), 4u);
  for (uint32_t p : p1) EXPECT_LT(p, 1200u);
}

TEST(BloomFilterTest, DiffPositionsFindsExactDifferences) {
  BloomFilter a(256, 3), b(256, 3);
  b.SetBit(5);
  b.SetBit(64);
  b.SetBit(255);
  EXPECT_EQ(a.DiffPositions(b), (std::vector<uint32_t>{5, 64, 255}));
  EXPECT_TRUE(a.DiffPositions(a).empty());
}

TEST(BloomFilterTest, DiffRequiresSameShape) {
  BloomFilter a(256, 3), b(512, 3);
  EXPECT_DEATH(a.DiffPositions(b), "mismatch");
}

TEST(BloomFilterTest, EqualityOperator) {
  BloomFilter a(128, 2), b(128, 2);
  EXPECT_EQ(a, b);
  a.Insert("z");
  EXPECT_FALSE(a == b);
  b.Insert("z");
  EXPECT_EQ(a, b);
}

TEST(BloomFilterTest, InvalidShapesDie) {
  EXPECT_DEATH(BloomFilter(0, 4), "CHECK");
  EXPECT_DEATH(BloomFilter(100, 0), "CHECK");
  EXPECT_DEATH(BloomFilter(100, 17), "CHECK");
}

TEST(OptimalNumHashesTest, ClassicValues) {
  // m/n = 8 bits per key -> k = round(8 ln2) = 6.
  EXPECT_EQ(OptimalNumHashes(1200, 150), 6u);
  // Tiny filters clamp at 1, huge ratios clamp at 16.
  EXPECT_EQ(OptimalNumHashes(10, 100), 1u);
  EXPECT_EQ(OptimalNumHashes(100000, 10), 16u);
}

// --- CountingBloomFilter ---

TEST(CountingBloomTest, InsertThenRemoveRestoresEmpty) {
  CountingBloomFilter cbf(1200, 4);
  const auto keys = MakeKeys(50);
  for (const auto& k : keys) cbf.Insert(k);
  for (const auto& k : keys) EXPECT_TRUE(cbf.MayContain(k));
  for (const auto& k : keys) cbf.Remove(k);
  EXPECT_EQ(cbf.projection().CountOnes(), 0u);
}

TEST(CountingBloomTest, RemoveKeepsOtherKeys) {
  CountingBloomFilter cbf(1200, 4);
  cbf.Insert("keep");
  cbf.Insert("drop");
  cbf.Remove("drop");
  EXPECT_TRUE(cbf.MayContain("keep"));  // no false negative introduced
}

TEST(CountingBloomTest, SharedBitsSurviveSingleRemove) {
  // Insert the same key twice (two filenames sharing a keyword): one remove
  // must not clear it.
  CountingBloomFilter cbf(1200, 4);
  cbf.Insert("shared");
  cbf.Insert("shared");
  cbf.Remove("shared");
  EXPECT_TRUE(cbf.MayContain("shared"));
  cbf.Remove("shared");
  EXPECT_FALSE(cbf.MayContain("shared"));
}

TEST(CountingBloomTest, ProjectionMatchesBitwiseRebuild) {
  CountingBloomFilter cbf(600, 4);
  BloomFilter reference(600, 4);
  const auto keys = MakeKeys(40);
  for (const auto& k : keys) {
    cbf.Insert(k);
    reference.Insert(k);
  }
  EXPECT_EQ(cbf.projection(), reference);
  // Remove half; rebuild the reference from scratch.
  BloomFilter reference2(600, 4);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      cbf.Remove(keys[i]);
    } else {
      reference2.Insert(keys[i]);
    }
  }
  EXPECT_EQ(cbf.projection(), reference2);
}

TEST(CountingBloomTest, RemoveOfAbsentKeyDies) {
  CountingBloomFilter cbf(1200, 4);
  EXPECT_DEATH(cbf.Remove("never-inserted"), "underflow");
}

TEST(CountingBloomTest, SaturationPinsCounters) {
  CountingBloomFilter cbf(8, 1);  // tiny: every insert hits few positions
  for (int i = 0; i < 40; ++i) cbf.Insert("hot");
  EXPECT_GT(cbf.SaturatedCount(), 0u);
  // Saturated counters never decrement: removal cannot clear the bit.
  for (int i = 0; i < 40; ++i) cbf.Remove("hot");
  EXPECT_TRUE(cbf.MayContain("hot"));
}

TEST(CountingBloomTest, ClearResetsCountersAndProjection) {
  CountingBloomFilter cbf(128, 3);
  cbf.Insert("a");
  cbf.Clear();
  EXPECT_EQ(cbf.projection().CountOnes(), 0u);
  EXPECT_EQ(cbf.SaturatedCount(), 0u);
  cbf.Insert("a");  // usable after Clear
  EXPECT_TRUE(cbf.MayContain("a"));
}

// --- BloomDelta ---

TEST(BloomDeltaTest, ComputeAndApplyRoundTrip) {
  BloomFilter before(1200, 4), after(1200, 4);
  for (const auto& k : MakeKeys(20)) after.Insert(k);
  const BloomDelta delta = ComputeDelta(before, after);
  EXPECT_FALSE(delta.empty());
  ASSERT_TRUE(ApplyDelta(delta, &before).ok());
  EXPECT_EQ(before, after);
}

TEST(BloomDeltaTest, DeltaOfIdenticalFiltersIsEmpty) {
  BloomFilter a(512, 4);
  a.Insert("x");
  const BloomDelta delta = ComputeDelta(a, a);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(WireSizeBits(delta), 16u);  // header only
}

TEST(BloomDeltaTest, ApplyRejectsShapeMismatch) {
  BloomFilter small(256, 4);
  BloomDelta delta;
  delta.filter_bits = 512;
  delta.positions = {1};
  EXPECT_FALSE(ApplyDelta(delta, &small).ok());
}

TEST(BloomDeltaTest, ApplyRejectsOutOfRangePositionAtomically) {
  BloomFilter f(256, 4);
  BloomDelta delta;
  delta.filter_bits = 256;
  delta.positions = {10, 999};
  EXPECT_FALSE(ApplyDelta(delta, &f).ok());
  EXPECT_FALSE(f.TestBit(10));  // nothing applied on failure
}

TEST(BloomDeltaTest, PositionBitsMatchesPaperFootnote) {
  // "The location of each bit [in a 1200-bit vector] by 11 bits."
  EXPECT_EQ(PositionBits(1200), 11u);
  EXPECT_EQ(PositionBits(1024), 10u);
  EXPECT_EQ(PositionBits(1025), 11u);
  EXPECT_EQ(PositionBits(2), 1u);
}

TEST(BloomDeltaTest, WireSizeMatchesPaperBound) {
  // One filename = 3 keywords x 4 hashes = at most 12 changed bits; the paper
  // bounds the update at 12 * 11 = 132 bits (~0.132 Kb) + small header.
  BloomFilter before(1200, 4), after(1200, 4);
  after.Insert("kw-a");
  after.Insert("kw-b");
  after.Insert("kw-c");
  const BloomDelta delta = ComputeDelta(before, after);
  EXPECT_LE(delta.positions.size(), 12u);
  EXPECT_LE(WireSizeBits(delta), 16u + 132u);
}

TEST(BloomDeltaTest, EncodeDecodeRoundTrip) {
  BloomFilter before(1200, 4), after(1200, 4);
  for (const auto& k : MakeKeys(30)) after.Insert(k);
  const BloomDelta delta = ComputeDelta(before, after);
  const std::vector<uint8_t> wire = EncodeDelta(delta);
  auto decoded = DecodeDelta(wire, 1200);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().positions, delta.positions);
}

TEST(BloomDeltaTest, EncodeEmptyDelta) {
  BloomDelta delta;
  delta.filter_bits = 1200;
  const auto wire = EncodeDelta(delta);
  EXPECT_EQ(wire.size(), 2u);
  auto decoded = DecodeDelta(wire, 1200);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.ValueOrDie().positions.empty());
}

TEST(BloomDeltaTest, DecodeRejectsTruncatedInput) {
  BloomFilter before(1200, 4), after(1200, 4);
  for (const auto& k : MakeKeys(10)) after.Insert(k);
  std::vector<uint8_t> wire = EncodeDelta(ComputeDelta(before, after));
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(DecodeDelta(wire, 1200).ok());
  EXPECT_FALSE(DecodeDelta({}, 1200).ok());
}

TEST(BloomDeltaTest, DecodeRejectsOutOfRangePositions) {
  // filter_bits = 100 -> 7 bits per position, so values up to 127 are
  // encodable; hand-craft a payload carrying 127 and expect rejection.
  const std::vector<uint8_t> wire{1, 0, 127};
  EXPECT_FALSE(DecodeDelta(wire, 100).ok());
  // The same payload is valid for a 128-bit filter.
  EXPECT_TRUE(DecodeDelta(wire, 128).ok());
}

struct DeltaShape {
  size_t bits;
  size_t changes;
};

class BloomDeltaPropertyTest : public ::testing::TestWithParam<DeltaShape> {};

/// Property: encode/decode round-trips for any filter width and change count.
TEST_P(BloomDeltaPropertyTest, RoundTripsAcrossShapes) {
  const auto [bits, changes] = GetParam();
  Rng rng(bits * 31 + changes);
  BloomFilter before(bits, 3), after(bits, 3);
  std::set<uint32_t> flipped;
  while (flipped.size() < changes) {
    flipped.insert(static_cast<uint32_t>(rng.UniformInt(0, bits - 1)));
  }
  for (uint32_t pos : flipped) after.ToggleBit(pos);
  const BloomDelta delta = ComputeDelta(before, after);
  EXPECT_EQ(delta.positions.size(), changes);
  auto decoded = DecodeDelta(EncodeDelta(delta), bits);
  ASSERT_TRUE(decoded.ok());
  BloomFilter rebuilt(bits, 3);
  ASSERT_TRUE(ApplyDelta(decoded.ValueOrDie(), &rebuilt).ok());
  EXPECT_EQ(rebuilt, after);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BloomDeltaPropertyTest,
                         ::testing::Values(DeltaShape{64, 0}, DeltaShape{64, 64},
                                           DeltaShape{100, 7}, DeltaShape{1200, 12},
                                           DeltaShape{1200, 300},
                                           DeltaShape{4096, 1}));

}  // namespace
}  // namespace locaware::bloom
