// Cross-seed property tests for the network substrate: the metric and
// locality guarantees every experiment silently relies on.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/landmark.h"
#include "net/underlay.h"

namespace locaware::net {
namespace {

class NetPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  std::unique_ptr<GeometricUnderlay> Build(RouterGraphModel model) {
    Rng rng(GetParam());
    GeometricUnderlayConfig cfg;
    cfg.num_routers = 80;
    cfg.num_peers = 400;
    cfg.num_landmarks = 4;
    cfg.model = model;
    return std::move(GeometricUnderlay::Build(cfg, &rng)).ValueOrDie();
  }
};

/// Property: RTT is a symmetric, non-negative function with zero diagonal,
/// bounded by the configured band — for both router-graph models.
TEST_P(NetPropertyTest, RttIsAWellFormedMetric) {
  for (RouterGraphModel model :
       {RouterGraphModel::kWaxman, RouterGraphModel::kBarabasiAlbert}) {
    auto u = Build(model);
    Rng sampler(GetParam() ^ 0x99);
    for (int i = 0; i < 300; ++i) {
      const PeerId a = static_cast<PeerId>(sampler.UniformInt(0, 399));
      const PeerId b = static_cast<PeerId>(sampler.UniformInt(0, 399));
      const double rtt = u->RttMs(a, b);
      ASSERT_DOUBLE_EQ(rtt, u->RttMs(b, a));
      if (a == b) {
        ASSERT_EQ(rtt, 0.0);
      } else {
        ASSERT_GT(rtt, 0.0);
        ASSERT_LE(rtt, 500.0 + 1e-9);
      }
    }
  }
}

/// Property: peer-to-peer RTT respects the triangle inequality up to the
/// access-link detour (peers are leaves: a→b and b→c both pay b's access
/// link, which a→c skips — so allow that slack).
TEST_P(NetPropertyTest, ApproximateTriangleInequality) {
  auto u = Build(RouterGraphModel::kWaxman);
  Rng sampler(GetParam() ^ 0x7777);
  for (int i = 0; i < 200; ++i) {
    const PeerId a = static_cast<PeerId>(sampler.UniformInt(0, 399));
    const PeerId b = static_cast<PeerId>(sampler.UniformInt(0, 399));
    const PeerId c = static_cast<PeerId>(sampler.UniformInt(0, 399));
    ASSERT_LE(u->RttMs(a, c), u->RttMs(a, b) + u->RttMs(b, c) + 1e-9)
        << "triangle violated via relay " << b;
  }
}

/// Property: locIds cluster physically — the mean RTT between same-locId
/// pairs is smaller than between different-locId pairs, for every seed.
TEST_P(NetPropertyTest, SameLocalityMeansCloser) {
  auto u = Build(RouterGraphModel::kWaxman);
  const auto ids = ComputeAllLocIds(*u);
  double same_sum = 0, diff_sum = 0;
  size_t same_n = 0, diff_n = 0;
  for (PeerId a = 0; a < 150; ++a) {
    for (PeerId b = a + 1; b < 150; ++b) {
      if (ids[a] == ids[b]) {
        same_sum += u->RttMs(a, b);
        ++same_n;
      } else {
        diff_sum += u->RttMs(a, b);
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(diff_n, 0u);
  EXPECT_LT(same_sum / same_n, diff_sum / diff_n)
      << "locIds carry no spatial signal for seed " << GetParam();
}

/// Property: landmark RTT orderings are internally consistent — recomputing
/// any peer's locId from the raw landmark RTTs reproduces ComputeAllLocIds.
TEST_P(NetPropertyTest, LocIdsAreDeterministicFunctionsOfRtts) {
  auto u = Build(RouterGraphModel::kWaxman);
  const auto ids = ComputeAllLocIds(*u);
  Rng sampler(GetParam() ^ 0xfeed);
  for (int i = 0; i < 50; ++i) {
    const PeerId p = static_cast<PeerId>(sampler.UniformInt(0, 399));
    ASSERT_EQ(ComputeLocId(*u, p), ids[p]);
  }
}

/// Property: the uniform control underlay stays in-band and symmetric too
/// (it backs the locality ablation, so its basic metric sanity matters).
TEST_P(NetPropertyTest, UniformUnderlayIsWellFormed) {
  Rng rng(GetParam());
  UniformUnderlayConfig cfg;
  cfg.num_peers = 300;
  cfg.num_landmarks = 4;
  auto u = std::move(UniformUnderlay::Build(cfg, &rng)).ValueOrDie();
  Rng sampler(GetParam() ^ 0x31);
  for (int i = 0; i < 300; ++i) {
    const PeerId a = static_cast<PeerId>(sampler.UniformInt(0, 299));
    const PeerId b = static_cast<PeerId>(sampler.UniformInt(0, 299));
    ASSERT_DOUBLE_EQ(u->RttMs(a, b), u->RttMs(b, a));
    if (a != b) {
      ASSERT_GE(u->RttMs(a, b), 10.0);
      ASSERT_LE(u->RttMs(a, b), 500.0);
    }
  }
  for (size_t l = 0; l < 4; ++l) {
    ASSERT_GE(u->LandmarkRttMs(7, l), 10.0);
    ASSERT_LE(u->LandmarkRttMs(7, l), 500.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace locaware::net
