// PR 10: Chord ring arithmetic, table construction, iterative-lookup
// convergence, and the churn-fuzz findability invariant ("every live
// published key is findable after stabilization"). The pure-table tests
// drive dht/routing.h directly against the Ring's ground-truth successor;
// the engine tests pin the protocol-level counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "core/engine.h"
#include "core/experiment.h"
#include "dht/ring.h"
#include "dht/routing.h"
#include "metrics/report.h"
#include "overlay/churn.h"
#include "sim/sim_time.h"

namespace locaware::dht {
namespace {

TEST(DhtRingTest, InIntervalHalfOpenAndWrapping) {
  // Plain interval (10, 20].
  EXPECT_FALSE(InInterval(10, 10, 20));  // open at a
  EXPECT_TRUE(InInterval(11, 10, 20));
  EXPECT_TRUE(InInterval(20, 10, 20));  // closed at b
  EXPECT_FALSE(InInterval(21, 10, 20));
  EXPECT_FALSE(InInterval(5, 10, 20));
  // Wrapped interval (2^64-5, 3].
  const RingId hi = ~RingId{0} - 4;
  EXPECT_TRUE(InInterval(hi + 1, hi, 3));
  EXPECT_TRUE(InInterval(0, hi, 3));
  EXPECT_TRUE(InInterval(3, hi, 3));
  EXPECT_FALSE(InInterval(4, hi, 3));
  EXPECT_FALSE(InInterval(hi, hi, 3));
  // Empty span = whole circle (single-member ring owns everything).
  EXPECT_TRUE(InInterval(0, 7, 7));
  EXPECT_TRUE(InInterval(~RingId{0}, 7, 7));
  EXPECT_TRUE(InInterval(7, 7, 7));
}

TEST(DhtRingTest, FingerTargetsDoubleAndWrap) {
  EXPECT_EQ(FingerTarget(0, 0), 1u);
  EXPECT_EQ(FingerTarget(0, 63), RingId{1} << 63);
  EXPECT_EQ(FingerTarget(100, 3), 108u);
  // Wrap: the top finger of a high ring position lands low.
  const RingId n = ~RingId{0} - 10;
  EXPECT_EQ(FingerTarget(n, 4), n + 16);  // wraps via unsigned arithmetic
  EXPECT_LT(FingerTarget(n, 4), RingId{32});
}

TEST(DhtRingTest, RingDistanceWraps) {
  EXPECT_EQ(RingDistance(5, 9), 4u);
  EXPECT_EQ(RingDistance(9, 5), ~RingId{0} - 3);  // the long way around
  EXPECT_EQ(RingDistance(7, 7), 0u);
}

TEST(DhtRingTest, PeerRingIdsAreCollisionFree) {
  constexpr size_t kPeers = 100000;
  const Ring ring = Ring::Build(kPeers);
  ASSERT_EQ(ring.size(), kPeers);
  for (size_t i = 1; i < kPeers; ++i) {
    EXPECT_LT(ring.IdAt(i - 1), ring.IdAt(i));  // strictly sorted => distinct
  }
}

TEST(DhtRingTest, SuccessorOfMatchesLinearScanOracle) {
  constexpr size_t kPeers = 64;
  const Ring ring = Ring::Build(kPeers);
  const auto online = [](PeerId p) { return p % 3 != 0; };  // drop a third
  for (uint64_t probe = 0; probe < 300; ++probe) {
    const RingId key = Mix64(probe * 0x9e3779b97f4a7c15ULL + 1);
    // Oracle: the online member minimizing clockwise distance from the key.
    PeerId want = kInvalidPeer;
    RingId want_dist = 0;
    for (size_t i = 0; i < ring.size(); ++i) {
      if (!online(ring.PeerAt(i))) continue;
      const RingId d = RingDistance(key, ring.IdAt(i));
      if (want == kInvalidPeer || d < want_dist) {
        want = ring.PeerAt(i);
        want_dist = d;
      }
    }
    EXPECT_EQ(ring.SuccessorOf(key, online), want) << "probe " << probe;
  }
  // Nobody online: no owner.
  EXPECT_EQ(ring.SuccessorOf(12345, [](PeerId) { return false; }), kInvalidPeer);
}

TEST(DhtTablesTest, SuccessorListIsNearestOnlineClockwise) {
  constexpr size_t kPeers = 40;
  const Ring ring = Ring::Build(kPeers);
  const auto online = [](PeerId p) { return p % 4 != 1; };
  for (PeerId self = 0; self < kPeers; ++self) {
    RoutingState rt;
    ComputeTables(ring, self, /*num_successors=*/4, /*num_fingers=*/24, online, &rt);
    ASSERT_LE(rt.successors.size(), 4u);
    // Walk the ring from self's position and collect the oracle list.
    std::vector<PeerId> want;
    size_t i = ring.IndexOfFirstAtOrAfter(RingIdOfPeer(self) + 1);
    for (size_t step = 0; step + 1 < kPeers && want.size() < 4;
         ++step, i = (i + 1 == kPeers) ? 0 : i + 1) {
      const PeerId c = ring.PeerAt(i);
      if (c == self) break;
      if (online(c)) want.push_back(c);
    }
    ASSERT_EQ(rt.successors.size(), want.size()) << "peer " << self;
    for (size_t k = 0; k < want.size(); ++k) {
      EXPECT_EQ(rt.successors[k], want[k]) << "peer " << self << " slot " << k;
    }
    // Fingers never name self or an offline peer.
    for (const auto& slot : rt.fingers) {
      EXPECT_NE(slot.second, self);
      EXPECT_TRUE(online(slot.second));
    }
  }
}

TEST(DhtTablesTest, AloneOnTheRingOwnsEverything) {
  const Ring ring = Ring::Build(8);
  RoutingState rt;
  // Only peer 5 is online: its tables are empty and NextHop says "mine".
  ComputeTables(ring, 5, 4, 24, [](PeerId p) { return p == 5; }, &rt);
  EXPECT_TRUE(rt.successors.empty());
  EXPECT_EQ(rt.fingers.size(), 0u);
  const HopDecision hd = NextHop(rt, 5, /*key=*/0xdeadbeef);
  EXPECT_TRUE(hd.done);
  EXPECT_EQ(hd.next, kInvalidPeer);
}

// Walks an iterative lookup over precomputed per-peer tables, exactly as the
// engine does (ask `cur`, follow its HopDecision). Returns the owner the
// walk terminates at; sets *hops to the number of routing steps taken.
PeerId WalkLookup(const std::vector<RoutingState>& tables, PeerId start, RingId key,
                  uint32_t* hops) {
  PeerId cur = start;
  for (uint32_t h = 0; h < 200; ++h) {
    const HopDecision hd = NextHop(tables[cur], cur, key);
    if (hd.done) {
      *hops = h;
      return hd.next == kInvalidPeer ? cur : hd.next;
    }
    cur = hd.next;
  }
  *hops = 200;
  return kInvalidPeer;  // did not converge
}

TEST(DhtLookupTest, StaticRingConvergesToTrueOwnerInLogHops) {
  constexpr size_t kPeers = 500;
  const Ring ring = Ring::Build(kPeers);
  const auto all_online = [](PeerId) { return true; };
  std::vector<RoutingState> tables(kPeers);
  for (PeerId p = 0; p < kPeers; ++p) {
    ComputeTables(ring, p, /*num_successors=*/4, /*num_fingers=*/24, all_online,
                  &tables[p]);
  }
  uint64_t total_hops = 0;
  uint32_t max_hops = 0;
  constexpr uint64_t kLookups = 500;
  for (uint64_t i = 0; i < kLookups; ++i) {
    const RingId key = RingIdOfKey(0x100001b3ULL * (i + 7));  // FNV-flavored keys
    const PeerId start = static_cast<PeerId>((i * 131) % kPeers);
    const PeerId want = ring.SuccessorOf(key, all_online);
    uint32_t hops = 0;
    EXPECT_EQ(WalkLookup(tables, start, key, &hops), want) << "lookup " << i;
    total_hops += hops;
    max_hops = std::max(max_hops, hops);
  }
  const double log_n = std::log2(static_cast<double>(kPeers));  // ~9
  EXPECT_LE(static_cast<double>(total_hops) / kLookups, 2.0 * log_n)
      << "mean hops is not O(log n)";
  EXPECT_LE(max_hops, 40u);
}

overlay::ChurnModel FuzzChurn() {
  overlay::ChurnConfig cfg;
  cfg.enabled = true;
  cfg.mean_session_s = 60.0;
  cfg.mean_offline_s = 25.0;
  return std::move(overlay::ChurnModel::Create(cfg)).ValueOrDie();
}

// The PR 10 standing invariant: after stabilization (tables recomputed from
// the churn timeline at time t), a lookup started at ANY online peer for ANY
// key terminates at the ring's true online owner — so every record the
// republish cycle placed there is findable.
TEST(DhtChurnFuzzTest, EveryKeyFindableAfterStabilization) {
  constexpr size_t kPeers = 120;
  const Ring ring = Ring::Build(kPeers);
  for (uint64_t seed : {3u, 17u, 92u}) {
    const auto timeline = overlay::ChurnTimeline::Build(
        FuzzChurn(), seed, kPeers, /*horizon=*/600 * sim::kSecond);
    for (sim::SimTime t = 50 * sim::kSecond; t <= 550 * sim::kSecond;
         t += 125 * sim::kSecond) {
      const auto online = [&](PeerId p) { return timeline.IsOnlineAt(p, t); };
      size_t online_count = 0;
      for (PeerId p = 0; p < kPeers; ++p) online_count += online(p);
      ASSERT_GT(online_count, 1u) << "degenerate churn sample";
      std::vector<RoutingState> tables(kPeers);
      for (PeerId p = 0; p < kPeers; ++p) {
        if (online(p)) ComputeTables(ring, p, 4, 24, online, &tables[p]);
      }
      for (uint64_t i = 0; i < 60; ++i) {
        const RingId key = RingIdOfKey(Mix64(seed * 1000 + i));
        const PeerId want = ring.SuccessorOf(key, online);
        // Start at every 7th online peer to cover diverse vantage points.
        for (PeerId start = static_cast<PeerId>(i % 7); start < kPeers; start += 7) {
          if (!online(start)) continue;
          uint32_t hops = 0;
          EXPECT_EQ(WalkLookup(tables, start, key, &hops), want)
              << "seed " << seed << " t " << t << " key " << i << " from " << start;
          EXPECT_LE(hops, 64u);
        }
      }
    }
  }
}

TEST(DhtChurnFuzzTest, DepartureResetKeepsSessionCounter) {
  RoutingState rt;
  rt.next_session = 41;
  rt.successors.push_back(3);
  rt.store.try_emplace(7, StoreList{});
  rt.lookups.try_emplace(99, LookupState{});
  rt.last_publish = 12345;
  rt.ResetForDeparture();
  EXPECT_TRUE(rt.successors.empty());
  EXPECT_EQ(rt.store.size(), 0u);
  EXPECT_EQ(rt.lookups.size(), 0u);
  EXPECT_EQ(rt.last_publish, kNeverPublished);
  // Session ids must never repeat across sessions of the same peer.
  EXPECT_EQ(rt.next_session, 41u);
}

core::ExperimentConfig SmallConfig(core::ProtocolKind kind, uint64_t seed) {
  core::ExperimentConfig cfg = core::MakePaperConfig(kind, /*num_queries=*/200, seed);
  cfg.num_peers = 150;
  cfg.underlay.num_routers = 40;
  cfg.catalog.num_files = 300;
  cfg.catalog.keyword_pool_size = 900;
  cfg.workload.query_rate_per_peer_s = 0.01;
  return cfg;
}

TEST(DhtEngineTest, PureDhtResolvesQueriesThroughLookups) {
  auto e = std::move(core::Engine::Create(SmallConfig(core::ProtocolKind::kDht, 7)))
               .ValueOrDie();
  e->Run();
  const metrics::Summary s = metrics::Summarize(e->metrics());
  // Every query that was not a local-store hit went through the DHT;
  // publishes moved store bytes.
  EXPECT_GT(s.dht_lookups, 150u);
  EXPECT_LE(s.dht_lookups, 200u);
  EXPECT_EQ(s.hybrid_escalations, 0u);
  EXPECT_GT(s.dht_store_msgs, 0u);
  EXPECT_GT(s.dht_store_bytes, s.dht_store_msgs * 23);  // above header floor
  EXPECT_GT(s.success_rate, 0.5);  // structured lookup finds published keys
  // Mean hops per lookup stays O(log n) for 150 peers (~7.2 bits).
  EXPECT_LT(static_cast<double>(s.dht_hops) / static_cast<double>(s.dht_lookups),
            2.0 * std::log2(150.0));
}

TEST(HybridEngineTest, EscalatesExactlyOnCacheMisses) {
  auto e = std::move(core::Engine::Create(SmallConfig(core::ProtocolKind::kHybrid, 7)))
               .ValueOrDie();
  e->Run();
  const metrics::Summary s = metrics::Summarize(e->metrics());
  // Hybrid only enters the DHT when the Locaware bloom plane has no target,
  // so lookups and escalations are the same counter — and with a cold cache
  // at the start of the run, some queries must have escalated.
  EXPECT_EQ(s.dht_lookups, s.hybrid_escalations);
  EXPECT_GT(s.hybrid_escalations, 0u);
  EXPECT_LT(s.hybrid_escalations, 200u);  // ...but the cache plane answers some
  EXPECT_GT(s.success_rate, 0.5);
}

TEST(HybridEngineTest, PaperProtocolsNeverTouchDhtCounters) {
  for (core::ProtocolKind kind :
       {core::ProtocolKind::kFlooding, core::ProtocolKind::kLocaware}) {
    auto e = std::move(core::Engine::Create(SmallConfig(kind, 7))).ValueOrDie();
    e->Run();
    const metrics::Summary s = metrics::Summarize(e->metrics());
    EXPECT_EQ(s.dht_lookups, 0u);
    EXPECT_EQ(s.dht_hops, 0u);
    EXPECT_EQ(s.dht_store_msgs, 0u);
    EXPECT_EQ(s.dht_store_bytes, 0u);
    EXPECT_EQ(s.hybrid_escalations, 0u);
  }
}

}  // namespace
}  // namespace locaware::dht
