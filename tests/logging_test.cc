#include "common/logging.h"

#include <gtest/gtest.h>

namespace locaware {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = Logger::Instance().level(); }
  void TearDown() override { Logger::Instance().set_level(saved_level_); }
  LogLevel saved_level_;
};

TEST_F(LoggingTest, LevelsAreOrdered) {
  Logger::Instance().set_level(LogLevel::kWarning);
  EXPECT_FALSE(Logger::Instance().Enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::Instance().Enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::Instance().Enabled(LogLevel::kWarning));
  EXPECT_TRUE(Logger::Instance().Enabled(LogLevel::kError));
}

TEST_F(LoggingTest, OffDisablesEverything) {
  Logger::Instance().set_level(LogLevel::kOff);
  EXPECT_FALSE(Logger::Instance().Enabled(LogLevel::kError));
}

TEST_F(LoggingTest, DebugEnablesEverything) {
  Logger::Instance().set_level(LogLevel::kDebug);
  EXPECT_TRUE(Logger::Instance().Enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::Instance().Enabled(LogLevel::kError));
}

TEST_F(LoggingTest, MacroShortCircuitsWhenDisabled) {
  Logger::Instance().set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  LOG_DEBUG << "value " << expensive();
  LOG_ERROR << "value " << expensive();
  EXPECT_EQ(evaluations, 0) << "stream arguments must not evaluate when disabled";
}

TEST_F(LoggingTest, MacroEvaluatesWhenEnabled) {
  Logger::Instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto counted = [&] {
    ++evaluations;
    return 1;
  };
  LOG_ERROR << "x" << counted();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, SingletonIdentity) {
  EXPECT_EQ(&Logger::Instance(), &Logger::Instance());
}

}  // namespace
}  // namespace locaware
