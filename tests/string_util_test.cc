#include "common/string_util.h"

#include <gtest/gtest.h>

namespace locaware {
namespace {

TEST(ToLowerTest, Basics) {
  EXPECT_EQ(ToLower("ABC"), "abc");
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(SplitTest, SplitsAndDropsEmptyTokens) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split(",a,,b,", ','), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(Split("", ',').empty());
  EXPECT_TRUE(Split(",,,", ',').empty());
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, " "), "a b c");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(JoinSplitTest, RoundTrip) {
  const std::vector<std::string> parts{"runebo", "katima", "zuvalo"};
  EXPECT_EQ(Split(Join(parts, " "), ' '), parts);
}

TEST(TokenizeTest, SplitsOnNonAlnumAndLowercases) {
  EXPECT_EQ(TokenizeKeywords("Blue_Monday-LIVE"),
            (std::vector<std::string>{"blue", "monday", "live"}));
}

TEST(TokenizeTest, SpaceSeparatedFilenamesRoundTrip) {
  // The catalog builds filenames as "kw1 kw2 kw3"; tokenization must recover
  // exactly those keywords (the protocols depend on this).
  const std::vector<std::string> kws{"runebo", "katima", "zuvalo"};
  EXPECT_EQ(TokenizeKeywords(Join(kws, " ")), kws);
}

TEST(TokenizeTest, DigitsAreKeywordCharacters) {
  EXPECT_EQ(TokenizeKeywords("track01 remix2"),
            (std::vector<std::string>{"track01", "remix2"}));
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(TokenizeKeywords("").empty());
  EXPECT_TRUE(TokenizeKeywords("-_.!?").empty());
}

TEST(ContainsAllKeywordsTest, FullAndPartialMatch) {
  const std::vector<std::string> filename{"blue", "monday", "live"};
  EXPECT_TRUE(ContainsAllKeywords(filename, {"blue"}));
  EXPECT_TRUE(ContainsAllKeywords(filename, {"live", "blue"}));
  EXPECT_TRUE(ContainsAllKeywords(filename, {"blue", "monday", "live"}));
  EXPECT_FALSE(ContainsAllKeywords(filename, {"blue", "tuesday"}));
  EXPECT_FALSE(ContainsAllKeywords(filename, {"red"}));
}

TEST(ContainsAllKeywordsTest, EmptyQueryMatchesEverything) {
  EXPECT_TRUE(ContainsAllKeywords({"a"}, {}));
  EXPECT_TRUE(ContainsAllKeywords({}, {}));
}

TEST(ContainsAllKeywordsTest, EmptyFilenameMatchesNothing) {
  EXPECT_FALSE(ContainsAllKeywords({}, {"a"}));
}

TEST(HumanCountTest, Scales) {
  EXPECT_EQ(HumanCount(12), "12");
  EXPECT_EQ(HumanCount(12300), "12.3k");
  EXPECT_EQ(HumanCount(4560000), "4.56M");
}

}  // namespace
}  // namespace locaware
