#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace locaware {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  Rng rng(5);
  RunningStat whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble(-50, 50);
    whole.Add(x);
    (i % 2 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat a, b;
  a.Add(1.0);
  a.Merge(b);  // empty rhs
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // empty lhs
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.Add(3.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, ExactPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.Percentile(50), 50.0);
  EXPECT_EQ(h.Percentile(95), 95.0);
  EXPECT_EQ(h.Percentile(100), 100.0);
  EXPECT_EQ(h.Percentile(0), 1.0);  // nearest-rank clamps to the first sample
  EXPECT_EQ(h.Percentile(1), 1.0);
}

TEST(HistogramTest, UnsortedInsertOrder) {
  Histogram h;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) h.Add(x);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 9.0);
  EXPECT_EQ(h.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(HistogramTest, AddAfterPercentileInvalidatesCache) {
  Histogram h;
  h.Add(1.0);
  EXPECT_EQ(h.Percentile(50), 1.0);
  h.Add(100.0);
  EXPECT_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, OutOfRangePercentileDies) {
  Histogram h;
  h.Add(1.0);
  EXPECT_DEATH(h.Percentile(-1), "CHECK");
  EXPECT_DEATH(h.Percentile(101), "CHECK");
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(2.0);
  h.Add(4.0);
  EXPECT_NE(h.Summary().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace locaware
