#include "sim/shard_placement.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace locaware::sim {
namespace {

/// 1-D line oracle: distance between locations is how far apart their ids
/// are. Simple, metric, and makes "spatially tight" easy to assert.
double LineDistance(size_t a, size_t b) {
  return a > b ? static_cast<double>(a - b) : static_cast<double>(b - a);
}

/// Per-shard total weight under `placement` (uniform weights when empty).
std::vector<uint64_t> ShardLoads(const ShardPlacement& placement,
                                 const std::vector<uint64_t>& weight) {
  std::vector<uint64_t> load(placement.num_shards(), 0);
  for (PeerId p = 0; p < placement.num_peers(); ++p) {
    load[placement.shard_of(p)] += weight.empty() ? 1 : weight[p];
  }
  return load;
}

TEST(ShardPlacementTest, ModuloMatchesInlineFormula) {
  // kModulo is the compatibility contract: byte-for-byte the historical
  // inline `p % shards`, with no per-peer storage behind it.
  std::vector<size_t> loc(100);
  for (size_t p = 0; p < loc.size(); ++p) loc[p] = p / 10;
  const ShardPlacement placement = ShardPlacement::Modulo(7, loc);
  EXPECT_EQ(placement.strategy(), PlacementStrategy::kModulo);
  EXPECT_EQ(placement.num_shards(), 7u);
  EXPECT_EQ(placement.num_peers(), 100u);
  EXPECT_TRUE(placement.owner_map().empty());
  for (PeerId p = 0; p < 100; ++p) EXPECT_EQ(placement.shard_of(p), p % 7);
}

TEST(ShardPlacementTest, DefaultIsTrivialSingleShard) {
  const ShardPlacement placement;
  EXPECT_EQ(placement.num_shards(), 1u);
  EXPECT_EQ(placement.shard_of(12345), 0u);
  EXPECT_TRUE(placement.owner_map().empty());
}

TEST(ShardPlacementTest, DigestsAreSortedDedupedAndComplete) {
  // 60 peers in blocks of 10 per location, modulo across 3 shards: every
  // block holds peers of every residue class, so every shard touches every
  // location, each exactly once in its digest.
  std::vector<size_t> loc(60);
  for (size_t p = 0; p < loc.size(); ++p) loc[p] = p / 10;
  const ShardPlacement placement = ShardPlacement::Modulo(3, loc);
  for (ShardId s = 0; s < 3; ++s) {
    const std::vector<size_t>& digest = placement.ShardLocations(s);
    EXPECT_TRUE(std::is_sorted(digest.begin(), digest.end()));
    EXPECT_EQ(std::adjacent_find(digest.begin(), digest.end()), digest.end());
    EXPECT_EQ(digest.size(), 6u);
  }
}

TEST(ShardPlacementTest, ClusteredCoversEveryPeerExactlyOnce) {
  std::vector<size_t> loc(97);  // deliberately not divisible by anything
  std::vector<uint64_t> weight(97);
  for (size_t p = 0; p < loc.size(); ++p) {
    loc[p] = (p * 13) % 11;
    weight[p] = 1 + p % 5;
  }
  const ShardPlacement placement =
      ShardPlacement::Clustered(4, loc, weight, LineDistance);
  EXPECT_EQ(placement.strategy(), PlacementStrategy::kClustered);
  ASSERT_EQ(placement.owner_map().size(), 97u);
  size_t total = 0;
  for (ShardId s = 0; s < 4; ++s) total += placement.shard_peer_counts()[s];
  EXPECT_EQ(total, 97u);
  for (PeerId p = 0; p < 97; ++p) EXPECT_LT(placement.shard_of(p), 4u);
}

TEST(ShardPlacementTest, ClusteredHonorsBalanceBound) {
  // The documented invariant: max shard load <= 2*ceil(total/K) + max peer
  // weight, for an adversarial weight profile (heavy head, long tail).
  constexpr uint32_t kShards = 8;
  std::vector<size_t> loc;
  std::vector<uint64_t> weight;
  for (size_t p = 0; p < 500; ++p) {
    loc.push_back((p * p) % 37);
    weight.push_back(p < 10 ? 200 : 1 + p % 7);
  }
  const ShardPlacement placement =
      ShardPlacement::Clustered(kShards, loc, weight, LineDistance);
  uint64_t total = 0, max_w = 0;
  for (uint64_t w : weight) {
    total += w;
    max_w = std::max(max_w, w);
  }
  const uint64_t cap = (total + kShards - 1) / kShards;
  for (uint64_t shard_load : ShardLoads(placement, weight)) {
    EXPECT_LE(shard_load, 2 * cap + max_w);
  }
}

TEST(ShardPlacementTest, EmptyLocationsNeverAppearInDigests) {
  // Peers live only at even locations; odd ids are peer-less routers. They
  // must not surface in any digest (a phantom location would loosen — or
  // with a hostile oracle tighten — the lookahead bound for no peer).
  std::vector<size_t> loc(40);
  for (size_t p = 0; p < loc.size(); ++p) loc[p] = (p % 10) * 2;
  const ShardPlacement placement =
      ShardPlacement::Clustered(4, loc, {}, LineDistance);
  for (ShardId s = 0; s < 4; ++s) {
    for (size_t digest_loc : placement.ShardLocations(s)) {
      EXPECT_EQ(digest_loc % 2, 0u) << "shard " << s;
    }
  }
}

TEST(ShardPlacementTest, FewerPeersThanShardsLeavesEmptyShards) {
  // 3 peers over 8 shards: every peer still owned, empty shards report zero
  // peers and an empty digest (the lookahead matrix gives those the scalar
  // fallback bound).
  const std::vector<size_t> loc = {0, 5, 9};
  const ShardPlacement placement =
      ShardPlacement::Clustered(8, loc, {}, LineDistance);
  size_t total = 0, empty = 0;
  for (ShardId s = 0; s < 8; ++s) {
    total += placement.shard_peer_counts()[s];
    if (placement.shard_peer_counts()[s] == 0) {
      ++empty;
      EXPECT_TRUE(placement.ShardLocations(s).empty());
    }
  }
  EXPECT_EQ(total, 3u);
  EXPECT_GE(empty, 5u);
}

TEST(ShardPlacementTest, SingleLocationSplitsPerPeerAndBalances) {
  // One location holding everyone (the uniform-underlay degenerate case): the
  // bucket is oversized, so it spills per peer onto the least-loaded shard —
  // uniform weights must come out near-perfectly even.
  const std::vector<size_t> loc(64, 0);
  const ShardPlacement placement =
      ShardPlacement::Clustered(4, loc, {}, LineDistance);
  for (uint64_t shard_load : ShardLoads(placement, {})) {
    EXPECT_EQ(shard_load, 16u);
  }
}

TEST(ShardPlacementTest, NullOracleStillProducesValidBalancedPack) {
  std::vector<size_t> loc(120);
  for (size_t p = 0; p < loc.size(); ++p) loc[p] = p % 12;
  const ShardPlacement placement =
      ShardPlacement::Clustered(4, loc, {}, /*loc_distance=*/nullptr);
  uint64_t max_load = 0;
  size_t total = 0;
  for (uint64_t shard_load : ShardLoads(placement, {})) {
    max_load = std::max<uint64_t>(max_load, shard_load);
    total += shard_load;
  }
  EXPECT_EQ(total, 120u);
  // cap = 30, max peer weight 1 -> bound 61; distance-blind packing still
  // respects it.
  EXPECT_LE(max_load, 61u);
}

TEST(ShardPlacementTest, ClusteredKeepsFarGroupsApart) {
  // Two tight location groups a huge gap apart, K = 2: a locality-clustered
  // pack must give each shard locations from exactly one group — this is the
  // property that keeps the lookahead matrix off the scalar floor.
  std::vector<size_t> loc;
  for (size_t p = 0; p < 40; ++p) loc.push_back(p % 4);          // group A: 0..3
  for (size_t p = 0; p < 40; ++p) loc.push_back(1000 + p % 4);   // group B: 1000..1003
  const ShardPlacement placement =
      ShardPlacement::Clustered(2, loc, {}, LineDistance);
  for (ShardId s = 0; s < 2; ++s) {
    const std::vector<size_t>& digest = placement.ShardLocations(s);
    ASSERT_FALSE(digest.empty());
    const bool in_b = digest.front() >= 1000;
    for (size_t digest_loc : digest) {
      EXPECT_EQ(digest_loc >= 1000, in_b) << "shard " << s << " mixes groups";
    }
  }
}

TEST(ShardPlacementTest, ClusteredIsDeterministic) {
  // No RNG and total tie-breaks: the same inputs must rebuild the exact same
  // map (the determinism contract leans on this — the placement is part of
  // the run's pure function of (config, seed)).
  std::vector<size_t> loc(200);
  std::vector<uint64_t> weight(200);
  for (size_t p = 0; p < loc.size(); ++p) {
    loc[p] = (p * 31) % 23;
    weight[p] = 1 + (p * 7) % 13;
  }
  const ShardPlacement a = ShardPlacement::Clustered(6, loc, weight, LineDistance);
  const ShardPlacement b = ShardPlacement::Clustered(6, loc, weight, LineDistance);
  ASSERT_EQ(a.owner_map().size(), b.owner_map().size());
  EXPECT_EQ(a.owner_map(), b.owner_map());
}

TEST(ShardPlacementTest, StrategyNames) {
  EXPECT_STREQ(PlacementStrategyName(PlacementStrategy::kModulo), "modulo");
  EXPECT_STREQ(PlacementStrategyName(PlacementStrategy::kClustered), "clustered");
}

}  // namespace
}  // namespace locaware::sim
