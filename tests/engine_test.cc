#include "core/engine.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "core/experiment.h"
#include "core/group_hash.h"

namespace locaware::core {
namespace {

/// A scaled-down paper setup that runs in well under a second: 150 peers,
/// 300 files over a 900-keyword pool, 200 queries at a boosted rate.
ExperimentConfig TinyConfig(ProtocolKind kind, uint64_t seed = 7) {
  ExperimentConfig cfg = MakePaperConfig(kind, /*num_queries=*/200, seed);
  cfg.num_peers = 150;
  cfg.underlay.num_routers = 40;
  cfg.catalog.num_files = 300;
  cfg.catalog.keyword_pool_size = 900;
  cfg.workload.query_rate_per_peer_s = 0.01;  // compress simulated time
  return cfg;
}

TEST(EngineTest, CreateRejectsZeroLandmarks) {
  ExperimentConfig cfg = TinyConfig(ProtocolKind::kLocaware);
  cfg.num_landmarks = 0;
  EXPECT_FALSE(Engine::Create(cfg).ok());
}

TEST(EngineTest, CreateRejectsZeroGroups) {
  ExperimentConfig cfg = TinyConfig(ProtocolKind::kDicas);
  cfg.params.num_groups = 0;
  EXPECT_FALSE(Engine::Create(cfg).ok());
}

TEST(EngineTest, NodesInitializedPerProtocol) {
  auto flooding =
      std::move(Engine::Create(TinyConfig(ProtocolKind::kFlooding))).ValueOrDie();
  EXPECT_EQ(flooding->node(0).ri, nullptr);
  EXPECT_EQ(flooding->node(0).keyword_filter, nullptr);

  auto dicas = std::move(Engine::Create(TinyConfig(ProtocolKind::kDicas))).ValueOrDie();
  EXPECT_NE(dicas->node(0).ri, nullptr);
  EXPECT_EQ(dicas->node(0).keyword_filter, nullptr);

  auto locaware =
      std::move(Engine::Create(TinyConfig(ProtocolKind::kLocaware))).ValueOrDie();
  EXPECT_NE(locaware->node(0).ri, nullptr);
  EXPECT_NE(locaware->node(0).keyword_filter, nullptr);
  EXPECT_NE(locaware->node(0).advertised_filter, nullptr);
}

TEST(EngineTest, InitialStateMatchesConfig) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kLocaware))).ValueOrDie();
  EXPECT_EQ(e->num_peers(), 150u);
  EXPECT_EQ(e->underlay().num_peers(), 150u);
  EXPECT_EQ(e->graph().num_peers(), 150u);
  EXPECT_EQ(e->catalog().num_files(), 300u);
  EXPECT_EQ(e->workload().queries().size(), 200u);
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    EXPECT_EQ(e->node(p).file_store.size(), 3u);
    EXPECT_LT(e->node(p).gid, 4u);
    EXPECT_LT(e->node(p).loc_id, 24u);
  }
}

TEST(EngineTest, RunRecordsEveryQuery) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kFlooding))).ValueOrDie();
  e->Run();
  EXPECT_EQ(e->metrics().records().size(), 200u);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  auto run = [](ProtocolKind kind) {
    auto e = std::move(Engine::Create(TinyConfig(kind, 99))).ValueOrDie();
    e->Run();
    return metrics::Summarize(e->metrics());
  };
  for (ProtocolKind kind : {ProtocolKind::kFlooding, ProtocolKind::kDicas,
                            ProtocolKind::kLocaware}) {
    const auto a = run(kind);
    const auto b = run(kind);
    EXPECT_EQ(a.success_rate, b.success_rate);
    EXPECT_EQ(a.msgs_per_query, b.msgs_per_query);
    EXPECT_EQ(a.avg_download_ms, b.avg_download_ms);
    EXPECT_EQ(a.bloom_update_bytes, b.bloom_update_bytes);
  }
}

TEST(EngineTest, FloodingCoversTheNetwork) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kFlooding))).ValueOrDie();
  e->Run();
  const auto summary = metrics::Summarize(e->metrics());
  // TTL 7 on a degree-3 graph of 150 peers: the flood reaches most links, so
  // messages per query must be on the order of the link count.
  EXPECT_GT(summary.msgs_per_query, 100.0);
  EXPECT_GT(summary.success_rate, 0.5);
  EXPECT_EQ(summary.bloom_update_msgs, 0u);  // flooding has no maintenance
}

TEST(EngineTest, DicasCachingRespectsGroupCondition) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kDicas))).ValueOrDie();
  e->Run();
  // Invariant (eq. 1): every file in RI_n satisfies hash(f) mod M = Gid_n.
  size_t cached_total = 0;
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    const NodeState& n = e->node(p);
    for (FileId f : n.ri->Files()) {
      EXPECT_EQ(GroupOfSetFnv(e->catalog().FileSetFnv(f), e->params().num_groups),
                n.gid)
          << "peer " << p << " cached " << e->catalog().filename(f)
          << " outside its group";
      ++cached_total;
    }
  }
  EXPECT_GT(cached_total, 0u) << "Dicas cached nothing at all";
}

TEST(EngineTest, DicasKeysCachingUsesKeywordGroups) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kDicasKeys))).ValueOrDie();
  e->Run();
  size_t cached_total = 0;
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    const NodeState& n = e->node(p);
    for (FileId f : n.ri->Files()) {
      const auto groups = KeywordGroupsOfIds(
          n.ri->KeywordsOf(f),
          [&](KeywordId kw) { return e->catalog().KeywordFnv(kw); },
          e->params().num_groups);
      EXPECT_NE(std::find(groups.begin(), groups.end(), n.gid), groups.end())
          << "peer " << p << " cached " << e->catalog().filename(f)
          << " outside every keyword group";
      ++cached_total;
    }
  }
  EXPECT_GT(cached_total, 0u);
}

TEST(EngineTest, DicasIndexesHoldSingleProvider) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kDicas))).ValueOrDie();
  e->Run();
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    const NodeState& n = e->node(p);
    EXPECT_LE(n.ri->TotalProviderCount(), n.ri->num_filenames());
  }
}

TEST(EngineTest, LocawareIndexesHoldMultipleProviders) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kLocaware))).ValueOrDie();
  e->Run();
  size_t filenames = 0, providers = 0;
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    filenames += e->node(p).ri->num_filenames();
    providers += e->node(p).ri->TotalProviderCount();
  }
  ASSERT_GT(filenames, 0u);
  // "The response index in Locaware has for each file more possibilities of
  // providers" — on a Zipf workload the average must exceed 1 per filename.
  EXPECT_GT(static_cast<double>(providers) / static_cast<double>(filenames), 1.05);
}

TEST(EngineTest, LocawareBloomFilterMatchesIndexContents) {
  // Strong invariant: after a full run, each peer's counting-filter
  // projection equals a filter rebuilt from its current RI keywords. This
  // exercises insert + evict + expiry bookkeeping end to end.
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kLocaware))).ValueOrDie();
  e->Run();
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    const NodeState& n = e->node(p);
    bloom::BloomFilter rebuilt(e->params().bloom_bits, e->params().bloom_hashes);
    for (FileId f : n.ri->Files()) {
      // Rebuild from keyword *strings*: the precomputed-hash path the engine
      // uses must land on exactly the same bits.
      for (KeywordId kw : n.ri->KeywordsOf(f)) rebuilt.Insert(e->catalog().keyword(kw));
    }
    EXPECT_EQ(n.keyword_filter->projection(), rebuilt) << "peer " << p;
  }
}

TEST(EngineTest, LocawareNeighborsLearnFilters) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kLocaware))).ValueOrDie();
  e->Run();
  // After the run every neighbor pair has exchanged filters at link-up, and
  // gossip kept them fresh; spot-check that copies exist and have content
  // somewhere.
  size_t copies = 0, nonzero = 0;
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    for (const auto& [nb, filter] : e->node(p).neighbor_filters) {
      ++copies;
      nonzero += (filter.CountOnes() > 0);
    }
  }
  EXPECT_GT(copies, 0u);
  EXPECT_GT(nonzero, 0u);
  EXPECT_GT(e->metrics().bloom_update_msgs(), 0u);
  EXPECT_GT(e->metrics().bloom_update_bytes(), 0u);
}

TEST(EngineTest, LocawareGossipKeepsNeighborCopiesExact) {
  // Because gossip always sends deltas against the sender's advertised state
  // and link-up copies that state, a neighbor's copy must equal the sender's
  // advertised filter at all quiescent points (end of run).
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kLocaware))).ValueOrDie();
  e->Run();
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    for (const auto& [nb, filter] : e->node(p).neighbor_filters) {
      if (!e->graph().AreNeighbors(p, nb)) continue;  // stale ex-neighbor copy
      EXPECT_EQ(filter, *e->node(nb).advertised_filter)
          << "peer " << p << " has a diverged copy of " << nb;
    }
  }
}

TEST(EngineTest, NaturalReplicationGrowsFileStores) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kFlooding))).ValueOrDie();
  e->Run();
  size_t total_files = 0;
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    total_files += e->node(p).file_store.size();
  }
  // 150 peers x 3 initial + one copy per successful downloaded query.
  const auto summary = metrics::Summarize(e->metrics());
  EXPECT_GT(summary.success_rate, 0.0);
  EXPECT_GT(total_files, 150u * 3u);
}

TEST(EngineTest, UniformUnderlayRuns) {
  ExperimentConfig cfg = TinyConfig(ProtocolKind::kLocaware);
  cfg.use_uniform_underlay = true;
  auto e = std::move(Engine::Create(cfg)).ValueOrDie();
  e->Run();
  EXPECT_EQ(e->metrics().records().size(), 200u);
}

TEST(EngineTest, ChurnRunCompletesAndTracksEvents) {
  ExperimentConfig cfg = TinyConfig(ProtocolKind::kLocaware);
  cfg.churn.enabled = true;
  cfg.churn.mean_session_s = 600;
  cfg.churn.mean_offline_s = 200;
  cfg.params.ri.entry_ttl = 120 * sim::kSecond;
  auto e = std::move(Engine::Create(cfg)).ValueOrDie();
  e->Run();
  EXPECT_EQ(e->metrics().records().size(), 200u);
  EXPECT_GT(e->metrics().churn_events(), 0u);
  // The overlay stays meaningfully connected despite departures.
  EXPECT_GT(e->graph().num_alive(), 50u);
  EXPECT_GT(e->graph().LargestComponentFraction(), 0.5);
}

TEST(EngineTest, ProtocolSeesExpectedKindAndSelection) {
  auto loc = std::move(Engine::Create(TinyConfig(ProtocolKind::kLocaware))).ValueOrDie();
  EXPECT_EQ(loc->protocol().kind(), ProtocolKind::kLocaware);
  EXPECT_EQ(loc->protocol().DefaultSelection(), SelectionStrategy::kLocIdThenRtt);
  auto flood =
      std::move(Engine::Create(TinyConfig(ProtocolKind::kFlooding))).ValueOrDie();
  EXPECT_EQ(flood->protocol().DefaultSelection(), SelectionStrategy::kRandom);
}

TEST(EngineTest, ByteAccountingTracksMessages) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kFlooding))).ValueOrDie();
  e->Run();
  uint64_t total_msgs = 0, total_bytes = 0;
  for (const auto& r : e->metrics().records()) {
    total_msgs += r.TotalSearchMessages();
    total_bytes += r.TotalSearchBytes();
    // Every counted message carries at least a Gnutella header.
    EXPECT_GE(r.TotalSearchBytes(), r.TotalSearchMessages() * 23);
  }
  EXPECT_GT(total_bytes, total_msgs * 23);
  const auto summary = metrics::Summarize(e->metrics());
  EXPECT_GT(summary.bytes_per_query, summary.msgs_per_query * 23);
}

TEST(EngineTest, LocAwareRoutingVariantRunsAndStaysLocal) {
  ExperimentConfig off_cfg = TinyConfig(ProtocolKind::kLocaware);
  ExperimentConfig on_cfg = off_cfg;
  on_cfg.params.loc_aware_routing = true;

  auto off = std::move(Engine::Create(off_cfg)).ValueOrDie();
  off->Run();
  auto on = std::move(Engine::Create(on_cfg)).ValueOrDie();
  on->Run();

  const auto s_off = metrics::Summarize(off->metrics());
  const auto s_on = metrics::Summarize(on->metrics());
  EXPECT_EQ(s_on.num_queries, 200u);
  // The extension must not change the workload outcome dramatically at this
  // scale; it should not *hurt* locality.
  EXPECT_GE(s_on.loc_match_rate, s_off.loc_match_rate * 0.8);
}

TEST(EngineTest, BarabasiAlbertUnderlayRuns) {
  ExperimentConfig cfg = TinyConfig(ProtocolKind::kLocaware);
  cfg.underlay.model = net::RouterGraphModel::kBarabasiAlbert;
  auto e = std::move(Engine::Create(cfg)).ValueOrDie();
  e->Run();
  EXPECT_EQ(e->metrics().records().size(), 200u);
  const auto summary = metrics::Summarize(e->metrics());
  EXPECT_GT(summary.success_rate, 0.0);
}

TEST(EngineTest, TraceReplayReproducesGeneratedRun) {
  // Run once with a generated workload, save its trace, run again from the
  // trace: same topology seed + same query stream => identical results.
  const ExperimentConfig cfg = TinyConfig(ProtocolKind::kLocaware, 77);
  auto original = std::move(Engine::Create(cfg)).ValueOrDie();
  const std::string path = ::testing::TempDir() + "/locaware_engine_trace.txt";
  ASSERT_TRUE(original->workload().SaveTrace(path, original->catalog()).ok());
  original->Run();
  const auto base = metrics::Summarize(original->metrics());

  ExperimentConfig replay_cfg = cfg;
  replay_cfg.trace_path = path;
  auto replay = std::move(Engine::Create(replay_cfg)).ValueOrDie();
  replay->Run();
  const auto replayed = metrics::Summarize(replay->metrics());

  EXPECT_EQ(base.success_rate, replayed.success_rate);
  EXPECT_EQ(base.msgs_per_query, replayed.msgs_per_query);
  EXPECT_EQ(base.avg_download_ms, replayed.avg_download_ms);
  std::remove(path.c_str());
}

TEST(EngineTest, TraceReplayRejectsOutOfRangeEvents) {
  const std::string path = ::testing::TempDir() + "/locaware_bad_engine_trace.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    // requester 5000 does not exist in a 150-peer network.
    std::fputs("0 5000 1 1000 somekeyword\n", f);
    std::fclose(f);
  }
  ExperimentConfig cfg = TinyConfig(ProtocolKind::kDicas);
  cfg.trace_path = path;
  EXPECT_FALSE(Engine::Create(cfg).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    // file 900000 does not exist in a 300-file catalog.
    std::fputs("0 3 900000 1000 somekeyword\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(Engine::Create(cfg).ok());
  std::remove(path.c_str());
}

TEST(EngineTest, SummaryReportsFirstResponseLatency) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kFlooding))).ValueOrDie();
  e->Run();
  const auto s = metrics::Summarize(e->metrics());
  // Flooding always collects responses for successful queries; latency must
  // be positive, bounded by the query deadline, and ordered p50 <= p95.
  ASSERT_GT(s.success_rate, 0.0);
  EXPECT_GT(s.first_response_ms_p50, 0.0);
  EXPECT_GE(s.first_response_ms_p95, s.first_response_ms_p50);
  EXPECT_LE(s.first_response_ms_p95, sim::ToMs(e->params().query_deadline));
  EXPECT_GT(s.first_response_hops_mean, 0.0);
  EXPECT_LE(s.first_response_hops_mean, 7.0);
}

TEST(EngineTest, OneWayDelayIsHalfRtt) {
  auto e = std::move(Engine::Create(TinyConfig(ProtocolKind::kFlooding))).ValueOrDie();
  const double rtt_ms = e->underlay().RttMs(1, 2);
  EXPECT_EQ(e->OneWayDelay(1, 2), sim::FromMs(rtt_ms / 2.0));
}

class AllProtocolsTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AllProtocolsTest, RunsToCompletionWithSaneMetrics) {
  auto e = std::move(Engine::Create(TinyConfig(GetParam()))).ValueOrDie();
  e->Run();
  const auto summary = metrics::Summarize(e->metrics());
  EXPECT_EQ(summary.num_queries, 200u);
  EXPECT_GE(summary.success_rate, 0.0);
  EXPECT_LE(summary.success_rate, 1.0);
  EXPECT_GT(summary.msgs_per_query, 0.0);
  if (summary.success_rate > 0) {
    EXPECT_GT(summary.avg_download_ms, 0.0);
    EXPECT_LE(summary.avg_download_ms, 500.0);
  }
}

TEST_P(AllProtocolsTest, ChurnVariantAlsoCompletes) {
  ExperimentConfig cfg = TinyConfig(GetParam());
  cfg.churn.enabled = true;
  cfg.churn.mean_session_s = 400;
  cfg.churn.mean_offline_s = 150;
  auto e = std::move(Engine::Create(cfg)).ValueOrDie();
  e->Run();
  EXPECT_EQ(e->metrics().records().size(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllProtocolsTest,
                         ::testing::Values(ProtocolKind::kFlooding, ProtocolKind::kDicas,
                                           ProtocolKind::kDicasKeys,
                                           ProtocolKind::kLocaware, ProtocolKind::kDht,
                                           ProtocolKind::kHybrid),
                         [](const auto& info) {
                           std::string name = ProtocolKindName(info.param);
                           return name == "Dicas-Keys" ? "DicasKeys" : name;
                         });

// --- sharded execution (the TSan CI job also runs ShardInvariance*) --------

/// Runs TinyConfig under `shards` and returns the merged per-query records.
std::vector<metrics::QueryRecord> RunSharded(
    ProtocolKind kind, uint32_t shards, uint64_t seed = 7,
    sim::PlacementStrategy placement = sim::PlacementStrategy::kModulo,
    bool steal = true) {
  ExperimentConfig cfg = TinyConfig(kind, seed);
  cfg.scheduler.shards = shards;
  cfg.scheduler.placement = placement;
  cfg.scheduler.work_stealing = steal;
  auto e = std::move(Engine::Create(cfg)).ValueOrDie();
  e->Run();
  EXPECT_EQ(e->pending_query_count(), 0u);
  EXPECT_EQ(e->tracked_query_count(), 0u);
  return e->metrics().records();
}

class ShardInvarianceTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ShardInvarianceTest, FourShardsMatchSequentialPerQuery) {
  // The determinism contract: --shards is a wall-clock knob, never a results
  // knob. Compare every per-query field, not just the aggregates — a
  // compensating error (one query over-counted, another under-counted) would
  // survive a summary-only check.
  const auto seq = RunSharded(GetParam(), 1);
  const auto par = RunSharded(GetParam(), 4);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    const metrics::QueryRecord& a = seq[i];
    const metrics::QueryRecord& b = par[i];
    EXPECT_EQ(a.qid, b.qid);
    EXPECT_EQ(a.success, b.success) << "slot " << i;
    EXPECT_EQ(a.source, b.source) << "slot " << i;
    EXPECT_EQ(a.query_msgs, b.query_msgs) << "slot " << i;
    EXPECT_EQ(a.query_bytes, b.query_bytes) << "slot " << i;
    EXPECT_EQ(a.response_msgs, b.response_msgs) << "slot " << i;
    EXPECT_EQ(a.response_bytes, b.response_bytes) << "slot " << i;
    EXPECT_EQ(a.probe_msgs, b.probe_msgs) << "slot " << i;
    EXPECT_EQ(a.responses_received, b.responses_received) << "slot " << i;
    EXPECT_EQ(a.providers_offered, b.providers_offered) << "slot " << i;
    EXPECT_EQ(a.first_response_at, b.first_response_at) << "slot " << i;
    EXPECT_EQ(a.first_response_hops, b.first_response_hops) << "slot " << i;
    EXPECT_EQ(a.download_distance_ms, b.download_distance_ms) << "slot " << i;
    EXPECT_EQ(a.provider_loc_match, b.provider_loc_match) << "slot " << i;
  }
}

TEST_P(ShardInvarianceTest, OddShardCountAlsoMatches) {
  // 3 shards leaves uneven partitions (150 % 3 == 0 peers-wise but different
  // peer sets per shard than 4); summaries must still match the sequential
  // run exactly.
  const auto seq = RunSharded(GetParam(), 1, /*seed=*/21);
  const auto par = RunSharded(GetParam(), 3, /*seed=*/21);
  ASSERT_EQ(seq.size(), par.size());
  uint64_t seq_msgs = 0, par_msgs = 0, seq_bytes = 0, par_bytes = 0;
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].success, par[i].success) << "slot " << i;
    seq_msgs += seq[i].TotalSearchMessages();
    par_msgs += par[i].TotalSearchMessages();
    seq_bytes += seq[i].TotalSearchBytes();
    par_bytes += par[i].TotalSearchBytes();
  }
  EXPECT_EQ(seq_msgs, par_msgs);
  EXPECT_EQ(seq_bytes, par_bytes);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ShardInvarianceTest,
                         ::testing::Values(ProtocolKind::kFlooding, ProtocolKind::kDicas,
                                           ProtocolKind::kDicasKeys,
                                           ProtocolKind::kLocaware, ProtocolKind::kDht,
                                           ProtocolKind::kHybrid),
                         [](const auto& info) {
                           std::string name = ProtocolKindName(info.param);
                           return name == "Dicas-Keys" ? "DicasKeys" : name;
                         });

// --- skewed load + work stealing (TSan runs *ShardInvariance*) -------------

/// Writes a trace whose every requester is remapped to a peer ≡ 0 (mod 8):
/// at shards ∈ {2, 4, 8} the whole query load lands on shard 0 — the flash-
/// crowd skew the stealing scheduler absorbs. Keywords are written as
/// strings resolved through a catalog built exactly like the engine's (same
/// seed split), so replay interns the same ids and queries really hit.
std::string WriteSkewedTrace(const ExperimentConfig& cfg, const std::string& tag) {
  Rng root(cfg.seed);
  Rng catalog_rng = root.Split("catalog");
  auto catalog =
      std::move(catalog::FileCatalog::Generate(cfg.catalog, &catalog_rng)).ValueOrDie();
  Rng workload_rng = root.Split("workload");
  auto workload = std::move(catalog::QueryWorkload::Generate(
                                cfg.workload, catalog, cfg.num_peers, &workload_rng))
                      .ValueOrDie();
  const std::string path = ::testing::TempDir() + "locaware_skew_" + tag + ".trace";
  std::ofstream out(path);
  out << "# locaware-trace-v1: id requester target submit_us keywords...\n";
  for (const catalog::QueryEvent& q : workload.queries()) {
    out << q.id << ' ' << (q.requester - q.requester % 8) << ' ' << q.target << ' '
        << q.submit_time;
    for (KeywordId kw : q.keywords) out << ' ' << catalog.keyword(kw);
    out << '\n';
  }
  EXPECT_TRUE(out.good());
  return path;
}

class SkewedShardInvarianceTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SkewedShardInvarianceTest, StealingOnAndOffMatchSequentialPerQuery) {
  // Byte-equality under the worst case for the scheduler: every query
  // originates on shard 0 while 8 shards share 2 workers. Stealing (and its
  // absence) may only move wall-clock, never a single per-query field.
  ExperimentConfig base = TinyConfig(GetParam(), /*seed=*/11);
  base.trace_path = WriteSkewedTrace(base, ProtocolKindName(GetParam()));
  const auto run = [&](uint32_t shards, uint32_t workers, bool steal) {
    ExperimentConfig cfg = base;
    cfg.scheduler.shards = shards;
    cfg.scheduler.workers = workers;
    cfg.scheduler.work_stealing = steal;
    auto e = std::move(Engine::Create(cfg)).ValueOrDie();
    e->Run();
    EXPECT_EQ(e->pending_query_count(), 0u);
    EXPECT_EQ(e->tracked_query_count(), 0u);
    return e->metrics().records();
  };
  const auto seq = run(1, 0, true);
  ASSERT_EQ(seq.size(), 200u);
  size_t successes = 0;
  for (const auto& r : seq) successes += r.success ? 1 : 0;
  ASSERT_GT(successes, 0u) << "skewed trace produced no hits at all";
  for (uint32_t shards : {2u, 4u, 8u}) {
    for (bool steal : {false, true}) {
      const auto par = run(shards, /*workers=*/2, steal);
      ASSERT_EQ(par.size(), seq.size());
      for (size_t i = 0; i < seq.size(); ++i) {
        const metrics::QueryRecord& a = seq[i];
        const metrics::QueryRecord& b = par[i];
        const std::string where = "slot " + std::to_string(i) + " shards " +
                                  std::to_string(shards) +
                                  (steal ? " steal" : " pinned");
        EXPECT_EQ(a.success, b.success) << where;
        EXPECT_EQ(a.source, b.source) << where;
        EXPECT_EQ(a.query_msgs, b.query_msgs) << where;
        EXPECT_EQ(a.query_bytes, b.query_bytes) << where;
        EXPECT_EQ(a.response_msgs, b.response_msgs) << where;
        EXPECT_EQ(a.response_bytes, b.response_bytes) << where;
        EXPECT_EQ(a.responses_received, b.responses_received) << where;
        EXPECT_EQ(a.providers_offered, b.providers_offered) << where;
        EXPECT_EQ(a.first_response_at, b.first_response_at) << where;
        EXPECT_EQ(a.download_distance_ms, b.download_distance_ms) << where;
        EXPECT_EQ(a.provider_loc_match, b.provider_loc_match) << where;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SkewedShardInvarianceTest,
                         ::testing::Values(ProtocolKind::kFlooding, ProtocolKind::kDicas,
                                           ProtocolKind::kDicasKeys,
                                           ProtocolKind::kLocaware, ProtocolKind::kDht,
                                           ProtocolKind::kHybrid),
                         [](const auto& info) {
                           std::string name = ProtocolKindName(info.param);
                           return name == "Dicas-Keys" ? "DicasKeys" : name;
                         });

TEST(ShardConfigTest, PairwiseLookaheadHonorsScalarFloorAndDeadlineCap) {
  ExperimentConfig cfg = TinyConfig(ProtocolKind::kDicas);
  cfg.scheduler.shards = 4;
  auto e = std::move(Engine::Create(cfg)).ValueOrDie();
  const sim::SimTime scalar = sim::FromMs(e->underlay().MinPairRttMs() / 2.0);
  for (sim::ShardId s = 0; s < 4; ++s) {
    // Digests cover every shard's peers, sorted and deduplicated.
    const std::vector<size_t>& locs = e->placement().ShardLocations(s);
    ASSERT_FALSE(locs.empty());
    EXPECT_TRUE(std::is_sorted(locs.begin(), locs.end()));
    EXPECT_TRUE(std::adjacent_find(locs.begin(), locs.end()) == locs.end());
    for (sim::ShardId d = 0; d < 4; ++d) {
      if (s == d) continue;
      const sim::SimTime la = e->simulator().LookaheadBetween(s, d);
      EXPECT_GE(la, scalar) << s << "->" << d;
      EXPECT_LE(la, cfg.params.query_deadline) << s << "->" << d;
    }
  }
}

TEST(ShardConfigTest, CreateAcceptsShardedChurn) {
  // PR 2 rejected this combination; churn now runs as owner-shard events with
  // message-routed overlay repair, so it composes with any shard count.
  ExperimentConfig cfg = TinyConfig(ProtocolKind::kDicas);
  cfg.scheduler.shards = 4;
  cfg.churn.enabled = true;
  EXPECT_TRUE(Engine::Create(cfg).ok());
  cfg.scheduler.shards = 1;
  EXPECT_TRUE(Engine::Create(cfg).ok());
}

TEST(ShardConfigTest, CreateRejectsZeroShards) {
  ExperimentConfig cfg = TinyConfig(ProtocolKind::kDicas);
  cfg.scheduler.shards = 0;
  EXPECT_FALSE(Engine::Create(cfg).ok());
}

// --- placement invariance (the TSan CI job also runs *ShardInvariance*) ----

class PlacementShardInvarianceTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(PlacementShardInvarianceTest, ClusteredMatchesSequentialModuloPerQuery) {
  // Placement joins shards/workers/stealing in the wall-clock-only club: the
  // locality-clustered peer → shard map may only change window depth, never a
  // per-query field. The baseline is the sequential *modulo* run, so this
  // also proves the two strategies agree with each other at every shard
  // count, with and without stealing.
  const auto seq = RunSharded(GetParam(), 1);
  ASSERT_EQ(seq.size(), 200u);
  for (uint32_t shards : {4u, 8u}) {
    for (bool steal : {false, true}) {
      const auto par = RunSharded(GetParam(), shards, /*seed=*/7,
                                  sim::PlacementStrategy::kClustered, steal);
      ASSERT_EQ(par.size(), seq.size());
      for (size_t i = 0; i < seq.size(); ++i) {
        const metrics::QueryRecord& a = seq[i];
        const metrics::QueryRecord& b = par[i];
        const std::string where = "slot " + std::to_string(i) + " shards " +
                                  std::to_string(shards) +
                                  (steal ? " steal" : " pinned");
        EXPECT_EQ(a.qid, b.qid) << where;
        EXPECT_EQ(a.success, b.success) << where;
        EXPECT_EQ(a.source, b.source) << where;
        EXPECT_EQ(a.query_msgs, b.query_msgs) << where;
        EXPECT_EQ(a.query_bytes, b.query_bytes) << where;
        EXPECT_EQ(a.response_msgs, b.response_msgs) << where;
        EXPECT_EQ(a.response_bytes, b.response_bytes) << where;
        EXPECT_EQ(a.probe_msgs, b.probe_msgs) << where;
        EXPECT_EQ(a.responses_received, b.responses_received) << where;
        EXPECT_EQ(a.providers_offered, b.providers_offered) << where;
        EXPECT_EQ(a.first_response_at, b.first_response_at) << where;
        EXPECT_EQ(a.first_response_hops, b.first_response_hops) << where;
        EXPECT_EQ(a.download_distance_ms, b.download_distance_ms) << where;
        EXPECT_EQ(a.provider_loc_match, b.provider_loc_match) << where;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, PlacementShardInvarianceTest,
                         ::testing::Values(ProtocolKind::kFlooding, ProtocolKind::kDicas,
                                           ProtocolKind::kDicasKeys,
                                           ProtocolKind::kLocaware, ProtocolKind::kDht,
                                           ProtocolKind::kHybrid),
                         [](const auto& info) {
                           std::string name = ProtocolKindName(info.param);
                           return name == "Dicas-Keys" ? "DicasKeys" : name;
                         });

TEST(PlacementConfigTest, ClusteredPartitionIsCompleteAndLocationTight) {
  // Structural checks on the engine-built clustered placement: every peer
  // owned exactly once, counts per shard sum to num_peers, and each shard's
  // location digest is no wider than the modulo one (clustering may only
  // concentrate, never scatter).
  ExperimentConfig cfg = TinyConfig(ProtocolKind::kDicas);
  cfg.scheduler.shards = 4;
  cfg.scheduler.placement = sim::PlacementStrategy::kClustered;
  auto e = std::move(Engine::Create(cfg)).ValueOrDie();
  const sim::ShardPlacement& placement = e->placement();
  EXPECT_EQ(placement.strategy(), sim::PlacementStrategy::kClustered);
  ASSERT_EQ(placement.num_peers(), e->num_peers());
  size_t total = 0;
  for (sim::ShardId s = 0; s < 4; ++s) total += placement.shard_peer_counts()[s];
  EXPECT_EQ(total, e->num_peers());
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    EXPECT_LT(e->shard_of(p), 4u) << "peer " << p;
    EXPECT_EQ(e->shard_of(p), placement.owner_map()[p]) << "peer " << p;
  }
  // With 40 routers over 4 shards, a locality-tight shard sees far fewer
  // distinct locations than the modulo scatter (which sees nearly all 40).
  for (sim::ShardId s = 0; s < 4; ++s) {
    const auto& locs = placement.ShardLocations(s);
    ASSERT_FALSE(locs.empty());
    EXPECT_TRUE(std::is_sorted(locs.begin(), locs.end()));
    EXPECT_LT(locs.size(), 40u) << "shard " << s;
  }
}

// --- churn + sharding (the TSan CI job also runs *ShardInvariance*) --------

/// TinyConfig plus brisk session churn: ~2 cycles per peer inside the
/// ~140-simulated-second run, with entry expiry on so stale-index pruning
/// paths execute too.
ExperimentConfig TinyChurnConfig(ProtocolKind kind, uint64_t seed = 7) {
  ExperimentConfig cfg = TinyConfig(kind, seed);
  cfg.churn.enabled = true;
  cfg.churn.mean_session_s = 60;
  cfg.churn.mean_offline_s = 20;
  cfg.params.ri.entry_ttl = 40 * sim::kSecond;
  return cfg;
}

/// Runs TinyChurnConfig under `shards`; returns the merged collector's view.
struct ChurnRunResult {
  std::vector<metrics::QueryRecord> records;
  uint64_t churn_events = 0;
  uint64_t stale_failures = 0;
  uint64_t stale_provider_hits = 0;
  uint64_t repair_msgs = 0;
  uint64_t repair_bytes = 0;
  uint64_t bloom_update_bytes = 0;
};

ChurnRunResult RunChurnSharded(ProtocolKind kind, uint32_t shards,
                               uint64_t seed = 7) {
  ExperimentConfig cfg = TinyChurnConfig(kind, seed);
  cfg.scheduler.shards = shards;
  auto e = std::move(Engine::Create(cfg)).ValueOrDie();
  e->Run();
  EXPECT_EQ(e->pending_query_count(), 0u);
  EXPECT_EQ(e->tracked_query_count(), 0u);
  ChurnRunResult r;
  r.records = e->metrics().records();
  r.churn_events = e->metrics().churn_events();
  r.stale_failures = e->metrics().stale_failures();
  r.stale_provider_hits = e->metrics().stale_provider_hits();
  r.repair_msgs = e->metrics().repair_msgs();
  r.repair_bytes = e->metrics().repair_bytes();
  r.bloom_update_bytes = e->metrics().bloom_update_bytes();
  return r;
}

class ChurnShardInvarianceTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ChurnShardInvarianceTest, FourShardsMatchSequentialPerQuery) {
  // The PR's contract: churn-enabled results are identical for every shard
  // count. Per-query fields AND the churn/repair counters must match — a
  // racy mailbox or an interleaving-dependent draw would shift either.
  const ChurnRunResult seq = RunChurnSharded(GetParam(), 1);
  const ChurnRunResult par = RunChurnSharded(GetParam(), 4);
  ASSERT_GT(seq.churn_events, 0u) << "config produced no churn at all";
  EXPECT_EQ(seq.churn_events, par.churn_events);
  EXPECT_EQ(seq.stale_failures, par.stale_failures);
  EXPECT_EQ(seq.stale_provider_hits, par.stale_provider_hits);
  EXPECT_EQ(seq.repair_msgs, par.repair_msgs);
  EXPECT_EQ(seq.repair_bytes, par.repair_bytes);
  EXPECT_EQ(seq.bloom_update_bytes, par.bloom_update_bytes);
  ASSERT_EQ(seq.records.size(), par.records.size());
  for (size_t i = 0; i < seq.records.size(); ++i) {
    const metrics::QueryRecord& a = seq.records[i];
    const metrics::QueryRecord& b = par.records[i];
    EXPECT_EQ(a.success, b.success) << "slot " << i;
    EXPECT_EQ(a.source, b.source) << "slot " << i;
    EXPECT_EQ(a.query_msgs, b.query_msgs) << "slot " << i;
    EXPECT_EQ(a.query_bytes, b.query_bytes) << "slot " << i;
    EXPECT_EQ(a.response_msgs, b.response_msgs) << "slot " << i;
    EXPECT_EQ(a.response_bytes, b.response_bytes) << "slot " << i;
    EXPECT_EQ(a.responses_received, b.responses_received) << "slot " << i;
    EXPECT_EQ(a.providers_offered, b.providers_offered) << "slot " << i;
    EXPECT_EQ(a.first_response_at, b.first_response_at) << "slot " << i;
    EXPECT_EQ(a.download_distance_ms, b.download_distance_ms) << "slot " << i;
    EXPECT_EQ(a.provider_loc_match, b.provider_loc_match) << "slot " << i;
  }
}

TEST_P(ChurnShardInvarianceTest, OddShardCountAlsoMatches) {
  const ChurnRunResult seq = RunChurnSharded(GetParam(), 1, /*seed=*/21);
  const ChurnRunResult par = RunChurnSharded(GetParam(), 3, /*seed=*/21);
  EXPECT_EQ(seq.churn_events, par.churn_events);
  EXPECT_EQ(seq.repair_msgs, par.repair_msgs);
  EXPECT_EQ(seq.repair_bytes, par.repair_bytes);
  ASSERT_EQ(seq.records.size(), par.records.size());
  uint64_t seq_msgs = 0, par_msgs = 0, seq_bytes = 0, par_bytes = 0;
  for (size_t i = 0; i < seq.records.size(); ++i) {
    EXPECT_EQ(seq.records[i].success, par.records[i].success) << "slot " << i;
    seq_msgs += seq.records[i].TotalSearchMessages();
    par_msgs += par.records[i].TotalSearchMessages();
    seq_bytes += seq.records[i].TotalSearchBytes();
    par_bytes += par.records[i].TotalSearchBytes();
  }
  EXPECT_EQ(seq_msgs, par_msgs);
  EXPECT_EQ(seq_bytes, par_bytes);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ChurnShardInvarianceTest,
                         ::testing::Values(ProtocolKind::kFlooding, ProtocolKind::kDicas,
                                           ProtocolKind::kDicasKeys,
                                           ProtocolKind::kLocaware, ProtocolKind::kDht,
                                           ProtocolKind::kHybrid),
                         [](const auto& info) {
                           std::string name = ProtocolKindName(info.param);
                           return name == "Dicas-Keys" ? "DicasKeys" : name;
                         });

TEST(ChurnLifecycleTest, RepairTrafficIsAccountedUnderChurn) {
  const ChurnRunResult r = RunChurnSharded(ProtocolKind::kLocaware, 1);
  ASSERT_GT(r.churn_events, 0u);
  // Every departure sends LinkDrops and every rejoin probes: with ~300 churn
  // events the repair plane cannot be silent, and bytes include headers.
  EXPECT_GT(r.repair_msgs, 0u);
  EXPECT_GE(r.repair_bytes, r.repair_msgs * 23);
}

TEST(ChurnLifecycleTest, TimelineMatchesGraphAliveAtQuiescence) {
  ExperimentConfig cfg = TinyChurnConfig(ProtocolKind::kDicas);
  auto e = std::move(Engine::Create(cfg)).ValueOrDie();
  e->Run();
  // After the run, the overlay's alive flags are exactly the timeline's
  // answer at the final instant: the scheduled transitions and the pure
  // schedule never diverge.
  const sim::SimTime now = e->simulator().Now();
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    EXPECT_EQ(e->graph().IsAlive(p), e->churn_timeline().IsOnlineAt(p, now))
        << "peer " << p;
  }
}

}  // namespace
}  // namespace locaware::core
