// InlineFunction: the move-only, inline-only closure under every queued
// event. The load-bearing properties are lifecycle exactness (each capture
// destroyed exactly once across moves, heap sifts, and invocation), the
// nothrow-move contract the event heap relies on, and the compile-time
// rejection of captures that do not fit — std::is_constructible_v is the
// statically testable face of the "capture-too-big diagnostic".
#include "common/inline_function.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "sim/event_queue.h"

namespace locaware::common {
namespace {

using Fn = InlineFunction<void(), 64>;
using IntFn = InlineFunction<int(int), 64>;

TEST(InlineFunctionTest, DefaultConstructedIsEmpty) {
  Fn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunctionTest, InvokesCaptureAndForwardsArguments) {
  int base = 40;
  IntFn fn = [base](int x) { return base + x; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(2), 42);
  EXPECT_EQ(fn(-40), 0);  // invocable repeatedly, capture intact
}

TEST(InlineFunctionTest, HoldsMoveOnlyCaptures) {
  // The whole point of dropping std::function: a unique_ptr capture is fine.
  auto owned = std::make_unique<int>(7);
  Fn fn = [p = std::move(owned), out = 0]() mutable { out = *p; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  Fn moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // source emptied by the relocate
  ASSERT_TRUE(static_cast<bool>(moved));
  moved();
}

/// Counts live instances and destructor runs: the double-destroy /
/// leaked-capture canary.
struct LifetimeProbe {
  explicit LifetimeProbe(int* destroyed) : destroyed_(destroyed) {}
  LifetimeProbe(LifetimeProbe&& other) noexcept
      : destroyed_(std::exchange(other.destroyed_, nullptr)) {}
  LifetimeProbe(const LifetimeProbe&) = delete;
  LifetimeProbe& operator=(const LifetimeProbe&) = delete;
  LifetimeProbe& operator=(LifetimeProbe&&) = delete;
  ~LifetimeProbe() {
    if (destroyed_ != nullptr) ++*destroyed_;
  }
  int* destroyed_;
};

TEST(InlineFunctionTest, DestroysCaptureExactlyOnce) {
  int destroyed = 0;
  {
    Fn fn = [probe = LifetimeProbe(&destroyed)] { (void)probe; };
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunctionTest, MoveChainDestroysCaptureExactlyOnce) {
  int destroyed = 0;
  {
    Fn a = [probe = LifetimeProbe(&destroyed)] { (void)probe; };
    Fn b = std::move(a);   // move ctor: relocate, a emptied
    Fn c;
    c = std::move(b);      // move assign into empty
    Fn d = [probe = LifetimeProbe(&destroyed)] { (void)probe; };
    d = std::move(c);      // move assign over a live capture destroys it
    EXPECT_EQ(destroyed, 1);
    d();
  }
  EXPECT_EQ(destroyed, 2);  // the surviving capture, once, at scope exit
}

TEST(InlineFunctionTest, MoveAssignFromSelfIsANoOp) {
  int destroyed = 0;
  Fn fn = [probe = LifetimeProbe(&destroyed)] { (void)probe; };
  Fn& alias = fn;
  fn = std::move(alias);
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(destroyed, 0);
}

// --- the contracts the event heap depends on, stated statically -------------

// Nothrow-move: heap sift operations relocate entries with no rollback.
static_assert(std::is_nothrow_move_constructible_v<Fn>);
static_assert(std::is_nothrow_move_assignable_v<Fn>);
// Move-only: copying would need a per-type copy op the table omits on purpose.
static_assert(!std::is_copy_constructible_v<Fn>);
static_assert(!std::is_copy_assignable_v<Fn>);
// Footprint: exactly the inline buffer plus the single ops pointer.
static_assert(sizeof(Fn) <= 64 + alignof(std::max_align_t) + sizeof(void*));

/// A capture one byte past the inline capacity.
struct TooBig {
  unsigned char bytes[Fn::kCapacity + 1];
  void operator()() const {}
};

/// A capture whose move constructor may throw.
struct ThrowingMove {
  ThrowingMove() = default;
  ThrowingMove(ThrowingMove&&) noexcept(false) {}
  void operator()() const {}
};

// The capture-too-big diagnostic, testable form: construction is a
// constraint failure, not a silent heap spill.
static_assert(!std::is_constructible_v<Fn, TooBig>);
static_assert(!std::is_constructible_v<Fn, ThrowingMove>);
// Wrong signature is rejected the same way.
static_assert(!std::is_constructible_v<Fn, int (*)(int)>);
// And a fitting, nothrow capture of the right shape is accepted.
static_assert(std::is_constructible_v<Fn, void (*)()>);

// The event alias inherits all of it at the engine's capacity.
static_assert(std::is_nothrow_move_constructible_v<sim::EventFn>);
static_assert(!std::is_copy_constructible_v<sim::EventFn>);
struct TooBigForEvent {
  unsigned char bytes[sim::EventFn::kCapacity + 1];
  void operator()() const {}
};
static_assert(!std::is_constructible_v<sim::EventFn, TooBigForEvent>);

TEST(InlineFunctionTest, EventFnCapacityFitsTheEngineClosures) {
  // A capture shaped like the engine's biggest (SendResponse: this + two
  // peer ids + a converted ResponseMessage) must construct, not overflow.
  struct FakeMessage {
    unsigned char payload[192];
  };
  struct Closure {
    void* engine;
    uint32_t next_hop;
    uint32_t sender;
    FakeMessage msg;
    void operator()() const {}
  };
  static_assert(std::is_constructible_v<sim::EventFn, Closure>);
  sim::EventFn fn = Closure{nullptr, 1, 2, {}};
  EXPECT_TRUE(static_cast<bool>(fn));
}

}  // namespace
}  // namespace locaware::common
