#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/sim_time.h"

namespace locaware::sim {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(FromMs(1.0), kMillisecond);
  EXPECT_EQ(FromMs(1.5), 1500);
  EXPECT_EQ(FromSeconds(2.0), 2 * kSecond);
  EXPECT_DOUBLE_EQ(ToMs(kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(ToSeconds(kMinute), 60.0);
}

TEST(SimTimeTest, RoundsToNearestMicrosecond) {
  EXPECT_EQ(FromMs(0.0004), 0);
  EXPECT_EQ(FromMs(0.0006), 1);
}

TEST(SimTimeTest, Formatting) {
  EXPECT_EQ(FormatSimTime(1500 * kMillisecond), "1.500s");
  EXPECT_EQ(FormatSimTime(2 * kMillisecond), "2.000ms");
  EXPECT_EQ(FormatSimTime(7), "7us");
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Push(30, [&] { fired.push_back(3); });
  q.Push(10, [&] { fired.push_back(1); });
  q.Push(20, [&] { fired.push_back(2); });
  while (!q.empty()) {
    SimTime t;
    q.Pop(&t)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInPushOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) {
    SimTime t;
    q.Pop(&t)();
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, PeekDoesNotPop) {
  EventQueue q;
  q.Push(42, [] {});
  EXPECT_EQ(q.PeekTime(), 42);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, EmptyAccessDies) {
  EventQueue q;
  SimTime t;
  EXPECT_DEATH(q.PeekTime(), "empty");
  EXPECT_DEATH(q.Pop(&t), "empty");
}

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.ScheduleAt(100, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.ScheduleAt(50, [&] {
    sim.ScheduleAfter(25, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 75);
}

TEST(SimulatorTest, SchedulingIntoThePastDies) {
  Simulator sim;
  sim.ScheduleAt(100, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(50, [] {}), "past");
}

TEST(SimulatorTest, NegativeDelayDies) {
  Simulator sim;
  EXPECT_DEATH(sim.ScheduleAfter(-1, [] {}), "CHECK");
}

TEST(SimulatorTest, CascadedEventsAllFire) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) sim.ScheduleAfter(10, chain);
  };
  sim.ScheduleAfter(10, chain);
  const uint64_t executed = sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(executed, 100u);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulatorTest, HorizonStopsEarlyAndKeepsLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.ScheduleAt(30, [&] { ++fired; });
  sim.Run(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, IdleAdvanceToHorizon) {
  Simulator sim;
  sim.Run(500);
  EXPECT_EQ(sim.Now(), 500);
  // A second horizon run composes.
  sim.Run(900);
  EXPECT_EQ(sim.Now(), 900);
}

TEST(SimulatorTest, StopInterruptsRun) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_count(), 1u);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PeriodicRunsUntilCallbackDeclines) {
  Simulator sim;
  int ticks = 0;
  sim.SchedulePeriodic(100, [&] { return ++ticks < 5; });
  sim.Run();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.Now(), 500);
}

TEST(SimulatorTest, PeriodicRespectsHorizon) {
  Simulator sim;
  int ticks = 0;
  sim.SchedulePeriodic(100, [&] {
    ++ticks;
    return true;
  });
  sim.Run(1000);
  EXPECT_EQ(ticks, 10);
}

TEST(SimulatorTest, SameTimeEventsDeterministicWithNestedScheduling) {
  // Events scheduled *during* a same-timestamp batch must still fire in
  // scheduling order after the batch.
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(10, [&] {
    order.push_back(1);
    sim.ScheduleAt(10, [&] { order.push_back(3); });
  });
  sim.ScheduleAt(10, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ExecutedCountAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAfter(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.executed_count(), 7u);
}

}  // namespace
}  // namespace locaware::sim
