// Tests for the sharded parallel simulator: conservative-window causality
// (a cross-shard event landing exactly at the lookahead bound is never
// missed — for the scalar bound and for every per-shard-pair matrix entry),
// shard-count-invariant ordering (per-destination execution order is
// identical for K = 1, 2, 4, 8, with and without work stealing, for any
// worker count), and the Run/horizon semantics the engine relies on. The
// TSan CI job runs exactly this binary's SimParallel* suite over the
// threaded paths, stealing included.
#include "sim/sharded_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "sim/shard.h"
#include "sim/sim_time.h"

namespace locaware::sim {
namespace {

constexpr SimTime kLook = FromMs(5);

ShardedSimulatorConfig Config(uint32_t shards, SourceId sources,
                              SimTime lookahead = kLook) {
  ShardedSimulatorConfig config;
  config.num_shards = shards;
  config.lookahead = lookahead;
  config.num_sources = sources;
  return config;
}

TEST(SimParallelTest, SingleShardRunsInKeyOrder) {
  ShardedSimulator sim(Config(1, 4));
  std::vector<int> order;
  // Same timestamp, three sources, deliberately scheduled out of source
  // order: execution must follow (time, src, seq), not insertion order.
  sim.ScheduleAt(0, /*src=*/2, FromMs(10), [&] { order.push_back(2); });
  sim.ScheduleAt(0, /*src=*/0, FromMs(10), [&] { order.push_back(0); });
  sim.ScheduleAt(0, /*src=*/1, FromMs(10), [&] { order.push_back(1); });
  sim.ScheduleAt(0, /*src=*/0, FromMs(5), [&] { order.push_back(9); });
  EXPECT_EQ(sim.Run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{9, 0, 1, 2}));
  EXPECT_EQ(sim.executed_count(), 4u);
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(SimParallelTest, HorizonLeavesLaterEventsQueuedAndIdleAdvances) {
  ShardedSimulator sim(Config(2, 2));
  int fired = 0;
  sim.ScheduleAt(0, 0, FromMs(10), [&] { ++fired; });
  sim.ScheduleAt(1, 1, FromMs(100), [&] { ++fired; });
  EXPECT_EQ(sim.Run(FromMs(50)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_count(), 1u);
  // The later event is still there for the next Run.
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), FromMs(100));
}

TEST(SimParallelTest, EventAtExactHorizonStillFires) {
  ShardedSimulator sim(Config(2, 2));
  int fired = 0;
  sim.ScheduleAt(1, 1, FromMs(50), [&] { ++fired; });
  EXPECT_EQ(sim.Run(FromMs(50)), 1u);
  EXPECT_EQ(fired, 1);
}

// A cross-shard message scheduled at exactly now + lookahead is the tightest
// legal send. Ping-pong at that bound for many rounds: a conservative-window
// bug (window too wide, drain too late) would either CHECK-fail or drop a
// bounce.
TEST(SimParallelTest, LookaheadBoundaryPingPongNeverMissesAnEvent) {
  constexpr int kBounces = 200;
  ShardedSimulator sim(Config(2, 2));
  int count = 0;
  std::vector<SimTime> times;
  std::function<void()> bounce = [&] {
    times.push_back(sim.Now());
    if (++count >= kBounces) return;
    const ShardId here = ShardedSimulator::current_shard();
    const ShardId there = 1 - here;
    sim.ScheduleAt(there, /*src=*/here, sim.Now() + kLook, bounce);
  };
  sim.ScheduleAt(0, 0, 0, bounce);
  EXPECT_EQ(sim.Run(), static_cast<uint64_t>(kBounces));
  EXPECT_EQ(count, kBounces);
  for (int i = 0; i < kBounces; ++i) {
    EXPECT_EQ(times[i], static_cast<SimTime>(i) * kLook) << "bounce " << i;
  }
}

// A cross-shard message at exactly now + its *pairwise* bound is the
// tightest legal send under a lookahead matrix. Three shards, two latency
// classes: 0 and 1 are near (5 ms), 2 is far from both (50 ms). Two
// ping-pong chains run concurrently, each landing every hop exactly at its
// own pair's horizon — a window-bound bug on either edge class (near bound
// applied to the far pair, or vice versa) would CHECK-fail or lose a bounce.
TEST(SimParallelTest, PairwiseBoundaryPingPongRunsBothLatencyClasses) {
  constexpr SimTime kNear = FromMs(5);
  constexpr SimTime kFar = FromMs(50);
  constexpr int kNearBounces = 60;
  constexpr int kFarBounces = 6;
  ShardedSimulatorConfig config = Config(3, 4, kNear);
  config.lookahead_matrix = {0,     kNear, kFar,   // 0 -> {1 near, 2 far}
                             kNear, 0,     kFar,   // 1 -> {0 near, 2 far}
                             kFar,  kFar,  0};     // 2 -> both far
  ShardedSimulator sim(config);
  EXPECT_EQ(sim.LookaheadBetween(0, 1), kNear);
  EXPECT_EQ(sim.LookaheadBetween(2, 0), kFar);

  int near_count = 0;
  std::vector<SimTime> near_times;  // appended by shards 0/1 alternately,
                                    // ordered by the bounce chain itself
  std::function<void()> near_bounce = [&] {
    near_times.push_back(sim.Now());
    if (++near_count >= kNearBounces) return;
    const ShardId here = ShardedSimulator::current_shard();
    sim.ScheduleAt(1 - here, /*src=*/here, sim.Now() + kNear, near_bounce);
  };
  int far_count = 0;
  std::vector<SimTime> far_times;
  std::function<void()> far_bounce = [&] {
    far_times.push_back(sim.Now());
    if (++far_count >= kFarBounces) return;
    const ShardId here = ShardedSimulator::current_shard();
    const ShardId there = (here == 2) ? 0 : 2;
    sim.ScheduleAt(there, /*src=*/here, sim.Now() + kFar, far_bounce);
  };
  sim.ScheduleAt(0, 0, 0, near_bounce);
  sim.ScheduleAt(2, 2, 0, far_bounce);
  EXPECT_EQ(sim.Run(), static_cast<uint64_t>(kNearBounces + kFarBounces));
  for (int i = 0; i < kNearBounces; ++i) {
    EXPECT_EQ(near_times[i], static_cast<SimTime>(i) * kNear) << "near " << i;
  }
  for (int i = 0; i < kFarBounces; ++i) {
    EXPECT_EQ(far_times[i], static_cast<SimTime>(i) * kFar) << "far " << i;
  }
}

// The deep-window payoff, pinned deterministically: the same two-cluster
// workload under the scalar global-min bound vs the true pairwise matrix.
// Window count is a pure function of (events, bounds), so the assertion is
// exact — the matrix run must synchronize strictly less often.
TEST(SimParallelTest, PairwiseMatrixDeepensWindows) {
  static constexpr SimTime kIntra = FromMs(1);
  static constexpr SimTime kCross = FromMs(50);
  static constexpr int kTicks = 100;
  const auto run = [&](bool use_matrix) {
    ShardedSimulatorConfig config = Config(2, 2, kIntra);
    if (use_matrix) config.lookahead_matrix = {0, kCross, kCross, 0};
    ShardedSimulator sim(config);
    // Each shard ticks a private 1 ms chain and fires one far message at the
    // cross-link latency midway — cross traffic exists, but never closer
    // than kCross. (The tick closures outlive the setup loop: events hold
    // references into this vector for the whole run.)
    std::vector<std::function<void(int)>> ticks(2);
    for (ShardId s = 0; s < 2; ++s) {
      ticks[s] = [&sim, &ticks, s](int round) {
        if (round >= kTicks) return;
        sim.ScheduleAt(s, s, sim.Now() + kIntra,
                       [&ticks, s, round] { ticks[s](round + 1); });
        if (round == kTicks / 2) {
          sim.ScheduleAt(1 - s, s, sim.Now() + kCross, [] {});
        }
      };
      sim.ScheduleAt(s, s, 0, [&ticks, s] { ticks[s](0); });
    }
    sim.Run();
    // Per shard: ticks 0..kTicks (the last returns immediately) plus the one
    // inbound cross event.
    EXPECT_EQ(sim.executed_count(), static_cast<uint64_t>(2 * (kTicks + 2)));
    return sim.windows();
  };
  const uint64_t scalar_windows = run(false);
  const uint64_t matrix_windows = run(true);
  EXPECT_LT(matrix_windows, scalar_windows);
  EXPECT_LE(matrix_windows, 6u);  // ~100 ms of sim time in >= 50 ms windows
}

// The determinism contract: per-destination execution order is a pure
// function of the simulation, not of the shard count, the worker count, or
// the stealing mode. Each source floods a deterministic cascade of messages
// (with deliberate time ties) at a fixed set of destinations; the
// per-destination logs must be identical for every partitioning of
// destinations over shards and every thread assignment.
struct LogEntry {
  SimTime time;
  uint32_t src;
  uint32_t tag;
  bool operator==(const LogEntry&) const = default;
};

std::vector<std::vector<LogEntry>> RunCascade(uint32_t num_shards,
                                              uint32_t num_workers = 0,
                                              bool work_stealing = true) {
  constexpr uint32_t kNodes = 12;
  constexpr int kDepth = 5;
  ShardedSimulatorConfig cascade_config = Config(num_shards, kNodes);
  cascade_config.num_workers = num_workers;
  cascade_config.work_stealing = work_stealing;
  ShardedSimulator sim(cascade_config);
  // logs[d] is only ever appended by destination d's handler, which always
  // runs on shard d % num_shards — single-writer, no lock needed.
  std::vector<std::vector<LogEntry>> logs(kNodes);

  // send(src, dst, depth, tag): log at dst, then fan out two messages whose
  // delays collide with other sources' sends (all multiples of kLook).
  std::function<void(uint32_t, uint32_t, int, uint32_t)> handle =
      [&](uint32_t src, uint32_t dst, int depth, uint32_t tag) {
        logs[dst].push_back(LogEntry{sim.Now(), src, tag});
        if (depth >= kDepth) return;
        const uint32_t a = (dst * 7 + tag + 1) % kNodes;
        const uint32_t b = (dst * 3 + src + 2) % kNodes;
        const SimTime ta = sim.Now() + kLook;
        const SimTime tb = sim.Now() + 2 * kLook;
        sim.ScheduleAt(a % num_shards, dst, ta,
                       [=] { handle(dst, a, depth + 1, tag * 2 + 1); });
        sim.ScheduleAt(b % num_shards, dst, tb,
                       [=] { handle(dst, b, depth + 1, tag * 2); });
      };

  for (uint32_t n = 0; n < kNodes; ++n) {
    sim.ScheduleAt(n % num_shards, n, /*at=*/0, [=] { handle(n, n, 0, n); });
  }
  sim.Run();
  return logs;
}

TEST(SimParallelTest, PerDestinationOrderInvariantAcrossShardCounts) {
  const auto baseline = RunCascade(1);
  size_t total = 0;
  for (const auto& log : baseline) total += log.size();
  ASSERT_GT(total, 100u);  // the cascade actually fanned out
  for (uint32_t shards : {2u, 3u, 4u, 8u}) {
    const auto sharded = RunCascade(shards);
    ASSERT_EQ(sharded.size(), baseline.size());
    for (size_t d = 0; d < baseline.size(); ++d) {
      EXPECT_EQ(sharded[d], baseline[d]) << "dst " << d << " shards " << shards;
    }
  }
}

// Stealing moves which thread runs a shard, never the order: the cascade
// must replay byte-identically when 8 shards are over-decomposed onto 2 or
// 3 workers, with stealing both allowed and pinned to the static home-block
// binding.
TEST(SimParallelTest, PerDestinationOrderInvariantUnderWorkStealing) {
  const auto baseline = RunCascade(1);
  for (uint32_t workers : {2u, 3u}) {
    for (bool steal : {false, true}) {
      const auto sharded = RunCascade(8, workers, steal);
      ASSERT_EQ(sharded.size(), baseline.size());
      for (size_t d = 0; d < baseline.size(); ++d) {
        EXPECT_EQ(sharded[d], baseline[d])
            << "dst " << d << " workers " << workers << " steal " << steal;
      }
    }
  }
}

TEST(SimParallelTest, SchedulerStatsAccountWindowsAndOccupancy) {
  const auto run = [](bool steal) {
    ShardedSimulatorConfig config = Config(4, 4);
    config.num_workers = 2;
    config.work_stealing = steal;
    ShardedSimulator sim(config);
    // Shard 0 gets a dense chain, the rest one event each: occupancy is
    // skewed and windows accumulate.
    std::function<void(int)> chain = [&sim, &chain](int round) {
      if (round >= 10) return;
      sim.ScheduleAt(0, 0, sim.Now() + kLook, [&chain, round] { chain(round + 1); });
    };
    sim.ScheduleAt(0, 0, 0, [&chain] { chain(0); });
    for (ShardId s = 1; s < 4; ++s) sim.ScheduleAt(s, s, kLook, [] {});
    sim.Run();
    return sim.stats();
  };
  const SchedulerStats pinned = run(false);
  EXPECT_EQ(pinned.steals, 0u);  // home-block binding never crosses blocks
  EXPECT_GT(pinned.windows, 0u);
  uint64_t occupancy_total = 0;
  for (uint64_t count : pinned.occupancy) occupancy_total += count;
  EXPECT_EQ(occupancy_total, pinned.windows);
  // Stealing mode executes the identical schedule (windows is a pure
  // function of events + bounds); steals themselves are timing-dependent.
  const SchedulerStats stealing = run(true);
  EXPECT_EQ(stealing.windows, pinned.windows);
}

// Mailbox batching: cross-shard events created inside one window are all
// delivered (drained at the barrier) before the destination passes their
// timestamps, even under a many-to-one burst.
TEST(SimParallelTest, ManyToOneBurstDrainsInTimestampSourceOrder) {
  constexpr uint32_t kSenders = 8;
  ShardedSimulator sim(Config(4, kSenders + 1));
  std::vector<uint32_t> arrivals;  // written only by shard 0 (dst source 0)
  for (uint32_t s = 0; s < kSenders; ++s) {
    // Every sender fires at t = kLook on its own shard, then sends to the
    // common destination on shard 0 with identical arrival times.
    sim.ScheduleAt(s % 4, s + 1, kLook, [&sim, &arrivals, s] {
      sim.ScheduleAt(0, s + 1, 3 * kLook, [&arrivals, s] { arrivals.push_back(s); });
    });
  }
  sim.Run();
  ASSERT_EQ(arrivals.size(), kSenders);
  // Identical timestamps: tie-break is source order, independent of which
  // shard's mailbox the event traveled through.
  for (uint32_t s = 0; s < kSenders; ++s) EXPECT_EQ(arrivals[s], s);
  EXPECT_GT(sim.windows(), 0u);
}

// The engine's churn repair handshake is a three-message cross-shard chain
// (LinkDrop -> orphan's LinkProbe -> LinkAccept), each hop landing exactly at
// now + lookahead — so every hop crosses a conservative-window boundary. The
// per-endpoint link state must come out identical whether the two peers share
// one shard or live on different ones, and no hop may be lost at the bound.
TEST(SimParallelTest, RepairHandshakeAcrossLookaheadWindowBoundary) {
  struct Step {
    SimTime time;
    std::string what;
    bool operator==(const Step&) const = default;
  };
  // peers: 0 departs; 1 is orphaned and re-probes 0's replacement (peer 2).
  auto run = [&](uint32_t num_shards) {
    ShardedSimulator sim(Config(num_shards, 3));
    std::vector<std::vector<Step>> log(3);  // per-peer, owner-appended only
    std::vector<bool> linked(3, false);
    auto shard_of = [&](uint32_t p) { return p % num_shards; };

    // t = kLook: peer 0 departs and notifies neighbor 1 (LinkDrop).
    sim.ScheduleAt(shard_of(0), 0, kLook, [&, shard_of] {
      log[0].push_back({sim.Now(), "depart"});
      sim.ScheduleAt(shard_of(1), 0, sim.Now() + kLook, [&, shard_of] {
        // Peer 1 processes the drop, is orphaned, probes peer 2.
        log[1].push_back({sim.Now(), "drop"});
        sim.ScheduleAt(shard_of(2), 1, sim.Now() + kLook, [&, shard_of] {
          // Peer 2 accepts: installs its half-link, replies.
          log[2].push_back({sim.Now(), "probe"});
          linked[2] = true;
          sim.ScheduleAt(shard_of(1), 2, sim.Now() + kLook, [&] {
            log[1].push_back({sim.Now(), "accept"});
            linked[1] = true;
          });
        });
      });
    });
    sim.Run();
    EXPECT_TRUE(linked[1]) << num_shards << " shards: prober half missing";
    EXPECT_TRUE(linked[2]) << num_shards << " shards: acceptor half missing";
    return log;
  };

  const auto baseline = run(1);
  ASSERT_EQ(baseline[1].size(), 2u);  // drop then accept
  for (uint32_t shards : {2u, 3u}) {
    const auto sharded = run(shards);
    for (size_t p = 0; p < baseline.size(); ++p) {
      EXPECT_EQ(sharded[p], baseline[p]) << "peer " << p << " shards " << shards;
    }
  }
}

// PR 10: a DHT iterative lookup is a request/reply ping-pong between one
// initiator and a changing set of remote nodes — session state (hops, the
// node currently asked) lives only at the initiator, and every half-trip
// lands exactly at now + lookahead. The hop sequence recorded at each peer
// must be shard-count invariant, and the final fetch must not be lost at the
// window boundary.
TEST(SimParallelTest, IterativeLookupPingPongAcrossLookaheadBoundary) {
  struct Step {
    SimTime time;
    std::string what;
    bool operator==(const Step&) const = default;
  };
  // peer 0 initiates; the route walks 1 -> 2 -> 3; 3 owns the key.
  auto run = [&](uint32_t num_shards) {
    ShardedSimulator sim(Config(num_shards, 4));
    std::vector<std::vector<Step>> log(4);  // owner-appended only
    auto shard_of = [&](uint32_t p) { return p % num_shards; };
    // Initiator-side session state, mutated only on shard_of(0).
    struct Session {
      uint32_t hops = 0;
      bool got_records = false;
    } session;

    // Each queried node replies "ask next" until 3, which replies "done";
    // the initiator then fetches from 3. All hops land at now + kLook.
    std::function<void(uint32_t)> ask = [&](uint32_t node) {
      sim.ScheduleAt(shard_of(node), 0, sim.Now() + kLook, [&, node] {
        log[node].push_back({sim.Now(), "asked"});
        const bool done = node == 3;
        sim.ScheduleAt(shard_of(0), node, sim.Now() + kLook, [&, node, done] {
          log[0].push_back({sim.Now(), done ? "route-done" : "route-next"});
          ++session.hops;
          if (!done) {
            ask(node + 1);
            return;
          }
          // Final fetch from the owner, one more round trip.
          sim.ScheduleAt(shard_of(3), 0, sim.Now() + kLook, [&] {
            log[3].push_back({sim.Now(), "fetch"});
            sim.ScheduleAt(shard_of(0), 3, sim.Now() + kLook, [&] {
              log[0].push_back({sim.Now(), "records"});
              session.got_records = true;
            });
          });
        });
      });
    };
    sim.ScheduleAt(shard_of(0), 0, kLook, [&] {
      log[0].push_back({sim.Now(), "start"});
      ask(1);
    });
    sim.Run();
    EXPECT_TRUE(session.got_records) << num_shards << " shards: fetch lost";
    EXPECT_EQ(session.hops, 3u) << num_shards << " shards";
    return log;
  };

  const auto baseline = run(1);
  ASSERT_EQ(baseline[0].size(), 5u);  // start, 3 route replies, records
  ASSERT_EQ(baseline[3].size(), 2u);  // asked, fetch
  for (uint32_t shards : {2u, 3u}) {
    const auto sharded = run(shards);
    for (size_t p = 0; p < baseline.size(); ++p) {
      EXPECT_EQ(sharded[p], baseline[p]) << "peer " << p << " shards " << shards;
    }
  }
}

TEST(SimParallelTest, ExecutedAndPendingCountsAggregateShards) {
  ShardedSimulator sim(Config(4, 4));
  for (uint32_t s = 0; s < 4; ++s) {
    sim.ScheduleAt(s, s, FromMs(1), [] {});
    sim.ScheduleAt(s, s, FromMs(2), [] {});
  }
  EXPECT_EQ(sim.pending_count(), 8u);
  EXPECT_EQ(sim.Run(), 8u);
  EXPECT_EQ(sim.executed_count(), 8u);
  EXPECT_EQ(sim.pending_count(), 0u);
}

}  // namespace
}  // namespace locaware::sim
