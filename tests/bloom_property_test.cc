// Randomized property tests for the Bloom subsystem, model-checked against
// exact reference containers. These complement bloom_test.cc's example-based
// cases with thousands of randomized operations per configuration.
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "bloom/bloom_delta.h"
#include "bloom/bloom_filter.h"
#include "bloom/counting_bloom.h"
#include "common/rng.h"

namespace locaware::bloom {
namespace {

struct FilterShape {
  size_t bits;
  size_t hashes;
  uint64_t seed;
};

class BloomPropertyTest : public ::testing::TestWithParam<FilterShape> {};

/// Property: a plain filter never produces a false negative, whatever the
/// shape and insertion history.
TEST_P(BloomPropertyTest, NeverForgetsInsertedKeys) {
  const auto [bits, hashes, seed] = GetParam();
  Rng rng(seed);
  BloomFilter bf(bits, hashes);
  std::set<std::string> inserted;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(rng.UniformInt(0, 5000));
    if (rng.Bernoulli(0.7)) {
      bf.Insert(key);
      inserted.insert(key);
    }
    // Every previously inserted key must still test positive.
    if (i % 50 == 0) {
      for (const std::string& k : inserted) {
        ASSERT_TRUE(bf.MayContain(k)) << k << " lost at step " << i;
      }
    }
  }
}

/// Property: the counting filter agrees with an exact multiset on
/// no-false-negatives, under interleaved inserts and removes.
TEST_P(BloomPropertyTest, CountingFilterTracksMultiset) {
  const auto [bits, hashes, seed] = GetParam();
  Rng rng(seed ^ 0xabcdef);
  CountingBloomFilter cbf(bits, hashes);
  std::map<std::string, int> reference;
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "key" + std::to_string(rng.UniformInt(0, 60));
    if (rng.Bernoulli(0.55)) {
      cbf.Insert(key);
      ++reference[key];
    } else {
      auto it = reference.find(key);
      if (it != reference.end() && it->second > 0) {
        cbf.Remove(key);
        if (--it->second == 0) reference.erase(it);
      }
    }
    // No false negatives: everything with count > 0 must be reported.
    if (i % 100 == 0) {
      for (const auto& [k, count] : reference) {
        ASSERT_TRUE(cbf.MayContain(k)) << k << " lost at step " << i;
      }
    }
  }
  // Draining everything leaves the projection empty unless counters
  // saturated (possible only for the tiny shapes).
  for (auto& [k, count] : reference) {
    for (int c = 0; c < count; ++c) cbf.Remove(k);
  }
  if (cbf.SaturatedCount() == 0) {
    EXPECT_EQ(cbf.projection().CountOnes(), 0u);
  }
}

/// Property: delta-sync keeps a mirrored filter bit-identical through an
/// arbitrary update history (the gossip correctness argument).
TEST_P(BloomPropertyTest, DeltaSyncNeverDiverges) {
  const auto [bits, hashes, seed] = GetParam();
  Rng rng(seed ^ 0x77);
  BloomFilter source(bits, hashes);
  BloomFilter advertised = source;  // last state sent
  BloomFilter mirror = source;      // the neighbor's copy
  for (int round = 0; round < 60; ++round) {
    // Mutate the source arbitrarily (inserts and raw bit clears, as eviction
    // resyncs would produce).
    const int mutations = static_cast<int>(rng.UniformInt(0, 5));
    for (int m = 0; m < mutations; ++m) {
      if (rng.Bernoulli(0.7)) {
        source.Insert("w" + std::to_string(rng.UniformInt(0, 500)));
      } else {
        source.ClearBit(rng.UniformInt(0, bits - 1));
      }
    }
    // Gossip tick: send the delta, apply at the mirror.
    const BloomDelta delta = ComputeDelta(advertised, source);
    auto decoded = DecodeDelta(EncodeDelta(delta), bits);
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(ApplyDelta(decoded.ValueOrDie(), &mirror).ok());
    advertised = source;
    ASSERT_EQ(mirror, source) << "diverged at round " << round;
  }
}

/// Property: fill ratio is monotone in insertions and the fp estimate stays
/// a probability.
TEST_P(BloomPropertyTest, FillMonotoneAndFpBounded) {
  const auto [bits, hashes, seed] = GetParam();
  Rng rng(seed ^ 0x1234);
  BloomFilter bf(bits, hashes);
  double last_fill = 0.0;
  for (int i = 0; i < 300; ++i) {
    bf.Insert("x" + std::to_string(rng.UniformInt(0, 100000)));
    const double fill = bf.FillRatio();
    ASSERT_GE(fill, last_fill);
    ASSERT_LE(fill, 1.0);
    const double fp = bf.EstimatedFpRate();
    ASSERT_GE(fp, 0.0);
    ASSERT_LE(fp, 1.0);
    last_fill = fill;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BloomPropertyTest,
                         ::testing::Values(FilterShape{64, 1, 1},
                                           FilterShape{256, 2, 2},
                                           FilterShape{1200, 4, 3},
                                           FilterShape{1200, 4, 4},
                                           FilterShape{4096, 8, 5},
                                           FilterShape{100, 3, 6}),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param.bits) + "k" +
                                  std::to_string(info.param.hashes) + "s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace locaware::bloom
