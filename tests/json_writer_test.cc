#include "common/json_writer.h"

#include <gtest/gtest.h>

namespace locaware {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("hello world 123"), "hello world 123");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{}");
}

TEST(JsonWriterTest, EmptyArray) {
  JsonWriter w(false);
  w.BeginArray();
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[]");
}

TEST(JsonWriterTest, CompactObject) {
  JsonWriter w(false);
  w.BeginObject();
  w.Key("name");
  w.String("locaware");
  w.Key("peers");
  w.Int(1000);
  w.Key("rate");
  w.Double(0.5);
  w.Key("on");
  w.Bool(true);
  w.Key("none");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.TakeString(),
            R"({"name":"locaware","peers":1000,"rate":0.5,"on":true,"none":null})");
}

TEST(JsonWriterTest, ArrayCommas) {
  JsonWriter w(false);
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.Int(3);
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[1,2,3]");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w(false);
  w.BeginObject();
  w.Key("series");
  w.BeginArray();
  w.BeginObject();
  w.Key("x");
  w.Int(1);
  w.EndObject();
  w.BeginObject();
  w.Key("x");
  w.Int(2);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.TakeString(), R"({"series":[{"x":1},{"x":2}]})");
}

TEST(JsonWriterTest, PrettyModeIndents) {
  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.Key("a");
  w.Int(1);
  w.EndObject();
  const std::string doc = w.TakeString();
  EXPECT_EQ(doc, "{\n  \"a\": 1\n}");
}

TEST(JsonWriterTest, TopLevelScalar) {
  JsonWriter w(false);
  w.String("alone");
  EXPECT_EQ(w.TakeString(), "\"alone\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w(false);
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(1.25);
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[null,null,1.25]");
}

TEST(JsonWriterTest, UintMaxRoundTrips) {
  JsonWriter w(false);
  w.Uint(UINT64_MAX);
  EXPECT_EQ(w.TakeString(), "18446744073709551615");
}

TEST(JsonWriterTest, KeysAreEscaped) {
  JsonWriter w(false);
  w.BeginObject();
  w.Key("we\"ird");
  w.Int(1);
  w.EndObject();
  EXPECT_EQ(w.TakeString(), R"({"we\"ird":1})");
}

TEST(JsonWriterDeathTest, ValueWithoutKeyInObject) {
  JsonWriter w(false);
  w.BeginObject();
  EXPECT_DEATH(w.Int(1), "Key");
}

TEST(JsonWriterDeathTest, DoubleKey) {
  JsonWriter w(false);
  w.BeginObject();
  w.Key("a");
  EXPECT_DEATH(w.Key("b"), "two keys");
}

TEST(JsonWriterDeathTest, KeyInArray) {
  JsonWriter w(false);
  w.BeginArray();
  EXPECT_DEATH(w.Key("a"), "outside an object");
}

TEST(JsonWriterDeathTest, UnbalancedTake) {
  JsonWriter w(false);
  w.BeginObject();
  EXPECT_DEATH(w.TakeString(), "unbalanced");
}

TEST(JsonWriterDeathTest, DanglingKeyAtEndObject) {
  JsonWriter w(false);
  w.BeginObject();
  w.Key("a");
  EXPECT_DEATH(w.EndObject(), "dangling");
}

TEST(JsonWriterDeathTest, TwoTopLevelValues) {
  JsonWriter w(false);
  w.Int(1);
  EXPECT_DEATH(w.Int(2), "one top-level");
}

}  // namespace
}  // namespace locaware
