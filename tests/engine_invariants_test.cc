// Cross-seed invariant sweep: run small experiments for every protocol over
// several seeds and assert the structural invariants that must hold at
// quiescence regardless of randomness. This is the repository's main defense
// against "plausible but subtly wrong" simulation results.
#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/group_hash.h"

namespace locaware::core {
namespace {

struct SweepParam {
  ProtocolKind kind;
  uint64_t seed;
  bool churn;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = ProtocolKindName(info.param.kind);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(info.param.seed) +
         (info.param.churn ? "_churn" : "");
}

class EngineInvariantsTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static ExperimentConfig Config(const SweepParam& param) {
    ExperimentConfig cfg = MakePaperConfig(param.kind, /*num_queries=*/250, param.seed);
    cfg.num_peers = 120;
    cfg.underlay.num_routers = 30;
    cfg.catalog.num_files = 240;
    cfg.catalog.keyword_pool_size = 720;
    cfg.workload.query_rate_per_peer_s = 0.02;
    if (param.churn) {
      cfg.churn.enabled = true;
      cfg.churn.mean_session_s = 300;
      cfg.churn.mean_offline_s = 100;
      cfg.params.ri.entry_ttl = 60 * sim::kSecond;
    }
    return cfg;
  }
};

TEST_P(EngineInvariantsTest, QuiescentStateIsClean) {
  auto e = std::move(Engine::Create(Config(GetParam()))).ValueOrDie();
  e->Run();

  // Every query was finalized and garbage-collected.
  EXPECT_EQ(e->pending_query_count(), 0u);
  EXPECT_EQ(e->tracked_query_count(), 0u);
  EXPECT_EQ(e->metrics().records().size(), 250u);

  // Per-node message-plumbing state drained (no GUID/reverse-path leaks).
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    EXPECT_TRUE(e->node(p).seen_queries.empty()) << "peer " << p;
    EXPECT_TRUE(e->node(p).reverse_path.empty()) << "peer " << p;
  }
}

TEST_P(EngineInvariantsTest, MetricsAreInternallyConsistent) {
  auto e = std::move(Engine::Create(Config(GetParam()))).ValueOrDie();
  e->Run();
  for (const auto& r : e->metrics().records()) {
    if (r.success) {
      EXPECT_NE(r.source, metrics::AnswerSource::kNone);
      EXPECT_GE(r.download_distance_ms, 0.0);
      EXPECT_LE(r.download_distance_ms, 500.0);
      if (r.source != metrics::AnswerSource::kLocalStore &&
          r.source != metrics::AnswerSource::kLocalIndex) {
        // A remote answer implies at least one response message arrived.
        EXPECT_GE(r.responses_received, 1u) << "qid " << r.qid;
        EXPECT_GE(r.response_msgs, 1u) << "qid " << r.qid;
      }
    } else {
      EXPECT_EQ(r.source, metrics::AnswerSource::kNone);
    }
    // Byte accounting is never below the per-message header floor.
    EXPECT_GE(r.query_bytes, r.query_msgs * 23);
    EXPECT_GE(r.response_bytes, r.response_msgs * 23);
    // A response can only have arrived if the query left the requester (or
    // was answered locally with zero messages).
    if (r.responses_received > 0) {
      EXPECT_GT(r.query_msgs, 0u);
    }
  }
}

TEST_P(EngineInvariantsTest, IndexContentsRespectProtocolRules) {
  const SweepParam param = GetParam();
  auto e = std::move(Engine::Create(Config(param))).ValueOrDie();
  e->Run();

  for (PeerId p = 0; p < e->num_peers(); ++p) {
    const NodeState& n = e->node(p);
    if (param.kind == ProtocolKind::kFlooding || param.kind == ProtocolKind::kDht) {
      // Pure flooding and pure DHT run without any response index.
      EXPECT_EQ(n.ri, nullptr);
      continue;
    }
    ASSERT_NE(n.ri, nullptr);
    for (FileId f : n.ri->Files()) {
      // The cached keyword set must be the catalog's sorted set for f.
      EXPECT_EQ(n.ri->KeywordsOf(f), e->catalog().sorted_keywords(f))
          << "peer " << p << " file " << f;
      switch (param.kind) {
        case ProtocolKind::kDicas:
          EXPECT_EQ(GroupOfSetFnv(e->catalog().FileSetFnv(f), e->params().num_groups),
                    n.gid)
              << "peer " << p << " file " << f;
          break;
        case ProtocolKind::kDicasKeys: {
          // Cached via *some* query's keywords — which are a subset of the
          // filename's, so the node's gid must be one of the filename's
          // keyword groups.
          const auto groups = KeywordGroupsOfIds(
              n.ri->KeywordsOf(f),
              [&](KeywordId kw) { return e->catalog().KeywordFnv(kw); },
              e->params().num_groups);
          EXPECT_NE(std::find(groups.begin(), groups.end(), n.gid), groups.end())
              << "peer " << p << " file " << f;
          break;
        }
        case ProtocolKind::kLocaware:
        case ProtocolKind::kHybrid:  // hybrid's cache plane is Locaware's
          EXPECT_EQ(GroupOfSetFnv(e->catalog().FileSetFnv(f), e->params().num_groups),
                    n.gid)
              << "peer " << p << " file " << f;
          break;
        case ProtocolKind::kFlooding:
        case ProtocolKind::kDht:
          break;
      }
      // No index ever names the impossible: all providers are real peers.
      const auto hit = n.ri->LookupFile(f, e->simulator().Now() + 1);
      if (hit.has_value()) {
        for (const auto& prov : hit->providers) {
          EXPECT_LT(prov.provider, e->num_peers());
        }
      }
    }
  }
}

TEST_P(EngineInvariantsTest, LocawareBloomStaysConsistent) {
  const SweepParam param = GetParam();
  if (param.kind != ProtocolKind::kLocaware && param.kind != ProtocolKind::kHybrid) {
    GTEST_SKIP();
  }
  auto e = std::move(Engine::Create(Config(param))).ValueOrDie();
  e->Run();
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    const NodeState& n = e->node(p);
    bloom::BloomFilter rebuilt(e->params().bloom_bits, e->params().bloom_hashes);
    for (FileId f : n.ri->Files()) {
      // Rebuild from strings so string-path and precomputed-hash-path bits
      // are cross-checked end to end.
      for (KeywordId kw : n.ri->KeywordsOf(f)) rebuilt.Insert(e->catalog().keyword(kw));
    }
    EXPECT_EQ(n.keyword_filter->projection(), rebuilt) << "peer " << p;
  }
}

TEST_P(EngineInvariantsTest, FileStoresOnlyGrowWithValidFiles) {
  auto e = std::move(Engine::Create(Config(GetParam()))).ValueOrDie();
  e->Run();
  size_t total = 0;
  for (PeerId p = 0; p < e->num_peers(); ++p) {
    const NodeState& n = e->node(p);
    std::set<FileId> distinct(n.file_store.begin(), n.file_store.end());
    EXPECT_EQ(distinct.size(), n.file_store.size()) << "duplicate file at peer " << p;
    EXPECT_GE(n.file_store.size(), 3u);  // initial shares never vanish
    for (FileId f : n.file_store) EXPECT_LT(f, e->catalog().num_files());
    total += n.file_store.size();
  }
  // Natural replication: total stored copies = initial + successful downloads
  // that were not local-store hits.
  size_t downloads = 0;
  for (const auto& r : e->metrics().records()) {
    if (r.success && r.source != metrics::AnswerSource::kLocalStore) ++downloads;
  }
  // A requester may download a file it already had (different matching file),
  // so <= rather than ==.
  EXPECT_LE(total, 120u * 3u + downloads);
  EXPECT_GE(total, 120u * 3u);
}

TEST_P(EngineInvariantsTest, DeterministicReplay) {
  const auto run_digest = [&] {
    auto e = std::move(Engine::Create(Config(GetParam()))).ValueOrDie();
    e->Run();
    uint64_t digest = 0;
    for (const auto& r : e->metrics().records()) {
      digest = digest * 31 + r.TotalSearchMessages();
      digest = digest * 31 + static_cast<uint64_t>(r.success);
      digest = digest * 31 + static_cast<uint64_t>(r.download_distance_ms * 1000);
    }
    return digest;
  };
  EXPECT_EQ(run_digest(), run_digest());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineInvariantsTest,
    ::testing::Values(SweepParam{ProtocolKind::kFlooding, 1, false},
                      SweepParam{ProtocolKind::kFlooding, 2, true},
                      SweepParam{ProtocolKind::kDicas, 1, false},
                      SweepParam{ProtocolKind::kDicas, 2, true},
                      SweepParam{ProtocolKind::kDicasKeys, 1, false},
                      SweepParam{ProtocolKind::kDicasKeys, 3, true},
                      SweepParam{ProtocolKind::kLocaware, 1, false},
                      SweepParam{ProtocolKind::kLocaware, 2, false},
                      SweepParam{ProtocolKind::kLocaware, 3, true},
                      SweepParam{ProtocolKind::kDht, 1, false},
                      SweepParam{ProtocolKind::kDht, 2, true},
                      SweepParam{ProtocolKind::kHybrid, 1, false},
                      SweepParam{ProtocolKind::kHybrid, 2, true}),
    ParamName);

}  // namespace
}  // namespace locaware::core
