#include "overlay/overlay_graph.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "overlay/churn.h"
#include "overlay/message.h"

namespace locaware::overlay {
namespace {

OverlayConfig PaperOverlay(size_t n = 1000) {
  OverlayConfig cfg;
  cfg.num_peers = n;
  cfg.avg_degree = 3.0;
  return cfg;
}

TEST(OverlayGraphTest, GeneratesConnectedGraphWithTargetDegree) {
  Rng rng(1);
  auto g = std::move(OverlayGraph::Generate(PaperOverlay(), &rng)).ValueOrDie();
  EXPECT_EQ(g.num_peers(), 1000u);
  EXPECT_EQ(g.num_alive(), 1000u);
  EXPECT_TRUE(g.IsConnected());
  // Bridges added for connectivity may push the average slightly above 3.
  EXPECT_GE(g.AverageDegree(), 3.0);
  EXPECT_LE(g.AverageDegree(), 3.6);
}

TEST(OverlayGraphTest, AdjacencyIsSymmetric) {
  Rng rng(2);
  auto g = std::move(OverlayGraph::Generate(PaperOverlay(200), &rng)).ValueOrDie();
  for (PeerId p = 0; p < g.num_peers(); ++p) {
    for (PeerId nb : g.Neighbors(p)) {
      EXPECT_TRUE(g.AreNeighbors(nb, p)) << p << "<->" << nb;
    }
  }
}

TEST(OverlayGraphTest, NoSelfLoopsOrParallelEdges) {
  Rng rng(3);
  auto g = std::move(OverlayGraph::Generate(PaperOverlay(300), &rng)).ValueOrDie();
  for (PeerId p = 0; p < g.num_peers(); ++p) {
    std::set<PeerId> seen;
    for (PeerId nb : g.Neighbors(p)) {
      EXPECT_NE(nb, p);
      EXPECT_TRUE(seen.insert(nb).second) << "parallel edge at " << p;
    }
  }
}

TEST(OverlayGraphTest, RejectsBadConfigs) {
  Rng rng(4);
  OverlayConfig cfg;
  cfg.num_peers = 0;
  EXPECT_FALSE(OverlayGraph::Generate(cfg, &rng).ok());
  cfg.num_peers = 10;
  cfg.avg_degree = 0.5;
  EXPECT_FALSE(OverlayGraph::Generate(cfg, &rng).ok());
}

TEST(OverlayGraphTest, SinglePeerGraph) {
  Rng rng(5);
  OverlayConfig cfg;
  cfg.num_peers = 1;
  cfg.avg_degree = 0.0;
  auto g = std::move(OverlayGraph::Generate(cfg, &rng)).ValueOrDie();
  EXPECT_TRUE(g.IsConnected());
  EXPECT_EQ(g.Degree(0), 0u);
  EXPECT_EQ(g.HighestDegreeNeighbor(0), kInvalidPeer);
}

TEST(OverlayGraphTest, AddRemoveLink) {
  Rng rng(6);
  auto g = std::move(OverlayGraph::Generate(PaperOverlay(50), &rng)).ValueOrDie();
  // Find a non-adjacent pair.
  PeerId a = 0, b = kInvalidPeer;
  for (PeerId cand = 1; cand < 50; ++cand) {
    if (!g.AreNeighbors(0, cand)) {
      b = cand;
      break;
    }
  }
  ASSERT_NE(b, kInvalidPeer);
  const size_t links = g.num_links();
  EXPECT_TRUE(g.AddLink(a, b));
  EXPECT_EQ(g.num_links(), links + 1);
  EXPECT_FALSE(g.AddLink(a, b)) << "duplicate link must be rejected";
  EXPECT_FALSE(g.AddLink(a, a)) << "self loop must be rejected";
  EXPECT_TRUE(g.RemoveLink(a, b));
  EXPECT_FALSE(g.RemoveLink(a, b));
  EXPECT_EQ(g.num_links(), links);
}

TEST(OverlayGraphTest, HighestDegreeNeighborIsMaximal) {
  Rng rng(7);
  auto g = std::move(OverlayGraph::Generate(PaperOverlay(200), &rng)).ValueOrDie();
  for (PeerId p = 0; p < 50; ++p) {
    if (g.Degree(p) == 0) continue;
    const PeerId best = g.HighestDegreeNeighbor(p);
    ASSERT_NE(best, kInvalidPeer);
    for (PeerId nb : g.Neighbors(p)) {
      EXPECT_GE(g.Degree(best), g.Degree(nb));
    }
  }
}

TEST(OverlayGraphTest, DepartDropsAllLinksAndReportsThem) {
  Rng rng(8);
  auto g = std::move(OverlayGraph::Generate(PaperOverlay(100), &rng)).ValueOrDie();
  PeerId victim = 0;
  for (PeerId p = 0; p < 100; ++p) {
    if (g.Degree(p) >= 2) {
      victim = p;
      break;
    }
  }
  const auto before = g.Neighbors(victim);
  const auto dropped = g.Depart(victim);
  EXPECT_EQ(dropped, before);
  EXPECT_FALSE(g.IsAlive(victim));
  EXPECT_EQ(g.Degree(victim), 0u);
  EXPECT_EQ(g.num_alive(), 99u);
  for (PeerId nb : dropped) EXPECT_FALSE(g.AreNeighbors(nb, victim));
}

TEST(OverlayGraphTest, LinksToOfflinePeersAreRejected) {
  Rng rng(9);
  auto g = std::move(OverlayGraph::Generate(PaperOverlay(20), &rng)).ValueOrDie();
  g.Depart(5);
  EXPECT_FALSE(g.AddLink(5, 6));
  EXPECT_FALSE(g.AddLink(6, 5));
}

TEST(OverlayGraphTest, JoinRestoresAndRelinks) {
  Rng rng(10);
  auto g = std::move(OverlayGraph::Generate(PaperOverlay(100), &rng)).ValueOrDie();
  g.Depart(7);
  g.Join(7);
  EXPECT_TRUE(g.IsAlive(7));
  EXPECT_EQ(g.Degree(7), 0u);
  const auto made = g.LinkToRandomPeers(7, 3, &rng);
  EXPECT_EQ(made.size(), 3u);
  for (PeerId nb : made) EXPECT_TRUE(g.AreNeighbors(7, nb));
  EXPECT_EQ(g.num_alive(), 100u);
}

TEST(OverlayGraphTest, DoubleDepartOrJoinDies) {
  Rng rng(11);
  auto g = std::move(OverlayGraph::Generate(PaperOverlay(10), &rng)).ValueOrDie();
  g.Depart(3);
  EXPECT_DEATH(g.Depart(3), "offline");
  g.Join(3);
  EXPECT_DEATH(g.Join(3), "online");
}

TEST(OverlayGraphTest, LargestComponentFractionUnderFragmentation) {
  Rng rng(12);
  OverlayConfig cfg = PaperOverlay(100);
  auto g = std::move(OverlayGraph::Generate(cfg, &rng)).ValueOrDie();
  EXPECT_DOUBLE_EQ(g.LargestComponentFraction(), 1.0);
  // Remove a third of the peers: the fraction stays a valid ratio over the
  // alive population.
  for (PeerId p = 0; p < 33; ++p) g.Depart(p);
  const double frac = g.LargestComponentFraction();
  EXPECT_GT(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST(OverlayGraphTest, DeterministicForSeed) {
  Rng r1(13), r2(13);
  auto g1 = std::move(OverlayGraph::Generate(PaperOverlay(100), &r1)).ValueOrDie();
  auto g2 = std::move(OverlayGraph::Generate(PaperOverlay(100), &r2)).ValueOrDie();
  for (PeerId p = 0; p < 100; ++p) EXPECT_EQ(g1.Neighbors(p), g2.Neighbors(p));
}

// --- messages ---

/// Deterministic stand-in for the catalog's string tables: every keyword is
/// charged as a 5-byte word, every filename as "kw kw kw" (17 bytes).
struct FakeNames : WireNames {
  size_t KeywordWireBytes(KeywordId /*kw*/) const override { return 5; }
  size_t FilenameWireBytes(FileId /*f*/) const override { return 17; }
};

TEST(MessageTest, QuerySizeGrowsWithKeywords) {
  const FakeNames names;
  QueryMessage q;
  q.keywords = {1};
  const size_t small = EstimateSizeBytes(q, names);
  q.keywords = {1, 2, 3};
  EXPECT_EQ(EstimateSizeBytes(q, names), small + 2 * 6);  // 2 more 5-byte words
  EXPECT_GT(small, 23u);  // at least a Gnutella header
}

TEST(MessageTest, ResponseSizeGrowsWithProviders) {
  const FakeNames names;
  ResponseMessage m;
  ResponseRecord rec;
  rec.file = 7;
  rec.providers = {{1, 0}};
  m.records.push_back(rec);
  const size_t one = EstimateSizeBytes(m, names);
  m.records[0].providers.push_back({2, 1});
  m.records[0].providers.push_back({3, 2});
  EXPECT_EQ(EstimateSizeBytes(m, names), one + 2 * 7);  // 2 more (addr+locId)
}

TEST(MessageTest, BloomUpdateSizeMatchesDeltaEncoding) {
  BloomUpdateMessage m;
  m.filter_bits = 1200;
  m.toggled_positions = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  // 12 positions * 11 bits + 16-bit header = 148 bits = 19 bytes + 29 header.
  EXPECT_EQ(EstimateSizeBytes(m), 29u + 19u);
}

TEST(MessageTest, ProbeIsTiny) {
  EXPECT_LT(EstimateSizeBytes(ProbeMessage{}), 40u);
}

TEST(MessageTest, LinkHandshakeSizesChargeFilterOnlyWhenCarried) {
  const LinkDropMessage drop{3, 1};
  EXPECT_EQ(EstimateSizeBytes(drop), 23u + 6u + 4u);

  LinkProbeMessage probe;
  probe.from.peer = 3;
  const size_t bare = EstimateSizeBytes(probe);
  EXPECT_EQ(bare, 23u + 6u + 2u + 4u + 2u);  // header + addr + gid + epoch + degree
  probe.from.filter = bloom::BloomFilter(1200, 4);
  // Locaware's announce ships the whole 1200-bit filter: +4 shape + 150 bytes.
  EXPECT_EQ(EstimateSizeBytes(probe), bare + 4u + 150u);

  LinkAcceptMessage accept;
  accept.from.peer = 4;
  EXPECT_EQ(EstimateSizeBytes(accept), bare + 4u);  // + echoed prober epoch
}

// --- owner-partitioned half-links (message-routed churn) ---

/// A fully-linked 6-peer graph for half-link surgery.
OverlayGraph SmallGraph() {
  Rng rng(11);
  OverlayConfig cfg;
  cfg.num_peers = 6;
  cfg.avg_degree = 2.5;
  return std::move(OverlayGraph::Generate(cfg, &rng)).ValueOrDie();
}

TEST(OverlayHalfLinkTest, GoOfflineClearsOnlyOwnSide) {
  OverlayGraph g = SmallGraph();
  const PeerId victim = 0;
  ASSERT_GT(g.Degree(victim), 0u);
  const std::vector<PeerId> dropped = g.GoOffline(victim);
  EXPECT_FALSE(g.IsAlive(victim));
  EXPECT_EQ(g.Degree(victim), 0u);
  // Neighbors still hold their half until a LinkDrop-equivalent removes it.
  for (PeerId nb : dropped) {
    EXPECT_TRUE(g.HasHalfLink(nb, victim)) << nb;
    EXPECT_TRUE(g.RemoveHalfLink(nb, victim, g.session_epoch(victim)));
    EXPECT_FALSE(g.HasHalfLink(nb, victim));
  }
}

TEST(OverlayHalfLinkTest, EpochGuardsStaleDrops) {
  OverlayGraph g = SmallGraph();
  const std::vector<PeerId> dropped = g.GoOffline(0);
  ASSERT_FALSE(dropped.empty());
  const PeerId nb = dropped.front();
  g.GoOnline(0);  // epoch 1
  // The new session re-establishes the link before the old drop arrives.
  EXPECT_TRUE(g.RemoveHalfLink(nb, 0, /*max_epoch=*/0));  // old half dissolves
  EXPECT_TRUE(g.AddHalfLink(nb, 0, g.session_epoch(0)));
  // The stale LinkDrop (epoch 0) must NOT tear down the epoch-1 link...
  EXPECT_FALSE(g.RemoveHalfLink(nb, 0, /*max_epoch=*/0));
  EXPECT_TRUE(g.HasHalfLink(nb, 0));
  // ...but a drop naming the current session does.
  EXPECT_TRUE(g.RemoveHalfLink(nb, 0, /*max_epoch=*/1));
}

TEST(OverlayHalfLinkTest, AddHalfLinkRefreshesEpochForExistingEdge) {
  OverlayGraph g = SmallGraph();
  ASSERT_TRUE(g.AddHalfLink(1, 4, 0) || g.HasHalfLink(1, 4));
  EXPECT_FALSE(g.AddHalfLink(1, 4, 3));  // exists: refresh, not duplicate
  // After the refresh, an epoch-2 drop is stale.
  EXPECT_FALSE(g.RemoveHalfLink(1, 4, 2));
  EXPECT_TRUE(g.RemoveHalfLink(1, 4, 3));
}

TEST(OverlayHalfLinkTest, JoinAndGoOnlineAdvanceSessionEpoch) {
  OverlayGraph g = SmallGraph();
  EXPECT_EQ(g.session_epoch(2), 0u);
  g.GoOffline(2);
  g.GoOnline(2);
  EXPECT_EQ(g.session_epoch(2), 1u);
  g.Depart(2);
  g.Join(2);
  EXPECT_EQ(g.session_epoch(2), 2u);
}

TEST(OverlayHalfLinkTest, DanglingHalfEdgesStayOutOfComponents) {
  OverlayGraph g = SmallGraph();
  const std::vector<PeerId> dropped = g.GoOffline(0);
  ASSERT_FALSE(dropped.empty());
  // Neighbors' dangling half-edges toward the dead peer must not resurrect it
  // in connectivity accounting.
  EXPECT_EQ(g.num_alive(), 5u);
  EXPECT_LE(g.LargestComponentFraction(), 1.0);
}

// --- churn model ---

TEST(ChurnModelTest, DisabledByDefaultConstructible) {
  ChurnModel model;
  EXPECT_FALSE(model.config().enabled);
}

TEST(ChurnModelTest, RejectsBadEnabledConfigs) {
  ChurnConfig cfg;
  cfg.enabled = true;
  cfg.mean_session_s = 0;
  EXPECT_FALSE(ChurnModel::Create(cfg).ok());
  cfg.mean_session_s = 10;
  cfg.mean_offline_s = -1;
  EXPECT_FALSE(ChurnModel::Create(cfg).ok());
  cfg.mean_offline_s = 10;
  cfg.rejoin_links = 0;
  EXPECT_FALSE(ChurnModel::Create(cfg).ok());
}

// --- churn timeline ---

ChurnModel FastChurn() {
  ChurnConfig cfg;
  cfg.enabled = true;
  cfg.mean_session_s = 50.0;
  cfg.mean_offline_s = 20.0;
  return std::move(ChurnModel::Create(cfg)).ValueOrDie();
}

TEST(ChurnTimelineTest, TransitionsAlternateFromOnline) {
  const auto timeline =
      ChurnTimeline::Build(FastChurn(), /*seed=*/9, /*num_peers=*/40,
                           /*horizon=*/1000 * sim::kSecond);
  for (PeerId p = 0; p < 40; ++p) {
    const auto& trans = timeline.transitions(p);
    ASSERT_FALSE(trans.empty()) << "peer " << p << " never churns in 1000 s";
    EXPECT_TRUE(std::is_sorted(trans.begin(), trans.end()));
    EXPECT_TRUE(timeline.IsOnlineAt(p, 0));
    // Offline at exactly a departure instant, online at exactly a rejoin.
    for (size_t i = 0; i < trans.size(); ++i) {
      EXPECT_EQ(timeline.IsOnlineAt(p, trans[i]), i % 2 == 1) << p << "@" << i;
    }
  }
}

TEST(ChurnTimelineTest, SessionEpochCountsRejoins) {
  const auto timeline =
      ChurnTimeline::Build(FastChurn(), 9, 10, 1000 * sim::kSecond);
  for (PeerId p = 0; p < 10; ++p) {
    const auto& trans = timeline.transitions(p);
    EXPECT_EQ(timeline.SessionEpochAt(p, 0), 0u);
    for (size_t i = 0; i < trans.size(); ++i) {
      // Epoch advances exactly at each rejoin (odd index) and mirrors what
      // OverlayGraph::session_epoch tracks on the owner shard.
      EXPECT_EQ(timeline.SessionEpochAt(p, trans[i]),
                static_cast<uint32_t>((i + 1) / 2))
          << "peer " << p << " transition " << i;
    }
  }
}

TEST(ChurnTimelineTest, PureFunctionOfSeed) {
  const auto a = ChurnTimeline::Build(FastChurn(), 7, 20, 500 * sim::kSecond);
  const auto b = ChurnTimeline::Build(FastChurn(), 7, 20, 500 * sim::kSecond);
  const auto c = ChurnTimeline::Build(FastChurn(), 8, 20, 500 * sim::kSecond);
  size_t diverged = 0;
  for (PeerId p = 0; p < 20; ++p) {
    EXPECT_EQ(a.transitions(p), b.transitions(p)) << "peer " << p;
    diverged += (a.transitions(p) != c.transitions(p));
  }
  EXPECT_GT(diverged, 15u) << "seed barely perturbs the schedule";
}

TEST(ChurnTimelineTest, LongerHorizonExtendsNotRewrites) {
  // Stable per-(peer, cycle) streams: generating further must keep the
  // earlier transitions bit-identical (the property that lets any shard
  // evaluate liveness without coordination).
  const auto small = ChurnTimeline::Build(FastChurn(), 3, 10, 200 * sim::kSecond);
  const auto large = ChurnTimeline::Build(FastChurn(), 3, 10, 2000 * sim::kSecond);
  for (PeerId p = 0; p < 10; ++p) {
    const auto& a = small.transitions(p);
    const auto& b = large.transitions(p);
    ASSERT_GE(b.size(), a.size());
    for (size_t i = 0; i + 1 < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "peer " << p << " transition " << i;
    }
  }
}

TEST(ChurnTimelineTest, DisabledModelKeepsEveryoneOnline) {
  const auto timeline =
      ChurnTimeline::Build(ChurnModel(), 5, 8, 1000 * sim::kSecond);
  for (PeerId p = 0; p < 8; ++p) {
    EXPECT_TRUE(timeline.transitions(p).empty());
    EXPECT_TRUE(timeline.IsOnlineAt(p, 999 * sim::kSecond));
  }
}

TEST(ChurnModelTest, SampleMeansMatchConfig) {
  ChurnConfig cfg;
  cfg.enabled = true;
  cfg.mean_session_s = 100.0;
  cfg.mean_offline_s = 25.0;
  auto model = std::move(ChurnModel::Create(cfg)).ValueOrDie();
  Rng rng(17);
  double session_sum = 0, offline_sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    session_sum += sim::ToSeconds(model.SampleSession(&rng));
    offline_sum += sim::ToSeconds(model.SampleOffline(&rng));
  }
  EXPECT_NEAR(session_sum / kSamples, 100.0, 3.0);
  EXPECT_NEAR(offline_sum / kSamples, 25.0, 1.0);
}

class OverlayDegreeTest : public ::testing::TestWithParam<double> {};

/// Property: generation realizes (approximately) the requested average degree
/// and always produces a connected graph.
TEST_P(OverlayDegreeTest, RealizesRequestedDegree) {
  Rng rng(100);
  OverlayConfig cfg;
  cfg.num_peers = 500;
  cfg.avg_degree = GetParam();
  auto g = std::move(OverlayGraph::Generate(cfg, &rng)).ValueOrDie();
  EXPECT_TRUE(g.IsConnected());
  EXPECT_NEAR(g.AverageDegree(), GetParam(), GetParam() * 0.25 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Degrees, OverlayDegreeTest,
                         ::testing::Values(2.0, 3.0, 4.0, 6.0, 10.0));

}  // namespace
}  // namespace locaware::overlay
