// QueryPayloadPool: the slab-recycled, intrusively refcounted payload behind
// the forward fan-out. What must hold: refcount sharing keeps a node alive
// exactly as long as a Ref exists, a released node is recycled (same slab
// storage, keyword capacity retained), and all of it survives refs dying on
// other threads — the sharded engine destroys delivery closures on
// destination-shard workers. The threaded test runs under TSan in CI.
#include "core/query_payload_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "overlay/message.h"

namespace locaware::core {
namespace {

overlay::QueryMessage MakeMsg(QueryId qid, uint8_t ttl) {
  overlay::QueryMessage msg;
  msg.qid = qid;
  msg.origin = 7;
  msg.origin_loc = 3;
  msg.keywords = {10, 20, 30};
  msg.kw_set_fnv = 0xfeedULL;
  msg.route_kw = 10;
  msg.ttl = ttl;
  msg.hops = 1;
  return msg;
}

TEST(QueryPayloadPoolTest, AcquireCopiesTheMessage) {
  QueryPayloadPool pool;
  const overlay::QueryMessage src = MakeMsg(41, 5);
  QueryPayloadRef ref = pool.Acquire(src);
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref->qid, 41u);
  EXPECT_EQ(ref->ttl, 5);
  EXPECT_EQ(ref->keywords, src.keywords);
  // The pool's copy is independent of the source.
  ref.mutable_msg()->ttl -= 1;
  EXPECT_EQ(src.ttl, 5);
  EXPECT_EQ(ref->ttl, 4);
}

TEST(QueryPayloadPoolTest, CopiesShareOneNodeAndKeepItAlive) {
  QueryPayloadPool pool;
  QueryPayloadRef a = pool.Acquire(MakeMsg(1, 5));
  const overlay::QueryMessage* payload = &*a;
  QueryPayloadRef b = a;                 // copy: same node
  QueryPayloadRef c;
  c = b;                                 // copy-assign
  EXPECT_EQ(&*b, payload);
  EXPECT_EQ(&*c, payload);
  a = QueryPayloadRef();                 // drop two of three
  b = QueryPayloadRef();
  EXPECT_EQ(c->qid, 1u);                 // survivor still reads the payload
  QueryPayloadRef d = std::move(c);      // move: no bump, c emptied
  EXPECT_FALSE(c);
  EXPECT_EQ(&*d, payload);
}

TEST(QueryPayloadPoolTest, ReleasedNodesAreRecycledNotLeaked) {
  QueryPayloadPool pool;
  // Sequential acquire/release must reuse one node: capacity stays at the
  // first slab regardless of iteration count.
  for (uint64_t i = 0; i < 10000; ++i) {
    QueryPayloadRef ref = pool.Acquire(MakeMsg(i, 4));
    EXPECT_EQ(ref->qid, i);
  }
  EXPECT_EQ(pool.capacity(), 64u);  // one base slab, never grew
}

TEST(QueryPayloadPoolTest, GrowsWhenAllNodesAreInFlight) {
  QueryPayloadPool pool;
  std::vector<QueryPayloadRef> live;
  for (uint64_t i = 0; i < 200; ++i) live.push_back(pool.Acquire(MakeMsg(i, 3)));
  EXPECT_GE(pool.capacity(), 200u);
  for (uint64_t i = 0; i < 200; ++i) EXPECT_EQ(live[i]->qid, i);
  live.clear();  // all 200 return to the free list
  const size_t cap = pool.capacity();
  for (uint64_t i = 0; i < 200; ++i) live.push_back(pool.Acquire(MakeMsg(i, 3)));
  EXPECT_EQ(pool.capacity(), cap);  // fully served by recycling
}

TEST(QueryPayloadPoolTest, SelfAssignmentIsSafe) {
  QueryPayloadPool pool;
  QueryPayloadRef ref = pool.Acquire(MakeMsg(9, 2));
  QueryPayloadRef& alias = ref;
  ref = alias;
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref->qid, 9u);
}

TEST(QueryPayloadPoolTest, RefsMayDieOnOtherThreads) {
  // The engine's actual shape: one producer acquires and fans out; refs are
  // destroyed on destination threads. Run enough rounds that recycling,
  // growth and the Treiber free list all see real contention (TSan-checked
  // in CI).
  QueryPayloadPool pool;
  constexpr int kRounds = 2000;
  constexpr int kFanOut = 4;
  std::vector<std::thread> consumers;
  std::vector<std::vector<QueryPayloadRef>> inboxes(kFanOut);
  for (int round = 0; round < kRounds; ++round) {
    QueryPayloadRef shared = pool.Acquire(MakeMsg(round, 6));
    for (int t = 0; t < kFanOut; ++t) inboxes[t].push_back(shared);
    shared = QueryPayloadRef();  // producer drops its ref first
    if ((round + 1) % 100 == 0) {
      // Drain the inboxes concurrently: each thread reads then drops.
      for (int t = 0; t < kFanOut; ++t) {
        consumers.emplace_back([&pool, &inboxes, t] {
          for (QueryPayloadRef& ref : inboxes[t]) {
            ASSERT_TRUE(ref);
            ASSERT_EQ(ref->ttl, 6);
            // Interleave fresh acquires with the drops: pops and pushes on
            // the same free list from four threads at once.
            QueryPayloadRef own = pool.Acquire(MakeMsg(ref->qid, 2));
            ASSERT_EQ(own->ttl, 2);
            ref = QueryPayloadRef();
          }
          inboxes[t].clear();
        });
      }
      for (std::thread& th : consumers) th.join();
      consumers.clear();
    }
  }
}

}  // namespace
}  // namespace locaware::core
