#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

namespace locaware {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LE(same, 1);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng r(0);
  // SplitMix64 seeding must avoid the all-zero xoshiro state.
  bool any_nonzero = false;
  for (int i = 0; i < 8; ++i) any_nonzero |= (r.NextU64() != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = r.UniformInt(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng r(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.UniformInt(42, 42), 42u);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng r(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng r(19);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[r.UniformInt(0, kBuckets - 1)];
  // Each bucket expects 10000; allow 5% deviation (~13 sigma).
  for (int c : counts) EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.05);
}

TEST(RngTest, InvertedBoundsDie) {
  Rng r(23);
  EXPECT_DEATH(r.UniformInt(5, 4), "CHECK");
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng r(31);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) hits += r.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasCorrectMean) {
  Rng r(37);
  const double rate = 2.5;
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += r.Exponential(rate);
  EXPECT_NEAR(sum / kSamples, 1.0 / rate, 0.01);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng r(41);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.Exponential(1.0), 0.0);
}

TEST(RngTest, ExponentialRejectsNonPositiveRate) {
  Rng r(43);
  EXPECT_DEATH(r.Exponential(0.0), "CHECK");
}

TEST(RngTest, ShufflePreservesElements) {
  Rng r(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  r.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng r(53);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const std::vector<int> original = v;
  r.Shuffle(&v);
  EXPECT_NE(v, original);  // probability of identity is 1/100!
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng r(59);
  const auto sample = r.SampleIndices(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleIndicesFullPopulation) {
  Rng r(61);
  const auto sample = r.SampleIndices(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleIndicesRejectsOversample) {
  Rng r(67);
  EXPECT_DEATH(r.SampleIndices(5, 6), "CHECK");
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng root(71);
  Rng a = root.Split("alpha");
  Rng b = root.Split("beta");
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LE(same, 1);
}

TEST(RngTest, SplitIsDeterministicAndNonAdvancing) {
  Rng root(73);
  Rng a1 = root.Split("stream");
  Rng a2 = root.Split("stream");
  EXPECT_EQ(a1.NextU64(), a2.NextU64());
  // Splitting did not advance the parent.
  Rng fresh(73);
  EXPECT_EQ(root.NextU64(), fresh.NextU64());
}

// --- Zipf ---

TEST(ZipfTest, SamplesWithinRange) {
  Rng r(79);
  ZipfDistribution zipf(100, 1.0);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(&r), 100u);
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  Rng r(83);
  ZipfDistribution zipf(1000, 1.0);
  std::map<size_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(&r)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[100]);
}

TEST(ZipfTest, PmfMatchesTheory) {
  ZipfDistribution zipf(3, 1.0);
  // Weights 1, 1/2, 1/3 -> total 11/6.
  EXPECT_NEAR(zipf.Pmf(0), 6.0 / 11.0, 1e-12);
  EXPECT_NEAR(zipf.Pmf(1), 3.0 / 11.0, 1e-12);
  EXPECT_NEAR(zipf.Pmf(2), 2.0 / 11.0, 1e-12);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(500, 0.8);
  double total = 0;
  for (size_t i = 0; i < 500; ++i) total += zipf.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  Rng r(89);
  ZipfDistribution zipf(10, 0.0);
  std::map<size_t, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&r)];
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 10 * 0.06) << "rank " << rank;
  }
}

TEST(ZipfTest, EmpiricalFrequencyTracksPmf) {
  Rng r(97);
  ZipfDistribution zipf(50, 1.2);
  std::vector<int> counts(50, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&r)];
  for (size_t rank : {size_t{0}, size_t{1}, size_t{5}, size_t{20}}) {
    const double expected = zipf.Pmf(rank) * kSamples;
    EXPECT_NEAR(counts[rank], expected, expected * 0.1 + 30) << "rank " << rank;
  }
}

TEST(ZipfTest, SingleItemAlwaysSampled) {
  Rng r(101);
  ZipfDistribution zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&r), 0u);
}

struct ZipfParam {
  size_t n;
  double s;
};

class ZipfPropertyTest : public ::testing::TestWithParam<ZipfParam> {};

/// Property: the CDF is monotone and the PMF is non-increasing in rank for
/// every (n, s) combination.
TEST_P(ZipfPropertyTest, PmfIsNonIncreasing) {
  const auto [n, s] = GetParam();
  ZipfDistribution zipf(n, s);
  for (size_t rank = 1; rank < n; ++rank) {
    EXPECT_LE(zipf.Pmf(rank), zipf.Pmf(rank - 1) + 1e-12)
        << "rank " << rank << " n=" << n << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ZipfPropertyTest,
                         ::testing::Values(ZipfParam{2, 0.5}, ZipfParam{10, 1.0},
                                           ZipfParam{100, 0.0}, ZipfParam{1000, 1.2},
                                           ZipfParam{3000, 1.0}, ZipfParam{7, 2.0}));

}  // namespace
}  // namespace locaware
