// White-box unit tests of the protocol hooks. Instead of observing whole
// simulations, these build a small engine, hand-craft node state (caches,
// Bloom filters, group ids) and call ForwardTargets / AnswerFromIndex /
// ObserveResponse directly, asserting the paper's routing and caching rules
// decision by decision. All symbols come from the engine's own catalog — the
// id plane has no notion of out-of-catalog strings.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/group_hash.h"

namespace locaware::core {
namespace {

/// A deterministic mini-network: no queries are run; tests poke state.
std::unique_ptr<Engine> MakeEngine(ProtocolKind kind, uint64_t seed = 5,
                                   void (*tweak)(ExperimentConfig*) = nullptr) {
  ExperimentConfig cfg = MakePaperConfig(kind, /*num_queries=*/1, seed);
  cfg.num_peers = 60;
  cfg.underlay.num_routers = 15;
  cfg.catalog.num_files = 80;
  cfg.catalog.keyword_pool_size = 240;
  if (tweak) tweak(&cfg);
  return std::move(Engine::Create(cfg)).ValueOrDie();
}

overlay::QueryMessage MakeQuery(Engine& e, PeerId origin,
                                std::vector<KeywordId> keywords) {
  overlay::QueryMessage q;
  q.qid = 777;
  q.origin = origin;
  q.origin_loc = e.loc_of(origin);
  q.route_kw = keywords.front();  // "first sampled" = first listed
  std::sort(keywords.begin(), keywords.end());
  q.kw_set_fnv = e.catalog().CanonicalSetFnv(keywords);
  q.keywords = std::move(keywords);
  q.ttl = 7;
  return q;
}

/// Picks a peer with at least `min_neighbors` neighbors.
PeerId PeerWithNeighbors(Engine& e, size_t min_neighbors) {
  for (PeerId p = 0; p < e.num_peers(); ++p) {
    if (e.graph().Degree(p) >= min_neighbors) return p;
  }
  ADD_FAILURE() << "no peer with " << min_neighbors << " neighbors";
  return 0;
}

/// Group of file `f` under the engine's M.
GroupId FileGroup(Engine& e, FileId f) {
  return GroupOfSetFnv(e.catalog().FileSetFnv(f), e.params().num_groups);
}

/// Group of a single keyword under the engine's M.
GroupId KeywordGroup(Engine& e, KeywordId kw) {
  return GroupOfKeywordFnv(e.catalog().KeywordFnv(kw), e.params().num_groups);
}

// ---------------------------------------------------------------- Flooding

TEST(FloodingBehaviorTest, ForwardsToAllNeighborsExceptSender) {
  auto e = MakeEngine(ProtocolKind::kFlooding);
  const PeerId node = PeerWithNeighbors(*e, 2);
  const PeerId from = e->graph().Neighbors(node)[0];
  const auto q = MakeQuery(*e, 9, {e->catalog().keywords(0)[0]});

  const auto targets = e->protocol().ForwardTargets(*e, node, q, from);
  std::set<PeerId> expected(e->graph().Neighbors(node).begin(),
                            e->graph().Neighbors(node).end());
  expected.erase(from);
  EXPECT_EQ(std::set<PeerId>(targets.begin(), targets.end()), expected);
}

TEST(FloodingBehaviorTest, OriginForwardsEverywhere) {
  auto e = MakeEngine(ProtocolKind::kFlooding);
  const PeerId node = PeerWithNeighbors(*e, 2);
  const auto q = MakeQuery(*e, node, {e->catalog().keywords(0)[0]});
  const auto targets = e->protocol().ForwardTargets(*e, node, q, kInvalidPeer);
  EXPECT_EQ(targets.size(), e->graph().Degree(node));
}

TEST(FloodingBehaviorTest, NeverAnswersFromIndexAndKeepsForwarding) {
  auto e = MakeEngine(ProtocolKind::kFlooding);
  const auto q = MakeQuery(*e, 1, {e->catalog().keywords(0)[0]});
  EXPECT_TRUE(e->protocol().AnswerFromIndex(*e, 2, q).empty());
  EXPECT_TRUE(e->protocol().ForwardAfterHit());
}

// ------------------------------------------------------------------- Dicas

TEST(DicasBehaviorTest, PrefersAllGroupMatchingNeighbors) {
  auto e = MakeEngine(ProtocolKind::kDicas);
  const PeerId node = PeerWithNeighbors(*e, 3);
  const auto q =
      MakeQuery(*e, 9, {e->catalog().keywords(0)[0], e->catalog().keywords(0)[1]});
  const GroupId g = GroupOfSetFnv(q.kw_set_fnv, e->params().num_groups);

  // Force two neighbors into the query's group, the rest out of it.
  const auto& neighbors = e->graph().Neighbors(node);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    e->node(neighbors[i]).gid =
        (i < 2) ? g : static_cast<GroupId>((g + 1) % e->params().num_groups);
  }

  const auto targets = e->protocol().ForwardTargets(*e, node, q, kInvalidPeer);
  ASSERT_EQ(targets.size(), 2u);
  for (PeerId t : targets) EXPECT_EQ(e->node(t).gid, g);
}

TEST(DicasBehaviorTest, FallsBackToBoundedRandomNeighbors) {
  auto e = MakeEngine(ProtocolKind::kDicas);
  const PeerId node = PeerWithNeighbors(*e, 3);
  const auto q =
      MakeQuery(*e, 9, {e->catalog().keywords(0)[0], e->catalog().keywords(0)[1]});
  const GroupId g = GroupOfSetFnv(q.kw_set_fnv, e->params().num_groups);
  for (PeerId nb : e->graph().Neighbors(node)) {
    e->node(nb).gid = static_cast<GroupId>((g + 1) % e->params().num_groups);
  }
  const auto targets = e->protocol().ForwardTargets(*e, node, q, kInvalidPeer);
  EXPECT_EQ(targets.size(), e->params().fallback_fanout);
  for (PeerId t : targets) {
    EXPECT_TRUE(e->graph().AreNeighbors(node, t));
  }
}

TEST(DicasBehaviorTest, SenderIsNeverATarget) {
  auto e = MakeEngine(ProtocolKind::kDicas);
  const PeerId node = PeerWithNeighbors(*e, 2);
  const auto q = MakeQuery(*e, 9, {e->catalog().keywords(0)[0]});
  for (PeerId from : e->graph().Neighbors(node)) {
    const auto targets = e->protocol().ForwardTargets(*e, node, q, from);
    EXPECT_EQ(std::find(targets.begin(), targets.end(), from), targets.end());
  }
}

TEST(DicasBehaviorTest, AnswersOnlyFullFilenameQueries) {
  auto e = MakeEngine(ProtocolKind::kDicas);
  NodeState& n = e->node(3);
  const FileId file = 0;
  const auto& kws = e->catalog().sorted_keywords(file);
  ASSERT_EQ(kws.size(), 3u);
  n.ri->AddProvider(file, kws, cache::ProviderEntry{7, 2, 0}, 0);

  // Partial keyword query: invisible ("designed for filename search").
  auto q_partial = MakeQuery(*e, 9, {kws[0]});
  EXPECT_TRUE(e->protocol().AnswerFromIndex(*e, 3, q_partial).empty());
  auto q_two = MakeQuery(*e, 9, {kws[1], kws[0]});
  EXPECT_TRUE(e->protocol().AnswerFromIndex(*e, 3, q_two).empty());

  // Full keyword set (any order): answered with the single provider.
  auto q_full = MakeQuery(*e, 9, {kws[2], kws[0], kws[1]});
  const auto records = e->protocol().AnswerFromIndex(*e, 3, q_full);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].file, file);
  EXPECT_TRUE(records[0].from_index);
  ASSERT_EQ(records[0].providers.size(), 1u);
  EXPECT_EQ(records[0].providers[0].peer, 7u);
}

TEST(DicasBehaviorTest, CachesOnlyAtMatchingGidWithSingleProvider) {
  auto e = MakeEngine(ProtocolKind::kDicas);
  const FileId file = 0;
  const GroupId g = FileGroup(*e, file);

  overlay::ResponseMessage resp;
  resp.qid = 1;
  resp.responder = 8;
  resp.origin = 9;
  resp.origin_loc = 3;
  resp.query_keywords = e->catalog().sorted_keywords(file);
  overlay::ResponseRecord rec;
  rec.file = file;
  rec.providers = {{8, 5}, {4, 1}};
  resp.records.push_back(rec);

  NodeState& matching = e->node(10);
  matching.gid = g;
  NodeState& other = e->node(11);
  other.gid = static_cast<GroupId>((g + 1) % e->params().num_groups);

  e->protocol().ObserveResponse(*e, 10, resp);
  e->protocol().ObserveResponse(*e, 11, resp);

  EXPECT_TRUE(matching.ri->Contains(file));
  EXPECT_FALSE(other.ri->Contains(file));
  // Single-provider index: only the freshest provider is kept.
  auto hit = matching.ri->LookupFile(file, 1);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->providers.size(), 1u);
  EXPECT_EQ(hit->providers[0].provider, 8u);
}

// -------------------------------------------------------------- Dicas-Keys

TEST(DicasKeysBehaviorTest, RoutesByFirstKeywordGroup) {
  auto e = MakeEngine(ProtocolKind::kDicasKeys);
  const PeerId node = PeerWithNeighbors(*e, 3);
  const auto q =
      MakeQuery(*e, 9, {e->catalog().keywords(0)[0], e->catalog().keywords(0)[1]});
  // The routed keyword is the message's designated route_kw.
  const GroupId g_first = KeywordGroup(*e, q.route_kw);

  const auto& neighbors = e->graph().Neighbors(node);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    e->node(neighbors[i]).gid =
        (i == 0) ? g_first
                 : static_cast<GroupId>((g_first + 1) % e->params().num_groups);
  }
  const auto targets = e->protocol().ForwardTargets(*e, node, q, kInvalidPeer);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], neighbors[0]);
}

TEST(DicasKeysBehaviorTest, CachesUnderQueryKeywordGroups) {
  auto e = MakeEngine(ProtocolKind::kDicasKeys);
  const FileId file = 0;
  const KeywordId routed_kw = e->catalog().sorted_keywords(file)[1];

  overlay::ResponseMessage resp;
  resp.qid = 1;
  resp.responder = 8;
  resp.origin = 9;
  resp.query_keywords = {routed_kw};  // the query that produced this response
  overlay::ResponseRecord rec;
  rec.file = file;
  rec.providers = {{8, 5}};
  resp.records.push_back(rec);

  const GroupId g_kw = KeywordGroup(*e, routed_kw);
  const GroupId g_other = static_cast<GroupId>((g_kw + 1) % e->params().num_groups);

  e->node(20).gid = g_kw;
  e->node(21).gid = g_other;
  e->protocol().ObserveResponse(*e, 20, resp);
  e->protocol().ObserveResponse(*e, 21, resp);

  EXPECT_TRUE(e->node(20).ri->Contains(file));
  EXPECT_FALSE(e->node(21).ri->Contains(file));
}

TEST(DicasKeysBehaviorTest, HitVisibleOnlyWhenQueryPointsAtThisGroup) {
  auto e = MakeEngine(ProtocolKind::kDicasKeys);
  NodeState& n = e->node(5);
  const FileId file = 0;
  const auto& kws = e->catalog().sorted_keywords(file);
  ASSERT_EQ(kws.size(), 3u);
  n.ri->AddProvider(file, kws, cache::ProviderEntry{7, 2, 0}, 0);
  n.gid = KeywordGroup(*e, kws[1]);

  // Query containing kws[1]: its hash points at this node's group.
  auto q_visible = MakeQuery(*e, 9, {kws[1], kws[0]});
  EXPECT_FALSE(e->protocol().AnswerFromIndex(*e, 5, q_visible).empty());

  // Query with only keywords whose groups differ: the entry is unreachable
  // through the keyword-hash index even though the node has it.
  if (KeywordGroup(*e, kws[0]) != n.gid && KeywordGroup(*e, kws[2]) != n.gid) {
    auto q_invisible = MakeQuery(*e, 9, {kws[0], kws[2]});
    EXPECT_TRUE(e->protocol().AnswerFromIndex(*e, 5, q_invisible).empty());
  }
}

// ---------------------------------------------------------------- Locaware

TEST(LocawareBehaviorTest, BloomTierBeatsGidTier) {
  auto e = MakeEngine(ProtocolKind::kLocaware);
  const PeerId node = PeerWithNeighbors(*e, 3);
  const auto& neighbors = e->graph().Neighbors(node);
  const auto q =
      MakeQuery(*e, 9, {e->catalog().keywords(0)[0], e->catalog().keywords(0)[1]});

  // Neighbor 0's filter advertises both keywords (inserted by *string*, so
  // the precomputed-hash probe path is cross-checked); neighbor 1 matches by
  // gid.
  NodeState& n = e->node(node);
  bloom::BloomFilter match(e->params().bloom_bits, e->params().bloom_hashes);
  match.Insert(e->catalog().keyword(q.keywords[0]));
  match.Insert(e->catalog().keyword(q.keywords[1]));
  n.neighbor_filters.insert_or_assign(neighbors[0], match);
  e->node(neighbors[1]).gid = GroupOfSetFnv(q.kw_set_fnv, e->params().num_groups);

  const auto targets = e->protocol().ForwardTargets(*e, node, q, kInvalidPeer);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], neighbors[0]);
}

TEST(LocawareBehaviorTest, PartialBloomMatchDoesNotCount) {
  auto e = MakeEngine(ProtocolKind::kLocaware);
  const PeerId node = PeerWithNeighbors(*e, 2);
  const auto& neighbors = e->graph().Neighbors(node);
  const auto q =
      MakeQuery(*e, 9, {e->catalog().keywords(0)[0], e->catalog().keywords(0)[1]});

  NodeState& n = e->node(node);
  bloom::BloomFilter partial(e->params().bloom_bits, e->params().bloom_hashes);
  partial.Insert(e->catalog().keyword(q.keywords[0]));  // only one of the two
  n.neighbor_filters.insert_or_assign(neighbors[0], partial);
  // Keep every neighbor out of the query's gid so tier 2 is empty too.
  const GroupId g = GroupOfSetFnv(q.kw_set_fnv, e->params().num_groups);
  for (PeerId nb : neighbors) {
    e->node(nb).gid = static_cast<GroupId>((g + 1) % e->params().num_groups);
  }

  const auto targets = e->protocol().ForwardTargets(*e, node, q, kInvalidPeer);
  // Tier 3 (highest degree), not the partial-match neighbor specifically.
  ASSERT_FALSE(targets.empty());
  size_t best_degree = 0;
  for (PeerId nb : neighbors) best_degree = std::max(best_degree, e->graph().Degree(nb));
  EXPECT_EQ(e->graph().Degree(targets[0]), best_degree);
}

TEST(LocawareBehaviorTest, FallbackIsBoundedAndDegreeSorted) {
  auto e = MakeEngine(ProtocolKind::kLocaware);
  const PeerId node = PeerWithNeighbors(*e, 3);
  const auto q =
      MakeQuery(*e, 9, {e->catalog().keywords(7)[0], e->catalog().keywords(7)[1]});
  const GroupId g = GroupOfSetFnv(q.kw_set_fnv, e->params().num_groups);
  for (PeerId nb : e->graph().Neighbors(node)) {
    e->node(nb).gid = static_cast<GroupId>((g + 1) % e->params().num_groups);
  }
  const auto targets = e->protocol().ForwardTargets(*e, node, q, kInvalidPeer);
  ASSERT_EQ(targets.size(), e->params().fallback_fanout);
  EXPECT_GE(e->graph().Degree(targets[0]), e->graph().Degree(targets[1]));
}

TEST(LocawareBehaviorTest, AnswerPutsRequesterLocalityFirstAndCapsProviders) {
  auto e = MakeEngine(ProtocolKind::kLocaware);
  NodeState& n = e->node(3);
  const FileId file = 0;
  const auto& kws = e->catalog().sorted_keywords(file);
  const PeerId origin = 9;
  const LocId origin_loc = e->loc_of(origin);

  // Five providers, two in the requester's locality (inserted early, so they
  // are *not* the freshest).
  sim::SimTime t = 0;
  n.ri->AddProvider(file, kws, cache::ProviderEntry{30, origin_loc, 0}, ++t);
  n.ri->AddProvider(file, kws, cache::ProviderEntry{31, origin_loc, 0}, ++t);
  n.ri->AddProvider(file, kws,
                    cache::ProviderEntry{32, static_cast<LocId>(origin_loc + 1), 0},
                    ++t);
  n.ri->AddProvider(file, kws,
                    cache::ProviderEntry{33, static_cast<LocId>(origin_loc + 1), 0},
                    ++t);
  n.ri->AddProvider(file, kws,
                    cache::ProviderEntry{34, static_cast<LocId>(origin_loc + 2), 0},
                    ++t);

  auto q = MakeQuery(*e, origin, {kws[0], kws[2]});
  const auto records = e->protocol().AnswerFromIndex(*e, 3, q);
  ASSERT_EQ(records.size(), 1u);
  const auto& provs = records[0].providers;
  ASSERT_EQ(provs.size(), e->params().max_response_providers);  // capped at 3
  // locId matches first (most recent of them first), then the freshest other.
  EXPECT_EQ(provs[0].peer, 31u);
  EXPECT_EQ(provs[1].peer, 30u);
  EXPECT_EQ(provs[2].peer, 34u);  // freshest non-matching

  // The requester was recorded as a new provider ("adds the entry (E, 1)").
  auto hit = n.ri->LookupFile(file, t + 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->providers.front().provider, origin);
}

TEST(LocawareBehaviorTest, CachingKeepsBloomInSync) {
  auto e = MakeEngine(ProtocolKind::kLocaware);
  const FileId file = 0;
  const auto& kws = e->catalog().sorted_keywords(file);
  ASSERT_EQ(kws.size(), 3u);
  const GroupId g = FileGroup(*e, file);
  NodeState& n = e->node(12);
  n.gid = g;

  overlay::ResponseMessage resp;
  resp.qid = 1;
  resp.responder = 8;
  resp.origin = 9;
  resp.origin_loc = e->loc_of(9);
  resp.query_keywords = {kws[0]};
  overlay::ResponseRecord rec;
  rec.file = file;
  rec.providers = {{8, 5}};
  resp.records.push_back(rec);

  // Membership checks go through the *string* overloads: the engine inserts
  // via precomputed hashes, so agreement proves the two paths are identical.
  EXPECT_FALSE(n.keyword_filter->MayContain(e->catalog().keyword(kws[1])));
  e->protocol().ObserveResponse(*e, 12, resp);
  EXPECT_TRUE(n.ri->Contains(file));
  EXPECT_TRUE(n.keyword_filter->MayContain(e->catalog().keyword(kws[0])));
  EXPECT_TRUE(n.keyword_filter->MayContain(e->catalog().keyword(kws[1])));
  EXPECT_TRUE(n.keyword_filter->MayContain(e->catalog().keyword(kws[2])));
  // Both the responder and the origin became providers.
  auto hit = n.ri->LookupFile(file, 1);
  ASSERT_TRUE(hit.has_value());
  std::set<PeerId> providers;
  for (const auto& p : hit->providers) providers.insert(p.provider);
  EXPECT_TRUE(providers.contains(8u));
  EXPECT_TRUE(providers.contains(9u));
}

TEST(LocawareBehaviorTest, StopsForwardingAfterHit) {
  auto e = MakeEngine(ProtocolKind::kLocaware);
  EXPECT_FALSE(e->protocol().ForwardAfterHit());
}

TEST(LocawareBehaviorTest, LocAwareRoutingPrefersOriginLocality) {
  auto e = MakeEngine(ProtocolKind::kLocaware, 5, [](ExperimentConfig* cfg) {
    cfg->params.loc_aware_routing = true;
  });
  const PeerId node = PeerWithNeighbors(*e, 3);
  const auto& neighbors = e->graph().Neighbors(node);
  const PeerId origin = 9;
  auto q =
      MakeQuery(*e, origin, {e->catalog().keywords(13)[0], e->catalog().keywords(13)[2]});

  // Tier 2 setup: two gid-matching neighbors, one in the origin's locality.
  const GroupId g = GroupOfSetFnv(q.kw_set_fnv, e->params().num_groups);
  for (PeerId nb : neighbors) {
    e->node(nb).gid = static_cast<GroupId>((g + 1) % e->params().num_groups);
    e->node(nb).loc_id = static_cast<LocId>(q.origin_loc + 1);
  }
  e->node(neighbors[0]).gid = g;
  e->node(neighbors[1]).gid = g;
  e->node(neighbors[1]).loc_id = q.origin_loc;

  const auto targets = e->protocol().ForwardTargets(*e, node, q, kInvalidPeer);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], neighbors[1]);  // locality wins within the tier
}

}  // namespace
}  // namespace locaware::core
