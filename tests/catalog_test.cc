#include "catalog/file_catalog.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "catalog/keyword_pool.h"
#include "catalog/workload.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace locaware::catalog {
namespace {

TEST(KeywordPoolTest, GeneratesUniqueLowercaseWords) {
  Rng rng(1);
  KeywordPool pool(500, &rng);
  EXPECT_EQ(pool.size(), 500u);
  std::set<std::string> seen;
  for (const auto& w : pool.words()) {
    EXPECT_TRUE(seen.insert(w).second) << "duplicate " << w;
    EXPECT_GE(w.size(), 4u);
    EXPECT_LE(w.size(), 9u);
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(KeywordPoolTest, WordsSurviveTokenization) {
  // Keywords must be fixed points of the filename tokenizer.
  Rng rng(2);
  KeywordPool pool(100, &rng);
  for (const auto& w : pool.words()) {
    const auto tokens = TokenizeKeywords(w);
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_EQ(tokens[0], w);
  }
}

TEST(KeywordPoolTest, DeterministicForSeed) {
  Rng a(3), b(3);
  KeywordPool p1(50, &a), p2(50, &b);
  EXPECT_EQ(p1.words(), p2.words());
}

TEST(KeywordPoolTest, OutOfRangeAccessDies) {
  Rng rng(4);
  KeywordPool pool(10, &rng);
  EXPECT_DEATH(pool.word(10), "CHECK");
}

CatalogConfig PaperCatalog() {
  CatalogConfig cfg;
  cfg.num_files = 3000;
  cfg.keyword_pool_size = 9000;
  cfg.keywords_per_file = 3;
  return cfg;
}

TEST(FileCatalogTest, GeneratesPaperShape) {
  Rng rng(5);
  auto built = FileCatalog::Generate(PaperCatalog(), &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const FileCatalog& cat = built.ValueOrDie();
  EXPECT_EQ(cat.num_files(), 3000u);
  EXPECT_EQ(cat.keywords_per_file(), 3u);
  for (FileId f = 0; f < 100; ++f) {
    EXPECT_EQ(cat.keywords(f).size(), 3u);
    EXPECT_EQ(TokenizeKeywords(cat.filename(f)), cat.keywords(f));
  }
}

TEST(FileCatalogTest, FilenamesAreUnique) {
  Rng rng(6);
  CatalogConfig cfg;
  cfg.num_files = 2000;
  cfg.keyword_pool_size = 300;  // force some collision pressure
  cfg.keywords_per_file = 2;
  auto cat = std::move(FileCatalog::Generate(cfg, &rng)).ValueOrDie();
  std::set<std::string> names;
  for (FileId f = 0; f < cat.num_files(); ++f) {
    EXPECT_TRUE(names.insert(cat.filename(f)).second) << cat.filename(f);
  }
}

TEST(FileCatalogTest, RejectsBadConfigs) {
  Rng rng(7);
  CatalogConfig cfg;
  cfg.num_files = 0;
  EXPECT_FALSE(FileCatalog::Generate(cfg, &rng).ok());

  cfg = CatalogConfig{};
  cfg.keywords_per_file = 0;
  EXPECT_FALSE(FileCatalog::Generate(cfg, &rng).ok());

  cfg = CatalogConfig{};
  cfg.keyword_pool_size = 2;
  cfg.keywords_per_file = 3;
  EXPECT_FALSE(FileCatalog::Generate(cfg, &rng).ok());
}

TEST(FileCatalogTest, MatchesImplementsContainment) {
  Rng rng(8);
  auto cat = std::move(FileCatalog::Generate(PaperCatalog(), &rng)).ValueOrDie();
  const auto& kws = cat.keywords(0);
  EXPECT_TRUE(cat.Matches(0, {kws[0]}));
  EXPECT_TRUE(cat.Matches(0, {kws[2], kws[0]}));
  EXPECT_TRUE(cat.Matches(0, kws));
  EXPECT_FALSE(cat.Matches(0, {kws[0], "definitelynotakeyword"}));
}

TEST(FileCatalogTest, FindMatchesAgreesWithBruteForce) {
  Rng rng(9);
  CatalogConfig cfg;
  cfg.num_files = 400;
  cfg.keyword_pool_size = 120;  // dense keyword reuse -> multi-file matches
  cfg.keywords_per_file = 3;
  auto cat = std::move(FileCatalog::Generate(cfg, &rng)).ValueOrDie();

  for (FileId probe = 0; probe < 50; ++probe) {
    const std::vector<std::string> query{cat.keywords(probe)[0]};
    std::set<FileId> brute;
    for (FileId f = 0; f < cat.num_files(); ++f) {
      if (cat.Matches(f, query)) brute.insert(f);
    }
    const auto fast = cat.FindMatches(query);
    EXPECT_EQ(std::set<FileId>(fast.begin(), fast.end()), brute);
    EXPECT_TRUE(brute.contains(probe));
  }
}

TEST(FileCatalogTest, FindMatchesUnknownKeywordIsEmpty) {
  Rng rng(10);
  auto cat = std::move(FileCatalog::Generate(PaperCatalog(), &rng)).ValueOrDie();
  EXPECT_TRUE(cat.FindMatches({"zzzznotaword"}).empty());
  EXPECT_TRUE(cat.FindMatches({}).empty());
  EXPECT_TRUE(cat.FindMatches({cat.keywords(0)[0], "zzzznotaword"}).empty());
}

TEST(FileCatalogTest, LookupFilenameRoundTrip) {
  Rng rng(11);
  auto cat = std::move(FileCatalog::Generate(PaperCatalog(), &rng)).ValueOrDie();
  for (FileId f = 0; f < 100; ++f) {
    EXPECT_EQ(cat.LookupFilename(cat.filename(f)), f);
  }
  EXPECT_EQ(cat.LookupFilename("no such file"), FileCatalog::kInvalidFile);
}

// --- workload ---

class WorkloadFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(12);
    catalog_ = std::move(FileCatalog::Generate(PaperCatalog(), &rng)).ValueOrDie();
  }

  WorkloadConfig PaperWorkload(uint64_t n = 2000) {
    WorkloadConfig cfg;
    cfg.num_queries = n;
    return cfg;
  }

  FileCatalog catalog_;
};

TEST_F(WorkloadFixture, GeneratesRequestedCount) {
  Rng rng(13);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(), catalog_, 1000, &rng))
                .ValueOrDie();
  EXPECT_EQ(wl.queries().size(), 2000u);
}

TEST_F(WorkloadFixture, QueryKeywordsComeFromTargetFile) {
  Rng rng(14);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(), catalog_, 1000, &rng))
                .ValueOrDie();
  for (const QueryEvent& q : wl.queries()) {
    EXPECT_GE(q.keywords.size(), 1u);
    EXPECT_LE(q.keywords.size(), 3u);
    EXPECT_TRUE(catalog_.Matches(q.target, q.keywords))
        << "query " << q.id << " does not match its own target";
    EXPECT_LT(q.requester, 1000u);
  }
}

TEST_F(WorkloadFixture, SubmitTimesAreMonotoneAndPoissonish) {
  Rng rng(15);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(5000), catalog_, 1000, &rng))
                .ValueOrDie();
  const auto& qs = wl.queries();
  for (size_t i = 1; i < qs.size(); ++i) {
    EXPECT_GE(qs[i].submit_time, qs[i - 1].submit_time);
  }
  // Aggregate rate 0.83/s -> 5000 queries in ~6024 s (±15%).
  const double span_s = sim::ToSeconds(qs.back().submit_time);
  EXPECT_NEAR(span_s, 5000.0 / 0.83, 5000.0 / 0.83 * 0.15);
}

TEST_F(WorkloadFixture, PopularityIsZipfSkewed) {
  Rng rng(16);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(20000), catalog_, 1000, &rng))
                .ValueOrDie();
  std::map<FileId, int> counts;
  for (const QueryEvent& q : wl.queries()) ++counts[q.target];
  // The most popular file (rank 0) should dominate.
  const FileId top = wl.FileAtRank(0);
  int max_count = 0;
  for (const auto& [f, c] : counts) max_count = std::max(max_count, c);
  EXPECT_EQ(counts[top], max_count);
  // Zipf(1.0) over 3000 items: rank 0 carries ~1/ln(3000)/1 ≈ 11% of mass.
  EXPECT_GT(counts[top], 20000 * 0.05);
  // And a long tail exists: many files queried just a few times.
  int singletons = 0;
  for (const auto& [f, c] : counts) singletons += (c <= 2);
  EXPECT_GT(singletons, 100);
}

TEST_F(WorkloadFixture, RankOfFileInvertsFileAtRank) {
  Rng rng(25);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(100), catalog_, 100, &rng))
                .ValueOrDie();
  for (size_t rank = 0; rank < 50; ++rank) {
    EXPECT_EQ(wl.RankOfFile(wl.FileAtRank(rank)), rank);
  }
  EXPECT_EQ(wl.RankOfFile(static_cast<FileId>(catalog_.num_files() + 5)),
            QueryWorkload::kUnknownRank);
}

TEST_F(WorkloadFixture, LoadedTraceHasUnknownRanks) {
  Rng rng(26);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(50), catalog_, 50, &rng))
                .ValueOrDie();
  const std::string path = ::testing::TempDir() + "/locaware_rank_trace.txt";
  ASSERT_TRUE(wl.SaveTrace(path).ok());
  auto loaded = std::move(QueryWorkload::LoadTrace(path)).ValueOrDie();
  EXPECT_EQ(loaded.RankOfFile(0), QueryWorkload::kUnknownRank);
  std::remove(path.c_str());
}

TEST_F(WorkloadFixture, DeterministicForSeed) {
  Rng r1(17), r2(17);
  auto w1 = std::move(QueryWorkload::Generate(PaperWorkload(500), catalog_, 100, &r1))
                .ValueOrDie();
  auto w2 = std::move(QueryWorkload::Generate(PaperWorkload(500), catalog_, 100, &r2))
                .ValueOrDie();
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(w1.queries()[i].requester, w2.queries()[i].requester);
    EXPECT_EQ(w1.queries()[i].target, w2.queries()[i].target);
    EXPECT_EQ(w1.queries()[i].submit_time, w2.queries()[i].submit_time);
    EXPECT_EQ(w1.queries()[i].keywords, w2.queries()[i].keywords);
  }
}

TEST_F(WorkloadFixture, RejectsBadConfigs) {
  Rng rng(18);
  EXPECT_FALSE(QueryWorkload::Generate(PaperWorkload(), catalog_, 0, &rng).ok());

  WorkloadConfig cfg = PaperWorkload();
  cfg.query_rate_per_peer_s = 0;
  EXPECT_FALSE(QueryWorkload::Generate(cfg, catalog_, 10, &rng).ok());

  cfg = PaperWorkload();
  cfg.min_query_keywords = 0;
  EXPECT_FALSE(QueryWorkload::Generate(cfg, catalog_, 10, &rng).ok());

  cfg = PaperWorkload();
  cfg.min_query_keywords = 3;
  cfg.max_query_keywords = 2;
  EXPECT_FALSE(QueryWorkload::Generate(cfg, catalog_, 10, &rng).ok());
}

TEST_F(WorkloadFixture, TraceSaveLoadRoundTrip) {
  Rng rng(19);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(300), catalog_, 100, &rng))
                .ValueOrDie();
  const std::string path = ::testing::TempDir() + "/locaware_trace_test.txt";
  ASSERT_TRUE(wl.SaveTrace(path).ok());

  auto loaded = QueryWorkload::LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& a = wl.queries();
  const auto& b = loaded.ValueOrDie().queries();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].requester, b[i].requester);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].keywords, b[i].keywords);
  }
  std::remove(path.c_str());
}

TEST_F(WorkloadFixture, LoadTraceRejectsMissingAndMalformed) {
  EXPECT_FALSE(QueryWorkload::LoadTrace("/nonexistent/path/trace.txt").ok());

  const std::string path = ::testing::TempDir() + "/locaware_bad_trace.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1 2 3\n", f);  // too few fields
    std::fclose(f);
  }
  EXPECT_FALSE(QueryWorkload::LoadTrace(path).ok());

  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1 2 3 400\n", f);  // no keywords
    std::fclose(f);
  }
  EXPECT_FALSE(QueryWorkload::LoadTrace(path).ok());
  std::remove(path.c_str());
}

TEST_F(WorkloadFixture, InitialPlacementShape) {
  Rng rng(20);
  const auto placement = AssignInitialFiles(1000, 3, catalog_, &rng);
  ASSERT_EQ(placement.size(), 1000u);
  size_t total = 0;
  for (const auto& files : placement) {
    EXPECT_EQ(files.size(), 3u);
    std::set<FileId> unique(files.begin(), files.end());
    EXPECT_EQ(unique.size(), 3u);  // distinct per peer
    for (FileId f : files) EXPECT_LT(f, catalog_.num_files());
    total += files.size();
  }
  EXPECT_EQ(total, 3000u);
}

TEST_F(WorkloadFixture, PlacementLeavesSomeFilesUnhosted) {
  // 3000 file slots over 3000 files: ~1/e of files get no initial provider.
  // This is the structural success-rate ceiling discussed in EXPERIMENTS.md.
  Rng rng(21);
  const auto placement = AssignInitialFiles(1000, 3, catalog_, &rng);
  std::set<FileId> hosted;
  for (const auto& files : placement) hosted.insert(files.begin(), files.end());
  const double hosted_fraction =
      static_cast<double>(hosted.size()) / static_cast<double>(catalog_.num_files());
  EXPECT_NEAR(hosted_fraction, 1.0 - std::exp(-1.0), 0.05);
}

}  // namespace
}  // namespace locaware::catalog
