#include "catalog/file_catalog.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "catalog/keyword_pool.h"
#include "catalog/workload.h"
#include "common/keyword_set.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace locaware::catalog {
namespace {

TEST(KeywordPoolTest, GeneratesUniqueLowercaseWords) {
  Rng rng(1);
  KeywordPool pool(500, &rng);
  EXPECT_EQ(pool.size(), 500u);
  std::set<std::string> seen;
  for (const auto& w : pool.words()) {
    EXPECT_TRUE(seen.insert(w).second) << "duplicate " << w;
    EXPECT_GE(w.size(), 4u);
    EXPECT_LE(w.size(), 9u);
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(KeywordPoolTest, WordsSurviveTokenization) {
  // Keywords must be fixed points of the filename tokenizer.
  Rng rng(2);
  KeywordPool pool(100, &rng);
  for (const auto& w : pool.words()) {
    const auto tokens = TokenizeKeywords(w);
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_EQ(tokens[0], w);
  }
}

TEST(KeywordPoolTest, DeterministicForSeed) {
  Rng a(3), b(3);
  KeywordPool p1(50, &a), p2(50, &b);
  EXPECT_EQ(p1.words(), p2.words());
}

TEST(KeywordPoolTest, OutOfRangeAccessDies) {
  Rng rng(4);
  KeywordPool pool(10, &rng);
  EXPECT_DEATH(pool.word(10), "CHECK");
}

CatalogConfig PaperCatalog() {
  CatalogConfig cfg;
  cfg.num_files = 3000;
  cfg.keyword_pool_size = 9000;
  cfg.keywords_per_file = 3;
  return cfg;
}

TEST(FileCatalogTest, GeneratesPaperShape) {
  Rng rng(5);
  auto built = FileCatalog::Generate(PaperCatalog(), &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const FileCatalog& cat = built.ValueOrDie();
  EXPECT_EQ(cat.num_files(), 3000u);
  EXPECT_EQ(cat.keywords_per_file(), 3u);
  EXPECT_EQ(cat.num_keywords(), 9000u);
  for (FileId f = 0; f < 100; ++f) {
    EXPECT_EQ(cat.keywords(f).size(), 3u);
    // Tokenizing the filename must recover exactly the interned keyword ids,
    // in filename order.
    const auto tokens = TokenizeKeywords(cat.filename(f));
    ASSERT_EQ(tokens.size(), cat.keywords(f).size());
    for (size_t i = 0; i < tokens.size(); ++i) {
      EXPECT_EQ(cat.LookupKeyword(tokens[i]), cat.keywords(f)[i]);
      EXPECT_EQ(cat.keyword(cat.keywords(f)[i]), tokens[i]);
    }
    // sorted_keywords is the ascending permutation of keywords.
    auto sorted = cat.keywords(f);
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(cat.sorted_keywords(f), sorted);
  }
}

TEST(FileCatalogTest, KeywordTablesAreConsistent) {
  Rng rng(51);
  CatalogConfig cfg;
  cfg.num_files = 100;
  cfg.keyword_pool_size = 300;
  auto cat = std::move(FileCatalog::Generate(cfg, &rng)).ValueOrDie();
  for (KeywordId kw = 0; kw < cat.num_keywords(); ++kw) {
    EXPECT_EQ(cat.LookupKeyword(cat.keyword(kw)), kw);
    EXPECT_EQ(cat.KeywordWireBytes(kw), cat.keyword(kw).size());
  }
  EXPECT_EQ(cat.LookupKeyword("notaword"), kInvalidKeyword);
  for (FileId f = 0; f < cat.num_files(); ++f) {
    EXPECT_EQ(cat.FilenameWireBytes(f), cat.filename(f).size());
  }
}

TEST(FileCatalogTest, FilenamesAreUnique) {
  Rng rng(6);
  CatalogConfig cfg;
  cfg.num_files = 2000;
  cfg.keyword_pool_size = 300;  // force some collision pressure
  cfg.keywords_per_file = 2;
  auto cat = std::move(FileCatalog::Generate(cfg, &rng)).ValueOrDie();
  std::set<std::string> names;
  for (FileId f = 0; f < cat.num_files(); ++f) {
    EXPECT_TRUE(names.insert(cat.filename(f)).second) << cat.filename(f);
  }
}

TEST(FileCatalogTest, RejectsBadConfigs) {
  Rng rng(7);
  CatalogConfig cfg;
  cfg.num_files = 0;
  EXPECT_FALSE(FileCatalog::Generate(cfg, &rng).ok());

  cfg = CatalogConfig{};
  cfg.keywords_per_file = 0;
  EXPECT_FALSE(FileCatalog::Generate(cfg, &rng).ok());

  cfg = CatalogConfig{};
  cfg.keyword_pool_size = 2;
  cfg.keywords_per_file = 3;
  EXPECT_FALSE(FileCatalog::Generate(cfg, &rng).ok());
}

TEST(FileCatalogTest, MatchesImplementsContainment) {
  Rng rng(8);
  auto cat = std::move(FileCatalog::Generate(PaperCatalog(), &rng)).ValueOrDie();
  const auto& kws = cat.sorted_keywords(0);
  EXPECT_TRUE(cat.Matches(0, {kws[0]}));
  EXPECT_TRUE(cat.Matches(0, {kws[0], kws[2]}));
  EXPECT_TRUE(cat.Matches(0, kws));
  // A keyword of another file that file 0 does not carry breaks containment.
  KeywordId foreign = kInvalidKeyword;
  for (FileId f = 1; f < cat.num_files() && foreign == kInvalidKeyword; ++f) {
    for (KeywordId kw : cat.sorted_keywords(f)) {
      if (!ContainsAllIds(kws, std::span<const KeywordId>(&kw, 1))) {
        foreign = kw;
        break;
      }
    }
  }
  ASSERT_NE(foreign, kInvalidKeyword);
  std::vector<KeywordId> query{kws[0], foreign};
  std::sort(query.begin(), query.end());
  EXPECT_FALSE(cat.Matches(0, query));
}

TEST(FileCatalogTest, FindMatchesAgreesWithBruteForce) {
  Rng rng(9);
  CatalogConfig cfg;
  cfg.num_files = 400;
  cfg.keyword_pool_size = 120;  // dense keyword reuse -> multi-file matches
  cfg.keywords_per_file = 3;
  auto cat = std::move(FileCatalog::Generate(cfg, &rng)).ValueOrDie();

  for (FileId probe = 0; probe < 50; ++probe) {
    const std::vector<KeywordId> query{cat.keywords(probe)[0]};
    std::set<FileId> brute;
    for (FileId f = 0; f < cat.num_files(); ++f) {
      if (cat.Matches(f, query)) brute.insert(f);
    }
    const auto fast = cat.FindMatches(query);
    EXPECT_EQ(std::set<FileId>(fast.begin(), fast.end()), brute);
    EXPECT_TRUE(brute.contains(probe));
  }
}

TEST(FileCatalogTest, InternQueryKeywordsSortsAndRejectsUnknown) {
  Rng rng(10);
  auto cat = std::move(FileCatalog::Generate(PaperCatalog(), &rng)).ValueOrDie();
  EXPECT_TRUE(cat.FindMatches({}).empty());

  const auto& kws = cat.keywords(0);
  auto interned = cat.InternQueryKeywords(
      {cat.keyword(kws[2]), cat.keyword(kws[0]), cat.keyword(kws[2])});
  ASSERT_TRUE(interned.ok());
  // Sorted ascending, deduplicated.
  std::vector<KeywordId> expected{kws[0], kws[2]};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(interned.ValueOrDie(), expected);

  EXPECT_FALSE(cat.InternQueryKeywords({"zzzznotaword"}).ok());
  EXPECT_FALSE(cat.InternQueryKeywords({cat.keyword(kws[0]), "zzzznotaword"}).ok());
}

TEST(FileCatalogTest, LookupFilenameRoundTrip) {
  Rng rng(11);
  auto cat = std::move(FileCatalog::Generate(PaperCatalog(), &rng)).ValueOrDie();
  for (FileId f = 0; f < 100; ++f) {
    EXPECT_EQ(cat.LookupFilename(cat.filename(f)), f);
  }
  EXPECT_EQ(cat.LookupFilename("no such file"), FileCatalog::kInvalidFile);
}

// --- workload ---

class WorkloadFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(12);
    catalog_ = std::move(FileCatalog::Generate(PaperCatalog(), &rng)).ValueOrDie();
  }

  WorkloadConfig PaperWorkload(uint64_t n = 2000) {
    WorkloadConfig cfg;
    cfg.num_queries = n;
    return cfg;
  }

  FileCatalog catalog_;
};

TEST_F(WorkloadFixture, GeneratesRequestedCount) {
  Rng rng(13);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(), catalog_, 1000, &rng))
                .ValueOrDie();
  EXPECT_EQ(wl.queries().size(), 2000u);
}

TEST_F(WorkloadFixture, QueryKeywordsComeFromTargetFile) {
  Rng rng(14);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(), catalog_, 1000, &rng))
                .ValueOrDie();
  for (const QueryEvent& q : wl.queries()) {
    EXPECT_GE(q.keywords.size(), 1u);
    EXPECT_LE(q.keywords.size(), 3u);
    std::vector<KeywordId> sorted = q.keywords;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(catalog_.Matches(q.target, sorted))
        << "query " << q.id << " does not match its own target";
    EXPECT_LT(q.requester, 1000u);
  }
}

TEST_F(WorkloadFixture, SubmitTimesAreMonotoneAndPoissonish) {
  Rng rng(15);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(5000), catalog_, 1000, &rng))
                .ValueOrDie();
  const auto& qs = wl.queries();
  for (size_t i = 1; i < qs.size(); ++i) {
    EXPECT_GE(qs[i].submit_time, qs[i - 1].submit_time);
  }
  // Aggregate rate 0.83/s -> 5000 queries in ~6024 s (±15%).
  const double span_s = sim::ToSeconds(qs.back().submit_time);
  EXPECT_NEAR(span_s, 5000.0 / 0.83, 5000.0 / 0.83 * 0.15);
}

TEST_F(WorkloadFixture, PopularityIsZipfSkewed) {
  Rng rng(16);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(20000), catalog_, 1000, &rng))
                .ValueOrDie();
  std::map<FileId, int> counts;
  for (const QueryEvent& q : wl.queries()) ++counts[q.target];
  // The most popular file (rank 0) should dominate.
  const FileId top = wl.FileAtRank(0);
  int max_count = 0;
  for (const auto& [f, c] : counts) max_count = std::max(max_count, c);
  EXPECT_EQ(counts[top], max_count);
  // Zipf(1.0) over 3000 items: rank 0 carries ~1/ln(3000)/1 ≈ 11% of mass.
  EXPECT_GT(counts[top], 20000 * 0.05);
  // And a long tail exists: many files queried just a few times.
  int singletons = 0;
  for (const auto& [f, c] : counts) singletons += (c <= 2);
  EXPECT_GT(singletons, 100);
}

TEST_F(WorkloadFixture, RankOfFileInvertsFileAtRank) {
  Rng rng(25);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(100), catalog_, 100, &rng))
                .ValueOrDie();
  for (size_t rank = 0; rank < 50; ++rank) {
    EXPECT_EQ(wl.RankOfFile(wl.FileAtRank(rank)), rank);
  }
  EXPECT_EQ(wl.RankOfFile(static_cast<FileId>(catalog_.num_files() + 5)),
            QueryWorkload::kUnknownRank);
}

TEST_F(WorkloadFixture, LoadedTraceHasUnknownRanks) {
  Rng rng(26);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(50), catalog_, 50, &rng))
                .ValueOrDie();
  const std::string path = ::testing::TempDir() + "/locaware_rank_trace.txt";
  ASSERT_TRUE(wl.SaveTrace(path, catalog_).ok());
  auto loaded = std::move(QueryWorkload::LoadTrace(path, &catalog_)).ValueOrDie();
  EXPECT_EQ(loaded.RankOfFile(0), QueryWorkload::kUnknownRank);
  std::remove(path.c_str());
}

TEST_F(WorkloadFixture, DeterministicForSeed) {
  Rng r1(17), r2(17);
  auto w1 = std::move(QueryWorkload::Generate(PaperWorkload(500), catalog_, 100, &r1))
                .ValueOrDie();
  auto w2 = std::move(QueryWorkload::Generate(PaperWorkload(500), catalog_, 100, &r2))
                .ValueOrDie();
  for (size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(w1.queries()[i].requester, w2.queries()[i].requester);
    EXPECT_EQ(w1.queries()[i].target, w2.queries()[i].target);
    EXPECT_EQ(w1.queries()[i].submit_time, w2.queries()[i].submit_time);
    EXPECT_EQ(w1.queries()[i].keywords, w2.queries()[i].keywords);
  }
}

TEST_F(WorkloadFixture, RejectsBadConfigs) {
  Rng rng(18);
  EXPECT_FALSE(QueryWorkload::Generate(PaperWorkload(), catalog_, 0, &rng).ok());

  WorkloadConfig cfg = PaperWorkload();
  cfg.query_rate_per_peer_s = 0;
  EXPECT_FALSE(QueryWorkload::Generate(cfg, catalog_, 10, &rng).ok());

  cfg = PaperWorkload();
  cfg.min_query_keywords = 0;
  EXPECT_FALSE(QueryWorkload::Generate(cfg, catalog_, 10, &rng).ok());

  cfg = PaperWorkload();
  cfg.min_query_keywords = 3;
  cfg.max_query_keywords = 2;
  EXPECT_FALSE(QueryWorkload::Generate(cfg, catalog_, 10, &rng).ok());
}

TEST_F(WorkloadFixture, TraceSaveLoadRoundTrip) {
  Rng rng(19);
  auto wl = std::move(QueryWorkload::Generate(PaperWorkload(300), catalog_, 100, &rng))
                .ValueOrDie();
  const std::string path = ::testing::TempDir() + "/locaware_trace_test.txt";
  ASSERT_TRUE(wl.SaveTrace(path, catalog_).ok());

  auto loaded = QueryWorkload::LoadTrace(path, &catalog_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& a = wl.queries();
  const auto& b = loaded.ValueOrDie().queries();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].requester, b[i].requester);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].submit_time, b[i].submit_time);
    EXPECT_EQ(a[i].keywords, b[i].keywords);
  }
  std::remove(path.c_str());
}

TEST_F(WorkloadFixture, LoadTraceRejectsMissingAndMalformed) {
  EXPECT_FALSE(QueryWorkload::LoadTrace("/nonexistent/path/trace.txt", &catalog_).ok());

  const std::string path = ::testing::TempDir() + "/locaware_bad_trace.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1 2 3\n", f);  // too few fields
    std::fclose(f);
  }
  EXPECT_FALSE(QueryWorkload::LoadTrace(path, &catalog_).ok());

  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1 2 3 400\n", f);  // no keywords
    std::fclose(f);
  }
  EXPECT_FALSE(QueryWorkload::LoadTrace(path, &catalog_).ok());

  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    // A repeated keyword: ambiguous under set semantics, rejected loudly.
    const std::string word = catalog_.keyword(0);
    std::fprintf(f, "1 2 3 400 %s %s\n", word.c_str(), word.c_str());
    std::fclose(f);
  }
  EXPECT_FALSE(QueryWorkload::LoadTrace(path, &catalog_).ok());
  std::remove(path.c_str());
}

TEST_F(WorkloadFixture, LoadTraceInternsUnknownKeywords) {
  // A trace may query words no generated filename carries (e.g. searches for
  // nonexistent content, used to measure failure rates): the word is
  // interned at the edge and the query simply never matches anything.
  const std::string path = ::testing::TempDir() + "/locaware_unknown_kw_trace.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1 2 3 400 notacatalogword\n", f);
    std::fclose(f);
  }
  const size_t before = catalog_.num_keywords();
  auto loaded = QueryWorkload::LoadTrace(path, &catalog_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.ValueOrDie().queries().size(), 1u);
  const KeywordId minted = loaded.ValueOrDie().queries()[0].keywords[0];
  EXPECT_EQ(catalog_.num_keywords(), before + 1);
  EXPECT_EQ(minted, static_cast<KeywordId>(before));
  EXPECT_EQ(catalog_.keyword(minted), "notacatalogword");
  EXPECT_EQ(catalog_.LookupKeyword("notacatalogword"), minted);
  EXPECT_EQ(catalog_.KeywordWireBytes(minted), std::string("notacatalogword").size());
  EXPECT_TRUE(catalog_.FindMatches({minted}).empty());
  // Re-loading does not mint again.
  auto again = QueryWorkload::LoadTrace(path, &catalog_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(catalog_.num_keywords(), before + 1);
  std::remove(path.c_str());
}

TEST_F(WorkloadFixture, InitialPlacementShape) {
  Rng rng(20);
  const auto placement = AssignInitialFiles(1000, 3, catalog_, &rng);
  ASSERT_EQ(placement.size(), 1000u);
  size_t total = 0;
  for (const auto& files : placement) {
    EXPECT_EQ(files.size(), 3u);
    std::set<FileId> unique(files.begin(), files.end());
    EXPECT_EQ(unique.size(), 3u);  // distinct per peer
    for (FileId f : files) EXPECT_LT(f, catalog_.num_files());
    total += files.size();
  }
  EXPECT_EQ(total, 3000u);
}

TEST_F(WorkloadFixture, PlacementLeavesSomeFilesUnhosted) {
  // 3000 file slots over 3000 files: ~1/e of files get no initial provider.
  // This is the structural success-rate ceiling discussed in EXPERIMENTS.md.
  Rng rng(21);
  const auto placement = AssignInitialFiles(1000, 3, catalog_, &rng);
  std::set<FileId> hosted;
  for (const auto& files : placement) hosted.insert(files.begin(), files.end());
  const double hosted_fraction =
      static_cast<double>(hosted.size()) / static_cast<double>(catalog_.num_files());
  EXPECT_NEAR(hosted_fraction, 1.0 - std::exp(-1.0), 0.05);
}

}  // namespace
}  // namespace locaware::catalog
