// FlatMap/FlatSet: the open-addressing tables under the data plane's hot
// maps. The interesting transitions are growth rehashes (robin-hood
// displacement), backward-shift erasure (no tombstones to get wrong), the
// arena-provenance rules shared with SmallVector, and heterogeneous lookup
// for the catalog's string interning. The fuzz loops at the bottom mirror
// every operation against the std containers under ASan/UBSan in CI.
#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "common/small_vector.h"

namespace locaware {
namespace {

using Map = FlatMap<uint32_t, uint32_t>;

TEST(FlatMapTest, StartsEmptyWithNoBuffer) {
  Map m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.bucket_count(), 0u);  // no allocation until first insert
  EXPECT_FALSE(m.contains(7u));
  EXPECT_EQ(m.find(7u), m.end());
  EXPECT_EQ(m.begin(), m.end());
  EXPECT_EQ(m.erase(7u), 0u);
}

TEST(FlatMapTest, InsertFindEraseRoundTrip) {
  Map m;
  auto [it, inserted] = m.try_emplace(5, 50);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 5u);
  EXPECT_EQ(it->second, 50u);
  // Second try_emplace for the same key is a no-op that returns the entry.
  auto [it2, again] = m.try_emplace(5, 99);
  EXPECT_FALSE(again);
  EXPECT_EQ(it2->second, 50u);
  EXPECT_EQ(m.size(), 1u);

  m[6] = 60;  // operator[] default-constructs then assigns
  EXPECT_EQ(m.at(6u), 60u);
  m.insert_or_assign(5, 55u);
  EXPECT_EQ(m.at(5u), 55u);

  EXPECT_EQ(m.erase(5u), 1u);
  EXPECT_EQ(m.erase(5u), 0u);
  EXPECT_FALSE(m.contains(5u));
  EXPECT_TRUE(m.contains(6u));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, GrowthRehashKeepsEveryElement) {
  Map m;
  constexpr uint32_t kN = 10000;  // forces ~11 doublings from cold
  for (uint32_t i = 0; i < kN; ++i) m.try_emplace(i * 7919, i);
  EXPECT_EQ(m.size(), kN);
  for (uint32_t i = 0; i < kN; ++i) {
    auto it = m.find(i * 7919);
    ASSERT_NE(it, m.end()) << i;
    EXPECT_EQ(it->second, i);
  }
  // Load factor bound: never above 3/4.
  EXPECT_GE(m.bucket_count() * 3, m.size() * 4 / 1);
}

TEST(FlatMapTest, ReservePreSizesSoInsertsNeverRehash) {
  Map m;
  m.reserve(100);
  const size_t cap = m.bucket_count();
  EXPECT_GE(cap * 3, 100u * 4);  // holds 100 under 3/4 load
  for (uint32_t i = 0; i < 100; ++i) m.try_emplace(i, i);
  EXPECT_EQ(m.bucket_count(), cap);  // no growth happened
}

TEST(FlatMapTest, ClearKeepsBufferAndArrivesEmpty) {
  Map m;
  for (uint32_t i = 0; i < 50; ++i) m.try_emplace(i, i);
  const size_t cap = m.bucket_count();
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.bucket_count(), cap);  // buffer retained for refill
  for (uint32_t i = 0; i < 50; ++i) EXPECT_FALSE(m.contains(i));
  m.try_emplace(3, 33);
  EXPECT_EQ(m.at(3u), 33u);
}

TEST(FlatMapTest, BackwardShiftEraseClosesProbeChains) {
  // Dense small table: plenty of displaced entries, so erasing in arbitrary
  // order exercises the backward shift. Every survivor must stay findable
  // after every single erase.
  Map m;
  std::vector<uint32_t> keys;
  for (uint32_t i = 0; i < 96; ++i) keys.push_back(i * 2654435761u % 1000);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (uint32_t k : keys) m.try_emplace(k, k + 1);

  std::mt19937 rng(7);
  std::shuffle(keys.begin(), keys.end(), rng);
  while (!keys.empty()) {
    const uint32_t victim = keys.back();
    keys.pop_back();
    ASSERT_EQ(m.erase(victim), 1u);
    for (uint32_t k : keys) {
      auto it = m.find(k);
      ASSERT_NE(it, m.end()) << "lost " << k << " after erasing " << victim;
      ASSERT_EQ(it->second, k + 1);
    }
    ASSERT_EQ(m.size(), keys.size());
  }
}

TEST(FlatMapTest, IterationVisitsEachElementOnce) {
  Map m;
  for (uint32_t i = 0; i < 300; ++i) m.try_emplace(i, i * 10);
  std::vector<uint32_t> seen;
  for (const auto& [k, v] : m) {  // structured bindings over Slot
    EXPECT_EQ(v, k * 10);
    seen.push_back(k);
  }
  // Table order is arbitrary — the collect-and-sort rule applies to us too.
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 300u);
  for (uint32_t i = 0; i < 300; ++i) EXPECT_EQ(seen[i], i);
}

TEST(FlatMapTest, EraseByIteratorRemovesThePointee) {
  Map m;
  for (uint32_t i = 0; i < 20; ++i) m.try_emplace(i, i);
  auto it = m.find(11u);
  ASSERT_NE(it, m.end());
  m.erase(it);  // invalidates iterators; we only re-query below
  EXPECT_FALSE(m.contains(11u));
  EXPECT_EQ(m.size(), 19u);
}

TEST(FlatMapTest, NonTriviallyCopyableValues) {
  // The real payloads: SmallVector values (response-index postings) and
  // strings. Growth and displacement must move them, not bit-copy them.
  FlatMap<uint32_t, SmallVector<uint32_t, 2>> m;
  for (uint32_t i = 0; i < 200; ++i) {
    auto [it, inserted] = m.try_emplace(i);
    ASSERT_TRUE(inserted);
    for (uint32_t j = 0; j <= i % 5; ++j) it->second.push_back(i + j);
  }
  for (uint32_t i = 0; i < 200; ++i) {
    auto it = m.find(i);
    ASSERT_NE(it, m.end());
    ASSERT_EQ(it->second.size(), i % 5 + 1);
    EXPECT_EQ(it->second[0], i);
  }

  FlatMap<uint32_t, std::string> s;
  for (uint32_t i = 0; i < 100; ++i) {
    s.try_emplace(i, std::string(i % 40 + 1, 'x'));  // mix SSO and heap strings
  }
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(s.at(i).size(), i % 40 + 1);
  EXPECT_EQ(s.erase(50u), 1u);
  EXPECT_EQ(s.size(), 99u);
}

TEST(FlatMapTest, HeterogeneousStringLookup) {
  // The catalog's interning tables: string_view keys (viewing stable catalog
  // storage), probed with whatever string type the caller holds — no
  // temporary key conversions.
  static constexpr std::string_view kNames[] = {"alpha", "beta", "gamma"};
  FlatMap<std::string_view, uint32_t> m;
  for (uint32_t i = 0; i < 3; ++i) m.try_emplace(kNames[i], i);
  EXPECT_EQ(m.at(std::string("beta")), 1u);           // std::string probe
  EXPECT_EQ(m.at(std::string_view("gamma")), 2u);     // view probe
  EXPECT_TRUE(m.contains(std::string("alpha")));
  EXPECT_FALSE(m.contains(std::string("delta")));
}

TEST(FlatMapTest, CopySemanticsAndIndependence) {
  Map a;
  for (uint32_t i = 0; i < 40; ++i) a.try_emplace(i, i);
  Map b = a;
  EXPECT_EQ(b.size(), 40u);
  b.erase(7u);
  b.insert_or_assign(3, 999u);
  EXPECT_TRUE(a.contains(7u));  // deep copy: a unaffected
  EXPECT_EQ(a.at(3u), 3u);
  Map c;
  c.try_emplace(1000, 1);
  c = a;
  EXPECT_EQ(c.size(), 40u);
  EXPECT_FALSE(c.contains(1000u));
}

TEST(FlatMapTest, MoveStealsBufferAndSourceStaysUsable) {
  Map a;
  for (uint32_t i = 0; i < 40; ++i) a.try_emplace(i, i);
  const size_t cap = a.bucket_count();
  Map b = std::move(a);
  EXPECT_EQ(b.size(), 40u);
  EXPECT_EQ(b.bucket_count(), cap);
  EXPECT_EQ(a.size(), 0u);  // moved-from: empty but valid
  a.try_emplace(5, 55);
  EXPECT_EQ(a.at(5u), 55u);
  EXPECT_EQ(b.at(5u), 5u);
}

// --- arena provenance (the SmallVector contract, applied to tables) --------

TEST(FlatMapArenaTest, BufferComesFromBoundArena) {
  common::Arena arena;
  Map m;
  m.set_arena(&arena);
  EXPECT_EQ(m.arena(), &arena);
  for (uint32_t i = 0; i < 100; ++i) m.try_emplace(i, i);
  EXPECT_GT(arena.bytes_allocated(), 0u);  // growth drew from the arena
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(m.at(i), i);
}

TEST(FlatMapArenaTest, SetArenaMigratesAnExistingBuffer) {
  common::Arena arena;
  Map m;
  for (uint32_t i = 0; i < 100; ++i) m.try_emplace(i, i);  // heap buffer
  const size_t heap_cap = m.bucket_count();
  m.set_arena(&arena);  // must migrate, not just rebind
  EXPECT_GT(arena.bytes_allocated(), 0u);
  EXPECT_EQ(m.bucket_count(), heap_cap);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(m.at(i), i);
  // And back: the arena buffer is released to the arena, not the heap.
  const size_t arena_bytes = arena.bytes_allocated();
  m.set_arena(nullptr);
  EXPECT_EQ(arena.bytes_allocated(), arena_bytes);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_EQ(m.at(i), i);
}

TEST(FlatMapArenaTest, MoveCarriesArenaWithBuffer) {
  common::Arena arena;
  Map a;
  a.set_arena(&arena);
  for (uint32_t i = 0; i < 50; ++i) a.try_emplace(i, i);
  Map b = std::move(a);
  EXPECT_EQ(b.arena(), &arena);  // provenance travels with the buffer
  EXPECT_EQ(a.arena(), &arena);  // source keeps its binding for reuse
  for (uint32_t i = 50; i < 200; ++i) b.try_emplace(i, i);  // growth via arena
  for (uint32_t i = 0; i < 200; ++i) EXPECT_EQ(b.at(i), i);
}

TEST(FlatMapArenaTest, CopyKeepsDestinationArena) {
  common::Arena arena;
  Map a;
  a.set_arena(&arena);
  for (uint32_t i = 0; i < 50; ++i) a.try_emplace(i, i);
  Map b = a;                     // b has no arena: its copy is heap-backed
  EXPECT_EQ(b.arena(), nullptr);
  common::Arena other;  // declared before c: the arena must outlive the map
  Map c;
  c.set_arena(&other);
  c = a;                         // c keeps its own arena
  EXPECT_EQ(c.arena(), &other);
  EXPECT_GT(other.bytes_allocated(), 0u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(b.at(i), i);
    EXPECT_EQ(c.at(i), i);
  }
}

TEST(FlatMapArenaTest, ArenaRecyclesDiscardedBuffersAcrossGrowth) {
  // Growth frees the old (power-of-two-sized) buffer into the arena's class
  // free lists; a second table growing through the same sizes reuses them.
  common::Arena arena;
  {
    Map m;
    m.set_arena(&arena);
    for (uint32_t i = 0; i < 500; ++i) m.try_emplace(i, i);
  }  // destructor returns the final buffer too
  Map m2;
  m2.set_arena(&arena);
  for (uint32_t i = 0; i < 500; ++i) m2.try_emplace(i, i);
  EXPECT_GT(arena.freelist_hits(), 0u);
}

// --- FlatSet ----------------------------------------------------------------

TEST(FlatSetTest, InsertContainsEraseRoundTrip) {
  FlatSet<uint64_t> s;
  EXPECT_TRUE(s.empty());
  auto [it, inserted] = s.insert(42);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*it, 42u);
  EXPECT_FALSE(s.insert(42).second);  // duplicate
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(42u));
  EXPECT_EQ(s.erase(42u), 1u);
  EXPECT_EQ(s.erase(42u), 0u);
  EXPECT_FALSE(s.contains(42u));
}

TEST(FlatSetTest, GrowthAndIteration) {
  FlatSet<uint64_t> s;
  for (uint64_t i = 0; i < 2000; ++i) s.insert(i * 31 + 7);
  EXPECT_EQ(s.size(), 2000u);
  std::vector<uint64_t> seen(s.begin(), s.end());
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 2000u);
  for (uint64_t i = 0; i < 2000; ++i) EXPECT_EQ(seen[i], i * 31 + 7);
}

TEST(FlatSetTest, ArenaBindingMatchesMapContract) {
  common::Arena arena;
  FlatSet<uint32_t> s;
  s.set_arena(&arena);
  for (uint32_t i = 0; i < 300; ++i) s.insert(i);
  EXPECT_GT(arena.bytes_allocated(), 0u);
  for (uint32_t i = 0; i < 300; ++i) EXPECT_TRUE(s.contains(i));
}

// --- fuzz: mirror against the std containers --------------------------------
//
// Same shape as the SmallVector fuzz loop: a seeded op stream applied to the
// flat container and its std reference in lockstep, with full-state
// comparison after every op. CI runs this under ASan/UBSan, which is what
// makes the relocation paths (growth, displacement, backward shift)
// trustworthy rather than merely plausible.

TEST(FlatMapFuzzTest, MirrorsUnorderedMapUnderRandomOps) {
  std::mt19937 rng(0x10caed5e);
  common::Arena arena;
  FlatMap<uint32_t, uint64_t> flat;
  std::unordered_map<uint32_t, uint64_t> ref;
  // Small key space so erase/overwrite/probe-chain cases fire constantly.
  auto key = [&] { return static_cast<uint32_t>(rng() % 257); };
  for (int op = 0; op < 60000; ++op) {
    switch (rng() % 10) {
      case 0:
      case 1:
      case 2: {  // try_emplace
        const uint32_t k = key();
        const uint64_t v = rng();
        const bool inserted = flat.try_emplace(k, v).second;
        EXPECT_EQ(inserted, ref.try_emplace(k, v).second);
        break;
      }
      case 3: {  // insert_or_assign
        const uint32_t k = key();
        const uint64_t v = rng();
        flat.insert_or_assign(k, v);
        ref.insert_or_assign(k, v);
        break;
      }
      case 4:
      case 5: {  // erase by key
        const uint32_t k = key();
        EXPECT_EQ(flat.erase(k), ref.erase(k));
        break;
      }
      case 6: {  // lookup
        const uint32_t k = key();
        auto fit = flat.find(k);
        auto rit = ref.find(k);
        ASSERT_EQ(fit == flat.end(), rit == ref.end());
        if (rit != ref.end()) {
          ASSERT_EQ(fit->second, rit->second);
        }
        break;
      }
      case 7: {  // rare: clear, copy round-trip, or arena flip
        const auto roll = rng() % 20;
        if (roll == 0) {
          flat.clear();
          ref.clear();
        } else if (roll == 1) {
          FlatMap<uint32_t, uint64_t> copy = flat;  // copy, then move back
          flat = std::move(copy);
        } else if (roll == 2) {
          flat.set_arena(flat.arena() ? nullptr : &arena);
        }
        break;
      }
      default: {  // operator[] increment
        const uint32_t k = key();
        flat[k] += 3;
        ref[k] += 3;
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Final full-state check both directions.
  for (const auto& [k, v] : ref) {
    auto it = flat.find(k);
    ASSERT_NE(it, flat.end()) << k;
    ASSERT_EQ(it->second, v);
  }
  for (const auto& [k, v] : flat) {
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << k;
    ASSERT_EQ(it->second, v);
  }
}

TEST(FlatSetFuzzTest, MirrorsUnorderedSetUnderRandomOps) {
  std::mt19937 rng(0xf1a75e7);
  FlatSet<uint64_t> flat;
  std::unordered_set<uint64_t> ref;
  auto key = [&] { return static_cast<uint64_t>(rng() % 193); };
  for (int op = 0; op < 40000; ++op) {
    switch (rng() % 5) {
      case 0:
      case 1: {
        const uint64_t k = key();
        EXPECT_EQ(flat.insert(k).second, ref.insert(k).second);
        break;
      }
      case 2: {
        const uint64_t k = key();
        EXPECT_EQ(flat.erase(k), ref.erase(k));
        break;
      }
      case 3: {
        const uint64_t k = key();
        EXPECT_EQ(flat.contains(k), ref.contains(k));
        break;
      }
      default: {
        if (rng() % 25 == 0) {
          flat.clear();
          ref.clear();
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (uint64_t k : ref) ASSERT_TRUE(flat.contains(k));
  for (uint64_t k : flat) ASSERT_TRUE(ref.contains(k) != 0);
}

TEST(FlatMapFuzzTest, NonTrivialValuesUnderRandomOps) {
  // Same mirror, with a value type whose moves matter (heap strings).
  std::mt19937 rng(0xbeefcafe);
  FlatMap<uint32_t, std::string> flat;
  std::unordered_map<uint32_t, std::string> ref;
  auto key = [&] { return static_cast<uint32_t>(rng() % 101); };
  for (int op = 0; op < 20000; ++op) {
    switch (rng() % 4) {
      case 0:
      case 1: {
        const uint32_t k = key();
        std::string v(rng() % 50 + 1, static_cast<char>('a' + k % 26));
        flat.insert_or_assign(k, v);
        ref.insert_or_assign(k, std::move(v));
        break;
      }
      case 2: {
        const uint32_t k = key();
        EXPECT_EQ(flat.erase(k), ref.erase(k));
        break;
      }
      default: {
        const uint32_t k = key();
        auto fit = flat.find(k);
        auto rit = ref.find(k);
        ASSERT_EQ(fit == flat.end(), rit == ref.end());
        if (rit != ref.end()) {
          ASSERT_EQ(fit->second, rit->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  for (const auto& [k, v] : ref) ASSERT_EQ(flat.at(k), v);
}

}  // namespace
}  // namespace locaware
