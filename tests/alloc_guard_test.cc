// Allocation-regression guard for the event hot path (tier-1, own binary:
// the global operator-new override below must not leak into the main test
// suite).
//
// The zero-allocation-event-path lever (inline-storage event closures +
// SmallVector message payloads) is held in place by one number: heap
// allocations per executed event over a fixed, seeded workload. The guard
// runs the paper engine end to end, counts every operator-new between
// Engine::Run's first and last event, and fails when the ratio crosses a
// pinned bar.
//
// The bar is NOT zero: response construction and cache-evict reporting still
// return std::vectors, and flat-table growth allocates until the tables
// plateau. What the bars exclude is everything the levers removed — a malloc
// per scheduled event (std::function spill, PR 7), per short message list
// (std::vector payloads, PR 7), per hash-map node insert (flat tables) and
// per forward hop (pooled payloads instead of make_shared). Before the
// levers this workload measured ~5.6 allocs/event, then ~2.0 with node-based
// maps and shared_ptr payloads; a capture past kEventInlineBytes now fails
// to compile, so what the bars actually police is container/payload
// regressions — one new per-event heap allocation is a 15x jump that blows
// straight through either bar.
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/experiment.h"
#include "core/query_payload_pool.h"

// --- allocation accounting ---------------------------------------------------
// Binary-wide operator new/delete overrides. The counter is atomic (not
// thread_local): the guard also runs a sharded configuration whose worker
// threads allocate, and missing those would undercount.
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace locaware::core {
namespace {

/// The engine-test TinyConfig: 150 peers, 300 files, 200 queries — small
/// enough for a CI-cheap Debug/ASan run, large enough that the steady state
/// (forwarding, caching, responses) dominates setup by orders of magnitude.
ExperimentConfig GuardConfig(ProtocolKind kind, uint32_t shards) {
  ExperimentConfig cfg = MakePaperConfig(kind, /*num_queries=*/200, /*seed=*/7);
  cfg.num_peers = 150;
  cfg.underlay.num_routers = 40;
  cfg.catalog.num_files = 300;
  cfg.catalog.keyword_pool_size = 900;
  cfg.workload.query_rate_per_peer_s = 0.01;
  cfg.scheduler.shards = shards;
  return cfg;
}

/// Allocations per executed event across Engine::Run on `cfg`.
double AllocsPerEvent(const ExperimentConfig& cfg) {
  auto engine = std::move(Engine::Create(cfg)).ValueOrDie();
  const uint64_t allocs_before = g_alloc_count.load();
  engine->Run();
  const uint64_t allocs = g_alloc_count.load() - allocs_before;
  const uint64_t events = engine->simulator().executed_count();
  EXPECT_GT(events, 5000u) << "workload too small to be a meaningful guard";
  return static_cast<double>(allocs) / static_cast<double>(events);
}

// The pinned bars. Measured on this workload after the flat-table +
// payload-pool conversion: Dicas 0.060 (0.064 sharded), Locaware 0.144
// allocs/event — down from 1.97 / 2.15 / 1.90 with node-based hash maps and
// make_shared forward payloads. The numbers are run-to-run deterministic
// (the workload is seeded and the counter process-wide), so the ~0.3
// headroom is purely for allocator/library drift across toolchains; a
// single new per-event allocation overshoots it by 3x.
constexpr double kDicasBar = 0.4;
constexpr double kLocawareBar = 0.45;

TEST(AllocGuardTest, DicasSteadyStateStaysUnderBar) {
  const double per_event = AllocsPerEvent(GuardConfig(ProtocolKind::kDicas, 1));
  RecordProperty("allocs_per_event", std::to_string(per_event));
  EXPECT_LE(per_event, kDicasBar)
      << "event hot path regressed: " << per_event
      << " allocs/event (bar " << kDicasBar
      << ") — a new per-event heap allocation slipped in";
}

TEST(AllocGuardTest, LocawareSteadyStateStaysUnderBar) {
  // Locaware adds Bloom maintenance traffic (delta construction, filter
  // copies on OnNeighborUp) — the heaviest per-event protocol.
  const double per_event =
      AllocsPerEvent(GuardConfig(ProtocolKind::kLocaware, 1));
  RecordProperty("allocs_per_event", std::to_string(per_event));
  EXPECT_LE(per_event, kLocawareBar)
      << "event hot path regressed: " << per_event
      << " allocs/event (bar " << kLocawareBar << ")";
}

TEST(AllocGuardTest, PayloadPoolRecyclesToZeroNetAllocations) {
  // The payload pool's whole claim: after warmup, a forward hop's
  // acquire/copy/drop cycle touches the heap zero times — recycled nodes
  // reuse their message's SmallVector capacity. Counted directly, not via
  // the engine, so a regression names the pool and not the workload.
  QueryPayloadPool pool;
  overlay::QueryMessage src;
  src.qid = 1;
  src.origin = 7;
  src.keywords = {10, 20, 30};
  src.ttl = 5;
  { QueryPayloadRef warm = pool.Acquire(src); }  // first slab + msg buffers
  const uint64_t allocs_before = g_alloc_count.load();
  for (uint64_t i = 0; i < 10000; ++i) {
    QueryPayloadRef shared = pool.Acquire(src);
    shared.mutable_msg()->ttl -= 1;
    QueryPayloadRef a = shared;  // the per-target captures of a fan-out
    QueryPayloadRef b = shared;
    EXPECT_EQ(a->ttl, 4);
    EXPECT_EQ(b->qid, 1u);
  }
  const uint64_t allocs = g_alloc_count.load() - allocs_before;
  RecordProperty("pool_cycle_allocs", std::to_string(allocs));
  EXPECT_EQ(allocs, 0u)
      << "payload pool stopped recycling: " << allocs
      << " heap allocations across 10000 warm acquire/share/drop cycles";
}

TEST(AllocGuardTest, ShardedRunStaysUnderBar) {
  // The sharded scheduler's cross-shard mailboxes move events by relocation;
  // its steady state must meet the same bar (worker threads included — the
  // counter is process-wide).
  const double per_event = AllocsPerEvent(GuardConfig(ProtocolKind::kDicas, 4));
  RecordProperty("allocs_per_event", std::to_string(per_event));
  EXPECT_LE(per_event, kDicasBar)
      << "sharded event path regressed: " << per_event << " allocs/event (bar "
      << kDicasBar << ")";
}

}  // namespace
}  // namespace locaware::core
