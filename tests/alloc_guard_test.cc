// Allocation-regression guard for the event hot path (tier-1, own binary:
// the global operator-new override below must not leak into the main test
// suite).
//
// The zero-allocation-event-path lever (inline-storage event closures +
// SmallVector message payloads) is held in place by one number: heap
// allocations per executed event over a fixed, seeded workload. The guard
// runs the paper engine end to end, counts every operator-new between
// Engine::Run's first and last event, and fails when the ratio crosses a
// pinned bar.
//
// The bar is NOT zero: the steady state legitimately allocates for hash-map
// node inserts (seen_queries / reverse_path / touched bookkeeping) and the
// one shared QueryMessage copy a multi-target forward hop makes. What the
// bar excludes is what the lever removed — a malloc per scheduled event
// (std::function spill) and per short message list (std::vector payloads).
// Before the lever this workload measured ~5.6 allocs/event on every
// configuration below; a capture past kEventInlineBytes now fails to
// compile, so what the bars actually police is payload regressions — a new
// std::vector message field or per-event std::string lands here immediately
// (+1.0 or more per event blows straight through either bar).
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/experiment.h"

// --- allocation accounting ---------------------------------------------------
// Binary-wide operator new/delete overrides. The counter is atomic (not
// thread_local): the guard also runs a sharded configuration whose worker
// threads allocate, and missing those would undercount.
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace locaware::core {
namespace {

/// The engine-test TinyConfig: 150 peers, 300 files, 200 queries — small
/// enough for a CI-cheap Debug/ASan run, large enough that the steady state
/// (forwarding, caching, responses) dominates setup by orders of magnitude.
ExperimentConfig GuardConfig(ProtocolKind kind, uint32_t shards) {
  ExperimentConfig cfg = MakePaperConfig(kind, /*num_queries=*/200, /*seed=*/7);
  cfg.num_peers = 150;
  cfg.underlay.num_routers = 40;
  cfg.catalog.num_files = 300;
  cfg.catalog.keyword_pool_size = 900;
  cfg.workload.query_rate_per_peer_s = 0.01;
  cfg.scheduler.shards = shards;
  return cfg;
}

/// Allocations per executed event across Engine::Run on `cfg`.
double AllocsPerEvent(const ExperimentConfig& cfg) {
  auto engine = std::move(Engine::Create(cfg)).ValueOrDie();
  const uint64_t allocs_before = g_alloc_count.load();
  engine->Run();
  const uint64_t allocs = g_alloc_count.load() - allocs_before;
  const uint64_t events = engine->simulator().executed_count();
  EXPECT_GT(events, 5000u) << "workload too small to be a meaningful guard";
  return static_cast<double>(allocs) / static_cast<double>(events);
}

// The pinned bars. Measured on this workload after the inline-closure +
// SmallVector conversion: Dicas 1.97 (2.15 sharded), Locaware 1.90
// allocs/event — down from 5.58 / 5.60 / 5.71 with std::function events and
// std::vector payloads. The numbers are run-to-run deterministic (the
// workload is seeded and the counter process-wide), so the ~20% headroom is
// purely for allocator/library drift across toolchains.
constexpr double kDicasBar = 2.6;
constexpr double kLocawareBar = 2.4;

TEST(AllocGuardTest, DicasSteadyStateStaysUnderBar) {
  const double per_event = AllocsPerEvent(GuardConfig(ProtocolKind::kDicas, 1));
  RecordProperty("allocs_per_event", std::to_string(per_event));
  EXPECT_LE(per_event, kDicasBar)
      << "event hot path regressed: " << per_event
      << " allocs/event (bar " << kDicasBar
      << ") — a new per-event heap allocation slipped in";
}

TEST(AllocGuardTest, LocawareSteadyStateStaysUnderBar) {
  // Locaware adds Bloom maintenance traffic (delta construction, filter
  // copies on OnNeighborUp) — the heaviest per-event protocol.
  const double per_event =
      AllocsPerEvent(GuardConfig(ProtocolKind::kLocaware, 1));
  RecordProperty("allocs_per_event", std::to_string(per_event));
  EXPECT_LE(per_event, kLocawareBar)
      << "event hot path regressed: " << per_event
      << " allocs/event (bar " << kLocawareBar << ")";
}

TEST(AllocGuardTest, ShardedRunStaysUnderBar) {
  // The sharded scheduler's cross-shard mailboxes move events by relocation;
  // its steady state must meet the same bar (worker threads included — the
  // counter is process-wide).
  const double per_event = AllocsPerEvent(GuardConfig(ProtocolKind::kDicas, 4));
  RecordProperty("allocs_per_event", std::to_string(per_event));
  EXPECT_LE(per_event, kDicasBar)
      << "sharded event path regressed: " << per_event << " allocs/event (bar "
      << kDicasBar << ")";
}

}  // namespace
}  // namespace locaware::core
