#include "net/landmark.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/underlay.h"

namespace locaware::net {
namespace {

TEST(NumLocIdsTest, Factorials) {
  EXPECT_EQ(NumLocIds(0), 1u);
  EXPECT_EQ(NumLocIds(1), 1u);
  EXPECT_EQ(NumLocIds(2), 2u);
  EXPECT_EQ(NumLocIds(4), 24u);   // the paper's headline setting
  EXPECT_EQ(NumLocIds(5), 120u);  // the paper's "too scattered" setting
  EXPECT_EQ(NumLocIds(8), 40320u);
}

TEST(NumLocIdsTest, TooManyLandmarksDies) {
  EXPECT_DEATH(NumLocIds(9), "overflow");
}

TEST(LocIdCodecTest, RankOfIdentityIsZero) {
  EXPECT_EQ(LocIdCodec::PermutationRank({0, 1, 2, 3}), 0u);
}

TEST(LocIdCodecTest, RankOfReverseIsMax) {
  EXPECT_EQ(LocIdCodec::PermutationRank({3, 2, 1, 0}), 23u);
}

TEST(LocIdCodecTest, KnownLexicographicOrder) {
  // Lehmer ranking is lexicographic: 0123=0, 0132=1, 0213=2, ...
  EXPECT_EQ(LocIdCodec::PermutationRank({0, 1, 3, 2}), 1u);
  EXPECT_EQ(LocIdCodec::PermutationRank({0, 2, 1, 3}), 2u);
  EXPECT_EQ(LocIdCodec::PermutationRank({1, 0, 2, 3}), 6u);
}

TEST(LocIdCodecTest, RoundTripAllPermutationsOfFour) {
  for (uint32_t rank = 0; rank < 24; ++rank) {
    const auto perm = LocIdCodec::RankToPermutation(rank, 4);
    EXPECT_EQ(LocIdCodec::PermutationRank(perm), rank);
  }
}

TEST(LocIdCodecTest, RoundTripIsBijective) {
  std::set<std::vector<uint8_t>> perms;
  for (uint32_t rank = 0; rank < 120; ++rank) {
    perms.insert(LocIdCodec::RankToPermutation(rank, 5));
  }
  EXPECT_EQ(perms.size(), 120u);
}

TEST(LocIdCodecTest, RejectsNonPermutations) {
  EXPECT_DEATH(LocIdCodec::PermutationRank({0, 0, 1}), "duplicate");
  EXPECT_DEATH(LocIdCodec::PermutationRank({0, 3}), "out of range");
  EXPECT_DEATH(LocIdCodec::RankToPermutation(24, 4), "CHECK");
}

TEST(LocIdCodecTest, EmptyAndSingleton) {
  EXPECT_EQ(LocIdCodec::PermutationRank({}), 0u);
  EXPECT_EQ(LocIdCodec::PermutationRank({0}), 0u);
  EXPECT_EQ(LocIdCodec::RankToPermutation(0, 1), std::vector<uint8_t>{0});
}

class LocIdFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    GeometricUnderlayConfig cfg;
    cfg.num_routers = 100;
    cfg.num_peers = 1000;
    cfg.num_landmarks = 4;
    underlay_ = std::move(GeometricUnderlay::Build(cfg, &rng)).ValueOrDie();
  }

  std::unique_ptr<GeometricUnderlay> underlay_;
};

TEST_F(LocIdFixture, LocIdsAreWithinRange) {
  for (const LocId id : ComputeAllLocIds(*underlay_)) EXPECT_LT(id, 24u);
}

TEST_F(LocIdFixture, SameRouterPeersShareLocId) {
  // Peers on the same router have identical landmark paths up to access
  // latency, so their RTT *ordering* (hence locId) must agree.
  const auto ids = ComputeAllLocIds(*underlay_);
  int pairs = 0;
  for (PeerId a = 0; a < 200 && pairs < 10; ++a) {
    for (PeerId b = a + 1; b < 200; ++b) {
      if (underlay_->peer_router(a) == underlay_->peer_router(b)) {
        EXPECT_EQ(ids[a], ids[b]) << "peers " << a << "," << b;
        ++pairs;
        break;
      }
    }
  }
  EXPECT_GT(pairs, 0);
}

TEST_F(LocIdFixture, PopulationMatchesPaperExpectation) {
  // Paper §5.1: with 4 landmarks over 1000 peers, localities hold tens of
  // peers each (vs ~8 at 5 landmarks), making same-locId providers findable.
  const auto ids = ComputeAllLocIds(*underlay_);
  const LocIdStats stats = AnalyzeLocIds(ids, 4);
  EXPECT_EQ(stats.num_possible, 24u);
  EXPECT_GT(stats.num_inhabited, 2u);
  EXPECT_GT(stats.mean_peers_per_inhabited, 10.0);
  EXPECT_LE(stats.num_inhabited, 24u);
}

TEST_F(LocIdFixture, DeterministicAssignment) {
  const auto a = ComputeAllLocIds(*underlay_);
  const auto b = ComputeAllLocIds(*underlay_);
  EXPECT_EQ(a, b);
}

TEST(LocIdUniformTest, UniformUnderlayScattersLocIds) {
  // With i.i.d. landmark RTTs every ordering is equally likely: all 24 locIds
  // should be inhabited for 1000 peers (coupon collector argument).
  Rng rng(123);
  UniformUnderlayConfig cfg;
  cfg.num_peers = 1000;
  cfg.num_landmarks = 4;
  auto u = std::move(UniformUnderlay::Build(cfg, &rng)).ValueOrDie();
  const LocIdStats stats = AnalyzeLocIds(ComputeAllLocIds(*u), 4);
  EXPECT_EQ(stats.num_inhabited, 24u);
  EXPECT_NEAR(stats.mean_peers_per_inhabited, 1000.0 / 24.0, 15.0);
}

TEST(AnalyzeLocIdsTest, HandlesEmptyAndUniformInputs) {
  const LocIdStats empty = AnalyzeLocIds({}, 4);
  EXPECT_EQ(empty.num_inhabited, 0u);
  EXPECT_EQ(empty.mean_peers_per_inhabited, 0.0);

  const LocIdStats uniform = AnalyzeLocIds({5, 5, 5, 5}, 4);
  EXPECT_EQ(uniform.num_inhabited, 1u);
  EXPECT_EQ(uniform.max_peers, 4u);
  EXPECT_EQ(uniform.mean_peers_per_inhabited, 4.0);
}

class LandmarkCountTest : public ::testing::TestWithParam<size_t> {};

/// Property (paper §5.1 rationale): more landmarks inflate the locId space
/// faster than peers can populate it — mean peers per inhabited locId shrinks.
TEST_P(LandmarkCountTest, MoreLandmarksScatterPeers) {
  const size_t k = GetParam();
  Rng rng(7);
  GeometricUnderlayConfig cfg;
  cfg.num_routers = 150;
  cfg.num_peers = 1000;
  cfg.num_landmarks = k;
  auto u = std::move(GeometricUnderlay::Build(cfg, &rng)).ValueOrDie();
  const LocIdStats stats = AnalyzeLocIds(ComputeAllLocIds(*u), k);
  EXPECT_EQ(stats.num_possible, NumLocIds(k));
  EXPECT_GE(stats.mean_peers_per_inhabited, 1.0);
  // Sanity rather than strict monotonicity (single topology draw): the
  // inhabited count never exceeds the possible count.
  EXPECT_LE(stats.num_inhabited, stats.num_possible);
}

INSTANTIATE_TEST_SUITE_P(Counts, LandmarkCountTest, ::testing::Values(2, 3, 4, 5, 6));

}  // namespace
}  // namespace locaware::net
