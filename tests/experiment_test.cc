// End-to-end shape tests: scaled-down versions of the paper's three figures.
// These assert the *qualitative* results (who wins, roughly by how much), not
// absolute numbers — the same standard EXPERIMENTS.md applies to the full
// benches.
#include "core/experiment.h"

#include <future>

#include <gtest/gtest.h>

namespace locaware::core {
namespace {

ExperimentConfig ShapeConfig(ProtocolKind kind, uint64_t seed = 11) {
  // Small but not tiny: enough queries for caches to warm up and the Zipf
  // head to repeat often (Locaware's mechanisms compound with query volume).
  ExperimentConfig cfg = MakePaperConfig(kind, /*num_queries=*/1500, seed);
  cfg.num_peers = 250;
  cfg.underlay.num_routers = 60;
  cfg.catalog.num_files = 600;
  cfg.catalog.keyword_pool_size = 1800;
  cfg.workload.query_rate_per_peer_s = 0.01;
  return cfg;
}

class ShapeFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    for (ProtocolKind kind :
         {ProtocolKind::kFlooding, ProtocolKind::kDicas, ProtocolKind::kDicasKeys,
          ProtocolKind::kLocaware}) {
      results_[static_cast<int>(kind)] =
          std::move(RunExperiment(ShapeConfig(kind), /*num_buckets=*/6)).ValueOrDie();
    }
  }

  static const ExperimentResult& Of(ProtocolKind kind) {
    return results_[static_cast<int>(kind)];
  }

  static ExperimentResult results_[4];
};

ExperimentResult ShapeFixture::results_[4];

TEST_F(ShapeFixture, Fig3Shape_CachingSlashesSearchTraffic) {
  const double flooding = Of(ProtocolKind::kFlooding).summary.msgs_per_query;
  const double locaware = Of(ProtocolKind::kLocaware).summary.msgs_per_query;
  const double dicas = Of(ProtocolKind::kDicas).summary.msgs_per_query;
  // Paper: "outperforms flooding by 98%". At this scale we require >= 90%.
  EXPECT_LT(locaware, flooding * 0.10);
  EXPECT_LT(dicas, flooding * 0.10);
}

TEST_F(ShapeFixture, Fig4Shape_FloodingHasBestSuccessRate) {
  const double flooding = Of(ProtocolKind::kFlooding).summary.success_rate;
  for (ProtocolKind kind :
       {ProtocolKind::kDicas, ProtocolKind::kDicasKeys, ProtocolKind::kLocaware}) {
    EXPECT_GE(flooding, Of(kind).summary.success_rate)
        << ProtocolKindName(kind);
  }
  EXPECT_GT(flooding, 0.4);
}

TEST_F(ShapeFixture, Fig4Shape_LocawareBeatsDicasVariants) {
  // At this compressed scale success rates sit near the placement ceiling and
  // protocol gaps shrink; require a strict win over Dicas and near-parity
  // with Dicas-Keys. The strict paper-scale ordering is asserted in
  // Fig4Shape_PaperScaleOrdering below (and by bench/fig4_success_rate).
  const double locaware = Of(ProtocolKind::kLocaware).summary.success_rate;
  EXPECT_GT(locaware, Of(ProtocolKind::kDicas).summary.success_rate);
  EXPECT_GT(locaware, Of(ProtocolKind::kDicasKeys).summary.success_rate * 0.9);
}

TEST(PaperScaleTest, Fig4Shape_PaperScaleOrdering) {
  // Full §5.1 scale (flooding excluded — it is covered by ShapeFixture and
  // would dominate the runtime). Locaware must beat both Dicas variants.
  auto run = [](ProtocolKind kind) {
    return std::async(std::launch::async, [kind] {
      return std::move(
                 RunExperiment(MakePaperConfig(kind, /*num_queries=*/6000, 42), 4))
          .ValueOrDie();
    });
  };
  auto dicas_f = run(ProtocolKind::kDicas);
  auto keys_f = run(ProtocolKind::kDicasKeys);
  auto locaware_f = run(ProtocolKind::kLocaware);
  const double dicas = dicas_f.get().summary.success_rate;
  const double keys = keys_f.get().summary.success_rate;
  const auto locaware = locaware_f.get();
  EXPECT_GT(locaware.summary.success_rate, dicas);
  EXPECT_GT(locaware.summary.success_rate, keys);
  // Paper: +23% over Dicas; accept a generous band around it.
  EXPECT_GT(locaware.summary.success_rate / dicas, 1.05);
}

TEST_F(ShapeFixture, Fig2Shape_LocawareDownloadsCloser) {
  const double locaware = Of(ProtocolKind::kLocaware).summary.avg_download_ms;
  const double flooding = Of(ProtocolKind::kFlooding).summary.avg_download_ms;
  ASSERT_GT(locaware, 0.0);
  ASSERT_GT(flooding, 0.0);
  // Paper: ~14% closer; require any strict improvement at this small scale.
  EXPECT_LT(locaware, flooding);
}

TEST_F(ShapeFixture, Fig2Shape_LocawareFindsSameLocalityProviders) {
  EXPECT_GT(Of(ProtocolKind::kLocaware).summary.loc_match_rate,
            Of(ProtocolKind::kFlooding).summary.loc_match_rate);
}

TEST_F(ShapeFixture, LocawareAnswersFromCaches) {
  EXPECT_GT(Of(ProtocolKind::kLocaware).summary.cache_answer_share, 0.05);
  EXPECT_EQ(Of(ProtocolKind::kFlooding).summary.cache_answer_share, 0.0);
}

TEST_F(ShapeFixture, SeriesHaveRequestedResolution) {
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(results_[k].series.size(), 6u);
    EXPECT_EQ(results_[k].series.back().queries_end, 1500u);
  }
}

TEST(RunExperimentTest, PropagatesCreationErrors) {
  ExperimentConfig cfg = ShapeConfig(ProtocolKind::kLocaware);
  cfg.num_landmarks = 0;
  EXPECT_FALSE(RunExperiment(cfg).ok());
}

TEST(RunExperimentTest, LabelDefaultsToProtocolName) {
  ExperimentConfig cfg = ShapeConfig(ProtocolKind::kDicas);
  cfg.label.clear();
  cfg.workload.num_queries = 50;
  auto result = std::move(RunExperiment(cfg, 2)).ValueOrDie();
  EXPECT_EQ(result.label, "Dicas");
}

TEST(RunExperimentTest, CustomLabelIsKept) {
  ExperimentConfig cfg = ShapeConfig(ProtocolKind::kDicas);
  cfg.label = "Dicas-M8";
  cfg.workload.num_queries = 50;
  auto result = std::move(RunExperiment(cfg, 2)).ValueOrDie();
  EXPECT_EQ(result.label, "Dicas-M8");
}

TEST(MakePaperConfigTest, MatchesSection51) {
  const ExperimentConfig cfg = MakePaperConfig(ProtocolKind::kLocaware);
  EXPECT_EQ(cfg.num_peers, 1000u);
  EXPECT_EQ(cfg.avg_degree, 3.0);
  EXPECT_EQ(cfg.num_landmarks, 4u);
  EXPECT_EQ(cfg.files_per_peer, 3u);
  EXPECT_EQ(cfg.catalog.num_files, 3000u);
  EXPECT_EQ(cfg.catalog.keyword_pool_size, 9000u);
  EXPECT_EQ(cfg.catalog.keywords_per_file, 3u);
  EXPECT_EQ(cfg.workload.query_rate_per_peer_s, 0.00083);
  EXPECT_EQ(cfg.params.ttl, 7u);
  EXPECT_EQ(cfg.params.bloom_bits, 1200u);
  EXPECT_EQ(cfg.underlay.min_rtt_ms, 10.0);
  EXPECT_EQ(cfg.underlay.max_rtt_ms, 500.0);
  EXPECT_EQ(cfg.params.ri.max_filenames, 50u);
  EXPECT_EQ(cfg.params.ri.max_providers_per_file, 8u);
}

TEST(MakePaperConfigTest, DicasKeepsSingleProvider) {
  EXPECT_EQ(MakePaperConfig(ProtocolKind::kDicas).params.ri.max_providers_per_file, 1u);
  EXPECT_EQ(MakePaperConfig(ProtocolKind::kDicasKeys).params.ri.max_providers_per_file,
            1u);
}

}  // namespace
}  // namespace locaware::core
