// SmallVector: the inline-until-N storage under the response index's
// keyword/provider/posting lists. The interesting transitions are the
// inline->heap spill (and that everything survives it) and move semantics
// in both storage states.
#include "common/small_vector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace locaware {
namespace {

using Vec = SmallVector<uint32_t, 4>;

TEST(SmallVectorTest, StaysInlineUpToCapacityThenSpills) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_inline());
  for (uint32_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);  // spill
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, InsertAtFrontAndBoundedPopModelProviderLists) {
  // The response index's provider discipline: insert most-recent first, pop
  // the oldest past the cap — all inside the inline slots.
  Vec v;
  for (uint32_t i = 0; i < 4; ++i) {
    v.insert(v.begin(), i);
    if (v.size() > 3) v.pop_back();
  }
  EXPECT_TRUE(v.is_inline());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 3u);
  EXPECT_EQ(v[1], 2u);
  EXPECT_EQ(v[2], 1u);
}

TEST(SmallVectorTest, InsertInMiddleAcrossSpillKeepsOrder) {
  Vec v{0, 1, 3, 4};
  v.insert(v.begin() + 2, 2);  // insertion is itself the spill trigger
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(SmallVectorTest, SelfReferencingPushAndInsertAreSafe) {
  // std::vector guarantees v.push_back(v[0]) works; so do we — the value is
  // copied out before growth frees the buffer or the tail shift overwrites
  // its slot.
  Vec v{1, 2, 3, 4};  // full inline: the push below is the spill itself
  v.push_back(v[0]);
  EXPECT_EQ(v, (std::vector<uint32_t>{1, 2, 3, 4, 1}));
  v.insert(v.begin(), v[2]);  // aliases a slot the memmove shifts
  EXPECT_EQ(v, (std::vector<uint32_t>{3, 1, 2, 3, 4, 1}));
  v.push_back(v.back());  // heap-state growth path
  EXPECT_EQ(v.back(), 1u);
}

TEST(SmallVectorTest, EraseSingleAndRange) {
  Vec v{1, 2, 3, 4};
  auto it = v.erase(v.begin() + 1);
  EXPECT_EQ(*it, 3u);
  EXPECT_EQ(v, (std::vector<uint32_t>{1, 3, 4}));
  v.erase(v.begin(), v.begin() + 2);
  EXPECT_EQ(v, (std::vector<uint32_t>{4}));
  v.erase(v.begin());
  EXPECT_TRUE(v.empty());
}

TEST(SmallVectorTest, MoveStealsHeapAndCopiesInline) {
  Vec inline_src{1, 2};
  Vec from_inline = std::move(inline_src);
  EXPECT_TRUE(from_inline.is_inline());
  EXPECT_EQ(from_inline, (std::vector<uint32_t>{1, 2}));
  EXPECT_TRUE(inline_src.empty());

  Vec heap_src{1, 2, 3, 4, 5, 6};
  ASSERT_FALSE(heap_src.is_inline());
  const uint32_t* heap_data = heap_src.data();
  Vec from_heap = std::move(heap_src);
  EXPECT_EQ(from_heap.data(), heap_data);  // buffer stolen, not copied
  EXPECT_EQ(from_heap, (std::vector<uint32_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_TRUE(heap_src.empty());
  EXPECT_TRUE(heap_src.is_inline());  // reusable after the steal
  heap_src.push_back(9);
  EXPECT_EQ(heap_src, (std::vector<uint32_t>{9}));
}

TEST(SmallVectorTest, CopyAndAssignAcrossStorageStates) {
  Vec small{1, 2};
  Vec big{1, 2, 3, 4, 5};
  Vec copy = big;
  EXPECT_EQ(copy, big);
  copy = small;  // shrink a heap vector back to inline contents
  EXPECT_EQ(copy, small);
  Vec grown = small;
  grown = big;
  EXPECT_EQ(grown, big);
}

TEST(SmallVectorTest, ComparesAgainstStdVector) {
  Vec v{1, 2, 3};
  EXPECT_TRUE(v == (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE((std::vector<uint32_t>{1, 2, 3}) == v);
  EXPECT_FALSE(v == (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(v.ToVector(), (std::vector<uint32_t>{1, 2, 3}));
}

}  // namespace
}  // namespace locaware
