// SmallVector: the inline-until-N storage under the response index's
// keyword/provider/posting lists. The interesting transitions are the
// inline->heap spill (and that everything survives it) and move semantics
// in both storage states.
#include "common/small_vector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace locaware {
namespace {

using Vec = SmallVector<uint32_t, 4>;

TEST(SmallVectorTest, StaysInlineUpToCapacityThenSpills) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.is_inline());
  for (uint32_t i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);  // spill
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, InsertAtFrontAndBoundedPopModelProviderLists) {
  // The response index's provider discipline: insert most-recent first, pop
  // the oldest past the cap — all inside the inline slots.
  Vec v;
  for (uint32_t i = 0; i < 4; ++i) {
    v.insert(v.begin(), i);
    if (v.size() > 3) v.pop_back();
  }
  EXPECT_TRUE(v.is_inline());
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 3u);
  EXPECT_EQ(v[1], 2u);
  EXPECT_EQ(v[2], 1u);
}

TEST(SmallVectorTest, InsertInMiddleAcrossSpillKeepsOrder) {
  Vec v{0, 1, 3, 4};
  v.insert(v.begin() + 2, 2);  // insertion is itself the spill trigger
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(SmallVectorTest, SelfReferencingPushAndInsertAreSafe) {
  // std::vector guarantees v.push_back(v[0]) works; so do we — the value is
  // copied out before growth frees the buffer or the tail shift overwrites
  // its slot.
  Vec v{1, 2, 3, 4};  // full inline: the push below is the spill itself
  v.push_back(v[0]);
  EXPECT_EQ(v, (std::vector<uint32_t>{1, 2, 3, 4, 1}));
  v.insert(v.begin(), v[2]);  // aliases a slot the memmove shifts
  EXPECT_EQ(v, (std::vector<uint32_t>{3, 1, 2, 3, 4, 1}));
  v.push_back(v.back());  // heap-state growth path
  EXPECT_EQ(v.back(), 1u);
}

TEST(SmallVectorTest, EraseSingleAndRange) {
  Vec v{1, 2, 3, 4};
  auto it = v.erase(v.begin() + 1);
  EXPECT_EQ(*it, 3u);
  EXPECT_EQ(v, (std::vector<uint32_t>{1, 3, 4}));
  v.erase(v.begin(), v.begin() + 2);
  EXPECT_EQ(v, (std::vector<uint32_t>{4}));
  v.erase(v.begin());
  EXPECT_TRUE(v.empty());
}

TEST(SmallVectorTest, MoveStealsHeapAndCopiesInline) {
  Vec inline_src{1, 2};
  Vec from_inline = std::move(inline_src);
  EXPECT_TRUE(from_inline.is_inline());
  EXPECT_EQ(from_inline, (std::vector<uint32_t>{1, 2}));
  EXPECT_TRUE(inline_src.empty());

  Vec heap_src{1, 2, 3, 4, 5, 6};
  ASSERT_FALSE(heap_src.is_inline());
  const uint32_t* heap_data = heap_src.data();
  Vec from_heap = std::move(heap_src);
  EXPECT_EQ(from_heap.data(), heap_data);  // buffer stolen, not copied
  EXPECT_EQ(from_heap, (std::vector<uint32_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_TRUE(heap_src.empty());
  EXPECT_TRUE(heap_src.is_inline());  // reusable after the steal
  heap_src.push_back(9);
  EXPECT_EQ(heap_src, (std::vector<uint32_t>{9}));
}

TEST(SmallVectorTest, CopyAndAssignAcrossStorageStates) {
  Vec small{1, 2};
  Vec big{1, 2, 3, 4, 5};
  Vec copy = big;
  EXPECT_EQ(copy, big);
  copy = small;  // shrink a heap vector back to inline contents
  EXPECT_EQ(copy, small);
  Vec grown = small;
  grown = big;
  EXPECT_EQ(grown, big);
}

TEST(SmallVectorTest, ComparesAgainstStdVector) {
  Vec v{1, 2, 3};
  EXPECT_TRUE(v == (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_TRUE((std::vector<uint32_t>{1, 2, 3}) == v);
  EXPECT_FALSE(v == (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(v.ToVector(), (std::vector<uint32_t>{1, 2, 3}));
}

TEST(SmallVectorTest, AssignFromStdVectorAndInitializerList) {
  // Message construction sites (bloom deltas, trace decode) assign whole
  // std::vectors into SmallVector payload fields.
  Vec v;
  v = std::vector<uint32_t>{7, 8, 9, 10, 11};  // spills
  EXPECT_EQ(v, (std::vector<uint32_t>{7, 8, 9, 10, 11}));
  v = {1, 2};  // shrink back over the heap buffer
  EXPECT_EQ(v, (std::vector<uint32_t>{1, 2}));
}

TEST(SmallVectorTest, ResizeShrinksAndValueInitializesGrowth) {
  Vec v{1, 2, 3};
  v.resize(1);
  EXPECT_EQ(v, (std::vector<uint32_t>{1}));
  v.resize(6);  // grows past inline capacity, new slots value-initialized
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v, (std::vector<uint32_t>{1, 0, 0, 0, 0, 0}));
}

TEST(SmallVectorTest, ReverseIterationMatchesForward) {
  Vec v{1, 2, 3};
  std::vector<uint32_t> reversed(v.rbegin(), v.rend());
  EXPECT_EQ(reversed, (std::vector<uint32_t>{3, 2, 1}));
}

// --- non-trivially-copyable elements ----------------------------------------
// The message payloads hold structs that themselves contain SmallVectors
// (ResponseRecord: a ProviderVec inside a RecordVec). Every relocation path
// — growth, container moves, insert shifts, erase compaction — must run real
// move constructors and destructors instead of memcpy.

/// Element with identity: tracks construction/destruction balance and keeps
/// a nested SmallVector so relocation exercises the recursive case.
struct Tracked {
  static inline int live = 0;
  uint32_t id = 0;
  SmallVector<uint32_t, 2> payload;

  Tracked() { ++live; }
  explicit Tracked(uint32_t i) : id(i) {
    payload = {i, i + 1, i + 2};  // spilled: relocation must carry the heap
    ++live;
  }
  Tracked(const Tracked& other) : id(other.id), payload(other.payload) { ++live; }
  Tracked(Tracked&& other) noexcept
      : id(other.id), payload(std::move(other.payload)) {
    ++live;
  }
  Tracked& operator=(const Tracked&) = default;
  Tracked& operator=(Tracked&&) noexcept = default;
  ~Tracked() { --live; }

  friend bool operator==(const Tracked& a, const Tracked& b) {
    return a.id == b.id && a.payload == b.payload;
  }
};

using TrackedVec = SmallVector<Tracked, 2>;

TEST(SmallVectorNonTrivialTest, SpillRunsMovesAndBalancesLifetimes) {
  ASSERT_EQ(Tracked::live, 0);
  {
    TrackedVec v;
    for (uint32_t i = 0; i < 5; ++i) v.push_back(Tracked(i));  // spills at 3
    EXPECT_FALSE(v.is_inline());
    ASSERT_EQ(v.size(), 5u);
    EXPECT_EQ(Tracked::live, 5);
    for (uint32_t i = 0; i < 5; ++i) {
      EXPECT_EQ(v[i].id, i);
      EXPECT_EQ(v[i].payload, (std::vector<uint32_t>{i, i + 1, i + 2}));
    }
  }
  EXPECT_EQ(Tracked::live, 0);  // destructors ran for every element, once
}

TEST(SmallVectorNonTrivialTest, MoveProvenanceInBothStorageStates) {
  {
    TrackedVec inline_src;
    inline_src.push_back(Tracked(1));
    TrackedVec from_inline = std::move(inline_src);
    EXPECT_TRUE(from_inline.is_inline());
    EXPECT_TRUE(inline_src.empty());
    ASSERT_EQ(from_inline.size(), 1u);
    EXPECT_EQ(from_inline[0], Tracked(1));

    TrackedVec heap_src;
    for (uint32_t i = 0; i < 4; ++i) heap_src.push_back(Tracked(i));
    const Tracked* heap_data = heap_src.data();
    TrackedVec from_heap = std::move(heap_src);
    EXPECT_EQ(from_heap.data(), heap_data);  // buffer stolen, elements untouched
    EXPECT_TRUE(heap_src.empty());
    EXPECT_TRUE(heap_src.is_inline());
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(SmallVectorNonTrivialTest, InsertEraseAndClearKeepLifetimesExact) {
  {
    TrackedVec v;
    v.push_back(Tracked(1));
    v.push_back(Tracked(3));
    v.insert(v.begin() + 1, Tracked(2));  // spill + middle shift, non-trivial
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0].id, 1u);
    EXPECT_EQ(v[1].id, 2u);
    EXPECT_EQ(v[2].id, 3u);
    v.erase(v.begin());  // move-assign compaction + tail destroy
    EXPECT_EQ(v[0].id, 2u);
    EXPECT_EQ(Tracked::live, 2);
    v.clear();
    EXPECT_EQ(Tracked::live, 0);
  }
  EXPECT_EQ(Tracked::live, 0);
}

TEST(SmallVectorNonTrivialTest, SelfAliasingPushBackSurvivesGrowth) {
  TrackedVec v;
  v.push_back(Tracked(1));
  v.push_back(Tracked(2));
  v.push_back(v[0]);  // the push is the spill: value copied out before Grow
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], v[0]);
  EXPECT_EQ(v[2].payload, (std::vector<uint32_t>{1, 2, 3}));
}

}  // namespace
}  // namespace locaware
