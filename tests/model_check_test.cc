// Model-based randomized testing: drive ResponseIndex with long random
// operation sequences and compare every observable against a deliberately
// naive reference implementation. Divergence means one of them is wrong —
// and the reference is simple enough to trust.
#include <algorithm>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "cache/response_index.h"
#include "common/keyword_set.h"
#include "common/rng.h"

namespace locaware::cache {
namespace {

/// Straight-line reference for ResponseIndex with LRU eviction.
class ReferenceIndex {
 public:
  ReferenceIndex(size_t max_files, size_t max_providers, sim::SimTime ttl)
      : max_files_(max_files), max_providers_(max_providers), ttl_(ttl) {}

  std::vector<FileId> AddProvider(FileId file, const std::vector<KeywordId>& kws,
                                  PeerId provider, LocId loc, sim::SimTime now) {
    std::vector<FileId> evicted;
    auto it = Find(file);
    if (it == entries_.end()) {
      while (entries_.size() >= max_files_) {
        evicted.push_back(entries_.front().file);
        entries_.erase(entries_.begin());
      }
      entries_.push_back(Entry{file, kws, {}});
      it = std::prev(entries_.end());
    } else {
      Touch(it);
      it = std::prev(entries_.end());
    }
    auto& provs = it->providers;
    provs.erase(std::remove_if(provs.begin(), provs.end(),
                               [&](const auto& p) { return p.provider == provider; }),
                provs.end());
    provs.insert(provs.begin(), ProviderEntry{provider, loc, now});
    if (provs.size() > max_providers_) provs.pop_back();
    return evicted;
  }

  std::optional<std::vector<ProviderEntry>> Lookup(FileId file, sim::SimTime now) {
    auto it = Find(file);
    if (it == entries_.end()) return std::nullopt;
    std::vector<ProviderEntry> live;
    for (const auto& p : it->providers) {
      if (ttl_ <= 0 || now - p.added_at <= ttl_) live.push_back(p);
    }
    if (live.empty()) return std::nullopt;
    Touch(it);
    return live;
  }

  /// Files matching the query (with >=1 live provider), LRU-refreshing each
  /// match like the real index does. Callers must keep queries single-match:
  /// with several matches the real index's touch order follows posting-list
  /// order, which a reference cannot (and should not) replicate.
  std::vector<FileId> MatchingFiles(const std::vector<KeywordId>& query,
                                    sim::SimTime now) {
    std::vector<FileId> out;
    for (const auto& e : entries_) {
      if (!ContainsAllIds(e.keywords, query)) continue;
      bool any_live = false;
      for (const auto& p : e.providers) {
        if (ttl_ <= 0 || now - p.added_at <= ttl_) any_live = true;
      }
      if (any_live) out.push_back(e.file);
    }
    for (FileId file : out) Touch(Find(file));
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<FileId> Expire(sim::SimTime now) {
    std::vector<FileId> removed;
    if (ttl_ <= 0) return removed;
    for (auto it = entries_.begin(); it != entries_.end();) {
      auto& provs = it->providers;
      provs.erase(std::remove_if(provs.begin(), provs.end(),
                                 [&](const auto& p) { return now - p.added_at > ttl_; }),
                  provs.end());
      if (provs.empty()) {
        removed.push_back(it->file);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    std::sort(removed.begin(), removed.end());
    return removed;
  }

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    FileId file;
    std::vector<KeywordId> keywords;
    std::vector<ProviderEntry> providers;
  };

  std::vector<Entry>::iterator Find(FileId file) {
    return std::find_if(entries_.begin(), entries_.end(),
                        [&](const Entry& e) { return e.file == file; });
  }
  void Touch(std::vector<Entry>::iterator it) {
    Entry copy = *it;
    entries_.erase(it);
    entries_.push_back(std::move(copy));
  }

  size_t max_files_;
  size_t max_providers_;
  sim::SimTime ttl_;
  std::vector<Entry> entries_;  // front = LRU victim
};

struct ModelParams {
  size_t max_filenames;
  size_t max_providers;
  int64_t ttl_s;  // 0 = no expiry
  uint64_t seed;
};

class ResponseIndexModelTest : public ::testing::TestWithParam<ModelParams> {};

TEST_P(ResponseIndexModelTest, AgreesWithReferenceOverRandomOps) {
  const ModelParams params = GetParam();
  ResponseIndexConfig cfg;
  cfg.max_filenames = params.max_filenames;
  cfg.max_providers_per_file = params.max_providers;
  cfg.entry_ttl = params.ttl_s * sim::kSecond;
  cfg.eviction = EvictionPolicy::kLru;
  ResponseIndex real(cfg);
  ReferenceIndex reference(params.max_filenames, params.max_providers, cfg.entry_ttl);

  // A small universe of files so operations collide often. Keyword-id
  // layout: shared ids 0..2, mid ids 10..14, a unique id 100+i per file —
  // sorted ascending by construction.
  struct FileDef {
    FileId file;
    std::vector<KeywordId> kws;
  };
  std::vector<FileDef> files;
  for (KeywordId i = 0; i < 12; ++i) {
    files.push_back(FileDef{static_cast<FileId>(i),
                            {i % 3, static_cast<KeywordId>(10 + i % 5),
                             static_cast<KeywordId>(100 + i)}});
  }

  Rng rng(params.seed);
  sim::SimTime now = 0;
  for (int step = 0; step < 3000; ++step) {
    now += static_cast<sim::SimTime>(rng.UniformInt(1, 2 * sim::kSecond));
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    const auto& [file, kws] = files[rng.UniformInt(0, files.size() - 1)];

    if (op < 5) {  // AddProvider
      const PeerId provider = static_cast<PeerId>(rng.UniformInt(0, 9));
      const LocId loc = static_cast<LocId>(rng.UniformInt(0, 23));
      const auto outcome =
          real.AddProvider(file, kws, ProviderEntry{provider, loc, 0}, now);
      const auto expected_evicted =
          reference.AddProvider(file, kws, provider, loc, now);
      std::vector<FileId> got_evicted;
      for (const auto& e : outcome.evicted) got_evicted.push_back(e.file);
      EXPECT_EQ(got_evicted, expected_evicted) << "step " << step;
    } else if (op < 7) {  // exact lookup
      const auto got = real.LookupFile(file, now);
      const auto expected = reference.Lookup(file, now);
      ASSERT_EQ(got.has_value(), expected.has_value()) << "step " << step;
      if (got.has_value()) {
        ASSERT_EQ(got->providers.size(), expected->size()) << "step " << step;
        for (size_t i = 0; i < expected->size(); ++i) {
          EXPECT_EQ(got->providers[i].provider, (*expected)[i].provider);
          EXPECT_EQ(got->providers[i].loc_id, (*expected)[i].loc_id);
          EXPECT_EQ(got->providers[i].added_at, (*expected)[i].added_at);
        }
      }
    } else if (op < 9) {  // keyword lookup via the file's unique keyword, so
                          // at most one entry matches and LRU-touch order is
                          // deterministic (see ReferenceIndex::MatchingFiles)
      const std::vector<KeywordId> query{kws[2]};
      std::vector<FileId> got;
      for (const auto& hit : real.LookupByKeywords(query, now)) {
        got.push_back(hit.file);
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, reference.MatchingFiles(query, now)) << "step " << step;
    } else {  // expiry sweep
      std::vector<FileId> got;
      for (const auto& e : real.ExpireStale(now)) got.push_back(e.file);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, reference.Expire(now)) << "step " << step;
    }
    ASSERT_EQ(real.num_filenames(), reference.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ResponseIndexModelTest,
    ::testing::Values(ModelParams{3, 1, 0, 1}, ModelParams{3, 2, 5, 2},
                      ModelParams{5, 8, 0, 3}, ModelParams{5, 3, 2, 4},
                      ModelParams{12, 2, 3, 5}, ModelParams{2, 1, 1, 6}),
    [](const auto& info) {
      return "cap" + std::to_string(info.param.max_filenames) + "prov" +
             std::to_string(info.param.max_providers) + "ttl" +
             std::to_string(info.param.ttl_s) + "seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace locaware::cache
