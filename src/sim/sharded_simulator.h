// Sharded parallel discrete-event engine — the multi-core substitute for the
// single-threaded Simulator.
//
// Peers (event destinations) are partitioned across K shards. Each shard owns
// an EventQueue and a worker thread, and executes events in conservative
// time windows: no shard runs past T_min + lookahead, where T_min is the
// global minimum pending-event time and `lookahead` is a lower bound on the
// delivery delay of any cross-shard event. Within a window the shards run
// fully in parallel and lock-free; cross-shard sends are appended to
// per-(src-shard, dst-shard) mailboxes that are drained into destination
// queues at the window barrier.
//
// Determinism contract (the reason this engine can replace the sequential
// one without changing results): every event carries a (time, source,
// per-source sequence) key assigned at creation, where `source` is the
// *logical* creator (a peer, not a thread or shard). Queues pop in key
// order, and the conservative windows guarantee a cross-shard event is
// enqueued before any event with a larger key executes at its destination.
// Per-destination execution order is therefore a pure function of the
// simulation — identical for every shard count, including 1. Callers must
// keep event handlers shard-local (mutate only state owned by the
// destination's shard) and derive any randomness from stable identities
// rather than shared sequential streams.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/shard.h"
#include "sim/sim_time.h"

namespace locaware::sim {

/// Construction parameters for the sharded engine.
struct ShardedSimulatorConfig {
  /// Number of shards (worker threads). 1 runs inline on the caller's thread
  /// with no windows or barriers — the sequential fast path.
  uint32_t num_shards = 1;
  /// Conservative lookahead: a positive lower bound on the delay of every
  /// cross-shard event. Unused (may be 0) when num_shards == 1.
  SimTime lookahead = 0;
  /// Size of the source-id space (ids are [0, num_sources)). Source 0 is
  /// conventionally the controller; the engine maps peer p to source p + 1.
  SourceId num_sources = 1;
};

/// \brief K event queues + worker threads under conservative-window sync.
///
/// Typical use:
///   ShardedSimulator sim({.num_shards = 4, .lookahead = FromMs(5), ...});
///   sim.ScheduleAt(dst_shard, src, at, fn);   // pre-run, from the controller
///   sim.Run(horizon);                          // spawns workers, joins them
///
/// Scheduling rules:
///  - Before/after Run(): any (dst, src, at) is accepted (controller phase).
///  - Inside an event handler: intra-shard events may target any time >= the
///    shard clock; cross-shard events must satisfy `at >= window end` (which
///    the lookahead bound guarantees for real message delays). Violations
///    CHECK-fail rather than silently reorder.
///  - Each source's events must only ever be created from one shard (the
///    shard owning that source's peer) — single-writer sequence counters.
class ShardedSimulator {
 public:
  explicit ShardedSimulator(const ShardedSimulatorConfig& config);

  // Not copyable/movable: event callbacks routinely capture `this`.
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Schedules `fn` at absolute time `at` on shard `dst`, created by logical
  /// source `src`. See the class comment for the phase rules.
  void ScheduleAt(ShardId dst, SourceId src, SimTime at, EventFn fn);

  /// Current time: the executing shard's clock inside an event handler, the
  /// last Run()'s final time (max over shards) on the controller thread.
  SimTime Now() const;

  /// Runs until every queue and mailbox drains, or `horizon` is crossed
  /// (events at t > horizon stay queued). Returns events executed by this
  /// call. num_shards == 1 runs inline; otherwise spawns one thread per
  /// shard and joins them before returning.
  uint64_t Run(SimTime horizon = kNoHorizon);

  /// Pre-allocates per-shard event-queue capacity.
  void ReserveEvents(size_t expected_events_per_shard);

  /// Shard the calling thread is executing events for, or kNoShard outside
  /// event execution (controller thread, tests).
  static ShardId current_shard();

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  SimTime lookahead() const { return lookahead_; }

  /// Total events executed over the simulator's lifetime.
  uint64_t executed_count() const;
  /// Events currently queued across all shards and mailboxes.
  size_t pending_count() const;
  /// Synchronization windows completed over the simulator's lifetime (0 for
  /// single-shard runs, which need none).
  uint64_t windows() const { return windows_; }

  static constexpr SimTime kNoHorizon = INT64_MAX;

 private:
  /// One shard's private state. Padded so adjacent shards' hot fields do not
  /// share cache lines.
  struct alignas(64) Shard {
    EventQueue queue;
    SimTime now = 0;
    uint64_t executed = 0;
    /// outbox[d]: events bound for shard d, flushed at the next barrier.
    std::vector<std::vector<ShardEvent>> outbox;
  };

  uint64_t RunSingle(SimTime horizon);
  void WorkerLoop(ShardId sid, SimTime horizon);
  /// Moves every shard's outbox[sid] into shard sid's queue.
  void DrainInbound(ShardId sid);

  std::vector<Shard> shards_;
  std::vector<uint64_t> next_seq_;  ///< per-source; single-writer by contract
  SimTime lookahead_ = 0;
  ShardBarrier barrier_;

  // Window state, written only by the barrier completion hook (and therefore
  // ordered by the barrier) or before workers start.
  std::vector<SimTime> local_min_;  ///< per-shard published next-event time
  SimTime window_end_ = 0;
  bool done_ = false;
  bool running_ = false;
  SimTime controller_now_ = 0;
  uint64_t windows_ = 0;
};

}  // namespace locaware::sim
