// Sharded parallel discrete-event engine — the multi-core substitute for the
// single-threaded Simulator.
//
// Peers (event destinations) are partitioned across K shards; a pool of W
// worker threads (W <= K, default W = K) executes them under a
// topology-aware conservative scheduler:
//
//  * Per-shard-pair lookahead. Instead of one scalar bound ("no cross-shard
//    event arrives sooner than the global minimum link latency"), the
//    scheduler takes a K x K matrix LA where LA[s][d] lower-bounds the delay
//    of any event shard s creates for shard d. Each window, every shard d
//    gets its own end
//
//        end[d] = min over s != d of (L[s] + LA[s][d])
//
//    where L[s] is the earliest instant shard s could possibly execute any
//    event — the fixpoint of L[s] = min(T_s, min over e of L[e] + LA[e][s])
//    over the current per-shard next-event times T_s (the transitive closure
//    matters: an empty shard still relays causality at its incoming-edge
//    horizons). Shards whose incoming edges are all long-latency run deep
//    windows while nearby shards stay tightly coupled, so one close pair no
//    longer throttles the whole fleet. A scalar lookahead is the uniform
//    matrix, and the single-shard case runs inline with no windows at all.
//
//  * Deterministic intra-window work stealing. Within a window each shard's
//    runnable prefix (its events strictly before end[d]) is one sequential
//    task; workers claim tasks atomically, own-shard-block first, then steal
//    whole remaining shard sub-queues. A stolen shard's events still execute
//    one at a time in (time, source, seq) order against that shard's own
//    state — stealing moves *which thread* runs a shard, never the order or
//    the ownership — so results are byte-identical with stealing on or off.
//    Over-decomposition (K > W) is what gives the thief something to take:
//    a skewed shard keeps one worker busy while the others drain the rest.
//
// How much the matrix beats the scalar bound is decided upstream, by the
// peer → shard map (sim::ShardPlacement, built once at Engine::Create). The
// historical modulo partition spreads every underlay location across every
// shard, so each LA[s][d] mins over near-identical location sets and the
// matrix collapses toward the scalar floor; the locality-clustered placement
// gives each shard a spatially tight location set, which is what makes the
// off-diagonal bounds — and the window depths they permit — actually large.
// Either way the placement is a wall-clock knob only: results are identical
// for every placement strategy (see the determinism contract below).
//
// Cross-shard sends are appended to per-(src-shard, dst-shard) mailboxes; at
// the window barrier every incoming edge of a shard is drained into its
// queue, which is sound because anything edge (s, d) carried was created at
// or after T_s and therefore lands at or after end[d] — no event a drain
// delivers can predate the windowed execution that just finished.
//
// Events are *inline values* (see sim/event_queue.h): an EventFn stores its
// capture inside the entry — move-only, nothrow-movable, no heap fallback —
// so a mailbox append, a barrier drain, and a heap sift are all plain
// relocations that never touch the allocator, and a capture that outgrows
// kEventInlineBytes is a compile error at the ScheduleAt site rather than a
// silent per-event malloc. Closures crossing shards must therefore carry
// their payload by value (or share a big immutable one via shared_ptr): the
// relocation through the mailbox is also what makes the handoff thread-safe,
// since the capture is owned by exactly one shard's storage at every moment.
//
// Determinism contract (the reason this engine can replace the sequential
// one without changing results): every event carries a (time, source,
// per-source sequence) key assigned at creation, where `source` is the
// *logical* creator (a peer, not a thread or shard). Queues pop in key
// order, and the conservative windows guarantee a cross-shard event is
// enqueued before any event with a larger key executes at its destination.
// Per-destination execution order is therefore a pure function of the
// simulation — identical for every shard count, worker count, lookahead
// bound, and stealing mode, including 1 shard. Callers must keep event
// handlers shard-local (mutate only state owned by the destination's shard)
// and derive any randomness from stable identities rather than shared
// sequential streams.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/shard.h"
#include "sim/sim_time.h"

namespace locaware::sim {

/// Construction parameters for the sharded engine.
struct ShardedSimulatorConfig {
  /// Number of shards (event-queue partitions). 1 runs inline on the
  /// caller's thread with no windows or barriers — the sequential fast path.
  uint32_t num_shards = 1;
  /// Worker threads executing the shards. 0 means one per shard; values
  /// above num_shards are clamped down. Fewer workers than shards
  /// over-decomposes the run, which is what makes work stealing bite.
  uint32_t num_workers = 0;
  /// Scalar conservative lookahead: a positive lower bound on the delay of
  /// every cross-shard event. Used for every shard pair without a matrix
  /// entry. Unused (may be 0) when num_shards == 1 or a full matrix is given.
  SimTime lookahead = 0;
  /// Optional K x K row-major matrix of per-shard-pair lower bounds:
  /// entry [src * K + dst] bounds the delay of events src creates for dst.
  /// Off-diagonal entries must be positive; diagonal entries are ignored
  /// (intra-shard scheduling is unconstrained). Empty means "use the scalar
  /// lookahead everywhere".
  std::vector<SimTime> lookahead_matrix;
  /// Allow idle workers to claim other shards' window work. Never changes
  /// results; off restores the static home-block binding (worker w runs
  /// shards w, w + W, w + 2W, ... and nothing else).
  bool work_stealing = true;
  /// Size of the source-id space (ids are [0, num_sources)). Source 0 is
  /// conventionally the controller; the engine maps peer p to source p + 1.
  SourceId num_sources = 1;
};

/// Lifetime counters of the parallel scheduler (all zero for single-shard
/// runs, which need no windows). `idle_ns` is wall-clock and therefore the
/// one non-deterministic quantity here — report it in benches, never in
/// byte-compared artifacts.
struct SchedulerStats {
  uint64_t windows = 0;   ///< synchronization windows completed
  /// Non-empty shard windows executed by a non-home worker (idle claims of
  /// event-less shards are not steals — this counts relocated work).
  uint64_t steals = 0;
  uint64_t idle_ns = 0;   ///< summed worker wait at window-exit barriers
  /// occupancy[k]: windows in which exactly k shards executed >= 1 event —
  /// the skew profile work stealing compensates for.
  std::vector<uint64_t> occupancy;
};

/// \brief K event queues over W worker threads under per-pair conservative
/// windows with intra-window work stealing.
///
/// Typical use:
///   ShardedSimulator sim({.num_shards = 4, .lookahead = FromMs(5), ...});
///   sim.ScheduleAt(dst_shard, src, at, fn);   // pre-run, from the controller
///   sim.Run(horizon);                          // spawns workers, joins them
///
/// Scheduling rules:
///  - Before/after Run(): any (dst, src, at) is accepted (controller phase).
///  - Inside an event handler: intra-shard events may target any time >= the
///    shard clock; cross-shard events must satisfy `at >= end[dst]` (which
///    the per-pair lookahead bound guarantees for real message delays).
///    Violations CHECK-fail rather than silently reorder.
///  - Each source's events must only ever be created from one shard (the
///    shard owning that source's peer) — single-writer sequence counters.
class ShardedSimulator {
 public:
  explicit ShardedSimulator(const ShardedSimulatorConfig& config);

  // Not copyable/movable: event callbacks routinely capture `this`.
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Schedules `fn` at absolute time `at` on shard `dst`, created by logical
  /// source `src`. See the class comment for the phase rules.
  void ScheduleAt(ShardId dst, SourceId src, SimTime at, EventFn fn);

  /// Current time: the executing shard's clock inside an event handler, the
  /// last Run()'s final time (max over shards) on the controller thread.
  SimTime Now() const;

  /// Runs until every queue and mailbox drains, or `horizon` is crossed
  /// (events at t > horizon stay queued). Returns events executed by this
  /// call. num_shards == 1 runs inline; otherwise spawns the worker pool and
  /// joins it before returning.
  uint64_t Run(SimTime horizon = kNoHorizon);

  /// Pre-allocates per-shard event-queue capacity.
  void ReserveEvents(size_t expected_events_per_shard);

  /// Shard the calling thread is executing events for, or kNoShard outside
  /// event execution (controller thread, tests).
  static ShardId current_shard();

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t num_workers() const { return num_workers_; }
  bool work_stealing() const { return work_stealing_; }
  /// The lookahead bound the scheduler uses for events src creates for dst
  /// (the matrix entry, or the scalar fallback). Meaningless for src == dst.
  SimTime LookaheadBetween(ShardId src, ShardId dst) const;
  SimTime lookahead() const { return lookahead_; }

  /// Total events executed over the simulator's lifetime.
  uint64_t executed_count() const;
  /// Events currently queued across all shards and mailboxes.
  size_t pending_count() const;
  /// Synchronization windows completed over the simulator's lifetime (0 for
  /// single-shard runs, which need none).
  uint64_t windows() const { return windows_; }
  /// Snapshot of the scheduler counters. Call between runs, not during one.
  SchedulerStats stats() const;

  static constexpr SimTime kNoHorizon = INT64_MAX;

 private:
  /// One shard's private state. Padded so adjacent shards' hot fields do not
  /// share cache lines.
  struct alignas(64) Shard {
    EventQueue queue;
    SimTime now = 0;
    uint64_t executed = 0;
    /// outbox[d]: events bound for shard d, flushed at the next barrier.
    std::vector<std::vector<ShardEvent>> outbox;
  };

  uint64_t RunSingle(SimTime horizon);
  void WorkerLoop(uint32_t worker, SimTime horizon);
  /// Moves every shard's outbox[sid] into shard sid's queue.
  void DrainInbound(ShardId sid);
  /// Executes shard `sid`'s events strictly before window_ends_[sid].
  void RunShardWindow(ShardId sid);
  /// Barrier hook: derives every shard's window end from the per-pair
  /// lookahead fixpoint, or flags completion.
  void BeginWindow(SimTime horizon);
  /// Barrier hook: occupancy accounting + claim reset for the next window.
  void EndWindow();
  /// Claims the next unclaimed shard for `worker` (home block first, then
  /// steals), or kNoShard when none remain. `phase` selects the claim array.
  ShardId ClaimShard(uint32_t worker, std::atomic<uint8_t>* claims);

  SimTime La(ShardId src, ShardId dst) const {
    return lookahead_matrix_.empty() ? lookahead_
                                     : lookahead_matrix_[src * shards_.size() + dst];
  }

  std::vector<Shard> shards_;
  std::vector<uint64_t> next_seq_;  ///< per-source; single-writer by contract
  SimTime lookahead_ = 0;
  std::vector<SimTime> lookahead_matrix_;  ///< K*K row-major, empty = scalar
  uint32_t num_workers_ = 1;
  bool work_stealing_ = true;
  ShardBarrier barrier_;

  // Per-window claim state: one flag per shard and phase, reset under the
  // barrier lock. Claiming is the only inter-worker communication inside a
  // window; the shard a worker wins is run exactly once, sequentially.
  std::unique_ptr<std::atomic<uint8_t>[]> drain_claims_;
  std::unique_ptr<std::atomic<uint8_t>[]> exec_claims_;

  // Window state, written only by the barrier completion hooks (and
  // therefore ordered by the barrier) or before workers start.
  std::vector<SimTime> local_min_;    ///< per-shard published next-event time
  std::vector<SimTime> earliest_;     ///< fixpoint scratch (hook-only)
  std::vector<SimTime> window_ends_;  ///< per-shard window bound
  std::vector<uint64_t> executed_at_window_start_;
  bool done_ = false;
  bool running_ = false;
  SimTime controller_now_ = 0;
  uint64_t windows_ = 0;

  // Scheduler stats; steals/idle are touched concurrently by workers.
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> idle_ns_{0};
  std::vector<uint64_t> occupancy_;  ///< hook-only, see SchedulerStats
};

}  // namespace locaware::sim
