// Simulation time base.
//
// Time is an integer count of microseconds. Integer time makes event ordering
// exact and runs reproducible: floating-point latency sums would make tie
// ordering depend on accumulation order.
#pragma once

#include <cstdint>
#include <string>

namespace locaware::sim {

/// Microseconds since simulation start.
using SimTime = int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;

/// Converts a millisecond quantity (e.g. a link latency) to SimTime,
/// rounding to the nearest microsecond.
inline constexpr SimTime FromMs(double ms) {
  return static_cast<SimTime>(ms * 1000.0 + (ms >= 0 ? 0.5 : -0.5));
}

/// Converts a second quantity to SimTime.
inline constexpr SimTime FromSeconds(double s) { return FromMs(s * 1000.0); }

inline constexpr double ToMs(SimTime t) { return static_cast<double>(t) / 1000.0; }
inline constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

/// "12.345s" / "678ms" style rendering for logs and reports.
std::string FormatSimTime(SimTime t);

}  // namespace locaware::sim
