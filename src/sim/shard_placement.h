// Peer → shard placement for the sharded parallel engine.
//
// Which shard owns a peer used to be the inline modulo `p % shards`. That is
// the worst possible input for the per-shard-pair lookahead matrix: modulo
// spreads every underlay location across every shard, so the pairwise bounds
// all collapse toward the scalar floor exactly when locality should buy deep
// windows. ShardPlacement promotes the mapping to a first-class, immutable
// object built once at Engine::Create:
//
//  * kModulo — bit-compatible with the historical inline modulo (the map is
//    implicit, shard_of computes it, no per-peer storage).
//  * kClustered — groups peers by underlay location (router subtree for the
//    geometric model) with a deterministic greedy bin-pack: location buckets
//    are weighted by expected per-peer load (the workload's requester
//    histogram), K spread-out seed locations are chosen k-center style
//    (max-min distance under the caller's location-distance oracle), and each
//    bucket joins its nearest seed's shard subject to a load cap of
//    C = ceil(total weight / K). Buckets heavier than C split per peer onto
//    the least-loaded shard, which bounds every shard's load by
//    2C + max peer weight. No RNG anywhere: ties break by lowest location /
//    shard / peer id, so the map is a pure function of its inputs.
//
// Placement is a pure scheduling knob: event keys and decision randomness are
// peer-keyed, so a run's metrics are byte-identical for every placement (and
// every shard/worker/stealing setting) — only the window schedule, and with
// it wall-clock, changes. The placement is immutable for the whole run and
// stable under churn: a peer that departs and rejoins keeps its shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/shard.h"

namespace locaware::sim {

/// How peers map to shards. Serialized by core::config_io as
/// `scheduler.placement = modulo | clustered`.
enum class PlacementStrategy {
  kModulo,     ///< shard_of(p) = p % shards (the historical contract)
  kClustered,  ///< locality-clustered greedy bin-pack over location buckets
};

const char* PlacementStrategyName(PlacementStrategy s);

/// Distance oracle between two underlay locations (any consistent metric; the
/// engine passes Underlay::PairRttLowerBoundMs). May be null: the clustered
/// bin-pack then degenerates to a pure load-balanced pack, still valid.
using LocationDistanceFn = std::function<double(size_t, size_t)>;

/// \brief Immutable peer → shard map plus the per-shard location digests the
/// lookahead matrix is derived from. Build via Modulo() or Clustered().
class ShardPlacement {
 public:
  /// Trivial single-shard modulo placement (everything on shard 0).
  ShardPlacement() = default;

  /// The historical partition: shard_of(p) = p % num_shards. `peer_location`
  /// is each peer's underlay location (used only for the digests; may be
  /// empty when num_shards == 1, which needs no lookahead matrix).
  static ShardPlacement Modulo(uint32_t num_shards,
                               const std::vector<size_t>& peer_location);

  /// Locality-clustered placement (see file comment for the algorithm).
  /// `peer_weight[p]` is peer p's expected load share, > 0 (the engine uses
  /// 1 + the peer's query count); empty means uniform weights.
  static ShardPlacement Clustered(uint32_t num_shards,
                                  const std::vector<size_t>& peer_location,
                                  const std::vector<uint64_t>& peer_weight,
                                  const LocationDistanceFn& loc_distance);

  PlacementStrategy strategy() const { return strategy_; }
  uint32_t num_shards() const { return num_shards_; }
  size_t num_peers() const { return num_peers_; }

  /// The map. O(1); the modulo strategy stores no per-peer state.
  ShardId shard_of(PeerId p) const {
    return map_.empty() ? static_cast<ShardId>(p % num_shards_) : map_[p];
  }

  /// The full explicit owner map (empty for kModulo — callers treat empty as
  /// "compute p % num_shards"). OverlayGraph::SetPartitionedOwnership takes
  /// this shape directly.
  const std::vector<ShardId>& owner_map() const { return map_; }

  /// Sorted distinct underlay locations of shard `s`'s peers — the digest the
  /// per-shard-pair lookahead matrix is derived from (all empty when
  /// num_shards == 1, which needs no matrix; an empty digest also marks a
  /// peer-less shard, which gets the scalar fallback bound).
  const std::vector<size_t>& ShardLocations(ShardId s) const;

  /// Peers owned by each shard (size num_shards). Sized arenas and reserve
  /// hints read this instead of re-scanning the map.
  const std::vector<size_t>& shard_peer_counts() const {
    return shard_peer_counts_;
  }

 private:
  /// Shared tail of both factories: per-shard peer counts + location digests.
  void BuildDigests(const std::vector<size_t>& peer_location);

  PlacementStrategy strategy_ = PlacementStrategy::kModulo;
  uint32_t num_shards_ = 1;
  size_t num_peers_ = 0;
  std::vector<ShardId> map_;  ///< empty for kModulo (implicit)
  std::vector<std::vector<size_t>> shard_locations_;
  std::vector<size_t> shard_peer_counts_;
};

}  // namespace locaware::sim
