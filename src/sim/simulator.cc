#include "sim/simulator.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/check.h"

namespace locaware::sim {

std::string FormatSimTime(SimTime t) {
  char buf[48];
  if (t >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(t));
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMs(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t));
  }
  return buf;
}

void Simulator::ScheduleAt(SimTime at, EventFn fn) {
  LOCAWARE_CHECK_GE(at, now_) << "scheduling into the past";
  queue_.Push(at, std::move(fn));
}

void Simulator::ScheduleAfter(SimTime delay, EventFn fn) {
  LOCAWARE_CHECK_GE(delay, 0);
  queue_.Push(now_ + delay, std::move(fn));
}

void Simulator::SchedulePeriodic(SimTime interval, std::function<bool()> fn) {
  LOCAWARE_CHECK_GT(interval, 0);
  // One shared slot per periodic schedule, allocated once here; each queued
  // tick is a small [this, slot] closure that re-queues itself while the
  // callback keeps returning true. No self-reference, so draining the queue
  // frees the chain (the last queued tick drops the final strong ref).
  RunPeriodicTick(std::make_shared<PeriodicSlot>(interval, std::move(fn)));
}

void Simulator::RunPeriodicTick(std::shared_ptr<PeriodicSlot> slot) {
  const SimTime interval = slot->interval;
  ScheduleAfter(interval, [this, slot = std::move(slot)]() mutable {
    if (!slot->fn()) return;
    RunPeriodicTick(std::move(slot));
  });
}

uint64_t Simulator::Run(SimTime horizon) {
  stop_requested_ = false;
  uint64_t executed_this_run = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.PeekTime() > horizon) break;
    Step();
    ++executed_this_run;
  }
  if (queue_.empty() && horizon != kNoHorizon && now_ < horizon) {
    now_ = horizon;  // idle advance so repeated Run(horizon) calls compose
  }
  return executed_this_run;
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  SimTime t;
  EventFn fn = queue_.Pop(&t);
  LOCAWARE_CHECK_GE(t, now_);
  now_ = t;
  ++executed_;
  fn();
  return true;
}

}  // namespace locaware::sim
