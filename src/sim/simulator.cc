#include "sim/simulator.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "common/check.h"

namespace locaware::sim {

std::string FormatSimTime(SimTime t) {
  char buf[48];
  if (t >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(t));
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ToMs(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t));
  }
  return buf;
}

void Simulator::ScheduleAt(SimTime at, EventFn fn) {
  LOCAWARE_CHECK_GE(at, now_) << "scheduling into the past";
  queue_.Push(at, std::move(fn));
}

void Simulator::ScheduleAfter(SimTime delay, EventFn fn) {
  LOCAWARE_CHECK_GE(delay, 0);
  queue_.Push(now_ + delay, std::move(fn));
}

void Simulator::SchedulePeriodic(SimTime interval, std::function<bool()> fn) {
  LOCAWARE_CHECK_GT(interval, 0);
  // Self-rescheduling closure; stops rescheduling once fn returns false.
  // Ownership lives in the queued events (strong refs); the stored closure
  // only holds itself weakly, so cancelling or draining frees the chain
  // instead of leaking a reference cycle.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [this, interval, fn = std::move(fn), weak]() {
    if (!fn()) return;
    if (auto self = weak.lock()) ScheduleAfter(interval, [self] { (*self)(); });
  };
  ScheduleAfter(interval, [tick] { (*tick)(); });
}

uint64_t Simulator::Run(SimTime horizon) {
  stop_requested_ = false;
  uint64_t executed_this_run = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.PeekTime() > horizon) break;
    Step();
    ++executed_this_run;
  }
  if (queue_.empty() && horizon != kNoHorizon && now_ < horizon) {
    now_ = horizon;  // idle advance so repeated Run(horizon) calls compose
  }
  return executed_this_run;
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  SimTime t;
  EventFn fn = queue_.Pop(&t);
  LOCAWARE_CHECK_GE(t, now_);
  now_ = t;
  ++executed_;
  fn();
  return true;
}

}  // namespace locaware::sim
