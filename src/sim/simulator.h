// Discrete-event simulation engine — the PeerSim substitute.
//
// The paper evaluates Locaware on PeerSim's event-driven framework, which
// models per-link latencies but neither bandwidth nor CPU (paper §5.1). This
// engine reproduces exactly that model: an event loop over a time-ordered
// queue, with periodic "controls" for protocol maintenance (Bloom gossip,
// cache expiry, churn).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.h"
#include "sim/sim_time.h"

namespace locaware::sim {

/// \brief Single-threaded discrete-event simulator.
///
/// Typical use:
///   Simulator sim;
///   sim.ScheduleAfter(FromMs(10), [] { ... });
///   sim.SchedulePeriodic(FromSeconds(30), [] { ...; return true; });
///   sim.Run();                      // until queue drains
///   sim.Run(FromSeconds(3600));     // or until a horizon
class Simulator {
 public:
  Simulator() = default;

  // Not copyable/movable: event callbacks routinely capture `this`.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. 0 before the first event fires.
  SimTime Now() const { return now_; }

  /// Pre-allocates event-queue capacity (e.g. from the workload length).
  void ReserveEvents(size_t expected_events) { queue_.Reserve(expected_events); }

  /// Schedules `fn` at absolute time `at`. CHECK-fails if `at` is in the past.
  void ScheduleAt(SimTime at, EventFn fn);

  /// Schedules `fn` after a relative delay (>= 0).
  void ScheduleAfter(SimTime delay, EventFn fn);

  /// Schedules `fn` to run every `interval` starting at Now() + interval.
  /// The callback returns true to keep the schedule, false to cancel it.
  void SchedulePeriodic(SimTime interval, std::function<bool()> fn);

  /// Runs the event loop until the queue drains, `horizon` is crossed
  /// (events at t > horizon stay queued), or Stop() is called.
  /// Returns the number of events executed by this call.
  uint64_t Run(SimTime horizon = kNoHorizon);

  /// Executes exactly one event if present; returns whether one fired.
  bool Step();

  /// Requests the current Run() to return after the in-flight event.
  void Stop() { stop_requested_ = true; }

  /// Total events executed over the simulator's lifetime.
  uint64_t executed_count() const { return executed_; }
  /// Events currently queued.
  size_t pending_count() const { return queue_.size(); }

  static constexpr SimTime kNoHorizon = INT64_MAX;

 private:
  /// One periodic schedule's shared state: allocated once per
  /// SchedulePeriodic call, owned by whichever tick event is queued.
  struct PeriodicSlot {
    PeriodicSlot(SimTime i, std::function<bool()> f)
        : interval(i), fn(std::move(f)) {}
    SimTime interval;
    std::function<bool()> fn;
  };
  /// Queues the next tick of `slot` (Now() + interval).
  void RunPeriodicTick(std::shared_ptr<PeriodicSlot> slot);

  EventQueue queue_;
  SimTime now_ = 0;
  uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace locaware::sim
