#include "sim/shard_placement.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace locaware::sim {

const char* PlacementStrategyName(PlacementStrategy s) {
  switch (s) {
    case PlacementStrategy::kModulo:
      return "modulo";
    case PlacementStrategy::kClustered:
      return "clustered";
  }
  return "unknown";
}

void ShardPlacement::BuildDigests(const std::vector<size_t>& peer_location) {
  shard_peer_counts_.assign(num_shards_, 0);
  for (PeerId p = 0; p < num_peers_; ++p) ++shard_peer_counts_[shard_of(p)];

  shard_locations_.assign(num_shards_, {});
  if (num_shards_ <= 1) return;  // no matrix, no digests
  LOCAWARE_CHECK_EQ(peer_location.size(), num_peers_);
  for (PeerId p = 0; p < num_peers_; ++p) {
    shard_locations_[shard_of(p)].push_back(peer_location[p]);
  }
  for (std::vector<size_t>& locs : shard_locations_) {
    std::sort(locs.begin(), locs.end());
    locs.erase(std::unique(locs.begin(), locs.end()), locs.end());
  }
}

ShardPlacement ShardPlacement::Modulo(uint32_t num_shards,
                                      const std::vector<size_t>& peer_location) {
  LOCAWARE_CHECK_GT(num_shards, 0u);
  ShardPlacement placement;
  placement.strategy_ = PlacementStrategy::kModulo;
  placement.num_shards_ = num_shards;
  placement.num_peers_ = peer_location.size();
  placement.BuildDigests(peer_location);
  return placement;
}

ShardPlacement ShardPlacement::Clustered(uint32_t num_shards,
                                         const std::vector<size_t>& peer_location,
                                         const std::vector<uint64_t>& peer_weight,
                                         const LocationDistanceFn& loc_distance) {
  LOCAWARE_CHECK_GT(num_shards, 0u);
  const size_t n = peer_location.size();
  if (!peer_weight.empty()) {
    LOCAWARE_CHECK_EQ(peer_weight.size(), n);
  }

  ShardPlacement placement;
  placement.strategy_ = PlacementStrategy::kClustered;
  placement.num_shards_ = num_shards;
  placement.num_peers_ = n;

  if (num_shards == 1 || n == 0) {
    // Nothing to partition: keep the implicit all-on-shard-0 map.
    placement.BuildDigests(peer_location);
    return placement;
  }

  const auto weight_of = [&](PeerId p) -> uint64_t {
    const uint64_t w = peer_weight.empty() ? 1 : peer_weight[p];
    LOCAWARE_CHECK_GT(w, 0u) << "peer weights must be positive";
    return w;
  };

  // Location buckets: each location's peers (ascending id) and total weight.
  // Locations no peer lives at (peer-less routers) simply yield empty buckets
  // that the pack skips.
  size_t num_locations = 0;
  for (size_t loc : peer_location) num_locations = std::max(num_locations, loc + 1);
  std::vector<std::vector<PeerId>> bucket_peers(num_locations);
  std::vector<uint64_t> bucket_weight(num_locations, 0);
  uint64_t total_weight = 0;
  for (PeerId p = 0; p < n; ++p) {
    bucket_peers[peer_location[p]].push_back(p);
    bucket_weight[peer_location[p]] += weight_of(p);
    total_weight += weight_of(p);
  }
  std::vector<size_t> occupied;  // ascending location ids with >= 1 peer
  for (size_t loc = 0; loc < num_locations; ++loc) {
    if (!bucket_peers[loc].empty()) occupied.push_back(loc);
  }

  // Seeds: k-center greedy over occupied locations. The first seed is the
  // heaviest bucket (lowest id on ties); each further seed maximizes its
  // minimum oracle distance to the seeds so far (heaviest, then lowest id on
  // ties). Spread-out seeds are what give each shard a spatially tight
  // location set — the property the lookahead matrix converts into deep
  // windows. Without an oracle all distances tie and seeding degenerates to
  // "heaviest buckets", leaving a pure load-balanced pack.
  const size_t num_seeds = std::min<size_t>(num_shards, occupied.size());
  std::vector<size_t> seed_loc;  // seed_loc[s]: shard s's anchor location
  seed_loc.reserve(num_seeds);
  std::vector<double> min_dist(num_locations,
                               std::numeric_limits<double>::infinity());
  for (size_t s = 0; s < num_seeds; ++s) {
    size_t best = SIZE_MAX;
    for (size_t loc : occupied) {
      if (std::find(seed_loc.begin(), seed_loc.end(), loc) != seed_loc.end()) {
        continue;
      }
      if (best == SIZE_MAX) {
        best = loc;
        continue;
      }
      if (s == 0) {
        // First seed: heaviest bucket.
        if (bucket_weight[loc] > bucket_weight[best]) best = loc;
      } else if (min_dist[loc] > min_dist[best] ||
                 (min_dist[loc] == min_dist[best] &&
                  bucket_weight[loc] > bucket_weight[best])) {
        best = loc;
      }
    }
    LOCAWARE_CHECK_NE(best, SIZE_MAX);
    seed_loc.push_back(best);
    if (loc_distance) {
      for (size_t loc : occupied) {
        min_dist[loc] = std::min(min_dist[loc], loc_distance(loc, best));
      }
    } else {
      for (size_t loc : occupied) min_dist[loc] = 0.0;
    }
  }

  // Greedy pack, heaviest bucket first (lowest location id on ties): each
  // bucket joins its nearest seed's shard among those still under the load
  // cap C = ceil(total / K); a bucket heavier than C splits per peer onto the
  // least-loaded shard. Both rules keep every shard's final load under
  // 2C + max peer weight (the balance bound the unit tests pin).
  const uint64_t cap =
      (total_weight + num_shards - 1) / num_shards;  // ceil(total / K)
  std::vector<size_t> order = occupied;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (bucket_weight[a] != bucket_weight[b]) {
      return bucket_weight[a] > bucket_weight[b];
    }
    return a < b;
  });

  std::vector<uint64_t> load(num_shards, 0);
  placement.map_.assign(n, 0);
  const auto least_loaded = [&]() -> ShardId {
    ShardId best = 0;
    for (ShardId s = 1; s < num_shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    return best;
  };

  for (size_t loc : order) {
    if (bucket_weight[loc] > cap) {
      // Oversized location: no single shard may take it whole. Spill per
      // peer, each to the currently least-loaded shard.
      for (PeerId p : bucket_peers[loc]) {
        const ShardId s = least_loaded();
        placement.map_[p] = s;
        load[s] += weight_of(p);
      }
      continue;
    }
    // Nearest seed whose shard is still under the cap; least-loaded when
    // every shard is at or over it (only possible near the very end of the
    // pack, since K * C >= total).
    ShardId chosen = kNoShard;
    double chosen_dist = std::numeric_limits<double>::infinity();
    for (ShardId s = 0; s < static_cast<ShardId>(seed_loc.size()); ++s) {
      if (load[s] >= cap) continue;
      const double d = loc_distance ? loc_distance(loc, seed_loc[s]) : 0.0;
      if (chosen == kNoShard || d < chosen_dist) {
        chosen = s;
        chosen_dist = d;
      }
    }
    if (chosen == kNoShard) {
      // Seeded shards are all full; overflow into any under-cap shard
      // (seedless shards exist when locations < shards), else least-loaded.
      for (ShardId s = 0; s < num_shards; ++s) {
        if (load[s] < cap) {
          chosen = s;
          break;
        }
      }
      if (chosen == kNoShard) chosen = least_loaded();
    }
    for (PeerId p : bucket_peers[loc]) placement.map_[p] = chosen;
    load[chosen] += bucket_weight[loc];
  }

  placement.BuildDigests(peer_location);
  return placement;
}

const std::vector<size_t>& ShardPlacement::ShardLocations(ShardId s) const {
  LOCAWARE_CHECK_LT(s, shard_locations_.size());
  return shard_locations_[s];
}

}  // namespace locaware::sim
