// Time-ordered event queue with deterministic tie-breaking.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/sim_time.h"

namespace locaware::sim {

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// Logical source of an event, used for shard-count-invariant tie-breaking.
/// The sharded engine maps source 0 to "the controller" and source p + 1 to
/// peer p; the single-threaded Simulator schedules everything as source 0.
using SourceId = uint32_t;

/// \brief Min-heap of (time, source, sequence) ordered events.
///
/// Events scheduled for the same instant fire in (source, per-source
/// sequence) order. For the classic single-source Simulator this degenerates
/// to scheduling order (FIFO via a monotonically increasing sequence number).
/// For the sharded engine the key is assigned at creation from the *logical*
/// source (the peer whose event handler scheduled it), which makes the tie
/// order a property of the simulation rather than of thread interleaving —
/// the root of the "--shards=K never changes results" contract.
///
/// The heap is hand-rolled over a std::vector rather than std::priority_queue:
/// priority_queue's const top() forces a const_cast to move the callback out,
/// and it cannot pre-size its storage. Here Pop moves the payload legally and
/// Reserve lets callers pre-allocate for a known workload length.
class EventQueue {
 public:
  /// Enqueues `fn` to fire at absolute time `at`, as source 0 with the next
  /// internal sequence number (the single-threaded Simulator's path).
  void Push(SimTime at, EventFn fn);

  /// Enqueues `fn` with an explicit (source, sequence) tie-break key. The
  /// caller owns sequence assignment (the sharded engine keeps one counter
  /// per source); mixing with the keyless Push in one queue is unsupported.
  void PushKeyed(SimTime at, SourceId src, uint64_t seq, EventFn fn);

  /// Pre-allocates capacity for `expected_events` queued entries.
  void Reserve(size_t expected_events) { heap_.reserve(expected_events); }

  /// True when no events remain.
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Firing time of the earliest event. CHECK-fails when empty.
  SimTime PeekTime() const;

  /// Removes and returns the earliest event's callback, setting *time to its
  /// firing time. CHECK-fails when empty.
  EventFn Pop(SimTime* time);

  /// Total number of events ever pushed.
  uint64_t pushed_count() const { return pushed_; }

 private:
  struct Entry {
    SimTime time;
    SourceId src;
    uint64_t seq;
    EventFn fn;
  };

  /// True when the entry at `a` must fire before the entry at `b`.
  static bool FiresBefore(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }

  /// Restores the heap property from a hole at `pos` whose entry is `moving`.
  void SiftUp(size_t pos, Entry moving);
  void SiftDown(size_t pos, Entry moving);

  std::vector<Entry> heap_;  ///< binary min-heap, root at index 0
  uint64_t next_seq_ = 0;    ///< sequence source for the keyless Push
  uint64_t pushed_ = 0;
};

}  // namespace locaware::sim
