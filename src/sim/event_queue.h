// Time-ordered event queue with deterministic tie-breaking.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/inline_function.h"
#include "sim/sim_time.h"

namespace locaware::sim {

/// Inline capacity of an event closure, in bytes. Events are *inline
/// values*: a capture that does not fit is a compile error at the scheduling
/// site, never a silent heap spill (see common/inline_function.h). The
/// budget is sized to the engine's largest capture — SendResponse's
/// by-value ResponseMessage (whose SmallVector payloads keep a typical
/// response contiguous) plus a few ids — with modest headroom. When a new
/// capture trips the constraint, either trim it (capture ids, not state;
/// share a big immutable payload via shared_ptr like ForwardQuery does) or
/// consciously raise this budget — every outstanding event holds a slab
/// slot of this size (peak-outstanding-events x the budget of memory).
inline constexpr size_t kEventInlineBytes = 240;

/// Callback executed when an event fires. Move-only, nothrow-movable,
/// inline-only storage: pushing, sifting, and popping an event never touch
/// the allocator.
using EventFn = common::InlineFunction<void(), kEventInlineBytes>;

static_assert(std::is_nothrow_move_constructible_v<EventFn> &&
                  std::is_nothrow_move_assignable_v<EventFn>,
              "heap sift operations relocate events with no exception "
              "machinery; EventFn moves must not throw");

/// Logical source of an event, used for shard-count-invariant tie-breaking.
/// The sharded engine maps source 0 to "the controller" and source p + 1 to
/// peer p; the single-threaded Simulator schedules everything as source 0.
using SourceId = uint32_t;

/// \brief Min-heap of (time, source, sequence) ordered events.
///
/// Events scheduled for the same instant fire in (source, per-source
/// sequence) order. For the classic single-source Simulator this degenerates
/// to scheduling order (FIFO via a monotonically increasing sequence number).
/// For the sharded engine the key is assigned at creation from the *logical*
/// source (the peer whose event handler scheduled it), which makes the tie
/// order a property of the simulation rather than of thread interleaving —
/// the root of the "--shards=K never changes results" contract.
///
/// The heap is hand-rolled over a std::vector rather than std::priority_queue:
/// priority_queue's const top() forces a const_cast to move the callback out,
/// and it cannot pre-size its storage. Here Pop moves the payload legally and
/// Reserve lets callers pre-allocate for a known workload length.
///
/// Storage is split in two: the heap orders 24-byte (time, src, seq, slot)
/// keys, while the fat EventFn payloads sit in a slab indexed by `slot` and
/// recycled through a free list. A sift therefore moves small keys — not
/// kEventInlineBytes-sized closures — and a payload is written exactly once
/// at Push and moved out exactly once at Pop. Both sides are plain vectors,
/// so after Reserve the steady state never touches the allocator.
class EventQueue {
 public:
  /// Enqueues `fn` to fire at absolute time `at`, as source 0 with the next
  /// internal sequence number (the single-threaded Simulator's path).
  void Push(SimTime at, EventFn fn);

  /// Enqueues `fn` with an explicit (source, sequence) tie-break key. The
  /// caller owns sequence assignment (the sharded engine keeps one counter
  /// per source); mixing with the keyless Push in one queue is unsupported.
  void PushKeyed(SimTime at, SourceId src, uint64_t seq, EventFn fn);

  /// Pre-allocates capacity for `expected_events` queued entries.
  void Reserve(size_t expected_events) {
    heap_.reserve(expected_events);
    slots_.reserve(expected_events);
    free_slots_.reserve(expected_events);
  }

  /// True when no events remain.
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Firing time of the earliest event. CHECK-fails when empty.
  SimTime PeekTime() const;

  /// Removes and returns the earliest event's callback, setting *time to its
  /// firing time. CHECK-fails when empty.
  EventFn Pop(SimTime* time);

  /// Total number of events ever pushed.
  uint64_t pushed_count() const { return pushed_; }

 private:
  /// Heap node: the ordering key plus the payload's slab index. Kept small
  /// on purpose — sift operations move these, never the closures.
  struct Entry {
    SimTime time;
    SourceId src;
    uint32_t slot;  ///< index into slots_
    uint64_t seq;
  };
  static_assert(std::is_nothrow_move_constructible_v<Entry> &&
                    std::is_nothrow_move_assignable_v<Entry>,
                "SiftUp/SiftDown relocate entries; a throwing move would "
                "corrupt the heap");
  static_assert(sizeof(Entry) <= 24, "sift traffic is sized to small keys");

  /// True when the entry at `a` must fire before the entry at `b`.
  static bool FiresBefore(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }

  /// Restores the heap property from a hole at `pos` whose entry is `moving`.
  void SiftUp(size_t pos, Entry moving);
  void SiftDown(size_t pos, Entry moving);

  /// Parks `fn` in the payload slab; returns its slot index.
  uint32_t AcquireSlot(EventFn fn);

  std::vector<Entry> heap_;          ///< binary min-heap, root at index 0
  std::vector<EventFn> slots_;       ///< payload slab, indexed by Entry::slot
  std::vector<uint32_t> free_slots_; ///< recycled slab indexes (LIFO)
  uint64_t next_seq_ = 0;            ///< sequence source for the keyless Push
  uint64_t pushed_ = 0;
};

}  // namespace locaware::sim
