// Time-ordered event queue with deterministic tie-breaking.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/sim_time.h"

namespace locaware::sim {

/// Callback executed when an event fires.
using EventFn = std::function<void()>;

/// \brief Min-heap of (time, sequence) ordered events.
///
/// Events scheduled for the same instant fire in scheduling order (FIFO via a
/// monotonically increasing sequence number), which keeps simulations
/// deterministic regardless of heap internals.
class EventQueue {
 public:
  /// Enqueues `fn` to fire at absolute time `at`.
  void Push(SimTime at, EventFn fn);

  /// True when no events remain.
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Firing time of the earliest event. CHECK-fails when empty.
  SimTime PeekTime() const;

  /// Removes and returns the earliest event's callback, setting *time to its
  /// firing time. CHECK-fails when empty.
  EventFn Pop(SimTime* time);

  /// Total number of events ever pushed.
  uint64_t pushed_count() const { return next_seq_; }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace locaware::sim
