#include "sim/sharded_simulator.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"

namespace locaware::sim {

namespace {
/// Which shard the calling thread is executing events for. Thread-local so
/// several simulators (e.g. one engine per protocol in the figure benches)
/// can run concurrently on disjoint thread sets.
thread_local ShardId tls_current_shard = kNoShard;

/// t + delta without overflowing past the kNoHorizon sentinel.
inline SimTime SaturatingAdd(SimTime t, SimTime delta) {
  return (t > ShardedSimulator::kNoHorizon - delta) ? ShardedSimulator::kNoHorizon
                                                    : t + delta;
}
}  // namespace

ShardedSimulator::ShardedSimulator(const ShardedSimulatorConfig& config)
    : shards_(config.num_shards),
      next_seq_(config.num_sources, 0),
      lookahead_(config.lookahead),
      lookahead_matrix_(config.lookahead_matrix),
      num_workers_(config.num_workers == 0
                       ? config.num_shards
                       : std::min(config.num_workers, config.num_shards)),
      work_stealing_(config.work_stealing),
      barrier_(num_workers_),
      local_min_(config.num_shards, kNoHorizon),
      earliest_(config.num_shards, kNoHorizon),
      window_ends_(config.num_shards, 0),
      executed_at_window_start_(config.num_shards, 0),
      occupancy_(config.num_shards + 1, 0) {
  LOCAWARE_CHECK_GT(config.num_shards, 0u);
  LOCAWARE_CHECK_GT(config.num_sources, 0u);
  LOCAWARE_CHECK_GT(num_workers_, 0u);
  const uint32_t k = config.num_shards;
  if (k > 1) {
    if (lookahead_matrix_.empty()) {
      LOCAWARE_CHECK_GT(lookahead_, 0) << "multi-shard runs need positive lookahead";
    } else {
      LOCAWARE_CHECK_EQ(lookahead_matrix_.size(), static_cast<size_t>(k) * k)
          << "lookahead matrix must be num_shards^2 row-major";
      for (ShardId s = 0; s < k; ++s) {
        for (ShardId d = 0; d < k; ++d) {
          if (s == d) continue;
          LOCAWARE_CHECK_GT(lookahead_matrix_[s * k + d], 0)
              << "pairwise lookahead " << s << "->" << d << " must be positive";
        }
      }
    }
  }
  drain_claims_ = std::make_unique<std::atomic<uint8_t>[]>(k);
  exec_claims_ = std::make_unique<std::atomic<uint8_t>[]>(k);
  for (ShardId s = 0; s < k; ++s) {
    drain_claims_[s].store(0, std::memory_order_relaxed);
    exec_claims_[s].store(0, std::memory_order_relaxed);
  }
  for (Shard& shard : shards_) shard.outbox.resize(k);
}

ShardId ShardedSimulator::current_shard() { return tls_current_shard; }

SimTime ShardedSimulator::LookaheadBetween(ShardId src, ShardId dst) const {
  LOCAWARE_CHECK_LT(src, shards_.size());
  LOCAWARE_CHECK_LT(dst, shards_.size());
  return La(src, dst);
}

void ShardedSimulator::ScheduleAt(ShardId dst, SourceId src, SimTime at, EventFn fn) {
  LOCAWARE_CHECK_LT(dst, shards_.size());
  LOCAWARE_CHECK_LT(src, next_seq_.size());
  const uint64_t seq = next_seq_[src]++;

  const ShardId cur = tls_current_shard;
  if (cur == kNoShard) {
    // Controller phase: workers are not running, direct pushes are safe.
    LOCAWARE_CHECK(!running_) << "non-worker scheduling during a parallel run";
    shards_[dst].queue.PushKeyed(at, src, seq, std::move(fn));
    return;
  }

  Shard& me = shards_[cur];
  LOCAWARE_CHECK_GE(at, me.now) << "scheduling into the past";
  if (dst == cur) {
    me.queue.PushKeyed(at, src, seq, std::move(fn));
    return;
  }
  // Conservative-window soundness: a remote event may only land at or beyond
  // the *destination's* window end, where it has provably not executed yet.
  // Real message delays satisfy this via the per-pair lookahead lower bound:
  // at = now + delay >= L[cur] + LA[cur][dst] >= end[dst].
  LOCAWARE_CHECK_GE(at, window_ends_[dst])
      << "cross-shard event inside the destination's lookahead window";
  me.outbox[dst].push_back(ShardEvent{at, src, seq, std::move(fn)});
}

SimTime ShardedSimulator::Now() const {
  const ShardId cur = tls_current_shard;
  if (cur != kNoShard && cur < shards_.size()) return shards_[cur].now;
  return controller_now_;
}

void ShardedSimulator::ReserveEvents(size_t expected_events_per_shard) {
  for (Shard& shard : shards_) shard.queue.Reserve(expected_events_per_shard);
}

uint64_t ShardedSimulator::executed_count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.executed;
  return total;
}

size_t ShardedSimulator::pending_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.queue.size();
    for (const auto& box : shard.outbox) total += box.size();
  }
  return total;
}

SchedulerStats ShardedSimulator::stats() const {
  SchedulerStats stats;
  stats.windows = windows_;
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.idle_ns = idle_ns_.load(std::memory_order_relaxed);
  stats.occupancy = occupancy_;
  return stats;
}

uint64_t ShardedSimulator::RunSingle(SimTime horizon) {
  Shard& shard = shards_[0];
  tls_current_shard = 0;
  // A single shard has no remote senders, so windows are unnecessary: this is
  // the plain sequential loop over the same keyed queue, guaranteeing the
  // identical execution order the windowed path produces.
  uint64_t executed_this_run = 0;
  while (!shard.queue.empty() && shard.queue.PeekTime() <= horizon) {
    SimTime t;
    EventFn fn = shard.queue.Pop(&t);
    LOCAWARE_CHECK_GE(t, shard.now);
    shard.now = t;
    ++shard.executed;
    ++executed_this_run;
    fn();
  }
  tls_current_shard = kNoShard;
  if (shard.queue.empty() && horizon != kNoHorizon && shard.now < horizon) {
    shard.now = horizon;  // idle advance so repeated Run(horizon) calls compose
  }
  controller_now_ = shard.now;
  return executed_this_run;
}

void ShardedSimulator::DrainInbound(ShardId sid) {
  Shard& me = shards_[sid];
  for (Shard& sender : shards_) {
    std::vector<ShardEvent>& box = sender.outbox[sid];
    for (ShardEvent& ev : box) {
      me.queue.PushKeyed(ev.time, ev.src, ev.seq, std::move(ev.fn));
    }
    box.clear();
  }
}

ShardId ShardedSimulator::ClaimShard(uint32_t worker, std::atomic<uint8_t>* claims) {
  const uint32_t k = static_cast<uint32_t>(shards_.size());
  const auto try_claim = [&](ShardId s) {
    uint8_t expected = 0;
    return claims[s].compare_exchange_strong(expected, 1, std::memory_order_acq_rel);
  };
  // Home block first (shard s is worker s % W's home): keeps a shard's state
  // on the same core window after window when the load is balanced.
  for (ShardId s = worker; s < k; s += num_workers_) {
    if (try_claim(s)) return s;
  }
  if (!work_stealing_) return kNoShard;
  for (ShardId s = 0; s < k; ++s) {
    if (s % num_workers_ == worker) continue;  // home block already scanned
    if (try_claim(s)) return s;
  }
  return kNoShard;
}

void ShardedSimulator::RunShardWindow(ShardId sid) {
  Shard& me = shards_[sid];
  tls_current_shard = sid;
  // The claim guarantees a single executor per shard per window, so this loop
  // is exactly the sequential drain a statically bound worker would run: pop
  // in (time, source, seq) order against the shard's own queue and clock.
  const SimTime end = window_ends_[sid];
  while (!me.queue.empty() && me.queue.PeekTime() < end) {
    SimTime t;
    EventFn fn = me.queue.Pop(&t);
    LOCAWARE_CHECK_GE(t, me.now);
    me.now = t;
    ++me.executed;
    fn();
  }
  tls_current_shard = kNoShard;
}

void ShardedSimulator::BeginWindow(SimTime horizon) {
  const uint32_t k = static_cast<uint32_t>(shards_.size());
  SimTime t_min = kNoHorizon;
  for (SimTime t : local_min_) t_min = std::min(t_min, t);
  if (t_min == kNoHorizon || t_min > horizon) {
    done_ = true;
    return;
  }
  ++windows_;

  // earliest_[s]: a lower bound on the next instant shard s could execute
  // ANY event — its own queue head, or causality relayed through its
  // incoming edges. The transitive part is what makes empty shards safe: a
  // shard with no events still cannot produce one for its neighbors sooner
  // than something could first reach *it*. Fixpoint by relaxation; K is
  // small and every pass only lowers values, so this terminates quickly.
  earliest_ = local_min_;
  bool changed = true;
  while (changed) {
    changed = false;
    for (ShardId s = 0; s < k; ++s) {
      if (earliest_[s] == kNoHorizon) continue;
      for (ShardId d = 0; d < k; ++d) {
        if (s == d) continue;
        const SimTime via = SaturatingAdd(earliest_[s], La(s, d));
        if (via < earliest_[d]) {
          earliest_[d] = via;
          changed = true;
        }
      }
    }
  }

  for (ShardId d = 0; d < k; ++d) {
    SimTime end = kNoHorizon;
    for (ShardId s = 0; s < k; ++s) {
      if (s == d || earliest_[s] == kNoHorizon) continue;
      end = std::min(end, SaturatingAdd(earliest_[s], La(s, d)));
    }
    // Events at exactly `horizon` still run; the +1 keeps the strict `<`
    // window comparison while never overflowing (horizon < kNoHorizon here).
    if (horizon != kNoHorizon) end = std::min(end, horizon + 1);
    window_ends_[d] = end;
    executed_at_window_start_[d] = shards_[d].executed;
    exec_claims_[d].store(0, std::memory_order_relaxed);
  }
}

void ShardedSimulator::EndWindow() {
  uint32_t busy = 0;
  for (ShardId s = 0; s < shards_.size(); ++s) {
    if (shards_[s].executed > executed_at_window_start_[s]) ++busy;
    drain_claims_[s].store(0, std::memory_order_relaxed);
  }
  ++occupancy_[busy];
}

void ShardedSimulator::WorkerLoop(uint32_t worker, SimTime horizon) {
  while (true) {
    // 1. Pull everything other shards batched in the last window and publish
    // each drained shard's next-event time (claimed, like execution, so a
    // lopsided inbound burst does not serialize on one worker).
    for (ShardId sid = ClaimShard(worker, drain_claims_.get()); sid != kNoShard;
         sid = ClaimShard(worker, drain_claims_.get())) {
      DrainInbound(sid);
      local_min_[sid] = shards_[sid].queue.empty() ? kNoHorizon
                                                   : shards_[sid].queue.PeekTime();
    }

    // 2. Reduce to this window's per-shard bounds (or completion).
    barrier_.ArriveAndWait([this, horizon] { BeginWindow(horizon); });
    if (done_) break;

    // 3. Execute claimed shards inside their windows, batching remote sends.
    // The home shard block comes first; whatever is left afterwards is a
    // steal — whole remaining sub-queues, never event-level interleaving. A
    // steal only counts when the shard actually ran events this window, so
    // the stat measures relocated work, not claim churn over idle shards.
    for (ShardId sid = ClaimShard(worker, exec_claims_.get()); sid != kNoShard;
         sid = ClaimShard(worker, exec_claims_.get())) {
      RunShardWindow(sid);
      if (sid % num_workers_ != worker &&
          shards_[sid].executed > executed_at_window_start_[sid]) {
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // 4. Publish our outboxes to the next window's drain. The wait here is
    // the idle time stealing exists to shrink: a worker parked at this
    // barrier has run out of claimable shard windows.
    const auto idle_start = std::chrono::steady_clock::now();
    barrier_.ArriveAndWait([this] { EndWindow(); });
    idle_ns_.fetch_add(static_cast<uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - idle_start)
                               .count()),
                       std::memory_order_relaxed);
  }
}

uint64_t ShardedSimulator::Run(SimTime horizon) {
  const uint64_t executed_before = executed_count();
  if (shards_.size() == 1) return RunSingle(horizon);

  running_ = true;
  done_ = false;
  for (ShardId s = 0; s < shards_.size(); ++s) {
    drain_claims_[s].store(0, std::memory_order_relaxed);
    exec_claims_[s].store(0, std::memory_order_relaxed);
  }
  std::vector<std::thread> workers;
  workers.reserve(num_workers_);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    workers.emplace_back([this, w, horizon] { WorkerLoop(w, horizon); });
  }
  for (std::thread& worker : workers) worker.join();
  running_ = false;

  SimTime now = 0;
  for (Shard& shard : shards_) {
    if (shard.queue.empty() && horizon != kNoHorizon && shard.now < horizon) {
      shard.now = horizon;  // idle advance so repeated Run(horizon) calls compose
    }
    now = std::max(now, shard.now);
  }
  controller_now_ = now;
  return executed_count() - executed_before;
}

}  // namespace locaware::sim
