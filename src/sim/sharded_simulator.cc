#include "sim/sharded_simulator.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.h"

namespace locaware::sim {

namespace {
/// Which shard the calling thread is executing events for. Thread-local so
/// several simulators (e.g. one engine per protocol in the figure benches)
/// can run concurrently on disjoint thread sets.
thread_local ShardId tls_current_shard = kNoShard;
}  // namespace

ShardedSimulator::ShardedSimulator(const ShardedSimulatorConfig& config)
    : shards_(config.num_shards),
      next_seq_(config.num_sources, 0),
      lookahead_(config.lookahead),
      barrier_(config.num_shards),
      local_min_(config.num_shards, kNoHorizon) {
  LOCAWARE_CHECK_GT(config.num_shards, 0u);
  LOCAWARE_CHECK_GT(config.num_sources, 0u);
  if (config.num_shards > 1) {
    LOCAWARE_CHECK_GT(lookahead_, 0) << "multi-shard runs need positive lookahead";
  }
  for (Shard& shard : shards_) shard.outbox.resize(config.num_shards);
}

ShardId ShardedSimulator::current_shard() { return tls_current_shard; }

void ShardedSimulator::ScheduleAt(ShardId dst, SourceId src, SimTime at, EventFn fn) {
  LOCAWARE_CHECK_LT(dst, shards_.size());
  LOCAWARE_CHECK_LT(src, next_seq_.size());
  const uint64_t seq = next_seq_[src]++;

  const ShardId cur = tls_current_shard;
  if (cur == kNoShard) {
    // Controller phase: workers are not running, direct pushes are safe.
    LOCAWARE_CHECK(!running_) << "non-worker scheduling during a parallel run";
    shards_[dst].queue.PushKeyed(at, src, seq, std::move(fn));
    return;
  }

  Shard& me = shards_[cur];
  LOCAWARE_CHECK_GE(at, me.now) << "scheduling into the past";
  if (dst == cur) {
    me.queue.PushKeyed(at, src, seq, std::move(fn));
    return;
  }
  // Conservative-window soundness: a remote event may only land at or beyond
  // the current window's end, where the destination has provably not executed
  // yet. Real message delays satisfy this via the lookahead lower bound.
  LOCAWARE_CHECK_GE(at, window_end_)
      << "cross-shard event inside the lookahead window";
  me.outbox[dst].push_back(ShardEvent{at, src, seq, std::move(fn)});
}

SimTime ShardedSimulator::Now() const {
  const ShardId cur = tls_current_shard;
  if (cur != kNoShard && cur < shards_.size()) return shards_[cur].now;
  return controller_now_;
}

void ShardedSimulator::ReserveEvents(size_t expected_events_per_shard) {
  for (Shard& shard : shards_) shard.queue.Reserve(expected_events_per_shard);
}

uint64_t ShardedSimulator::executed_count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.executed;
  return total;
}

size_t ShardedSimulator::pending_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.queue.size();
    for (const auto& box : shard.outbox) total += box.size();
  }
  return total;
}

uint64_t ShardedSimulator::RunSingle(SimTime horizon) {
  Shard& shard = shards_[0];
  tls_current_shard = 0;
  // A single shard has no remote senders, so windows are unnecessary: this is
  // the plain sequential loop over the same keyed queue, guaranteeing the
  // identical execution order the windowed path produces.
  uint64_t executed_this_run = 0;
  while (!shard.queue.empty() && shard.queue.PeekTime() <= horizon) {
    SimTime t;
    EventFn fn = shard.queue.Pop(&t);
    LOCAWARE_CHECK_GE(t, shard.now);
    shard.now = t;
    ++shard.executed;
    ++executed_this_run;
    fn();
  }
  tls_current_shard = kNoShard;
  if (shard.queue.empty() && horizon != kNoHorizon && shard.now < horizon) {
    shard.now = horizon;  // idle advance so repeated Run(horizon) calls compose
  }
  controller_now_ = shard.now;
  return executed_this_run;
}

void ShardedSimulator::DrainInbound(ShardId sid) {
  Shard& me = shards_[sid];
  for (Shard& sender : shards_) {
    std::vector<ShardEvent>& box = sender.outbox[sid];
    for (ShardEvent& ev : box) {
      me.queue.PushKeyed(ev.time, ev.src, ev.seq, std::move(ev.fn));
    }
    box.clear();
  }
}

void ShardedSimulator::WorkerLoop(ShardId sid, SimTime horizon) {
  tls_current_shard = sid;
  Shard& me = shards_[sid];
  while (true) {
    // 1. Pull everything other shards batched for us in the last window.
    DrainInbound(sid);
    local_min_[sid] = me.queue.empty() ? kNoHorizon : me.queue.PeekTime();

    // 2. Reduce to the global minimum and derive this window's bound.
    barrier_.ArriveAndWait([this, horizon] {
      SimTime t_min = kNoHorizon;
      for (SimTime t : local_min_) t_min = std::min(t_min, t);
      if (t_min == kNoHorizon || t_min > horizon) {
        done_ = true;
        return;
      }
      ++windows_;
      SimTime end = (t_min > kNoHorizon - lookahead_) ? kNoHorizon : t_min + lookahead_;
      // Events at exactly `horizon` still run; the +1 keeps the strict `<`
      // window comparison while never overflowing (horizon < kNoHorizon here).
      if (horizon != kNoHorizon) end = std::min(end, horizon + 1);
      window_end_ = end;
    });
    if (done_) break;

    // 3. Execute our events inside the window, batching remote sends.
    const SimTime end = window_end_;
    while (!me.queue.empty() && me.queue.PeekTime() < end) {
      SimTime t;
      EventFn fn = me.queue.Pop(&t);
      LOCAWARE_CHECK_GE(t, me.now);
      me.now = t;
      ++me.executed;
      fn();
    }

    // 4. Publish our outboxes to the next window's drain.
    barrier_.ArriveAndWait();
  }
  if (me.queue.empty() && horizon != kNoHorizon && me.now < horizon) {
    me.now = horizon;
  }
  tls_current_shard = kNoShard;
}

uint64_t ShardedSimulator::Run(SimTime horizon) {
  const uint64_t executed_before = executed_count();
  if (shards_.size() == 1) return RunSingle(horizon);

  running_ = true;
  done_ = false;
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (ShardId sid = 0; sid < shards_.size(); ++sid) {
    workers.emplace_back([this, sid, horizon] { WorkerLoop(sid, horizon); });
  }
  for (std::thread& worker : workers) worker.join();
  running_ = false;

  SimTime now = 0;
  for (const Shard& shard : shards_) now = std::max(now, shard.now);
  controller_now_ = now;
  return executed_count() - executed_before;
}

}  // namespace locaware::sim
