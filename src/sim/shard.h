// Shard primitives for the parallel discrete-event engine: shard/source ids,
// the batched cross-shard event record, and the reusable synchronization
// barrier the window loop runs on.
//
// Sharding model (see sharded_simulator.h for the full contract): peers are
// partitioned across K shards, each with its own event queue, executed by a
// pool of W <= K workers that claim shards per window (home block first,
// then work stealing). Shards only exchange events through per-(src-shard,
// dst-shard) mailboxes that are flushed at window barriers, so the hot path
// between barriers is lock-free — the claim flags and stat counters are the
// only shared atomics.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "sim/event_queue.h"
#include "sim/sim_time.h"

namespace locaware::sim {

/// Index of a shard (worker) inside a ShardedSimulator.
using ShardId = uint32_t;

/// Sentinel: "not executing on any shard" (controller thread, tests).
inline constexpr ShardId kNoShard = UINT32_MAX;

/// \brief One event in flight between shards.
///
/// Cross-shard sends are appended to the sender's outbox during a window and
/// moved into the destination shard's queue at the next barrier — the
/// "batch event delivery per (src, dst) link" lever: one vector append per
/// message instead of one synchronized heap push.
struct ShardEvent {
  SimTime time = 0;
  SourceId src = 0;
  uint64_t seq = 0;
  EventFn fn;
};

/// \brief Reusable counting barrier with a completion hook.
///
/// ArriveAndWait blocks until all `parties` threads arrive; the last arriver
/// runs `on_last` (under the barrier lock) before releasing the others. The
/// window loop uses the hook for its global min-time reduction, which is why
/// this is hand-rolled instead of std::barrier (whose completion functor is
/// fixed at construction).
///
/// Memory ordering: everything written by a thread before ArriveAndWait is
/// visible to every thread after the same barrier phase (the shared mutex
/// orders it), which is what makes the lock-free mailbox handoff sound.
class ShardBarrier {
 public:
  explicit ShardBarrier(uint32_t parties) : parties_(parties) {}

  ShardBarrier(const ShardBarrier&) = delete;
  ShardBarrier& operator=(const ShardBarrier&) = delete;

  /// Blocks until all parties arrive; the last arriver runs `on_last` first.
  template <typename F>
  void ArriveAndWait(F&& on_last) {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t phase = phase_;
    if (++arrived_ == parties_) {
      on_last();
      arrived_ = 0;
      ++phase_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return phase_ != phase; });
    }
  }

  /// Barrier without a completion hook.
  void ArriveAndWait() {
    ArriveAndWait([] {});
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const uint32_t parties_;
  uint32_t arrived_ = 0;
  uint64_t phase_ = 0;  ///< generation counter; wait predicate per phase
};

}  // namespace locaware::sim
