#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace locaware::sim {

void EventQueue::SiftUp(size_t pos, Entry moving) {
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (!FiresBefore(moving, heap_[parent])) break;
    heap_[pos] = std::move(heap_[parent]);
    pos = parent;
  }
  heap_[pos] = std::move(moving);
}

void EventQueue::SiftDown(size_t pos, Entry moving) {
  const size_t n = heap_.size();
  while (true) {
    size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && FiresBefore(heap_[child + 1], heap_[child])) ++child;
    if (!FiresBefore(heap_[child], moving)) break;
    heap_[pos] = std::move(heap_[child]);
    pos = child;
  }
  heap_[pos] = std::move(moving);
}

uint32_t EventQueue::AcquireSlot(EventFn fn) {
  if (!free_slots_.empty()) {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
    return slot;
  }
  const uint32_t slot = static_cast<uint32_t>(slots_.size());
  slots_.push_back(std::move(fn));
  return slot;
}

void EventQueue::Push(SimTime at, EventFn fn) {
  PushKeyed(at, /*src=*/0, next_seq_++, std::move(fn));
}

void EventQueue::PushKeyed(SimTime at, SourceId src, uint64_t seq, EventFn fn) {
  Entry entry{at, src, AcquireSlot(std::move(fn)), seq};
  ++pushed_;
  heap_.emplace_back();  // open a hole at the tail, then sift the entry in
  SiftUp(heap_.size() - 1, entry);
}

SimTime EventQueue::PeekTime() const {
  LOCAWARE_CHECK(!heap_.empty()) << "PeekTime on empty queue";
  return heap_.front().time;
}

EventFn EventQueue::Pop(SimTime* time) {
  LOCAWARE_CHECK(!heap_.empty()) << "Pop on empty queue";
  const Entry root = heap_.front();
  *time = root.time;
  EventFn fn = std::move(slots_[root.slot]);
  free_slots_.push_back(root.slot);
  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0, last);
  return fn;
}

}  // namespace locaware::sim
