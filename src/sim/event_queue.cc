#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace locaware::sim {

void EventQueue::Push(SimTime at, EventFn fn) {
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

SimTime EventQueue::PeekTime() const {
  LOCAWARE_CHECK(!heap_.empty()) << "PeekTime on empty queue";
  return heap_.top().time;
}

EventFn EventQueue::Pop(SimTime* time) {
  LOCAWARE_CHECK(!heap_.empty()) << "Pop on empty queue";
  // priority_queue::top() is const; the move is safe because we pop right
  // after and never touch the moved-from entry.
  Entry& top = const_cast<Entry&>(heap_.top());
  *time = top.time;
  EventFn fn = std::move(top.fn);
  heap_.pop();
  return fn;
}

}  // namespace locaware::sim
