// Pure structured search (PR 10): every query resolves through the Chord
// keyword->provider DHT (src/dht/), no unstructured forwarding and no
// response index. The contrast protocol for the popularity-skew ablation —
// O(log n) hops regardless of popularity, at the price of publish traffic
// and churn-window losses.
#pragma once

#include "core/protocol.h"

namespace locaware::core {

class DhtProtocol final : public Protocol {
 public:
  using Protocol::Protocol;

  ProtocolKind kind() const override { return ProtocolKind::kDht; }
  const char* name() const override { return "DHT"; }

  /// No unstructured forwarding: queries never travel overlay links.
  PeerVec ForwardTargets(Engine& engine, PeerId node,
                         const overlay::QueryMessage& query, PeerId from) override;
  /// No cache to feed.
  void ObserveResponse(Engine& engine, PeerId node,
                       const overlay::ResponseMessage& response) override;
  /// No index to answer from.
  overlay::RecordVec AnswerFromIndex(Engine& engine, PeerId node,
                                     const overlay::QueryMessage& query) override;

  /// Every submitted query starts an iterative DHT lookup on its routing
  /// keyword.
  void OnQuerySubmitted(Engine& engine, const overlay::QueryMessage& query,
                        size_t fanout) override;

  /// Location-oblivious structured baseline.
  SelectionStrategy DefaultSelection() const override {
    return SelectionStrategy::kRandom;
  }
};

}  // namespace locaware::core
