#include "core/provider_selection.h"

#include "common/check.h"

namespace locaware::core {

namespace {

/// Probes every candidate and returns the index of the smallest RTT.
/// Ties break toward the earlier (more recent / earlier-arrived) candidate.
size_t ProbeForClosest(std::span<const Candidate> candidates, PeerId requester,
                       const net::Underlay& underlay, uint64_t* probe_msgs) {
  size_t best = 0;
  double best_rtt = underlay.RttMs(requester, candidates[0].provider);
  *probe_msgs += 2;  // probe + reply
  for (size_t i = 1; i < candidates.size(); ++i) {
    const double rtt = underlay.RttMs(requester, candidates[i].provider);
    *probe_msgs += 2;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = i;
    }
  }
  return best;
}

}  // namespace

SelectionOutcome SelectProvider(SelectionStrategy strategy,
                                std::span<const Candidate> candidates,
                                PeerId requester, LocId requester_loc,
                                const net::Underlay& underlay, Rng* rng) {
  LOCAWARE_CHECK(!candidates.empty()) << "SelectProvider with no candidates";
  SelectionOutcome outcome;
  switch (strategy) {
    case SelectionStrategy::kLocIdThenRtt: {
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].loc_id == requester_loc) {
          outcome.chosen = i;
          return outcome;
        }
      }
      // §5.1: "when a requestor peer does not find a provider with matching
      // locId ... it measures its RTT to the set of available providers and
      // chooses the one with the smallest RTT".
      outcome.chosen =
          ProbeForClosest(candidates, requester, underlay, &outcome.probe_msgs);
      return outcome;
    }
    case SelectionStrategy::kMinRtt:
      outcome.chosen =
          ProbeForClosest(candidates, requester, underlay, &outcome.probe_msgs);
      return outcome;
    case SelectionStrategy::kRandom:
      outcome.chosen = static_cast<size_t>(rng->UniformInt(0, candidates.size() - 1));
      return outcome;
    case SelectionStrategy::kFirstResponder:
      outcome.chosen = 0;
      return outcome;
  }
  return outcome;
}

}  // namespace locaware::core
