// Chord DHT engine plumbing (PR 10): iterative lookups, publish-on-store,
// stabilization under churn — all shard-safe messages through the event
// queue, never direct cross-peer reads. Wire contract and invariants are
// documented in src/dht/README.md.
#include <algorithm>
#include <vector>

#include "common/check.h"
#include "core/engine.h"

namespace locaware::core {

namespace {

/// Per-(keyword, file) provider cap in an owner's store: bounds arena growth
/// the way ri.max_providers_per_file bounds the unstructured index.
constexpr size_t kMaxStoredProvidersPerFile = 8;

/// Routing-loop circuit breaker. A consistent 2^64 ring resolves in at most
/// 64 halvings; anything past that is repair lag chasing its own tail.
constexpr uint32_t kMaxLookupHops = 64;

// Every DHT delivery closure ([this, peer, message]) must ride the
// zero-allocation inline event path like the rest of the data plane.
static_assert(sizeof(overlay::DhtLookupMessage) + 2 * sizeof(void*) <=
                  sim::kEventInlineBytes,
              "DhtLookup closure exceeds the inline event budget");
static_assert(sizeof(overlay::DhtResponseMessage) + 2 * sizeof(void*) <=
                  sim::kEventInlineBytes,
              "DhtResponse closure exceeds the inline event budget");
static_assert(sizeof(overlay::DhtStoreMessage) + 2 * sizeof(void*) <=
                  sim::kEventInlineBytes,
              "DhtStore closure exceeds the inline event budget");

}  // namespace

void Engine::StartDhtQueryLookup(const overlay::QueryMessage& query,
                                 bool count_as_escalation) {
  const PeerId origin = query.origin;
  dht::RoutingState& rt = *node(origin).dht;
  metrics::MetricsCollector& collector = CollectorAt(origin);
  if (count_as_escalation) collector.AddHybridEscalation();
  collector.AddDhtLookup();

  const dht::RingId key = dht::RingIdOfKey(catalog_.KeywordFnv(query.route_kw));
  const dht::HopDecision hd = dht::NextHop(rt, origin, key);
  if (hd.done && hd.next == kInvalidPeer) {
    // Alone on the ring: the origin owns every key. No wire traffic.
    DhtServeFromOwnStore(origin, query.route_kw, query.qid);
    collector.AddDhtHops(0);
    return;
  }

  // Session ids combine the initiator with a node-local counter advancing in
  // node-local event order — shard-count invariant, never reused (the
  // counter survives departures).
  const uint64_t session =
      (static_cast<uint64_t>(origin) << 32) | (rt.next_session++ & 0xffffffffULL);
  dht::LookupState st;
  st.purpose = dht::LookupState::Purpose::kQuery;
  st.qid = query.qid;
  st.kw = query.route_kw;
  st.key = key;
  st.asked = hd.next;
  st.fetching = hd.done;  // owner already known: go straight to the fetch
  st.hops = 1;
  st.started_at = sim_->Now();
  rt.lookups.try_emplace(session, st);
  DhtSendLookup(origin, session, hd.next,
                hd.done ? overlay::DhtLookupMode::kGetProviders
                        : overlay::DhtLookupMode::kRoute);
}

void Engine::StartDhtStore(PeerId publisher, KeywordId kw, FileId file) {
  dht::RoutingState& rt = *node(publisher).dht;
  const dht::RingId key = dht::RingIdOfKey(catalog_.KeywordFnv(kw));
  const overlay::ProviderInfo self{publisher, node(publisher).loc_id};
  const dht::HopDecision hd = dht::NextHop(rt, publisher, key);
  if (hd.done && hd.next == kInvalidPeer) {
    DhtStoreLocal(publisher, kw, file, self);  // alone: every key is ours
    return;
  }
  if (hd.done) {
    // The owner is our direct successor: skip the routing session.
    overlay::DhtStoreMessage store;
    store.publisher = publisher;
    store.publisher_epoch = graph_->session_epoch(publisher);
    store.kw = kw;
    store.file = file;
    store.provider = self;
    CollectorAt(publisher).AddDhtStoreTraffic(1, EstimateSizeBytes(store, catalog_));
    const PeerId owner = hd.next;
    ScheduleFromNode(publisher, owner, OneWayDelay(publisher, owner),
                     [this, owner, store] { DeliverDhtStore(owner, store); });
    return;
  }
  const uint64_t session = (static_cast<uint64_t>(publisher) << 32) |
                           (rt.next_session++ & 0xffffffffULL);
  dht::LookupState st;
  st.purpose = dht::LookupState::Purpose::kStore;
  st.kw = kw;
  st.file = file;
  st.key = key;
  st.asked = hd.next;
  st.hops = 1;
  st.started_at = sim_->Now();
  rt.lookups.try_emplace(session, st);
  DhtSendLookup(publisher, session, hd.next, overlay::DhtLookupMode::kRoute);
}

void Engine::DhtSendLookup(PeerId initiator, uint64_t session, PeerId to,
                           overlay::DhtLookupMode mode) {
  dht::RoutingState& rt = *node(initiator).dht;
  auto it = rt.lookups.find(session);
  LOCAWARE_CHECK(it != rt.lookups.end()) << "send for a dead DHT session";
  const dht::LookupState& st = it->second;

  overlay::DhtLookupMessage msg;
  msg.initiator = initiator;
  msg.initiator_epoch = graph_->session_epoch(initiator);
  msg.session = session;
  msg.key = st.key;
  msg.kw = st.kw;
  msg.qid = st.qid;
  msg.mode = mode;
  msg.purpose = st.purpose == dht::LookupState::Purpose::kQuery
                    ? overlay::DhtSessionPurpose::kQuery
                    : overlay::DhtSessionPurpose::kStore;

  // Query-driven lookup traffic is search traffic, charged to the query's
  // slot like forwarded query copies; publish routing is maintenance,
  // charged to the global dht_store counters.
  const size_t bytes = EstimateSizeBytes(msg, catalog_);
  if (st.purpose == dht::LookupState::Purpose::kQuery) {
    const size_t slot = SlotOf(shard_of(initiator), st.qid);
    if (slot != SIZE_MAX) {
      metrics::QueryRecord* record = CollectorAt(initiator).Record(slot);
      ++record->query_msgs;
      record->query_bytes += bytes;
    }
  } else {
    CollectorAt(initiator).AddDhtStoreTraffic(1, bytes);
  }
  ScheduleFromNode(initiator, to, OneWayDelay(initiator, to),
                   [this, to, msg] { DeliverDhtLookup(to, msg); });
}

void Engine::DeliverDhtLookup(PeerId to, const overlay::DhtLookupMessage& msg) {
  if (!graph_->IsAlive(to)) return;  // lost on a dead peer
  // Reject requests from ended sessions (the DeliverLinkProbe pattern): the
  // initiator's lookup state died with its session, and a rejoin's fresh
  // epoch must not resurrect stale traffic.
  if (config_.churn.enabled &&
      (!churn_timeline_.IsOnlineAt(msg.initiator, sim_->Now()) ||
       churn_timeline_.SessionEpochAt(msg.initiator, sim_->Now()) !=
           msg.initiator_epoch)) {
    return;
  }
  dht::RoutingState& rt = *node(to).dht;

  overlay::DhtResponseMessage reply;
  reply.responder = to;
  reply.session = msg.session;
  if (msg.mode == overlay::DhtLookupMode::kGetProviders) {
    reply.done = true;
    reply.next = to;
    auto stored = rt.store.find(msg.kw);
    if (stored != rt.store.end()) {
      // Group the (insertion-ordered, node-local) list by file, capping each
      // record's provider list like the unstructured response path does.
      const sim::SimTime now = sim_->Now();
      for (const dht::StoredProvider& sp : stored->second) {
        if (sp.expires_at <= now) continue;
        overlay::ResponseRecord* rec = nullptr;
        for (overlay::ResponseRecord& r : reply.records) {
          if (r.file == sp.file) {
            rec = &r;
            break;
          }
        }
        if (rec == nullptr) {
          overlay::ResponseRecord fresh;
          fresh.file = sp.file;
          fresh.from_index = true;
          reply.records.push_back(std::move(fresh));
          rec = &reply.records.back();
        }
        if (rec->providers.size() < config_.params.max_response_providers) {
          rec->providers.push_back(overlay::ProviderInfo{sp.provider, sp.loc_id});
        }
      }
    }
  } else {
    const dht::HopDecision hd = dht::NextHop(rt, to, msg.key);
    reply.done = hd.done;
    // NextHop's "done with no successor" means the queried node is alone and
    // owns everything — name it as the owner rather than abort the lookup.
    reply.next = (hd.done && hd.next == kInvalidPeer) ? to : hd.next;
  }

  // The route replies are search traffic too; the final records reply is a
  // response (so a DHT-answered query satisfies the response-accounting
  // invariants exactly like a cache hit).
  const size_t bytes = EstimateSizeBytes(reply, catalog_);
  if (msg.purpose == overlay::DhtSessionPurpose::kQuery) {
    const size_t slot = SlotOf(shard_of(to), msg.qid);
    if (slot != SIZE_MAX) {
      metrics::QueryRecord* record = CollectorAt(to).Record(slot);
      if (msg.mode == overlay::DhtLookupMode::kGetProviders) {
        ++record->response_msgs;
        record->response_bytes += bytes;
      } else {
        ++record->query_msgs;
        record->query_bytes += bytes;
      }
    }
  } else {
    CollectorAt(to).AddDhtStoreTraffic(1, bytes);
  }
  const PeerId initiator = msg.initiator;
  ScheduleFromNode(to, initiator, OneWayDelay(to, initiator),
                   [this, initiator, reply = std::move(reply)] {
                     DeliverDhtResponse(initiator, std::move(reply));
                   });
}

void Engine::DeliverDhtResponse(PeerId to, overlay::DhtResponseMessage msg) {
  if (!graph_->IsAlive(to)) return;  // initiator left; its sessions died
  dht::RoutingState& rt = *node(to).dht;
  auto it = rt.lookups.find(msg.session);
  if (it == rt.lookups.end()) return;  // expired or already completed
  dht::LookupState& st = it->second;

  if (st.fetching) {
    // Final fetch completed: fold matching records into the pending query.
    ShardState& shard = shards_[shard_of(to)];
    auto pending = shard.pending.find(st.qid);
    if (pending != shard.pending.end()) {
      PendingQuery& pq = pending->second;
      bool matched = false;
      for (overlay::ResponseRecord& rec : msg.records) {
        // The owner indexes one keyword; the query may demand several.
        if (!catalog_.MatchesSorted(rec.file, pq.keywords)) continue;
        matched = true;
        pq.offers.push_back(PendingQuery::Offer{std::move(rec), msg.responder});
      }
      if (matched) {
        metrics::QueryRecord* record = shard.metrics.Record(pq.slot);
        ++record->responses_received;
        if (record->first_response_at == 0) {
          record->first_response_at = sim_->Now();
          record->first_response_hops = st.hops;
        }
      }
    }
    CollectorAt(to).AddDhtHops(st.hops);
    rt.lookups.erase(msg.session);
    return;
  }

  if (!msg.done) {
    // No progress (the responder had no better candidate, or we are looping)
    // is a dead end: drop the session. Query failures surface at the
    // deadline; store routes retry at the next republish.
    if (msg.next == kInvalidPeer || msg.next == st.asked ||
        st.hops >= kMaxLookupHops) {
      rt.lookups.erase(msg.session);
      return;
    }
    st.asked = msg.next;
    ++st.hops;
    DhtSendLookup(to, msg.session, st.asked, overlay::DhtLookupMode::kRoute);
    return;
  }

  const PeerId owner = msg.next;
  if (st.purpose == dht::LookupState::Purpose::kQuery) {
    if (owner == to) {
      DhtServeFromOwnStore(to, st.kw, st.qid);
      CollectorAt(to).AddDhtHops(st.hops);
      rt.lookups.erase(msg.session);
      return;
    }
    st.asked = owner;
    st.fetching = true;
    ++st.hops;
    DhtSendLookup(to, msg.session, owner, overlay::DhtLookupMode::kGetProviders);
    return;
  }

  // Store purpose: install at the resolved owner and finish the session.
  if (owner == to) {
    DhtStoreLocal(to, st.kw, st.file, overlay::ProviderInfo{to, node(to).loc_id});
  } else {
    overlay::DhtStoreMessage store;
    store.publisher = to;
    store.publisher_epoch = graph_->session_epoch(to);
    store.kw = st.kw;
    store.file = st.file;
    store.provider = overlay::ProviderInfo{to, node(to).loc_id};
    CollectorAt(to).AddDhtStoreTraffic(1, EstimateSizeBytes(store, catalog_));
    ScheduleFromNode(to, owner, OneWayDelay(to, owner),
                     [this, owner, store] { DeliverDhtStore(owner, store); });
  }
  rt.lookups.erase(msg.session);
}

void Engine::DeliverDhtStore(PeerId to, const overlay::DhtStoreMessage& msg) {
  if (!graph_->IsAlive(to)) return;  // lost on a dead owner
  // A store from an ended session is stale by definition; the publisher's
  // rejoin republishes everything it still shares.
  if (config_.churn.enabled &&
      (!churn_timeline_.IsOnlineAt(msg.publisher, sim_->Now()) ||
       churn_timeline_.SessionEpochAt(msg.publisher, sim_->Now()) !=
           msg.publisher_epoch)) {
    return;
  }
  DhtStoreLocal(to, msg.kw, msg.file, msg.provider);
}

void Engine::DhtStoreLocal(PeerId owner, KeywordId kw, FileId file,
                           const overlay::ProviderInfo& provider) {
  dht::RoutingState& rt = *node(owner).dht;
  auto [it, inserted] = rt.store.try_emplace(kw);
  if (inserted) it->second.set_arena(arenas_[shard_of(owner)].get());
  dht::StoreList& list = it->second;
  const sim::SimTime expires =
      sim_->Now() + 2 * config_.params.dht_republish_interval;
  size_t same_file = 0;
  for (dht::StoredProvider& sp : list) {
    if (sp.file != file) continue;
    if (sp.provider == provider.peer) {
      sp.expires_at = expires;  // re-publish refreshes the TTL
      sp.loc_id = provider.loc_id;
      return;
    }
    ++same_file;
  }
  if (same_file >= kMaxStoredProvidersPerFile) return;
  list.push_back(dht::StoredProvider{file, provider.peer, provider.loc_id, expires});
}

void Engine::DhtServeFromOwnStore(PeerId initiator, KeywordId kw, QueryId qid) {
  ShardState& shard = shards_[shard_of(initiator)];
  auto pending = shard.pending.find(qid);
  if (pending == shard.pending.end()) return;  // finalized already
  PendingQuery& pq = pending->second;
  dht::RoutingState& rt = *node(initiator).dht;
  auto stored = rt.store.find(kw);
  if (stored == rt.store.end()) return;
  const sim::SimTime now = sim_->Now();
  for (const dht::StoredProvider& sp : stored->second) {
    if (sp.expires_at <= now) continue;
    if (!catalog_.MatchesSorted(sp.file, pq.keywords)) continue;
    overlay::ResponseRecord rec;
    rec.file = sp.file;
    rec.from_index = true;
    rec.providers.push_back(overlay::ProviderInfo{sp.provider, sp.loc_id});
    pq.offers.push_back(PendingQuery::Offer{std::move(rec), initiator});
  }
  // No responses_received bump: nothing crossed the wire, matching the
  // local-index path — FinalizeQuery classifies the answer kLocalIndex.
}

void Engine::DhtMaintenance(PeerId p) {
  dht::RoutingState& rt = *node(p).dht;
  if (config_.churn.enabled) DhtStabilize(p);

  const sim::SimTime now = sim_->Now();
  // Sentinel check first: Now() - kNeverPublished would overflow.
  if (rt.last_publish == dht::kNeverPublished ||
      now - rt.last_publish >= config_.params.dht_republish_interval) {
    rt.last_publish = now;
    DhtPublish(p);
  }

  // Expire dead records. Which keys expire is content-determined, but the
  // erase pass must not run mid-iteration, and sorting keeps the arena
  // traffic in a canonical order (collect-and-sort rule).
  std::vector<KeywordId> expired_keys;
  for (const auto& slot : rt.store) {
    for (const dht::StoredProvider& sp : slot.second) {
      if (sp.expires_at <= now) {
        expired_keys.push_back(slot.first);
        break;
      }
    }
  }
  std::sort(expired_keys.begin(), expired_keys.end());
  for (KeywordId kw : expired_keys) {
    auto it = rt.store.find(kw);
    dht::StoreList& list = it->second;
    dht::StoredProvider* keep = list.begin();
    for (dht::StoredProvider& sp : list) {
      if (sp.expires_at > now) *keep++ = sp;
    }
    list.erase(keep, list.end());
    if (list.empty()) rt.store.erase(it);
  }

  // Sweep lookup sessions whose outcome no longer matters: the query's
  // deadline has long passed (or the store route died en route).
  std::vector<uint64_t> stale;
  for (const auto& slot : rt.lookups) {
    if (slot.second.started_at + 2 * config_.params.query_deadline < now) {
      stale.push_back(slot.first);
    }
  }
  std::sort(stale.begin(), stale.end());
  for (uint64_t session : stale) rt.lookups.erase(session);
}

void Engine::DhtStabilize(PeerId p) {
  const sim::SimTime now = sim_->Now();
  dht::ComputeTables(dht_ring_, p, config_.params.dht_successors,
                     config_.params.dht_fingers,
                     [&](PeerId c) { return churn_timeline_.IsOnlineAt(c, now); },
                     node(p).dht.get());
}

void Engine::DhtPublish(PeerId p) {
  const NodeState& n = node(p);
  for (FileId f : n.file_store) {
    for (KeywordId kw : catalog_.sorted_keywords(f)) {
      StartDhtStore(p, kw, f);
    }
  }
}

}  // namespace locaware::core
