#include "core/dht_protocol.h"

#include "core/engine.h"

namespace locaware::core {

PeerVec DhtProtocol::ForwardTargets(Engine& /*engine*/, PeerId /*node*/,
                                    const overlay::QueryMessage& /*query*/,
                                    PeerId /*from*/) {
  return {};
}

void DhtProtocol::ObserveResponse(Engine& /*engine*/, PeerId /*node*/,
                                  const overlay::ResponseMessage& /*response*/) {}

overlay::RecordVec DhtProtocol::AnswerFromIndex(Engine& /*engine*/, PeerId /*node*/,
                                                const overlay::QueryMessage& /*query*/) {
  return {};
}

void DhtProtocol::OnQuerySubmitted(Engine& engine, const overlay::QueryMessage& query,
                                   size_t /*fanout*/) {
  engine.StartDhtQueryLookup(query, /*count_as_escalation=*/false);
}

}  // namespace locaware::core
