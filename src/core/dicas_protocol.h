// Dicas (Wang et al., TPDS 2006 — the paper's reference [16] and its main
// baseline), reimplemented from the rules in paper §3.2/§4.2:
//   * caching: a passing response for file f is cached only by reverse-path
//     peers whose Gid == hash(f) mod M (eq. 1), one provider per index;
//   * routing: a query goes to neighbors whose Gid matches the query's hash,
//     falling back to one random neighbor so forwarding never blocks.
// The filename hash is computed over canonically ordered keywords, so a
// keyword query only lands in the right group when it carries *all* keywords
// of the filename — the keyword-search weakness the paper exploits.
#pragma once

#include "core/node_state.h"
#include "core/protocol.h"

namespace locaware::core {

class DicasProtocol : public Protocol {
 public:
  using Protocol::Protocol;

  ProtocolKind kind() const override { return ProtocolKind::kDicas; }
  const char* name() const override { return "Dicas"; }

  PeerVec ForwardTargets(Engine& engine, PeerId node,
                         const overlay::QueryMessage& query,
                         PeerId from) override;
  void ObserveResponse(Engine& engine, PeerId node,
                       const overlay::ResponseMessage& response) override;
  overlay::RecordVec AnswerFromIndex(
      Engine& engine, PeerId node, const overlay::QueryMessage& query) override;

 protected:
  /// Groups a query routes toward. Dicas: the whole-query hash (precomputed
  /// as the message's canonical set hash).
  virtual GroupVec QueryGroups(Engine& engine,
                               const overlay::QueryMessage& query) const;
  /// Groups a passing response for `file` is cached under. Dicas hashes the
  /// whole filename (the catalog's precomputed set hash); Dicas-Keys hashes
  /// the *query's* keywords (the duplication + placement-mismatch weakness
  /// the paper describes).
  virtual GroupVec CacheGroups(Engine& engine,
                               const overlay::ResponseMessage& response,
                               FileId file) const;

  /// Whether a cached index for `file` can answer this query. Dicas is
  /// "designed for filename search" (§5.1): the index is keyed by the whole
  /// filename, so a lookup succeeds only when the query carries the
  /// *complete* keyword set. Partial keyword queries walk straight past
  /// Dicas caches — the weakness Locaware's Bloom routing fixes.
  virtual bool HitVisible(Engine& engine, const NodeState& node, FileId file,
                          const overlay::QueryMessage& query) const;
};

}  // namespace locaware::core
