// Per-peer protocol state. One NodeState per participant, owned by the
// Engine; protocols mutate it through their hooks.
#pragma once

#include <memory>

#include "bloom/bloom_filter.h"
#include "bloom/counting_bloom.h"
#include "cache/response_index.h"
#include "common/flat_map.h"
#include "common/small_vector.h"
#include "common/types.h"
#include "dht/routing.h"

namespace locaware::core {

/// All state a peer carries. The Bloom-filter members are populated only for
/// Locaware; they stay null under the other protocols.
struct NodeState {
  PeerId id = kInvalidPeer;
  LocId loc_id = 0;   ///< landmark-ordering location id (§4.1.1)
  GroupId gid = 0;    ///< Dicas group id, uniform in [0, M) (§3.2)

  /// Files this peer shares: the initial 3 plus everything it downloads
  /// ("the requesting peer ... becomes a provider pf", §3.1). Inline for the
  /// initial placement; downloads spill into the owner shard's arena (the
  /// engine binds it at setup).
  SmallVector<FileId, 4> file_store;

  /// The response index RI_n. Null for Flooding (which never caches).
  std::unique_ptr<cache::ResponseIndex> ri;

  // --- Locaware only (§4.2) ---
  /// Local deletable summary of RI keywords; its plain projection is what
  /// neighbors receive.
  std::unique_ptr<bloom::CountingBloomFilter> keyword_filter;
  /// Last projection actually gossiped; deltas are computed against it.
  std::unique_ptr<bloom::BloomFilter> advertised_filter;
  /// Our copy of each neighbor's advertised filter. Flat tables (one
  /// allocation, arena-bound at setup); iteration is table order, so
  /// order-sensitive walks must collect-and-sort (common/flat_map.h).
  FlatMap<PeerId, bloom::BloomFilter> neighbor_filters;
  /// Neighbors' group ids as learned at link establishment ("neighboring
  /// peers exchange their group Ids as well as their Bloom filters").
  FlatMap<PeerId, GroupId> neighbor_gids;

  // --- Chord DHT only (dht / hybrid protocols) ---
  /// Successor list, finger table, owned store and in-flight lookups. Null
  /// under the four unstructured protocols.
  std::unique_ptr<dht::RoutingState> dht;

  // --- churn (message-routed link lifecycle) ---
  /// Neighbor degree as announced in the last link handshake. Under churn,
  /// remote adjacency is unreadable (shard-partitioned), so degree-ranked
  /// forwarding uses these possibly stale hints — the knowledge a real peer
  /// would actually have.
  FlatMap<PeerId, uint32_t> neighbor_degree;
  /// Count of link-probe rounds this peer has started; keys the candidate
  /// draw (DecisionRng) so every round has a unique, shard-count-invariant
  /// stream.
  uint64_t link_round = 0;

  // --- message plumbing ---
  /// Query GUIDs already seen (duplicate suppression).
  FlatSet<QueryId> seen_queries;
  /// Reverse-path routing: query GUID -> the neighbor it arrived from.
  FlatMap<QueryId, PeerId> reverse_path;

  /// Convenience: does this peer share a file (linear scan; stores are tiny).
  bool SharesFile(FileId f) const {
    for (FileId mine : file_store) {
      if (mine == f) return true;
    }
    return false;
  }
};

}  // namespace locaware::core
