// Pooled, intrusively refcounted query payloads for the forward fan-out.
//
// Every forwarded query hop used to mint a std::make_shared<QueryMessage>:
// one heap allocation for the control block + payload, freed when the last
// delivery event ran — the single remaining per-event allocation on the storm
// path after PR 7 inlined the event closures. This pool replaces it with
// slab-recycled nodes (the event queue's slab idiom, sim/event_queue.h):
// a node holds the message inline next to its refcount, a QueryPayloadRef is
// one pointer (copies bump the count, the last destruction returns the node
// to a lock-free free list), and a recycled node's message keeps its keyword
// SmallVector capacity, so steady-state fan-out performs ZERO allocations.
//
// Thread safety: a payload is written by the source shard's worker, then read
// by every destination shard's worker, and the last Ref may die on any of
// them. Hence the shared_ptr discipline on the count (fetch_sub acq_rel, so
// the thread that frees observes every other thread's last use) and a tagged
// Treiber stack for the free list (the tag makes CAS ABA-safe; node indices
// keep the head word to 64 bits). Message *content* needs no further
// synchronization: it is written before the refs are handed out, and the
// cross-shard event handoff orders that write before any reader, exactly as
// it did for the shared_ptr payloads.
//
// Provenance contract: nodes live in pool-owned slabs (geometrically sized,
// published through atomic chunk pointers so readers never lock) and are
// never returned to the OS until the pool dies — the same wholesale-release
// rule as the arenas and the event slab. The pool must outlive every Ref;
// the Engine declares it before the simulator so queued closures die first.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>

#include "common/check.h"
#include "overlay/message.h"

namespace locaware::core {

class QueryPayloadPool;

/// \brief Shared handle to a pooled, immutable-after-publish query message.
///
/// Copy = refcount bump, 8 bytes — cheap enough to capture per fan-out
/// target. `mutable_msg()` is for the producing hop only, before the first
/// copy is handed out; after that the payload is read-only by convention.
class QueryPayloadRef {
 public:
  QueryPayloadRef() = default;

  QueryPayloadRef(const QueryPayloadRef& other) : node_(other.node_) {
    if (node_ != nullptr) {
      node_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  QueryPayloadRef(QueryPayloadRef&& other) noexcept : node_(other.node_) {
    other.node_ = nullptr;
  }

  QueryPayloadRef& operator=(const QueryPayloadRef& other) {
    if (this != &other) {
      QueryPayloadRef copy(other);  // bump first: safe under self-aliasing
      Drop();
      node_ = copy.node_;
      copy.node_ = nullptr;
    }
    return *this;
  }

  QueryPayloadRef& operator=(QueryPayloadRef&& other) noexcept {
    if (this != &other) {
      Drop();
      node_ = other.node_;
      other.node_ = nullptr;
    }
    return *this;
  }

  ~QueryPayloadRef() { Drop(); }

  explicit operator bool() const { return node_ != nullptr; }

  const overlay::QueryMessage& operator*() const { return node_->msg; }
  const overlay::QueryMessage* operator->() const { return &node_->msg; }

  /// Producer-side access for the hop mutation (ttl/hops) between Acquire
  /// and the first share. Do not call once copies exist.
  overlay::QueryMessage* mutable_msg() { return &node_->msg; }

 private:
  friend class QueryPayloadPool;

  struct Node {
    overlay::QueryMessage msg;
    QueryPayloadPool* owner = nullptr;
    std::atomic<uint32_t> refs{0};
    uint32_t self_idx = 0;               ///< global node index (free-list key)
    std::atomic<uint32_t> next_free{0};  ///< successor idx + 1; 0 = list end
  };

  explicit QueryPayloadRef(Node* node) : node_(node) {}

  inline void Drop();

  Node* node_ = nullptr;
};

/// \brief Slab allocator + lock-free free list for query payload nodes.
class QueryPayloadPool {
 public:
  QueryPayloadPool() = default;

  QueryPayloadPool(const QueryPayloadPool&) = delete;
  QueryPayloadPool& operator=(const QueryPayloadPool&) = delete;

  ~QueryPayloadPool() {
    for (auto& chunk : chunks_) {
      delete[] chunk.load(std::memory_order_relaxed);
    }
  }

  /// Returns a node holding a copy of `src` with refcount 1. Recycles a
  /// freed node when one is available (its message buffers are reused:
  /// copy-assignment into retained SmallVector capacity allocates nothing);
  /// grows a new slab otherwise.
  QueryPayloadRef Acquire(const overlay::QueryMessage& src) {
    Node* node = PopFree();
    if (node == nullptr) node = AllocateNode();
    node->msg = src;
    node->refs.store(1, std::memory_order_relaxed);
    return QueryPayloadRef(node);
  }

  /// Nodes ever created (slab occupancy; for tests and bench counters).
  size_t capacity() const { return total_nodes_.load(std::memory_order_relaxed); }

 private:
  friend class QueryPayloadRef;

  using Node = QueryPayloadRef::Node;

  /// Chunk c holds kBaseChunk << c nodes; 20 chunks cap out at ~67M in
  /// flight, far beyond any workload (fan-out in flight is bounded by the
  /// event queue's depth).
  static constexpr size_t kBaseChunk = 64;
  static constexpr size_t kMaxChunks = 20;

  /// Global index -> chunk/slot. Chunk starts are kBaseChunk * (2^c - 1), so
  /// the chunk of index i is bit_width(i / kBaseChunk + 1) - 1.
  Node* NodeAt(uint32_t idx) const {
    const uint32_t c = static_cast<uint32_t>(
        std::bit_width((idx / kBaseChunk) + 1) - 1);
    const uint32_t start = static_cast<uint32_t>(kBaseChunk * ((1u << c) - 1));
    Node* chunk = chunks_[c].load(std::memory_order_acquire);
    return chunk + (idx - start);
  }

  /// Treiber pop. Head word = (tag << 32) | (top index + 1); tag increments
  /// on every successful CAS, so a pop cannot mistake a recycled head for an
  /// unchanged one (ABA).
  Node* PopFree() {
    uint64_t head = free_head_.load(std::memory_order_acquire);
    while (true) {
      const uint32_t idx_plus1 = static_cast<uint32_t>(head);
      if (idx_plus1 == 0) return nullptr;
      Node* node = NodeAt(idx_plus1 - 1);
      const uint32_t next = node->next_free.load(std::memory_order_relaxed);
      const uint64_t want = ((head >> 32) + 1) << 32 | next;
      if (free_head_.compare_exchange_weak(head, want,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        return node;
      }
    }
  }

  /// Treiber push; called by the last Ref's destructor on whatever thread
  /// that happens to be.
  void PushFree(Node* node) {
    uint64_t head = free_head_.load(std::memory_order_relaxed);
    while (true) {
      node->next_free.store(static_cast<uint32_t>(head),
                            std::memory_order_relaxed);
      const uint64_t want = ((head >> 32) + 1) << 32 | (node->self_idx + 1);
      if (free_head_.compare_exchange_weak(head, want,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Slow path: grow one slab under the mutex, keep the first node, push the
  /// rest. Concurrent growers serialize; concurrent Acquires may consume the
  /// pushed nodes immediately — that is fine, they were free.
  Node* AllocateNode() {
    std::lock_guard<std::mutex> lock(grow_mutex_);
    // Another grower may have refilled the list while we waited.
    if (Node* node = PopFree(); node != nullptr) return node;
    const size_t c = num_chunks_;
    LOCAWARE_CHECK_LT(c, kMaxChunks) << "query payload pool exhausted";
    const size_t count = kBaseChunk << c;
    const uint32_t start = static_cast<uint32_t>(kBaseChunk * ((1u << c) - 1));
    Node* chunk = new Node[count];
    for (size_t i = 0; i < count; ++i) {
      chunk[i].owner = this;
      chunk[i].self_idx = start + static_cast<uint32_t>(i);
    }
    chunks_[c].store(chunk, std::memory_order_release);
    num_chunks_ = c + 1;
    total_nodes_.fetch_add(count, std::memory_order_relaxed);
    for (size_t i = 1; i < count; ++i) PushFree(&chunk[i]);
    return &chunk[0];
  }

  std::atomic<uint64_t> free_head_{0};  ///< (tag << 32) | (top idx + 1)
  std::atomic<Node*> chunks_[kMaxChunks] = {};
  std::atomic<size_t> total_nodes_{0};
  size_t num_chunks_ = 0;  ///< guarded by grow_mutex_
  std::mutex grow_mutex_;
};

inline void QueryPayloadRef::Drop() {
  if (node_ == nullptr) return;
  // shared_ptr's discipline: acq_rel on the decrement, so the thread that
  // recycles the node observes every other thread's final reads.
  if (node_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    node_->owner->PushFree(node_);
  }
  node_ = nullptr;
}

}  // namespace locaware::core
