#include "core/dicas_keys_protocol.h"

#include "common/check.h"
#include "core/engine.h"
#include "core/group_hash.h"
#include "core/node_state.h"

namespace locaware::core {

GroupVec DicasKeysProtocol::QueryGroups(
    Engine& engine, const overlay::QueryMessage& query) const {
  // Route toward the group of ONE query keyword — the message's designated
  // route_kw (the first *sampled* keyword, i.e. a uniform pick over the
  // set). Routing to every keyword's group would flood whole subgroups,
  // which contradicts the paper's Fig. 3 where all Dicas variants produce
  // equally tiny traffic. No fallback to keywords.front(): the message list
  // is sorted, so that pick would be the minimum id — a silently biased
  // router. A message with keywords but no route_kw is a construction bug.
  if (query.keywords.empty()) return {};
  LOCAWARE_CHECK(query.route_kw != kInvalidKeyword)
      << "QueryMessage.route_kw unset (SubmitQuery/MakeQuery must assign it)";
  return {GroupOfKeywordFnv(engine.catalog().KeywordFnv(query.route_kw),
                            params_.num_groups)};
}

GroupVec DicasKeysProtocol::CacheGroups(
    Engine& engine, const overlay::ResponseMessage& response,
    FileId /*file*/) const {
  // "Caching indexes based on hashing query keywords instead of the whole
  // filename" (§2): placement follows the keywords of the query that produced
  // the response. Duplicated across that query's keyword groups, and
  // misplaced with respect to later queries that use other keyword subsets.
  const catalog::FileCatalog& catalog = engine.catalog();
  return KeywordGroupsOfIds<GroupVec>(
      response.query_keywords,
      [&](KeywordId kw) { return catalog.KeywordFnv(kw); }, params_.num_groups);
}

bool DicasKeysProtocol::HitVisible(Engine& engine, const NodeState& node,
                                   FileId /*file*/,
                                   const overlay::QueryMessage& query) const {
  // The keyword-hash index is keyed by keyword: a lookup hashes the query's
  // keywords, so an entry is reachable only at nodes whose group one of the
  // query keywords points to. Entries cached under *other* keywords of the
  // same file are invisible — the placement/lookup mismatch of keyword
  // hashing.
  for (KeywordId kw : query.keywords) {
    if (GroupOfKeywordFnv(engine.catalog().KeywordFnv(kw), params_.num_groups) ==
        node.gid) {
      return true;
    }
  }
  return false;
}

}  // namespace locaware::core
