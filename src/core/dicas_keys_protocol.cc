#include "core/dicas_keys_protocol.h"

#include "core/group_hash.h"
#include "core/node_state.h"

namespace locaware::core {

std::vector<GroupId> DicasKeysProtocol::QueryGroups(
    const std::vector<std::string>& query_keywords) const {
  // Route toward the group of ONE query keyword (the first — keyword order
  // is random in the workload, so this is a uniform pick). Routing to every
  // keyword's group would flood whole subgroups, which contradicts the
  // paper's Fig. 3 where all Dicas variants produce equally tiny traffic.
  if (query_keywords.empty()) return {};
  return {GroupOfKeyword(query_keywords.front(), params_.num_groups)};
}

std::vector<GroupId> DicasKeysProtocol::CacheGroups(
    const overlay::ResponseMessage& response,
    const std::vector<std::string>& /*filename_keywords*/) const {
  // "Caching indexes based on hashing query keywords instead of the whole
  // filename" (§2): placement follows the keywords of the query that produced
  // the response. Duplicated across that query's keyword groups, and
  // misplaced with respect to later queries that use other keyword subsets.
  return KeywordGroups(response.query_keywords, params_.num_groups);
}

bool DicasKeysProtocol::HitVisible(const NodeState& node,
                                   const std::vector<std::string>& /*hit_keywords*/,
                                   const overlay::QueryMessage& query) const {
  // The keyword-hash index is keyed by keyword: a lookup hashes the query's
  // keywords, so an entry is reachable only at nodes whose group one of the
  // query keywords points to. Entries cached under *other* keywords of the
  // same file are invisible — the placement/lookup mismatch of keyword
  // hashing.
  for (const std::string& kw : query.keywords) {
    if (GroupOfKeyword(kw, params_.num_groups) == node.gid) return true;
  }
  return false;
}

}  // namespace locaware::core
