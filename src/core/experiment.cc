#include "core/experiment.h"

#include "core/engine.h"

namespace locaware::core {

ExperimentConfig MakePaperConfig(ProtocolKind kind, uint64_t num_queries,
                                 uint64_t seed) {
  ExperimentConfig config;
  config.label = ProtocolKindName(kind);
  config.protocol = kind;
  config.params = MakeDefaultParams(kind);
  config.workload.num_queries = num_queries;
  config.seed = seed;
  // Everything else already defaults to the paper's §5.1 values: 1000 peers,
  // degree 3, 4 landmarks, 3000 files / 9000 keywords / 3 kw per file,
  // 3 files per peer, Zipf(1.0), 0.00083 q/s/peer, TTL 7, 1200-bit filters.
  return config;
}

Result<ExperimentResult> RunExperiment(const ExperimentConfig& config,
                                       size_t num_buckets) {
  auto built = Engine::Create(config);
  if (!built.ok()) return built.status();
  std::unique_ptr<Engine> engine = std::move(built).ValueOrDie();

  engine->Run();

  ExperimentResult result;
  result.label = config.label.empty() ? ProtocolKindName(config.protocol) : config.label;
  result.summary = metrics::Summarize(engine->metrics());
  result.series = metrics::Bucketize(engine->metrics().records(), num_buckets);
  result.records = engine->metrics().records();
  return result;
}

}  // namespace locaware::core
