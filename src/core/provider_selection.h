// Provider selection: which of the offered replicas the requester downloads
// from. Locaware's strategy (paper §4.1.2 + the §5.1 adjustment): take a
// provider in the requester's own locality if one was returned, otherwise
// probe the RTT to every candidate and take the closest.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "core/protocol_params.h"
#include "net/underlay.h"

namespace locaware::core {

/// A distinct provider offered to the requester, in offer-arrival order
/// (within a record: most recent first — the ResponseIndex guarantee).
struct Candidate {
  PeerId provider = kInvalidPeer;
  LocId loc_id = 0;          ///< locId as carried in the response
  bool from_index = false;   ///< offered by a cached index (vs a file store)
  PeerId responder = kInvalidPeer;  ///< peer whose response offered this candidate
  FileId file = kInvalidFile;       ///< the matching file this provider serves
};

/// Outcome of a selection.
struct SelectionOutcome {
  /// Index into the candidate vector; always valid (callers never pass an
  /// empty candidate list).
  size_t chosen = 0;
  /// RTT probe traffic incurred (2 messages per probed candidate).
  uint64_t probe_msgs = 0;
};

/// Applies `strategy` to non-empty `candidates` (any contiguous candidate
/// storage — the engine passes a SmallVector). CHECK-fails on empty input.
SelectionOutcome SelectProvider(SelectionStrategy strategy,
                                std::span<const Candidate> candidates,
                                PeerId requester, LocId requester_loc,
                                const net::Underlay& underlay, Rng* rng);

}  // namespace locaware::core
