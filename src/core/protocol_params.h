// Protocol selection and tunables shared by the search/caching systems.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "cache/response_index.h"
#include "sim/sim_time.h"

namespace locaware::core {

/// The four systems the paper evaluates (§5.1) plus the PR 10 structured
/// extensions (src/dht/).
enum class ProtocolKind {
  kFlooding,   ///< blind Gnutella flooding, no caching
  kDicas,      ///< Dicas [16]: filename-hash groups, single-provider indexes
  kDicasKeys,  ///< Dicas-Keys [16]: per-keyword-hash groups (duplicating)
  kLocaware,   ///< the paper's contribution (§4)
  kDht,        ///< pure Chord-style keyword->provider lookups (src/dht/)
  kHybrid,     ///< Locaware cache first, DHT escalation on an index miss
};

const char* ProtocolKindName(ProtocolKind kind);

/// Every registered protocol kind, in registry order (the paper's four, then
/// the structured extensions). Benches/examples that sweep "all protocols"
/// iterate this instead of hard-coding the list.
std::span<const ProtocolKind> AllProtocolKinds();

/// How a requester picks a provider among the candidates its responses offer.
enum class SelectionStrategy {
  /// Locaware §5.1: a provider with the requester's own locId if any;
  /// otherwise probe RTT to every candidate and take the smallest.
  kLocIdThenRtt,
  /// Probe everything, take the minimum RTT (location-awareness upper bound).
  kMinRtt,
  /// Uniform random candidate — the location-oblivious baseline behaviour.
  kRandom,
  /// First provider of the first response that arrived.
  kFirstResponder,
};

const char* SelectionStrategyName(SelectionStrategy strategy);

/// Tunables. Defaults reproduce the paper's §5.1 setup.
struct ProtocolParams {
  /// Query TTL (paper: 7).
  uint32_t ttl = 7;

  /// Dicas group count M (eq. 1). The paper never states it; 4 keeps the
  /// expected matching-neighbor count near 1 at average degree 3.
  uint16_t num_groups = 4;

  /// How many fallback neighbors carry a query onward when no neighbor
  /// matches the routing rule (random ones for Dicas, highest-degree for
  /// Locaware). 1 is the papers' literal wording, but on a degree-3 overlay
  /// a single fallback degenerates into a short random walk that duplicate
  /// suppression kills; 2 keeps the query alive (see EXPERIMENTS.md).
  size_t fallback_fanout = 2;

  /// Bloom filter shape (paper: 1200 bits for ~50 filenames × 3 keywords).
  size_t bloom_bits = 1200;
  size_t bloom_hashes = 4;

  /// Period of per-node maintenance (Bloom delta gossip, index expiry). The
  /// paper piggybacks filter deltas "along with any data exchange between
  /// neighbors", i.e. near-continuous propagation; 10 s keeps neighbor
  /// filters fresh at the paper's query rate without modelling piggybacking.
  sim::SimTime maintenance_interval = 10 * sim::kSecond;

  /// How long a requester collects responses before picking a provider.
  /// TTL 7 × max one-way 250 ms out plus back is < 4 s; 5 s is safely past it.
  sim::SimTime query_deadline = 5 * sim::kSecond;

  /// Max providers a response record carries back (Locaware sends the
  /// locId-matching entry plus a few recent others, §4.1.2).
  size_t max_response_providers = 3;

  /// Response-index shape. Locaware keeps several providers per filename;
  /// Dicas variants are forced to 1 by MakeDefaultParams.
  cache::ResponseIndexConfig ri;

  /// Provider selection; nullopt = the protocol's own default
  /// (Locaware → kLocIdThenRtt, everything else → kRandom).
  std::optional<SelectionStrategy> selection;

  /// Ablation switch: when false, Locaware stops advertising the requester as
  /// a new provider (disabling §4.1.2's natural-replication leverage).
  bool requester_becomes_provider = true;

  /// Extension (paper §6 future work): "investigate location-aware query
  /// routing in unstructured systems". When enabled, Locaware biases each
  /// forwarding tier toward neighbors in the *requester's* locality, steering
  /// walks to regions whose file stores and caches are close to the
  /// requester. Off by default — the paper's evaluated system does not route
  /// by location.
  bool loc_aware_routing = false;

  /// Chord DHT shape (kDht/kHybrid only; inert for the paper's four).
  /// Successor-list length: how many online clockwise neighbors a peer
  /// tracks. 4 survives the default churn model's correlated departures.
  size_t dht_successors = 4;
  /// Finger-table size: the top `dht_fingers` finger indices (targets
  /// self + 2^i for i in [64 - dht_fingers, 64)). 24 covers distinct
  /// fingers for populations up to ~2^24 peers.
  size_t dht_fingers = 24;
  /// Provider-record re-publish period; owners hold records for twice this,
  /// so a dead publisher's records expire after at most two intervals.
  sim::SimTime dht_republish_interval = 600 * sim::kSecond;
};

/// Paper-faithful parameter defaults for a protocol kind (e.g. Dicas keeps a
/// single provider per cached filename, Locaware several).
ProtocolParams MakeDefaultParams(ProtocolKind kind);

}  // namespace locaware::core
