#include "core/protocol.h"

#include "common/check.h"
#include "core/dht_protocol.h"
#include "core/dicas_keys_protocol.h"
#include "core/dicas_protocol.h"
#include "core/engine.h"
#include "core/flooding_protocol.h"
#include "core/hybrid_protocol.h"
#include "core/locaware_protocol.h"

namespace locaware::core {

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kFlooding:
      return "Flooding";
    case ProtocolKind::kDicas:
      return "Dicas";
    case ProtocolKind::kDicasKeys:
      return "Dicas-Keys";
    case ProtocolKind::kLocaware:
      return "Locaware";
    case ProtocolKind::kDht:
      return "DHT";
    case ProtocolKind::kHybrid:
      return "Hybrid";
  }
  return "?";
}

std::span<const ProtocolKind> AllProtocolKinds() {
  static constexpr ProtocolKind kAll[] = {
      ProtocolKind::kFlooding, ProtocolKind::kDicas, ProtocolKind::kDicasKeys,
      ProtocolKind::kLocaware, ProtocolKind::kDht,   ProtocolKind::kHybrid,
  };
  return kAll;
}

const char* SelectionStrategyName(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kLocIdThenRtt:
      return "locid-then-rtt";
    case SelectionStrategy::kMinRtt:
      return "min-rtt";
    case SelectionStrategy::kRandom:
      return "random";
    case SelectionStrategy::kFirstResponder:
      return "first-responder";
  }
  return "?";
}

ProtocolParams MakeDefaultParams(ProtocolKind kind) {
  ProtocolParams params;
  switch (kind) {
    case ProtocolKind::kFlooding:
      // No caching: the RI config is unused (nodes carry no index).
      break;
    case ProtocolKind::kDicas:
    case ProtocolKind::kDicasKeys:
      // Dicas indexes hold a single provider per filename (§4.1.2: "the
      // response index in Locaware has for each file more possibilities of
      // providers than in Dicas and Dicas-keys").
      params.ri.max_providers_per_file = 1;
      break;
    case ProtocolKind::kLocaware:
      params.ri.max_providers_per_file = 8;
      break;
    case ProtocolKind::kDht:
      // Pure structured lookup: no response index at all.
      break;
    case ProtocolKind::kHybrid:
      // The unstructured half is Locaware's cache, same shape.
      params.ri.max_providers_per_file = 8;
      break;
  }
  return params;
}

void Protocol::OnMaintenanceTick(Engine& engine, PeerId node) {
  NodeState& state = engine.node(node);
  if (state.ri != nullptr) {
    state.ri->ExpireStale(engine.Now());
  }
}

void Protocol::OnBloomUpdate(Engine& /*engine*/, PeerId /*node*/,
                             const overlay::BloomUpdateMessage& /*update*/) {}

void Protocol::OnLinkUp(Engine& /*engine*/, PeerId /*a*/, PeerId /*b*/) {}

void Protocol::OnLinkDown(Engine& /*engine*/, PeerId /*a*/, PeerId /*b*/) {}

void Protocol::OnNeighborUp(Engine& /*engine*/, PeerId /*node*/,
                            const overlay::LinkAnnounce& /*peer*/) {}

void Protocol::OnPeerDeparted(Engine& engine, PeerId node, PeerId departed) {
  NodeState& state = engine.node(node);
  if (state.ri != nullptr) state.ri->RemoveProvider(departed);
}

void Protocol::OnQuerySubmitted(Engine& /*engine*/,
                                const overlay::QueryMessage& /*query*/,
                                size_t /*fanout*/) {}

std::unique_ptr<Protocol> MakeProtocol(ProtocolKind kind, const ProtocolParams& params) {
  switch (kind) {
    case ProtocolKind::kFlooding:
      return std::make_unique<FloodingProtocol>(params);
    case ProtocolKind::kDicas:
      return std::make_unique<DicasProtocol>(params);
    case ProtocolKind::kDicasKeys:
      return std::make_unique<DicasKeysProtocol>(params);
    case ProtocolKind::kLocaware:
      return std::make_unique<LocawareProtocol>(params);
    case ProtocolKind::kDht:
      return std::make_unique<DhtProtocol>(params);
    case ProtocolKind::kHybrid:
      return std::make_unique<HybridProtocol>(params);
  }
  LOCAWARE_CHECK(false) << "unknown protocol kind";
  return nullptr;
}

}  // namespace locaware::core
