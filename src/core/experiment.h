// One-call experiment runner: build an Engine from a config, run the full
// workload, and return the metrics the paper's figures are made of.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/experiment_config.h"
#include "metrics/metrics.h"
#include "metrics/report.h"

namespace locaware::core {

/// Everything a figure bench needs from one run.
struct ExperimentResult {
  std::string label;
  metrics::Summary summary;
  /// Metrics bucketed over the query sequence (the figures' x-axis).
  std::vector<metrics::BucketPoint> series;
  /// Raw per-query records, for custom slicing (popularity bands, hop depth,
  /// latency percentiles, ...).
  std::vector<metrics::QueryRecord> records;
};

/// Runs `config` to completion. `num_buckets` controls the x-axis resolution
/// of the returned series.
Result<ExperimentResult> RunExperiment(const ExperimentConfig& config,
                                       size_t num_buckets = 10);

}  // namespace locaware::core
