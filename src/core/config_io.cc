#include "core/config_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json_writer.h"
#include "common/string_util.h"

namespace locaware::core {

namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// One parsed `key = value` line.
struct KeyValue {
  std::string key;
  std::string value;
};

Result<KeyValue> ParseLine(const std::string& line, size_t lineno) {
  const size_t eq = line.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("line " + std::to_string(lineno) +
                                   ": expected 'key = value'");
  }
  auto trim = [](std::string s) {
    const size_t begin = s.find_first_not_of(" \t");
    if (begin == std::string::npos) return std::string();
    const size_t end = s.find_last_not_of(" \t");
    return s.substr(begin, end - begin + 1);
  };
  KeyValue kv;
  kv.key = trim(line.substr(0, eq));
  kv.value = trim(line.substr(eq + 1));
  if (kv.key.empty() || kv.value.empty()) {
    return Status::InvalidArgument("line " + std::to_string(lineno) +
                                   ": empty key or value");
  }
  return kv;
}

Result<uint64_t> ParseU64(const KeyValue& kv) {
  char* end = nullptr;
  const uint64_t v = std::strtoull(kv.value.c_str(), &end, 10);
  if (end == kv.value.c_str() || *end != '\0') {
    return Status::InvalidArgument(kv.key + ": '" + kv.value + "' is not an integer");
  }
  return v;
}

Result<double> ParseF64(const KeyValue& kv) {
  char* end = nullptr;
  const double v = std::strtod(kv.value.c_str(), &end);
  if (end == kv.value.c_str() || *end != '\0') {
    return Status::InvalidArgument(kv.key + ": '" + kv.value + "' is not a number");
  }
  return v;
}

Result<bool> ParseBool(const KeyValue& kv) {
  const std::string v = ToLower(kv.value);
  if (v == "true" || v == "1" || v == "on") return true;
  if (v == "false" || v == "0" || v == "off") return false;
  return Status::InvalidArgument(kv.key + ": '" + kv.value + "' is not a bool");
}

}  // namespace

Result<ProtocolKind> ParseProtocolKind(const std::string& name) {
  const std::string v = ToLower(name);
  if (v == "flooding") return ProtocolKind::kFlooding;
  if (v == "dicas") return ProtocolKind::kDicas;
  if (v == "dicas-keys" || v == "dicaskeys") return ProtocolKind::kDicasKeys;
  if (v == "locaware") return ProtocolKind::kLocaware;
  if (v == "dht") return ProtocolKind::kDht;
  if (v == "hybrid") return ProtocolKind::kHybrid;
  return Status::InvalidArgument("unknown protocol '" + name + "'");
}

Result<SelectionStrategy> ParseSelectionStrategy(const std::string& name) {
  const std::string v = ToLower(name);
  if (v == "locid-then-rtt") return SelectionStrategy::kLocIdThenRtt;
  if (v == "min-rtt") return SelectionStrategy::kMinRtt;
  if (v == "random") return SelectionStrategy::kRandom;
  if (v == "first-responder") return SelectionStrategy::kFirstResponder;
  return Status::InvalidArgument("unknown selection strategy '" + name + "'");
}

Result<sim::PlacementStrategy> ParsePlacementStrategy(const std::string& name) {
  const std::string v = ToLower(name);
  if (v == "modulo") return sim::PlacementStrategy::kModulo;
  if (v == "clustered") return sim::PlacementStrategy::kClustered;
  return Status::InvalidArgument("unknown placement strategy '" + name + "'");
}

std::string FormatConfig(const ExperimentConfig& c) {
  std::ostringstream out;
  out << "# locaware experiment configuration (key = value)\n";
  out << "label = " << (c.label.empty() ? std::string(ProtocolKindName(c.protocol))
                                        : c.label)
      << "\n";
  out << "protocol = " << ToLower(ProtocolKindName(c.protocol)) << "\n";
  out << "seed = " << c.seed << "\n";
  out << "\n# parallel scheduler (wall-clock only: results never depend on it)\n";
  out << "scheduler.shards = " << c.scheduler.shards << "\n";
  out << "scheduler.workers = " << c.scheduler.workers << "\n";
  out << "scheduler.work_stealing = "
      << (c.scheduler.work_stealing ? "true" : "false") << "\n";
  out << "scheduler.placement = "
      << sim::PlacementStrategyName(c.scheduler.placement) << "\n";
  if (c.scheduler.event_reserve_hint != 0) {
    out << "scheduler.event_reserve_hint = " << c.scheduler.event_reserve_hint
        << "\n";
  }
  out << "\n# network\n";
  out << "num_peers = " << c.num_peers << "\n";
  out << "avg_degree = " << FormatDouble(c.avg_degree) << "\n";
  out << "num_landmarks = " << c.num_landmarks << "\n";
  out << "use_uniform_underlay = " << (c.use_uniform_underlay ? "true" : "false")
      << "\n";
  out << "underlay.num_routers = " << c.underlay.num_routers << "\n";
  out << "underlay.model = " << net::RouterGraphModelName(c.underlay.model) << "\n";
  out << "underlay.min_rtt_ms = " << FormatDouble(c.underlay.min_rtt_ms) << "\n";
  out << "underlay.max_rtt_ms = " << FormatDouble(c.underlay.max_rtt_ms) << "\n";
  out << "\n# content & workload\n";
  out << "files_per_peer = " << c.files_per_peer << "\n";
  out << "catalog.num_files = " << c.catalog.num_files << "\n";
  out << "catalog.keyword_pool_size = " << c.catalog.keyword_pool_size << "\n";
  out << "catalog.keywords_per_file = " << c.catalog.keywords_per_file << "\n";
  out << "workload.num_queries = " << c.workload.num_queries << "\n";
  out << "workload.zipf_exponent = " << FormatDouble(c.workload.zipf_exponent) << "\n";
  out << "workload.query_rate_per_peer_s = "
      << FormatDouble(c.workload.query_rate_per_peer_s) << "\n";
  out << "workload.min_query_keywords = " << c.workload.min_query_keywords << "\n";
  out << "workload.max_query_keywords = " << c.workload.max_query_keywords << "\n";
  if (!c.trace_path.empty()) out << "trace_path = " << c.trace_path << "\n";
  out << "\n# churn\n";
  out << "churn.enabled = " << (c.churn.enabled ? "true" : "false") << "\n";
  out << "churn.mean_session_s = " << FormatDouble(c.churn.mean_session_s) << "\n";
  out << "churn.mean_offline_s = " << FormatDouble(c.churn.mean_offline_s) << "\n";
  out << "churn.rejoin_links = " << c.churn.rejoin_links << "\n";
  out << "\n# protocol parameters\n";
  out << "params.ttl = " << c.params.ttl << "\n";
  out << "params.num_groups = " << c.params.num_groups << "\n";
  out << "params.fallback_fanout = " << c.params.fallback_fanout << "\n";
  out << "params.bloom_bits = " << c.params.bloom_bits << "\n";
  out << "params.bloom_hashes = " << c.params.bloom_hashes << "\n";
  out << "params.maintenance_interval_s = "
      << FormatDouble(sim::ToSeconds(c.params.maintenance_interval)) << "\n";
  out << "params.query_deadline_s = "
      << FormatDouble(sim::ToSeconds(c.params.query_deadline)) << "\n";
  out << "params.max_response_providers = " << c.params.max_response_providers << "\n";
  out << "params.requester_becomes_provider = "
      << (c.params.requester_becomes_provider ? "true" : "false") << "\n";
  out << "params.loc_aware_routing = "
      << (c.params.loc_aware_routing ? "true" : "false") << "\n";
  if (c.params.selection.has_value()) {
    out << "params.selection = " << SelectionStrategyName(*c.params.selection) << "\n";
  }
  out << "\n# chord dht (dht / hybrid protocols only)\n";
  out << "dht.successors = " << c.params.dht_successors << "\n";
  out << "dht.fingers = " << c.params.dht_fingers << "\n";
  out << "dht.republish_interval_ms = "
      << static_cast<uint64_t>(sim::ToMs(c.params.dht_republish_interval)) << "\n";
  out << "\n# response index\n";
  out << "ri.max_filenames = " << c.params.ri.max_filenames << "\n";
  out << "ri.max_providers_per_file = " << c.params.ri.max_providers_per_file << "\n";
  out << "ri.entry_ttl_s = " << FormatDouble(sim::ToSeconds(c.params.ri.entry_ttl))
      << "\n";
  out << "ri.eviction = " << cache::EvictionPolicyName(c.params.ri.eviction) << "\n";
  return out.str();
}

Result<ExperimentConfig> ParseConfig(const std::string& text) {
  ExperimentConfig c;
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and blank lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t") == std::string::npos) continue;

    auto parsed = ParseLine(line, lineno);
    if (!parsed.ok()) return parsed.status();
    const KeyValue kv = parsed.ValueOrDie();

    // Dispatch. Macro-free but repetitive by design: every key is explicit,
    // so a typo in a config file is an error rather than a silent default.
    auto u64 = [&]() { return ParseU64(kv); };
    auto f64 = [&]() { return ParseF64(kv); };
    auto b = [&]() { return ParseBool(kv); };
#define LOCAWARE_ASSIGN(parser, target, cast)                   \
  {                                                             \
    auto v = parser();                                          \
    if (!v.ok()) return v.status();                             \
    target = static_cast<cast>(v.ValueOrDie());                 \
  }

    // The pre-SchedulerConfig flat spellings still parse (existing config
    // files and `locaware_cli --set` scripts keep working) but warn: they
    // are one consolidation away from removal.
    auto deprecated = [&](const char* new_key) {
      std::fprintf(stderr,
                   "config: key '%s' is deprecated, use '%s' (line %zu)\n",
                   kv.key.c_str(), new_key, lineno);
    };

    if (kv.key == "label") {
      c.label = kv.value;
    } else if (kv.key == "protocol") {
      auto v = ParseProtocolKind(kv.value);
      if (!v.ok()) return v.status();
      c.protocol = v.ValueOrDie();
    } else if (kv.key == "seed") {
      LOCAWARE_ASSIGN(u64, c.seed, uint64_t)
    } else if (kv.key == "scheduler.shards") {
      LOCAWARE_ASSIGN(u64, c.scheduler.shards, uint32_t)
    } else if (kv.key == "scheduler.workers") {
      LOCAWARE_ASSIGN(u64, c.scheduler.workers, uint32_t)
    } else if (kv.key == "scheduler.work_stealing") {
      LOCAWARE_ASSIGN(b, c.scheduler.work_stealing, bool)
    } else if (kv.key == "scheduler.placement") {
      auto v = ParsePlacementStrategy(kv.value);
      if (!v.ok()) return v.status();
      c.scheduler.placement = v.ValueOrDie();
    } else if (kv.key == "scheduler.event_reserve_hint") {
      LOCAWARE_ASSIGN(u64, c.scheduler.event_reserve_hint, size_t)
    } else if (kv.key == "shards") {
      deprecated("scheduler.shards");
      LOCAWARE_ASSIGN(u64, c.scheduler.shards, uint32_t)
    } else if (kv.key == "workers") {
      deprecated("scheduler.workers");
      LOCAWARE_ASSIGN(u64, c.scheduler.workers, uint32_t)
    } else if (kv.key == "work_stealing") {
      deprecated("scheduler.work_stealing");
      LOCAWARE_ASSIGN(b, c.scheduler.work_stealing, bool)
    } else if (kv.key == "num_peers") {
      LOCAWARE_ASSIGN(u64, c.num_peers, size_t)
    } else if (kv.key == "avg_degree") {
      LOCAWARE_ASSIGN(f64, c.avg_degree, double)
    } else if (kv.key == "num_landmarks") {
      LOCAWARE_ASSIGN(u64, c.num_landmarks, size_t)
    } else if (kv.key == "use_uniform_underlay") {
      LOCAWARE_ASSIGN(b, c.use_uniform_underlay, bool)
    } else if (kv.key == "underlay.num_routers") {
      LOCAWARE_ASSIGN(u64, c.underlay.num_routers, size_t)
    } else if (kv.key == "underlay.model") {
      const std::string v = ToLower(kv.value);
      if (v == "waxman") {
        c.underlay.model = net::RouterGraphModel::kWaxman;
      } else if (v == "barabasi-albert" || v == "ba") {
        c.underlay.model = net::RouterGraphModel::kBarabasiAlbert;
      } else {
        return Status::InvalidArgument("unknown underlay model '" + kv.value + "'");
      }
    } else if (kv.key == "underlay.min_rtt_ms") {
      LOCAWARE_ASSIGN(f64, c.underlay.min_rtt_ms, double)
    } else if (kv.key == "underlay.max_rtt_ms") {
      LOCAWARE_ASSIGN(f64, c.underlay.max_rtt_ms, double)
    } else if (kv.key == "files_per_peer") {
      LOCAWARE_ASSIGN(u64, c.files_per_peer, size_t)
    } else if (kv.key == "catalog.num_files") {
      LOCAWARE_ASSIGN(u64, c.catalog.num_files, size_t)
    } else if (kv.key == "catalog.keyword_pool_size") {
      LOCAWARE_ASSIGN(u64, c.catalog.keyword_pool_size, size_t)
    } else if (kv.key == "catalog.keywords_per_file") {
      LOCAWARE_ASSIGN(u64, c.catalog.keywords_per_file, size_t)
    } else if (kv.key == "workload.num_queries") {
      LOCAWARE_ASSIGN(u64, c.workload.num_queries, uint64_t)
    } else if (kv.key == "workload.zipf_exponent") {
      LOCAWARE_ASSIGN(f64, c.workload.zipf_exponent, double)
    } else if (kv.key == "workload.query_rate_per_peer_s") {
      LOCAWARE_ASSIGN(f64, c.workload.query_rate_per_peer_s, double)
    } else if (kv.key == "workload.min_query_keywords") {
      LOCAWARE_ASSIGN(u64, c.workload.min_query_keywords, size_t)
    } else if (kv.key == "workload.max_query_keywords") {
      LOCAWARE_ASSIGN(u64, c.workload.max_query_keywords, size_t)
    } else if (kv.key == "trace_path") {
      c.trace_path = kv.value;
    } else if (kv.key == "event_reserve_hint") {
      deprecated("scheduler.event_reserve_hint");
      LOCAWARE_ASSIGN(u64, c.scheduler.event_reserve_hint, size_t)
    } else if (kv.key == "churn.enabled") {
      LOCAWARE_ASSIGN(b, c.churn.enabled, bool)
    } else if (kv.key == "churn.mean_session_s") {
      LOCAWARE_ASSIGN(f64, c.churn.mean_session_s, double)
    } else if (kv.key == "churn.mean_offline_s") {
      LOCAWARE_ASSIGN(f64, c.churn.mean_offline_s, double)
    } else if (kv.key == "churn.rejoin_links") {
      LOCAWARE_ASSIGN(u64, c.churn.rejoin_links, size_t)
    } else if (kv.key == "params.ttl") {
      LOCAWARE_ASSIGN(u64, c.params.ttl, uint32_t)
    } else if (kv.key == "params.num_groups") {
      LOCAWARE_ASSIGN(u64, c.params.num_groups, uint16_t)
    } else if (kv.key == "params.fallback_fanout") {
      LOCAWARE_ASSIGN(u64, c.params.fallback_fanout, size_t)
    } else if (kv.key == "params.bloom_bits") {
      LOCAWARE_ASSIGN(u64, c.params.bloom_bits, size_t)
    } else if (kv.key == "params.bloom_hashes") {
      LOCAWARE_ASSIGN(u64, c.params.bloom_hashes, size_t)
    } else if (kv.key == "params.maintenance_interval_s") {
      auto v = f64();
      if (!v.ok()) return v.status();
      c.params.maintenance_interval = sim::FromSeconds(v.ValueOrDie());
    } else if (kv.key == "params.query_deadline_s") {
      auto v = f64();
      if (!v.ok()) return v.status();
      c.params.query_deadline = sim::FromSeconds(v.ValueOrDie());
    } else if (kv.key == "params.max_response_providers") {
      LOCAWARE_ASSIGN(u64, c.params.max_response_providers, size_t)
    } else if (kv.key == "params.requester_becomes_provider") {
      LOCAWARE_ASSIGN(b, c.params.requester_becomes_provider, bool)
    } else if (kv.key == "params.loc_aware_routing") {
      LOCAWARE_ASSIGN(b, c.params.loc_aware_routing, bool)
    } else if (kv.key == "params.selection") {
      auto v = ParseSelectionStrategy(kv.value);
      if (!v.ok()) return v.status();
      c.params.selection = v.ValueOrDie();
    } else if (kv.key == "dht.successors") {
      LOCAWARE_ASSIGN(u64, c.params.dht_successors, size_t)
    } else if (kv.key == "dht.fingers") {
      LOCAWARE_ASSIGN(u64, c.params.dht_fingers, size_t)
    } else if (kv.key == "dht.republish_interval_ms") {
      auto v = u64();
      if (!v.ok()) return v.status();
      c.params.dht_republish_interval =
          sim::FromMs(static_cast<double>(v.ValueOrDie()));
    } else if (kv.key == "ri.max_filenames") {
      LOCAWARE_ASSIGN(u64, c.params.ri.max_filenames, size_t)
    } else if (kv.key == "ri.max_providers_per_file") {
      LOCAWARE_ASSIGN(u64, c.params.ri.max_providers_per_file, size_t)
    } else if (kv.key == "ri.entry_ttl_s") {
      auto v = f64();
      if (!v.ok()) return v.status();
      c.params.ri.entry_ttl = sim::FromSeconds(v.ValueOrDie());
    } else if (kv.key == "ri.eviction") {
      const std::string v = ToLower(kv.value);
      if (v == "lru") {
        c.params.ri.eviction = cache::EvictionPolicy::kLru;
      } else if (v == "fifo") {
        c.params.ri.eviction = cache::EvictionPolicy::kFifo;
      } else if (v == "random") {
        c.params.ri.eviction = cache::EvictionPolicy::kRandom;
      } else {
        return Status::InvalidArgument("unknown eviction policy '" + kv.value + "'");
      }
    } else {
      return Status::InvalidArgument("unknown key '" + kv.key + "' (line " +
                                     std::to_string(lineno) + ")");
    }
#undef LOCAWARE_ASSIGN
  }
  return c;
}

Status SaveConfig(const ExperimentConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << FormatConfig(config);
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<ExperimentConfig> LoadConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open config: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseConfig(buffer.str());
}

std::string ResultToJson(const ExperimentResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("label");
  w.String(result.label);

  w.Key("summary");
  w.BeginObject();
  w.Key("num_queries");
  w.Uint(result.summary.num_queries);
  w.Key("success_rate");
  w.Double(result.summary.success_rate);
  w.Key("msgs_per_query");
  w.Double(result.summary.msgs_per_query);
  w.Key("bytes_per_query");
  w.Double(result.summary.bytes_per_query);
  w.Key("avg_download_ms");
  w.Double(result.summary.avg_download_ms);
  w.Key("loc_match_rate");
  w.Double(result.summary.loc_match_rate);
  w.Key("cache_answer_share");
  w.Double(result.summary.cache_answer_share);
  w.Key("avg_providers_offered");
  w.Double(result.summary.avg_providers_offered);
  w.Key("bloom_update_msgs");
  w.Uint(result.summary.bloom_update_msgs);
  w.Key("bloom_update_bytes");
  w.Uint(result.summary.bloom_update_bytes);
  w.Key("stale_failures");
  w.Uint(result.summary.stale_failures);
  w.Key("stale_provider_hits");
  w.Uint(result.summary.stale_provider_hits);
  w.Key("repair_msgs");
  w.Uint(result.summary.repair_msgs);
  w.Key("repair_bytes");
  w.Uint(result.summary.repair_bytes);
  w.Key("churn_events");
  w.Uint(result.summary.churn_events);
  // DHT counters exist only for the dht/hybrid protocols; emitting them
  // conditionally keeps the paper protocols' JSON byte-identical to pre-DHT
  // output.
  if (result.summary.dht_lookups != 0 || result.summary.dht_hops != 0 ||
      result.summary.dht_store_msgs != 0 || result.summary.dht_store_bytes != 0 ||
      result.summary.hybrid_escalations != 0) {
    w.Key("dht_lookups");
    w.Uint(result.summary.dht_lookups);
    w.Key("dht_hops");
    w.Uint(result.summary.dht_hops);
    w.Key("dht_store_msgs");
    w.Uint(result.summary.dht_store_msgs);
    w.Key("dht_store_bytes");
    w.Uint(result.summary.dht_store_bytes);
    w.Key("hybrid_escalations");
    w.Uint(result.summary.hybrid_escalations);
  }
  w.EndObject();

  w.Key("series");
  w.BeginArray();
  for (const metrics::BucketPoint& p : result.series) {
    w.BeginObject();
    w.Key("queries_end");
    w.Uint(p.queries_end);
    w.Key("success_rate");
    w.Double(p.success_rate);
    w.Key("msgs_per_query");
    w.Double(p.msgs_per_query);
    w.Key("bytes_per_query");
    w.Double(p.bytes_per_query);
    w.Key("avg_download_ms");
    w.Double(p.avg_download_ms);
    w.Key("loc_match_rate");
    w.Double(p.loc_match_rate);
    w.Key("cache_answer_share");
    w.Double(p.cache_answer_share);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

}  // namespace locaware::core
