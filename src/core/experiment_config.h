// The complete, self-describing configuration of one simulation run.
// MakePaperConfig() yields the paper's §5.1 setup for a chosen protocol.
#pragma once

#include <cstdint>
#include <string>

#include "catalog/file_catalog.h"
#include "catalog/workload.h"
#include "core/protocol_params.h"
#include "net/underlay.h"
#include "overlay/churn.h"
#include "overlay/overlay_graph.h"

namespace locaware::core {

/// Everything RunExperiment needs. All nested sizes (peers, landmarks) are
/// normalized from the top-level fields by Engine::Create, so callers only
/// set num_peers once.
struct ExperimentConfig {
  /// Free-form run label used in reports ("Locaware", "Flooding", ...).
  std::string label;

  size_t num_peers = 1000;       ///< paper: 1000
  double avg_degree = 3.0;       ///< paper: average connectivity degree 3
  size_t files_per_peer = 3;     ///< paper: 3 initial shared files
  size_t num_landmarks = 4;      ///< paper: 4 landmarks → 24 locIds

  /// Simulation shards (event partitions). Peers are partitioned shard_of(p)
  /// = p % shards; each shard owns its peers' events and synchronizes with
  /// the others through conservative windows bounded by a per-shard-pair
  /// lookahead matrix derived from the underlay's locality structure. Any
  /// value, including 1, produces identical metrics for the same seed (the
  /// determinism contract CI enforces); > 1 trades barrier overhead for
  /// multi-core wall-clock. Composes with churn: lifecycle transitions run
  /// as owner-shard events and overlay repair travels as
  /// LinkDrop/LinkProbe/LinkAccept messages.
  uint32_t shards = 1;

  /// Worker threads driving the shards (0 = one per shard). Fewer workers
  /// than shards over-decomposes the run so work stealing can absorb skewed
  /// shards. Pure wall-clock knob: results never depend on it.
  uint32_t workers = 0;

  /// Allow idle workers to steal whole remaining shard sub-queues inside a
  /// window. Results are byte-identical on or off (stealing moves which
  /// thread runs a shard, never event order); off pins every shard to its
  /// static home worker.
  bool work_stealing = true;

  /// Use the geometry-free control underlay (locality ablation) instead of
  /// the BRITE-inspired router plane.
  bool use_uniform_underlay = false;

  net::GeometricUnderlayConfig underlay;
  catalog::CatalogConfig catalog;      ///< paper: 3000 files, 9000 keywords, 3 kw/file
  catalog::WorkloadConfig workload;    ///< paper: Zipf, 0.00083 q/s/peer, TTL-7 search
  overlay::ChurnConfig churn;          ///< disabled in the paper's headline runs

  /// When non-empty, the query workload is replayed from this trace file
  /// (written by QueryWorkload::SaveTrace or SaveBinary; the format is
  /// sniffed) instead of being generated; the `workload` block is then
  /// ignored. The trace must reference peers and files that exist under the
  /// catalog/num_peers settings.
  std::string trace_path;

  /// Per-shard event-queue capacity to pre-reserve before the run. 0 derives
  /// it from the workload's per-shard submission counts; fig_common sets it
  /// from the trace size so storm startup does zero heap growth. Pure
  /// capacity knob: results never depend on it.
  size_t event_reserve_hint = 0;

  ProtocolKind protocol = ProtocolKind::kLocaware;
  ProtocolParams params;

  uint64_t seed = 42;
};

/// The paper's §5.1 configuration for `kind`, with protocol-appropriate
/// parameter defaults (see MakeDefaultParams).
ExperimentConfig MakePaperConfig(ProtocolKind kind, uint64_t num_queries = 5000,
                                 uint64_t seed = 42);

}  // namespace locaware::core
