// The complete, self-describing configuration of one simulation run.
// MakePaperConfig() yields the paper's §5.1 setup for a chosen protocol.
#pragma once

#include <cstdint>
#include <string>

#include "catalog/file_catalog.h"
#include "catalog/workload.h"
#include "core/protocol_params.h"
#include "net/underlay.h"
#include "overlay/churn.h"
#include "overlay/overlay_graph.h"
#include "sim/shard_placement.h"

namespace locaware::core {

/// How the parallel scheduler decomposes and drives the run. One contract
/// covers the whole block: every knob here is wall-clock-only — any shard
/// count, worker count, stealing mode, placement strategy, or reserve hint
/// produces byte-identical metrics for the same seed (the determinism
/// contract CI enforces). Peers are partitioned across `shards` simulation
/// shards by a placement-defined partition (sim::ShardPlacement, built once
/// at Engine::Create); each shard owns its peers' events and synchronizes
/// with the others through conservative windows bounded by a per-shard-pair
/// lookahead matrix derived from the underlay's locality structure. Composes
/// with churn: lifecycle transitions run as owner-shard events and overlay
/// repair travels as LinkDrop/LinkProbe/LinkAccept messages.
struct SchedulerConfig {
  /// Simulation shards (event partitions). 1 runs inline with no windows;
  /// > 1 trades barrier overhead for multi-core wall-clock.
  uint32_t shards = 1;

  /// Worker threads driving the shards (0 = one per shard). Fewer workers
  /// than shards over-decomposes the run so work stealing can absorb skewed
  /// shards.
  uint32_t workers = 0;

  /// Allow idle workers to steal whole remaining shard sub-queues inside a
  /// window (stealing moves which thread runs a shard, never event order);
  /// off pins every shard to its static home worker.
  bool work_stealing = true;

  /// Peer → shard mapping strategy. kModulo is the historical p % shards;
  /// kClustered groups peers by underlay location (weighted by the
  /// workload's requester histogram) so the per-shard-pair lookahead matrix
  /// sees spatially tight shards and runs deeper windows.
  sim::PlacementStrategy placement = sim::PlacementStrategy::kModulo;

  /// Per-shard event-queue capacity to pre-reserve before the run. 0 derives
  /// it from the workload's per-shard submission counts; fig_common sets it
  /// from the trace size so storm startup does zero heap growth.
  size_t event_reserve_hint = 0;
};

/// Everything RunExperiment needs. All nested sizes (peers, landmarks) are
/// normalized from the top-level fields by Engine::Create, so callers only
/// set num_peers once.
struct ExperimentConfig {
  /// Free-form run label used in reports ("Locaware", "Flooding", ...).
  std::string label;

  size_t num_peers = 1000;       ///< paper: 1000
  double avg_degree = 3.0;       ///< paper: average connectivity degree 3
  size_t files_per_peer = 3;     ///< paper: 3 initial shared files
  size_t num_landmarks = 4;      ///< paper: 4 landmarks → 24 locIds

  /// Parallel-scheduler decomposition (shards, workers, stealing, placement,
  /// reserve hint). See SchedulerConfig for the shared determinism contract.
  SchedulerConfig scheduler;

  /// Use the geometry-free control underlay (locality ablation) instead of
  /// the BRITE-inspired router plane.
  bool use_uniform_underlay = false;

  net::GeometricUnderlayConfig underlay;
  catalog::CatalogConfig catalog;      ///< paper: 3000 files, 9000 keywords, 3 kw/file
  catalog::WorkloadConfig workload;    ///< paper: Zipf, 0.00083 q/s/peer, TTL-7 search
  overlay::ChurnConfig churn;          ///< disabled in the paper's headline runs

  /// When non-empty, the query workload is replayed from this trace file
  /// (written by QueryWorkload::SaveTrace or SaveBinary; the format is
  /// sniffed) instead of being generated; the `workload` block is then
  /// ignored. The trace must reference peers and files that exist under the
  /// catalog/num_peers settings.
  std::string trace_path;

  ProtocolKind protocol = ProtocolKind::kLocaware;
  ProtocolParams params;

  uint64_t seed = 42;
};

/// The paper's §5.1 configuration for `kind`, with protocol-appropriate
/// parameter defaults (see MakeDefaultParams).
ExperimentConfig MakePaperConfig(ProtocolKind kind, uint64_t num_queries = 5000,
                                 uint64_t seed = 42);

}  // namespace locaware::core
