#include "core/dicas_protocol.h"

#include <algorithm>

#include "core/engine.h"
#include "core/group_hash.h"

namespace locaware::core {

GroupVec DicasProtocol::QueryGroups(
    Engine& /*engine*/, const overlay::QueryMessage& query) const {
  return {GroupOfSetFnv(query.kw_set_fnv, params_.num_groups)};
}

GroupVec DicasProtocol::CacheGroups(
    Engine& engine, const overlay::ResponseMessage& /*response*/,
    FileId file) const {
  return {GroupOfSetFnv(engine.catalog().FileSetFnv(file), params_.num_groups)};
}

PeerVec DicasProtocol::ForwardTargets(Engine& engine, PeerId node,
                                      const overlay::QueryMessage& query,
                                      PeerId from) {
  const GroupVec groups = QueryGroups(engine, query);
  PeerVec matching;
  PeerVec others;
  for (PeerId nb : engine.graph().Neighbors(node)) {
    if (nb == from) continue;
    const GroupId g = engine.gid_of(nb);
    if (std::find(groups.begin(), groups.end(), g) != groups.end()) {
      matching.push_back(nb);
    } else {
      others.push_back(nb);
    }
  }
  if (!matching.empty()) return matching;
  // No group member among neighbors: hand the query to random neighbors so it
  // keeps moving toward the group. The draw is keyed by (query, node) — a
  // node forwards a given query at most once (GUID dedup), so the key is
  // unique, and the pick stays identical across shard counts.
  if (others.empty()) return {};
  Rng fallback_rng = engine.DecisionRng(Engine::kDecisionFallback, query.qid, node);
  fallback_rng.Shuffle(&others);
  if (others.size() > params_.fallback_fanout) others.resize(params_.fallback_fanout);
  return others;
}

void DicasProtocol::ObserveResponse(Engine& engine, PeerId node,
                                    const overlay::ResponseMessage& response) {
  NodeState& state = engine.node(node);
  if (state.ri == nullptr) return;
  for (const overlay::ResponseRecord& record : response.records) {
    if (record.providers.empty()) continue;
    const GroupVec groups = CacheGroups(engine, response, record.file);
    if (std::find(groups.begin(), groups.end(), state.gid) == groups.end()) continue;
    // Dicas caches the response as a single index: file -> the provider
    // that answered (the record's freshest provider).
    const overlay::ProviderInfo& p = record.providers.front();
    state.ri->AddProvider(record.file, engine.catalog().sorted_keywords(record.file),
                          cache::ProviderEntry{p.peer, p.loc_id, 0},
                          engine.Now());
  }
}

bool DicasProtocol::HitVisible(Engine& engine, const NodeState& /*node*/,
                               FileId file, const overlay::QueryMessage& query) const {
  // Filename search: the query must name every keyword of the cached
  // filename (LookupByKeywords already guaranteed the other direction).
  return ContainsAllIds(query.keywords, engine.catalog().sorted_keywords(file));
}

overlay::RecordVec DicasProtocol::AnswerFromIndex(
    Engine& engine, PeerId node, const overlay::QueryMessage& query) {
  NodeState& state = engine.node(node);
  if (state.ri == nullptr) return {};
  overlay::RecordVec records;
  for (const cache::ResponseIndex::Hit& hit :
       state.ri->LookupByKeywords(query.keywords, engine.Now())) {
    if (!HitVisible(engine, state, hit.file, query)) continue;
    overlay::ResponseRecord record;
    record.file = hit.file;
    record.from_index = true;
    const size_t limit = std::min(hit.providers.size(), params_.max_response_providers);
    for (size_t i = 0; i < limit; ++i) {
      record.providers.push_back(
          overlay::ProviderInfo{hit.providers[i].provider, hit.providers[i].loc_id});
    }
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace locaware::core
