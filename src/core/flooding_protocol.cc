#include "core/flooding_protocol.h"

#include "core/engine.h"

namespace locaware::core {

PeerVec FloodingProtocol::ForwardTargets(
    Engine& engine, PeerId node, const overlay::QueryMessage& /*query*/, PeerId from) {
  PeerVec targets;
  for (PeerId nb : engine.graph().Neighbors(node)) {
    if (nb != from) targets.push_back(nb);
  }
  return targets;
}

void FloodingProtocol::ObserveResponse(Engine& /*engine*/, PeerId /*node*/,
                                       const overlay::ResponseMessage& /*response*/) {
  // Flooding never caches.
}

overlay::RecordVec FloodingProtocol::AnswerFromIndex(
    Engine& /*engine*/, PeerId /*node*/, const overlay::QueryMessage& /*query*/) {
  return {};  // no index to answer from
}

}  // namespace locaware::core
