// Blind Gnutella flooding — the paper's traffic baseline. Every query copy
// goes to every neighbor (minus the sender), nothing is cached, and answers
// come only from file stores. Gnutella semantics: a node that answers keeps
// forwarding, so the flood always covers the TTL horizon.
#pragma once

#include "core/protocol.h"

namespace locaware::core {

class FloodingProtocol final : public Protocol {
 public:
  using Protocol::Protocol;

  ProtocolKind kind() const override { return ProtocolKind::kFlooding; }
  const char* name() const override { return "Flooding"; }

  PeerVec ForwardTargets(Engine& engine, PeerId node,
                         const overlay::QueryMessage& query,
                         PeerId from) override;
  void ObserveResponse(Engine& engine, PeerId node,
                       const overlay::ResponseMessage& response) override;
  overlay::RecordVec AnswerFromIndex(
      Engine& engine, PeerId node, const overlay::QueryMessage& query) override;
  bool ForwardAfterHit() const override { return true; }
};

}  // namespace locaware::core
