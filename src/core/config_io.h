// Text serialization of ExperimentConfig (simple `key = value` files) and
// JSON export of ExperimentResult. This is what makes runs shareable: a
// config file plus a seed reproduces a run bit-for-bit, and the JSON result
// feeds external plotting.
#pragma once

#include <string>

#include "common/status.h"
#include "core/experiment.h"
#include "core/experiment_config.h"

namespace locaware::core {

/// Renders a config as a `key = value` text document (one line per field,
/// grouped with comments). Every field is written, so a saved file is a
/// complete record of the run's parameters.
std::string FormatConfig(const ExperimentConfig& config);

/// Parses FormatConfig output (or a hand-written subset — unspecified fields
/// keep their defaults). Unknown keys and malformed values fail with
/// InvalidArgument naming the offending line.
Result<ExperimentConfig> ParseConfig(const std::string& text);

/// File convenience wrappers.
Status SaveConfig(const ExperimentConfig& config, const std::string& path);
Result<ExperimentConfig> LoadConfig(const std::string& path);

/// Serializes an ExperimentResult (summary + series) as a JSON document.
std::string ResultToJson(const ExperimentResult& result);

/// Parses a protocol name ("flooding", "dicas", "dicas-keys", "locaware",
/// case-insensitive). Fails with InvalidArgument on anything else.
Result<ProtocolKind> ParseProtocolKind(const std::string& name);

/// Parses a selection strategy name (see SelectionStrategyName).
Result<SelectionStrategy> ParseSelectionStrategy(const std::string& name);

/// Parses a shard-placement strategy name ("modulo", "clustered",
/// case-insensitive — see sim::PlacementStrategyName).
Result<sim::PlacementStrategy> ParsePlacementStrategy(const std::string& name);

}  // namespace locaware::core
