// The simulation engine: wires underlay, overlay, catalog, workload, nodes
// and one protocol into the discrete-event simulator, and implements the
// message plumbing every protocol shares — TTL-bounded forwarding, GUID
// duplicate suppression, reverse-path response routing (paper §3.1), query
// finalization with provider selection, churn, and periodic maintenance.
//
// Sharded execution: peers are partitioned across config.scheduler.shards
// shards by a placement-defined partition (sim::ShardPlacement — modulo or
// locality-clustered, built once at Create), each owning its peers' node
// state, pending queries, and a private MetricsCollector (merged at Run()
// exit). All
// cross-peer interaction travels as events through the ShardedSimulator's
// conservative windows, bounded per shard pair by a lookahead matrix the
// engine mins from the underlay's locality structure (each shard's peer
// locations digested against every other's — far-apart shards run deep
// windows), and all event-time randomness is derived from stable identities
// (DecisionRng), so the run's metrics are identical for every shard count,
// worker count, stealing mode, and placement strategy — the whole scheduler
// block is purely a wall-clock knob.
//
// Churn composes with sharding: the per-peer on/off schedule is a precomputed
// immutable ChurnTimeline (stable per-(peer, cycle) streams), departures and
// rejoins execute as owner-shard events, and all overlay rewiring travels as
// LinkDrop/LinkProbe/LinkAccept messages so each endpoint mutates only its
// own (epoch-stamped) half of a link. The node() ownership assert extends to
// overlay state via OverlayGraph::SetPartitionedOwnership.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/file_catalog.h"
#include "catalog/workload.h"
#include "common/arena.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "core/experiment_config.h"
#include "core/node_state.h"
#include "core/protocol.h"
#include "core/query_payload_pool.h"
#include "dht/ring.h"
#include "metrics/metrics.h"
#include "net/underlay.h"
#include "overlay/churn.h"
#include "overlay/message.h"
#include "overlay/overlay_graph.h"
#include "sim/shard_placement.h"
#include "sim/sharded_simulator.h"

namespace locaware::core {

/// \brief One experiment instance. Create → Run → read metrics.
///
/// Engine is also the service interface protocols program against: node
/// state, topology, latency, RNG streams and traffic accounting.
class Engine {
 public:
  /// Builds every subsystem deterministically from config.seed. Fails if any
  /// subsystem rejects its configuration (for shards > 1, an underlay that
  /// cannot bound its minimum link latency).
  static Result<std::unique_ptr<Engine>> Create(const ExperimentConfig& config);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Schedules the full workload and runs the simulation until every query
  /// has been finalized (last submission + query deadline + response slack).
  void Run();

  // --- services for protocols, benches and tests ---
  size_t num_peers() const { return nodes_.size(); }
  /// Mutable node state. During a multi-shard run this asserts the calling
  /// shard owns `p`: protocols must only mutate the node an event executes
  /// at, and reach remote peers' immutable facts via gid_of/loc_of.
  NodeState& node(PeerId p);
  const NodeState& node(PeerId p) const;
  LocId loc_of(PeerId p) const;
  /// Group id of `p`. Immutable after Setup, safe from any shard.
  GroupId gid_of(PeerId p) const;

  uint32_t num_shards() const { return num_shards_; }
  /// The peer → shard map. Delegates to the run's immutable ShardPlacement
  /// (built once at Create from config.scheduler.placement).
  sim::ShardId shard_of(PeerId p) const { return placement_.shard_of(p); }

  /// The run's immutable placement: the owner map, per-shard peer counts,
  /// and the per-shard location digests the lookahead matrix reads.
  const sim::ShardPlacement& placement() const { return placement_; }

  const net::Underlay& underlay() const { return *underlay_; }
  overlay::OverlayGraph& graph() { return *graph_; }
  const overlay::OverlayGraph& graph() const { return *graph_; }
  const catalog::FileCatalog& catalog() const { return catalog_; }
  const catalog::QueryWorkload& workload() const { return workload_; }
  sim::ShardedSimulator& simulator() { return *sim_; }
  /// Merged run-level metrics; complete once Run() has returned.
  metrics::MetricsCollector& metrics() { return metrics_; }
  const metrics::MetricsCollector& metrics() const { return metrics_; }
  Protocol& protocol() { return *protocol_; }
  const ExperimentConfig& config() const { return config_; }
  const ProtocolParams& params() const { return config_.params; }

  /// Current simulation time (the executing shard's clock inside an event).
  sim::SimTime Now() const { return sim_->Now(); }

  // Randomness domains for DecisionRng.
  static constexpr uint64_t kDecisionFallback = 1;   ///< routed-protocol fallback picks
  static constexpr uint64_t kDecisionSelection = 2;  ///< provider selection
  static constexpr uint64_t kDecisionChurnLink = 3;  ///< link-probe candidate draws

  /// Order-independent event-time randomness: a fresh stream derived from
  /// (seed, domain, a, b). Unlike a shared sequential stream, the draw does
  /// not depend on global event execution order, which is what keeps results
  /// byte-identical across shard counts. Key decisions by stable identities
  /// (query id, peer id), never by "how many draws happened before me".
  Rng DecisionRng(uint64_t domain, uint64_t a, uint64_t b = 0) const;

  /// Queries currently awaiting their deadline (0 after Run()).
  size_t pending_query_count() const;
  /// Per-shard tracking entries still addressable by in-flight messages
  /// (0 after Run(): every query was cleaned up everywhere).
  size_t tracked_query_count() const;

  /// One-way overlay-link delay between two peers (RTT/2).
  sim::SimTime OneWayDelay(PeerId a, PeerId b) const;

  /// Sends a Bloom delta from `from` to neighbor `to`: schedules delivery and
  /// charges the maintenance-traffic accounts.
  void SendBloomUpdate(PeerId from, PeerId to, overlay::BloomUpdateMessage update);

  /// Charges maintenance traffic without a scheduled message (used by the
  /// full-filter exchange when a link comes up).
  void ChargeMaintenance(uint64_t messages, uint64_t bytes);

  /// `neighbor`'s degree as far as `self` may know it. Without churn the
  /// overlay is immutable and this is the true degree; under churn, remote
  /// adjacency is shard-partitioned, so it is the hint the last link
  /// handshake announced (0 if none survives). Deterministic either way.
  size_t NeighborDegree(PeerId self, PeerId neighbor);

  /// The immutable per-peer on/off schedule (empty unless churn is enabled).
  const overlay::ChurnTimeline& churn_timeline() const { return churn_timeline_; }

  /// The immutable DHT ring order (meaningful only for dht/hybrid runs).
  const dht::Ring& dht_ring() const { return dht_ring_; }

  /// Starts an iterative DHT lookup resolving providers for `query`'s routing
  /// keyword, at the query's origin. Called by DhtProtocol (every query) and
  /// HybridProtocol (on unstructured fan-out miss; counted as an escalation).
  void StartDhtQueryLookup(const overlay::QueryMessage& query,
                           bool count_as_escalation);

  /// Shard `s`'s arena — the spill source for every arena-aware container
  /// its peers own (overlay rows, file stores, response-index lists).
  /// Exposed for bench counters and tests.
  const common::Arena& shard_arena(sim::ShardId s) const {
    LOCAWARE_CHECK_LT(s, arenas_.size());
    return *arenas_[s];
  }

 private:
  explicit Engine(const ExperimentConfig& config);

  /// Responses a query collects while in flight, finalized at the deadline.
  struct PendingQuery {
    size_t slot = 0;
    PeerId requester = kInvalidPeer;
    LocId requester_loc = 0;
    overlay::KeywordVec keywords;  ///< sorted ascending
    struct Offer {
      overlay::ResponseRecord record;
      PeerId responder = kInvalidPeer;
    };
    std::vector<Offer> offers;
  };

  /// Everything one shard owns besides its peers' NodeStates. Only events
  /// executing on the owning shard touch an instance, so the hot path needs
  /// no locks; the metrics collectors are merged after the run.
  struct ShardState {
    /// Flat tables, arena-bound to the shard's arena at setup; no call path
    /// iterates them (find/insert/erase only), so table order never shows.
    FlatMap<QueryId, PendingQuery> pending;
    FlatMap<QueryId, size_t> slot_of;
    /// Peers of this shard whose seen/reverse-path tables mention a query.
    FlatMap<QueryId, SmallVector<PeerId, 8>> touched;
    metrics::MetricsCollector metrics;
  };

  Status Setup();

  /// Digests the shard -> location assignment and mins the underlay's
  /// pairwise RTT lower bounds over each location cross product: entry
  /// [src * K + dst] is the one-way bound for events src's peers create for
  /// dst's peers, clamped to [scalar lookahead, query_deadline] (the deadline
  /// cap keeps cross-shard cleanup events schedulable; any clamp-down is
  /// still a valid conservative bound).
  std::vector<sim::SimTime> BuildLookaheadMatrix(sim::SimTime scalar_lookahead) const;

  /// Event source id of peer `p` (source 0 is the pre-run controller).
  sim::SourceId SourceOf(PeerId p) const { return static_cast<sim::SourceId>(p) + 1; }

  /// Schedules `fn` at Now() + delay on dst's shard, keyed by creator `src`.
  /// Must run inside an event executing at a peer of src's shard.
  void ScheduleFromNode(PeerId src, PeerId dst, sim::SimTime delay, sim::EventFn fn);

  // Query lifecycle. Forwarded queries share one immutable pooled message
  // per hop (QueryPayloadRef), so fan-out costs O(targets) refcount bumps
  // and steady state allocates nothing (the pool recycles nodes).
  void SubmitQuery(const catalog::QueryEvent& ev);
  void DeliverQuery(PeerId to, PeerId from, const QueryPayloadRef& msg);
  void DeliverResponse(PeerId to, PeerId from, overlay::ResponseMessage msg);
  /// Returns the number of neighbors the query was forwarded to.
  size_t ForwardQuery(PeerId node, PeerId from, const overlay::QueryMessage& msg);
  void SendResponse(PeerId responder, PeerId next_hop,
                    overlay::ResponseMessage msg);
  void FinalizeQuery(PeerId origin, QueryId qid);
  /// Appends `p` to shard `shard_id`'s touched-peers list for `qid`,
  /// arena-binding the list on first touch.
  void TouchPeer(sim::ShardId shard_id, QueryId qid, PeerId p);
  /// Erases one shard's tracking state for `qid` (its peers' seen/reverse
  /// entries, the slot mapping). The full cleanup is one such event per
  /// shard, scheduled by the origin at finalize + deadline.
  void CleanupShard(sim::ShardId shard, QueryId qid);
  /// Schedules CleanupShard on every shard at Now() + query deadline.
  void ScheduleCleanup(PeerId origin, QueryId qid);

  /// Records a file-store answer's records for `node` against `query`
  /// (empty when nothing matches).
  overlay::RecordVec AnswerFromFileStore(PeerId node,
                                         const overlay::QueryMessage& query);

  /// One peer's recurring maintenance tick: runs the work, then schedules
  /// the next tick as a plain (node-sourced) event. The chain needs no
  /// self-referencing shared state — each queued event is one [this, p]
  /// closure, so ticks never allocate.
  void MaintenanceTick(PeerId p);
  /// The tick's work: index expiry / Bloom gossip when the protocol caches,
  /// orphan re-attachment under churn.
  void MaintenanceWork(PeerId p);

  // --- churn lifecycle (shard-safe: owner events + routed repair links) ---

  /// End-of-run instant: last submission + 2x deadline + slack. Also the
  /// churn timeline's generation bound.
  sim::SimTime RunHorizon() const;

  /// Schedules every timeline transition (<= RunHorizon()) as an owner-shard
  /// PeerDown/PeerUp event. Controller phase only.
  void ScheduleChurnTimeline();

  /// PeerDown: drop own half-links, notify ex-neighbors via LinkDrop
  /// messages, clear session state.
  void HandleDeparture(PeerId p);
  /// PeerUp: fresh session epoch, probe for rejoin links.
  void HandleRejoin(PeerId p);

  /// Sends LinkProbe to up to `want` distinct online non-neighbors, drawn
  /// from a stream keyed by (p, p's probe-round counter).
  void StartLinkProbes(PeerId p, size_t want);

  /// p's self-description for link handshakes (gid, degree, epoch; the
  /// advertised filter only when `with_filter` — the accept direction. The
  /// probe direction omits it: the prober pushes its filter as a full-state
  /// BloomUpdate once the handshake completes, so the receiver's delta
  /// baseline can never desync against gossip racing the handshake).
  overlay::LinkAnnounce MakeAnnounce(PeerId p, bool with_filter);

  void DeliverLinkDrop(PeerId to, const overlay::LinkDropMessage& msg);
  void DeliverLinkProbe(PeerId to, const overlay::LinkProbeMessage& msg);
  void DeliverLinkAccept(PeerId to, const overlay::LinkAcceptMessage& msg);

  // --- Chord DHT (engine_dht.cc; dht/hybrid protocols only) ---

  /// Begins a store-purpose lookup routing (kw, file) to the key's owner.
  void StartDhtStore(PeerId publisher, KeywordId kw, FileId file);
  /// Sends one DhtLookup request for session `session` and charges it.
  void DhtSendLookup(PeerId initiator, uint64_t session, PeerId to,
                     overlay::DhtLookupMode mode);
  void DeliverDhtLookup(PeerId to, const overlay::DhtLookupMessage& msg);
  void DeliverDhtResponse(PeerId to, overlay::DhtResponseMessage msg);
  void DeliverDhtStore(PeerId to, const overlay::DhtStoreMessage& msg);
  /// Installs/refreshes a provider record in `owner`'s store.
  void DhtStoreLocal(PeerId owner, KeywordId kw, FileId file,
                     const overlay::ProviderInfo& provider);
  /// Appends the initiator's own owner-held providers for `kw` into the
  /// pending query (initiator-owns-key short circuit: no wire traffic, no
  /// responses_received bump — FinalizeQuery classifies it kLocalIndex).
  void DhtServeFromOwnStore(PeerId initiator, KeywordId kw, QueryId qid);
  /// Per-tick DHT work: stabilize under churn, republish, expire records.
  void DhtMaintenance(PeerId p);
  /// Recomputes p's successor/finger tables against the current online set.
  void DhtStabilize(PeerId p);
  /// Publishes every (keyword, file) of p's file store toward its owner.
  void DhtPublish(PeerId p);

  /// Metrics slot of a query in `shard`, or SIZE_MAX after cleanup.
  size_t SlotOf(sim::ShardId shard, QueryId qid) const;

  /// The executing shard's metrics collector for accounting at `node`.
  metrics::MetricsCollector& CollectorAt(PeerId node) {
    return shards_[shard_of(node)].metrics;
  }

  ExperimentConfig config_;
  uint32_t num_shards_ = 1;
  /// Immutable peer → shard map; built in Setup before anything consults
  /// shard_of (default-constructed it maps everything to shard 0).
  sim::ShardPlacement placement_;
  Rng root_rng_;
  uint64_t decision_seed_ = 0;
  uint64_t churn_seed_ = 0;

  /// One arena per shard. Declared before every arena-backed structure
  /// (graph_, nodes_, shards_) so it is destroyed last: their destructors
  /// return spill buffers into these arenas.
  std::vector<std::unique_ptr<common::Arena>> arenas_;

  /// Forwarded-query payload slabs. Declared before sim_ so the pool
  /// outlives any queued delivery closure still holding a QueryPayloadRef.
  QueryPayloadPool query_pool_;

  std::unique_ptr<sim::ShardedSimulator> sim_;
  std::unique_ptr<net::Underlay> underlay_;
  std::unique_ptr<overlay::OverlayGraph> graph_;
  catalog::FileCatalog catalog_;
  catalog::QueryWorkload workload_;
  std::unique_ptr<Protocol> protocol_;
  overlay::ChurnModel churn_model_;
  overlay::ChurnTimeline churn_timeline_;

  /// True for kDht/kHybrid: peers carry RoutingState and the maintenance
  /// tick runs stabilization + republish.
  bool dht_family_ = false;
  /// Immutable population-wide ring order (empty unless dht_family_).
  dht::Ring dht_ring_;

  std::vector<NodeState> nodes_;
  std::vector<ShardState> shards_;

  metrics::MetricsCollector metrics_;  ///< merged from shards at Run() exit
};

}  // namespace locaware::core
