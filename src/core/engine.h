// The simulation engine: wires underlay, overlay, catalog, workload, nodes
// and one protocol into the discrete-event simulator, and implements the
// message plumbing every protocol shares — TTL-bounded forwarding, GUID
// duplicate suppression, reverse-path response routing (paper §3.1), query
// finalization with provider selection, churn, and periodic maintenance.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/file_catalog.h"
#include "catalog/workload.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "core/experiment_config.h"
#include "core/node_state.h"
#include "core/protocol.h"
#include "metrics/metrics.h"
#include "net/underlay.h"
#include "overlay/churn.h"
#include "overlay/message.h"
#include "overlay/overlay_graph.h"
#include "sim/simulator.h"

namespace locaware::core {

/// \brief One experiment instance. Create → Run → read metrics.
///
/// Engine is also the service interface protocols program against: node
/// state, topology, latency, RNG streams and traffic accounting.
class Engine {
 public:
  /// Builds every subsystem deterministically from config.seed. Fails if any
  /// subsystem rejects its configuration.
  static Result<std::unique_ptr<Engine>> Create(const ExperimentConfig& config);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Schedules the full workload and runs the simulation until every query
  /// has been finalized (last submission + query deadline + response slack).
  void Run();

  // --- services for protocols, benches and tests ---
  size_t num_peers() const { return nodes_.size(); }
  NodeState& node(PeerId p);
  const NodeState& node(PeerId p) const;
  LocId loc_of(PeerId p) const;

  const net::Underlay& underlay() const { return *underlay_; }
  overlay::OverlayGraph& graph() { return *graph_; }
  const overlay::OverlayGraph& graph() const { return *graph_; }
  const catalog::FileCatalog& catalog() const { return catalog_; }
  const catalog::QueryWorkload& workload() const { return workload_; }
  sim::Simulator& simulator() { return sim_; }
  metrics::MetricsCollector& metrics() { return metrics_; }
  const metrics::MetricsCollector& metrics() const { return metrics_; }
  Protocol& protocol() { return *protocol_; }
  const ExperimentConfig& config() const { return config_; }
  const ProtocolParams& params() const { return config_.params; }

  /// RNG stream for protocol decisions (random fallback neighbor, ...).
  Rng& protocol_rng() { return protocol_rng_; }

  /// Queries currently awaiting their deadline (0 after Run()).
  size_t pending_query_count() const { return pending_.size(); }
  /// Queries whose metrics slots are still addressable by in-flight messages
  /// (0 after Run(): every query was cleaned up).
  size_t tracked_query_count() const { return slot_of_.size(); }

  /// One-way overlay-link delay between two peers (RTT/2).
  sim::SimTime OneWayDelay(PeerId a, PeerId b) const;

  /// Sends a Bloom delta from `from` to neighbor `to`: schedules delivery and
  /// charges the maintenance-traffic accounts.
  void SendBloomUpdate(PeerId from, PeerId to, overlay::BloomUpdateMessage update);

  /// Charges maintenance traffic without a scheduled message (used by the
  /// full-filter exchange when a link comes up).
  void ChargeMaintenance(uint64_t messages, uint64_t bytes);

 private:
  explicit Engine(const ExperimentConfig& config);

  /// Responses a query collects while in flight, finalized at the deadline.
  struct PendingQuery {
    size_t slot = 0;
    PeerId requester = kInvalidPeer;
    LocId requester_loc = 0;
    std::vector<KeywordId> keywords;  ///< sorted ascending
    struct Offer {
      overlay::ResponseRecord record;
      PeerId responder = kInvalidPeer;
    };
    std::vector<Offer> offers;
  };

  Status Setup();

  // Query lifecycle. Forwarded queries share one immutable message per hop
  // (shared_ptr), so fan-out costs O(targets) pointer copies.
  void SubmitQuery(const catalog::QueryEvent& ev);
  void DeliverQuery(PeerId to, PeerId from,
                    std::shared_ptr<const overlay::QueryMessage> msg);
  void DeliverResponse(PeerId to, PeerId from, overlay::ResponseMessage msg);
  void ForwardQuery(PeerId node, PeerId from, const overlay::QueryMessage& msg);
  void SendResponse(PeerId responder, PeerId next_hop,
                    overlay::ResponseMessage msg);
  void FinalizeQuery(QueryId qid);
  void CleanupQuery(QueryId qid);

  /// Records a file-store answer's records for `node` against `query`
  /// (empty when nothing matches).
  std::vector<overlay::ResponseRecord> AnswerFromFileStore(
      PeerId node, const overlay::QueryMessage& query);

  // Churn lifecycle.
  void ScheduleDeparture(PeerId p);
  void ScheduleRejoin(PeerId p);
  void HandleDeparture(PeerId p);
  void HandleRejoin(PeerId p);

  /// Registers `count` new links from p to random peers and fires OnLinkUp.
  void RepairLinks(PeerId p, size_t count);

  /// Metrics slot of a query, or SIZE_MAX after cleanup.
  size_t SlotOf(QueryId qid) const;

  ExperimentConfig config_;
  sim::Simulator sim_;
  Rng root_rng_;
  Rng protocol_rng_;
  Rng selection_rng_;
  Rng churn_rng_;

  std::unique_ptr<net::Underlay> underlay_;
  std::unique_ptr<overlay::OverlayGraph> graph_;
  catalog::FileCatalog catalog_;
  catalog::QueryWorkload workload_;
  std::unique_ptr<Protocol> protocol_;
  overlay::ChurnModel churn_model_;

  std::vector<NodeState> nodes_;
  std::unordered_map<QueryId, PendingQuery> pending_;
  std::unordered_map<QueryId, size_t> slot_of_;
  /// Peers whose seen/reverse-path tables mention a query (for cleanup).
  std::unordered_map<QueryId, std::vector<PeerId>> touched_;

  metrics::MetricsCollector metrics_;
};

}  // namespace locaware::core
