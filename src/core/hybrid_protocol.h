// Structured/unstructured hybrid (PR 10): Locaware's location-aware index
// caching serves the popular head of the query distribution; the Chord DHT
// (src/dht/) serves the rare tail.
//
// The unstructured half is deliberately *narrower* than Locaware: queries
// only follow Bloom-matched links (tier 1) — the gid tier and the
// degree-ranked fallback walk are dropped. A query whose keywords no nearby
// cache advertises therefore leaves the origin with fanout 0, and that is
// exactly the escalation signal: the origin starts an iterative DHT lookup
// instead of burning TTL-bounded fallback hops. Popular keywords ride the
// cheap cache path (traffic <= Locaware by construction), rare ones resolve
// in O(log n) DHT hops (success >= flooding, which gives up at TTL range).
#pragma once

#include "core/locaware_protocol.h"

namespace locaware::core {

class HybridProtocol final : public LocawareProtocol {
 public:
  using LocawareProtocol::LocawareProtocol;

  ProtocolKind kind() const override { return ProtocolKind::kHybrid; }
  const char* name() const override { return "Hybrid"; }

  /// Bloom tier only — no gid tier, no fallback walk (see file comment).
  PeerVec ForwardTargets(Engine& engine, PeerId node,
                         const overlay::QueryMessage& query, PeerId from) override;

  /// Escalates to the DHT when the unstructured forward went nowhere.
  void OnQuerySubmitted(Engine& engine, const overlay::QueryMessage& query,
                        size_t fanout) override;
};

}  // namespace locaware::core
