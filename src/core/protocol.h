// The strategy interface the Engine drives. All four systems share the same
// message plumbing (TTL, GUID dedup, reverse-path responses — Engine's job)
// and differ in three decisions:
//   1. which neighbors receive a forwarded query        (ForwardTargets)
//   2. who caches a passing response, and how           (ObserveResponse)
//   3. how a node answers from its response index       (AnswerFromIndex)
// plus periodic maintenance (Locaware's Bloom gossip) and link-lifecycle
// hooks (filter exchange on new links).
#pragma once

#include <memory>
#include <vector>

#include "common/small_vector.h"
#include "common/types.h"
#include "core/protocol_params.h"
#include "overlay/message.h"

namespace locaware::core {

class Engine;

/// Forwarding target lists: bounded by a node's degree (typical overlay
/// degree is a handful) or the routed protocols' fallback fanout. Inline so
/// the per-delivery forwarding decision does not allocate.
using PeerVec = SmallVector<PeerId, 8>;

/// Group lists the routed protocols hash toward: one group for Dicas, one
/// per distinct query keyword for Dicas-Keys (K <= 3 by default).
using GroupVec = SmallVector<GroupId, 4>;

/// \brief Per-protocol behaviour. Stateless apart from the params copy; all
/// mutable state lives in the Engine's NodeState array.
class Protocol {
 public:
  explicit Protocol(const ProtocolParams& params) : params_(params) {}
  virtual ~Protocol() = default;

  virtual ProtocolKind kind() const = 0;
  virtual const char* name() const = 0;

  /// Neighbors of `node` that should receive `query`, never including
  /// `from` (the neighbor it arrived from; kInvalidPeer at the origin).
  virtual PeerVec ForwardTargets(Engine& engine, PeerId node,
                                 const overlay::QueryMessage& query,
                                 PeerId from) = 0;

  /// Called at every reverse-path hop (including the requester) with a
  /// passing response; implements each protocol's caching rule.
  virtual void ObserveResponse(Engine& engine, PeerId node,
                               const overlay::ResponseMessage& response) = 0;

  /// Attempts to answer `query` from `node`'s response index. Returns the
  /// records to send back (empty = no index answer). May mutate the index
  /// (Locaware appends the requester as a new provider, §4.1.2).
  virtual overlay::RecordVec AnswerFromIndex(
      Engine& engine, PeerId node, const overlay::QueryMessage& query) = 0;

  /// Whether a node that answered keeps forwarding the query. Flooding does
  /// (Gnutella semantics); the routed protocols stop on hit ("propagated
  /// until a satisfying file is found", §4.2).
  virtual bool ForwardAfterHit() const { return false; }

  /// A query left its origin without a local answer; `fanout` is how many
  /// neighbors the unstructured forward reached (0 = the query is going
  /// nowhere). The structured protocols use this to start/escalate a DHT
  /// lookup; default ignores. Runs on the origin's shard, right after the
  /// forward fan-out was scheduled.
  virtual void OnQuerySubmitted(Engine& engine, const overlay::QueryMessage& query,
                                size_t fanout);

  /// Periodic maintenance. Base implementation expires stale index entries;
  /// Locaware additionally syncs its Bloom filter and gossips deltas.
  virtual void OnMaintenanceTick(Engine& engine, PeerId node);

  /// Bloom-update delivery (Locaware only; default ignores).
  virtual void OnBloomUpdate(Engine& engine, PeerId node,
                             const overlay::BloomUpdateMessage& update);

  /// A link appeared / disappeared (static setup path). Touches both
  /// endpoints at once, so it is only legal outside partitioned churn runs;
  /// the message-routed churn path uses OnNeighborUp/OnPeerDeparted instead.
  /// Locaware exchanges full filters and Gids on new links.
  virtual void OnLinkUp(Engine& engine, PeerId a, PeerId b);
  virtual void OnLinkDown(Engine& engine, PeerId a, PeerId b);

  /// One endpoint of a repaired link learned of its new neighbor through a
  /// LinkProbe/LinkAccept message (executing on `node`'s shard). `peer` is
  /// the remote side's announce; only `node`'s state may be mutated.
  virtual void OnNeighborUp(Engine& engine, PeerId node,
                            const overlay::LinkAnnounce& peer);

  /// `node` received `departed`'s LinkDrop: the neighbor left the network.
  /// Base implementation invalidates every response-index entry naming the
  /// departed peer as a provider; Locaware additionally mirrors the removals
  /// into its counting Bloom filter so the next maintenance tick gossips the
  /// delta (the existing counting-Bloom invalidation path).
  virtual void OnPeerDeparted(Engine& engine, PeerId node, PeerId departed);

  /// Provider-selection default when the config leaves it unset.
  virtual SelectionStrategy DefaultSelection() const {
    return SelectionStrategy::kRandom;
  }

  const ProtocolParams& params() const { return params_; }

 protected:
  ProtocolParams params_;
};

/// Builds the protocol implementation for `kind`.
std::unique_ptr<Protocol> MakeProtocol(ProtocolKind kind, const ProtocolParams& params);

}  // namespace locaware::core
