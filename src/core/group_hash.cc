#include "core/group_hash.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"
#include "common/string_util.h"

namespace locaware::core {

GroupId GroupOfKeywords(const std::vector<std::string>& keywords, uint16_t num_groups) {
  LOCAWARE_CHECK_GT(num_groups, 0u);
  std::vector<std::string> sorted = keywords;
  std::sort(sorted.begin(), sorted.end());
  const std::string canonical = Join(sorted, " ");
  return static_cast<GroupId>(Fnv1a64(canonical) % num_groups);
}

GroupId GroupOfFilename(const std::string& filename, uint16_t num_groups) {
  return GroupOfKeywords(TokenizeKeywords(filename), num_groups);
}

GroupId GroupOfKeyword(const std::string& keyword, uint16_t num_groups) {
  LOCAWARE_CHECK_GT(num_groups, 0u);
  return static_cast<GroupId>(Fnv1a64(keyword) % num_groups);
}

std::vector<GroupId> KeywordGroups(const std::vector<std::string>& keywords,
                                   uint16_t num_groups) {
  std::vector<GroupId> groups;
  for (const std::string& kw : keywords) {
    const GroupId g = GroupOfKeyword(kw, num_groups);
    if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
      groups.push_back(g);
    }
  }
  return groups;
}

GroupId GroupOfSetFnv(uint64_t set_fnv, uint16_t num_groups) {
  LOCAWARE_CHECK_GT(num_groups, 0u);
  return static_cast<GroupId>(set_fnv % num_groups);
}

GroupId GroupOfKeywordFnv(uint64_t keyword_fnv, uint16_t num_groups) {
  LOCAWARE_CHECK_GT(num_groups, 0u);
  return static_cast<GroupId>(keyword_fnv % num_groups);
}

}  // namespace locaware::core
