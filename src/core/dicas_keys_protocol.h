// Dicas-Keys: the keyword-search strategy for Dicas the paper describes in
// §2 — "caching indexes based on hashing query keywords instead of the whole
// filename, which causes a large amount of duplicated cached indexes".
//
// Identical plumbing to Dicas except that group membership is per *keyword*:
// a response for f is cached in every group hash(kw_i) mod M (one duplicated
// index per distinct keyword group), and a query routes toward the group of
// one of its keywords. The duplication wastes the bounded index capacity,
// which is why the paper measures Dicas-Keys below Dicas on success rate.
#pragma once

#include "core/dicas_protocol.h"

namespace locaware::core {

class DicasKeysProtocol final : public DicasProtocol {
 public:
  using DicasProtocol::DicasProtocol;

  ProtocolKind kind() const override { return ProtocolKind::kDicasKeys; }
  const char* name() const override { return "Dicas-Keys"; }

 protected:
  GroupVec QueryGroups(Engine& engine,
                       const overlay::QueryMessage& query) const override;
  GroupVec CacheGroups(Engine& engine,
                       const overlay::ResponseMessage& response,
                       FileId file) const override;
  bool HitVisible(Engine& engine, const NodeState& node, FileId file,
                  const overlay::QueryMessage& query) const override;
};

}  // namespace locaware::core
