// Group-id hashing (paper §3.2, eq. 1): Gid(n) matches filename f when
// hash(f) mod M == Gid(n).
//
// Filenames are hashed over their *canonically ordered* keywords, so a query
// carrying all K keywords of a filename (in any order) hashes to the
// filename's group — that is the "filename search" Dicas was designed for.
// A query with fewer keywords hashes to an unrelated group, which is exactly
// the keyword-search weakness the paper describes (§2, §4.2).
#pragma once

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace locaware::core {

/// Group of a filename's keyword set: hash over sorted keywords, mod M.
GroupId GroupOfKeywords(const std::vector<std::string>& keywords, uint16_t num_groups);

/// Group of a raw filename string (tokenizes, then GroupOfKeywords).
GroupId GroupOfFilename(const std::string& filename, uint16_t num_groups);

/// Group of a single keyword — the Dicas-Keys per-keyword hash.
GroupId GroupOfKeyword(const std::string& keyword, uint16_t num_groups);

/// All distinct per-keyword groups of a keyword set (Dicas-Keys caches one
/// index copy in each of these groups — the duplication the paper criticizes).
std::vector<GroupId> KeywordGroups(const std::vector<std::string>& keywords,
                                   uint16_t num_groups);

// --- id-plane entry points --------------------------------------------------
// The data plane never re-hashes strings: the catalog precomputes each
// keyword's FNV (FileCatalog::KeywordFnv) and each set's canonical FNV
// (CanonicalSetFnv / FileSetFnv, identical preimage to GroupOfKeywords), and
// these reduce the precomputed hash mod M.

/// Group of a canonical keyword-set hash (CanonicalSetFnv / FileSetFnv).
/// Equals GroupOfKeywords of the corresponding strings.
GroupId GroupOfSetFnv(uint64_t set_fnv, uint16_t num_groups);

/// Group of a single keyword's precomputed FNV (FileCatalog::KeywordFnv).
/// Equals GroupOfKeyword of the corresponding string.
GroupId GroupOfKeywordFnv(uint64_t keyword_fnv, uint16_t num_groups);

/// All distinct per-keyword groups of an id set. `fnv_of` maps a KeywordId
/// to its precomputed FNV (typically FileCatalog::KeywordFnv) — a callable
/// rather than the catalog itself, so this low-level hashing header stays
/// free of catalog dependencies.
/// `GroupsOut` is any push_back-able GroupId container — std::vector by
/// default; the hot data plane passes a SmallVector to keep the per-response
/// grouping allocation-free.
template <typename GroupsOut = std::vector<GroupId>, typename KeywordFnvFn>
GroupsOut KeywordGroupsOfIds(std::span<const KeywordId> kws,
                             KeywordFnvFn&& fnv_of,
                             uint16_t num_groups) {
  GroupsOut groups;
  for (KeywordId kw : kws) {
    const GroupId g = GroupOfKeywordFnv(fnv_of(kw), num_groups);
    if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
      groups.push_back(g);
    }
  }
  return groups;
}

}  // namespace locaware::core
