// Group-id hashing (paper §3.2, eq. 1): Gid(n) matches filename f when
// hash(f) mod M == Gid(n).
//
// Filenames are hashed over their *canonically ordered* keywords, so a query
// carrying all K keywords of a filename (in any order) hashes to the
// filename's group — that is the "filename search" Dicas was designed for.
// A query with fewer keywords hashes to an unrelated group, which is exactly
// the keyword-search weakness the paper describes (§2, §4.2).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace locaware::core {

/// Group of a filename's keyword set: hash over sorted keywords, mod M.
GroupId GroupOfKeywords(const std::vector<std::string>& keywords, uint16_t num_groups);

/// Group of a raw filename string (tokenizes, then GroupOfKeywords).
GroupId GroupOfFilename(const std::string& filename, uint16_t num_groups);

/// Group of a single keyword — the Dicas-Keys per-keyword hash.
GroupId GroupOfKeyword(const std::string& keyword, uint16_t num_groups);

/// All distinct per-keyword groups of a keyword set (Dicas-Keys caches one
/// index copy in each of these groups — the duplication the paper criticizes).
std::vector<GroupId> KeywordGroups(const std::vector<std::string>& keywords,
                                   uint16_t num_groups);

}  // namespace locaware::core
