#include "core/hybrid_protocol.h"

#include "core/engine.h"

namespace locaware::core {

PeerVec HybridProtocol::ForwardTargets(Engine& engine, PeerId node,
                                       const overlay::QueryMessage& query,
                                       PeerId from) {
  return BloomMatchedNeighbors(engine, node, query, from);
}

void HybridProtocol::OnQuerySubmitted(Engine& engine,
                                      const overlay::QueryMessage& query,
                                      size_t fanout) {
  // fanout > 0: some neighbor's filter claims the keywords — trust the cache
  // path. fanout == 0: local index missed (or we would not be here) and no
  // neighbor advertises the keywords — the unstructured half is out of
  // ideas, escalate.
  if (fanout == 0) engine.StartDhtQueryLookup(query, /*count_as_escalation=*/true);
}

}  // namespace locaware::core
