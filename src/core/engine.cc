#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/provider_selection.h"
#include "net/landmark.h"

namespace locaware::core {

Engine::Engine(const ExperimentConfig& config)
    : config_(config), num_shards_(config.scheduler.shards), root_rng_(config.seed) {
  Rng decisions = root_rng_.Split("decisions");
  decision_seed_ = decisions.NextU64();
  Rng churn = root_rng_.Split("churn");
  churn_seed_ = churn.NextU64();
}

Result<std::unique_ptr<Engine>> Engine::Create(const ExperimentConfig& config) {
  // Normalize nested sizes from the top-level fields so callers set each
  // quantity exactly once.
  ExperimentConfig cfg = config;
  cfg.underlay.num_peers = cfg.num_peers;
  cfg.underlay.num_landmarks = cfg.num_landmarks;

  if (cfg.scheduler.shards == 0) {
    return Status::InvalidArgument("scheduler.shards must be > 0");
  }

  auto engine = std::unique_ptr<Engine>(new Engine(cfg));
  LOCAWARE_RETURN_NOT_OK(engine->Setup());
  return engine;
}

Status Engine::Setup() {
  if (config_.num_landmarks == 0) {
    return Status::InvalidArgument("num_landmarks must be > 0 (locIds need landmarks)");
  }

  // 1. Underlay (physical network + landmarks).
  Rng underlay_rng = root_rng_.Split("underlay");
  if (config_.use_uniform_underlay) {
    net::UniformUnderlayConfig ucfg;
    ucfg.num_peers = config_.num_peers;
    ucfg.num_landmarks = config_.num_landmarks;
    ucfg.min_rtt_ms = config_.underlay.min_rtt_ms;
    ucfg.max_rtt_ms = config_.underlay.max_rtt_ms;
    auto built = net::UniformUnderlay::Build(ucfg, &underlay_rng);
    if (!built.ok()) return built.status();
    underlay_ = std::move(built).ValueOrDie();
  } else {
    auto built = net::GeometricUnderlay::Build(config_.underlay, &underlay_rng);
    if (!built.ok()) return built.status();
    underlay_ = std::move(built).ValueOrDie();
  }
  const std::vector<LocId> loc_ids = net::ComputeAllLocIds(*underlay_);

  // 2. Catalog + workload + initial shared files. Before the shard placement
  // on purpose: the clustered strategy weighs peers by the workload's
  // requester histogram. RNG splits are name-keyed and leave the root
  // untouched, so this reordering changes no stream.
  Rng catalog_rng = root_rng_.Split("catalog");
  auto built_catalog = catalog::FileCatalog::Generate(config_.catalog, &catalog_rng);
  if (!built_catalog.ok()) return built_catalog.status();
  catalog_ = std::move(built_catalog).ValueOrDie();

  if (!config_.trace_path.empty()) {
    // Either trace format (text or binary), sniffed by magic.
    auto loaded = catalog::QueryWorkload::LoadAuto(config_.trace_path, &catalog_);
    if (!loaded.ok()) return loaded.status();
    workload_ = std::move(loaded).ValueOrDie();
    // A trace written against a different universe must not index out of
    // bounds silently.
    for (const catalog::QueryEvent& ev : workload_.queries()) {
      if (ev.requester >= config_.num_peers) {
        return Status::InvalidArgument("trace requester exceeds num_peers");
      }
      if (ev.target >= catalog_.num_files()) {
        return Status::InvalidArgument("trace target exceeds catalog size");
      }
    }
  } else {
    Rng workload_rng = root_rng_.Split("workload");
    auto built_workload = catalog::QueryWorkload::Generate(
        config_.workload, catalog_, config_.num_peers, &workload_rng);
    if (!built_workload.ok()) return built_workload.status();
    workload_ = std::move(built_workload).ValueOrDie();
  }

  Rng placement_rng = root_rng_.Split("placement");
  const auto initial_files = catalog::AssignInitialFiles(
      config_.num_peers, config_.files_per_peer, catalog_, &placement_rng);

  // 3. Peer → shard placement: the immutable map every shard_of consumer
  // (ownership asserts, arena binding, event scheduling, slot/touched maps,
  // churn owner events, metrics merge) reads for the rest of the run.
  {
    std::vector<size_t> peer_location(config_.num_peers);
    for (PeerId p = 0; p < config_.num_peers; ++p) {
      peer_location[p] = underlay_->LocationOf(p);
    }
    if (config_.scheduler.placement == sim::PlacementStrategy::kClustered) {
      // Expected per-peer load: 1 (baseline liveness/maintenance) + the
      // peer's query count — deterministic integer weights.
      std::vector<uint64_t> peer_weight(config_.num_peers, 1);
      for (const catalog::QueryEvent& ev : workload_.queries()) {
        ++peer_weight[ev.requester];
      }
      placement_ = sim::ShardPlacement::Clustered(
          num_shards_, peer_location, peer_weight, [this](size_t a, size_t b) {
            return underlay_->PairRttLowerBoundMs(a, b);
          });
    } else {
      placement_ = sim::ShardPlacement::Modulo(num_shards_, peer_location);
    }
  }

  // 3b. The simulator. The scalar fallback lookahead is half the underlay's
  // minimum distinct-pair RTT: no cross-shard message can arrive sooner, so
  // every shard may safely run that far past the global minimum event time.
  // On top of it, each shard *pair* gets a tighter bound from the underlay's
  // locality structure (BuildLookaheadMatrix over the placement's location
  // digests), so shards whose peers are all far apart synchronize far less
  // often than the global min would force.
  const sim::SimTime lookahead = sim::FromMs(underlay_->MinPairRttMs() / 2.0);
  if (num_shards_ > 1) {
    if (lookahead <= 0) {
      return Status::InvalidArgument(
          "underlay cannot bound its minimum link latency; shards > 1 needs a "
          "positive conservative lookahead");
    }
    if (config_.params.query_deadline < lookahead) {
      return Status::InvalidArgument(
          "query_deadline below the cross-shard lookahead; cleanup events "
          "would violate the conservative window");
    }
  }
  sim::ShardedSimulatorConfig sim_cfg;
  sim_cfg.num_shards = num_shards_;
  sim_cfg.num_workers = config_.scheduler.workers;
  sim_cfg.lookahead = lookahead;
  sim_cfg.work_stealing = config_.scheduler.work_stealing;
  if (num_shards_ > 1) {
    sim_cfg.lookahead_matrix = BuildLookaheadMatrix(lookahead);
  }
  sim_cfg.num_sources = static_cast<sim::SourceId>(config_.num_peers) + 1;
  sim_ = std::make_unique<sim::ShardedSimulator>(sim_cfg);
  shards_.resize(num_shards_);

  // 3c. Shard-local arenas, reserved from the placement's peer counts. Every
  // arena-aware container a shard's peers own (overlay adjacency rows, file
  // stores, response-index keyword/provider/posting lists) spills into its
  // shard's arena, so allocation locality matches execution locality and
  // mid-run growth never takes the global allocator's lock.
  constexpr size_t kArenaBytesPerPeer = 64;
  const std::vector<size_t>& shard_peers = placement_.shard_peer_counts();
  arenas_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    arenas_.push_back(std::make_unique<common::Arena>());
    arenas_[s]->Reserve(shard_peers[s] * kArenaBytesPerPeer);
    // The shard's tracking tables draw their flat buffers from its arena;
    // arenas_ is declared before shards_, so the arenas outlive the tables.
    shards_[s].pending.set_arena(arenas_[s].get());
    shards_[s].slot_of.set_arena(arenas_[s].get());
    shards_[s].touched.set_arena(arenas_[s].get());
  }

  // 3d. Overlay.
  Rng overlay_rng = root_rng_.Split("overlay");
  overlay::OverlayConfig ocfg;
  ocfg.num_peers = config_.num_peers;
  ocfg.avg_degree = config_.avg_degree;
  auto built_graph = overlay::OverlayGraph::Generate(ocfg, &overlay_rng);
  if (!built_graph.ok()) return built_graph.status();
  graph_ = std::make_unique<overlay::OverlayGraph>(std::move(built_graph).ValueOrDie());
  graph_->BindArenas([this](PeerId p) { return arenas_[shard_of(p)].get(); });

  // 4. Nodes.
  if (config_.params.num_groups == 0) {
    return Status::InvalidArgument("num_groups must be > 0");
  }
  Rng gid_rng = root_rng_.Split("gids");
  nodes_.resize(config_.num_peers);
  dht_family_ = config_.protocol == ProtocolKind::kDht ||
                config_.protocol == ProtocolKind::kHybrid;
  // kDht runs without any response index; kHybrid carries Locaware's full
  // unstructured cache stack alongside the DHT routing state.
  const bool caches = config_.protocol != ProtocolKind::kFlooding &&
                      config_.protocol != ProtocolKind::kDht;
  const bool is_locaware = config_.protocol == ProtocolKind::kLocaware ||
                           config_.protocol == ProtocolKind::kHybrid;
  for (PeerId p = 0; p < config_.num_peers; ++p) {
    NodeState& n = nodes_[p];
    n.id = p;
    n.loc_id = loc_ids[p];
    n.gid = static_cast<GroupId>(gid_rng.UniformInt(0, config_.params.num_groups - 1));
    common::Arena* arena = arenas_[shard_of(p)].get();
    n.file_store.set_arena(arena);
    n.file_store.assign(initial_files[p].begin(), initial_files[p].end());
    // Flat per-peer tables draw their buffers from the owner shard's arena
    // too (same provenance rule as the spill vectors above).
    n.neighbor_filters.set_arena(arena);
    n.neighbor_gids.set_arena(arena);
    n.neighbor_degree.set_arena(arena);
    n.seen_queries.set_arena(arena);
    n.reverse_path.set_arena(arena);
    if (caches) {
      cache::ResponseIndexConfig ri_cfg = config_.params.ri;
      ri_cfg.eviction_seed = config_.seed ^ (0x9e3779b97f4a7c15ULL * (p + 1));
      ri_cfg.arena = arena;
      n.ri = std::make_unique<cache::ResponseIndex>(ri_cfg);
    }
    if (is_locaware) {
      n.keyword_filter = std::make_unique<bloom::CountingBloomFilter>(
          config_.params.bloom_bits, config_.params.bloom_hashes);
      n.advertised_filter = std::make_unique<bloom::BloomFilter>(
          config_.params.bloom_bits, config_.params.bloom_hashes);
    }
    if (dht_family_) {
      n.dht = std::make_unique<dht::RoutingState>();
      n.dht->BindArena(arena);
    }
  }

  // 5. Protocol + initial link handshakes.
  protocol_ = MakeProtocol(config_.protocol, config_.params);
  for (PeerId p = 0; p < config_.num_peers; ++p) {
    for (PeerId nb : graph_->Neighbors(p)) {
      if (nb > p) protocol_->OnLinkUp(*this, p, nb);
    }
  }

  // 6. Churn. The whole on/off schedule is precomputed from stable
  // per-(peer, cycle) streams; transitions execute as owner-shard events and
  // all link rewiring travels as LinkDrop/LinkProbe/LinkAccept messages, so
  // churn never touches another shard's mutable state and composes with any
  // shard count.
  auto churn = overlay::ChurnModel::Create(config_.churn);
  if (!churn.ok()) return churn.status();
  churn_model_ = std::move(churn).ValueOrDie();
  if (config_.churn.enabled) {
    graph_->SetPartitionedOwnership(num_shards_, placement_.owner_map());
    churn_timeline_ = overlay::ChurnTimeline::Build(churn_model_, churn_seed_,
                                                    config_.num_peers, RunHorizon());
    // Seed the degree hints the initial handshakes would have announced; the
    // static graph is still consistent here, so these start exact.
    for (PeerId p = 0; p < config_.num_peers; ++p) {
      NodeState& n = nodes_[p];
      for (PeerId nb : graph_->Neighbors(p)) {
        n.neighbor_degree[nb] = static_cast<uint32_t>(graph_->Degree(nb));
      }
    }
    ScheduleChurnTimeline();
  }

  // 6b. Chord ring + initial routing tables. The ring order is an immutable
  // function of the peer count (the DHT's bootstrap directory, like the
  // churn timeline); the per-peer tables are derived against the time-0
  // online set — every peer, since churn transitions all start later (a
  // default-constructed timeline reports everyone online).
  if (dht_family_) {
    dht_ring_ = dht::Ring::Build(config_.num_peers);
    const auto online_at_start = [&](PeerId c) {
      return !config_.churn.enabled || churn_timeline_.IsOnlineAt(c, 0);
    };
    for (PeerId p = 0; p < config_.num_peers; ++p) {
      dht::ComputeTables(dht_ring_, p, config_.params.dht_successors,
                         config_.params.dht_fingers, online_at_start,
                         nodes_[p].dht.get());
    }
  }

  // 7. Periodic maintenance (index expiry; Locaware Bloom gossip; under
  // churn, orphan re-attachment — a lone probe lost to a mid-flight
  // departure must not strand a peer at degree 0 for its whole session).
  // Start ticks are staggered so 1000 nodes do not fire in the same
  // microsecond. The initial offset events come from the controller source;
  // every rescheduled tick is keyed by the node itself, keeping the tick
  // chain's tie-break order shard-count-invariant.
  if (caches || config_.churn.enabled || dht_family_) {
    Rng stagger_rng = root_rng_.Split("maintenance");
    for (PeerId p = 0; p < config_.num_peers; ++p) {
      const sim::SimTime offset = static_cast<sim::SimTime>(stagger_rng.UniformInt(
          0, static_cast<uint64_t>(config_.params.maintenance_interval)));
      // Each queued tick is a plain [this, p] closure that reschedules
      // itself (MaintenanceTick); the chain lives in the event queue alone,
      // so ticks allocate nothing and leak nothing when the queue drains.
      // The initial event schedules before working, matching the historic
      // per-source sequence order.
      sim_->ScheduleAt(shard_of(p), /*src=*/0, offset, [this, p] {
        ScheduleFromNode(p, p, config_.params.maintenance_interval,
                         [this, p] { MaintenanceTick(p); });
        MaintenanceWork(p);
      });
    }
  }
  return Status::OK();
}

std::vector<sim::SimTime> Engine::BuildLookaheadMatrix(
    sim::SimTime scalar_lookahead) const {
  const uint32_t k = num_shards_;
  std::vector<sim::SimTime> matrix(static_cast<size_t>(k) * k, 0);
  for (sim::ShardId src = 0; src < k; ++src) {
    for (sim::ShardId dst = 0; dst < k; ++dst) {
      if (src == dst) continue;
      // The tightest claim the underlay makes about this shard pair: the min
      // of its pairwise bounds over every (src location, dst location)
      // combination. Empty digests (a shard with no peers) cannot send, so
      // any positive bound is valid; use the scalar.
      double bound_ms = std::numeric_limits<double>::infinity();
      for (size_t loc_a : placement_.ShardLocations(src)) {
        for (size_t loc_b : placement_.ShardLocations(dst)) {
          bound_ms = std::min(bound_ms, underlay_->PairRttLowerBoundMs(loc_a, loc_b));
        }
      }
      sim::SimTime la = std::isfinite(bound_ms) ? sim::FromMs(bound_ms / 2.0)
                                                : scalar_lookahead;
      // Never looser than the scalar floor; never beyond the query deadline,
      // so deadline-delayed cross-shard cleanup events always clear the
      // destination's window. Clamping down only narrows windows — still a
      // valid conservative bound.
      la = std::max(la, scalar_lookahead);
      la = std::min(la, config_.params.query_deadline);
      matrix[static_cast<size_t>(src) * k + dst] = la;
    }
  }
  return matrix;
}

NodeState& Engine::node(PeerId p) {
  LOCAWARE_CHECK_LT(p, nodes_.size());
  if (num_shards_ > 1) {
    // Shard-local ownership: inside a parallel run, mutable node state may
    // only be touched by the shard the peer lives on. Remote immutable facts
    // go through gid_of/loc_of instead.
    const sim::ShardId cur = sim::ShardedSimulator::current_shard();
    if (cur != sim::kNoShard) {
      LOCAWARE_CHECK_EQ(cur, shard_of(p)) << "cross-shard mutable node access";
    }
  }
  return nodes_[p];
}

const NodeState& Engine::node(PeerId p) const {
  LOCAWARE_CHECK_LT(p, nodes_.size());
  return nodes_[p];
}

LocId Engine::loc_of(PeerId p) const { return node(p).loc_id; }

GroupId Engine::gid_of(PeerId p) const { return node(p).gid; }

Rng Engine::DecisionRng(uint64_t domain, uint64_t a, uint64_t b) const {
  uint64_t x = decision_seed_;
  x = Mix64(x ^ (domain * 0x9e3779b97f4a7c15ULL));
  x = Mix64(x ^ a);
  x = Mix64(x ^ b);
  return Rng(x);
}

size_t Engine::pending_query_count() const {
  size_t total = 0;
  for (const ShardState& shard : shards_) total += shard.pending.size();
  return total;
}

size_t Engine::tracked_query_count() const {
  size_t total = 0;
  for (const ShardState& shard : shards_) total += shard.slot_of.size();
  return total;
}

sim::SimTime Engine::OneWayDelay(PeerId a, PeerId b) const {
  return sim::FromMs(underlay_->RttMs(a, b) / 2.0);
}

void Engine::ScheduleFromNode(PeerId src, PeerId dst, sim::SimTime delay,
                              sim::EventFn fn) {
  LOCAWARE_CHECK_GE(delay, 0);
  sim_->ScheduleAt(shard_of(dst), SourceOf(src), sim_->Now() + delay, std::move(fn));
}

void Engine::MaintenanceWork(PeerId p) {
  if (!graph_->IsAlive(p)) return;
  if (config_.protocol != ProtocolKind::kFlooding) {
    protocol_->OnMaintenanceTick(*this, p);
  }
  if (dht_family_) DhtMaintenance(p);
  if (config_.churn.enabled && graph_->Degree(p) == 0) {
    StartLinkProbes(p, 1);
  }
}

void Engine::MaintenanceTick(PeerId p) {
  MaintenanceWork(p);
  ScheduleFromNode(p, p, config_.params.maintenance_interval,
                   [this, p] { MaintenanceTick(p); });
}

void Engine::Run() {
  const auto& queries = workload_.queries();
  // Pre-register every query's metrics slot in every shard. Slots equal the
  // workload index everywhere, so per-shard counter contributions line up at
  // merge time; per-shard slot maps are erased by that query's cleanup event,
  // which is what stops post-deadline stragglers from charging traffic.
  // Per-shard submission counts: the basis for the pending-map and event-heap
  // reserves below (known sizes, so the storm path does zero rehash/regrow).
  std::vector<size_t> submissions(num_shards_, 0);
  for (const catalog::QueryEvent& ev : queries) ++submissions[shard_of(ev.requester)];

  for (sim::ShardId s = 0; s < num_shards_; ++s) {
    ShardState& shard = shards_[s];
    shard.slot_of.reserve(queries.size());
    shard.touched.reserve(queries.size());
    shard.pending.reserve(submissions[s]);
    for (const catalog::QueryEvent& ev : queries) {
      const size_t slot = shard.metrics.BeginQuery(ev.id, ev.requester, ev.submit_time);
      shard.metrics.Record(slot)->target_rank = workload_.RankOfFile(ev.target);
      shard.slot_of.try_emplace(ev.id, slot);
    }
  }

  // Pre-size the event heaps: one submission event per query up front, plus
  // headroom for the per-query message churn that replaces it. Callers who
  // know the workload shape (fig_common derives it from the trace size) can
  // override via the config hint.
  size_t event_hint = config_.scheduler.event_reserve_hint;
  if (event_hint == 0) {
    event_hint = *std::max_element(submissions.begin(), submissions.end()) + 1024;
  }
  sim_->ReserveEvents(event_hint);
  for (const catalog::QueryEvent& ev : queries) {
    sim_->ScheduleAt(shard_of(ev.requester), /*src=*/0, ev.submit_time,
                     [this, &ev] { SubmitQuery(ev); });
  }
  sim_->Run(RunHorizon());

  // Fold the per-shard collectors into the run-level view.
  std::vector<const metrics::MetricsCollector*> parts;
  parts.reserve(shards_.size());
  for (const ShardState& shard : shards_) parts.push_back(&shard.metrics);
  std::vector<uint32_t> origin_shard(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    origin_shard[i] = shard_of(queries[i].requester);
  }
  metrics_ = metrics::MetricsCollector::MergeShards(parts, origin_shard);

  // Scheduler counters ride along for reporting (bench counters, summary
  // tables) — they are shard/worker-dependent by nature and deliberately stay
  // out of the byte-compared metric JSON.
  const sim::SchedulerStats sched = sim_->stats();
  metrics_.SetSchedulerStats(sched.windows, sched.steals, sched.idle_ns);
}

size_t Engine::SlotOf(sim::ShardId shard, QueryId qid) const {
  const auto& slots = shards_[shard].slot_of;
  auto it = slots.find(qid);
  if (it == slots.end()) return SIZE_MAX;
  return it->second;
}

overlay::RecordVec Engine::AnswerFromFileStore(
    PeerId node_id, const overlay::QueryMessage& query) {
  // Message keywords are sorted by contract (SubmitQuery canonicalizes);
  // validate once here, then use the unchecked match in the per-file loop.
  LOCAWARE_CHECK(std::is_sorted(query.keywords.begin(), query.keywords.end()));
  overlay::RecordVec records;
  const NodeState& n = node(node_id);
  for (FileId f : n.file_store) {
    if (!catalog_.MatchesSorted(f, query.keywords)) continue;
    overlay::ResponseRecord record;
    record.file = f;
    record.providers.push_back(overlay::ProviderInfo{node_id, n.loc_id});
    record.from_index = false;
    records.push_back(std::move(record));
  }
  return records;
}

void Engine::SubmitQuery(const catalog::QueryEvent& ev) {
  ShardState& shard = shards_[shard_of(ev.requester)];
  const size_t slot = SlotOf(shard_of(ev.requester), ev.id);
  LOCAWARE_CHECK_NE(slot, SIZE_MAX) << "query submitted twice or never registered";

  if (!graph_->IsAlive(ev.requester)) {
    // Offline requester: the query is never issued. No messages exist, so
    // the local tracking entry can go immediately; remote shards hold only
    // the inert slot mapping, which the deferred cleanup sweeps so every
    // shard ends the run with zero tracked queries.
    CleanupShard(shard_of(ev.requester), ev.id);
    if (num_shards_ > 1) ScheduleCleanup(ev.requester, ev.id);
    return;
  }

  NodeState& origin = node(ev.requester);

  // Canonicalize the query's keyword ids once: sorted + deduplicated for
  // containment checks, canonical set hash for group routing.
  overlay::KeywordVec sorted_kws(ev.keywords.begin(), ev.keywords.end());
  std::sort(sorted_kws.begin(), sorted_kws.end());
  sorted_kws.erase(std::unique(sorted_kws.begin(), sorted_kws.end()),
                   sorted_kws.end());

  // A peer that already shares a matching file needs neither search nor
  // download. (sorted_kws was sorted two lines up: the unchecked match is
  // safe.)
  for (FileId f : origin.file_store) {
    if (catalog_.MatchesSorted(f, sorted_kws)) {
      metrics::QueryRecord* record = shard.metrics.Record(slot);
      record->success = true;
      record->source = metrics::AnswerSource::kLocalStore;
      record->provider_loc_match = true;
      CleanupShard(shard_of(ev.requester), ev.id);  // nothing in flight
      if (num_shards_ > 1) ScheduleCleanup(ev.requester, ev.id);
      return;
    }
  }

  overlay::QueryMessage query;
  query.qid = ev.id;
  query.origin = ev.requester;
  query.origin_loc = origin.loc_id;
  query.kw_set_fnv = catalog_.CanonicalSetFnv(sorted_kws);
  query.route_kw = ev.keywords.front();  // sampled order: a uniform pick
  query.keywords = sorted_kws;
  query.ttl = config_.params.ttl;
  query.hops = 0;

  PendingQuery pq;
  pq.slot = slot;
  pq.requester = ev.requester;
  pq.requester_loc = origin.loc_id;
  pq.keywords = std::move(sorted_kws);

  // The requester's own response index may already know providers.
  overlay::RecordVec local = protocol_->AnswerFromIndex(*this, ev.requester, query);
  if (!local.empty()) {
    for (overlay::ResponseRecord& record : local) {
      pq.offers.push_back(PendingQuery::Offer{std::move(record), ev.requester});
    }
    shard.pending.try_emplace(ev.id, std::move(pq));
    FinalizeQuery(ev.requester, ev.id);
    return;
  }

  shard.pending.try_emplace(ev.id, std::move(pq));
  origin.seen_queries.insert(ev.id);
  TouchPeer(shard_of(ev.requester), ev.id, ev.requester);

  const size_t fanout = ForwardQuery(ev.requester, kInvalidPeer, query);
  // The protocol sees every query that left its origin unanswered — the
  // DHT-backed protocols start their iterative lookup here (pure DHT always;
  // hybrid only when the unstructured fan-out found nowhere to go).
  protocol_->OnQuerySubmitted(*this, query, fanout);
  ScheduleFromNode(ev.requester, ev.requester, config_.params.query_deadline,
                   [this, origin_id = ev.requester, qid = ev.id] {
                     FinalizeQuery(origin_id, qid);
                   });
}

size_t Engine::ForwardQuery(PeerId node_id, PeerId from,
                            const overlay::QueryMessage& msg) {
  if (msg.ttl == 0) return 0;
  const PeerVec targets = protocol_->ForwardTargets(*this, node_id, msg, from);
  if (targets.empty()) return 0;

  // One immutable pooled message shared by every forwarded copy: fan-out
  // costs O(targets) refcount bumps, and the node (with its keyword vector's
  // capacity) is recycled when the last delivery runs — zero allocations in
  // steady state, where make_shared paid one per hop.
  QueryPayloadRef shared = query_pool_.Acquire(msg);
  shared.mutable_msg()->ttl -= 1;
  shared.mutable_msg()->hops += 1;

  const size_t slot = SlotOf(shard_of(node_id), msg.qid);
  const size_t wire_bytes = EstimateSizeBytes(*shared, catalog_);
  for (PeerId target : targets) {
    if (slot != SIZE_MAX) {
      metrics::QueryRecord* record = CollectorAt(node_id).Record(slot);
      ++record->query_msgs;
      record->query_bytes += wire_bytes;
    }
    ScheduleFromNode(node_id, target, OneWayDelay(node_id, target),
                     [this, target, node_id, shared] {
                       DeliverQuery(target, node_id, shared);
                     });
  }
  return targets.size();
}

void Engine::DeliverQuery(PeerId to, PeerId from, const QueryPayloadRef& msg_ref) {
  if (!graph_->IsAlive(to)) return;  // lost on a dead peer
  const overlay::QueryMessage& msg = *msg_ref;
  NodeState& n = node(to);
  if (!n.seen_queries.insert(msg.qid).second) return;  // duplicate: dropped
  n.reverse_path[msg.qid] = from;
  TouchPeer(shard_of(to), msg.qid, to);

  // Answer from the shared-file store first, then the response index
  // ("either in its file storage or in its response index", §4.2).
  overlay::RecordVec records = AnswerFromFileStore(to, msg);
  if (records.empty()) records = protocol_->AnswerFromIndex(*this, to, msg);

  const bool hit = !records.empty();
  if (hit) {
    overlay::ResponseMessage response;
    response.qid = msg.qid;
    response.responder = to;
    response.origin = msg.origin;
    response.origin_loc = msg.origin_loc;
    response.query_keywords = msg.keywords;
    response.records = std::move(records);
    SendResponse(to, from, response);
  }
  if (!hit || protocol_->ForwardAfterHit()) {
    ForwardQuery(to, from, msg);
  }
}

void Engine::SendResponse(PeerId sender, PeerId next_hop,
                          overlay::ResponseMessage msg) {
  const size_t slot = SlotOf(shard_of(sender), msg.qid);
  if (slot != SIZE_MAX) {
    metrics::QueryRecord* record = CollectorAt(sender).Record(slot);
    ++record->response_msgs;
    record->response_bytes += EstimateSizeBytes(msg, catalog_);
  }
  ScheduleFromNode(sender, next_hop, OneWayDelay(sender, next_hop),
                   [this, next_hop, sender, msg = std::move(msg)] {
                     DeliverResponse(next_hop, sender, msg);
                   });
}

void Engine::DeliverResponse(PeerId to, PeerId /*from*/, overlay::ResponseMessage msg) {
  if (!graph_->IsAlive(to)) return;  // response lost with the dead relay
  msg.hops += 1;

  // Every reverse-path peer (the requester included) may cache the passing
  // response, per the protocol's rule.
  protocol_->ObserveResponse(*this, to, msg);

  if (to == msg.origin) {
    ShardState& shard = shards_[shard_of(to)];
    auto it = shard.pending.find(msg.qid);
    if (it == shard.pending.end()) return;  // arrived after the deadline
    PendingQuery& pq = it->second;
    metrics::QueryRecord* record = shard.metrics.Record(pq.slot);
    ++record->responses_received;
    if (record->first_response_at == 0) {
      record->first_response_at = sim_->Now();
      record->first_response_hops = msg.hops;
    }
    for (overlay::ResponseRecord& rec : msg.records) {
      pq.offers.push_back(PendingQuery::Offer{std::move(rec), msg.responder});
    }
    return;
  }

  NodeState& n = node(to);
  auto next = n.reverse_path.find(msg.qid);
  if (next == n.reverse_path.end()) return;  // path lost (churn or cleanup)
  SendResponse(to, next->second, msg);
}

void Engine::FinalizeQuery(PeerId origin, QueryId qid) {
  ShardState& shard = shards_[shard_of(origin)];
  auto it = shard.pending.find(qid);
  if (it == shard.pending.end()) return;
  PendingQuery pq = std::move(it->second);
  shard.pending.erase(it);

  metrics::QueryRecord* record = shard.metrics.Record(pq.slot);

  // Distinct candidate providers, preserving offer order (earliest response
  // first; freshest providers first within a record). The requester itself is
  // never a candidate. Dedup is a linear scan over the list itself —
  // candidate counts are a handful (bounded by providers-per-file times
  // responders), so scanning beats a side hash set and allocates nothing.
  SmallVector<Candidate, 8> candidates;
  bool filtered_dead = false;
  for (const PendingQuery::Offer& offer : pq.offers) {
    for (const overlay::ProviderInfo& p : offer.record.providers) {
      if (p.peer == pq.requester) continue;
      const bool seen = std::any_of(
          candidates.begin(), candidates.end(),
          [&](const Candidate& c) { return c.provider == p.peer; });
      if (seen) continue;
      Candidate cand;
      cand.provider = p.peer;
      cand.loc_id = p.loc_id;
      cand.from_index = offer.record.from_index;
      cand.responder = offer.responder;
      cand.file = offer.record.file;
      candidates.push_back(cand);
    }
  }
  record->providers_offered = static_cast<uint32_t>(candidates.size());

  // A provider that has gone offline cannot serve the download (stale index).
  // Liveness comes from the immutable churn timeline: the provider may live
  // on any shard, and its mutable state is unreadable from here. Filtered
  // in place (order preserved) — no second list.
  if (config_.churn.enabled) {
    const sim::SimTime now = sim_->Now();
    Candidate* keep = candidates.begin();
    for (Candidate& c : candidates) {
      if (churn_timeline_.IsOnlineAt(c.provider, now)) {
        *keep++ = std::move(c);
      } else {
        filtered_dead = true;
        shard.metrics.AddStaleProviderHit();
      }
    }
    candidates.erase(keep, candidates.end());
  }

  if (candidates.empty()) {
    if (filtered_dead) shard.metrics.AddStaleFailure();
    ScheduleCleanup(origin, qid);
    return;  // record stays a failure
  }

  const SelectionStrategy strategy =
      config_.params.selection.value_or(protocol_->DefaultSelection());
  // Selection randomness is keyed by the query id: order-independent, so the
  // chosen provider cannot drift with shard count or event interleaving.
  Rng selection_rng = DecisionRng(kDecisionSelection, qid);
  const SelectionOutcome outcome = SelectProvider(
      strategy, candidates, pq.requester, pq.requester_loc, *underlay_, &selection_rng);
  record->probe_msgs += outcome.probe_msgs;
  record->probe_bytes += outcome.probe_msgs * EstimateSizeBytes(overlay::ProbeMessage{});

  const Candidate& chosen = candidates[outcome.chosen];
  record->success = true;
  if (chosen.responder == pq.requester) {
    record->source = metrics::AnswerSource::kLocalIndex;
  } else if (chosen.from_index) {
    record->source = metrics::AnswerSource::kResponseIndex;
  } else {
    record->source = metrics::AnswerSource::kFileStore;
  }
  record->download_distance_ms = underlay_->RttMs(pq.requester, chosen.provider);
  record->provider_loc_match = (loc_of(chosen.provider) == pq.requester_loc);

  // Natural replication (§3.1): the requester downloads the file and shares
  // it from now on.
  if (chosen.file != kInvalidFile) {
    NodeState& requester = node(pq.requester);
    if (!requester.SharesFile(chosen.file)) requester.file_store.push_back(chosen.file);
  }

  ScheduleCleanup(origin, qid);
}

void Engine::ScheduleCleanup(PeerId origin, QueryId qid) {
  // One event per shard: each shard erases its own peers' tracking state, at
  // the same instant a sequential run would. The deadline dwarfs the
  // lookahead (Create checks), so the cross-shard sends are always legal.
  const sim::SimTime at = sim_->Now() + config_.params.query_deadline;
  for (sim::ShardId s = 0; s < num_shards_; ++s) {
    sim_->ScheduleAt(s, SourceOf(origin), at,
                     [this, s, qid] { CleanupShard(s, qid); });
  }
}

void Engine::TouchPeer(sim::ShardId shard_id, QueryId qid, PeerId p) {
  auto [it, inserted] = shards_[shard_id].touched.try_emplace(qid);
  if (inserted) it->second.set_arena(arenas_[shard_id].get());
  it->second.push_back(p);
}

void Engine::CleanupShard(sim::ShardId shard_id, QueryId qid) {
  ShardState& shard = shards_[shard_id];
  auto touched = shard.touched.find(qid);
  if (touched != shard.touched.end()) {
    for (PeerId p : touched->second) {
      NodeState& n = node(p);
      n.seen_queries.erase(qid);
      n.reverse_path.erase(qid);
    }
    shard.touched.erase(touched);
  }
  shard.slot_of.erase(qid);
}

void Engine::SendBloomUpdate(PeerId from, PeerId to,
                             overlay::BloomUpdateMessage update) {
  CollectorAt(from).AddBloomUpdate(1, EstimateSizeBytes(update));
  ScheduleFromNode(from, to, OneWayDelay(from, to),
                   [this, to, update = std::move(update)] {
                     if (!graph_->IsAlive(to)) return;
                     protocol_->OnBloomUpdate(*this, to, update);
                   });
}

void Engine::ChargeMaintenance(uint64_t messages, uint64_t bytes) {
  // Counters are additive and merged at Run() exit, so any shard's collector
  // works; outside event execution (setup handshakes) shard 0 takes it.
  const sim::ShardId cur = sim::ShardedSimulator::current_shard();
  shards_[cur == sim::kNoShard ? 0 : cur].metrics.AddBloomUpdate(messages, bytes);
}

sim::SimTime Engine::RunHorizon() const {
  const auto& queries = workload_.queries();
  if (queries.empty()) return 0;
  return queries.back().submit_time + 2 * config_.params.query_deadline +
         sim::kSecond;
}

void Engine::ScheduleChurnTimeline() {
  const sim::SimTime horizon = RunHorizon();
  for (PeerId p = 0; p < config_.num_peers; ++p) {
    const std::vector<sim::SimTime>& trans = churn_timeline_.transitions(p);
    for (size_t i = 0; i < trans.size(); ++i) {
      if (trans[i] > horizon) break;
      if (i % 2 == 0) {
        sim_->ScheduleAt(shard_of(p), /*src=*/0, trans[i],
                         [this, p] { HandleDeparture(p); });
      } else {
        sim_->ScheduleAt(shard_of(p), /*src=*/0, trans[i],
                         [this, p] { HandleRejoin(p); });
      }
    }
  }
}

void Engine::HandleDeparture(PeerId p) {
  LOCAWARE_CHECK(graph_->IsAlive(p)) << "departure of offline peer " << p;
  CollectorAt(p).AddChurnEvent();

  // Drop only our own half of each link; the neighbors dissolve theirs when
  // the LinkDrop lands (and tolerate forwarding to us in the meantime — the
  // delivery guards drop messages at dead peers).
  const uint32_t ending_epoch = graph_->session_epoch(p);
  const std::vector<PeerId> dropped = graph_->GoOffline(p);
  for (PeerId nb : dropped) {
    overlay::LinkDropMessage msg{p, ending_epoch};
    CollectorAt(p).AddRepairTraffic(1, EstimateSizeBytes(msg));
    ScheduleFromNode(p, nb, OneWayDelay(p, nb),
                     [this, nb, msg] { DeliverLinkDrop(nb, msg); });
  }

  // Session state dies with the session; the response index survives on disk
  // (its entries age out through entry_ttl instead).
  NodeState& n = node(p);
  n.seen_queries.clear();
  n.reverse_path.clear();
  n.neighbor_filters.clear();
  n.neighbor_gids.clear();
  n.neighbor_degree.clear();
  // Routing tables, in-flight lookups and the owned keyword store die with
  // the session; republish after rejoin repopulates the ring.
  if (dht_family_) n.dht->ResetForDeparture();
}

void Engine::HandleRejoin(PeerId p) {
  LOCAWARE_CHECK(!graph_->IsAlive(p)) << "rejoin of online peer " << p;
  CollectorAt(p).AddChurnEvent();
  graph_->GoOnline(p);  // fresh session epoch
  StartLinkProbes(p, config_.churn.rejoin_links);
  // Rebuild routing tables immediately so the fresh session can route; its
  // keyword store refills via the next maintenance tick's republish
  // (last_publish was reset to the never-published sentinel at departure).
  if (dht_family_) DhtStabilize(p);
}

overlay::LinkAnnounce Engine::MakeAnnounce(PeerId p, bool with_filter) {
  NodeState& n = node(p);
  overlay::LinkAnnounce announce;
  announce.peer = p;
  announce.gid = n.gid;
  announce.epoch = graph_->session_epoch(p);
  announce.degree = static_cast<uint32_t>(graph_->Degree(p));
  if (with_filter && n.advertised_filter != nullptr) {
    announce.filter = *n.advertised_filter;
  }
  return announce;
}

void Engine::StartLinkProbes(PeerId p, size_t want) {
  NodeState& n = node(p);
  // One stream per probe round, keyed by (p, round). The round counter lives
  // on p and advances in p's event order, which is shard-count invariant.
  Rng rng = DecisionRng(kDecisionChurnLink, p, n.link_round++);
  const uint64_t num_peers = nodes_.size();
  std::vector<PeerId> picked;
  size_t attempts = 0;
  const size_t max_attempts = 100 * want + 100;
  while (picked.size() < want && attempts < max_attempts) {
    ++attempts;
    const PeerId cand = static_cast<PeerId>(rng.UniformInt(0, num_peers - 1));
    if (cand == p || graph_->HasHalfLink(p, cand)) continue;
    if (std::find(picked.begin(), picked.end(), cand) != picked.end()) continue;
    // The bootstrap directory only hands out currently-online peers. The
    // timeline is immutable, so this is a legal any-shard read — and the
    // candidate may still be gone by the time the probe lands.
    if (!churn_timeline_.IsOnlineAt(cand, sim_->Now())) continue;
    picked.push_back(cand);
  }
  for (PeerId cand : picked) {
    overlay::LinkProbeMessage msg{MakeAnnounce(p, /*with_filter=*/false)};
    CollectorAt(p).AddRepairTraffic(1, EstimateSizeBytes(msg));
    ScheduleFromNode(p, cand, OneWayDelay(p, cand),
                     [this, cand, msg = std::move(msg)] {
                       DeliverLinkProbe(cand, msg);
                     });
  }
}

void Engine::DeliverLinkDrop(PeerId to, const overlay::LinkDropMessage& msg) {
  if (!graph_->IsAlive(to)) return;  // lost on a dead peer
  if (!graph_->RemoveHalfLink(to, msg.from, msg.epoch)) return;  // stale drop
  node(to).neighbor_degree.erase(msg.from);
  protocol_->OnPeerDeparted(*this, to, msg.from);
  // Orphans re-attach to keep the overlay usable.
  if (graph_->Degree(to) == 0) StartLinkProbes(to, 1);
}

void Engine::DeliverLinkProbe(PeerId to, const overlay::LinkProbeMessage& msg) {
  if (!graph_->IsAlive(to)) return;  // probe lost on a dead peer
  const PeerId prober = msg.from.peer;
  // A prober whose session already ended (it left, or left and rejoined,
  // while the probe was in flight) will never act on our accept — its rejoin
  // starts a fresh epoch that rejects the echo. Model the handshake timing
  // out rather than install a half-link its other side can never match. (The
  // prober can still die while the accept is in flight — that ms-scale race
  // leaves a dangling half-edge here that degrades to wasted forwards until
  // our own departure or the prober's next probe refreshes it; real overlays
  // carry exactly this staleness.)
  if (!churn_timeline_.IsOnlineAt(prober, sim_->Now()) ||
      churn_timeline_.SessionEpochAt(prober, sim_->Now()) != msg.from.epoch) {
    return;
  }
  graph_->AddHalfLink(to, prober, msg.from.epoch);
  node(to).neighbor_degree[prober] = msg.from.degree;
  protocol_->OnNeighborUp(*this, to, msg.from);
  overlay::LinkAcceptMessage reply{MakeAnnounce(to, /*with_filter=*/true),
                                   msg.from.epoch};
  CollectorAt(to).AddRepairTraffic(1, EstimateSizeBytes(reply));
  ScheduleFromNode(to, prober, OneWayDelay(to, prober),
                   [this, prober, reply = std::move(reply)] {
                     DeliverLinkAccept(prober, reply);
                   });
}

void Engine::DeliverLinkAccept(PeerId to, const overlay::LinkAcceptMessage& msg) {
  if (!graph_->IsAlive(to)) return;  // we left again; accept arrives too late
  if (msg.prober_epoch != graph_->session_epoch(to)) return;  // stale session
  // The acceptor may have departed — or departed and rejoined under a fresh
  // epoch — while the accept was in flight (its LinkDrop could even arrive
  // first); skip acceptors whose accepting session is over.
  if (!churn_timeline_.IsOnlineAt(msg.from.peer, sim_->Now()) ||
      churn_timeline_.SessionEpochAt(msg.from.peer, sim_->Now()) !=
          msg.from.epoch) {
    return;
  }
  graph_->AddHalfLink(to, msg.from.peer, msg.from.epoch);
  node(to).neighbor_degree[msg.from.peer] = msg.from.degree;
  protocol_->OnNeighborUp(*this, to, msg.from);
}

size_t Engine::NeighborDegree(PeerId self, PeerId neighbor) {
  if (!config_.churn.enabled) return graph_->Degree(neighbor);
  const NodeState& n = node(self);
  auto it = n.neighbor_degree.find(neighbor);
  return it == n.neighbor_degree.end() ? 0 : static_cast<size_t>(it->second);
}

}  // namespace locaware::core
