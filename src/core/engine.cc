#include "core/engine.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/logging.h"
#include "core/provider_selection.h"
#include "net/landmark.h"

namespace locaware::core {

Engine::Engine(const ExperimentConfig& config)
    : config_(config),
      root_rng_(config.seed),
      protocol_rng_(root_rng_.Split("protocol")),
      selection_rng_(root_rng_.Split("selection")),
      churn_rng_(root_rng_.Split("churn")) {}

Result<std::unique_ptr<Engine>> Engine::Create(const ExperimentConfig& config) {
  // Normalize nested sizes from the top-level fields so callers set each
  // quantity exactly once.
  ExperimentConfig cfg = config;
  cfg.underlay.num_peers = cfg.num_peers;
  cfg.underlay.num_landmarks = cfg.num_landmarks;

  auto engine = std::unique_ptr<Engine>(new Engine(cfg));
  LOCAWARE_RETURN_NOT_OK(engine->Setup());
  return engine;
}

Status Engine::Setup() {
  if (config_.num_landmarks == 0) {
    return Status::InvalidArgument("num_landmarks must be > 0 (locIds need landmarks)");
  }

  // 1. Underlay (physical network + landmarks).
  Rng underlay_rng = root_rng_.Split("underlay");
  if (config_.use_uniform_underlay) {
    net::UniformUnderlayConfig ucfg;
    ucfg.num_peers = config_.num_peers;
    ucfg.num_landmarks = config_.num_landmarks;
    ucfg.min_rtt_ms = config_.underlay.min_rtt_ms;
    ucfg.max_rtt_ms = config_.underlay.max_rtt_ms;
    auto built = net::UniformUnderlay::Build(ucfg, &underlay_rng);
    if (!built.ok()) return built.status();
    underlay_ = std::move(built).ValueOrDie();
  } else {
    auto built = net::GeometricUnderlay::Build(config_.underlay, &underlay_rng);
    if (!built.ok()) return built.status();
    underlay_ = std::move(built).ValueOrDie();
  }
  const std::vector<LocId> loc_ids = net::ComputeAllLocIds(*underlay_);

  // 2. Overlay.
  Rng overlay_rng = root_rng_.Split("overlay");
  overlay::OverlayConfig ocfg;
  ocfg.num_peers = config_.num_peers;
  ocfg.avg_degree = config_.avg_degree;
  auto built_graph = overlay::OverlayGraph::Generate(ocfg, &overlay_rng);
  if (!built_graph.ok()) return built_graph.status();
  graph_ = std::make_unique<overlay::OverlayGraph>(std::move(built_graph).ValueOrDie());

  // 3. Catalog + workload + initial placement.
  Rng catalog_rng = root_rng_.Split("catalog");
  auto built_catalog = catalog::FileCatalog::Generate(config_.catalog, &catalog_rng);
  if (!built_catalog.ok()) return built_catalog.status();
  catalog_ = std::move(built_catalog).ValueOrDie();

  if (!config_.trace_path.empty()) {
    auto loaded = catalog::QueryWorkload::LoadTrace(config_.trace_path, &catalog_);
    if (!loaded.ok()) return loaded.status();
    workload_ = std::move(loaded).ValueOrDie();
    // A trace written against a different universe must not index out of
    // bounds silently.
    for (const catalog::QueryEvent& ev : workload_.queries()) {
      if (ev.requester >= config_.num_peers) {
        return Status::InvalidArgument("trace requester exceeds num_peers");
      }
      if (ev.target >= catalog_.num_files()) {
        return Status::InvalidArgument("trace target exceeds catalog size");
      }
    }
  } else {
    Rng workload_rng = root_rng_.Split("workload");
    auto built_workload = catalog::QueryWorkload::Generate(
        config_.workload, catalog_, config_.num_peers, &workload_rng);
    if (!built_workload.ok()) return built_workload.status();
    workload_ = std::move(built_workload).ValueOrDie();
  }

  Rng placement_rng = root_rng_.Split("placement");
  const auto placement = catalog::AssignInitialFiles(
      config_.num_peers, config_.files_per_peer, catalog_, &placement_rng);

  // 4. Nodes.
  if (config_.params.num_groups == 0) {
    return Status::InvalidArgument("num_groups must be > 0");
  }
  Rng gid_rng = root_rng_.Split("gids");
  nodes_.resize(config_.num_peers);
  const bool caches = config_.protocol != ProtocolKind::kFlooding;
  const bool is_locaware = config_.protocol == ProtocolKind::kLocaware;
  for (PeerId p = 0; p < config_.num_peers; ++p) {
    NodeState& n = nodes_[p];
    n.id = p;
    n.loc_id = loc_ids[p];
    n.gid = static_cast<GroupId>(gid_rng.UniformInt(0, config_.params.num_groups - 1));
    n.file_store = placement[p];
    if (caches) {
      cache::ResponseIndexConfig ri_cfg = config_.params.ri;
      ri_cfg.eviction_seed = config_.seed ^ (0x9e3779b97f4a7c15ULL * (p + 1));
      n.ri = std::make_unique<cache::ResponseIndex>(ri_cfg);
    }
    if (is_locaware) {
      n.keyword_filter = std::make_unique<bloom::CountingBloomFilter>(
          config_.params.bloom_bits, config_.params.bloom_hashes);
      n.advertised_filter = std::make_unique<bloom::BloomFilter>(
          config_.params.bloom_bits, config_.params.bloom_hashes);
    }
  }

  // 5. Protocol + initial link handshakes.
  protocol_ = MakeProtocol(config_.protocol, config_.params);
  for (PeerId p = 0; p < config_.num_peers; ++p) {
    for (PeerId nb : graph_->Neighbors(p)) {
      if (nb > p) protocol_->OnLinkUp(*this, p, nb);
    }
  }

  // 6. Churn.
  auto churn = overlay::ChurnModel::Create(config_.churn);
  if (!churn.ok()) return churn.status();
  churn_model_ = std::move(churn).ValueOrDie();
  if (config_.churn.enabled) {
    for (PeerId p = 0; p < config_.num_peers; ++p) ScheduleDeparture(p);
  }

  // 7. Periodic maintenance (index expiry; Locaware Bloom gossip). Start
  // ticks are staggered so 1000 nodes do not fire in the same microsecond.
  if (caches) {
    Rng stagger_rng = root_rng_.Split("maintenance");
    for (PeerId p = 0; p < config_.num_peers; ++p) {
      const sim::SimTime offset = static_cast<sim::SimTime>(stagger_rng.UniformInt(
          0, static_cast<uint64_t>(config_.params.maintenance_interval)));
      sim_.ScheduleAfter(offset, [this, p] {
        sim_.SchedulePeriodic(config_.params.maintenance_interval, [this, p] {
          if (graph_->IsAlive(p)) protocol_->OnMaintenanceTick(*this, p);
          return true;
        });
        if (graph_->IsAlive(p)) protocol_->OnMaintenanceTick(*this, p);
      });
    }
  }
  return Status::OK();
}

NodeState& Engine::node(PeerId p) {
  LOCAWARE_CHECK_LT(p, nodes_.size());
  return nodes_[p];
}

const NodeState& Engine::node(PeerId p) const {
  LOCAWARE_CHECK_LT(p, nodes_.size());
  return nodes_[p];
}

LocId Engine::loc_of(PeerId p) const { return node(p).loc_id; }

sim::SimTime Engine::OneWayDelay(PeerId a, PeerId b) const {
  return sim::FromMs(underlay_->RttMs(a, b) / 2.0);
}

void Engine::Run() {
  const auto& queries = workload_.queries();
  // Pre-size the event heap: one submission event per query up front, plus
  // headroom for the per-query message churn that replaces it.
  sim_.ReserveEvents(queries.size() + 1024);
  for (const catalog::QueryEvent& ev : queries) {
    sim_.ScheduleAt(ev.submit_time, [this, &ev] { SubmitQuery(ev); });
  }
  sim::SimTime horizon = 0;
  if (!queries.empty()) {
    horizon = queries.back().submit_time + 2 * config_.params.query_deadline +
              sim::kSecond;
  }
  sim_.Run(horizon);
}

size_t Engine::SlotOf(QueryId qid) const {
  auto it = slot_of_.find(qid);
  if (it == slot_of_.end()) return SIZE_MAX;
  return it->second;
}

std::vector<overlay::ResponseRecord> Engine::AnswerFromFileStore(
    PeerId node_id, const overlay::QueryMessage& query) {
  // Message keywords are sorted by contract (SubmitQuery canonicalizes);
  // validate once here, then use the unchecked match in the per-file loop.
  LOCAWARE_CHECK(std::is_sorted(query.keywords.begin(), query.keywords.end()));
  std::vector<overlay::ResponseRecord> records;
  const NodeState& n = node(node_id);
  for (FileId f : n.file_store) {
    if (!catalog_.MatchesSorted(f, query.keywords)) continue;
    overlay::ResponseRecord record;
    record.file = f;
    record.providers.push_back(overlay::ProviderInfo{node_id, n.loc_id});
    record.from_index = false;
    records.push_back(std::move(record));
  }
  return records;
}

void Engine::SubmitQuery(const catalog::QueryEvent& ev) {
  const size_t slot = metrics_.BeginQuery(ev.id, ev.requester, sim_.Now());
  slot_of_[ev.id] = slot;
  metrics_.Record(slot)->target_rank = workload_.RankOfFile(ev.target);

  if (!graph_->IsAlive(ev.requester)) {
    // Offline requester: the query is never issued. No messages exist, so
    // the tracking entry can go immediately.
    CleanupQuery(ev.id);
    return;
  }

  NodeState& origin = node(ev.requester);

  // Canonicalize the query's keyword ids once: sorted + deduplicated for
  // containment checks, canonical set hash for group routing.
  std::vector<KeywordId> sorted_kws = ev.keywords;
  std::sort(sorted_kws.begin(), sorted_kws.end());
  sorted_kws.erase(std::unique(sorted_kws.begin(), sorted_kws.end()),
                   sorted_kws.end());

  // A peer that already shares a matching file needs neither search nor
  // download. (sorted_kws was sorted two lines up: the unchecked match is
  // safe.)
  for (FileId f : origin.file_store) {
    if (catalog_.MatchesSorted(f, sorted_kws)) {
      metrics::QueryRecord* record = metrics_.Record(slot);
      record->success = true;
      record->source = metrics::AnswerSource::kLocalStore;
      record->provider_loc_match = true;
      CleanupQuery(ev.id);  // nothing in flight
      return;
    }
  }

  overlay::QueryMessage query;
  query.qid = ev.id;
  query.origin = ev.requester;
  query.origin_loc = origin.loc_id;
  query.kw_set_fnv = catalog_.CanonicalSetFnv(sorted_kws);
  query.route_kw = ev.keywords.front();  // sampled order: a uniform pick
  query.keywords = sorted_kws;
  query.ttl = config_.params.ttl;
  query.hops = 0;

  PendingQuery pq;
  pq.slot = slot;
  pq.requester = ev.requester;
  pq.requester_loc = origin.loc_id;
  pq.keywords = std::move(sorted_kws);

  // The requester's own response index may already know providers.
  std::vector<overlay::ResponseRecord> local =
      protocol_->AnswerFromIndex(*this, ev.requester, query);
  if (!local.empty()) {
    for (overlay::ResponseRecord& record : local) {
      pq.offers.push_back(PendingQuery::Offer{std::move(record), ev.requester});
    }
    pending_.emplace(ev.id, std::move(pq));
    FinalizeQuery(ev.id);
    return;
  }

  pending_.emplace(ev.id, std::move(pq));
  origin.seen_queries.insert(ev.id);
  touched_[ev.id].push_back(ev.requester);

  ForwardQuery(ev.requester, kInvalidPeer, query);
  sim_.ScheduleAfter(config_.params.query_deadline, [this, qid = ev.id] {
    FinalizeQuery(qid);
  });
}

void Engine::ForwardQuery(PeerId node_id, PeerId from,
                          const overlay::QueryMessage& msg) {
  if (msg.ttl == 0) return;
  const std::vector<PeerId> targets =
      protocol_->ForwardTargets(*this, node_id, msg, from);
  if (targets.empty()) return;

  // One immutable message shared by every forwarded copy: fan-out costs
  // O(targets) shared_ptr bumps, not O(targets) deep copies.
  auto fwd = std::make_shared<overlay::QueryMessage>(msg);
  fwd->ttl -= 1;
  fwd->hops += 1;

  const size_t slot = SlotOf(msg.qid);
  const size_t wire_bytes = EstimateSizeBytes(*fwd, catalog_);
  std::shared_ptr<const overlay::QueryMessage> shared = std::move(fwd);
  for (PeerId target : targets) {
    if (slot != SIZE_MAX) {
      metrics::QueryRecord* record = metrics_.Record(slot);
      ++record->query_msgs;
      record->query_bytes += wire_bytes;
    }
    sim_.ScheduleAfter(OneWayDelay(node_id, target), [this, target, node_id, shared] {
      DeliverQuery(target, node_id, shared);
    });
  }
}

void Engine::DeliverQuery(PeerId to, PeerId from,
                          std::shared_ptr<const overlay::QueryMessage> msg_ptr) {
  if (!graph_->IsAlive(to)) return;  // lost on a dead peer
  const overlay::QueryMessage& msg = *msg_ptr;
  NodeState& n = node(to);
  if (!n.seen_queries.insert(msg.qid).second) return;  // duplicate: dropped
  n.reverse_path[msg.qid] = from;
  touched_[msg.qid].push_back(to);

  // Answer from the shared-file store first, then the response index
  // ("either in its file storage or in its response index", §4.2).
  std::vector<overlay::ResponseRecord> records = AnswerFromFileStore(to, msg);
  if (records.empty()) records = protocol_->AnswerFromIndex(*this, to, msg);

  const bool hit = !records.empty();
  if (hit) {
    overlay::ResponseMessage response;
    response.qid = msg.qid;
    response.responder = to;
    response.origin = msg.origin;
    response.origin_loc = msg.origin_loc;
    response.query_keywords = msg.keywords;
    response.records = std::move(records);
    SendResponse(to, from, response);
  }
  if (!hit || protocol_->ForwardAfterHit()) {
    ForwardQuery(to, from, msg);
  }
}

void Engine::SendResponse(PeerId sender, PeerId next_hop,
                          overlay::ResponseMessage msg) {
  const size_t slot = SlotOf(msg.qid);
  if (slot != SIZE_MAX) {
    metrics::QueryRecord* record = metrics_.Record(slot);
    ++record->response_msgs;
    record->response_bytes += EstimateSizeBytes(msg, catalog_);
  }
  sim_.ScheduleAfter(OneWayDelay(sender, next_hop),
                     [this, next_hop, sender, msg = std::move(msg)] {
                       DeliverResponse(next_hop, sender, msg);
                     });
}

void Engine::DeliverResponse(PeerId to, PeerId /*from*/, overlay::ResponseMessage msg) {
  if (!graph_->IsAlive(to)) return;  // response lost with the dead relay
  msg.hops += 1;

  // Every reverse-path peer (the requester included) may cache the passing
  // response, per the protocol's rule.
  protocol_->ObserveResponse(*this, to, msg);

  if (to == msg.origin) {
    auto it = pending_.find(msg.qid);
    if (it == pending_.end()) return;  // arrived after the deadline
    PendingQuery& pq = it->second;
    const size_t slot = pq.slot;
    metrics::QueryRecord* record = metrics_.Record(slot);
    ++record->responses_received;
    if (record->first_response_at == 0) {
      record->first_response_at = sim_.Now();
      record->first_response_hops = msg.hops;
    }
    for (overlay::ResponseRecord& rec : msg.records) {
      pq.offers.push_back(PendingQuery::Offer{std::move(rec), msg.responder});
    }
    return;
  }

  NodeState& n = node(to);
  auto next = n.reverse_path.find(msg.qid);
  if (next == n.reverse_path.end()) return;  // path lost (churn or cleanup)
  SendResponse(to, next->second, msg);
}

void Engine::FinalizeQuery(QueryId qid) {
  auto it = pending_.find(qid);
  if (it == pending_.end()) return;
  PendingQuery pq = std::move(it->second);
  pending_.erase(it);

  metrics::QueryRecord* record = metrics_.Record(pq.slot);

  // Distinct candidate providers, preserving offer order (earliest response
  // first; freshest providers first within a record). The requester itself is
  // never a candidate.
  std::vector<Candidate> candidates;
  std::unordered_set<PeerId> candidate_peers;
  bool filtered_dead = false;
  for (const PendingQuery::Offer& offer : pq.offers) {
    for (const overlay::ProviderInfo& p : offer.record.providers) {
      if (p.peer == pq.requester) continue;
      if (!candidate_peers.insert(p.peer).second) continue;
      Candidate cand;
      cand.provider = p.peer;
      cand.loc_id = p.loc_id;
      cand.from_index = offer.record.from_index;
      cand.responder = offer.responder;
      cand.file = offer.record.file;
      candidates.push_back(cand);
    }
  }
  record->providers_offered = static_cast<uint32_t>(candidates.size());

  // A provider that has gone offline cannot serve the download (stale index).
  if (config_.churn.enabled) {
    std::vector<Candidate> alive;
    for (Candidate& c : candidates) {
      if (graph_->IsAlive(c.provider)) {
        alive.push_back(std::move(c));
      } else {
        filtered_dead = true;
      }
    }
    candidates = std::move(alive);
  }

  if (candidates.empty()) {
    if (filtered_dead) metrics_.AddStaleFailure();
    sim_.ScheduleAfter(config_.params.query_deadline, [this, qid] { CleanupQuery(qid); });
    return;  // record stays a failure
  }

  const SelectionStrategy strategy =
      config_.params.selection.value_or(protocol_->DefaultSelection());
  const SelectionOutcome outcome = SelectProvider(
      strategy, candidates, pq.requester, pq.requester_loc, *underlay_, &selection_rng_);
  record->probe_msgs += outcome.probe_msgs;
  record->probe_bytes += outcome.probe_msgs * EstimateSizeBytes(overlay::ProbeMessage{});

  const Candidate& chosen = candidates[outcome.chosen];
  record->success = true;
  if (chosen.responder == pq.requester) {
    record->source = metrics::AnswerSource::kLocalIndex;
  } else if (chosen.from_index) {
    record->source = metrics::AnswerSource::kResponseIndex;
  } else {
    record->source = metrics::AnswerSource::kFileStore;
  }
  record->download_distance_ms = underlay_->RttMs(pq.requester, chosen.provider);
  record->provider_loc_match = (loc_of(chosen.provider) == pq.requester_loc);

  // Natural replication (§3.1): the requester downloads the file and shares
  // it from now on.
  if (chosen.file != kInvalidFile) {
    NodeState& requester = node(pq.requester);
    if (!requester.SharesFile(chosen.file)) requester.file_store.push_back(chosen.file);
  }

  sim_.ScheduleAfter(config_.params.query_deadline, [this, qid] { CleanupQuery(qid); });
}

void Engine::CleanupQuery(QueryId qid) {
  auto touched = touched_.find(qid);
  if (touched != touched_.end()) {
    for (PeerId p : touched->second) {
      NodeState& n = node(p);
      n.seen_queries.erase(qid);
      n.reverse_path.erase(qid);
    }
    touched_.erase(touched);
  }
  slot_of_.erase(qid);
}

void Engine::SendBloomUpdate(PeerId from, PeerId to,
                             overlay::BloomUpdateMessage update) {
  metrics_.AddBloomUpdate(1, EstimateSizeBytes(update));
  sim_.ScheduleAfter(OneWayDelay(from, to), [this, to, update = std::move(update)] {
    if (!graph_->IsAlive(to)) return;
    protocol_->OnBloomUpdate(*this, to, update);
  });
}

void Engine::ChargeMaintenance(uint64_t messages, uint64_t bytes) {
  metrics_.AddBloomUpdate(messages, bytes);
}

void Engine::ScheduleDeparture(PeerId p) {
  sim_.ScheduleAfter(churn_model_.SampleSession(&churn_rng_),
                     [this, p] { HandleDeparture(p); });
}

void Engine::ScheduleRejoin(PeerId p) {
  sim_.ScheduleAfter(churn_model_.SampleOffline(&churn_rng_),
                     [this, p] { HandleRejoin(p); });
}

void Engine::HandleDeparture(PeerId p) {
  if (!graph_->IsAlive(p)) return;
  metrics_.AddChurnEvent();

  const std::vector<PeerId> dropped = graph_->Depart(p);
  for (PeerId nb : dropped) protocol_->OnLinkDown(*this, p, nb);

  // Session state dies with the session; the response index survives on disk
  // (its entries age out through entry_ttl instead).
  NodeState& n = node(p);
  n.seen_queries.clear();
  n.reverse_path.clear();
  n.neighbor_filters.clear();

  // Orphaned neighbors re-attach to keep the overlay usable.
  for (PeerId nb : dropped) {
    if (graph_->IsAlive(nb) && graph_->Degree(nb) == 0) RepairLinks(nb, 1);
  }

  ScheduleRejoin(p);
}

void Engine::HandleRejoin(PeerId p) {
  if (graph_->IsAlive(p)) return;
  metrics_.AddChurnEvent();
  graph_->Join(p);
  RepairLinks(p, config_.churn.rejoin_links);
  ScheduleDeparture(p);
}

void Engine::RepairLinks(PeerId p, size_t count) {
  for (PeerId nb : graph_->LinkToRandomPeers(p, count, &churn_rng_)) {
    protocol_->OnLinkUp(*this, p, nb);
  }
}

}  // namespace locaware::core
