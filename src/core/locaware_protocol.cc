#include "core/locaware_protocol.h"

#include <algorithm>

#include "bloom/bloom_delta.h"
#include "common/check.h"
#include "core/engine.h"
#include "core/group_hash.h"

namespace locaware::core {

PeerVec LocawareProtocol::BloomMatchedNeighbors(Engine& engine, PeerId node,
                                                const overlay::QueryMessage& query,
                                                PeerId from) const {
  NodeState& state = engine.node(node);
  const catalog::FileCatalog& catalog = engine.catalog();
  // Keyword-major order fetches each precomputed probe hash exactly once per
  // query, and the filter map is probed exactly once per neighbor (the
  // working set carries the filter pointers).
  SmallVector<std::pair<PeerId, const bloom::BloomFilter*>, 8> candidates;
  for (PeerId nb : engine.graph().Neighbors(node)) {
    if (nb == from) continue;
    auto it = state.neighbor_filters.find(nb);
    if (it != state.neighbor_filters.end()) candidates.push_back({nb, &it->second});
  }
  for (KeywordId kw : query.keywords) {
    if (candidates.empty()) break;
    const KeyHash128 hash = catalog.KeywordBloomHash(kw);
    candidates.erase(
        std::remove_if(candidates.begin(), candidates.end(),
                       [&](const auto& cand) { return !cand.second->MayContain(hash); }),
        candidates.end());
  }
  PeerVec bloom_matched;
  bloom_matched.reserve(candidates.size());
  for (const auto& [nb, filter] : candidates) bloom_matched.push_back(nb);
  return bloom_matched;
}

PeerVec LocawareProtocol::ForwardTargets(Engine& engine, PeerId node,
                                         const overlay::QueryMessage& query,
                                         PeerId from) {
  const auto& neighbors = engine.graph().Neighbors(node);

  // 1. Neighbors whose Bloom filter matches every query keyword.
  PeerVec bloom_matched = BloomMatchedNeighbors(engine, node, query, from);
  if (!bloom_matched.empty()) return bloom_matched;

  // Optional §6 extension: prefer same-locality neighbors within a tier.
  const auto prefer_local = [&](PeerVec* tier) {
    if (!params_.loc_aware_routing || tier->empty()) return;
    PeerVec local;
    for (PeerId nb : *tier) {
      if (engine.loc_of(nb) == query.origin_loc) local.push_back(nb);
    }
    if (!local.empty()) *tier = std::move(local);
  };

  // 2. Neighbors whose Gid matches the query hash.
  const GroupId query_group = GroupOfSetFnv(query.kw_set_fnv, params_.num_groups);
  PeerVec gid_matched;
  for (PeerId nb : neighbors) {
    if (nb == from) continue;
    if (engine.gid_of(nb) == query_group) gid_matched.push_back(nb);
  }
  prefer_local(&gid_matched);
  if (!gid_matched.empty()) return gid_matched;

  // 3. Last resort: the most connected neighbors, "to avoid blocking the
  // query forwarding" (§4.2). With the §6 extension, locality outranks
  // degree.
  PeerVec rest;
  for (PeerId nb : neighbors) {
    if (nb != from) rest.push_back(nb);
  }
  std::sort(rest.begin(), rest.end(), [&](PeerId a, PeerId b) {
    if (params_.loc_aware_routing) {
      const bool la = engine.loc_of(a) == query.origin_loc;
      const bool lb = engine.loc_of(b) == query.origin_loc;
      if (la != lb) return la;
    }
    // Under churn, remote adjacency is shard-partitioned; rank by the degree
    // hints the link handshakes announced (exact when the overlay is static).
    const size_t da = engine.NeighborDegree(node, a);
    const size_t db = engine.NeighborDegree(node, b);
    if (da != db) return da > db;
    return a < b;  // deterministic tie-break
  });
  if (rest.size() > params_.fallback_fanout) rest.resize(params_.fallback_fanout);
  return rest;
}

void LocawareProtocol::AddToIndex(Engine& engine, NodeState& state, FileId file,
                                  std::span<const KeywordId> sorted_keywords,
                                  PeerId provider, LocId provider_loc) {
  LOCAWARE_CHECK(state.ri != nullptr);
  const auto outcome = state.ri->AddProvider(
      file, sorted_keywords, cache::ProviderEntry{provider, provider_loc, 0},
      engine.Now());
  // Keep the counting filter consistent: one Insert per file arrival,
  // one Remove per file eviction (§4.2: "built incrementally as new
  // filenames are inserted in RI and existing ones discarded").
  if (state.keyword_filter != nullptr) {
    const catalog::FileCatalog& catalog = engine.catalog();
    if (outcome.file_inserted) {
      for (KeywordId kw : sorted_keywords) {
        state.keyword_filter->Insert(catalog.KeywordBloomHash(kw));
      }
    }
    for (const auto& evicted : outcome.evicted) {
      for (KeywordId kw : evicted.keywords) {
        state.keyword_filter->Remove(catalog.KeywordBloomHash(kw));
      }
    }
  }
}

void LocawareProtocol::ObserveResponse(Engine& engine, PeerId node,
                                       const overlay::ResponseMessage& response) {
  NodeState& state = engine.node(node);
  if (state.ri == nullptr) return;
  const catalog::FileCatalog& catalog = engine.catalog();
  for (const overlay::ResponseRecord& record : response.records) {
    const std::vector<KeywordId>& kws = catalog.sorted_keywords(record.file);
    if (GroupOfSetFnv(catalog.FileSetFnv(record.file), params_.num_groups) !=
        state.gid) {
      continue;
    }
    // Cache every provider the record carries. Iterate in reverse so the
    // record's freshest provider ends up most recent in our index.
    for (auto it = record.providers.rbegin(); it != record.providers.rend(); ++it) {
      AddToIndex(engine, state, record.file, kws, it->peer, it->loc_id);
    }
    // Leverage natural replication: the requester is about to hold a copy
    // ("the query response qrf holds the information about peer D as well as
    // peer A to be considered as a new provider", §4.1.2).
    if (params_.requester_becomes_provider && response.origin != node) {
      AddToIndex(engine, state, record.file, kws, response.origin,
                 response.origin_loc);
    }
  }
}

overlay::RecordVec LocawareProtocol::AnswerFromIndex(
    Engine& engine, PeerId node, const overlay::QueryMessage& query) {
  NodeState& state = engine.node(node);
  if (state.ri == nullptr) return {};

  overlay::RecordVec records;
  for (const cache::ResponseIndex::Hit& hit :
       state.ri->LookupByKeywords(query.keywords, engine.Now())) {
    overlay::ResponseRecord record;
    record.file = hit.file;
    record.from_index = true;
    // Providers in the requester's locality first, then the freshest others,
    // "to guarantee that E will find an available copy of f with minimum
    // bandwidth requirements" (§4.1.2).
    for (const cache::ProviderEntry& p : hit.providers) {
      if (record.providers.size() >= params_.max_response_providers) break;
      if (p.loc_id == query.origin_loc) {
        record.providers.push_back(overlay::ProviderInfo{p.provider, p.loc_id});
      }
    }
    for (const cache::ProviderEntry& p : hit.providers) {
      if (record.providers.size() >= params_.max_response_providers) break;
      if (p.loc_id == query.origin_loc) continue;  // already added
      record.providers.push_back(overlay::ProviderInfo{p.provider, p.loc_id});
    }
    records.push_back(std::move(record));
  }

  // Record the requester as a new provider of each answered file (Fig. 1:
  // "Peer B then adds in its RI the entry (E, 1)").
  if (params_.requester_becomes_provider && query.origin != node) {
    for (const overlay::ResponseRecord& record : records) {
      AddToIndex(engine, state, record.file, state.ri->KeywordsOf(record.file),
                 query.origin, query.origin_loc);
    }
  }
  return records;
}

void LocawareProtocol::OnMaintenanceTick(Engine& engine, PeerId node) {
  NodeState& state = engine.node(node);
  LOCAWARE_CHECK(state.ri != nullptr && state.keyword_filter != nullptr &&
                 state.advertised_filter != nullptr);

  // Index expiry, mirrored into the counting filter.
  const catalog::FileCatalog& catalog = engine.catalog();
  for (const auto& evicted : state.ri->ExpireStale(engine.Now())) {
    for (KeywordId kw : evicted.keywords) {
      state.keyword_filter->Remove(catalog.KeywordBloomHash(kw));
    }
  }

  // Gossip: transmit only the changed bit positions (§4.2 footnote 1).
  const bloom::BloomFilter& current = state.keyword_filter->projection();
  const bloom::BloomDelta delta =
      bloom::ComputeDelta(*state.advertised_filter, current);
  if (delta.empty()) return;

  overlay::BloomUpdateMessage update;
  update.sender = node;
  update.filter_bits = static_cast<uint32_t>(current.num_bits());
  update.toggled_positions = delta.positions;
  for (PeerId nb : engine.graph().Neighbors(node)) {
    engine.SendBloomUpdate(node, nb, update);
  }
  *state.advertised_filter = current;
}

void LocawareProtocol::OnBloomUpdate(Engine& engine, PeerId node,
                                     const overlay::BloomUpdateMessage& update) {
  NodeState& state = engine.node(node);
  auto [it, inserted] = state.neighbor_filters.try_emplace(
      update.sender, params_.bloom_bits, params_.bloom_hashes);
  // A full-state bootstrap replaces the copy outright (toggling into a stale
  // copy would corrupt it); clearing first makes the apply absolute.
  if (update.full_state && !inserted) it->second.Clear();
  const Status st =
      bloom::ApplyDelta(update.filter_bits, update.toggled_positions, &it->second);
  if (!st.ok()) {
    // A malformed or shape-mismatched update: drop our copy rather than keep
    // a corrupt view (false negatives would break routing guarantees).
    state.neighbor_filters.erase(it);
  }
}

void LocawareProtocol::OnLinkUp(Engine& engine, PeerId a, PeerId b) {
  NodeState& na = engine.node(a);
  NodeState& nb = engine.node(b);
  LOCAWARE_CHECK(na.advertised_filter != nullptr && nb.advertised_filter != nullptr);
  // Full-filter handshake: each side learns the other's advertised filter, so
  // subsequent deltas (always computed against the sender's advertised state)
  // apply cleanly.
  na.neighbor_filters.insert_or_assign(b, *nb.advertised_filter);
  nb.neighbor_filters.insert_or_assign(a, *na.advertised_filter);
  const uint64_t filter_bytes = (params_.bloom_bits + 7) / 8 + 29;  // + headers
  engine.ChargeMaintenance(2, 2 * filter_bytes);
}

void LocawareProtocol::OnLinkDown(Engine& engine, PeerId a, PeerId b) {
  engine.node(a).neighbor_filters.erase(b);
  engine.node(b).neighbor_filters.erase(a);
}

void LocawareProtocol::OnNeighborUp(Engine& engine, PeerId node,
                                    const overlay::LinkAnnounce& peer) {
  NodeState& state = engine.node(node);
  state.neighbor_gids.insert_or_assign(peer.peer, peer.gid);
  if (!peer.filter.has_value()) return;  // probe direction: filter comes later
  // Accept direction: the acceptor snapshotted its advertised filter with us
  // already in its adjacency, so its future deltas apply cleanly to this
  // copy.
  state.neighbor_filters.insert_or_assign(peer.peer, *peer.filter);
  // Push our side as a full-state bootstrap (delta-encoded ones). A plain
  // snapshot in the probe could desync: a maintenance tick firing during the
  // two-hop handshake would gossip a delta the acceptor never receives. The
  // full-state flag makes the copy absolute, and from this instant the
  // acceptor is in our adjacency, so every later delta reaches it.
  LOCAWARE_CHECK(state.advertised_filter != nullptr);
  overlay::BloomUpdateMessage bootstrap;
  bootstrap.sender = node;
  bootstrap.filter_bits = static_cast<uint32_t>(state.advertised_filter->num_bits());
  bootstrap.toggled_positions = state.advertised_filter->DiffPositions(
      bloom::BloomFilter(params_.bloom_bits, params_.bloom_hashes));
  bootstrap.full_state = true;
  engine.SendBloomUpdate(node, peer.peer, std::move(bootstrap));
}

void LocawareProtocol::OnPeerDeparted(Engine& engine, PeerId node, PeerId departed) {
  NodeState& state = engine.node(node);
  state.neighbor_filters.erase(departed);
  state.neighbor_gids.erase(departed);
  if (state.ri == nullptr) return;
  const catalog::FileCatalog& catalog = engine.catalog();
  for (const auto& evicted : state.ri->RemoveProvider(departed)) {
    for (KeywordId kw : evicted.keywords) {
      state.keyword_filter->Remove(catalog.KeywordBloomHash(kw));
    }
  }
}

}  // namespace locaware::core
