// Locaware (paper §4): location-aware index caching plus Bloom-filter-routed
// keyword search.
//
// Caching (§4.1): responses are cached at reverse-path peers with matching
// Gid (as in Dicas), but each index keeps *several* providers with their
// locIds, most recent first, and the original requester is appended as a new
// provider — the natural-replication leverage that makes download distance
// improve over time (Fig. 2). A peer answering from its index also records
// the new requester (Fig. 1's "(E, 1)" entry).
//
// Routing (§4.2): each peer summarizes the keywords of its cached filenames
// in a Bloom filter and gossips (delta-encoded) copies to neighbors. Queries
// forward to neighbors whose filter matches all keywords, then to neighbors
// with matching Gid, then to the highest-degree neighbor as a last resort.
#pragma once

#include <span>

#include "core/node_state.h"
#include "core/protocol.h"

namespace locaware::core {

class LocawareProtocol : public Protocol {
 public:
  using Protocol::Protocol;

  ProtocolKind kind() const override { return ProtocolKind::kLocaware; }
  const char* name() const override { return "Locaware"; }

  PeerVec ForwardTargets(Engine& engine, PeerId node,
                         const overlay::QueryMessage& query,
                         PeerId from) override;
  void ObserveResponse(Engine& engine, PeerId node,
                       const overlay::ResponseMessage& response) override;
  overlay::RecordVec AnswerFromIndex(
      Engine& engine, PeerId node, const overlay::QueryMessage& query) override;

  /// Expires stale index entries (keeping the Bloom filter in sync) and
  /// gossips a delta of the keyword filter to every neighbor when it changed.
  void OnMaintenanceTick(Engine& engine, PeerId node) override;
  /// Applies a neighbor's delta to our copy of its filter.
  void OnBloomUpdate(Engine& engine, PeerId node,
                     const overlay::BloomUpdateMessage& update) override;
  /// New neighbors exchange their full advertised filters (and Gids).
  void OnLinkUp(Engine& engine, PeerId a, PeerId b) override;
  void OnLinkDown(Engine& engine, PeerId a, PeerId b) override;
  /// Message-routed link handshake: install the announced filter and Gid.
  void OnNeighborUp(Engine& engine, PeerId node,
                    const overlay::LinkAnnounce& peer) override;
  /// A neighbor left: drop its filter copy and invalidate index entries
  /// naming it, mirroring removals into the counting Bloom filter so the
  /// next maintenance tick gossips the delta.
  void OnPeerDeparted(Engine& engine, PeerId node, PeerId departed) override;

  SelectionStrategy DefaultSelection() const override {
    return SelectionStrategy::kLocIdThenRtt;
  }

 protected:
  /// Routing tier 1: neighbors of `node` (minus `from`) whose gossiped Bloom
  /// filter matches every query keyword. Shared with HybridProtocol, whose
  /// unstructured half is *only* this tier.
  PeerVec BloomMatchedNeighbors(Engine& engine, PeerId node,
                                const overlay::QueryMessage& query, PeerId from) const;

  /// Inserts one provider into `node`'s index, keeping the counting Bloom
  /// filter consistent with file insertions and evictions. `sorted_keywords`
  /// is the file's keyword-id set (ascending); Bloom updates use the
  /// catalog's precomputed per-keyword probe hashes.
  void AddToIndex(Engine& engine, NodeState& state, FileId file,
                  std::span<const KeywordId> sorted_keywords, PeerId provider,
                  LocId provider_loc);
};

}  // namespace locaware::core
