// Shard-local bump allocator with size-class recycling.
//
// The parallel engine's hot per-peer state — overlay adjacency rows,
// NodeState file stores, ResponseIndex keyword/provider/posting spill
// buffers — is thousands of small vectors whose heap blocks the global
// allocator scatters across the address space and serializes behind a
// process-wide lock. An Arena replaces that with shard-private storage:
// the Engine creates one per shard at startup, sized from the peer->shard
// map, and every arena-aware container owned by a shard's peers draws its
// spill buffers from that shard's arena. Allocation locality then matches
// execution locality (the placement-aware scheduler runs a shard's events
// on one worker), and the storm path touches the global heap zero times.
//
// Design:
//  * Bump allocation from geometrically sized blocks. Requests are rounded
//    up to a power-of-two size class (min 16 bytes), carved from the
//    current block, or given a dedicated block when oversized.
//  * Power-of-two free lists. Deallocate(ptr, bytes) pushes the chunk onto
//    its class's intrusive free list; the next same-class Allocate pops it.
//    SmallVector growth doubles capacity, so freed spill buffers are
//    exactly class-sized and recycling hits every time.
//  * No per-chunk headers. The caller passes the allocation size back to
//    Deallocate (containers know their capacity), so chunks cost zero
//    bookkeeping bytes.
//  * Wholesale release. The destructor frees the blocks; nothing else ever
//    returns memory to the OS.
//
// Thread safety: none. Correctness comes from the shard-ownership
// discipline — all allocations for peer p happen inside events executing
// on p's shard, and the engine keeps one arena per shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace locaware::common {

/// \brief Bump-pointer block allocator with power-of-two recycling lists.
class Arena {
 public:
  Arena() = default;
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned for any object type the repo's
  /// containers hold (16 bytes). Rounded up to the next power-of-two size
  /// class; never returns nullptr (CHECK-fails on allocation failure).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Returns a chunk previously obtained from Allocate(bytes, ...) to its
  /// size-class free list for reuse. The memory stays owned by the arena.
  void Deallocate(void* ptr, size_t bytes);

  /// Ensures at least `bytes` of contiguous bump capacity, allocating one
  /// block up front. Called by the engine with a per-shard estimate so the
  /// hot path never grows mid-run.
  void Reserve(size_t bytes);

  /// Observability for tests and bench counters.
  size_t num_blocks() const { return blocks_.size(); }
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// Cumulative bytes handed out (class-rounded), including recycled ones.
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Allocations served from a free list instead of fresh bump space.
  size_t freelist_hits() const { return freelist_hits_; }

 private:
  /// Chunks are at least 16 bytes so a freed one can hold the intrusive
  /// free-list link, and so every chunk boundary keeps 16-byte alignment.
  static constexpr size_t kMinClassBytes = 16;
  static constexpr size_t kNumClasses = 48;  // classes 2^4 .. 2^51
  static constexpr size_t kDefaultBlockBytes = size_t{1} << 16;

  struct FreeNode {
    FreeNode* next;
  };

  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  /// Smallest class index whose chunk size holds `bytes`.
  static unsigned ClassOf(size_t bytes);
  static size_t ClassBytes(unsigned cls) { return kMinClassBytes << cls; }

  /// Bump-carves `bytes` (a class size) from the current block, starting a
  /// new block when the remainder is too small.
  void* BumpAllocate(size_t bytes);
  void NewBlock(size_t min_bytes);

  std::vector<Block> blocks_;
  unsigned char* bump_ = nullptr;  ///< next free byte in the current block
  size_t bump_left_ = 0;           ///< bytes remaining in the current block
  FreeNode* free_lists_[kNumClasses] = {};

  size_t bytes_reserved_ = 0;
  size_t bytes_allocated_ = 0;
  size_t freelist_hits_ = 0;
};

}  // namespace locaware::common
