#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace locaware {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::Reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Histogram::Add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Histogram::Reset() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::Percentile(double p) const {
  LOCAWARE_CHECK_GE(p, 0.0);
  LOCAWARE_CHECK_LE(p, 100.0);
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  // Nearest-rank: ceil(p/100 * n), 1-indexed.
  const size_t n = sorted_.size();
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted_[rank - 1];
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%zu mean=%.2f p50=%.2f p95=%.2f max=%.2f",
                count(), mean(), Percentile(50), Percentile(95), max());
  return buf;
}

}  // namespace locaware
