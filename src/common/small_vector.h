// Inline small-capacity vector for the data plane's short lists.
//
// The response index stores thousands of tiny lists (a file's ~3 keyword
// ids, its <= 8 providers, a keyword's posting list): std::vector puts every
// one of them on the heap, so cache churn turns into allocator churn. A
// SmallVector<T, N> keeps up to N elements inline inside the owner and only
// spills to the heap past that, which removes the per-entry allocation on
// the common path entirely (bench/micro_cache pins the win).
//
// Element requirements: T must be nothrow-move-constructible (growth and
// container moves relocate elements with no strong-exception machinery) and
// copy-constructible (the self-aliasing push_back/insert guard takes a
// copy). Trivially copyable types — the data plane's ids and POD structs —
// take memcpy fast paths selected at compile time; everything else (e.g. a
// message record that itself holds a SmallVector) is moved element-wise, so
// nesting SmallVectors is supported and each level keeps its own provenance.
//
// Spill buffers can optionally come from a common::Arena (set_arena): the
// sharded engine binds each peer's hot lists to its shard's arena so growth
// never touches the global heap. Invariant: the heap buffer is always owned
// by the *current* arena_ (or ::operator new when null) — set_arena migrates
// an already-spilled buffer, moves carry the source's arena along with the
// buffer, and copies keep the destination's arena.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/check.h"

namespace locaware {

/// \brief Contiguous vector with N inline slots, heap spill past N.
template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "SmallVector relocates elements during growth and container "
                "moves with no strong-exception machinery");
  static_assert(std::is_copy_constructible_v<T>,
                "push_back/insert guard self-aliasing by copying the value");
  static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                "Grow() uses the default operator new; overaligned types "
                "would get misaligned heap storage");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using reverse_iterator = std::reverse_iterator<T*>;
  using const_reverse_iterator = std::reverse_iterator<const T*>;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  template <typename It>
  SmallVector(It first, It last) {
    assign(first, last);
  }

  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(&other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      DestroyAll();
      FreeHeap();
      MoveFrom(&other);
    }
    return *this;
  }

  /// Assignment from the std types the edge formats and tests use.
  SmallVector& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }
  SmallVector& operator=(const std::vector<T>& other) {
    assign(other.begin(), other.end());
    return *this;
  }

  ~SmallVector() {
    DestroyAll();
    FreeHeap();
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const { return const_reverse_iterator(end()); }
  const_reverse_iterator rend() const { return const_reverse_iterator(begin()); }
  T* data() { return data_; }
  const T* data() const { return data_; }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  /// True while the elements still live in the inline slots (tests, benches).
  bool is_inline() const { return data_ == InlineSlots(); }

  /// Arena future spills draw from (null = global heap).
  common::Arena* arena() const { return arena_; }

  /// Routes future heap growth through `arena` (null restores operator new).
  /// An already-spilled buffer is migrated so the ownership invariant holds:
  /// the current buffer always belongs to the current arena.
  void set_arena(common::Arena* arena) {
    if (arena == arena_) return;
    if (!is_inline()) {
      T* fresh = static_cast<T*>(
          arena ? arena->Allocate(capacity_ * sizeof(T), alignof(T))
                : ::operator new(capacity_ * sizeof(T)));
      RelocateInto(fresh);
      FreeHeap();
      data_ = fresh;
    }
    arena_ = arena;
  }

  T& operator[](size_t i) {
    LOCAWARE_CHECK_LT(i, size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    LOCAWARE_CHECK_LT(i, size_);
    return data_[i];
  }
  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void clear() {
    DestroyAll();
    size_ = 0;
  }

  void reserve(size_t want) {
    if (want > capacity_) Grow(want);
  }

  /// Shrinks (destroying the tail) or grows (value-initializing) to
  /// `new_size`, std::vector-style.
  void resize(size_t new_size) {
    if (new_size < size_) {
      if constexpr (!std::is_trivially_destructible_v<T>) {
        for (size_t i = new_size; i < size_; ++i) data_[i].~T();
      }
    } else {
      if (new_size > capacity_) Grow(new_size);
      for (size_t i = size_; i < new_size; ++i) {
        ::new (static_cast<void*>(data_ + i)) T();
      }
    }
    size_ = new_size;
  }

  void push_back(const T& value) {
    // Copy first: `value` may alias an element of this vector, and Grow
    // frees the old buffer (std::vector guarantees this pattern works).
    T copy = value;
    if (size_ == capacity_) Grow(size_ + 1);
    ::new (static_cast<void*>(data_ + size_)) T(std::move(copy));
    ++size_;
  }

  void push_back(T&& value) {
    // Move into a local first for the same aliasing reason as the copy
    // overload (moving out of an element this vector owns must be safe).
    T moved = std::move(value);
    if (size_ == capacity_) Grow(size_ + 1);
    ::new (static_cast<void*>(data_ + size_)) T(std::move(moved));
    ++size_;
  }

  void pop_back() {
    LOCAWARE_CHECK_GT(size_, 0u);
    --size_;
    data_[size_].~T();
  }

  /// Inserts `value` before `pos`, shifting the tail up.
  T* insert(T* pos, const T& value) {
    LOCAWARE_CHECK(pos >= begin() && pos <= end());
    const size_t at = static_cast<size_t>(pos - data_);
    // Copy first: `value` may alias an element whose slot Grow frees or the
    // tail shift overwrites (std::vector guarantees this pattern works).
    T copy = value;
    if (size_ == capacity_) Grow(size_ + 1);  // invalidates pos; reindex below
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memmove(data_ + at + 1, data_ + at, (size_ - at) * sizeof(T));
    } else if (at < size_) {
      // Shift [at, size_) up one slot: move-construct into the uninitialized
      // slot past the tail, then move-assign the rest down-to-up.
      ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
      for (size_t i = size_ - 1; i > at; --i) data_[i] = std::move(data_[i - 1]);
      data_[at].~T();
    }
    ::new (static_cast<void*>(data_ + at)) T(std::move(copy));
    ++size_;
    return data_ + at;
  }

  /// Removes the element at `pos`; returns the iterator past the removal.
  T* erase(T* pos) { return erase(pos, pos + 1); }

  /// Removes [first, last); returns the iterator past the removal.
  T* erase(T* first, T* last) {
    LOCAWARE_CHECK(begin() <= first && first <= last && last <= end());
    const size_t removed = static_cast<size_t>(last - first);
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memmove(first, last, static_cast<size_t>(end() - last) * sizeof(T));
    } else {
      T* out = std::move(last, end(), first);  // move-assign tail down
      for (T* p = out; p != end(); ++p) p->~T();
    }
    size_ -= removed;
    return first;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  /// Copy out as a std::vector (edge formats and reports stay on std types).
  std::vector<T> ToVector() const { return std::vector<T>(begin(), end()); }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  /// std::vector comparison keeps call sites and tests type-agnostic.
  friend bool operator==(const SmallVector& a, const std::vector<T>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const std::vector<T>& a, const SmallVector& b) {
    return b == a;
  }

 private:
  T* InlineSlots() { return reinterpret_cast<T*>(inline_storage_); }
  const T* InlineSlots() const { return reinterpret_cast<const T*>(inline_storage_); }

  /// Relocates the live elements into `dst` (raw storage): memcpy for
  /// trivial T, move-construct + destroy-source otherwise.
  void RelocateInto(T* dst) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(dst, data_, size_ * sizeof(T));
    } else {
      for (size_t i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(dst + i)) T(std::move(data_[i]));
        data_[i].~T();
      }
    }
  }

  void DestroyAll() {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (size_t i = 0; i < size_; ++i) data_[i].~T();
    }
  }

  void Grow(size_t want) {
    size_t next = capacity_ * 2;
    if (next < want) next = want;
    T* heap = static_cast<T*>(arena_ ? arena_->Allocate(next * sizeof(T), alignof(T))
                                     : ::operator new(next * sizeof(T)));
    RelocateInto(heap);
    FreeHeap();
    data_ = heap;
    capacity_ = next;
  }

  void FreeHeap() {
    if (is_inline()) return;
    if (arena_ != nullptr) {
      arena_->Deallocate(data_, capacity_ * sizeof(T));
    } else {
      ::operator delete(data_);
    }
  }

  /// Steals `other`'s heap buffer, or relocates its inline payload; leaves
  /// `other` empty and inline either way. The arena travels with the buffer
  /// (the ownership invariant); `other` keeps its binding for reuse.
  void MoveFrom(SmallVector* other) {
    arena_ = other->arena_;
    if (other->is_inline()) {
      data_ = InlineSlots();
      capacity_ = N;
      size_ = other->size_;
      other->RelocateInto(data_);
    } else {
      data_ = other->data_;
      capacity_ = other->capacity_;
      size_ = other->size_;
      other->data_ = other->InlineSlots();
      other->capacity_ = N;
    }
    other->size_ = 0;
  }

  T* data_ = InlineSlots();
  size_t size_ = 0;
  size_t capacity_ = N;
  common::Arena* arena_ = nullptr;  ///< spill source; null = global heap
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

}  // namespace locaware
