#include "common/rng.h"

#include <cmath>
#include <utility>

#include "common/hash.h"
#include "common/small_vector.h"

namespace locaware {
namespace {

// SplitMix64: used to expand a 64-bit seed into the 256-bit xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  LOCAWARE_CHECK_LE(lo, hi);
  const uint64_t range = hi - lo + 1;  // wraps to 0 for the full 2^64 range
  if (range == 0) return NextU64();
  // Lemire's multiply-then-reject method: unbiased, usually one multiply.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < range) {
    const uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<uint64_t>(m);
    }
  }
  return lo + static_cast<uint64_t>(m >> 64);
}

double Rng::UniformDouble(double lo, double hi) {
  LOCAWARE_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double rate) {
  LOCAWARE_CHECK_GT(rate, 0.0);
  // Inversion; 1 - U avoids log(0).
  return -std::log(1.0 - NextDouble()) / rate;
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  LOCAWARE_CHECK_LE(k, n);
  // Partial Fisher–Yates over the identity array [0, n). Both branches below
  // consume exactly k UniformInt(i, n - 1) draws and compute the same swaps,
  // so the returned sample is bit-identical regardless of which one runs —
  // the split is purely a cost model.
  //
  // The sparse branch never materializes the n-entry array: it tracks only
  // the O(k) displaced entries in an inline (index, value) list, making the
  // common catalog-generation call — n in the tens of thousands, k below a
  // dozen, once per file — O(k) with zero heap traffic instead of an O(n)
  // fill through a fresh ~200 KB scratch vector per call. The linear scans
  // are O(k^2) total, so past a small k the dense array is cheaper again.
  std::vector<size_t> out(k);
  if (k <= 64) {
    SmallVector<std::pair<size_t, size_t>, 16> displaced;
    auto value_at = [&](size_t x) {
      for (const auto& [idx, v] : displaced) {
        if (idx == x) return v;
      }
      return x;
    };
    auto set_value = [&](size_t x, size_t v) {
      for (auto& [idx, cur] : displaced) {
        if (idx == x) {
          cur = v;
          return;
        }
      }
      displaced.push_back({x, v});
    };
    for (size_t i = 0; i < k; ++i) {
      size_t j = static_cast<size_t>(UniformInt(i, n - 1));
      const size_t vi = value_at(i);
      const size_t vj = value_at(j);
      set_value(i, vj);
      set_value(j, vi);
      out[i] = vj;
    }
    return out;
  }
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = static_cast<size_t>(UniformInt(i, n - 1));
    std::swap(indices[i], indices[j]);
  }
  for (size_t i = 0; i < k; ++i) out[i] = indices[i];
  return out;
}

Rng Rng::Split(std::string_view name) const {
  // Derive a child seed from the *current* state and the stream name without
  // advancing the parent.
  uint64_t h = Fnv1a64(name);
  h ^= state_[0] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= state_[3] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return Rng(h);
}

ZipfDistribution::ZipfDistribution(size_t num_items, double exponent)
    : exponent_(exponent) {
  LOCAWARE_CHECK_GT(num_items, 0u);
  LOCAWARE_CHECK_GE(exponent, 0.0);
  cdf_.resize(num_items);
  double total = 0.0;
  for (size_t r = 0; r < num_items; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  // First rank whose CDF value exceeds u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfDistribution::Pmf(size_t rank) const {
  LOCAWARE_CHECK_LT(rank, cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace locaware
