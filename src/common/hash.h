// Hash functions used across the library: FNV-1a for cheap string ids
// (group ids, stream splitting) and MurmurHash3 x64-128 for Bloom filter
// double hashing (two independent 64-bit halves from one pass).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

namespace locaware {

/// 64-bit FNV-1a of a byte string. Deterministic across platforms.
uint64_t Fnv1a64(std::string_view data);

/// 64-bit FNV-1a of raw bytes.
uint64_t Fnv1a64(const void* data, size_t len);

/// Incremental FNV-1a: fold `data` into a running hash. Starting from
/// `kFnv1a64Init` and appending pieces in order equals Fnv1a64 of their
/// concatenation — how the catalog hashes "kw1 kw2 kw3" keyword sets without
/// materializing the joined string.
inline constexpr uint64_t kFnv1a64Init = 0xcbf29ce484222325ULL;
inline uint64_t Fnv1a64Append(uint64_t hash, std::string_view data) {
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// 128-bit MurmurHash3 (x64 variant) of a byte string, returned as two
/// 64-bit halves (h1, h2). The halves are close enough to independent to
/// drive Kirsch–Mitzenmacher double hashing: g_i(x) = h1 + i * h2.
std::pair<uint64_t, uint64_t> Murmur3_128(std::string_view data, uint64_t seed = 0);

/// Precomputed 128-bit key hash, the currency of the id-plane Bloom paths:
/// the catalog hashes each keyword string once at intern time and hot paths
/// probe filters with this instead of re-hashing the string per operation.
struct KeyHash128 {
  uint64_t h1 = 0;
  uint64_t h2 = 0;

  bool operator==(const KeyHash128&) const = default;
};

/// The canonical string -> KeyHash128 mapping (one Murmur3 pass). Filters
/// probed with `BloomKeyHash(s)` and with the string `s` see identical bits.
inline KeyHash128 BloomKeyHash(std::string_view key) {
  const auto [h1, h2] = Murmur3_128(key);
  return KeyHash128{h1, h2};
}

/// Boost-style hash combiner for building composite keys. Cheap but weak for
/// small integers (low bits only); run the result through Mix64 before using
/// high bits.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// SplitMix64 finalizer: full-avalanche mixing of a 64-bit value. Use when
/// deriving uniform doubles or high bits from small-integer keys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace locaware
