// Hash functions used across the library: FNV-1a for cheap string ids
// (group ids, stream splitting) and MurmurHash3 x64-128 for Bloom filter
// double hashing (two independent 64-bit halves from one pass).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

namespace locaware {

/// 64-bit FNV-1a of a byte string. Deterministic across platforms.
uint64_t Fnv1a64(std::string_view data);

/// 64-bit FNV-1a of raw bytes.
uint64_t Fnv1a64(const void* data, size_t len);

/// 128-bit MurmurHash3 (x64 variant) of a byte string, returned as two
/// 64-bit halves (h1, h2). The halves are close enough to independent to
/// drive Kirsch–Mitzenmacher double hashing: g_i(x) = h1 + i * h2.
std::pair<uint64_t, uint64_t> Murmur3_128(std::string_view data, uint64_t seed = 0);

/// Boost-style hash combiner for building composite keys. Cheap but weak for
/// small integers (low bits only); run the result through Mix64 before using
/// high bits.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// SplitMix64 finalizer: full-avalanche mixing of a 64-bit value. Use when
/// deriving uniform doubles or high bits from small-integer keys.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace locaware
