// Status / Result error handling, modeled after Apache Arrow's conventions:
// fallible public APIs return Status (or Result<T>) instead of throwing.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/check.h"

namespace locaware {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kInternal = 7,
};

/// Returns a stable human-readable name for a StatusCode ("OK", "NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a contextual message.
///
/// The OK status carries no allocation; error statuses carry a message that
/// should name the offending value (e.g. "degree 0 is not a valid target").
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg) : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status. Never both.
///
/// Usage:
///   Result<Underlay> r = UnderlayBuilder(...).Build();
///   if (!r.ok()) return r.status();
///   Underlay u = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from an error Status. CHECK-fails if the status is OK, because
  /// an OK Result must carry a value.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    LOCAWARE_CHECK(!std::get<Status>(repr_).ok()) << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The held value; CHECK-fails on error results.
  const T& ValueOrDie() const& {
    LOCAWARE_CHECK(ok()) << "ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T ValueOrDie() && {
    LOCAWARE_CHECK(ok()) << "ValueOrDie on error: " << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  /// The held value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace locaware

/// Propagates a non-OK Status from the current function.
#define LOCAWARE_RETURN_NOT_OK(expr)           \
  do {                                         \
    ::locaware::Status _st = (expr);           \
    if (!_st.ok()) return _st;                 \
  } while (false)
