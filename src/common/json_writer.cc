#include "common/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace locaware {

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(bool pretty) : pretty_(pretty) {}

void JsonWriter::Indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::PrepareForValue() {
  LOCAWARE_CHECK(!done_) << "write after TakeString";
  if (stack_.empty()) {
    LOCAWARE_CHECK(out_.empty()) << "only one top-level value allowed";
    return;
  }
  if (stack_.back() == Scope::kObject) {
    LOCAWARE_CHECK(expecting_value_) << "object member requires Key() first";
    expecting_value_ = false;
    return;
  }
  // Array element.
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  Indent();
}

void JsonWriter::BeginObject() {
  PrepareForValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
}

void JsonWriter::EndObject() {
  LOCAWARE_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  LOCAWARE_CHECK(!expecting_value_) << "dangling Key()";
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) Indent();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  PrepareForValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
}

void JsonWriter::EndArray() {
  LOCAWARE_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) Indent();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  LOCAWARE_CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "Key() outside an object";
  LOCAWARE_CHECK(!expecting_value_) << "two keys in a row";
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  Indent();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += pretty_ ? "\": " : "\":";
  expecting_value_ = true;
}

void JsonWriter::String(std::string_view value) {
  PrepareForValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  PrepareForValue();
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  PrepareForValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  PrepareForValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  PrepareForValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  PrepareForValue();
  out_ += "null";
}

std::string JsonWriter::TakeString() {
  LOCAWARE_CHECK(stack_.empty()) << "unbalanced containers";
  LOCAWARE_CHECK(!out_.empty()) << "empty document";
  done_ = true;
  return std::move(out_);
}

}  // namespace locaware
