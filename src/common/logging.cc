#include "common/logging.h"

#include <cstdio>

namespace locaware {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (!Enabled(level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace locaware
