// Internal invariant checking. These macros are always on (including release
// builds): a violated invariant in the simulator would silently corrupt
// experiment results, which is worse than the negligible branch cost.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace locaware {
namespace internal {

/// Terminates the process after printing a fatal invariant-violation message.
[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

/// Stream collector so call sites can append context:
///   LOCAWARE_CHECK(x > 0) << "x=" << x;
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace locaware

#define LOCAWARE_CHECK(condition)                                                    \
  if (condition) {                                                                   \
  } else                                                                             \
    ::locaware::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define LOCAWARE_CHECK_EQ(a, b) LOCAWARE_CHECK((a) == (b))
#define LOCAWARE_CHECK_NE(a, b) LOCAWARE_CHECK((a) != (b))
#define LOCAWARE_CHECK_LT(a, b) LOCAWARE_CHECK((a) < (b))
#define LOCAWARE_CHECK_LE(a, b) LOCAWARE_CHECK((a) <= (b))
#define LOCAWARE_CHECK_GT(a, b) LOCAWARE_CHECK((a) > (b))
#define LOCAWARE_CHECK_GE(a, b) LOCAWARE_CHECK((a) >= (b))
