#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace locaware {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(delim, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> TokenizeKeywords(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (unsigned char c : text) {
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

bool ContainsAllKeywords(const std::vector<std::string>& filename_keywords,
                         const std::vector<std::string>& query_keywords) {
  for (const std::string& kw : query_keywords) {
    if (std::find(filename_keywords.begin(), filename_keywords.end(), kw) ==
        filename_keywords.end()) {
      return false;
    }
  }
  return true;
}

std::string HumanCount(double value) {
  char buf[32];
  if (value >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (value >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", value);
  }
  return buf;
}

}  // namespace locaware
