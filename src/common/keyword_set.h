// Sorted keyword-id set operations — the id-plane replacement for the
// string-era ContainsAllKeywords (see common/types.h for the contract:
// keyword-id sets travel sorted ascending).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace locaware {

/// True iff every id of `sorted_query` appears in `sorted_keywords` (both
/// ascending; duplicates in the query are tolerated). Linear merge over two
/// ascending runs; an empty query is vacuously contained.
inline bool ContainsAllIds(const std::vector<KeywordId>& sorted_keywords,
                           const std::vector<KeywordId>& sorted_query) {
  size_t k = 0;
  for (size_t q = 0; q < sorted_query.size(); ++q) {
    if (q > 0 && sorted_query[q] == sorted_query[q - 1]) continue;
    while (k < sorted_keywords.size() && sorted_keywords[k] < sorted_query[q]) ++k;
    if (k == sorted_keywords.size() || sorted_keywords[k] != sorted_query[q]) {
      return false;
    }
  }
  return true;
}

/// The seed step of a posting-list intersection, shared by the catalog's
/// FindMatches and the response index's LookupByKeywords: the smallest
/// posting list among the (deduplicated) query keywords, or nullptr when any
/// keyword has no posting — in which case no entry can contain them all.
/// `lookup` maps a KeywordId to its posting list, or nullptr when absent.
template <typename PostingLookupFn>
const std::vector<FileId>* SmallestPosting(const std::vector<KeywordId>& sorted_query,
                                           PostingLookupFn&& lookup) {
  const std::vector<FileId>* seed = nullptr;
  for (size_t q = 0; q < sorted_query.size(); ++q) {
    if (q > 0 && sorted_query[q] == sorted_query[q - 1]) continue;
    const std::vector<FileId>* posting = lookup(sorted_query[q]);
    if (posting == nullptr || posting->empty()) return nullptr;
    if (seed == nullptr || posting->size() < seed->size()) seed = posting;
  }
  return seed;
}

}  // namespace locaware
