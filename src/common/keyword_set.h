// Sorted keyword-id set operations — the id-plane replacement for the
// string-era ContainsAllKeywords (see common/types.h for the contract:
// keyword-id sets travel sorted ascending). Parameters are spans so the
// catalog's std::vector storage and the response index's SmallVector
// storage share one implementation.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.h"

namespace locaware {

/// True iff every id of `sorted_query` appears in `sorted_keywords` (both
/// ascending; duplicates in the query are tolerated). Linear merge over two
/// ascending runs; an empty query is vacuously contained.
inline bool ContainsAllIds(std::span<const KeywordId> sorted_keywords,
                           std::span<const KeywordId> sorted_query) {
  size_t k = 0;
  for (size_t q = 0; q < sorted_query.size(); ++q) {
    if (q > 0 && sorted_query[q] == sorted_query[q - 1]) continue;
    while (k < sorted_keywords.size() && sorted_keywords[k] < sorted_query[q]) ++k;
    if (k == sorted_keywords.size() || sorted_keywords[k] != sorted_query[q]) {
      return false;
    }
  }
  return true;
}

/// The seed step of a posting-list intersection, shared by the catalog's
/// FindMatches and the response index's LookupByKeywords: the smallest
/// posting list among the (deduplicated) query keywords, or nullptr when any
/// keyword has no posting — in which case no entry can contain them all.
/// `lookup` maps a KeywordId to a pointer to its posting list (any
/// vector-like type), or nullptr when absent.
template <typename PostingLookupFn>
auto SmallestPosting(std::span<const KeywordId> sorted_query, PostingLookupFn&& lookup)
    -> decltype(lookup(KeywordId{})) {
  decltype(lookup(KeywordId{})) seed = nullptr;
  for (size_t q = 0; q < sorted_query.size(); ++q) {
    if (q > 0 && sorted_query[q] == sorted_query[q - 1]) continue;
    const auto* posting = lookup(sorted_query[q]);
    if (posting == nullptr || posting->empty()) return nullptr;
    if (seed == nullptr || posting->size() < seed->size()) seed = posting;
  }
  return seed;
}

}  // namespace locaware
