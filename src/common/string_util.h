// String helpers, including the filename→keywords tokenization rule shared by
// the catalog, the protocols and the Bloom-filter layer. The paper: "Filenames
// are broken into keywords following predefined rules" (§3.1); our rule is
// case-insensitive splitting on any non-alphanumeric character.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace locaware {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Splits on a single delimiter character. Empty tokens are dropped.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a delimiter string.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// \brief Canonical filename→keyword tokenization (the "predefined rules").
///
/// Lowercases, then splits on every non-alphanumeric byte. "Blue_Monday-live"
/// tokenizes to {"blue", "monday", "live"}. Used identically when indexing a
/// filename and when parsing a keyword query, so matching is consistent.
std::vector<std::string> TokenizeKeywords(std::string_view text);

/// True iff every keyword of `query_keywords` appears in `filename_keywords`
/// (the paper's match rule: "q can be satisfied by any file f which filename
/// contains all keywords of q").
bool ContainsAllKeywords(const std::vector<std::string>& filename_keywords,
                         const std::vector<std::string>& query_keywords);

/// Fixed-width human formatting used by report tables ("12.3k", "4.56M").
std::string HumanCount(double value);

}  // namespace locaware
