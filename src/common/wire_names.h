// Byte-length oracle for interned names.
//
// The data plane carries KeywordId/FileId, but bandwidth accounting must keep
// charging what a real wire encoding would carry: the underlying strings.
// This interface is the only thing the overlay layer needs from whoever owns
// the string tables (catalog::FileCatalog in production, small fakes in
// tests), keeping overlay free of a catalog dependency.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace locaware {

/// \brief Maps interned ids to the byte length of their string encoding.
class WireNames {
 public:
  virtual ~WireNames() = default;

  /// Bytes of the keyword's string form (excluding any terminator).
  virtual size_t KeywordWireBytes(KeywordId kw) const = 0;

  /// Bytes of the full filename string ("kw1 kw2 kw3", separators included).
  virtual size_t FilenameWireBytes(FileId f) const = 0;
};

}  // namespace locaware
