// Flat open-addressing hash containers for the data plane.
//
// The hot per-peer state (pending-query maps, response-index tables, neighbor
// metadata, catalog interning) used std::unordered_map, which heap-allocates
// one node per element and chases a pointer per probe. FlatMap/FlatSet replace
// that with robin-hood open addressing over a single flat buffer: one metadata
// byte per bucket (probe distance + 1; 0 = empty) followed by the slot array,
// allocated together in ONE allocation per table. Lookups walk contiguous
// metadata bytes, inserts displace richer-than-thou entries (robin hood),
// erases backward-shift the probe chain closed — no tombstones, so load never
// degrades and probe distances stay short (bench/micro_flat pins the win over
// std::unordered_map).
//
// Capacity is a power of two (mask, don't mod); the default hashers run keys
// through a full-avalanche finalizer (Mix64 / FNV-1a + Mix64) because masking
// keeps only low bits. Max load factor is 3/4. Growth doubles capacity and
// rehashes in place-order.
//
// Iteration caveat — THE rule for call sites: iteration order is TABLE order
// (hash layout), not insertion or key order, and changes on rehash. Callers
// whose behavior depends on the order they act on entries (sweeps, reports,
// anything feeding the deterministic engine) must collect keys and sort first
// — see ResponseIndex::Files() for the canonical pattern. Order-insensitive
// folds (counting, summing, set-equality checks) may iterate directly.
//
// Arena binding follows the SmallVector buffer-provenance contract
// (common/small_vector.h): the flat buffer is always owned by the *current*
// arena_ (or ::operator new when null) — set_arena migrates an existing
// buffer to the new source, moves carry the source's arena along with the
// buffer, and copies keep the destination's arena.
//
// Element requirements: slots relocate by move during growth, displacement
// and backward-shift, with no strong-exception machinery, so mapped values
// must be nothrow-move-constructible and move-assignable. Keys are taken by
// value on insert and should be cheap to copy (the data plane's keys are
// 4-16 byte ids and string_views).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iterator>
#include <limits>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "common/arena.h"
#include "common/check.h"
#include "common/hash.h"

namespace locaware {

/// Default hasher: full-avalanche mixing so that power-of-two masking (which
/// keeps only low bits) still sees every input bit. Transparent — lookups may
/// pass any type the operator() accepts without converting to the key type.
template <typename K, typename Enable = void>
struct FlatHash;

template <typename K>
struct FlatHash<K, std::enable_if_t<std::is_integral_v<K> || std::is_enum_v<K>>> {
  using is_transparent = void;
  size_t operator()(K key) const {
    return static_cast<size_t>(Mix64(static_cast<uint64_t>(key)));
  }
};

/// String-ish keys hash the bytes (FNV-1a) then avalanche; string_view,
/// std::string and char* all land on the same operator(), which is what makes
/// heterogeneous lookup work (find a string_view-keyed entry by std::string
/// without materializing a view first, and vice versa).
struct FlatStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view key) const {
    return static_cast<size_t>(Mix64(Fnv1a64(key)));
  }
};

template <>
struct FlatHash<std::string_view> : FlatStringHash {};
template <>
struct FlatHash<std::string> : FlatStringHash {};

namespace flat_detail {

/// \brief Shared robin-hood table core; FlatMap/FlatSet are thin views on it.
///
/// `Slot` is the stored record, `KeyOf` projects a slot to its key. The table
/// owns one buffer holding `cap_` slots followed by `cap_` metadata bytes
/// (metadata alignment is 1, so slots-first needs no padding).
template <typename Slot, typename KeyOf, typename Hash, typename Eq>
class RawFlatTable {
  static_assert(std::is_nothrow_move_constructible_v<Slot>,
                "slots relocate during growth/displacement with no "
                "strong-exception machinery");
  static_assert(alignof(Slot) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                "the single-buffer layout uses default operator new alignment");

 public:
  static constexpr size_t kNpos = std::numeric_limits<size_t>::max();

  RawFlatTable() = default;

  RawFlatTable(const RawFlatTable& other) { CopyFrom(other); }

  RawFlatTable(RawFlatTable&& other) noexcept { MoveFrom(&other); }

  RawFlatTable& operator=(const RawFlatTable& other) {
    if (this != &other) {
      DestroyAll();
      FreeBuffer();
      slots_ = nullptr;
      meta_ = nullptr;
      cap_ = 0;
      size_ = 0;
      CopyFrom(other);  // keeps this->arena_: copies keep the destination's
    }
    return *this;
  }

  RawFlatTable& operator=(RawFlatTable&& other) noexcept {
    if (this != &other) {
      DestroyAll();
      FreeBuffer();
      MoveFrom(&other);
    }
    return *this;
  }

  ~RawFlatTable() {
    DestroyAll();
    FreeBuffer();
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Bucket count (power of two; 0 before the first insert/reserve).
  size_t bucket_count() const { return cap_; }

  /// Arena future buffers draw from (null = global heap).
  common::Arena* arena() const { return arena_; }

  /// Routes future buffer allocation through `arena` (null restores operator
  /// new). An existing buffer is migrated so the provenance invariant holds:
  /// the current buffer always belongs to the current arena.
  void set_arena(common::Arena* arena) {
    if (arena == arena_) return;
    if (cap_ != 0) {
      const size_t bytes = BufferBytes(cap_);
      void* fresh = arena ? arena->Allocate(bytes, alignof(Slot))
                          : ::operator new(bytes);
      Slot* fresh_slots = static_cast<Slot*>(fresh);
      uint8_t* fresh_meta = static_cast<uint8_t*>(fresh) + cap_ * sizeof(Slot);
      if constexpr (std::is_trivially_copyable_v<Slot>) {
        std::memcpy(fresh, slots_, bytes);
      } else {
        std::memcpy(fresh_meta, meta_, cap_);
        for (size_t i = 0; i < cap_; ++i) {
          if (meta_[i] == 0) continue;
          ::new (static_cast<void*>(fresh_slots + i)) Slot(std::move(slots_[i]));
          slots_[i].~Slot();
        }
      }
      FreeBuffer();
      slots_ = fresh_slots;
      meta_ = fresh_meta;
    }
    arena_ = arena;
  }

  /// Pre-sizes the table for `want` elements without rehashing on the way
  /// there (binary loaders call this with the element count from the header).
  void reserve(size_t want) {
    size_t need = NormalCapacity(want);
    if (need > cap_) Rehash(need);
  }

  void clear() {
    DestroyAll();
    if (cap_ != 0) std::memset(meta_, 0, cap_);
    size_ = 0;
  }

  template <typename Q>
  size_t FindIndex(const Q& key) const {
    if (size_ == 0) return kNpos;
    const size_t mask = cap_ - 1;
    size_t idx = Hash{}(key) & mask;
    uint8_t dist = 1;  // stored metadata is probe distance + 1
    while (true) {
      const uint8_t m = meta_[idx];
      // Robin-hood early exit: every stored entry at probe distance >= ours
      // with our hash would have displaced a richer one — if this bucket is
      // empty or holds a richer entry, the key cannot be further along.
      if (m < dist) return kNpos;
      if (m == dist && Eq{}(KeyOf{}(slots_[idx]), key)) return idx;
      idx = (idx + 1) & mask;
      if (++dist == 0) return kNpos;  // wrapped past max storable distance
    }
  }

  /// Inserts `slot` (key known absent; load already ensured). Returns the
  /// bucket the slot landed in, or kNpos if a mid-insert rehash displaced it
  /// (distance overflow — the caller re-finds by key).
  size_t InsertNew(Slot&& slot) {
    const size_t mask = cap_ - 1;
    size_t idx = Hash{}(KeyOf{}(slot)) & mask;
    uint8_t dist = 1;
    Slot carry = std::move(slot);
    size_t landed = kNpos;
    bool original_in_carry = true;
    while (true) {
      if (meta_[idx] == 0) {
        ::new (static_cast<void*>(slots_ + idx)) Slot(std::move(carry));
        meta_[idx] = dist;
        ++size_;
        return original_in_carry ? idx : landed;
      }
      if (meta_[idx] < dist) {
        // Rob from the rich: the resident is closer to home than we are, so
        // it can afford the longer probe; swap and keep walking its chain.
        using std::swap;
        swap(carry, slots_[idx]);
        swap(dist, meta_[idx]);
        if (original_in_carry) {
          landed = idx;
          original_in_carry = false;
        }
      }
      idx = (idx + 1) & mask;
      if (++dist == std::numeric_limits<uint8_t>::max()) {
        // Probe chain outgrew the metadata byte (pathological clustering).
        // Double and rehash, folding the carried element in; the original
        // element's bucket moved, so report "lost track" and let the caller
        // re-find. Rehash counts the carry, so size_ is already right.
        Rehash(cap_ * 2, &carry);
        return kNpos;
      }
    }
  }

  /// Removes the slot at `idx`, backward-shifting the displaced tail of the
  /// probe chain so no tombstone is left behind. Invalidates iterators.
  void EraseIndex(size_t idx) {
    LOCAWARE_CHECK_LT(idx, cap_);
    LOCAWARE_CHECK(meta_[idx] != 0);
    const size_t mask = cap_ - 1;
    slots_[idx].~Slot();
    size_t next = (idx + 1) & mask;
    while (meta_[next] > 1) {  // distance > 0: shifting back gets it closer home
      ::new (static_cast<void*>(slots_ + idx)) Slot(std::move(slots_[next]));
      slots_[next].~Slot();
      meta_[idx] = meta_[next] - 1;
      idx = next;
      next = (next + 1) & mask;
    }
    meta_[idx] = 0;
    --size_;
  }

  /// Grows if inserting one more element would cross the 3/4 load bound.
  void EnsureSpace() {
    if ((size_ + 1) * 4 > cap_ * 3) Rehash(cap_ == 0 ? kMinCapacity : cap_ * 2);
  }

  size_t NextOccupied(size_t idx) const {
    while (idx < cap_ && meta_[idx] == 0) ++idx;
    return idx;
  }

  Slot& SlotAt(size_t idx) { return slots_[idx]; }
  const Slot& SlotAt(size_t idx) const { return slots_[idx]; }

 private:
  static constexpr size_t kMinCapacity = 8;

  /// Slots first (aligned), metadata bytes after (alignment 1, no padding).
  static size_t BufferBytes(size_t cap) { return cap * (sizeof(Slot) + 1); }

  /// Smallest power-of-two capacity holding `want` elements under 3/4 load.
  static size_t NormalCapacity(size_t want) {
    if (want == 0) return 0;
    size_t cap = kMinCapacity;
    while (want * 4 > cap * 3) cap *= 2;
    return cap;
  }

  void AllocBuffer(size_t cap) {
    const size_t bytes = BufferBytes(cap);
    void* p = arena_ ? arena_->Allocate(bytes, alignof(Slot)) : ::operator new(bytes);
    slots_ = static_cast<Slot*>(p);
    meta_ = static_cast<uint8_t*>(p) + cap * sizeof(Slot);
    std::memset(meta_, 0, cap);
    cap_ = cap;
  }

  void FreeBuffer() {
    if (cap_ == 0) return;
    if (arena_ != nullptr) {
      arena_->Deallocate(slots_, BufferBytes(cap_));
    } else {
      ::operator delete(slots_);
    }
  }

  void DestroyAll() {
    if constexpr (!std::is_trivially_destructible_v<Slot>) {
      for (size_t i = 0; i < cap_; ++i) {
        if (meta_[i] != 0) slots_[i].~Slot();
      }
    }
  }

  /// Replaces the buffer with one of `new_cap` buckets and reinserts every
  /// element (plus `extra`, if given — the carried element of a mid-insert
  /// overflow). A probe chain overflowing again at the bigger size would mean
  /// a >=254-long chain at <= 3/8 load under an avalanche hash — that is a
  /// broken hasher, not a workload, so it CHECK-fails rather than carrying
  /// lossy retry machinery.
  void Rehash(size_t new_cap, Slot* extra = nullptr) {
    Slot* old_slots = slots_;
    uint8_t* old_meta = meta_;
    const size_t old_cap = cap_;
    AllocBuffer(new_cap);
    size_ = 0;
    bool ok = true;
    if (extra != nullptr) ok = TryPlace(std::move(*extra));
    for (size_t i = 0; ok && i < old_cap; ++i) {
      if (old_meta[i] != 0) ok = TryPlace(std::move(old_slots[i]));
    }
    LOCAWARE_CHECK(ok) << "FlatMap probe chain overflow after growth to "
                       << new_cap << " buckets: broken hash function";
    if (old_cap != 0) {
      if constexpr (!std::is_trivially_destructible_v<Slot>) {
        for (size_t i = 0; i < old_cap; ++i) {
          if (old_meta[i] != 0) old_slots[i].~Slot();
        }
      }
      if (arena_ != nullptr) {
        arena_->Deallocate(old_slots, BufferBytes(old_cap));
      } else {
        ::operator delete(old_slots);
      }
    }
  }

  /// InsertNew minus the growth escape: false on distance overflow.
  bool TryPlace(Slot&& slot) {
    const size_t mask = cap_ - 1;
    size_t idx = Hash{}(KeyOf{}(slot)) & mask;
    uint8_t dist = 1;
    Slot carry = std::move(slot);
    while (true) {
      if (meta_[idx] == 0) {
        ::new (static_cast<void*>(slots_ + idx)) Slot(std::move(carry));
        meta_[idx] = dist;
        ++size_;
        return true;
      }
      if (meta_[idx] < dist) {
        using std::swap;
        swap(carry, slots_[idx]);
        swap(dist, meta_[idx]);
      }
      idx = (idx + 1) & mask;
      if (++dist == std::numeric_limits<uint8_t>::max()) return false;
    }
  }

  /// Layout-preserving copy (same capacity, same bucket for every element) —
  /// cheaper than reinserting and keeps copies iteration-identical.
  void CopyFrom(const RawFlatTable& other) {
    if (other.cap_ == 0) return;
    AllocBuffer(other.cap_);
    std::memcpy(meta_, other.meta_, cap_);
    if constexpr (std::is_trivially_copyable_v<Slot>) {
      std::memcpy(static_cast<void*>(slots_), other.slots_, cap_ * sizeof(Slot));
    } else {
      for (size_t i = 0; i < cap_; ++i) {
        if (meta_[i] != 0) {
          ::new (static_cast<void*>(slots_ + i)) Slot(other.slots_[i]);
        }
      }
    }
    size_ = other.size_;
  }

  /// Steals `other`'s buffer; the arena travels with it (the provenance
  /// invariant). `other` is left empty but keeps its arena binding for reuse.
  void MoveFrom(RawFlatTable* other) noexcept {
    slots_ = other->slots_;
    meta_ = other->meta_;
    cap_ = other->cap_;
    size_ = other->size_;
    arena_ = other->arena_;
    other->slots_ = nullptr;
    other->meta_ = nullptr;
    other->cap_ = 0;
    other->size_ = 0;
  }

  Slot* slots_ = nullptr;
  uint8_t* meta_ = nullptr;  ///< probe distance + 1 per bucket; 0 = empty
  size_t cap_ = 0;           ///< bucket count, power of two (or 0)
  size_t size_ = 0;
  common::Arena* arena_ = nullptr;  ///< buffer source; null = global heap
};

/// Forward iterator over occupied buckets, in table order (see the iteration
/// caveat in the file comment). `Ref`/`Ptr` let FlatSet hand out const-only
/// access to keys.
template <typename Table, typename Slot, typename Ref, typename Ptr>
class FlatIterator {
 public:
  using iterator_category = std::forward_iterator_tag;
  using value_type = Slot;
  using difference_type = std::ptrdiff_t;
  using reference = Ref;
  using pointer = Ptr;

  FlatIterator() = default;
  FlatIterator(Table* table, size_t idx) : table_(table), idx_(idx) {}

  Ref operator*() const { return table_->SlotAt(idx_); }
  Ptr operator->() const { return &table_->SlotAt(idx_); }

  FlatIterator& operator++() {
    idx_ = table_->NextOccupied(idx_ + 1);
    return *this;
  }
  FlatIterator operator++(int) {
    FlatIterator old = *this;
    ++*this;
    return old;
  }

  friend bool operator==(const FlatIterator& a, const FlatIterator& b) {
    return a.idx_ == b.idx_;
  }
  friend bool operator!=(const FlatIterator& a, const FlatIterator& b) {
    return a.idx_ != b.idx_;
  }

  size_t index() const { return idx_; }

 private:
  Table* table_ = nullptr;
  size_t idx_ = 0;
};

}  // namespace flat_detail

/// \brief Open-addressing robin-hood map, one flat allocation per table.
///
/// The std::unordered_map replacement for the data plane. Iterators
/// dereference to a slot with public `first`/`second` members (structured
/// bindings work); any insert or erase may invalidate all iterators (growth
/// rehashes, erase backward-shifts). Iteration order is table order — see the
/// file comment for the collect-and-sort rule.
template <typename K, typename V, typename Hash = FlatHash<K>,
          typename Eq = std::equal_to<>>
class FlatMap {
 public:
  struct Slot {
    K first;
    V second;
  };

 private:
  struct KeyOf {
    const K& operator()(const Slot& s) const { return s.first; }
  };
  using Table = flat_detail::RawFlatTable<Slot, KeyOf, Hash, Eq>;

 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = Slot;
  using iterator = flat_detail::FlatIterator<Table, Slot, Slot&, Slot*>;
  using const_iterator =
      flat_detail::FlatIterator<const Table, Slot, const Slot&, const Slot*>;

  FlatMap() = default;

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t bucket_count() const { return table_.bucket_count(); }
  common::Arena* arena() const { return table_.arena(); }
  void set_arena(common::Arena* arena) { table_.set_arena(arena); }
  void reserve(size_t want) { table_.reserve(want); }
  void clear() { table_.clear(); }

  iterator begin() { return iterator(&table_, table_.NextOccupied(0)); }
  iterator end() { return iterator(&table_, table_.bucket_count()); }
  const_iterator begin() const {
    return const_iterator(&table_, table_.NextOccupied(0));
  }
  const_iterator end() const {
    return const_iterator(&table_, table_.bucket_count());
  }

  template <typename Q>
  iterator find(const Q& key) {
    const size_t idx = table_.FindIndex(key);
    return idx == Table::kNpos ? end() : iterator(&table_, idx);
  }
  template <typename Q>
  const_iterator find(const Q& key) const {
    const size_t idx = table_.FindIndex(key);
    return idx == Table::kNpos ? end() : const_iterator(&table_, idx);
  }
  template <typename Q>
  bool contains(const Q& key) const {
    return table_.FindIndex(key) != Table::kNpos;
  }

  /// Inserts {key, V(args...)} if absent; returns {iterator, inserted}. The
  /// mapped value is only constructed when the insert happens.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(K key, Args&&... args) {
    size_t idx = table_.FindIndex(key);
    if (idx != Table::kNpos) return {iterator(&table_, idx), false};
    table_.EnsureSpace();
    idx = table_.InsertNew(Slot{key, V(std::forward<Args>(args)...)});
    if (idx == Table::kNpos) idx = table_.FindIndex(key);  // mid-insert rehash
    return {iterator(&table_, idx), true};
  }

  template <typename U>
  std::pair<iterator, bool> insert_or_assign(K key, U&& value) {
    auto [it, inserted] = try_emplace(std::move(key), std::forward<U>(value));
    if (!inserted) it->second = std::forward<U>(value);
    return {it, inserted};
  }

  V& operator[](K key) { return try_emplace(std::move(key)).first->second; }

  /// CHECK-failing lookup for keys that must exist.
  template <typename Q>
  V& at(const Q& key) {
    const size_t idx = table_.FindIndex(key);
    LOCAWARE_CHECK(idx != Table::kNpos) << "FlatMap::at: key absent";
    return table_.SlotAt(idx).second;
  }
  template <typename Q>
  const V& at(const Q& key) const {
    const size_t idx = table_.FindIndex(key);
    LOCAWARE_CHECK(idx != Table::kNpos) << "FlatMap::at: key absent";
    return table_.SlotAt(idx).second;
  }

  template <typename Q>
  size_t erase(const Q& key) {
    const size_t idx = table_.FindIndex(key);
    if (idx == Table::kNpos) return 0;
    table_.EraseIndex(idx);
    return 1;
  }

  /// Erases the pointee; invalidates all iterators (backward shift).
  void erase(const_iterator it) { table_.EraseIndex(it.index()); }
  void erase(iterator it) { table_.EraseIndex(it.index()); }

 private:
  Table table_;
};

/// \brief Open-addressing robin-hood set; same contract as FlatMap (single
/// allocation, arena provenance, table-order iteration — collect-and-sort if
/// order matters). Iterators are const: keys are immutable in place.
template <typename K, typename Hash = FlatHash<K>, typename Eq = std::equal_to<>>
class FlatSet {
  struct KeyOf {
    const K& operator()(const K& k) const { return k; }
  };
  using Table = flat_detail::RawFlatTable<K, KeyOf, Hash, Eq>;

 public:
  using key_type = K;
  using value_type = K;
  using const_iterator =
      flat_detail::FlatIterator<const Table, K, const K&, const K*>;
  using iterator = const_iterator;

  FlatSet() = default;

  size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  size_t bucket_count() const { return table_.bucket_count(); }
  common::Arena* arena() const { return table_.arena(); }
  void set_arena(common::Arena* arena) { table_.set_arena(arena); }
  void reserve(size_t want) { table_.reserve(want); }
  void clear() { table_.clear(); }

  const_iterator begin() const {
    return const_iterator(&table_, table_.NextOccupied(0));
  }
  const_iterator end() const {
    return const_iterator(&table_, table_.bucket_count());
  }

  template <typename Q>
  const_iterator find(const Q& key) const {
    const size_t idx = table_.FindIndex(key);
    return idx == Table::kNpos ? end() : const_iterator(&table_, idx);
  }
  template <typename Q>
  bool contains(const Q& key) const {
    return table_.FindIndex(key) != Table::kNpos;
  }

  std::pair<const_iterator, bool> insert(K key) {
    size_t idx = table_.FindIndex(key);
    if (idx != Table::kNpos) return {const_iterator(&table_, idx), false};
    table_.EnsureSpace();
    idx = table_.InsertNew(K(key));
    if (idx == Table::kNpos) idx = table_.FindIndex(key);  // mid-insert rehash
    return {const_iterator(&table_, idx), true};
  }

  template <typename Q>
  size_t erase(const Q& key) {
    const size_t idx = table_.FindIndex(key);
    if (idx == Table::kNpos) return 0;
    table_.EraseIndex(idx);
    return 1;
  }

 private:
  Table table_;
};

}  // namespace locaware
