// Shared identifier types. Plain integer aliases (not strong types) because
// they cross module boundaries constantly; the alias names keep signatures
// readable.
//
// == The interned-symbol contract (the "id plane") ==
//
// Keywords and filenames exist as strings only at the edges of the system:
// trace I/O, reports, and the CLI. Everywhere on the data plane — catalog
// matching, response-index entries, wire messages, Bloom-filter maintenance,
// group hashing — they travel as integer ids:
//
//   * `KeywordId` indexes the keyword string table owned by
//     `catalog::FileCatalog` (built once at Generate/LoadTrace time). The
//     catalog also owns the derived per-keyword constants: FNV group hash,
//     128-bit Bloom probe hash, and wire byte length.
//   * `FileId` is the canonical file handle. The catalog maps it to the
//     filename string, its keyword-id set, and derived per-file constants
//     (canonical keyword-set hash, wire byte length).
//
// Invariants every id-plane component relies on:
//   * Keyword-id *sets* (query keywords, a file's keyword set) are kept
//     sorted ascending and deduplicated, so containment checks are linear
//     merges instead of string compares.
//   * Wire-size accounting (`overlay::EstimateSizeBytes`) charges the byte
//     length of the *underlying strings* via `common::WireNames`, so traffic
//     metrics are identical to a string-carrying encoding.
//   * Converting id -> string or recomputing a hash from a string is only
//     legitimate at the edges; hot paths use the catalog's precomputed
//     tables.
#pragma once

#include <cstdint>

namespace locaware {

/// Index of a participant peer in [0, num_peers).
using PeerId = uint32_t;

/// Index of a router in the underlay graph.
using RouterId = uint32_t;

/// Index of a file in the catalog, in [0, num_files).
using FileId = uint32_t;

/// Index of an interned keyword in the catalog's string table, in
/// [0, num_keywords).
using KeywordId = uint32_t;

/// Location id derived from the landmark-RTT ordering (0 .. k!-1).
using LocId = uint16_t;

/// Dicas-style group id in [0, M).
using GroupId = uint16_t;

/// Globally unique query identifier (per submitted query).
using QueryId = uint64_t;

/// Sentinel for "no peer".
inline constexpr PeerId kInvalidPeer = UINT32_MAX;

/// Sentinel for "no file".
inline constexpr FileId kInvalidFile = UINT32_MAX;

/// Sentinel for "no keyword".
inline constexpr KeywordId kInvalidKeyword = UINT32_MAX;

}  // namespace locaware
