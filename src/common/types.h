// Shared identifier types. Plain integer aliases (not strong types) because
// they cross module boundaries constantly; the alias names keep signatures
// readable.
#pragma once

#include <cstdint>

namespace locaware {

/// Index of a participant peer in [0, num_peers).
using PeerId = uint32_t;

/// Index of a router in the underlay graph.
using RouterId = uint32_t;

/// Index of a file in the catalog, in [0, num_files).
using FileId = uint32_t;

/// Location id derived from the landmark-RTT ordering (0 .. k!-1).
using LocId = uint16_t;

/// Dicas-style group id in [0, M).
using GroupId = uint16_t;

/// Globally unique query identifier (per submitted query).
using QueryId = uint64_t;

/// Sentinel for "no peer".
inline constexpr PeerId kInvalidPeer = UINT32_MAX;

}  // namespace locaware
