// Streaming statistics used by the metrics layer: a Welford running-stat for
// mean/variance and a sample-retaining histogram for percentiles.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace locaware {

/// \brief Constant-memory accumulator for count/mean/variance/min/max
/// (Welford's online algorithm — numerically stable).
class RunningStat {
 public:
  void Add(double x);
  /// Merges another accumulator into this one (parallel-safe combination).
  void Merge(const RunningStat& other);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Sample-retaining histogram: exact percentiles at the cost of O(n)
/// memory. Simulation metric volumes (≤ a few 100k samples) make this fine.
class Histogram {
 public:
  void Add(double x);
  void Reset();

  size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Exact percentile by nearest-rank (p in [0, 100]). 0 on empty.
  double Percentile(double p) const;

  /// One-line summary "n=… mean=… p50=… p95=… max=…".
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace locaware
