// Deterministic random number generation for simulations.
//
// Every experiment draws all randomness from a single seeded root Rng that is
// split into named sub-streams ("topology", "workload", "churn", ...). Two runs
// with the same (config, seed) therefore produce bit-identical results, and
// changing e.g. the workload seed does not perturb the topology.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace locaware {

/// \brief xoshiro256** pseudo-random generator (Blackman & Vigna).
///
/// Fast, high-quality, 256-bit state; seeded through SplitMix64 so that any
/// 64-bit seed (including 0) yields a well-mixed state.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit output.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in the inclusive range [lo, hi]. CHECK-fails if lo > hi.
  /// Uses Lemire's unbiased bounded generation.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);

  /// Uniform double in [lo, hi). CHECK-fails if lo > hi.
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  /// CHECK-fails if rate <= 0. Used for Poisson inter-arrival times.
  double Exponential(double rate);

  /// Fisher–Yates shuffle of `items` — any random-access container with
  /// size() and operator[] (std::vector, SmallVector). The draw sequence
  /// depends only on the element count, so the container type never changes
  /// results.
  template <typename Container>
  void Shuffle(Container* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, i));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  /// O(k) time and no O(n) scratch for small k (sparse Fisher–Yates); the
  /// draw sequence — and therefore the sample — depends only on (n, k) and
  /// the stream state, never on which internal branch runs.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Derives an independent child stream keyed by `name`. Children of the same
  /// parent with different names are decorrelated; the parent is not advanced.
  Rng Split(std::string_view name) const;

 private:
  uint64_t state_[4];
};

/// \brief Zipf(s) sampler over ranks {0, 1, ..., n-1} (rank 0 most popular).
///
/// P(rank = r) ∝ 1 / (r + 1)^s. Sampling is O(log n) via binary search over
/// the precomputed CDF; construction is O(n).
class ZipfDistribution {
 public:
  /// \param num_items number of ranks (> 0)
  /// \param exponent  skew parameter s (>= 0; 0 degenerates to uniform)
  ZipfDistribution(size_t num_items, double exponent);

  /// Draws a rank in [0, num_items).
  size_t Sample(Rng* rng) const;

  /// Probability mass of a given rank.
  double Pmf(size_t rank) const;

  size_t num_items() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r); back() == 1.0
};

}  // namespace locaware
