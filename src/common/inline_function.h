// Move-only callable with inline-only storage — the event hot path's
// std::function replacement.
//
// Every simulated event is a closure pushed into an EventQueue, sifted
// through a binary heap, and popped for execution. std::function spills any
// capture past ~2 pointers to the heap, so at scale each event costs a
// malloc on push and a free on pop. InlineFunction<Sig, N> stores the
// callable inside the object, full stop: there is no heap fallback, so a
// capture that does not fit N bytes is a *compile error* at the construction
// site (the "capture-too-big diagnostic" — the compiler's candidate note
// names the offending lambda and this constraint).
//
// Requirements on the wrapped callable F (enforced by the constructor's
// requires-clause, so std::is_constructible_v<InlineFunction, F> is false —
// and statically testable — when any of them fails):
//   * sizeof(F)  <= N                      — fits the inline buffer
//   * alignof(F) <= alignof(max_align_t)   — the buffer's alignment
//   * std::is_nothrow_move_constructible_v<F>
//     — heap sift operations relocate entries with no strong-exception
//       machinery; a throwing move would corrupt the queue.
//
// The per-type dispatch is a static ops table (invoke / relocate / destroy)
// referenced through one pointer, so an InlineFunction is exactly
// N + sizeof(void*) bytes, trivially relocatable by its own move ops, and
// nothrow-movable by construction (static_asserted where used).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace locaware::common {

template <typename Sig, size_t N>
class InlineFunction;  // primary template intentionally undefined

/// \brief Move-only callable of signature R(Args...) stored in N inline bytes.
template <typename R, typename... Args, size_t N>
class InlineFunction<R(Args...), N> {
  /// Per-callable-type dispatch: one static table per wrapped F.
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    /// Move-constructs dst from src's callable, then destroys src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename F>
  static constexpr Ops kOpsFor{
      [](void* storage, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<F*>(storage)))(
            std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        F* from = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* storage) noexcept {
        std::launder(reinterpret_cast<F*>(storage))->~F();
      },
  };

 public:
  /// Inline capacity in bytes; closures up to this size fit.
  static constexpr size_t kCapacity = N;

  InlineFunction() = default;

  /// Wraps any callable that fits inline and moves without throwing. The
  /// requires-clause makes oversized / overaligned / throwing-move captures
  /// a constraint failure (std::is_constructible_v is false), so the
  /// compiler diagnostic points at the capture rather than at a heap spill
  /// happening silently.
  template <typename F,
            typename D = std::decay_t<F>>
    requires(!std::is_same_v<D, InlineFunction> &&
             std::is_invocable_r_v<R, D&, Args...> &&
             sizeof(D) <= N && alignof(D) <= alignof(std::max_align_t) &&
             std::is_nothrow_move_constructible_v<D>)
  InlineFunction(F&& f) : ops_(&kOpsFor<D>) {  // NOLINT(runtime/explicit)
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      if (ops_ != nullptr) ops_->destroy(storage_);
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() {
    if (ops_ != nullptr) ops_->destroy(storage_);
  }

  /// True when a callable is held (moved-from and default-constructed
  /// instances are empty).
  explicit operator bool() const { return ops_ != nullptr; }

  /// Invokes the wrapped callable. CHECK-fails when empty.
  R operator()(Args... args) {
    LOCAWARE_CHECK(ops_ != nullptr) << "invoking an empty InlineFunction";
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  const Ops* ops_ = nullptr;  ///< null = empty
  alignas(std::max_align_t) unsigned char storage_[N];
};

}  // namespace locaware::common
