// Minimal streaming JSON writer (no external dependencies), used by the CLI
// and the experiment exporters. Produces standards-compliant output: UTF-8
// pass-through, escaped control characters, no trailing commas.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace locaware {

/// \brief Builder for one JSON document.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name"); w.String("Locaware");
///   w.Key("series"); w.BeginArray(); w.Double(1.5); w.EndArray();
///   w.EndObject();
///   std::string doc = w.TakeString();
///
/// Structural misuse (value without key inside an object, unbalanced ends)
/// is CHECK-fatal — a malformed export is a bug, not an input error.
class JsonWriter {
 public:
  /// \param pretty  when true, indents nested containers by two spaces.
  explicit JsonWriter(bool pretty = true);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object key; must be directly inside an object and followed by
  /// exactly one value (or container).
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  /// Doubles are rendered with up to 12 significant digits; NaN/Inf (not
  /// representable in JSON) render as null.
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Finishes the document and returns it. CHECK-fails if containers remain
  /// open or nothing was written.
  std::string TakeString();

 private:
  enum class Scope { kObject, kArray };

  /// Comma/indent bookkeeping before a value or key is emitted.
  void PrepareForValue();
  void Indent();

  bool pretty_;
  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  ///< parallel to stack_
  bool expecting_value_ = false;  ///< a Key was written, value must follow
  bool done_ = false;
};

/// Escapes a string per RFC 8259 (without surrounding quotes).
std::string JsonEscape(std::string_view raw);

}  // namespace locaware
