#include "common/arena.h"

#include <cstring>

#include "common/check.h"

namespace locaware::common {

unsigned Arena::ClassOf(size_t bytes) {
  size_t chunk = kMinClassBytes;
  unsigned cls = 0;
  while (chunk < bytes) {
    chunk <<= 1;
    ++cls;
  }
  LOCAWARE_CHECK_LT(cls, kNumClasses) << "arena allocation too large: " << bytes;
  return cls;
}

void* Arena::Allocate(size_t bytes, size_t align) {
  LOCAWARE_CHECK_LE(align, kMinClassBytes)
      << "arena alignment above 16 is unsupported";
  if (bytes == 0) bytes = 1;
  const unsigned cls = ClassOf(bytes);
  const size_t chunk = ClassBytes(cls);
  bytes_allocated_ += chunk;
  if (FreeNode* node = free_lists_[cls]; node != nullptr) {
    free_lists_[cls] = node->next;
    ++freelist_hits_;
    return node;
  }
  return BumpAllocate(chunk);
}

void Arena::Deallocate(void* ptr, size_t bytes) {
  if (ptr == nullptr) return;
  if (bytes == 0) bytes = 1;
  const unsigned cls = ClassOf(bytes);
  FreeNode* node = static_cast<FreeNode*>(ptr);
  node->next = free_lists_[cls];
  free_lists_[cls] = node;
}

void Arena::Reserve(size_t bytes) {
  if (bytes <= bump_left_) return;
  NewBlock(bytes);
}

void* Arena::BumpAllocate(size_t bytes) {
  if (bump_left_ < bytes) NewBlock(bytes);
  unsigned char* out = bump_;
  bump_ += bytes;
  bump_left_ -= bytes;
  return out;
}

void Arena::NewBlock(size_t min_bytes) {
  // Geometric growth: each block at least doubles the previous one, so a
  // shard that outgrows its initial reservation settles in O(log n) blocks.
  size_t size = kDefaultBlockBytes;
  if (!blocks_.empty()) size = blocks_.back().size * 2;
  if (size < min_bytes) size = min_bytes;
  Block block;
  block.data = std::make_unique<unsigned char[]>(size);
  block.size = size;
  // The abandoned tail of the previous block (< min_bytes) is forfeited;
  // bounded waste in exchange for contiguous chunks.
  bump_ = block.data.get();
  bump_left_ = size;
  bytes_reserved_ += size;
  blocks_.push_back(std::move(block));
}

}  // namespace locaware::common
