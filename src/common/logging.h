// Minimal leveled logging. Simulations are hot loops, so the macro evaluates
// its stream arguments only when the level is enabled.
#pragma once

#include <sstream>
#include <string>

namespace locaware {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global log sink. Thread-compatible (the simulator is single-threaded).
class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool Enabled(LogLevel level) const { return level >= level_; }

  /// Writes one formatted line ("[LEVEL] message\n") to stderr.
  void Write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarning;
};

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Write(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace locaware

#define LOCAWARE_LOG(level)                                                   \
  if (!::locaware::Logger::Instance().Enabled(::locaware::LogLevel::level)) { \
  } else                                                                      \
    ::locaware::internal::LogMessage(::locaware::LogLevel::level)

#define LOG_DEBUG LOCAWARE_LOG(kDebug)
#define LOG_INFO LOCAWARE_LOG(kInfo)
#define LOG_WARNING LOCAWARE_LOG(kWarning)
#define LOG_ERROR LOCAWARE_LOG(kError)
