// Wire messages exchanged over overlay links.
//
// Five message families cover every protocol in the paper: keyword queries
// (flooded/routed forward), query responses (routed back hop-by-hop along the
// query's reverse path, §3.1), Bloom-filter delta updates (Locaware §4.2),
// RTT probes (Locaware's provider-selection fallback, §5.1), and the
// link-repair handshake (LinkDrop / LinkProbe / LinkAccept) that carries
// churn's overlay rewiring as ordinary messages so it composes with the
// sharded engine. Sizes are estimated for the bandwidth-accounting metric.
//
// Messages carry interned ids (common/types.h), not strings; a real wire
// encoding would carry the strings, so EstimateSizeBytes resolves each id's
// byte length through a WireNames table — traffic metrics are identical to a
// string-carrying encoding.
//
// Message payload lists are SmallVectors with inline capacities chosen from
// the paper's workload shape, so a typical message is one contiguous value
// with zero owned heap blocks — which is what lets the event queue hold a
// by-value message closure entirely inline (sim/event_queue.h). The
// capacities are a size/latency trade, not a limit: longer lists spill to
// the heap and everything still works.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/small_vector.h"
#include "common/types.h"
#include "common/wire_names.h"

namespace locaware::overlay {

/// Query keyword sets: 1..K keywords, K small (the workload generator's
/// default caps K at 3 — paper §5.1 searches carry a few keywords).
using KeywordVec = SmallVector<KeywordId, 4>;
/// Bloom-delta positions: one filename toggles at most k·keywords ≈ 12 bits
/// (paper §4.2 footnote 1); full-state bootstraps spill.
using PositionVec = SmallVector<uint32_t, 12>;

/// A provider as carried in responses: address + locId (paper Fig. 1, the
/// "(D, 1)" entries).
struct ProviderInfo {
  PeerId peer = kInvalidPeer;
  LocId loc_id = 0;

  bool operator==(const ProviderInfo&) const = default;
};

/// Provider lists: the locId-selected subset of a cached provider list,
/// capped by ProtocolParams::max_response_providers (default 3).
using ProviderVec = SmallVector<ProviderInfo, 4>;

/// Forward-direction query. Each forwarded copy is a distinct message; the
/// payload is immutable except ttl/hops.
struct QueryMessage {
  QueryId qid = 0;
  PeerId origin = kInvalidPeer;       ///< requesting peer (peer A in Fig. 1)
  LocId origin_loc = 0;               ///< requester's locId, used to pick providers
  KeywordVec keywords;                ///< 1..K keyword ids, sorted ascending
  /// Canonical keyword-set hash (catalog::FileCatalog::CanonicalSetFnv of
  /// `keywords`), computed once at submit time so per-hop group routing is a
  /// modulo instead of a re-hash. Not charged on the wire: a receiver could
  /// recompute it from the keywords.
  uint64_t kw_set_fnv = 0;
  /// One designated member of `keywords` for single-keyword routing
  /// (Dicas-Keys): the *first sampled* query keyword, recorded before
  /// canonical sorting so the pick stays uniform over the set. Not charged
  /// on the wire (it duplicates a keyword already carried).
  KeywordId route_kw = kInvalidKeyword;
  uint32_t ttl = 7;                   ///< remaining hops (paper: starts at 7)
  uint32_t hops = 0;                  ///< hops traveled so far
};

/// One answered file inside a response.
struct ResponseRecord {
  FileId file = kInvalidFile;
  /// Known providers, most recent first. For a file-store answer this is just
  /// the responder; for an index answer it is the locId-selected subset of
  /// the cached provider list.
  ProviderVec providers;
  /// True when this record was answered from a response index (cache hit)
  /// rather than the responder's own file store.
  bool from_index = false;
};

/// Records per response: a responder usually answers with one matching file;
/// multi-record responses spill.
using RecordVec = SmallVector<ResponseRecord, 1>;

/// Backward-direction response, relayed along the reverse path.
struct ResponseMessage {
  QueryId qid = 0;
  PeerId responder = kInvalidPeer;  ///< the peer that answered
  PeerId origin = kInvalidPeer;     ///< final destination (the requester)
  LocId origin_loc = 0;             ///< copied from the query
  KeywordVec query_keywords;  ///< so cachers can match Gid/keywords
  RecordVec records;
  uint32_t hops = 0;  ///< hops traveled back so far
};

/// Locaware Bloom-filter delta gossip (one neighbor-to-neighbor hop).
struct BloomUpdateMessage {
  PeerId sender = kInvalidPeer;
  uint32_t filter_bits = 0;
  PositionVec toggled_positions;
  /// Full-state bootstrap: positions are the sender's complete advertised
  /// filter (receiver replaces its copy instead of toggling). Sent once when
  /// a repaired link completes, so the receiver's delta baseline starts
  /// consistent no matter what gossip raced the handshake.
  bool full_state = false;
};

/// RTT probe / reply used by provider selection ("it measures its RTT to the
/// set of available providers", §5.1). Probes travel the underlay directly.
struct ProbeMessage {
  PeerId prober = kInvalidPeer;
  PeerId target = kInvalidPeer;
};

// --- link-repair handshake (churn) -----------------------------------------
//
// Session churn rewires the overlay through three messages instead of direct
// cross-peer mutation, so each endpoint updates only its own adjacency when
// the message's event executes on its shard:
//
//   departure:  p clears its own half-edges and sends LinkDrop(epoch) to each
//               former neighbor; the neighbor removes its half-edge (iff the
//               stamp is <= the named epoch), invalidates response-index
//               entries naming p, and probes for a replacement if orphaned.
//   rejoin:     p sends LinkProbe to candidate peers; an online candidate
//               installs its half-edge, replies LinkAccept, and the prober
//               installs its half on receipt. Both directions carry a
//               LinkAnnounce (gid, degree hint, session epoch, and — for
//               Locaware — the advertised Bloom filter), replacing the
//               instantaneous full-filter exchange of the static setup path.

/// The sender's self-description carried by LinkProbe/LinkAccept.
struct LinkAnnounce {
  PeerId peer = kInvalidPeer;
  GroupId gid = 0;
  /// Sender's session epoch; the receiver stamps its half-edge with this.
  uint32_t epoch = 0;
  /// Sender's degree at send time — the receiver's (stale-able) hint for
  /// degree-ranked forwarding, since remote adjacency is unreadable under
  /// partitioned ownership.
  uint32_t degree = 0;
  /// Locaware: snapshot of the sender's advertised keyword filter.
  std::optional<bloom::BloomFilter> filter;
};

/// "I am leaving": sent by a departing peer to each of its neighbors.
struct LinkDropMessage {
  PeerId from = kInvalidPeer;
  /// Epoch of the session that is ending; removes only links stamped <= it.
  uint32_t epoch = 0;
};

/// Rejoin/repair link request.
struct LinkProbeMessage {
  LinkAnnounce from;
};

/// Positive reply to a LinkProbe.
struct LinkAcceptMessage {
  LinkAnnounce from;
  /// Echo of the probe's epoch: the prober ignores accepts from probes it
  /// sent in an earlier session.
  uint32_t prober_epoch = 0;
};

// --- Chord-style DHT (src/dht/, PR 10) --------------------------------------
//
// Iterative lookups: the initiator sends every request and processes every
// response, so session state never leaves the initiator's shard. Messages
// carry the keyword *id* (interning invariant) plus the sender's session
// epoch so receivers can reject requests from ended sessions
// (ChurnTimeline::SessionEpochAt — the DeliverLinkProbe pattern).

/// What a DhtLookupMessage asks of the receiver.
enum class DhtLookupMode : uint8_t {
  kRoute = 0,         ///< "is the key yours, or who do I ask next?"
  kGetProviders = 1,  ///< "send me the records you hold for this keyword"
};

/// Which kind of session a DHT lookup serves; decides where its traffic is
/// charged (query slot vs. the global dht_store counters).
enum class DhtSessionPurpose : uint8_t {
  kQuery = 0,  ///< resolving providers for a submitted query
  kStore = 1,  ///< routing a publish to the key's owner
};

/// One iterative routing/fetch request, initiator -> queried node.
struct DhtLookupMessage {
  PeerId initiator = kInvalidPeer;
  /// Initiator's session epoch at send time; receivers drop stale sessions.
  uint32_t initiator_epoch = 0;
  uint64_t session = 0;           ///< (initiator << 32) | node-local counter
  uint64_t key = 0;               ///< ring position being resolved
  KeywordId kw = kInvalidKeyword; ///< the keyword the key was derived from
  QueryId qid = 0;                ///< meaningful iff purpose == kQuery
  DhtLookupMode mode = DhtLookupMode::kRoute;
  DhtSessionPurpose purpose = DhtSessionPurpose::kQuery;
};

/// Reply to a DhtLookupMessage, queried node -> initiator.
struct DhtResponseMessage {
  PeerId responder = kInvalidPeer;
  uint64_t session = 0;
  /// Route resolved: `next` is the key's owner. False: `next` is the next
  /// node to ask (kInvalidPeer aborts the lookup — the responder had no
  /// routing state).
  bool done = false;
  PeerId next = kInvalidPeer;
  /// kGetProviders reply payload: the owner's records for the keyword,
  /// from_index = true (they are index entries, not the responder's files).
  RecordVec records;
};

/// Install one provider record at the resolved owner, publisher -> owner.
struct DhtStoreMessage {
  PeerId publisher = kInvalidPeer;
  /// Publisher's session epoch; the owner drops stores from ended sessions.
  uint32_t publisher_epoch = 0;
  KeywordId kw = kInvalidKeyword;
  FileId file = kInvalidFile;
  ProviderInfo provider;  ///< the publisher itself (address + locId)
};

/// Estimated wire sizes in bytes, for the bandwidth metric. The constants
/// follow Gnutella 0.4 framing: 23-byte descriptor header, 4-byte IPv4 + 2-byte
/// port per address. Keyword/filename payloads are charged at the byte length
/// of their strings, resolved through `names`.
size_t EstimateSizeBytes(const QueryMessage& m, const WireNames& names);
size_t EstimateSizeBytes(const ResponseMessage& m, const WireNames& names);
size_t EstimateSizeBytes(const BloomUpdateMessage& m);
size_t EstimateSizeBytes(const ProbeMessage& m);
size_t EstimateSizeBytes(const LinkDropMessage& m);
size_t EstimateSizeBytes(const LinkProbeMessage& m);
size_t EstimateSizeBytes(const LinkAcceptMessage& m);
size_t EstimateSizeBytes(const DhtLookupMessage& m, const WireNames& names);
size_t EstimateSizeBytes(const DhtResponseMessage& m, const WireNames& names);
size_t EstimateSizeBytes(const DhtStoreMessage& m, const WireNames& names);

}  // namespace locaware::overlay
