// The unstructured P2P overlay: "each peer joins the network by establishing
// logical links to randomly chosen peers ... without knowledge of the
// underlying topology" (paper §3.1). Locality-obliviousness is deliberate —
// it is exactly the mismatch between overlay and underlay that Locaware's
// locIds compensate for.
//
// Two mutation models coexist:
//
//  * Symmetric ops (AddLink/RemoveLink/Depart/Join) touch both endpoints'
//    adjacency at once. They serve generation, tests, and any single-threaded
//    caller, and are forbidden inside a multi-shard event (they would write
//    another shard's state).
//  * Owner half-link ops (GoOffline/GoOnline/AddHalfLink/RemoveHalfLink)
//    touch only peer p's own row. The sharded engine's churn path uses these:
//    each endpoint learns of link changes through LinkDrop/LinkProbe/
//    LinkAccept messages and updates its own view when the message event
//    executes on its shard. The two endpoint views of a link may therefore
//    disagree while a notification is in flight — exactly the staleness a
//    real overlay exhibits.
//
// Half-edges are epoch-stamped: each entry remembers the *remote* peer's
// session epoch at establishment, and a LinkDrop only removes edges from
// sessions at or before the epoch it names — a drop from a past session can
// never tear down a link formed after the peer rejoined.
//
// SetPartitionedOwnership(num_shards, owner_of) extends the engine's node()
// ownership assert to overlay state: with it enabled, any per-peer read or
// write from an event executing on a foreign shard CHECK-fails. The owner of
// a peer is placement-defined (the engine passes its ShardPlacement's owner
// map); an empty map means the modulo partition.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/small_vector.h"
#include "common/status.h"
#include "common/types.h"

namespace locaware::overlay {

/// Overlay shape parameters.
struct OverlayConfig {
  size_t num_peers = 1000;
  /// Target average degree (paper: 3). Realized as an Erdős–Rényi G(n, m)
  /// graph with m = n·avg/2 edges plus bridges that join stray components,
  /// so the realized average can exceed the target slightly.
  double avg_degree = 3.0;
};

/// \brief Mutable random graph of peers with join/leave support for churn.
///
/// Degree-3 graphs are sparse; adjacency is small vectors with linear scans,
/// which beats hash sets at these sizes.
class OverlayGraph {
 public:
  /// One peer's adjacency row. Inline 8 covers essentially every peer of a
  /// degree-3 overlay without touching the heap; high-degree outliers spill
  /// into the bound arena (BindArenas) or the global heap.
  using NeighborList = SmallVector<PeerId, 8>;
  using EpochList = SmallVector<uint32_t, 8>;

  /// Generates a connected overlay. Fails with InvalidArgument when the
  /// config cannot make a connected graph (n = 0, degree too small).
  static Result<OverlayGraph> Generate(const OverlayConfig& config, Rng* rng);

  // The liveness/link tallies are atomics (shard-owned rows mutate
  // concurrently under the parallel engine), which forfeits the implicit
  // copy/move special members; these restore them.
  OverlayGraph(const OverlayGraph& other);
  OverlayGraph& operator=(const OverlayGraph& other);
  OverlayGraph(OverlayGraph&& other) noexcept;
  OverlayGraph& operator=(OverlayGraph&& other) noexcept;

  size_t num_peers() const { return adjacency_.size(); }
  /// Peers currently online. O(1): maintained incrementally by every
  /// liveness mutation (debug builds cross-check against a full scan).
  size_t num_alive() const;
  /// Half-edge count / 2. O(1): maintained incrementally by every link
  /// mutation (debug builds cross-check against a full scan). With in-flight
  /// link notifications the two endpoint views can briefly disagree, so this
  /// is exact only at quiescence.
  size_t num_links() const;
  double AverageDegree() const;

  bool IsAlive(PeerId p) const;
  const NeighborList& Neighbors(PeerId p) const;
  size_t Degree(PeerId p) const;
  bool AreNeighbors(PeerId a, PeerId b) const;

  /// The neighbor of `p` with the highest degree (Locaware's last-resort
  /// forwarding target), or kInvalidPeer if `p` has no neighbors.
  PeerId HighestDegreeNeighbor(PeerId p) const;

  // --- symmetric mutation (generation, tests, single-threaded callers) -----

  /// Adds an undirected link. No-op (returns false) if it already exists,
  /// would self-loop, or either endpoint is offline.
  bool AddLink(PeerId a, PeerId b);
  /// Removes an undirected link; returns whether it existed.
  bool RemoveLink(PeerId a, PeerId b);

  /// Takes a peer offline, dropping all of its links on both sides. Returns
  /// the dropped neighbor list so the caller can run link-down hooks and
  /// repair orphans (see LinkToRandomPeers).
  std::vector<PeerId> Depart(PeerId p);

  /// Brings a peer back online with no links and a fresh session epoch;
  /// callers follow up with LinkToRandomPeers ("establishing logical links
  /// to randomly chosen peers").
  void Join(PeerId p);

  /// Links `p` to up to `count` random alive non-neighbors; returns the
  /// neighbors actually linked (fewer when the network is too small).
  std::vector<PeerId> LinkToRandomPeers(PeerId p, size_t count, Rng* rng);

  // --- owner-shard half-link mutation (message-routed churn) ---------------

  /// Extends the shard-ownership assert to overlay state: after this, every
  /// per-peer accessor CHECK-fails when called from an event executing on a
  /// shard other than p's owner — owner_of[p] when the map is non-empty
  /// (the engine passes ShardPlacement::owner_map()), else p % num_shards.
  /// No-op for num_shards <= 1.
  void SetPartitionedOwnership(uint32_t num_shards,
                               std::vector<uint32_t> owner_of = {});

  /// Routes each peer's adjacency spill storage through `arena_of(p)` (the
  /// engine passes the owning shard's arena). Call from the controller
  /// phase; already-spilled rows are migrated.
  void BindArenas(const std::function<common::Arena*(PeerId)>& arena_of);

  /// Takes `p` offline and clears only p's own half-edges (the remote halves
  /// dissolve when the peer's LinkDrop messages arrive). Returns the former
  /// neighbors so the caller can notify them.
  std::vector<PeerId> GoOffline(PeerId p);

  /// Brings `p` back online with no links and a fresh session epoch.
  void GoOnline(PeerId p);

  /// Adds nb to p's own adjacency, stamped with nb's session epoch as
  /// announced in the link handshake. Refreshes the stamp if the edge
  /// already exists (returns false then, and on self-loops).
  bool AddHalfLink(PeerId p, PeerId nb, uint32_t nb_epoch);

  /// Removes nb from p's own adjacency iff the stored stamp is <= max_epoch
  /// (a LinkDrop names the epoch of the session that ended; a newer link
  /// survives). Returns whether an edge was removed.
  bool RemoveHalfLink(PeerId p, PeerId nb, uint32_t max_epoch);

  /// Does p's own view contain nb?
  bool HasHalfLink(PeerId p, PeerId nb) const;

  /// p's session epoch: 0 for the initial session, +1 per rejoin.
  uint32_t session_epoch(PeerId p) const;

  /// True when every alive peer can reach every other alive peer.
  bool IsConnected() const;
  /// Fraction of alive peers in the largest connected component.
  double LargestComponentFraction() const;

 private:
  OverlayGraph() = default;

  /// CHECK that the executing shard owns p (partitioned mode only).
  void AssertOwner(PeerId p) const;

  std::vector<NeighborList> adjacency_;
  /// link_epoch_[p][i]: the session epoch of adjacency_[p][i] when the edge
  /// was established (parallel arrays, kept in sync by every mutator).
  std::vector<EpochList> link_epoch_;
  std::vector<uint32_t> session_epoch_;
  std::vector<char> alive_;
  uint32_t owner_shards_ = 1;
  /// Placement-defined owner shard per peer; empty = modulo partition.
  std::vector<uint32_t> owner_of_;
  /// Incremental mirrors of the full scans (every mutator updates them;
  /// num_alive/num_links assert agreement in debug builds). Counting
  /// half-edges keeps dangling halves consistent with the scan semantics.
  /// Relaxed atomics: owner-shard mutators bump them concurrently, readers
  /// are controller-phase reporting at quiescence.
  std::atomic<size_t> alive_count_{0};
  std::atomic<size_t> half_edge_count_{0};
};

}  // namespace locaware::overlay
