// The unstructured P2P overlay: "each peer joins the network by establishing
// logical links to randomly chosen peers ... without knowledge of the
// underlying topology" (paper §3.1). Locality-obliviousness is deliberate —
// it is exactly the mismatch between overlay and underlay that Locaware's
// locIds compensate for.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace locaware::overlay {

/// Overlay shape parameters.
struct OverlayConfig {
  size_t num_peers = 1000;
  /// Target average degree (paper: 3). Realized as an Erdős–Rényi G(n, m)
  /// graph with m = n·avg/2 edges plus bridges that join stray components,
  /// so the realized average can exceed the target slightly.
  double avg_degree = 3.0;
};

/// \brief Mutable random graph of peers with join/leave support for churn.
///
/// Degree-3 graphs are sparse; adjacency is small vectors with linear scans,
/// which beats hash sets at these sizes.
class OverlayGraph {
 public:
  /// Generates a connected overlay. Fails with InvalidArgument when the
  /// config cannot make a connected graph (n = 0, degree too small).
  static Result<OverlayGraph> Generate(const OverlayConfig& config, Rng* rng);

  size_t num_peers() const { return adjacency_.size(); }
  /// Peers currently online.
  size_t num_alive() const { return num_alive_; }
  size_t num_links() const { return num_links_; }
  double AverageDegree() const;

  bool IsAlive(PeerId p) const;
  const std::vector<PeerId>& Neighbors(PeerId p) const;
  size_t Degree(PeerId p) const;
  bool AreNeighbors(PeerId a, PeerId b) const;

  /// The neighbor of `p` with the highest degree (Locaware's last-resort
  /// forwarding target), or kInvalidPeer if `p` has no neighbors.
  PeerId HighestDegreeNeighbor(PeerId p) const;

  /// Adds an undirected link. No-op (returns false) if it already exists,
  /// would self-loop, or either endpoint is offline.
  bool AddLink(PeerId a, PeerId b);
  /// Removes an undirected link; returns whether it existed.
  bool RemoveLink(PeerId a, PeerId b);

  /// Takes a peer offline, dropping all of its links. Returns the dropped
  /// neighbor list so the caller can run link-down hooks and repair orphans
  /// (see LinkToRandomPeers).
  std::vector<PeerId> Depart(PeerId p);

  /// Brings a peer back online with no links; callers follow up with
  /// LinkToRandomPeers ("establishing logical links to randomly chosen
  /// peers").
  void Join(PeerId p);

  /// Links `p` to up to `count` random alive non-neighbors; returns the
  /// neighbors actually linked (fewer when the network is too small).
  std::vector<PeerId> LinkToRandomPeers(PeerId p, size_t count, Rng* rng);

  /// True when every alive peer can reach every other alive peer.
  bool IsConnected() const;
  /// Fraction of alive peers in the largest connected component.
  double LargestComponentFraction() const;

 private:
  OverlayGraph() = default;

  std::vector<std::vector<PeerId>> adjacency_;
  std::vector<char> alive_;
  size_t num_alive_ = 0;
  size_t num_links_ = 0;
};

}  // namespace locaware::overlay
