// Session-based churn model: "participant peers are highly dynamic and
// autonomous, failing or leaving the network at any moment" (paper §3.1).
//
// Each peer alternates exponentially distributed online sessions and offline
// gaps. The paper's headline experiments run without churn (§5 does not
// enable it); the churn ablation (`bench/ablation_churn`) uses this model to
// show how index staleness erodes each protocol.
#pragma once

#include "common/rng.h"
#include "common/status.h"
#include "sim/sim_time.h"

namespace locaware::overlay {

/// Churn intensity parameters.
struct ChurnConfig {
  bool enabled = false;
  /// Mean online session length in seconds (Gnutella measurements put the
  /// median around tens of minutes; default 30 min).
  double mean_session_s = 1800.0;
  /// Mean offline gap before rejoining, in seconds.
  double mean_offline_s = 600.0;
  /// Links a rejoining peer establishes.
  size_t rejoin_links = 3;
};

/// \brief Samples session/offline durations for the engine's churn events.
class ChurnModel {
 public:
  /// Disabled model (no churn).
  ChurnModel() = default;

  /// Fails with InvalidArgument on non-positive means when enabled.
  static Result<ChurnModel> Create(const ChurnConfig& config);

  const ChurnConfig& config() const { return config_; }

  /// Duration of the next online session.
  sim::SimTime SampleSession(Rng* rng) const;
  /// Duration of the next offline gap.
  sim::SimTime SampleOffline(Rng* rng) const;

 private:
  explicit ChurnModel(const ChurnConfig& config) : config_(config) {}

  ChurnConfig config_{};
};

}  // namespace locaware::overlay
