// Session-based churn model: "participant peers are highly dynamic and
// autonomous, failing or leaving the network at any moment" (paper §3.1).
//
// Each peer alternates exponentially distributed online sessions and offline
// gaps. The paper's headline experiments run without churn (§5 does not
// enable it); the churn ablation (`bench/ablation_churn`) uses this model to
// show how index staleness erodes each protocol.
//
// Two pieces live here:
//
//  * ChurnModel — validates the intensity parameters and samples one
//    session/offline duration from a caller-provided stream.
//  * ChurnTimeline — the whole run's on/off schedule, precomputed from
//    *stable identities*: peer p's k-th cycle durations come from a private
//    stream keyed by (seed, p, k), never from a shared sequential stream.
//    The timeline is immutable after Build, so any shard of the parallel
//    engine may ask "was peer p online at time t?" without reading another
//    shard's mutable state, and the answer cannot depend on event
//    interleaving — the property that lets churn compose with `shards > 1`
//    (the engine routes the *state* transitions as owner-shard events and
//    the neighbor notifications as LinkDrop/LinkProbe/LinkAccept messages;
//    see core/engine.cc).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/sim_time.h"

namespace locaware::overlay {

/// Churn intensity parameters.
struct ChurnConfig {
  bool enabled = false;
  /// Mean online session length in seconds (Gnutella measurements put the
  /// median around tens of minutes; default 30 min).
  double mean_session_s = 1800.0;
  /// Mean offline gap before rejoining, in seconds.
  double mean_offline_s = 600.0;
  /// Links a rejoining peer probes for (LinkProbe fan-out). Fewer links may
  /// form when probed peers are offline by the time the probe lands.
  size_t rejoin_links = 3;
};

/// \brief Samples session/offline durations for the engine's churn events.
class ChurnModel {
 public:
  /// Disabled model (no churn).
  ChurnModel() = default;

  /// Fails with InvalidArgument on non-positive means when enabled.
  static Result<ChurnModel> Create(const ChurnConfig& config);

  const ChurnConfig& config() const { return config_; }

  /// Duration of the next online session.
  sim::SimTime SampleSession(Rng* rng) const;
  /// Duration of the next offline gap.
  sim::SimTime SampleOffline(Rng* rng) const;

 private:
  explicit ChurnModel(const ChurnConfig& config) : config_(config) {}

  ChurnConfig config_{};
};

/// \brief Immutable per-peer on/off schedule for one run.
///
/// Every peer starts online at t = 0; transitions_[p] holds its alternating
/// departure/rejoin instants (even index = departure). Durations are drawn
/// from streams keyed by (seed, peer, cycle), so the schedule is a pure
/// function of the config — identical for every shard count and safe to read
/// from any thread.
class ChurnTimeline {
 public:
  /// Empty timeline: everyone online forever (churn disabled).
  ChurnTimeline() = default;

  /// Precomputes transitions up to (just past) `horizon` for every peer.
  static ChurnTimeline Build(const ChurnModel& model, uint64_t seed,
                             size_t num_peers, sim::SimTime horizon);

  /// Was peer p online at time t? Offline at exactly a departure instant,
  /// online at exactly a rejoin instant. Pure; safe from any shard.
  bool IsOnlineAt(PeerId p, sim::SimTime t) const;

  /// Peer p's session epoch at time t: 0 for the initial session, +1 per
  /// rejoin at or before t — the same counter OverlayGraph::session_epoch
  /// tracks mutably on the owner shard. Lets a handshake receiver reject a
  /// message from a session that ended (the sender departed and rejoined
  /// while it was in flight) without reading remote mutable state.
  uint32_t SessionEpochAt(PeerId p, sim::SimTime t) const;

  /// Peer p's transition instants, ascending (even index = departure).
  const std::vector<sim::SimTime>& transitions(PeerId p) const;

  size_t num_peers() const { return transitions_.size(); }

 private:
  std::vector<std::vector<sim::SimTime>> transitions_;
};

}  // namespace locaware::overlay
