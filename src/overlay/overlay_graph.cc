#include "overlay/overlay_graph.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/check.h"
#include "sim/sharded_simulator.h"

namespace locaware::overlay {

Result<OverlayGraph> OverlayGraph::Generate(const OverlayConfig& config, Rng* rng) {
  if (config.num_peers == 0) return Status::InvalidArgument("num_peers must be > 0");
  if (config.avg_degree < 1.0 && config.num_peers > 1) {
    return Status::InvalidArgument("avg_degree must be >= 1 for a connected overlay");
  }

  OverlayGraph g;
  g.adjacency_.resize(config.num_peers);
  g.link_epoch_.resize(config.num_peers);
  g.session_epoch_.assign(config.num_peers, 0);
  g.alive_.assign(config.num_peers, 1);
  g.alive_count_.store(config.num_peers, std::memory_order_relaxed);

  const size_t n = config.num_peers;
  const size_t target_links = static_cast<size_t>(config.avg_degree * n / 2.0);

  // G(n, m): sample distinct random pairs until m links exist.
  size_t placed = 0;
  size_t attempts = 0;
  const size_t max_attempts = target_links * 50 + 1000;
  while (placed < target_links && attempts < max_attempts) {
    ++attempts;
    const PeerId a = static_cast<PeerId>(rng->UniformInt(0, n - 1));
    const PeerId b = static_cast<PeerId>(rng->UniformInt(0, n - 1));
    if (g.AddLink(a, b)) ++placed;
  }
  if (placed < target_links) {
    return Status::Internal("could not place the requested number of links");
  }

  // Connectivity patch: BFS labels components, then each non-root component
  // gets one bridge to a random peer of the giant component.
  std::vector<int> component(n, -1);
  int num_components = 0;
  for (PeerId seed = 0; seed < n; ++seed) {
    if (component[seed] != -1) continue;
    const int c = num_components++;
    std::deque<PeerId> frontier{seed};
    component[seed] = c;
    while (!frontier.empty()) {
      const PeerId u = frontier.front();
      frontier.pop_front();
      for (PeerId v : g.adjacency_[u]) {
        if (component[v] == -1) {
          component[v] = c;
          frontier.push_back(v);
        }
      }
    }
  }
  if (num_components > 1) {
    // Collect one representative per component; bridge them in a chain with
    // random anchors so no single peer becomes a hub.
    std::vector<std::vector<PeerId>> members(num_components);
    for (PeerId p = 0; p < n; ++p) members[component[p]].push_back(p);
    for (int c = 1; c < num_components; ++c) {
      const PeerId from =
          members[c][rng->UniformInt(0, members[c].size() - 1)];
      const PeerId to =
          members[0][rng->UniformInt(0, members[0].size() - 1)];
      LOCAWARE_CHECK(g.AddLink(from, to));
    }
  }
  LOCAWARE_CHECK(g.IsConnected());
  return g;
}

OverlayGraph::OverlayGraph(const OverlayGraph& other)
    : adjacency_(other.adjacency_),
      link_epoch_(other.link_epoch_),
      session_epoch_(other.session_epoch_),
      alive_(other.alive_),
      owner_shards_(other.owner_shards_),
      owner_of_(other.owner_of_),
      alive_count_(other.alive_count_.load(std::memory_order_relaxed)),
      half_edge_count_(other.half_edge_count_.load(std::memory_order_relaxed)) {}

OverlayGraph& OverlayGraph::operator=(const OverlayGraph& other) {
  if (this == &other) return *this;
  adjacency_ = other.adjacency_;
  link_epoch_ = other.link_epoch_;
  session_epoch_ = other.session_epoch_;
  alive_ = other.alive_;
  owner_shards_ = other.owner_shards_;
  owner_of_ = other.owner_of_;
  alive_count_.store(other.alive_count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  half_edge_count_.store(other.half_edge_count_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  return *this;
}

OverlayGraph::OverlayGraph(OverlayGraph&& other) noexcept
    : adjacency_(std::move(other.adjacency_)),
      link_epoch_(std::move(other.link_epoch_)),
      session_epoch_(std::move(other.session_epoch_)),
      alive_(std::move(other.alive_)),
      owner_shards_(other.owner_shards_),
      owner_of_(std::move(other.owner_of_)),
      alive_count_(other.alive_count_.load(std::memory_order_relaxed)),
      half_edge_count_(other.half_edge_count_.load(std::memory_order_relaxed)) {}

OverlayGraph& OverlayGraph::operator=(OverlayGraph&& other) noexcept {
  if (this == &other) return *this;
  adjacency_ = std::move(other.adjacency_);
  link_epoch_ = std::move(other.link_epoch_);
  session_epoch_ = std::move(other.session_epoch_);
  alive_ = std::move(other.alive_);
  owner_shards_ = other.owner_shards_;
  owner_of_ = std::move(other.owner_of_);
  alive_count_.store(other.alive_count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  half_edge_count_.store(other.half_edge_count_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  return *this;
}

void OverlayGraph::SetPartitionedOwnership(uint32_t num_shards,
                                           std::vector<uint32_t> owner_of) {
  LOCAWARE_CHECK_GT(num_shards, 0u);
  if (!owner_of.empty()) {
    LOCAWARE_CHECK_EQ(owner_of.size(), adjacency_.size());
  }
  owner_shards_ = num_shards;
  owner_of_ = std::move(owner_of);
}

void OverlayGraph::AssertOwner(PeerId p) const {
  if (owner_shards_ <= 1) return;
  const sim::ShardId cur = sim::ShardedSimulator::current_shard();
  if (cur == sim::kNoShard) return;  // controller phase, tests
  const sim::ShardId owner = owner_of_.empty()
                                 ? static_cast<sim::ShardId>(p % owner_shards_)
                                 : static_cast<sim::ShardId>(owner_of_[p]);
  LOCAWARE_CHECK_EQ(cur, owner) << "cross-shard overlay access to peer " << p;
}

size_t OverlayGraph::num_alive() const {
  const size_t count = alive_count_.load(std::memory_order_relaxed);
#ifndef NDEBUG
  LOCAWARE_CHECK_EQ(
      count, static_cast<size_t>(std::count(alive_.begin(), alive_.end(), 1)))
      << "alive tally diverged from the liveness scan";
#endif
  return count;
}

size_t OverlayGraph::num_links() const {
  const size_t half_edges = half_edge_count_.load(std::memory_order_relaxed);
#ifndef NDEBUG
  size_t scanned = 0;
  for (const auto& adj : adjacency_) scanned += adj.size();
  LOCAWARE_CHECK_EQ(half_edges, scanned)
      << "half-edge tally diverged from the adjacency scan";
#endif
  return half_edges / 2;
}

double OverlayGraph::AverageDegree() const {
  const size_t alive = num_alive();
  if (alive == 0) return 0.0;
  return 2.0 * static_cast<double>(num_links()) / static_cast<double>(alive);
}

bool OverlayGraph::IsAlive(PeerId p) const {
  LOCAWARE_CHECK_LT(p, alive_.size());
  AssertOwner(p);
  return alive_[p] != 0;
}

void OverlayGraph::BindArenas(const std::function<common::Arena*(PeerId)>& arena_of) {
  for (PeerId p = 0; p < adjacency_.size(); ++p) {
    adjacency_[p].set_arena(arena_of(p));
    link_epoch_[p].set_arena(arena_of(p));
  }
}

const OverlayGraph::NeighborList& OverlayGraph::Neighbors(PeerId p) const {
  LOCAWARE_CHECK_LT(p, adjacency_.size());
  AssertOwner(p);
  return adjacency_[p];
}

size_t OverlayGraph::Degree(PeerId p) const { return Neighbors(p).size(); }

bool OverlayGraph::AreNeighbors(PeerId a, PeerId b) const {
  const auto& adj = Neighbors(a);
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

PeerId OverlayGraph::HighestDegreeNeighbor(PeerId p) const {
  PeerId best = kInvalidPeer;
  size_t best_degree = 0;
  for (PeerId nb : Neighbors(p)) {
    const size_t d = Degree(nb);
    if (best == kInvalidPeer || d > best_degree) {
      best = nb;
      best_degree = d;
    }
  }
  return best;
}

bool OverlayGraph::AddLink(PeerId a, PeerId b) {
  LOCAWARE_CHECK_LT(a, adjacency_.size());
  LOCAWARE_CHECK_LT(b, adjacency_.size());
  if (owner_shards_ > 1) {
    LOCAWARE_CHECK(sim::ShardedSimulator::current_shard() == sim::kNoShard)
        << "symmetric AddLink inside a partitioned run; use AddHalfLink";
  }
  if (a == b || !alive_[a] || !alive_[b] || AreNeighbors(a, b)) return false;
  adjacency_[a].push_back(b);
  link_epoch_[a].push_back(session_epoch_[b]);
  adjacency_[b].push_back(a);
  link_epoch_[b].push_back(session_epoch_[a]);
  half_edge_count_.fetch_add(2, std::memory_order_relaxed);
  return true;
}

bool OverlayGraph::RemoveLink(PeerId a, PeerId b) {
  LOCAWARE_CHECK_LT(a, adjacency_.size());
  LOCAWARE_CHECK_LT(b, adjacency_.size());
  if (owner_shards_ > 1) {
    LOCAWARE_CHECK(sim::ShardedSimulator::current_shard() == sim::kNoShard)
        << "symmetric RemoveLink inside a partitioned run; use RemoveHalfLink";
  }
  auto ita = std::find(adjacency_[a].begin(), adjacency_[a].end(), b);
  if (ita == adjacency_[a].end()) return false;
  link_epoch_[a].erase(link_epoch_[a].begin() + (ita - adjacency_[a].begin()));
  adjacency_[a].erase(ita);
  auto itb = std::find(adjacency_[b].begin(), adjacency_[b].end(), a);
  LOCAWARE_CHECK(itb != adjacency_[b].end()) << "asymmetric adjacency";
  link_epoch_[b].erase(link_epoch_[b].begin() + (itb - adjacency_[b].begin()));
  adjacency_[b].erase(itb);
  half_edge_count_.fetch_sub(2, std::memory_order_relaxed);
  return true;
}

std::vector<PeerId> OverlayGraph::Depart(PeerId p) {
  LOCAWARE_CHECK_LT(p, adjacency_.size());
  LOCAWARE_CHECK(alive_[p]) << "Depart of offline peer " << p;
  std::vector<PeerId> dropped = adjacency_[p].ToVector();
  for (PeerId nb : dropped) RemoveLink(p, nb);
  alive_[p] = 0;
  alive_count_.fetch_sub(1, std::memory_order_relaxed);
  return dropped;
}

void OverlayGraph::Join(PeerId p) {
  LOCAWARE_CHECK_LT(p, adjacency_.size());
  LOCAWARE_CHECK(!alive_[p]) << "Join of online peer " << p;
  alive_[p] = 1;
  alive_count_.fetch_add(1, std::memory_order_relaxed);
  ++session_epoch_[p];
}

std::vector<PeerId> OverlayGraph::LinkToRandomPeers(PeerId p, size_t count, Rng* rng) {
  const size_t n = adjacency_.size();
  std::vector<PeerId> made;
  size_t attempts = 0;
  const size_t max_attempts = 100 * count + 100;
  while (made.size() < count && attempts < max_attempts) {
    ++attempts;
    const PeerId other = static_cast<PeerId>(rng->UniformInt(0, n - 1));
    if (AddLink(p, other)) made.push_back(other);
  }
  return made;
}

std::vector<PeerId> OverlayGraph::GoOffline(PeerId p) {
  LOCAWARE_CHECK_LT(p, adjacency_.size());
  AssertOwner(p);
  LOCAWARE_CHECK(alive_[p]) << "GoOffline of offline peer " << p;
  alive_[p] = 0;
  alive_count_.fetch_sub(1, std::memory_order_relaxed);
  // ToVector + clear rather than a move: the row keeps its (arena-owned)
  // capacity for the links the peer re-establishes when it rejoins.
  std::vector<PeerId> dropped = adjacency_[p].ToVector();
  adjacency_[p].clear();
  link_epoch_[p].clear();
  half_edge_count_.fetch_sub(dropped.size(), std::memory_order_relaxed);
  return dropped;
}

void OverlayGraph::GoOnline(PeerId p) {
  LOCAWARE_CHECK_LT(p, adjacency_.size());
  AssertOwner(p);
  LOCAWARE_CHECK(!alive_[p]) << "GoOnline of online peer " << p;
  LOCAWARE_CHECK(adjacency_[p].empty());
  alive_[p] = 1;
  alive_count_.fetch_add(1, std::memory_order_relaxed);
  ++session_epoch_[p];
}

bool OverlayGraph::AddHalfLink(PeerId p, PeerId nb, uint32_t nb_epoch) {
  LOCAWARE_CHECK_LT(p, adjacency_.size());
  LOCAWARE_CHECK_LT(nb, adjacency_.size());
  AssertOwner(p);
  LOCAWARE_CHECK(alive_[p]) << "AddHalfLink at offline peer " << p;
  if (nb == p) return false;
  auto it = std::find(adjacency_[p].begin(), adjacency_[p].end(), nb);
  if (it != adjacency_[p].end()) {
    // Re-established within our view: keep the freshest epoch so a stale
    // LinkDrop from the old session cannot remove the new link.
    uint32_t& stamp = link_epoch_[p][it - adjacency_[p].begin()];
    stamp = std::max(stamp, nb_epoch);
    return false;
  }
  adjacency_[p].push_back(nb);
  link_epoch_[p].push_back(nb_epoch);
  half_edge_count_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool OverlayGraph::RemoveHalfLink(PeerId p, PeerId nb, uint32_t max_epoch) {
  LOCAWARE_CHECK_LT(p, adjacency_.size());
  AssertOwner(p);
  auto it = std::find(adjacency_[p].begin(), adjacency_[p].end(), nb);
  if (it == adjacency_[p].end()) return false;
  const size_t idx = static_cast<size_t>(it - adjacency_[p].begin());
  if (link_epoch_[p][idx] > max_epoch) return false;  // newer session's link
  adjacency_[p].erase(it);
  link_epoch_[p].erase(link_epoch_[p].begin() + idx);
  half_edge_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool OverlayGraph::HasHalfLink(PeerId p, PeerId nb) const {
  LOCAWARE_CHECK_LT(p, adjacency_.size());
  AssertOwner(p);
  return std::find(adjacency_[p].begin(), adjacency_[p].end(), nb) !=
         adjacency_[p].end();
}

uint32_t OverlayGraph::session_epoch(PeerId p) const {
  LOCAWARE_CHECK_LT(p, session_epoch_.size());
  AssertOwner(p);
  return session_epoch_[p];
}

bool OverlayGraph::IsConnected() const { return LargestComponentFraction() >= 1.0; }

double OverlayGraph::LargestComponentFraction() const {
  const size_t alive = num_alive();
  if (alive == 0) return 0.0;
  std::vector<char> visited(adjacency_.size(), 0);
  size_t largest = 0;
  for (PeerId seed = 0; seed < adjacency_.size(); ++seed) {
    if (!alive_[seed] || visited[seed]) continue;
    size_t size = 0;
    std::deque<PeerId> frontier{seed};
    visited[seed] = 1;
    while (!frontier.empty()) {
      const PeerId u = frontier.front();
      frontier.pop_front();
      ++size;
      for (PeerId v : adjacency_[u]) {
        // Half-edges may dangle toward departed peers; components only count
        // (and traverse) alive members.
        if (!alive_[v] || visited[v]) continue;
        visited[v] = 1;
        frontier.push_back(v);
      }
    }
    largest = std::max(largest, size);
  }
  return static_cast<double>(largest) / static_cast<double>(alive);
}

}  // namespace locaware::overlay
