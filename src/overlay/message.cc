#include "overlay/message.h"

#include "bloom/bloom_delta.h"

namespace locaware::overlay {

namespace {
constexpr size_t kDescriptorHeader = 23;  // Gnutella 0.4 header
constexpr size_t kAddress = 6;            // IPv4 + port
constexpr size_t kLocId = 1;              // 24 locIds fit a byte
}  // namespace

size_t EstimateSizeBytes(const QueryMessage& m, const WireNames& names) {
  size_t bytes = kDescriptorHeader + kAddress + kLocId + 2;  // origin + loc + ttl/hops
  for (KeywordId kw : m.keywords) bytes += names.KeywordWireBytes(kw) + 1;
  return bytes;
}

size_t EstimateSizeBytes(const ResponseMessage& m, const WireNames& names) {
  size_t bytes = kDescriptorHeader + 2 * kAddress + kLocId + 1;
  for (KeywordId kw : m.query_keywords) bytes += names.KeywordWireBytes(kw) + 1;
  for (const ResponseRecord& r : m.records) {
    bytes += names.FilenameWireBytes(r.file) + 1;
    bytes += r.providers.size() * (kAddress + kLocId);
  }
  return bytes;
}

size_t EstimateSizeBytes(const BloomUpdateMessage& m) {
  // Header + the delta wire format from bloom/bloom_delta.h (16-bit count +
  // ceil(log2(m)) bits per changed position — the paper's 0.132 Kb bound).
  const size_t delta_bits =
      bloom::WireSizeBits(m.filter_bits, m.toggled_positions.size());
  return kDescriptorHeader + kAddress + (delta_bits + 7) / 8;
}

size_t EstimateSizeBytes(const ProbeMessage& /*m*/) {
  return kDescriptorHeader + 2 * kAddress;
}

namespace {
/// Address + gid + epoch + degree hint, plus the full filter bitmap when the
/// announce carries one (link establishment is the one place Locaware ships a
/// whole filter; deltas take over afterwards).
size_t AnnounceBytes(const LinkAnnounce& a) {
  size_t bytes = kAddress + 2 + 4 + 2;
  if (a.filter.has_value()) bytes += 4 + (a.filter->num_bits() + 7) / 8;
  return bytes;
}
}  // namespace

size_t EstimateSizeBytes(const LinkDropMessage& /*m*/) {
  return kDescriptorHeader + kAddress + 4;  // sender + ending epoch
}

size_t EstimateSizeBytes(const LinkProbeMessage& m) {
  return kDescriptorHeader + AnnounceBytes(m.from);
}

size_t EstimateSizeBytes(const LinkAcceptMessage& m) {
  return kDescriptorHeader + AnnounceBytes(m.from) + 4;  // + echoed epoch
}

size_t EstimateSizeBytes(const DhtLookupMessage& m, const WireNames& names) {
  // initiator + epoch + session + ring key + keyword string + mode byte.
  return kDescriptorHeader + kAddress + 4 + 8 + 8 + names.KeywordWireBytes(m.kw) + 1 + 1;
}

size_t EstimateSizeBytes(const DhtResponseMessage& m, const WireNames& names) {
  // responder + session + done/next, then records like a ResponseMessage.
  size_t bytes = kDescriptorHeader + kAddress + 8 + 1 + kAddress;
  for (const ResponseRecord& r : m.records) {
    bytes += names.FilenameWireBytes(r.file) + 1;
    bytes += r.providers.size() * (kAddress + kLocId);
  }
  return bytes;
}

size_t EstimateSizeBytes(const DhtStoreMessage& m, const WireNames& names) {
  // publisher + epoch + keyword + filename + the provider record.
  return kDescriptorHeader + kAddress + 4 + names.KeywordWireBytes(m.kw) + 1 +
         names.FilenameWireBytes(m.file) + 1 + (kAddress + kLocId);
}

}  // namespace locaware::overlay
