#include "overlay/churn.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace locaware::overlay {

Result<ChurnModel> ChurnModel::Create(const ChurnConfig& config) {
  if (config.enabled) {
    if (config.mean_session_s <= 0 || config.mean_offline_s <= 0) {
      return Status::InvalidArgument("churn means must be > 0 when enabled");
    }
    if (config.rejoin_links == 0) {
      return Status::InvalidArgument("rejoin_links must be > 0 when churn enabled");
    }
  }
  return ChurnModel(config);
}

sim::SimTime ChurnModel::SampleSession(Rng* rng) const {
  return sim::FromSeconds(rng->Exponential(1.0 / config_.mean_session_s));
}

sim::SimTime ChurnModel::SampleOffline(Rng* rng) const {
  return sim::FromSeconds(rng->Exponential(1.0 / config_.mean_offline_s));
}

ChurnTimeline ChurnTimeline::Build(const ChurnModel& model, uint64_t seed,
                                   size_t num_peers, sim::SimTime horizon) {
  ChurnTimeline timeline;
  timeline.transitions_.resize(num_peers);
  if (!model.config().enabled) return timeline;
  for (PeerId p = 0; p < num_peers; ++p) {
    std::vector<sim::SimTime>& trans = timeline.transitions_[p];
    sim::SimTime t = 0;
    for (uint64_t cycle = 0; t <= horizon; ++cycle) {
      // One private stream per (peer, cycle): the draw cannot depend on how
      // many draws other peers (or other cycles) made before it.
      uint64_t x = Mix64(seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
      x = Mix64(x ^ cycle);
      Rng rng(x);
      t += std::max<sim::SimTime>(1, model.SampleSession(&rng));
      trans.push_back(t);  // departure
      if (t > horizon) break;
      t += std::max<sim::SimTime>(1, model.SampleOffline(&rng));
      trans.push_back(t);  // rejoin
    }
  }
  return timeline;
}

bool ChurnTimeline::IsOnlineAt(PeerId p, sim::SimTime t) const {
  const std::vector<sim::SimTime>& trans = transitions(p);
  const auto past =
      std::upper_bound(trans.begin(), trans.end(), t) - trans.begin();
  // Transitions alternate departure/rejoin starting from an online state, so
  // an even number of transitions at or before t means "online".
  return (past % 2) == 0;
}

uint32_t ChurnTimeline::SessionEpochAt(PeerId p, sim::SimTime t) const {
  const std::vector<sim::SimTime>& trans = transitions(p);
  const auto past =
      std::upper_bound(trans.begin(), trans.end(), t) - trans.begin();
  // Rejoins are the odd-indexed transitions: past/2 of them are <= t.
  return static_cast<uint32_t>(past / 2);
}

const std::vector<sim::SimTime>& ChurnTimeline::transitions(PeerId p) const {
  LOCAWARE_CHECK_LT(p, transitions_.size());
  return transitions_[p];
}

}  // namespace locaware::overlay
