#include "overlay/churn.h"

namespace locaware::overlay {

Result<ChurnModel> ChurnModel::Create(const ChurnConfig& config) {
  if (config.enabled) {
    if (config.mean_session_s <= 0 || config.mean_offline_s <= 0) {
      return Status::InvalidArgument("churn means must be > 0 when enabled");
    }
    if (config.rejoin_links == 0) {
      return Status::InvalidArgument("rejoin_links must be > 0 when churn enabled");
    }
  }
  return ChurnModel(config);
}

sim::SimTime ChurnModel::SampleSession(Rng* rng) const {
  return sim::FromSeconds(rng->Exponential(1.0 / config_.mean_session_s));
}

sim::SimTime ChurnModel::SampleOffline(Rng* rng) const {
  return sim::FromSeconds(rng->Exponential(1.0 / config_.mean_offline_s));
}

}  // namespace locaware::overlay
