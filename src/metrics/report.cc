#include "metrics/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.h"
#include "common/histogram.h"

namespace locaware::metrics {

namespace {

BucketPoint AggregateSpan(const std::vector<QueryRecord>& records, size_t begin,
                          size_t end) {
  BucketPoint point;
  point.queries_begin = begin;
  point.queries_end = end;

  uint64_t successes = 0;
  uint64_t total_msgs = 0;
  uint64_t total_query_msgs = 0;
  uint64_t total_bytes = 0;
  double download_sum = 0.0;
  uint64_t download_count = 0;
  uint64_t loc_matches = 0;
  uint64_t cache_answers = 0;

  for (size_t i = begin; i < end; ++i) {
    const QueryRecord& r = records[i];
    total_msgs += r.TotalSearchMessages();
    total_query_msgs += r.query_msgs;
    total_bytes += r.TotalSearchBytes();
    if (!r.success) continue;
    ++successes;
    // Local-store hits involve no transfer; Fig. 2 averages real downloads.
    if (r.source != AnswerSource::kLocalStore) {
      download_sum += r.download_distance_ms;
      ++download_count;
    }
    if (r.provider_loc_match) ++loc_matches;
    if (r.source == AnswerSource::kResponseIndex ||
        r.source == AnswerSource::kLocalIndex) {
      ++cache_answers;
    }
  }

  const double n = static_cast<double>(end - begin);
  point.success_rate = n > 0 ? static_cast<double>(successes) / n : 0.0;
  point.msgs_per_query = n > 0 ? static_cast<double>(total_msgs) / n : 0.0;
  point.query_msgs_per_query = n > 0 ? static_cast<double>(total_query_msgs) / n : 0.0;
  point.bytes_per_query = n > 0 ? static_cast<double>(total_bytes) / n : 0.0;
  point.avg_download_ms =
      download_count > 0 ? download_sum / static_cast<double>(download_count) : 0.0;
  point.loc_match_rate =
      successes > 0 ? static_cast<double>(loc_matches) / static_cast<double>(successes)
                    : 0.0;
  point.cache_answer_share =
      successes > 0 ? static_cast<double>(cache_answers) / static_cast<double>(successes)
                    : 0.0;
  return point;
}

}  // namespace

std::vector<BucketPoint> Bucketize(const std::vector<QueryRecord>& records,
                                   size_t num_buckets) {
  std::vector<BucketPoint> points;
  if (records.empty() || num_buckets == 0) return points;
  num_buckets = std::min(num_buckets, records.size());
  const size_t span = records.size() / num_buckets;
  for (size_t b = 0; b < num_buckets; ++b) {
    const size_t begin = b * span;
    const size_t end = (b + 1 == num_buckets) ? records.size() : begin + span;
    points.push_back(AggregateSpan(records, begin, end));
  }
  return points;
}

Summary Summarize(const MetricsCollector& collector) {
  const auto& records = collector.records();
  Summary s;
  s.num_queries = records.size();
  if (records.empty()) return s;

  const BucketPoint all = AggregateSpan(records, 0, records.size());
  s.success_rate = all.success_rate;
  s.msgs_per_query = all.msgs_per_query;
  s.bytes_per_query = all.bytes_per_query;
  s.avg_download_ms = all.avg_download_ms;
  s.loc_match_rate = all.loc_match_rate;
  s.cache_answer_share = all.cache_answer_share;

  uint64_t providers = 0;
  for (const QueryRecord& r : records) providers += r.providers_offered;
  s.avg_providers_offered =
      static_cast<double>(providers) / static_cast<double>(records.size());

  Histogram first_response_ms;
  RunningStat hops;
  for (const QueryRecord& r : records) {
    if (r.first_response_at == 0) continue;
    first_response_ms.Add(sim::ToMs(r.first_response_at - r.submitted_at));
    hops.Add(static_cast<double>(r.first_response_hops));
  }
  s.first_response_ms_p50 = first_response_ms.Percentile(50);
  s.first_response_ms_p95 = first_response_ms.Percentile(95);
  s.first_response_hops_mean = hops.mean();

  s.bloom_update_msgs = collector.bloom_update_msgs();
  s.bloom_update_bytes = collector.bloom_update_bytes();
  s.stale_failures = collector.stale_failures();
  s.stale_provider_hits = collector.stale_provider_hits();
  s.repair_msgs = collector.repair_msgs();
  s.repair_bytes = collector.repair_bytes();
  s.churn_events = collector.churn_events();
  s.dht_lookups = collector.dht_lookups();
  s.dht_hops = collector.dht_hops();
  s.dht_store_msgs = collector.dht_store_msgs();
  s.dht_store_bytes = collector.dht_store_bytes();
  s.hybrid_escalations = collector.hybrid_escalations();
  s.scheduler_windows = collector.scheduler_windows();
  s.scheduler_steals = collector.scheduler_steals();
  s.scheduler_idle_ns = collector.scheduler_idle_ns();
  return s;
}

std::vector<PopularityBand> ByPopularity(const std::vector<QueryRecord>& records,
                                         const std::vector<uint32_t>& boundaries) {
  std::vector<PopularityBand> bands;
  uint32_t begin = 0;
  for (uint32_t end : boundaries) {
    PopularityBand band;
    band.rank_begin = begin;
    band.rank_end = end;
    uint64_t successes = 0, cache_answers = 0, downloads = 0;
    double download_sum = 0;
    for (const QueryRecord& r : records) {
      if (r.target_rank < begin || r.target_rank >= end) continue;
      ++band.queries;
      if (!r.success) continue;
      ++successes;
      if (r.source == AnswerSource::kResponseIndex ||
          r.source == AnswerSource::kLocalIndex) {
        ++cache_answers;
      }
      if (r.source != AnswerSource::kLocalStore) {
        download_sum += r.download_distance_ms;
        ++downloads;
      }
    }
    if (band.queries > 0) {
      band.success_rate =
          static_cast<double>(successes) / static_cast<double>(band.queries);
    }
    if (successes > 0) {
      band.cache_answer_share =
          static_cast<double>(cache_answers) / static_cast<double>(successes);
    }
    if (downloads > 0) {
      band.avg_download_ms = download_sum / static_cast<double>(downloads);
    }
    bands.push_back(band);
    begin = end;
  }
  return bands;
}

double FieldValue(const BucketPoint& point, Field field) {
  switch (field) {
    case Field::kSuccessRate:
      return point.success_rate;
    case Field::kMsgsPerQuery:
      return point.msgs_per_query;
    case Field::kBytesPerQuery:
      return point.bytes_per_query;
    case Field::kDownloadMs:
      return point.avg_download_ms;
    case Field::kLocMatchRate:
      return point.loc_match_rate;
  }
  return 0.0;
}

std::string FormatFigureTable(const std::vector<LabeledSeries>& series, Field field,
                              const std::string& title) {
  std::ostringstream out;
  out << title << "\n";
  out << "  x = cumulative queries; cell = bucket average\n";

  char buf[64];
  out << "  " << std::string(10, ' ');
  for (const LabeledSeries& s : series) {
    std::snprintf(buf, sizeof(buf), "%14s", s.label.c_str());
    out << buf;
  }
  out << "\n";

  if (series.empty()) return out.str();
  const size_t rows = series.front().points.size();
  for (const LabeledSeries& s : series) {
    LOCAWARE_CHECK_EQ(s.points.size(), rows) << "ragged series in figure table";
  }
  for (size_t r = 0; r < rows; ++r) {
    std::snprintf(buf, sizeof(buf), "  %10llu",
                  static_cast<unsigned long long>(series.front().points[r].queries_end));
    out << buf;
    for (const LabeledSeries& s : series) {
      std::snprintf(buf, sizeof(buf), "%14.3f", FieldValue(s.points[r], field));
      out << buf;
    }
    out << "\n";
  }
  return out.str();
}

std::string FormatFigureCsv(const std::vector<LabeledSeries>& series, Field field) {
  std::ostringstream out;
  out << "queries";
  for (const LabeledSeries& s : series) out << ',' << s.label;
  out << '\n';
  if (series.empty()) return out.str();
  const size_t rows = series.front().points.size();
  for (size_t r = 0; r < rows; ++r) {
    out << series.front().points[r].queries_end;
    for (const LabeledSeries& s : series) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", FieldValue(s.points[r], field));
      out << ',' << buf;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace locaware::metrics
