// Self-contained SVG line-chart rendering for the figure benches — no
// gnuplot/matplotlib dependency, just a string of standards-compliant SVG.
// Each figure bench can drop a .svg next to its text table so the paper's
// figures are regenerated as actual pictures.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "metrics/report.h"

namespace locaware::metrics {

/// Chart appearance knobs.
struct SvgChartOptions {
  int width_px = 720;
  int height_px = 440;
  std::string x_label = "number of queries";
  std::string y_label;
  /// Force the y-axis to start at zero (the paper's figures do).
  bool y_from_zero = true;
};

/// \brief Renders one metric of several labeled series as an SVG line chart
/// with axes, tick labels and a legend.
///
/// All series must have equal length (they come from the same bucketing).
/// Returns a complete standalone <svg> document.
std::string RenderSvgChart(const std::vector<LabeledSeries>& series, Field field,
                           const std::string& title, const SvgChartOptions& options);

/// Renders and writes to a file. Fails with IOError when the file cannot be
/// written.
Status WriteSvgChart(const std::vector<LabeledSeries>& series, Field field,
                     const std::string& title, const SvgChartOptions& options,
                     const std::string& path);

}  // namespace locaware::metrics
