#include "metrics/metrics.h"

#include "common/check.h"

namespace locaware::metrics {

size_t MetricsCollector::BeginQuery(QueryId qid, PeerId requester, sim::SimTime now) {
  QueryRecord record;
  record.qid = qid;
  record.requester = requester;
  record.submitted_at = now;
  records_.push_back(std::move(record));
  return records_.size() - 1;
}

QueryRecord* MetricsCollector::Record(size_t slot) {
  LOCAWARE_CHECK_LT(slot, records_.size());
  return &records_[slot];
}

MetricsCollector MetricsCollector::MergeShards(
    const std::vector<const MetricsCollector*>& parts,
    const std::vector<uint32_t>& origin_shard) {
  LOCAWARE_CHECK(!parts.empty());
  MetricsCollector merged;
  const size_t num_slots = parts[0]->records_.size();
  LOCAWARE_CHECK_EQ(origin_shard.size(), num_slots);
  for (const MetricsCollector* part : parts) {
    LOCAWARE_CHECK_EQ(part->records_.size(), num_slots) << "shards disagree on slots";
    merged.bloom_update_msgs_ += part->bloom_update_msgs_;
    merged.bloom_update_bytes_ += part->bloom_update_bytes_;
    merged.churn_events_ += part->churn_events_;
    merged.stale_failures_ += part->stale_failures_;
    merged.stale_provider_hits_ += part->stale_provider_hits_;
    merged.repair_msgs_ += part->repair_msgs_;
    merged.repair_bytes_ += part->repair_bytes_;
    merged.dht_lookups_ += part->dht_lookups_;
    merged.dht_hops_ += part->dht_hops_;
    merged.dht_store_msgs_ += part->dht_store_msgs_;
    merged.dht_store_bytes_ += part->dht_store_bytes_;
    merged.hybrid_escalations_ += part->hybrid_escalations_;
  }
  merged.records_.reserve(num_slots);
  for (size_t slot = 0; slot < num_slots; ++slot) {
    LOCAWARE_CHECK_LT(origin_shard[slot], parts.size());
    QueryRecord record = parts[origin_shard[slot]]->records_[slot];
    for (size_t s = 0; s < parts.size(); ++s) {
      if (s == origin_shard[slot]) continue;
      const QueryRecord& other = parts[s]->records_[slot];
      record.query_msgs += other.query_msgs;
      record.query_bytes += other.query_bytes;
      record.response_msgs += other.response_msgs;
      record.response_bytes += other.response_bytes;
      record.probe_msgs += other.probe_msgs;
      record.probe_bytes += other.probe_bytes;
    }
    merged.records_.push_back(record);
  }
  return merged;
}

}  // namespace locaware::metrics
