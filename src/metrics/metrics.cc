#include "metrics/metrics.h"

#include "common/check.h"

namespace locaware::metrics {

size_t MetricsCollector::BeginQuery(QueryId qid, PeerId requester, sim::SimTime now) {
  QueryRecord record;
  record.qid = qid;
  record.requester = requester;
  record.submitted_at = now;
  records_.push_back(std::move(record));
  return records_.size() - 1;
}

QueryRecord* MetricsCollector::Record(size_t slot) {
  LOCAWARE_CHECK_LT(slot, records_.size());
  return &records_[slot];
}

}  // namespace locaware::metrics
