// Aggregation of QueryRecords into the paper's series and summary numbers.
//
// Every figure in the paper plots a metric against the *number of queries*
// submitted so far, so the core operation here is bucketing records by
// submission index and averaging within each bucket.
#pragma once

#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace locaware::metrics {

/// One x-axis point of a figure: the bucket of queries (start, end] and the
/// metric averages inside it.
struct BucketPoint {
  uint64_t queries_begin = 0;  ///< first query index in the bucket (inclusive)
  uint64_t queries_end = 0;    ///< last query index in the bucket (exclusive)

  double success_rate = 0.0;          ///< Fig. 4
  double msgs_per_query = 0.0;        ///< Fig. 3 (query+response+probe)
  double query_msgs_per_query = 0.0;  ///< Fig. 3 breakdown
  double bytes_per_query = 0.0;       ///< Fig. 3 in wire bytes
  double avg_download_ms = 0.0;       ///< Fig. 2 (successful queries only)
  double loc_match_rate = 0.0;        ///< share of downloads from same locId
  double cache_answer_share = 0.0;    ///< successes answered from an index
};

/// Whole-run rollup.
struct Summary {
  uint64_t num_queries = 0;
  double success_rate = 0.0;
  double msgs_per_query = 0.0;
  double bytes_per_query = 0.0;
  double avg_download_ms = 0.0;
  double loc_match_rate = 0.0;
  double cache_answer_share = 0.0;
  double avg_providers_offered = 0.0;
  uint64_t bloom_update_msgs = 0;
  uint64_t bloom_update_bytes = 0;
  uint64_t stale_failures = 0;
  uint64_t stale_provider_hits = 0;
  uint64_t repair_msgs = 0;
  uint64_t repair_bytes = 0;
  uint64_t churn_events = 0;

  /// Chord DHT counters (kDht/kHybrid only; all-zero otherwise). Emitted in
  /// the metric JSON only when nonzero, so the paper protocols' serialized
  /// output is unchanged byte for byte.
  uint64_t dht_lookups = 0;
  uint64_t dht_hops = 0;
  uint64_t dht_store_msgs = 0;
  uint64_t dht_store_bytes = 0;
  uint64_t hybrid_escalations = 0;

  /// Time from submission to the first response, over queries that got one.
  double first_response_ms_p50 = 0.0;
  double first_response_ms_p95 = 0.0;
  /// Overlay hops the first response traveled (how deep answers sit).
  double first_response_hops_mean = 0.0;

  /// Parallel-scheduler shape (0 for single-shard runs). Deliberately NOT
  /// part of the byte-compared metric JSON: windows/steals depend on the
  /// shard and worker counts and idle_ns on the wall clock.
  uint64_t scheduler_windows = 0;
  uint64_t scheduler_steals = 0;
  uint64_t scheduler_idle_ns = 0;
};

/// Splits `records` into `num_buckets` equal spans (the last may be larger)
/// and averages each. Returns fewer buckets when there are fewer records.
std::vector<BucketPoint> Bucketize(const std::vector<QueryRecord>& records,
                                   size_t num_buckets);

/// One popularity band: queries whose target's Zipf rank falls in
/// [rank_begin, rank_end).
struct PopularityBand {
  uint32_t rank_begin = 0;
  uint32_t rank_end = 0;
  uint64_t queries = 0;
  double success_rate = 0.0;
  double cache_answer_share = 0.0;  ///< successes served from some index
  double avg_download_ms = 0.0;
};

/// Splits records into popularity bands with the given rank boundaries
/// (e.g. {1, 10, 100, 1000, 3000}: head file, top-10, top-100, ...). Bands
/// follow [previous, boundary).
std::vector<PopularityBand> ByPopularity(const std::vector<QueryRecord>& records,
                                         const std::vector<uint32_t>& boundaries);

/// Aggregates a whole run.
Summary Summarize(const MetricsCollector& collector);

/// Renders a fixed-width table: one row per bucket, one column group per
/// labeled series. All series must have equal length.
struct LabeledSeries {
  std::string label;
  std::vector<BucketPoint> points;
};

/// Formats one metric (chosen by `field`) across protocols as a text table
/// whose rows are x-axis buckets — the exact shape of the paper's figures.
enum class Field {
  kSuccessRate,
  kMsgsPerQuery,
  kBytesPerQuery,
  kDownloadMs,
  kLocMatchRate,
};
std::string FormatFigureTable(const std::vector<LabeledSeries>& series, Field field,
                              const std::string& title);

/// CSV dump of the same data (one line per bucket, one column per label).
std::string FormatFigureCsv(const std::vector<LabeledSeries>& series, Field field);

/// Extracts a field value from one bucket point.
double FieldValue(const BucketPoint& point, Field field);

}  // namespace locaware::metrics
