#include "metrics/svg_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace locaware::metrics {

namespace {

/// Color-blind-friendly palette (Okabe–Ito).
constexpr const char* kPalette[] = {"#0072B2", "#D55E00", "#009E73", "#CC79A7",
                                    "#E69F00", "#56B4E9", "#F0E442", "#000000"};

std::string EscapeXml(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Picks a "nice" tick step (1/2/5 × 10^k) for a value range.
double NiceStep(double range, int target_ticks) {
  if (range <= 0) return 1.0;
  const double raw = range / std::max(1, target_ticks);
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  double step;
  if (norm <= 1.0) {
    step = 1.0;
  } else if (norm <= 2.0) {
    step = 2.0;
  } else if (norm <= 5.0) {
    step = 5.0;
  } else {
    step = 10.0;
  }
  return step * mag;
}

}  // namespace

std::string RenderSvgChart(const std::vector<LabeledSeries>& series, Field field,
                           const std::string& title,
                           const SvgChartOptions& options) {
  LOCAWARE_CHECK(!series.empty()) << "no series to plot";
  const size_t points = series.front().points.size();
  LOCAWARE_CHECK_GT(points, 0u) << "empty series";
  for (const LabeledSeries& s : series) {
    LOCAWARE_CHECK_EQ(s.points.size(), points) << "ragged series";
  }

  // Data ranges.
  double x_min = static_cast<double>(series.front().points.front().queries_end);
  double x_max = x_min;
  double y_min = options.y_from_zero ? 0.0 : 1e300;
  double y_max = -1e300;
  for (const LabeledSeries& s : series) {
    for (const BucketPoint& p : s.points) {
      const double x = static_cast<double>(p.queries_end);
      const double y = FieldValue(p, field);
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (x_max == x_min) x_max = x_min + 1;
  if (y_max <= y_min) y_max = y_min + 1;
  y_max *= 1.05;  // headroom so the top line is not clipped

  // Layout.
  const double W = options.width_px;
  const double H = options.height_px;
  const double ml = 70, mr = 160, mt = 40, mb = 55;  // margins (legend right)
  const double plot_w = W - ml - mr;
  const double plot_h = H - mt - mb;
  const auto sx = [&](double x) { return ml + (x - x_min) / (x_max - x_min) * plot_w; };
  const auto sy = [&](double y) {
    return mt + plot_h - (y - y_min) / (y_max - y_min) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << W << "\" height=\""
      << H << "\" viewBox=\"0 0 " << W << " " << H << "\">\n";
  svg << "<rect width=\"" << W << "\" height=\"" << H << "\" fill=\"white\"/>\n";
  svg << "<text x=\"" << W / 2 << "\" y=\"22\" text-anchor=\"middle\" "
      << "font-family=\"sans-serif\" font-size=\"15\" font-weight=\"bold\">"
      << EscapeXml(title) << "</text>\n";

  // Gridlines + y ticks.
  const double y_step = NiceStep(y_max - y_min, 6);
  for (double y = std::ceil(y_min / y_step) * y_step; y <= y_max; y += y_step) {
    svg << "<line x1=\"" << ml << "\" y1=\"" << Num(sy(y)) << "\" x2=\"" << ml + plot_w
        << "\" y2=\"" << Num(sy(y)) << "\" stroke=\"#dddddd\" stroke-width=\"1\"/>\n";
    svg << "<text x=\"" << ml - 8 << "\" y=\"" << Num(sy(y) + 4)
        << "\" text-anchor=\"end\" font-family=\"sans-serif\" font-size=\"11\">"
        << Num(y) << "</text>\n";
  }
  // X ticks.
  const double x_step = NiceStep(x_max - x_min, 8);
  for (double x = std::ceil(x_min / x_step) * x_step; x <= x_max + 1e-9; x += x_step) {
    svg << "<line x1=\"" << Num(sx(x)) << "\" y1=\"" << mt + plot_h << "\" x2=\""
        << Num(sx(x)) << "\" y2=\"" << mt + plot_h + 5
        << "\" stroke=\"#444444\" stroke-width=\"1\"/>\n";
    svg << "<text x=\"" << Num(sx(x)) << "\" y=\"" << mt + plot_h + 18
        << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"11\">"
        << Num(x) << "</text>\n";
  }

  // Axes.
  svg << "<line x1=\"" << ml << "\" y1=\"" << mt << "\" x2=\"" << ml << "\" y2=\""
      << mt + plot_h << "\" stroke=\"#444444\" stroke-width=\"1.5\"/>\n";
  svg << "<line x1=\"" << ml << "\" y1=\"" << mt + plot_h << "\" x2=\"" << ml + plot_w
      << "\" y2=\"" << mt + plot_h << "\" stroke=\"#444444\" stroke-width=\"1.5\"/>\n";
  svg << "<text x=\"" << ml + plot_w / 2 << "\" y=\"" << H - 14
      << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"12\">"
      << EscapeXml(options.x_label) << "</text>\n";
  if (!options.y_label.empty()) {
    svg << "<text x=\"18\" y=\"" << mt + plot_h / 2
        << "\" text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\"12\" "
        << "transform=\"rotate(-90 18 " << mt + plot_h / 2 << ")\">"
        << EscapeXml(options.y_label) << "</text>\n";
  }

  // Series.
  for (size_t i = 0; i < series.size(); ++i) {
    const char* color = kPalette[i % (sizeof(kPalette) / sizeof(kPalette[0]))];
    svg << "<polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"2\" points=\"";
    for (const BucketPoint& p : series[i].points) {
      svg << Num(sx(static_cast<double>(p.queries_end))) << ","
          << Num(sy(FieldValue(p, field))) << " ";
    }
    svg << "\"/>\n";
    for (const BucketPoint& p : series[i].points) {
      svg << "<circle cx=\"" << Num(sx(static_cast<double>(p.queries_end)))
          << "\" cy=\"" << Num(sy(FieldValue(p, field))) << "\" r=\"3\" fill=\""
          << color << "\"/>\n";
    }
    // Legend entry.
    const double ly = mt + 14 + 20 * static_cast<double>(i);
    svg << "<line x1=\"" << ml + plot_w + 12 << "\" y1=\"" << ly << "\" x2=\""
        << ml + plot_w + 36 << "\" y2=\"" << ly << "\" stroke=\"" << color
        << "\" stroke-width=\"2.5\"/>\n";
    svg << "<text x=\"" << ml + plot_w + 42 << "\" y=\"" << ly + 4
        << "\" font-family=\"sans-serif\" font-size=\"12\">"
        << EscapeXml(series[i].label) << "</text>\n";
  }

  svg << "</svg>\n";
  return svg.str();
}

Status WriteSvgChart(const std::vector<LabeledSeries>& series, Field field,
                     const std::string& title, const SvgChartOptions& options,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out << RenderSvgChart(series, field, title, options);
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace locaware::metrics
