// Per-query and aggregate measurement, mirroring the paper's three metrics
// (§5.1): download distance, search traffic, success rate — plus the
// secondary quantities the prose discusses (locality match rate, cache hit
// share, Bloom maintenance bandwidth).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/sim_time.h"

namespace locaware::metrics {

/// How a successful query was ultimately answered.
enum class AnswerSource {
  kNone = 0,       ///< query failed
  kLocalStore,     ///< requester already shared a matching file
  kLocalIndex,     ///< requester's own response index had providers
  kFileStore,      ///< a remote peer's shared-file store
  kResponseIndex,  ///< a remote peer's cached index
};

/// Everything recorded about one query's lifetime.
struct QueryRecord {
  QueryId qid = 0;
  PeerId requester = kInvalidPeer;
  sim::SimTime submitted_at = 0;

  uint64_t query_msgs = 0;     ///< forwarded query copies (incl. duplicates)
  uint64_t response_msgs = 0;  ///< response relay hops
  uint64_t probe_msgs = 0;     ///< RTT probe + reply messages

  uint64_t query_bytes = 0;     ///< wire bytes of the query copies
  uint64_t response_bytes = 0;  ///< wire bytes of the response relays
  uint64_t probe_bytes = 0;     ///< wire bytes of the probe exchanges

  uint32_t responses_received = 0;
  uint32_t providers_offered = 0;  ///< distinct providers across all responses

  bool success = false;
  AnswerSource source = AnswerSource::kNone;
  double download_distance_ms = 0.0;  ///< RTT requester→chosen provider
  bool provider_loc_match = false;    ///< chosen provider shares requester's locId
  sim::SimTime first_response_at = 0;  ///< 0 when no response arrived
  uint32_t first_response_hops = 0;    ///< overlay hops the first response traveled

  /// Popularity rank of the queried file (0 = hottest; Zipf head). Lets the
  /// analysis split metrics by popularity decile.
  uint32_t target_rank = 0;

  /// Search messages for this query (the paper's Fig. 3 quantity).
  uint64_t TotalSearchMessages() const { return query_msgs + response_msgs + probe_msgs; }

  /// Search bytes for this query (Gnutella 0.4-style framing estimates).
  uint64_t TotalSearchBytes() const { return query_bytes + response_bytes + probe_bytes; }
};

/// \brief Accumulates QueryRecords plus network-maintenance counters.
///
/// The engine owns one collector per run. Records are appended in submission
/// order, which is the x-axis ("number of queries") of every figure.
class MetricsCollector {
 public:
  /// Starts tracking a query; returns its record slot index.
  size_t BeginQuery(QueryId qid, PeerId requester, sim::SimTime now);

  /// Merges per-shard collectors into one run-level collector. Every part
  /// must hold the same slots (the sharded engine pre-registers the full
  /// workload in each shard). `origin_shard[slot]` names the part owning the
  /// non-additive fields of that slot (success, source, first-response data —
  /// written only by the requester's shard); the message/byte counters, which
  /// any forwarding shard increments on its own copy, are summed across the
  /// remaining parts. Maintenance counters are summed from every part. The
  /// result is byte-identical to what a sequential run records directly.
  static MetricsCollector MergeShards(const std::vector<const MetricsCollector*>& parts,
                                      const std::vector<uint32_t>& origin_shard);

  /// Mutable access while a query is in flight.
  QueryRecord* Record(size_t slot);

  const std::vector<QueryRecord>& records() const { return records_; }

  // --- maintenance traffic (not charged to any single query) ---
  void AddBloomUpdate(uint64_t messages, uint64_t bytes) {
    bloom_update_msgs_ += messages;
    bloom_update_bytes_ += bytes;
  }
  uint64_t bloom_update_msgs() const { return bloom_update_msgs_; }
  uint64_t bloom_update_bytes() const { return bloom_update_bytes_; }

  void AddChurnEvent() { ++churn_events_; }
  uint64_t churn_events() const { return churn_events_; }

  /// Queries that received a response but whose every offered provider was
  /// offline at download time (stale index under churn).
  void AddStaleFailure() { ++stale_failures_; }
  uint64_t stale_failures() const { return stale_failures_; }

  /// Offered providers that had already departed by selection time — each one
  /// is a "hit on a departed provider", the staleness the index carried.
  void AddStaleProviderHit() { ++stale_provider_hits_; }
  uint64_t stale_provider_hits() const { return stale_provider_hits_; }

  /// Link-repair handshake traffic (LinkDrop/LinkProbe/LinkAccept), the
  /// maintenance cost of keeping the overlay wired under churn.
  void AddRepairTraffic(uint64_t messages, uint64_t bytes) {
    repair_msgs_ += messages;
    repair_bytes_ += bytes;
  }
  uint64_t repair_msgs() const { return repair_msgs_; }
  uint64_t repair_bytes() const { return repair_bytes_; }

  // --- Chord DHT counters (kDht/kHybrid only; all-zero otherwise) ---
  /// One query-driven iterative lookup started.
  void AddDhtLookup() { ++dht_lookups_; }
  uint64_t dht_lookups() const { return dht_lookups_; }

  /// Request messages a completed query-driven lookup sent (route steps +
  /// the final provider fetch); the mean hops metric is hops/lookups.
  void AddDhtHops(uint64_t hops) { dht_hops_ += hops; }
  uint64_t dht_hops() const { return dht_hops_; }

  /// Publish-path traffic: store-routing requests/replies plus the final
  /// DhtStore installs (maintenance cost of the structured index).
  void AddDhtStoreTraffic(uint64_t messages, uint64_t bytes) {
    dht_store_msgs_ += messages;
    dht_store_bytes_ += bytes;
  }
  uint64_t dht_store_msgs() const { return dht_store_msgs_; }
  uint64_t dht_store_bytes() const { return dht_store_bytes_; }

  /// Hybrid-protocol queries that missed the cache path and escalated to the
  /// DHT.
  void AddHybridEscalation() { ++hybrid_escalations_; }
  uint64_t hybrid_escalations() const { return hybrid_escalations_; }

  /// Parallel-scheduler counters the engine copies in after a run: windows
  /// and steals are deterministic functions of (config, seed, shards,
  /// workers); idle_ns is wall-clock. All are execution-shape diagnostics —
  /// reported in summary tables and bench JSON, never in the byte-compared
  /// metric JSON (a 1-shard run has no windows at all).
  void SetSchedulerStats(uint64_t windows, uint64_t steals, uint64_t idle_ns) {
    scheduler_windows_ = windows;
    scheduler_steals_ = steals;
    scheduler_idle_ns_ = idle_ns;
  }
  uint64_t scheduler_windows() const { return scheduler_windows_; }
  uint64_t scheduler_steals() const { return scheduler_steals_; }
  uint64_t scheduler_idle_ns() const { return scheduler_idle_ns_; }

 private:
  std::vector<QueryRecord> records_;
  uint64_t bloom_update_msgs_ = 0;
  uint64_t bloom_update_bytes_ = 0;
  uint64_t churn_events_ = 0;
  uint64_t stale_failures_ = 0;
  uint64_t stale_provider_hits_ = 0;
  uint64_t repair_msgs_ = 0;
  uint64_t repair_bytes_ = 0;
  uint64_t dht_lookups_ = 0;
  uint64_t dht_hops_ = 0;
  uint64_t dht_store_msgs_ = 0;
  uint64_t dht_store_bytes_ = 0;
  uint64_t hybrid_escalations_ = 0;
  uint64_t scheduler_windows_ = 0;
  uint64_t scheduler_steals_ = 0;
  uint64_t scheduler_idle_ns_ = 0;
};

}  // namespace locaware::metrics
