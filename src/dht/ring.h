// Chord-style 64-bit identifier ring (PR 10).
//
// The ring is keyed off the catalog's precomputed hashes, never strings: a
// keyword's ring position is a bit-mix of `FileCatalog::KeywordFnv`, and a
// peer's position is a bit-mix of its PeerId. Mix64 is a bijection on
// uint64_t, so distinct peers always land on distinct ring points — no
// collision handling, no rehash, no per-lookup string work.
//
// The `Ring` class is the simulation's *bootstrap directory*: the sorted
// (ring id, peer) order over the whole population, built once at engine
// setup and immutable for the run. Like `overlay::ChurnTimeline`, it is
// readable from any shard at any time; which members are *online* at a given
// instant is a predicate the caller supplies (the engine passes
// `ChurnTimeline::IsOnlineAt`). Per-peer routing state derived from it lives
// in dht/routing.h and is only ever mutated by its owner shard.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/types.h"

namespace locaware::dht {

/// A position on the 2^64 identifier circle.
using RingId = uint64_t;

/// Peer -> ring position. Mix64 is bijective, so the map is collision-free;
/// the salt decorrelates ring order from PeerId order (consecutive ids
/// scatter uniformly instead of clustering).
inline RingId RingIdOfPeer(PeerId p) {
  constexpr uint64_t kPeerSalt = 0xd1c4'0c1e'ab1e'5a1dULL;
  return Mix64(kPeerSalt ^ (static_cast<uint64_t>(p) + 1));
}

/// Keyword-FNV -> ring position. The input is the catalog's precomputed
/// 64-bit FNV-1a of the keyword string (`FileCatalog::KeywordFnv`); the
/// finalizer spreads FNV's weaker low bits over the whole circle.
inline RingId RingIdOfKey(uint64_t keyword_fnv) { return Mix64(keyword_fnv); }

/// True iff `x` lies in the half-open ring interval (a, b], walking
/// clockwise from `a`. An empty span (a == b) denotes the *full* circle (the
/// single-node ring owns every key), matching Chord's convention.
inline bool InInterval(RingId x, RingId a, RingId b) {
  if (a == b) return true;
  if (a < b) return a < x && x <= b;
  return x > a || x <= b;  // wrapped interval
}

/// The i-th finger target of ring position `n`: n + 2^i (mod 2^64).
inline RingId FingerTarget(RingId n, uint32_t i) {
  LOCAWARE_CHECK_LT(i, 64u);
  return n + (static_cast<RingId>(1) << i);
}

/// Clockwise distance from `from` to `to` (how far a key must travel).
/// Unsigned subtraction handles the wrap.
inline RingId RingDistance(RingId from, RingId to) { return to - from; }

/// \brief The immutable, population-wide ring order.
///
/// Built once at setup from the peer count alone; O(log n) successor queries
/// filter by an online predicate so the same structure serves the static
/// setup path, churn stabilization, and the tests' ground-truth oracle.
class Ring {
 public:
  static Ring Build(size_t num_peers) {
    Ring ring;
    ring.order_.reserve(num_peers);
    for (PeerId p = 0; p < num_peers; ++p) ring.order_.emplace_back(RingIdOfPeer(p), p);
    std::sort(ring.order_.begin(), ring.order_.end());
    return ring;
  }

  size_t size() const { return order_.size(); }
  RingId IdAt(size_t i) const { return order_[i].first; }
  PeerId PeerAt(size_t i) const { return order_[i].second; }

  /// Index of the first member at or clockwise-after `id` (wraps to 0 when
  /// `id` is past the largest member).
  size_t IndexOfFirstAtOrAfter(RingId id) const {
    const auto it = std::lower_bound(
        order_.begin(), order_.end(), id,
        [](const std::pair<RingId, PeerId>& e, RingId v) { return e.first < v; });
    return it == order_.end() ? 0 : static_cast<size_t>(it - order_.begin());
  }

  /// The owner of `key` among members satisfying `online`: the first online
  /// member at or after `key`, walking clockwise. kInvalidPeer if no member
  /// is online.
  template <typename OnlinePred>
  PeerId SuccessorOf(RingId key, OnlinePred&& online) const {
    const size_t n = order_.size();
    if (n == 0) return kInvalidPeer;
    size_t i = IndexOfFirstAtOrAfter(key);
    for (size_t step = 0; step < n; ++step, i = (i + 1 == n) ? 0 : i + 1) {
      if (online(order_[i].second)) return order_[i].second;
    }
    return kInvalidPeer;
  }

 private:
  std::vector<std::pair<RingId, PeerId>> order_;  // ascending by ring id
};

}  // namespace locaware::dht
