// Per-peer Chord routing state and the pure table/next-hop logic (PR 10).
//
// Everything here is node-local: a RoutingState is owned by exactly one peer
// and only mutated from that peer's shard, like every other NodeState member.
// The two free functions are deliberately engine-free so the unit tests can
// drive lookups against in-memory tables and check them against the ring's
// ground-truth successor:
//
//   * ComputeTables — (re)derive successor list + finger table from the
//     immutable Ring filtered by an online predicate. Called at setup (all
//     peers online), on every maintenance tick under churn, and on rejoin —
//     the PR 3 idiom of reading the churn timeline as a bootstrap directory
//     instead of mutating remote peers.
//   * NextHop — one step of the iterative find_successor: either "done, the
//     owner is X" or "ask Y next". The closest-preceding scan over the
//     finger FlatMap is an order-insensitive max over ring distance, which
//     is the one case raw table-order iteration is legal (see
//     common/flat_map.h); every other walk in the subsystem collects and
//     sorts first.
//
// Tables are arena-bound flat containers: the engine binds each peer's
// FlatMaps/SmallVectors to its shard's arena at setup, so steady-state
// stabilization and store churn never touch the global heap.
#pragma once

#include <cstdint>
#include <limits>

#include "common/arena.h"
#include "common/flat_map.h"
#include "common/small_vector.h"
#include "common/types.h"
#include "dht/ring.h"
#include "sim/sim_time.h"

namespace locaware::dht {

/// `last_publish` sentinel: the peer has never published this session, so
/// the next maintenance tick publishes immediately.
inline constexpr sim::SimTime kNeverPublished = std::numeric_limits<sim::SimTime>::min();

/// One provider record held by the owner of a keyword's ring key.
struct StoredProvider {
  FileId file = kInvalidFile;
  PeerId provider = kInvalidPeer;
  LocId loc_id = 0;
  sim::SimTime expires_at = 0;
};

/// Per-keyword provider list, insertion-ordered (node-local event order, so
/// deterministic). Inline 4 covers the catalog's ~1 file/keyword shape.
using StoreList = SmallVector<StoredProvider, 4>;

/// An in-flight iterative lookup driven by its initiator.
struct LookupState {
  enum class Purpose : uint8_t {
    kQuery,  ///< resolving providers for a submitted query
    kStore,  ///< routing a publish to the key's owner
  };
  Purpose purpose = Purpose::kQuery;
  QueryId qid = 0;                  ///< meaningful iff purpose == kQuery
  KeywordId kw = kInvalidKeyword;   ///< the keyword being resolved
  FileId file = kInvalidFile;       ///< meaningful iff purpose == kStore
  RingId key = 0;                   ///< ring position of `kw`
  PeerId asked = kInvalidPeer;      ///< node the in-flight request went to
  /// True once the route resolved and the in-flight request is the final
  /// kGetProviders fetch (its reply carries records, not a next hop).
  bool fetching = false;
  uint32_t hops = 0;                ///< request messages sent so far
  sim::SimTime started_at = 0;
};

/// \brief All DHT state owned by one peer.
struct RoutingState {
  /// The next `dht.successors` online peers clockwise from self (self
  /// excluded), nearest first.
  SmallVector<PeerId, 8> successors;
  /// Finger table: finger index i -> successor(self + 2^i). Only fingers
  /// that resolve to a peer other than self (and other than plain succ0's
  /// trivial low indices' duplicates — duplicates are kept; they are cheap
  /// and the scan dedups by distance).
  FlatMap<uint32_t, PeerId> fingers;
  /// The owner-side keyword -> provider-record store.
  FlatMap<KeywordId, StoreList> store;
  /// In-flight lookups this peer initiated, keyed by session id.
  FlatMap<uint64_t, LookupState> lookups;
  /// Node-local session counter; advances in node-local event order, so
  /// session ids are shard-count invariant (same rule as `link_round`).
  uint64_t next_session = 0;
  sim::SimTime last_publish = kNeverPublished;

  void BindArena(common::Arena* arena) {
    successors.set_arena(arena);
    fingers.set_arena(arena);
    store.set_arena(arena);
    lookups.set_arena(arena);
  }

  /// Session death: routing entries, in-flight lookups and the owned store
  /// all die with the session (Chord loses un-replicated records when their
  /// holder leaves; re-publish repopulates the new owner). Arena bindings
  /// survive `clear`.
  void ResetForDeparture() {
    successors.clear();
    fingers.clear();
    store.clear();
    lookups.clear();
    last_publish = kNeverPublished;
  }
};

/// Rebuilds `rt`'s successor list and finger table for `self` from the
/// immutable ring order, keeping only members satisfying `online`. Pure:
/// reads shared immutable data plus the predicate, writes only `rt`.
template <typename OnlinePred>
void ComputeTables(const Ring& ring, PeerId self, size_t num_successors,
                   size_t num_fingers, OnlinePred&& online, RoutingState* rt) {
  const size_t n = ring.size();
  const RingId self_id = RingIdOfPeer(self);
  rt->successors.clear();
  if (n > 1) {
    size_t i = ring.IndexOfFirstAtOrAfter(self_id + 1);
    for (size_t step = 0; step + 1 < n && rt->successors.size() < num_successors;
         ++step, i = (i + 1 == n) ? 0 : i + 1) {
      const PeerId c = ring.PeerAt(i);
      if (c == self) break;  // full circle: nobody else online
      if (online(c)) rt->successors.push_back(c);
    }
  }
  rt->fingers.clear();
  if (rt->successors.empty()) return;  // alone on the ring: no routes needed
  const uint32_t lo = num_fingers >= 64 ? 0 : 64 - static_cast<uint32_t>(num_fingers);
  for (uint32_t i = 63;; --i) {
    const PeerId f = ring.SuccessorOf(FingerTarget(self_id, i), [&](PeerId c) {
      return c != self && online(c);
    });
    if (f != kInvalidPeer) rt->fingers.try_emplace(i, f);
    if (i == lo) break;
  }
}

/// One routing decision of the iterative find_successor(key), taken at the
/// node owning `rt`.
struct HopDecision {
  bool done = false;         ///< true: `next` is the owner of `key`
  PeerId next = kInvalidPeer;  ///< owner (done) or next node to ask; kInvalidPeer
                               ///< with done=true means "self owns the key"
};

inline HopDecision NextHop(const RoutingState& rt, PeerId self, RingId key) {
  if (rt.successors.empty()) return {true, kInvalidPeer};  // alone: self owns all
  const RingId self_id = RingIdOfPeer(self);
  const PeerId succ0 = rt.successors.front();
  if (InInterval(key, self_id, RingIdOfPeer(succ0))) return {true, succ0};
  // Closest preceding node: the known peer that lands farthest clockwise
  // from self while still strictly preceding the key. Max over ring
  // distance — order-insensitive, so raw table iteration is legal here.
  PeerId best = kInvalidPeer;
  RingId best_dist = 0;
  const auto consider = [&](PeerId c) {
    const RingId cid = RingIdOfPeer(c);
    if (cid == key || !InInterval(cid, self_id, key)) return;
    const RingId dist = RingDistance(self_id, cid);
    if (best == kInvalidPeer || dist > best_dist) {
      best = c;
      best_dist = dist;
    }
  };
  for (const auto& slot : rt.fingers) consider(slot.second);
  for (PeerId s : rt.successors) consider(s);
  if (best != kInvalidPeer) return {false, best};
  // Inconsistent tables (repair lag): treat succ0 as the owner rather than
  // loop — the lookup terminates and the record, if misplaced, is healed by
  // the next republish.
  return {true, succ0};
}

}  // namespace locaware::dht
