#include "bloom/bloom_filter.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/hash.h"

namespace locaware::bloom {

BloomFilter::BloomFilter(size_t num_bits, size_t num_hashes)
    : num_bits_(num_bits), num_hashes_(num_hashes) {
  LOCAWARE_CHECK_GT(num_bits, 0u);
  LOCAWARE_CHECK_GE(num_hashes, 1u);
  LOCAWARE_CHECK_LE(num_hashes, 16u);
  words_.assign((num_bits + 63) / 64, 0);
}

std::vector<uint32_t> BloomFilter::ProbePositions(std::string_view key) const {
  return ProbePositions(BloomKeyHash(key));
}

std::vector<uint32_t> BloomFilter::ProbePositions(const KeyHash128& key) const {
  std::vector<uint32_t> positions(num_hashes_);
  for (size_t i = 0; i < num_hashes_; ++i) {
    positions[i] = ProbePosition(key, i);
  }
  return positions;
}

void BloomFilter::Insert(std::string_view key) { Insert(BloomKeyHash(key)); }

void BloomFilter::Insert(const KeyHash128& key) {
  for (size_t i = 0; i < num_hashes_; ++i) {
    SetBit(ProbePosition(key, i));
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  return MayContain(BloomKeyHash(key));
}

bool BloomFilter::MayContain(const KeyHash128& key) const {
  for (size_t i = 0; i < num_hashes_; ++i) {
    if (!TestBit(ProbePosition(key, i))) return false;
  }
  return true;
}

void BloomFilter::Clear() { words_.assign(words_.size(), 0); }

size_t BloomFilter::CountOnes() const {
  size_t ones = 0;
  for (uint64_t w : words_) ones += static_cast<size_t>(std::popcount(w));
  return ones;
}

double BloomFilter::FillRatio() const {
  return static_cast<double>(CountOnes()) / static_cast<double>(num_bits_);
}

double BloomFilter::EstimatedFpRate() const {
  return std::pow(FillRatio(), static_cast<double>(num_hashes_));
}

bool BloomFilter::TestBit(size_t pos) const {
  LOCAWARE_CHECK_LT(pos, num_bits_);
  return (words_[pos / 64] >> (pos % 64)) & 1u;
}

void BloomFilter::SetBit(size_t pos) {
  LOCAWARE_CHECK_LT(pos, num_bits_);
  words_[pos / 64] |= uint64_t{1} << (pos % 64);
}

void BloomFilter::ClearBit(size_t pos) {
  LOCAWARE_CHECK_LT(pos, num_bits_);
  words_[pos / 64] &= ~(uint64_t{1} << (pos % 64));
}

void BloomFilter::ToggleBit(size_t pos) {
  LOCAWARE_CHECK_LT(pos, num_bits_);
  words_[pos / 64] ^= uint64_t{1} << (pos % 64);
}

std::vector<uint32_t> BloomFilter::DiffPositions(const BloomFilter& other) const {
  LOCAWARE_CHECK_EQ(num_bits_, other.num_bits_) << "filter width mismatch";
  std::vector<uint32_t> diff;
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t x = words_[w] ^ other.words_[w];
    while (x != 0) {
      const int bit = std::countr_zero(x);
      diff.push_back(static_cast<uint32_t>(w * 64 + bit));
      x &= x - 1;
    }
  }
  return diff;
}

std::string BloomFilter::Describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "m=%zu k=%zu ones=%zu fill=%.1f%%", num_bits_,
                num_hashes_, CountOnes(), FillRatio() * 100.0);
  return buf;
}

size_t OptimalNumHashes(size_t num_bits, size_t expected_keys) {
  LOCAWARE_CHECK_GT(expected_keys, 0u);
  const double k =
      std::round(static_cast<double>(num_bits) / static_cast<double>(expected_keys) *
                 std::log(2.0));
  if (k < 1) return 1;
  if (k > 16) return 16;
  return static_cast<size_t>(k);
}

}  // namespace locaware::bloom
