#include "bloom/counting_bloom.h"

#include "common/check.h"

namespace locaware::bloom {

CountingBloomFilter::CountingBloomFilter(size_t num_bits, size_t num_hashes)
    : counters_(num_bits, 0), plain_(num_bits, num_hashes) {}

void CountingBloomFilter::Insert(std::string_view key) { Insert(BloomKeyHash(key)); }

void CountingBloomFilter::Insert(const KeyHash128& key) {
  for (size_t i = 0; i < plain_.num_hashes(); ++i) {
    const uint32_t pos = plain_.ProbePosition(key, i);
    uint8_t& c = counters_[pos];
    if (c < kMaxCount) ++c;
    plain_.SetBit(pos);
  }
}

void CountingBloomFilter::Remove(std::string_view key) { Remove(BloomKeyHash(key)); }

void CountingBloomFilter::Remove(const KeyHash128& key) {
  for (size_t i = 0; i < plain_.num_hashes(); ++i) {
    const uint32_t pos = plain_.ProbePosition(key, i);
    uint8_t& c = counters_[pos];
    LOCAWARE_CHECK_GT(c, 0u) << "Remove of never-inserted key (counter underflow)";
    if (c < kMaxCount) {  // saturated counters stay pinned
      --c;
      if (c == 0) plain_.ClearBit(pos);
    }
  }
}

bool CountingBloomFilter::MayContain(std::string_view key) const {
  return plain_.MayContain(key);
}

bool CountingBloomFilter::MayContain(const KeyHash128& key) const {
  return plain_.MayContain(key);
}

void CountingBloomFilter::Clear() {
  counters_.assign(counters_.size(), 0);
  plain_.Clear();
}

uint8_t CountingBloomFilter::CounterAt(size_t pos) const {
  LOCAWARE_CHECK_LT(pos, counters_.size());
  return counters_[pos];
}

size_t CountingBloomFilter::SaturatedCount() const {
  size_t n = 0;
  for (uint8_t c : counters_) n += (c == kMaxCount);
  return n;
}

}  // namespace locaware::bloom
