#include "bloom/bloom_delta.h"

#include <bit>

#include "common/check.h"

namespace locaware::bloom {

BloomDelta ComputeDelta(const BloomFilter& before, const BloomFilter& after) {
  BloomDelta delta;
  delta.filter_bits = static_cast<uint32_t>(before.num_bits());
  delta.positions = before.DiffPositions(after);
  return delta;
}

Status ApplyDelta(const BloomDelta& delta, BloomFilter* filter) {
  return ApplyDelta(delta.filter_bits, delta.positions, filter);
}

Status ApplyDelta(uint32_t filter_bits, std::span<const uint32_t> positions,
                  BloomFilter* filter) {
  if (filter_bits != filter->num_bits()) {
    return Status::InvalidArgument("delta filter width mismatch");
  }
  for (uint32_t pos : positions) {
    if (pos >= filter->num_bits()) {
      return Status::InvalidArgument("delta position out of range");
    }
  }
  for (uint32_t pos : positions) filter->ToggleBit(pos);
  return Status::OK();
}

size_t PositionBits(size_t filter_bits) {
  LOCAWARE_CHECK_GT(filter_bits, 0u);
  return static_cast<size_t>(std::bit_width(filter_bits - 1));
}

size_t WireSizeBits(const BloomDelta& delta) {
  return WireSizeBits(delta.filter_bits, delta.positions.size());
}

size_t WireSizeBits(size_t filter_bits, size_t num_positions) {
  return 16 + num_positions * PositionBits(filter_bits);
}

std::vector<uint8_t> EncodeDelta(const BloomDelta& delta) {
  LOCAWARE_CHECK_LE(delta.positions.size(), 0xFFFFu);
  const size_t pos_bits = PositionBits(delta.filter_bits);
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(delta.positions.size() & 0xFF));
  out.push_back(static_cast<uint8_t>(delta.positions.size() >> 8));
  // Bit-pack positions LSB-first.
  uint64_t acc = 0;
  size_t acc_bits = 0;
  for (uint32_t pos : delta.positions) {
    acc |= static_cast<uint64_t>(pos) << acc_bits;
    acc_bits += pos_bits;
    while (acc_bits >= 8) {
      out.push_back(static_cast<uint8_t>(acc & 0xFF));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) out.push_back(static_cast<uint8_t>(acc & 0xFF));
  return out;
}

Result<BloomDelta> DecodeDelta(const std::vector<uint8_t>& bytes, size_t filter_bits) {
  if (bytes.size() < 2) {
    return Status::InvalidArgument("delta shorter than its header");
  }
  const size_t count = bytes[0] | (static_cast<size_t>(bytes[1]) << 8);
  const size_t pos_bits = PositionBits(filter_bits);
  const size_t need_bits = count * pos_bits;
  const size_t have_bits = (bytes.size() - 2) * 8;
  if (have_bits < need_bits) {
    return Status::InvalidArgument("delta payload truncated");
  }

  BloomDelta delta;
  delta.filter_bits = static_cast<uint32_t>(filter_bits);
  delta.positions.reserve(count);
  uint64_t acc = 0;
  size_t acc_bits = 0;
  size_t next_byte = 2;
  const uint64_t mask = (uint64_t{1} << pos_bits) - 1;
  for (size_t i = 0; i < count; ++i) {
    while (acc_bits < pos_bits) {
      acc |= static_cast<uint64_t>(bytes[next_byte++]) << acc_bits;
      acc_bits += 8;
    }
    const uint32_t pos = static_cast<uint32_t>(acc & mask);
    if (pos >= filter_bits) {
      return Status::InvalidArgument("decoded position out of range");
    }
    delta.positions.push_back(pos);
    acc >>= pos_bits;
    acc_bits -= pos_bits;
  }
  return delta;
}

}  // namespace locaware::bloom
