// Counting Bloom filter (Fan et al., "Summary Cache", SIGCOMM 1998 — the
// paper's reference [8]). A plain Bloom filter cannot delete, but Locaware's
// response index evicts filenames constantly ("built incrementally as new
// filenames are inserted in RI and existing ones discarded", §4.2). Each peer
// therefore keeps a *counting* filter locally and exports its plain projection
// (counter > 0 → bit set) for neighbors.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"

namespace locaware::bloom {

/// \brief Bloom filter with 4-bit counters supporting deletion.
///
/// Counters saturate at 15 (and once saturated are never decremented, the
/// standard safety rule: a saturated counter may be shared by more keys than
/// it can count, so decrementing could introduce false negatives).
class CountingBloomFilter {
 public:
  /// Same shape parameters as the plain filter it projects to.
  CountingBloomFilter(size_t num_bits, size_t num_hashes);

  /// Increments the key's counters.
  void Insert(std::string_view key);
  void Insert(const KeyHash128& key);

  /// Decrements the key's counters. Removing a key that was never inserted is
  /// a caller bug; it is CHECK-detected when a counter would underflow.
  void Remove(std::string_view key);
  void Remove(const KeyHash128& key);

  /// Membership test (same semantics as BloomFilter::MayContain).
  bool MayContain(std::string_view key) const;
  bool MayContain(const KeyHash128& key) const;

  void Clear();

  size_t num_bits() const { return plain_.num_bits(); }
  size_t num_hashes() const { return plain_.num_hashes(); }
  uint8_t CounterAt(size_t pos) const;
  /// Number of saturated (=15) counters; a quality signal for sizing.
  size_t SaturatedCount() const;

  /// The plain 1-bit projection that is gossiped to neighbors. Maintained
  /// incrementally, so this is O(1).
  const BloomFilter& projection() const { return plain_; }

 private:
  static constexpr uint8_t kMaxCount = 15;

  std::vector<uint8_t> counters_;  // one nibble used per counter, byte-stored
  BloomFilter plain_;
};

}  // namespace locaware::bloom
