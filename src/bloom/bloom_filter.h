// Plain Bloom filter (Bloom 1970), the structure each Locaware peer gossips
// to its neighbors to summarize the keywords of its cached filenames
// (paper §4.2). Membership answers have no false negatives; false positives
// cost only a wasted query forward.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace locaware::bloom {

/// \brief Fixed-size Bloom filter over byte strings.
///
/// Uses Kirsch–Mitzenmacher double hashing: the i-th probe position is
/// (h1 + i*h2) mod m with (h1, h2) the two halves of one 128-bit Murmur3
/// pass — k index computations from a single hash of the key.
class BloomFilter {
 public:
  /// \param num_bits   filter width m (> 0). The paper uses 1200 bits.
  /// \param num_hashes probe count k (1..16). k = 4 ≈ optimal for the
  ///                    paper's ~150 keywords in 1200 bits (m/n ≈ 8 → k ≈ 5.5;
  ///                    4 keeps updates sparse).
  BloomFilter(size_t num_bits, size_t num_hashes);

  /// Inserts a key.
  void Insert(std::string_view key);

  /// Inserts a key by its precomputed hash (the id-plane fast path; see
  /// BloomKeyHash for the equivalence with the string overload).
  void Insert(const KeyHash128& key);

  /// Membership test: false means definitely absent; true means present with
  /// probability 1 − fp-rate.
  bool MayContain(std::string_view key) const;

  /// Membership test on a precomputed hash.
  bool MayContain(const KeyHash128& key) const;

  /// Zeroes the filter.
  void Clear();

  size_t num_bits() const { return num_bits_; }
  size_t num_hashes() const { return num_hashes_; }

  /// Number of set bits.
  size_t CountOnes() const;
  /// Fraction of set bits in [0, 1].
  double FillRatio() const;
  /// (fill_ratio)^k — the classic false-positive estimate at the current fill.
  double EstimatedFpRate() const;

  // --- bit-level access (delta propagation, tests) ---
  bool TestBit(size_t pos) const;
  void SetBit(size_t pos);
  void ClearBit(size_t pos);
  void ToggleBit(size_t pos);

  /// Positions where this filter and `other` differ. CHECK-fails on shape
  /// mismatch. This is the payload of an incremental neighbor update.
  std::vector<uint32_t> DiffPositions(const BloomFilter& other) const;

  /// The i-th probe position for a key — the single definition of the
  /// Kirsch–Mitzenmacher indexing rule; every insert/lookup path (plain and
  /// counting) goes through it so the bit and counter layouts can never
  /// diverge.
  uint32_t ProbePosition(const KeyHash128& key, size_t i) const {
    return static_cast<uint32_t>((key.h1 + i * key.h2) % num_bits_);
  }

  /// The k probe positions for a key (exposed so CountingBloomFilter and the
  /// tests use identical indexing).
  std::vector<uint32_t> ProbePositions(std::string_view key) const;
  std::vector<uint32_t> ProbePositions(const KeyHash128& key) const;

  bool operator==(const BloomFilter& other) const = default;

  /// Debug rendering "m=1200 k=4 ones=87 fill=7.3%".
  std::string Describe() const;

 private:
  size_t num_bits_;
  size_t num_hashes_;
  std::vector<uint64_t> words_;
};

/// Optimal k for a filter of m bits expected to hold n keys: round(m/n · ln 2).
size_t OptimalNumHashes(size_t num_bits, size_t expected_keys);

}  // namespace locaware::bloom
