// Incremental Bloom-filter updates.
//
// Paper §4.2 (footnote 1): when a filename is added or removed, only a few
// bits of the 1200-bit vector change, so a peer transmits just the *positions*
// of changed bits — each position costs ceil(log2(m)) = 11 bits, and one
// filename touches at most k·keywords ≈ 12 bits, i.e. ≤ 0.132 Kb per update.
// This module implements that wire format and its bandwidth accounting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/status.h"

namespace locaware::bloom {

/// \brief A delta between two same-shape Bloom filters: the positions whose
/// bits must be toggled to turn `before` into `after`.
struct BloomDelta {
  uint32_t filter_bits = 0;           ///< m, so receivers can sanity-check
  std::vector<uint32_t> positions;    ///< toggled bit positions, ascending

  bool empty() const { return positions.empty(); }
};

/// Computes the delta turning `before` into `after`. CHECK-fails on shape
/// mismatch.
BloomDelta ComputeDelta(const BloomFilter& before, const BloomFilter& after);

/// Applies a delta in place. Fails with InvalidArgument if the delta's shape
/// does not match `filter` or a position is out of range (a corrupt message
/// must not crash a peer).
Status ApplyDelta(const BloomDelta& delta, BloomFilter* filter);

/// Span form of ApplyDelta, for callers whose positions arrive in a
/// message-owned container (BloomUpdateMessage::toggled_positions) — same
/// semantics, no intermediate BloomDelta copy.
Status ApplyDelta(uint32_t filter_bits, std::span<const uint32_t> positions,
                  BloomFilter* filter);

/// Bits needed to encode one position for an m-bit filter: ceil(log2(m)).
size_t PositionBits(size_t filter_bits);

/// Wire size of a delta in bits: 16-bit count header + count * PositionBits.
/// This is the quantity charged to the bandwidth metric.
size_t WireSizeBits(const BloomDelta& delta);

/// Count form of WireSizeBits, for callers that have the position count but
/// no BloomDelta in hand (message size accounting).
size_t WireSizeBits(size_t filter_bits, size_t num_positions);

/// Packs a delta into bytes (count:uint16 LE, then bit-packed positions).
std::vector<uint8_t> EncodeDelta(const BloomDelta& delta);

/// Unpacks EncodeDelta output. Fails with InvalidArgument on truncated or
/// malformed input.
Result<BloomDelta> DecodeDelta(const std::vector<uint8_t>& bytes, size_t filter_bits);

}  // namespace locaware::bloom
