// The physical ("underlay") network beneath the P2P overlay.
//
// The paper generates "an underlying topology of peers connected with links of
// variable latencies; the model inspired by BRITE assigns latencies between 10
// and 500 ms" (§5.1). We reproduce BRITE's Waxman mode: routers are placed on
// a unit plane, edges appear with probability α·exp(−d/(β·L)), link latency is
// proportional to Euclidean length, and peers hang off routers via short
// access links. Peer-to-peer RTT is twice the one-way shortest-path latency.
//
// The plane geometry matters: it is what makes landmark-RTT orderings
// (locIds) spatially coherent, the property Locaware's provider selection
// exploits. A geometry-free alternative (UniformUnderlay) is provided for the
// ablation that shows the locId mechanism needs coherent distances.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "net/point.h"

namespace locaware::net {

/// \brief Abstract physical network: pairwise peer RTTs plus RTTs from peers
/// to a small set of landmark hosts.
class Underlay {
 public:
  virtual ~Underlay() = default;

  virtual size_t num_peers() const = 0;
  virtual size_t num_landmarks() const = 0;

  /// Round-trip time between two peers in milliseconds. Symmetric;
  /// RttMs(a, a) is the loopback cost (0 for all current implementations).
  virtual double RttMs(PeerId a, PeerId b) const = 0;

  /// Round-trip time from a peer to a landmark host in milliseconds.
  virtual double LandmarkRttMs(PeerId peer, size_t landmark) const = 0;

  /// Lower bound (> 0) on RttMs(a, b) over all DISTINCT peer pairs, or 0 when
  /// the implementation cannot bound it. The sharded engine's scalar fallback
  /// lookahead comes from this: every cross-shard delivery takes at least
  /// MinPairRttMs()/2 one-way, so no shard ever needs to wait on a remote
  /// event closer than that. Implementations may return any valid lower
  /// bound; tighter bounds mean wider windows and fewer barriers.
  virtual double MinPairRttMs() const { return 0.0; }

  // --- locality structure for per-shard-pair lookahead bounds ---------------
  //
  // The topology-aware scheduler wants a tighter statement than "some pair of
  // peers is close": a lower bound on the RTT between peers of two specific
  // *locations* (latency classes — routers for the geometric model). The
  // engine digests each shard's peer set into its location set and takes the
  // min of PairRttLowerBoundMs over the cross product, so two shards whose
  // peers are all far apart get a deep lookahead even when the global
  // MinPairRttMs is tiny. Implementations without locality keep the defaults
  // (one location, global-min bound) and lose nothing.

  /// Number of distinct latency locations ( > 0). Location ids are
  /// [0, num_locations()).
  virtual size_t num_locations() const { return 1; }

  /// Latency location of a peer. Immutable over the underlay's lifetime.
  virtual size_t LocationOf(PeerId /*peer*/) const { return 0; }

  /// Lower bound (> 0 when MinPairRttMs() is) on RttMs(a, b) over all
  /// DISTINCT peer pairs with LocationOf(a) == loc_a and LocationOf(b) ==
  /// loc_b. Must never exceed the true minimum for any such pair; the global
  /// min is always a valid (if loose) answer, and the default.
  virtual double PairRttLowerBoundMs(size_t /*loc_a*/, size_t /*loc_b*/) const {
    return MinPairRttMs();
  }

  /// One-line description for reports.
  virtual std::string Describe() const = 0;
};

/// How router-level edges are generated — BRITE's two standard models.
enum class RouterGraphModel {
  /// Waxman 1988: P(edge u,v) = α·exp(−d/(β·L)). Geometric, flat degrees.
  kWaxman,
  /// Barabási–Albert 1999: incremental preferential attachment. Heavy-tailed
  /// degrees (transit hubs), still embedded in the plane for latencies.
  kBarabasiAlbert,
};

const char* RouterGraphModelName(RouterGraphModel model);

/// Parameters for the BRITE-inspired geometric underlay.
struct GeometricUnderlayConfig {
  /// Router-level graph size. 200 routers for 1000 peers gives ~5 peers per
  /// access router, a common transit-stub shape.
  size_t num_routers = 200;
  size_t num_peers = 1000;
  size_t num_landmarks = 4;

  RouterGraphModel model = RouterGraphModel::kWaxman;

  /// Waxman parameters: P(edge u,v) = waxman_alpha * exp(-d(u,v)/(waxman_beta * L))
  /// with L the plane diagonal. Defaults give mean router degree ≈ 6 at 200
  /// routers; the builder patches any disconnection with shortest bridges.
  double waxman_alpha = 0.15;
  double waxman_beta = 0.18;

  /// Barabási–Albert: edges each arriving router attaches preferentially.
  size_t ba_links_per_router = 2;

  /// Target peer-to-peer RTT band in milliseconds (paper: 10–500 ms).
  double min_rtt_ms = 10.0;
  double max_rtt_ms = 500.0;

  /// Access-link one-way latency band (peer to its router).
  double access_min_ms = 1.0;
  double access_max_ms = 5.0;
};

/// \brief Waxman router graph with distance-proportional latencies.
///
/// Build via GeometricUnderlay::Build. Router-level all-pairs shortest paths
/// are precomputed, so RttMs is O(1).
class GeometricUnderlay final : public Underlay {
 public:
  /// Constructs the underlay. Fails with InvalidArgument on nonsensical
  /// configs (zero sizes, inverted bands, more landmarks than routers).
  static Result<std::unique_ptr<GeometricUnderlay>> Build(
      const GeometricUnderlayConfig& config, Rng* rng);

  size_t num_peers() const override { return peer_router_.size(); }
  size_t num_landmarks() const override { return landmark_router_.size(); }
  double RttMs(PeerId a, PeerId b) const override;
  double LandmarkRttMs(PeerId peer, size_t landmark) const override;
  /// 4 x the minimum access latency: two peers (even on one router) cross two
  /// access links each way, and router paths only add to that.
  double MinPairRttMs() const override { return min_pair_rtt_ms_; }
  /// Locations are routers: latency between two peers is bounded below by
  /// their routers' shortest path plus each router's cheapest access link.
  size_t num_locations() const override { return router_pos_.size(); }
  size_t LocationOf(PeerId peer) const override;
  double PairRttLowerBoundMs(size_t loc_a, size_t loc_b) const override;
  std::string Describe() const override;

  // --- introspection (tests, reports, visualization) ---
  size_t num_routers() const { return router_pos_.size(); }
  size_t num_router_edges() const { return num_edges_; }
  RouterGraphModel model() const { return model_; }
  /// Degree of a router in the generated graph (for topology diagnostics).
  size_t RouterDegree(RouterId rid) const;
  RouterId peer_router(PeerId p) const { return peer_router_[p]; }
  const Point& router_pos(RouterId r) const { return router_pos_[r]; }
  RouterId landmark_router(size_t l) const { return landmark_router_[l]; }
  /// One-way router-to-router latency (ms) along the shortest path.
  double RouterLatencyMs(RouterId a, RouterId b) const;
  /// One-way access latency of a peer (ms).
  double AccessLatencyMs(PeerId p) const { return peer_access_ms_[p]; }

 private:
  GeometricUnderlay() = default;

  double OneWayMs(PeerId a, PeerId b) const;

  std::vector<Point> router_pos_;
  std::vector<double> router_spath_ms_;  // row-major num_routers^2, one-way ms
  std::vector<RouterId> peer_router_;
  std::vector<double> peer_access_ms_;
  std::vector<RouterId> landmark_router_;
  std::vector<uint32_t> router_degree_;
  /// Cheapest access link of any peer attached to each router (ms); the
  /// access floor for peer-less routers, so bounds stay valid lower bounds.
  std::vector<double> router_min_access_ms_;
  size_t num_edges_ = 0;
  RouterGraphModel model_ = RouterGraphModel::kWaxman;
  double min_pair_rtt_ms_ = 0.0;
};

/// Parameters for the geometry-free control underlay.
struct UniformUnderlayConfig {
  size_t num_peers = 1000;
  size_t num_landmarks = 4;
  double min_rtt_ms = 10.0;
  double max_rtt_ms = 500.0;
};

/// \brief Control model: every peer pair gets an i.i.d. uniform RTT; landmark
/// RTTs are i.i.d. too, so locIds carry no spatial information. Used by the
/// locality ablation; pairwise RTTs are derived on the fly from a hash of the
/// pair, so memory stays O(num_peers).
class UniformUnderlay final : public Underlay {
 public:
  static Result<std::unique_ptr<UniformUnderlay>> Build(
      const UniformUnderlayConfig& config, Rng* rng);

  size_t num_peers() const override { return num_peers_; }
  size_t num_landmarks() const override { return num_landmarks_; }
  double RttMs(PeerId a, PeerId b) const override;
  double LandmarkRttMs(PeerId peer, size_t landmark) const override;
  /// Distinct-pair RTTs are drawn from [min_rtt, max_rtt], so min_rtt bounds.
  double MinPairRttMs() const override { return min_rtt_ms_; }
  std::string Describe() const override;

 private:
  UniformUnderlay() = default;

  size_t num_peers_ = 0;
  size_t num_landmarks_ = 0;
  double min_rtt_ms_ = 0.0;
  double max_rtt_ms_ = 0.0;
  uint64_t pair_seed_ = 0;
};

}  // namespace locaware::net
