#include "net/underlay.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <queue>

#include "common/check.h"
#include "common/hash.h"

namespace locaware::net {

namespace {

/// Union-find over router ids, used for connectivity patching.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

 private:
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
};

struct Edge {
  RouterId to;
  double length;  // Euclidean, converted to ms after normalization
};

/// Dijkstra from `source` over `adj`; distances in the edge-length unit.
void Dijkstra(const std::vector<std::vector<Edge>>& adj, RouterId source,
              std::vector<double>* dist) {
  const double kInf = std::numeric_limits<double>::infinity();
  dist->assign(adj.size(), kInf);
  (*dist)[source] = 0.0;
  using Item = std::pair<double, RouterId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  frontier.emplace(0.0, source);
  while (!frontier.empty()) {
    auto [d, u] = frontier.top();
    frontier.pop();
    if (d > (*dist)[u]) continue;
    for (const Edge& e : adj[u]) {
      const double nd = d + e.length;
      if (nd < (*dist)[e.to]) {
        (*dist)[e.to] = nd;
        frontier.emplace(nd, e.to);
      }
    }
  }
}

}  // namespace

const char* RouterGraphModelName(RouterGraphModel model) {
  switch (model) {
    case RouterGraphModel::kWaxman:
      return "waxman";
    case RouterGraphModel::kBarabasiAlbert:
      return "barabasi-albert";
  }
  return "?";
}

Result<std::unique_ptr<GeometricUnderlay>> GeometricUnderlay::Build(
    const GeometricUnderlayConfig& config, Rng* rng) {
  if (config.num_routers == 0) {
    return Status::InvalidArgument("num_routers must be > 0");
  }
  if (config.num_peers == 0) {
    return Status::InvalidArgument("num_peers must be > 0");
  }
  if (config.num_landmarks > config.num_routers) {
    return Status::InvalidArgument("more landmarks than routers");
  }
  if (config.min_rtt_ms < 0 || config.max_rtt_ms <= config.min_rtt_ms) {
    return Status::InvalidArgument("RTT band must satisfy 0 <= min < max");
  }
  if (config.access_min_ms < 0 || config.access_max_ms < config.access_min_ms) {
    return Status::InvalidArgument("access latency band inverted");
  }
  if (config.model == RouterGraphModel::kBarabasiAlbert &&
      config.ba_links_per_router == 0) {
    return Status::InvalidArgument("ba_links_per_router must be > 0");
  }

  auto underlay = std::unique_ptr<GeometricUnderlay>(new GeometricUnderlay());
  const size_t r = config.num_routers;

  // 1. Place routers uniformly on the unit plane.
  underlay->router_pos_.resize(r);
  for (Point& p : underlay->router_pos_) {
    p.x = rng->NextDouble();
    p.y = rng->NextDouble();
  }

  // 2. Router edges per the configured BRITE model.
  std::vector<std::vector<Edge>> adj(r);
  DisjointSets components(r);
  size_t num_edges = 0;
  const auto add_edge = [&](RouterId u, RouterId v) {
    const double d = Distance(underlay->router_pos_[u], underlay->router_pos_[v]);
    adj[u].push_back({v, d});
    adj[v].push_back({u, d});
    components.Union(u, v);
    ++num_edges;
  };

  if (config.model == RouterGraphModel::kWaxman) {
    // Waxman: P(u,v) = alpha * exp(-d / (beta * L)), L = diagonal.
    const double plane_diag = std::sqrt(2.0);
    for (RouterId u = 0; u < r; ++u) {
      for (RouterId v = u + 1; v < r; ++v) {
        const double d = Distance(underlay->router_pos_[u], underlay->router_pos_[v]);
        const double p =
            config.waxman_alpha * std::exp(-d / (config.waxman_beta * plane_diag));
        if (rng->Bernoulli(p)) add_edge(u, v);
      }
    }
  } else {
    // Barabási–Albert: routers arrive in index order; each attaches
    // `ba_links_per_router` edges to distinct earlier routers chosen with
    // probability proportional to current degree (+1 so isolated seeds can
    // be picked). Connected by construction once r > 1.
    const size_t m = config.ba_links_per_router;
    for (RouterId v = 1; v < r; ++v) {
      const size_t links = std::min<size_t>(m, v);
      std::vector<RouterId> chosen;
      size_t attempts = 0;
      while (chosen.size() < links && attempts < 200 * links) {
        ++attempts;
        // Roulette over degree+1 of routers [0, v).
        size_t total = 0;
        for (RouterId u = 0; u < v; ++u) total += adj[u].size() + 1;
        uint64_t pick = rng->UniformInt(0, total - 1);
        RouterId target = 0;
        for (RouterId u = 0; u < v; ++u) {
          const size_t w = adj[u].size() + 1;
          if (pick < w) {
            target = u;
            break;
          }
          pick -= w;
        }
        if (std::find(chosen.begin(), chosen.end(), target) == chosen.end()) {
          chosen.push_back(target);
        }
      }
      for (RouterId u : chosen) add_edge(v, u);
    }
  }

  // 3. Patch connectivity: repeatedly bridge the closest pair of routers that
  // lie in different components (a lightweight inter-component MST).
  while (true) {
    RouterId best_u = 0, best_v = 0;
    double best_d = std::numeric_limits<double>::infinity();
    bool found = false;
    for (RouterId u = 0; u < r; ++u) {
      for (RouterId v = u + 1; v < r; ++v) {
        if (components.Find(u) == components.Find(v)) continue;
        const double d = Distance(underlay->router_pos_[u], underlay->router_pos_[v]);
        if (d < best_d) {
          best_d = d;
          best_u = u;
          best_v = v;
          found = true;
        }
      }
    }
    if (!found) break;  // single component
    adj[best_u].push_back({best_v, best_d});
    adj[best_v].push_back({best_u, best_d});
    components.Union(best_u, best_v);
    ++num_edges;
  }
  underlay->num_edges_ = num_edges;
  underlay->model_ = config.model;
  underlay->router_degree_.resize(r);
  for (RouterId u = 0; u < r; ++u) {
    underlay->router_degree_[u] = static_cast<uint32_t>(adj[u].size());
  }

  // 4. Router-level APSP in Euclidean units.
  underlay->router_spath_ms_.resize(r * r);
  std::vector<double> dist;
  double max_path = 0.0;
  for (RouterId s = 0; s < r; ++s) {
    Dijkstra(adj, s, &dist);
    for (RouterId t = 0; t < r; ++t) {
      LOCAWARE_CHECK(std::isfinite(dist[t])) << "router graph disconnected";
      underlay->router_spath_ms_[s * r + t] = dist[t];
      max_path = std::max(max_path, dist[t]);
    }
  }

  // 5. Normalize path lengths into milliseconds so that peer-to-peer RTTs span
  // roughly [min_rtt, max_rtt]: the farthest router pair plus two maximal
  // access links maps to max_rtt, and a same-router pair plus two minimal
  // access links maps to ~min_rtt (access links are shifted up if needed).
  double access_lo = config.access_min_ms;
  double access_hi = config.access_max_ms;
  const double min_core = config.min_rtt_ms / 2.0;  // one-way budget at d = 0
  if (2.0 * access_lo < min_core) {
    const double shift = min_core / 2.0 - access_lo;
    access_lo += shift;
    access_hi += shift;
  }
  const double max_core = config.max_rtt_ms / 2.0 - 2.0 * access_hi;
  const double scale = (max_path > 0 && max_core > 0) ? max_core / max_path : 0.0;
  for (double& d : underlay->router_spath_ms_) d *= scale;

  // 6. Attach peers to uniformly chosen routers with random access latency.
  // Every distinct-pair one-way path crosses two access links, so 4 x the
  // (possibly shifted) access floor lower-bounds all pairwise RTTs — the
  // conservative-lookahead bound the sharded engine runs on.
  underlay->min_pair_rtt_ms_ = 4.0 * access_lo;
  underlay->peer_router_.resize(config.num_peers);
  underlay->peer_access_ms_.resize(config.num_peers);
  // Per-router access floor: the cheapest attached access link, falling back
  // to the global floor for peer-less routers. PairRttLowerBoundMs builds on
  // this — using a min (not the actual two peers involved) keeps it a valid
  // lower bound even for two peers sharing one router.
  underlay->router_min_access_ms_.assign(r, access_lo);
  for (size_t p = 0; p < config.num_peers; ++p) {
    const RouterId router = static_cast<RouterId>(rng->UniformInt(0, r - 1));
    const double access = rng->UniformDouble(access_lo, access_hi);
    underlay->peer_router_[p] = router;
    underlay->peer_access_ms_[p] = access;
  }
  std::vector<char> router_has_peer(r, 0);
  for (size_t p = 0; p < config.num_peers; ++p) {
    const RouterId router = underlay->peer_router_[p];
    double& floor = underlay->router_min_access_ms_[router];
    floor = router_has_peer[router] ? std::min(floor, underlay->peer_access_ms_[p])
                                    : underlay->peer_access_ms_[p];
    router_has_peer[router] = 1;
  }

  // 7. Landmarks: greedy max-min placement over routers, so the k landmarks
  // are spread apart ("well-known machines spread across the Internet").
  if (config.num_landmarks > 0) {
    std::vector<RouterId>& lm = underlay->landmark_router_;
    lm.push_back(static_cast<RouterId>(rng->UniformInt(0, r - 1)));
    while (lm.size() < config.num_landmarks) {
      RouterId best = 0;
      double best_score = -1.0;
      for (RouterId cand = 0; cand < r; ++cand) {
        double nearest = std::numeric_limits<double>::infinity();
        for (RouterId chosen : lm) {
          nearest = std::min(
              nearest,
              Distance(underlay->router_pos_[cand], underlay->router_pos_[chosen]));
        }
        if (nearest > best_score) {
          best_score = nearest;
          best = cand;
        }
      }
      lm.push_back(best);
    }
  }

  return underlay;
}

double GeometricUnderlay::OneWayMs(PeerId a, PeerId b) const {
  LOCAWARE_CHECK_LT(a, peer_router_.size());
  LOCAWARE_CHECK_LT(b, peer_router_.size());
  if (a == b) return 0.0;
  const size_t r = router_pos_.size();
  return peer_access_ms_[a] + peer_access_ms_[b] +
         router_spath_ms_[peer_router_[a] * r + peer_router_[b]];
}

double GeometricUnderlay::RttMs(PeerId a, PeerId b) const { return 2.0 * OneWayMs(a, b); }

double GeometricUnderlay::LandmarkRttMs(PeerId peer, size_t landmark) const {
  LOCAWARE_CHECK_LT(peer, peer_router_.size());
  LOCAWARE_CHECK_LT(landmark, landmark_router_.size());
  const size_t r = router_pos_.size();
  const double one_way =
      peer_access_ms_[peer] +
      router_spath_ms_[peer_router_[peer] * r + landmark_router_[landmark]];
  return 2.0 * one_way;
}

size_t GeometricUnderlay::LocationOf(PeerId peer) const {
  LOCAWARE_CHECK_LT(peer, peer_router_.size());
  return peer_router_[peer];
}

double GeometricUnderlay::PairRttLowerBoundMs(size_t loc_a, size_t loc_b) const {
  LOCAWARE_CHECK_LT(loc_a, router_pos_.size());
  LOCAWARE_CHECK_LT(loc_b, router_pos_.size());
  // Any distinct pair (a on loc_a, b on loc_b) pays access_a + access_b +
  // spath one-way; both access links are bounded below by their routers'
  // floors (for loc_a == loc_b, by twice the shared floor).
  const double one_way = router_min_access_ms_[loc_a] + router_min_access_ms_[loc_b] +
                         router_spath_ms_[loc_a * router_pos_.size() + loc_b];
  return 2.0 * one_way;
}

double GeometricUnderlay::RouterLatencyMs(RouterId a, RouterId b) const {
  LOCAWARE_CHECK_LT(a, router_pos_.size());
  LOCAWARE_CHECK_LT(b, router_pos_.size());
  return router_spath_ms_[a * router_pos_.size() + b];
}

size_t GeometricUnderlay::RouterDegree(RouterId rid) const {
  LOCAWARE_CHECK_LT(rid, router_degree_.size());
  return router_degree_[rid];
}

std::string GeometricUnderlay::Describe() const {
  char buf[160];
  std::snprintf(
      buf, sizeof(buf),
      "GeometricUnderlay{model=%s routers=%zu edges=%zu peers=%zu landmarks=%zu}",
      RouterGraphModelName(model_), num_routers(), num_edges_, num_peers(),
      num_landmarks());
  return buf;
}

Result<std::unique_ptr<UniformUnderlay>> UniformUnderlay::Build(
    const UniformUnderlayConfig& config, Rng* rng) {
  if (config.num_peers == 0) {
    return Status::InvalidArgument("num_peers must be > 0");
  }
  if (config.min_rtt_ms < 0 || config.max_rtt_ms <= config.min_rtt_ms) {
    return Status::InvalidArgument("RTT band must satisfy 0 <= min < max");
  }
  auto u = std::unique_ptr<UniformUnderlay>(new UniformUnderlay());
  u->num_peers_ = config.num_peers;
  u->num_landmarks_ = config.num_landmarks;
  u->min_rtt_ms_ = config.min_rtt_ms;
  u->max_rtt_ms_ = config.max_rtt_ms;
  u->pair_seed_ = rng->NextU64();
  return u;
}

double UniformUnderlay::RttMs(PeerId a, PeerId b) const {
  LOCAWARE_CHECK_LT(a, num_peers_);
  LOCAWARE_CHECK_LT(b, num_peers_);
  if (a == b) return 0.0;
  // Symmetric pair hash -> uniform double -> RTT band. No storage, no
  // geometry, stable across calls. Mix64 gives full avalanche; plain
  // HashCombine would leave the high bits nearly constant for small ids.
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  const uint64_t h = Mix64(pair_seed_ ^ Mix64(lo * 0x9e3779b97f4a7c15ULL + hi));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return min_rtt_ms_ + (max_rtt_ms_ - min_rtt_ms_) * unit;
}

double UniformUnderlay::LandmarkRttMs(PeerId peer, size_t landmark) const {
  LOCAWARE_CHECK_LT(peer, num_peers_);
  LOCAWARE_CHECK_LT(landmark, num_landmarks_);
  const uint64_t h = Mix64((pair_seed_ ^ 0xabcdef12345678ULL) +
                           Mix64(peer * 0xc2b2ae3d27d4eb4fULL + landmark));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return min_rtt_ms_ + (max_rtt_ms_ - min_rtt_ms_) * unit;
}

std::string UniformUnderlay::Describe() const {
  char buf[120];
  std::snprintf(buf, sizeof(buf), "UniformUnderlay{peers=%zu landmarks=%zu}",
                num_peers_, num_landmarks_);
  return buf;
}

}  // namespace locaware::net
