// 2D geometry for the synthetic Internet plane.
#pragma once

#include <cmath>

namespace locaware::net {

/// A position on the unit plane routers and peers are embedded in.
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// Euclidean distance.
inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace locaware::net
