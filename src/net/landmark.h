// Landmark-based location ids (locIds).
//
// Paper §4.1.1: each peer measures its RTT to k well-known landmarks; the
// ordering of landmarks by increasing RTT is a fingerprint of physical
// position, and each possible ordering gets a dense integer id in [0, k!).
// 4 landmarks → 24 locIds; the paper argues more landmarks (5 → 120 locIds)
// scatter 1000 peers too thinly (≈8 peers per locId) to find same-locality
// providers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "net/underlay.h"

namespace locaware::net {

/// Number of distinct locIds for k landmarks (k!). CHECK-fails for k > 8
/// (which would overflow the LocId width and make localities meaningless).
uint32_t NumLocIds(size_t num_landmarks);

/// \brief Dense encoding of permutations via the Lehmer code.
///
/// PermutationRank maps a permutation of {0..k-1} to [0, k!) bijectively;
/// RankToPermutation inverts it. Used to turn a landmark RTT ordering into a
/// compact locId that can ride in every cached index entry.
class LocIdCodec {
 public:
  /// Rank of a permutation of {0..k-1}. CHECK-fails if `perm` is not a
  /// permutation.
  static uint32_t PermutationRank(const std::vector<uint8_t>& perm);

  /// Inverse of PermutationRank.
  static std::vector<uint8_t> RankToPermutation(uint32_t rank, size_t k);
};

/// \brief Computes the locId of `peer`: sort landmarks by measured RTT
/// (ties broken by landmark index, deterministically) and rank the resulting
/// permutation.
LocId ComputeLocId(const Underlay& underlay, PeerId peer);

/// Computes locIds for all peers at once.
std::vector<LocId> ComputeAllLocIds(const Underlay& underlay);

/// \brief Population statistics of a locId assignment — how many distinct
/// locIds are inhabited and how many peers share each. Used to reproduce the
/// paper's landmark-count discussion (§5.1) in `bench/ablation_landmarks`.
struct LocIdStats {
  uint32_t num_possible = 0;    ///< k!
  uint32_t num_inhabited = 0;   ///< locIds with >= 1 peer
  double mean_peers_per_inhabited = 0.0;
  uint32_t max_peers = 0;       ///< most crowded locId population
};

LocIdStats AnalyzeLocIds(const std::vector<LocId>& loc_ids, size_t num_landmarks);

}  // namespace locaware::net
