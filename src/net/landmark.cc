#include "net/landmark.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/check.h"

namespace locaware::net {

namespace {

constexpr uint32_t kFactorial[9] = {1, 1, 2, 6, 24, 120, 720, 5040, 40320};

}  // namespace

uint32_t NumLocIds(size_t num_landmarks) {
  LOCAWARE_CHECK_LE(num_landmarks, 8u) << "locId space would overflow";
  return kFactorial[num_landmarks];
}

uint32_t LocIdCodec::PermutationRank(const std::vector<uint8_t>& perm) {
  const size_t k = perm.size();
  LOCAWARE_CHECK_LE(k, 8u);
  // Validate that `perm` is a permutation of {0..k-1}.
  uint32_t seen = 0;
  for (uint8_t v : perm) {
    LOCAWARE_CHECK_LT(v, k) << "element out of range";
    LOCAWARE_CHECK_EQ((seen >> v) & 1u, 0u) << "duplicate element";
    seen |= 1u << v;
  }
  // Lehmer code: digit i counts remaining smaller elements to the right.
  uint32_t rank = 0;
  for (size_t i = 0; i < k; ++i) {
    uint32_t smaller = 0;
    for (size_t j = i + 1; j < k; ++j) {
      if (perm[j] < perm[i]) ++smaller;
    }
    rank += smaller * kFactorial[k - 1 - i];
  }
  return rank;
}

std::vector<uint8_t> LocIdCodec::RankToPermutation(uint32_t rank, size_t k) {
  LOCAWARE_CHECK_LE(k, 8u);
  LOCAWARE_CHECK_LT(rank, kFactorial[k]);
  std::vector<uint8_t> pool(k);
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<uint8_t> perm;
  perm.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const uint32_t f = kFactorial[k - 1 - i];
    const uint32_t digit = rank / f;
    rank %= f;
    perm.push_back(pool[digit]);
    pool.erase(pool.begin() + digit);
  }
  return perm;
}

LocId ComputeLocId(const Underlay& underlay, PeerId peer) {
  const size_t k = underlay.num_landmarks();
  LOCAWARE_CHECK_GT(k, 0u) << "underlay has no landmarks";
  std::vector<uint8_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> rtt(k);
  for (size_t l = 0; l < k; ++l) rtt[l] = underlay.LandmarkRttMs(peer, l);
  std::sort(order.begin(), order.end(), [&](uint8_t a, uint8_t b) {
    if (rtt[a] != rtt[b]) return rtt[a] < rtt[b];
    return a < b;  // deterministic tie-break
  });
  return static_cast<LocId>(LocIdCodec::PermutationRank(order));
}

std::vector<LocId> ComputeAllLocIds(const Underlay& underlay) {
  std::vector<LocId> out(underlay.num_peers());
  for (PeerId p = 0; p < out.size(); ++p) out[p] = ComputeLocId(underlay, p);
  return out;
}

LocIdStats AnalyzeLocIds(const std::vector<LocId>& loc_ids, size_t num_landmarks) {
  LocIdStats stats;
  stats.num_possible = NumLocIds(num_landmarks);
  std::unordered_map<LocId, uint32_t> population;
  for (LocId id : loc_ids) ++population[id];
  stats.num_inhabited = static_cast<uint32_t>(population.size());
  uint32_t total = 0;
  for (const auto& [id, count] : population) {
    total += count;
    stats.max_peers = std::max(stats.max_peers, count);
  }
  if (stats.num_inhabited > 0) {
    stats.mean_peers_per_inhabited =
        static_cast<double>(total) / static_cast<double>(stats.num_inhabited);
  }
  return stats;
}

}  // namespace locaware::net
