#include "catalog/binary_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define LOCAWARE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace locaware::catalog::binio {

Status WriteFile(const std::string& path, std::string_view magic,
                 const std::string& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(magic.data(), static_cast<std::streamsize>(magic.size()));
  Writer version;
  version.U32(kFormatVersion);
  out.write(version.buffer().data(),
            static_cast<std::streamsize>(version.buffer().size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

void InputFile::Swap(InputFile* other) {
  std::swap(data_, other->data_);
  std::swap(size_, other->size_);
  std::swap(mapped_, other->mapped_);
}

void InputFile::Release() {
  if (data_ == nullptr) return;
#if LOCAWARE_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
    return;
  }
#endif
  delete[] data_;
  data_ = nullptr;
  size_ = 0;
}

Result<InputFile> InputFile::Open(const std::string& path) {
  InputFile file;
#if LOCAWARE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const size_t size = static_cast<size_t>(st.st_size);
      if (size == 0) {
        ::close(fd);
        return file;  // empty file: valid view of zero bytes
      }
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        file.data_ = static_cast<const uint8_t*>(map);
        file.size_ = size;
        file.mapped_ = true;
        return file;
      }
      // fall through to the stream read below
    } else {
      ::close(fd);
    }
  }
#endif
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path);
  const std::streamoff size = in.tellg();
  in.seekg(0);
  if (size == 0) return file;
  auto* buf = new uint8_t[static_cast<size_t>(size)];
  in.read(reinterpret_cast<char*>(buf), size);
  if (!in) {
    delete[] buf;
    return Status::IOError("short read from " + path);
  }
  file.data_ = buf;
  file.size_ = static_cast<size_t>(size);
  file.mapped_ = false;
  return file;
}

Status Reader::ExpectHeader(std::string_view magic, uint32_t version) {
  if (remaining() < magic.size() + sizeof(uint32_t)) {
    return Status::InvalidArgument(path_ + ": truncated header");
  }
  if (std::memcmp(data_ + pos_, magic.data(), magic.size()) != 0) {
    return Status::InvalidArgument(path_ + ": bad magic (not a " +
                                   std::string(magic) + " file)");
  }
  pos_ += magic.size();
  const uint32_t got = U32().ValueOrDie();  // size checked above
  if (got != version) {
    return Status::InvalidArgument(path_ + ": format version " + std::to_string(got) +
                                   " unsupported (expected " +
                                   std::to_string(version) + ")");
  }
  return Status::OK();
}

Result<uint32_t> Reader::U32() {
  if (remaining() < 4) return Truncated("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> Reader::U64() {
  if (remaining() < 8) return Truncated("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<const uint8_t*> Reader::View(size_t n) {
  if (remaining() < n) return Truncated("section of " + std::to_string(n) + " bytes");
  const uint8_t* out = data_ + pos_;
  pos_ += n;
  return out;
}

Status Reader::Truncated(std::string_view what) const {
  return Status::InvalidArgument(path_ + ": truncated file (reading " +
                                 std::string(what) +
                                 " at offset " + std::to_string(pos_) + ")");
}

Result<bool> FileStartsWith(const std::string& path, std::string_view magic) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char head[8] = {};
  in.read(head, static_cast<std::streamsize>(magic.size()));
  if (static_cast<size_t>(in.gcount()) < magic.size()) return false;
  return std::memcmp(head, magic.data(), magic.size()) == 0;
}

}  // namespace locaware::catalog::binio
