// Shared plumbing for the versioned binary trace/catalog formats.
//
// Layout, endianness, and the string-table encoding are specified in
// src/catalog/BINARY_FORMAT.md; this header supplies the mechanical pieces:
// a little-endian append Writer, an atomic-ish file writer, an mmap-backed
// read-only InputFile (with a plain-read fallback), and a bounds-checked
// little-endian Reader whose every accessor returns Status instead of
// walking off the end — corrupt headers, truncated files, and version
// mismatches must surface as errors, never as crashes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace locaware::catalog::binio {

/// 8-byte magic prefixes. A text trace starts with "# locawar", so eight
/// bytes unambiguously separate the formats (and both from garbage).
inline constexpr std::string_view kTraceMagic = "LWTRACEB";
inline constexpr std::string_view kCatalogMagic = "LWCATLGB";

/// Format version both writers stamp and both loaders require.
inline constexpr uint32_t kFormatVersion = 1;

/// \brief Append-only little-endian byte buffer for the save paths.
class Writer {
 public:
  void U32(uint32_t v) {
    unsigned char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    buf_.append(reinterpret_cast<const char*>(b), sizeof(b));
  }
  void U64(uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    buf_.append(reinterpret_cast<const char*>(b), sizeof(b));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Writes magic + version + `payload` to `path` (truncating). IOError on any
/// filesystem failure.
Status WriteFile(const std::string& path, std::string_view magic,
                 const std::string& payload);

/// \brief Read-only view of a file's bytes: mmap when the platform allows,
/// a heap read otherwise. Move-only; unmaps/frees on destruction.
class InputFile {
 public:
  static Result<InputFile> Open(const std::string& path);

  InputFile(InputFile&& other) noexcept { Swap(&other); }
  InputFile& operator=(InputFile&& other) noexcept {
    if (this != &other) {
      Release();
      Swap(&other);
    }
    return *this;
  }
  InputFile(const InputFile&) = delete;
  InputFile& operator=(const InputFile&) = delete;
  ~InputFile() { Release(); }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  InputFile() = default;
  void Swap(InputFile* other);
  void Release();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;  ///< true: munmap on release; false: delete[]
};

/// \brief Bounds-checked little-endian cursor over a byte span.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size, std::string path)
      : data_(data), size_(size), path_(std::move(path)) {}

  /// Consumes and checks the 8-byte magic and the u32 version.
  Status ExpectHeader(std::string_view magic, uint32_t version);

  Result<uint32_t> U32();
  Result<uint64_t> U64();

  /// Returns a pointer to the next `n` bytes and advances past them.
  Result<const uint8_t*> View(size_t n);

  size_t remaining() const { return size_ - pos_; }

  /// InvalidArgument naming the file and what was being read.
  Status Truncated(std::string_view what) const;

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  std::string path_;
};

/// Reads the first 8 bytes of `path` and compares them to `magic`. False for
/// shorter files (a valid text trace is never 8 bytes of magic). IOError only
/// when the file cannot be opened at all.
Result<bool> FileStartsWith(const std::string& path, std::string_view magic);

}  // namespace locaware::catalog::binio
