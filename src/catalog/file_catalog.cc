#include "catalog/file_catalog.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "catalog/binary_io.h"
#include "common/check.h"
#include "common/string_util.h"

namespace locaware::catalog {

Result<FileCatalog> FileCatalog::Generate(const CatalogConfig& config, Rng* rng) {
  if (config.num_files == 0) {
    return Status::InvalidArgument("num_files must be > 0");
  }
  if (config.keywords_per_file == 0 ||
      config.keywords_per_file > config.keyword_pool_size) {
    return Status::InvalidArgument("keywords_per_file out of range");
  }

  KeywordPool pool(config.keyword_pool_size, rng);

  FileCatalog cat;
  cat.keywords_per_file_ = config.keywords_per_file;
  cat.keyword_table_.assign(pool.words().begin(), pool.words().end());
  cat.keyword_fnv_.reserve(cat.keyword_table_.size());
  cat.keyword_bloom_.reserve(cat.keyword_table_.size());
  for (const std::string& word : cat.keyword_table_) {
    cat.keyword_fnv_.push_back(Fnv1a64(word));
    cat.keyword_bloom_.push_back(BloomKeyHash(word));
  }
  // The keyword table is final (bar InternKeyword, which appends without
  // relocating — keyword_table_ is a deque), so its lookup map can be built
  // now; views stay valid because the catalog is move-only.
  cat.keyword_ids_.reserve(cat.keyword_table_.size());
  for (KeywordId kw = 0; kw < cat.keyword_table_.size(); ++kw) {
    cat.keyword_ids_.try_emplace(cat.keyword_table_[kw], kw);
  }
  cat.postings_.resize(cat.keyword_table_.size());
  cat.files_.reserve(config.num_files);
  cat.filename_index_.reserve(config.num_files);

  // With 9000 keywords choose-3 there are ~1.2e11 possible filenames for 3000
  // files, so collisions are rare; still, retry to guarantee uniqueness.
  // filename_index_ doubles as the uniqueness check: files_ is reserved for
  // the full count, so entries (and the strings its views point into) never
  // relocate while the loop appends.
  constexpr int kMaxAttemptsPerFile = 1000;
  while (cat.files_.size() < config.num_files) {
    bool placed = false;
    for (int attempt = 0; attempt < kMaxAttemptsPerFile; ++attempt) {
      std::vector<size_t> kw_ids =
          rng->SampleIndices(config.keyword_pool_size, config.keywords_per_file);
      std::vector<std::string> kws;
      kws.reserve(kw_ids.size());
      for (size_t id : kw_ids) kws.push_back(pool.word(id));
      std::string name = Join(kws, " ");
      if (cat.filename_index_.contains(std::string_view{name})) continue;

      const FileId fid = static_cast<FileId>(cat.files_.size());
      FileEntry entry;
      entry.filename = std::move(name);
      entry.keywords.assign(kw_ids.begin(), kw_ids.end());
      entry.sorted_keywords = entry.keywords;
      std::sort(entry.sorted_keywords.begin(), entry.sorted_keywords.end());
      entry.set_fnv = cat.CanonicalSetFnv(entry.keywords);
      for (KeywordId kw : entry.keywords) cat.postings_[kw].push_back(fid);
      cat.files_.push_back(std::move(entry));
      cat.filename_index_.try_emplace(cat.files_.back().filename, fid);
      placed = true;
      break;
    }
    if (!placed) {
      return Status::Internal("could not generate a unique filename");
    }
  }
  return cat;
}

Status FileCatalog::SaveBinary(const std::string& path) const {
  if (keywords_per_file_ == 0) {
    return Status::FailedPrecondition("empty catalog; nothing to serialize");
  }
  binio::Writer w;
  w.U32(static_cast<uint32_t>(keywords_per_file_));
  size_t string_bytes = 0;
  for (const std::string& word : keyword_table_) string_bytes += word.size();
  w.U64(keyword_table_.size());
  w.U64(string_bytes);
  w.U64(files_.size());
  for (const std::string& word : keyword_table_) {
    w.U32(static_cast<uint32_t>(word.size()));
  }
  for (const std::string& word : keyword_table_) w.Bytes(word.data(), word.size());
  for (const FileEntry& entry : files_) {
    if (entry.keywords.size() != keywords_per_file_) {
      return Status::Internal("file '" + entry.filename +
                              "' violates the fixed keywords-per-file shape");
    }
    // The format reconstructs filenames as the keyword join; a catalog that
    // broke that derivation would silently rename its files on reload.
    std::vector<std::string> words;
    words.reserve(entry.keywords.size());
    for (KeywordId kw : entry.keywords) words.push_back(keyword(kw));
    if (Join(words, " ") != entry.filename) {
      return Status::Internal("filename '" + entry.filename +
                              "' is not the join of its keywords");
    }
    for (KeywordId kw : entry.keywords) w.U32(static_cast<uint32_t>(kw));
  }
  return binio::WriteFile(path, binio::kCatalogMagic, w.buffer());
}

Result<FileCatalog> FileCatalog::LoadBinary(const std::string& path) {
  auto file = binio::InputFile::Open(path);
  if (!file.ok()) return file.status();
  const binio::InputFile& in = file.ValueOrDie();
  binio::Reader r(in.data(), in.size(), path);
  LOCAWARE_RETURN_NOT_OK(r.ExpectHeader(binio::kCatalogMagic, binio::kFormatVersion));

  auto kpf_field = r.U32();
  if (!kpf_field.ok()) return kpf_field.status();
  auto num_keywords = r.U64();
  if (!num_keywords.ok()) return num_keywords.status();
  auto string_bytes = r.U64();
  if (!string_bytes.ok()) return string_bytes.status();
  auto num_files = r.U64();
  if (!num_files.ok()) return num_files.status();

  const uint64_t kpf = kpf_field.ValueOrDie();
  const uint64_t keywords = num_keywords.ValueOrDie();
  const uint64_t bytes = string_bytes.ValueOrDie();
  const uint64_t files = num_files.ValueOrDie();
  if (kpf == 0) return Status::InvalidArgument(path + ": keywords_per_file is 0");
  const uint64_t avail = r.remaining();
  // Per-count bounds first, so the expected-size arithmetic below cannot
  // overflow on a hostile header (each term is at most `avail`).
  if (keywords > avail / 4 || bytes > avail || files > avail / (4 * kpf)) {
    return Status::InvalidArgument(path + ": header counts exceed file size");
  }
  const uint64_t expect = 4 * keywords + bytes + 4 * files * kpf;
  if (avail != expect) {
    return Status::InvalidArgument(
        path + ": section sizes disagree with file size (expected " +
        std::to_string(expect) + " payload bytes, have " + std::to_string(avail) + ")");
  }

  std::vector<uint32_t> lengths(keywords);
  for (uint64_t i = 0; i < keywords; ++i) {
    lengths[i] = r.U32().ValueOrDie();  // sized by the exact-size check
  }
  uint64_t length_sum = 0;
  for (uint32_t len : lengths) length_sum += len;
  if (length_sum != bytes) {
    return Status::InvalidArgument(path + ": string lengths sum to " +
                                   std::to_string(length_sum) + ", header says " +
                                   std::to_string(bytes));
  }
  const uint8_t* chars = r.View(bytes).ValueOrDie();

  FileCatalog cat;
  cat.keywords_per_file_ = static_cast<size_t>(kpf);
  {
    // Build the symbol table and its derived constants exactly as Generate
    // does, rejecting empty or duplicate words before touching the maps.
    std::unordered_set<std::string_view> distinct;
    distinct.reserve(keywords);
    size_t offset = 0;
    for (uint64_t i = 0; i < keywords; ++i) {
      std::string_view word(reinterpret_cast<const char*>(chars) + offset, lengths[i]);
      offset += lengths[i];
      if (word.empty()) {
        return Status::InvalidArgument(path + ": empty keyword in string table");
      }
      if (!distinct.insert(word).second) {
        return Status::InvalidArgument(path + ": duplicate keyword '" +
                                       std::string(word) + "'");
      }
      cat.keyword_table_.emplace_back(word);
    }
  }
  cat.keyword_fnv_.reserve(keywords);
  cat.keyword_bloom_.reserve(keywords);
  for (const std::string& word : cat.keyword_table_) {
    cat.keyword_fnv_.push_back(Fnv1a64(word));
    cat.keyword_bloom_.push_back(BloomKeyHash(word));
  }
  cat.keyword_ids_.reserve(keywords);
  for (KeywordId kw = 0; kw < cat.keyword_table_.size(); ++kw) {
    cat.keyword_ids_.try_emplace(cat.keyword_table_[kw], kw);
  }
  cat.postings_.resize(keywords);
  // Reserved for the full count up front: filename_index_ holds views into
  // the entries' filename strings, which must never relocate (same contract
  // as Generate).
  cat.files_.reserve(files);
  cat.filename_index_.reserve(files);
  for (uint64_t f = 0; f < files; ++f) {
    FileEntry entry;
    entry.keywords.reserve(kpf);
    std::vector<std::string> words;
    words.reserve(kpf);
    for (uint64_t k = 0; k < kpf; ++k) {
      const uint32_t kw = r.U32().ValueOrDie();  // sized by the exact-size check
      if (kw >= keywords) {
        return Status::InvalidArgument(path + ": file " + std::to_string(f) +
                                       " references keyword " + std::to_string(kw) +
                                       " out of range");
      }
      entry.keywords.push_back(kw);
      words.push_back(cat.keyword_table_[kw]);
    }
    entry.sorted_keywords = entry.keywords;
    std::sort(entry.sorted_keywords.begin(), entry.sorted_keywords.end());
    for (size_t k = 1; k < entry.sorted_keywords.size(); ++k) {
      if (entry.sorted_keywords[k] == entry.sorted_keywords[k - 1]) {
        return Status::InvalidArgument(path + ": file " + std::to_string(f) +
                                       " repeats a keyword");
      }
    }
    entry.filename = Join(words, " ");
    entry.set_fnv = cat.CanonicalSetFnv(entry.keywords);
    const FileId fid = static_cast<FileId>(f);
    for (KeywordId kw : entry.keywords) cat.postings_[kw].push_back(fid);
    cat.files_.push_back(std::move(entry));
    if (!cat.filename_index_.try_emplace(cat.files_.back().filename, fid).second) {
      return Status::InvalidArgument(path + ": duplicate filename '" +
                                     cat.files_.back().filename + "'");
    }
  }
  return cat;
}

const std::string& FileCatalog::keyword(KeywordId kw) const {
  LOCAWARE_CHECK_LT(kw, keyword_table_.size());
  return keyword_table_[kw];
}

KeywordId FileCatalog::LookupKeyword(std::string_view word) const {
  auto it = keyword_ids_.find(word);
  if (it == keyword_ids_.end()) return kInvalidKeyword;
  return it->second;
}

uint64_t FileCatalog::KeywordFnv(KeywordId kw) const {
  LOCAWARE_CHECK_LT(kw, keyword_fnv_.size());
  return keyword_fnv_[kw];
}

KeyHash128 FileCatalog::KeywordBloomHash(KeywordId kw) const {
  LOCAWARE_CHECK_LT(kw, keyword_bloom_.size());
  return keyword_bloom_[kw];
}

const std::string& FileCatalog::filename(FileId f) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return files_[f].filename;
}

const std::vector<KeywordId>& FileCatalog::keywords(FileId f) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return files_[f].keywords;
}

const std::vector<KeywordId>& FileCatalog::sorted_keywords(FileId f) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return files_[f].sorted_keywords;
}

uint64_t FileCatalog::FileSetFnv(FileId f) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return files_[f].set_fnv;
}

bool FileCatalog::MatchesSorted(FileId f,
                                std::span<const KeywordId> sorted_query) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return ContainsAllIds(files_[f].sorted_keywords, sorted_query);
}

bool FileCatalog::Matches(FileId f, std::span<const KeywordId> sorted_query) const {
  // Unsorted queries would produce silent false negatives in the linear
  // merge; the check is two compares for the common 1..3-keyword query.
  LOCAWARE_CHECK(std::is_sorted(sorted_query.begin(), sorted_query.end()))
      << "Matches query must be sorted ascending";
  return MatchesSorted(f, sorted_query);
}

std::vector<FileId> FileCatalog::FindMatches(
    std::span<const KeywordId> sorted_query) const {
  LOCAWARE_CHECK(std::is_sorted(sorted_query.begin(), sorted_query.end()))
      << "FindMatches query must be sorted ascending";
  if (sorted_query.empty()) return {};
  // Seed from the rarest keyword's posting list, then verify the rest
  // (through the unchecked MatchesSorted — the query was validated once
  // above, not per candidate).
  const std::vector<FileId>* seed =
      SmallestPosting(sorted_query, [&](KeywordId kw) {
        LOCAWARE_CHECK_LT(kw, postings_.size());
        return &postings_[kw];
      });
  if (seed == nullptr) return {};  // some keyword in no filename: no match
  std::vector<FileId> out;
  for (FileId f : *seed) {
    if (MatchesSorted(f, sorted_query)) out.push_back(f);
  }
  return out;
}

FileId FileCatalog::LookupFilename(const std::string& filename) const {
  auto it = filename_index_.find(std::string_view{filename});
  if (it == filename_index_.end()) return kInvalidFile;
  return it->second;
}

KeywordId FileCatalog::InternKeyword(std::string_view word) {
  const KeywordId existing = LookupKeyword(word);
  if (existing != kInvalidKeyword) return existing;
  const KeywordId kw = static_cast<KeywordId>(keyword_table_.size());
  keyword_table_.emplace_back(word);
  const std::string& stored = keyword_table_.back();
  keyword_fnv_.push_back(Fnv1a64(stored));
  keyword_bloom_.push_back(BloomKeyHash(stored));
  postings_.emplace_back();  // no generated filename carries it
  keyword_ids_.try_emplace(stored, kw);
  return kw;
}

Result<std::vector<KeywordId>> FileCatalog::InternQueryKeywords(
    const std::vector<std::string>& words) const {
  std::vector<KeywordId> ids;
  ids.reserve(words.size());
  for (const std::string& word : words) {
    const KeywordId kw = LookupKeyword(word);
    if (kw == kInvalidKeyword) {
      return Status::InvalidArgument("unknown keyword: " + word);
    }
    ids.push_back(kw);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

uint64_t FileCatalog::CanonicalSetFnv(std::span<const KeywordId> kws) const {
  // The canonical preimage is the lexicographically sorted keywords joined
  // by ' ' (what the string era hashed), folded incrementally so the joined
  // string is never materialized. Runs at the edges (query submit, file
  // generation), not per hop.
  std::vector<std::string_view> sorted;
  sorted.reserve(kws.size());
  for (KeywordId kw : kws) sorted.push_back(keyword(kw));
  std::sort(sorted.begin(), sorted.end());
  uint64_t hash = kFnv1a64Init;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) hash = Fnv1a64Append(hash, " ");
    hash = Fnv1a64Append(hash, sorted[i]);
  }
  return hash;
}

std::string FileCatalog::KeywordsToString(const std::vector<KeywordId>& kws) const {
  std::string out;
  for (size_t i = 0; i < kws.size(); ++i) {
    if (i > 0) out += ' ';
    out += keyword(kws[i]);
  }
  return out;
}

size_t FileCatalog::KeywordWireBytes(KeywordId kw) const {
  return keyword(kw).size();
}

size_t FileCatalog::FilenameWireBytes(FileId f) const {
  return filename(f).size();
}

}  // namespace locaware::catalog
