#include "catalog/file_catalog.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace locaware::catalog {

Result<FileCatalog> FileCatalog::Generate(const CatalogConfig& config, Rng* rng) {
  if (config.num_files == 0) {
    return Status::InvalidArgument("num_files must be > 0");
  }
  if (config.keywords_per_file == 0 ||
      config.keywords_per_file > config.keyword_pool_size) {
    return Status::InvalidArgument("keywords_per_file out of range");
  }

  KeywordPool pool(config.keyword_pool_size, rng);

  FileCatalog cat;
  cat.keywords_per_file_ = config.keywords_per_file;
  cat.keyword_table_.assign(pool.words().begin(), pool.words().end());
  cat.keyword_fnv_.reserve(cat.keyword_table_.size());
  cat.keyword_bloom_.reserve(cat.keyword_table_.size());
  for (const std::string& word : cat.keyword_table_) {
    cat.keyword_fnv_.push_back(Fnv1a64(word));
    cat.keyword_bloom_.push_back(BloomKeyHash(word));
  }
  // The keyword table is final (bar InternKeyword, which appends without
  // relocating — keyword_table_ is a deque), so its lookup map can be built
  // now; views stay valid because the catalog is move-only.
  cat.keyword_ids_.reserve(cat.keyword_table_.size());
  for (KeywordId kw = 0; kw < cat.keyword_table_.size(); ++kw) {
    cat.keyword_ids_.emplace(cat.keyword_table_[kw], kw);
  }
  cat.postings_.resize(cat.keyword_table_.size());
  cat.files_.reserve(config.num_files);
  cat.filename_index_.reserve(config.num_files);

  // With 9000 keywords choose-3 there are ~1.2e11 possible filenames for 3000
  // files, so collisions are rare; still, retry to guarantee uniqueness.
  // filename_index_ doubles as the uniqueness check: files_ is reserved for
  // the full count, so entries (and the strings its views point into) never
  // relocate while the loop appends.
  constexpr int kMaxAttemptsPerFile = 1000;
  while (cat.files_.size() < config.num_files) {
    bool placed = false;
    for (int attempt = 0; attempt < kMaxAttemptsPerFile; ++attempt) {
      std::vector<size_t> kw_ids =
          rng->SampleIndices(config.keyword_pool_size, config.keywords_per_file);
      std::vector<std::string> kws;
      kws.reserve(kw_ids.size());
      for (size_t id : kw_ids) kws.push_back(pool.word(id));
      std::string name = Join(kws, " ");
      if (cat.filename_index_.contains(std::string_view{name})) continue;

      const FileId fid = static_cast<FileId>(cat.files_.size());
      FileEntry entry;
      entry.filename = std::move(name);
      entry.keywords.assign(kw_ids.begin(), kw_ids.end());
      entry.sorted_keywords = entry.keywords;
      std::sort(entry.sorted_keywords.begin(), entry.sorted_keywords.end());
      entry.set_fnv = cat.CanonicalSetFnv(entry.keywords);
      for (KeywordId kw : entry.keywords) cat.postings_[kw].push_back(fid);
      cat.files_.push_back(std::move(entry));
      cat.filename_index_.emplace(cat.files_.back().filename, fid);
      placed = true;
      break;
    }
    if (!placed) {
      return Status::Internal("could not generate a unique filename");
    }
  }
  return cat;
}

const std::string& FileCatalog::keyword(KeywordId kw) const {
  LOCAWARE_CHECK_LT(kw, keyword_table_.size());
  return keyword_table_[kw];
}

KeywordId FileCatalog::LookupKeyword(std::string_view word) const {
  auto it = keyword_ids_.find(word);
  if (it == keyword_ids_.end()) return kInvalidKeyword;
  return it->second;
}

uint64_t FileCatalog::KeywordFnv(KeywordId kw) const {
  LOCAWARE_CHECK_LT(kw, keyword_fnv_.size());
  return keyword_fnv_[kw];
}

KeyHash128 FileCatalog::KeywordBloomHash(KeywordId kw) const {
  LOCAWARE_CHECK_LT(kw, keyword_bloom_.size());
  return keyword_bloom_[kw];
}

const std::string& FileCatalog::filename(FileId f) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return files_[f].filename;
}

const std::vector<KeywordId>& FileCatalog::keywords(FileId f) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return files_[f].keywords;
}

const std::vector<KeywordId>& FileCatalog::sorted_keywords(FileId f) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return files_[f].sorted_keywords;
}

uint64_t FileCatalog::FileSetFnv(FileId f) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return files_[f].set_fnv;
}

bool FileCatalog::MatchesSorted(FileId f,
                                const std::vector<KeywordId>& sorted_query) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return ContainsAllIds(files_[f].sorted_keywords, sorted_query);
}

bool FileCatalog::Matches(FileId f, const std::vector<KeywordId>& sorted_query) const {
  // Unsorted queries would produce silent false negatives in the linear
  // merge; the check is two compares for the common 1..3-keyword query.
  LOCAWARE_CHECK(std::is_sorted(sorted_query.begin(), sorted_query.end()))
      << "Matches query must be sorted ascending";
  return MatchesSorted(f, sorted_query);
}

std::vector<FileId> FileCatalog::FindMatches(
    const std::vector<KeywordId>& sorted_query) const {
  LOCAWARE_CHECK(std::is_sorted(sorted_query.begin(), sorted_query.end()))
      << "FindMatches query must be sorted ascending";
  if (sorted_query.empty()) return {};
  // Seed from the rarest keyword's posting list, then verify the rest
  // (through the unchecked MatchesSorted — the query was validated once
  // above, not per candidate).
  const std::vector<FileId>* seed =
      SmallestPosting(sorted_query, [&](KeywordId kw) {
        LOCAWARE_CHECK_LT(kw, postings_.size());
        return &postings_[kw];
      });
  if (seed == nullptr) return {};  // some keyword in no filename: no match
  std::vector<FileId> out;
  for (FileId f : *seed) {
    if (MatchesSorted(f, sorted_query)) out.push_back(f);
  }
  return out;
}

FileId FileCatalog::LookupFilename(const std::string& filename) const {
  auto it = filename_index_.find(std::string_view{filename});
  if (it == filename_index_.end()) return kInvalidFile;
  return it->second;
}

KeywordId FileCatalog::InternKeyword(std::string_view word) {
  const KeywordId existing = LookupKeyword(word);
  if (existing != kInvalidKeyword) return existing;
  const KeywordId kw = static_cast<KeywordId>(keyword_table_.size());
  keyword_table_.emplace_back(word);
  const std::string& stored = keyword_table_.back();
  keyword_fnv_.push_back(Fnv1a64(stored));
  keyword_bloom_.push_back(BloomKeyHash(stored));
  postings_.emplace_back();  // no generated filename carries it
  keyword_ids_.emplace(stored, kw);
  return kw;
}

Result<std::vector<KeywordId>> FileCatalog::InternQueryKeywords(
    const std::vector<std::string>& words) const {
  std::vector<KeywordId> ids;
  ids.reserve(words.size());
  for (const std::string& word : words) {
    const KeywordId kw = LookupKeyword(word);
    if (kw == kInvalidKeyword) {
      return Status::InvalidArgument("unknown keyword: " + word);
    }
    ids.push_back(kw);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

uint64_t FileCatalog::CanonicalSetFnv(const std::vector<KeywordId>& kws) const {
  // The canonical preimage is the lexicographically sorted keywords joined
  // by ' ' (what the string era hashed), folded incrementally so the joined
  // string is never materialized. Runs at the edges (query submit, file
  // generation), not per hop.
  std::vector<std::string_view> sorted;
  sorted.reserve(kws.size());
  for (KeywordId kw : kws) sorted.push_back(keyword(kw));
  std::sort(sorted.begin(), sorted.end());
  uint64_t hash = kFnv1a64Init;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) hash = Fnv1a64Append(hash, " ");
    hash = Fnv1a64Append(hash, sorted[i]);
  }
  return hash;
}

std::string FileCatalog::KeywordsToString(const std::vector<KeywordId>& kws) const {
  std::string out;
  for (size_t i = 0; i < kws.size(); ++i) {
    if (i > 0) out += ' ';
    out += keyword(kws[i]);
  }
  return out;
}

size_t FileCatalog::KeywordWireBytes(KeywordId kw) const {
  return keyword(kw).size();
}

size_t FileCatalog::FilenameWireBytes(FileId f) const {
  return filename(f).size();
}

}  // namespace locaware::catalog
