#include "catalog/file_catalog.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace locaware::catalog {

Result<FileCatalog> FileCatalog::Generate(const CatalogConfig& config, Rng* rng) {
  if (config.num_files == 0) {
    return Status::InvalidArgument("num_files must be > 0");
  }
  if (config.keywords_per_file == 0 ||
      config.keywords_per_file > config.keyword_pool_size) {
    return Status::InvalidArgument("keywords_per_file out of range");
  }

  KeywordPool pool(config.keyword_pool_size, rng);

  FileCatalog cat;
  cat.keywords_per_file_ = config.keywords_per_file;
  cat.files_.reserve(config.num_files);

  // With 9000 keywords choose-3 there are ~1.2e11 possible filenames for 3000
  // files, so collisions are rare; still, retry to guarantee uniqueness.
  constexpr int kMaxAttemptsPerFile = 1000;
  while (cat.files_.size() < config.num_files) {
    bool placed = false;
    for (int attempt = 0; attempt < kMaxAttemptsPerFile; ++attempt) {
      std::vector<size_t> kw_ids =
          rng->SampleIndices(config.keyword_pool_size, config.keywords_per_file);
      std::vector<std::string> kws;
      kws.reserve(kw_ids.size());
      for (size_t id : kw_ids) kws.push_back(pool.word(id));
      std::string name = Join(kws, " ");
      if (cat.filename_index_.contains(name)) continue;

      const FileId fid = static_cast<FileId>(cat.files_.size());
      cat.filename_index_.emplace(name, fid);
      for (const std::string& kw : kws) cat.keyword_index_[kw].push_back(fid);
      cat.files_.push_back(FileEntry{std::move(name), std::move(kws)});
      placed = true;
      break;
    }
    if (!placed) {
      return Status::Internal("could not generate a unique filename");
    }
  }
  return cat;
}

const std::string& FileCatalog::filename(FileId f) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return files_[f].filename;
}

const std::vector<std::string>& FileCatalog::keywords(FileId f) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return files_[f].keywords;
}

bool FileCatalog::Matches(FileId f, const std::vector<std::string>& query_keywords) const {
  LOCAWARE_CHECK_LT(f, files_.size());
  return ContainsAllKeywords(files_[f].keywords, query_keywords);
}

std::vector<FileId> FileCatalog::FindMatches(
    const std::vector<std::string>& query_keywords) const {
  if (query_keywords.empty()) return {};
  // Seed from the rarest keyword's posting list, then verify the rest.
  const std::vector<FileId>* seed = nullptr;
  for (const std::string& kw : query_keywords) {
    auto it = keyword_index_.find(kw);
    if (it == keyword_index_.end()) return {};  // unknown keyword: no match
    if (seed == nullptr || it->second.size() < seed->size()) seed = &it->second;
  }
  std::vector<FileId> out;
  for (FileId f : *seed) {
    if (Matches(f, query_keywords)) out.push_back(f);
  }
  return out;
}

FileId FileCatalog::LookupFilename(const std::string& filename) const {
  auto it = filename_index_.find(filename);
  if (it == filename_index_.end()) return kInvalidFile;
  return it->second;
}

}  // namespace locaware::catalog
