#include "catalog/workload.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace locaware::catalog {

Result<QueryWorkload> QueryWorkload::Generate(const WorkloadConfig& config,
                                              const FileCatalog& catalog,
                                              size_t num_peers, Rng* rng) {
  if (num_peers == 0) return Status::InvalidArgument("num_peers must be > 0");
  if (config.query_rate_per_peer_s <= 0) {
    return Status::InvalidArgument("query rate must be > 0");
  }
  if (config.min_query_keywords == 0 ||
      config.min_query_keywords > config.max_query_keywords) {
    return Status::InvalidArgument("query keyword band invalid");
  }

  QueryWorkload wl;

  // Popularity rank -> file: a random permutation so that file ids and
  // popularity are uncorrelated.
  wl.rank_to_file_.resize(catalog.num_files());
  std::iota(wl.rank_to_file_.begin(), wl.rank_to_file_.end(), 0);
  rng->Shuffle(&wl.rank_to_file_);
  wl.file_to_rank_.resize(catalog.num_files());
  for (size_t rank = 0; rank < wl.rank_to_file_.size(); ++rank) {
    wl.file_to_rank_[wl.rank_to_file_[rank]] = static_cast<uint32_t>(rank);
  }

  ZipfDistribution zipf(catalog.num_files(), config.zipf_exponent);

  // Aggregate Poisson process: network-wide rate = per-peer rate * N, with a
  // uniformly random requester per arrival (equivalent to N independent
  // processes, cheaper to generate in one stream).
  const double network_rate =
      config.query_rate_per_peer_s * static_cast<double>(num_peers);
  double now_s = 0.0;
  wl.queries_.reserve(config.num_queries);
  for (uint64_t i = 0; i < config.num_queries; ++i) {
    now_s += rng->Exponential(network_rate);

    QueryEvent ev;
    ev.id = i;
    ev.requester = static_cast<PeerId>(rng->UniformInt(0, num_peers - 1));
    ev.target = wl.rank_to_file_[zipf.Sample(rng)];
    ev.submit_time = sim::FromSeconds(now_s);

    const auto& kws = catalog.keywords(ev.target);
    const size_t max_x = std::min(config.max_query_keywords, kws.size());
    const size_t min_x = std::min(config.min_query_keywords, max_x);
    const size_t x = static_cast<size_t>(rng->UniformInt(min_x, max_x));
    for (size_t pos : rng->SampleIndices(kws.size(), x)) {
      ev.keywords.push_back(kws[pos]);
    }
    wl.queries_.push_back(std::move(ev));
  }
  return wl;
}

FileId QueryWorkload::FileAtRank(size_t rank) const {
  LOCAWARE_CHECK_LT(rank, rank_to_file_.size())
      << "rank out of range (or workload loaded from trace)";
  return rank_to_file_[rank];
}

uint32_t QueryWorkload::RankOfFile(FileId file) const {
  if (file >= file_to_rank_.size()) return kUnknownRank;
  return file_to_rank_[file];
}

Status QueryWorkload::SaveTrace(const std::string& path,
                                const FileCatalog& catalog) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open trace for writing: " + path);
  out << "# locaware-trace-v1: id requester target submit_us keywords...\n";
  for (const QueryEvent& q : queries_) {
    out << q.id << ' ' << q.requester << ' ' << q.target << ' ' << q.submit_time;
    for (KeywordId kw : q.keywords) out << ' ' << catalog.keyword(kw);
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<QueryWorkload> QueryWorkload::LoadTrace(const std::string& path,
                                               FileCatalog* catalog) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open trace: " + path);
  // Parse and validate the entire trace before interning anything: a
  // rejected trace must not leave freshly minted ids behind in the caller's
  // catalog (that would silently fork the "same seed => same catalog"
  // reproducibility guarantee across runs that saw different bad inputs).
  struct ParsedEvent {
    QueryEvent ev;
    std::vector<std::string> words;
  };
  std::vector<ParsedEvent> parsed;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    ParsedEvent pe;
    long long submit = 0;
    if (!(fields >> pe.ev.id >> pe.ev.requester >> pe.ev.target >> submit)) {
      return Status::InvalidArgument("malformed trace line " + std::to_string(lineno));
    }
    pe.ev.submit_time = submit;
    std::string word;
    while (fields >> word) {
      // A repeated keyword would make the canonical set hash and the wire
      // byte charge ambiguous (set semantics vs multiset encoding); the edge
      // rejects it loudly rather than canonicalizing silently.
      if (std::find(pe.words.begin(), pe.words.end(), word) != pe.words.end()) {
        return Status::InvalidArgument("trace line " + std::to_string(lineno) +
                                       " repeats keyword '" + word + "'");
      }
      pe.words.push_back(std::move(word));
    }
    if (pe.words.empty()) {
      return Status::InvalidArgument("trace line " + std::to_string(lineno) +
                                     " has no keywords");
    }
    parsed.push_back(std::move(pe));
  }

  // The trace is valid: now intern. Minting an id for a word no generated
  // filename carries is deliberate — such a query runs and simply never
  // matches, as in the string era.
  QueryWorkload wl;
  wl.queries_.reserve(parsed.size());
  for (ParsedEvent& pe : parsed) {
    for (const std::string& w : pe.words) {
      pe.ev.keywords.push_back(catalog->InternKeyword(w));
    }
    wl.queries_.push_back(std::move(pe.ev));
  }
  return wl;
}

std::vector<std::vector<FileId>> AssignInitialFiles(size_t num_peers,
                                                    size_t files_per_peer,
                                                    const FileCatalog& catalog,
                                                    Rng* rng) {
  LOCAWARE_CHECK_LE(files_per_peer, catalog.num_files());
  std::vector<std::vector<FileId>> placement(num_peers);
  for (auto& shared : placement) {
    for (size_t idx : rng->SampleIndices(catalog.num_files(), files_per_peer)) {
      shared.push_back(static_cast<FileId>(idx));
    }
  }
  return placement;
}

}  // namespace locaware::catalog
