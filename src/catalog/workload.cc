#include "catalog/workload.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "catalog/binary_io.h"
#include "common/check.h"
#include "common/string_util.h"

namespace locaware::catalog {

Result<QueryWorkload> QueryWorkload::Generate(const WorkloadConfig& config,
                                              const FileCatalog& catalog,
                                              size_t num_peers, Rng* rng) {
  if (num_peers == 0) return Status::InvalidArgument("num_peers must be > 0");
  if (config.query_rate_per_peer_s <= 0) {
    return Status::InvalidArgument("query rate must be > 0");
  }
  if (config.min_query_keywords == 0 ||
      config.min_query_keywords > config.max_query_keywords) {
    return Status::InvalidArgument("query keyword band invalid");
  }

  QueryWorkload wl;

  // Popularity rank -> file: a random permutation so that file ids and
  // popularity are uncorrelated.
  wl.rank_to_file_.resize(catalog.num_files());
  std::iota(wl.rank_to_file_.begin(), wl.rank_to_file_.end(), 0);
  rng->Shuffle(&wl.rank_to_file_);
  wl.file_to_rank_.resize(catalog.num_files());
  for (size_t rank = 0; rank < wl.rank_to_file_.size(); ++rank) {
    wl.file_to_rank_[wl.rank_to_file_[rank]] = static_cast<uint32_t>(rank);
  }

  ZipfDistribution zipf(catalog.num_files(), config.zipf_exponent);

  // Aggregate Poisson process: network-wide rate = per-peer rate * N, with a
  // uniformly random requester per arrival (equivalent to N independent
  // processes, cheaper to generate in one stream).
  const double network_rate =
      config.query_rate_per_peer_s * static_cast<double>(num_peers);
  double now_s = 0.0;
  wl.queries_.reserve(config.num_queries);
  for (uint64_t i = 0; i < config.num_queries; ++i) {
    now_s += rng->Exponential(network_rate);

    QueryEvent ev;
    ev.id = i;
    ev.requester = static_cast<PeerId>(rng->UniformInt(0, num_peers - 1));
    ev.target = wl.rank_to_file_[zipf.Sample(rng)];
    ev.submit_time = sim::FromSeconds(now_s);

    const auto& kws = catalog.keywords(ev.target);
    const size_t max_x = std::min(config.max_query_keywords, kws.size());
    const size_t min_x = std::min(config.min_query_keywords, max_x);
    const size_t x = static_cast<size_t>(rng->UniformInt(min_x, max_x));
    for (size_t pos : rng->SampleIndices(kws.size(), x)) {
      ev.keywords.push_back(kws[pos]);
    }
    wl.queries_.push_back(std::move(ev));
  }
  return wl;
}

FileId QueryWorkload::FileAtRank(size_t rank) const {
  LOCAWARE_CHECK_LT(rank, rank_to_file_.size())
      << "rank out of range (or workload loaded from trace)";
  return rank_to_file_[rank];
}

uint32_t QueryWorkload::RankOfFile(FileId file) const {
  if (file >= file_to_rank_.size()) return kUnknownRank;
  return file_to_rank_[file];
}

Status QueryWorkload::SaveTrace(const std::string& path,
                                const FileCatalog& catalog) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open trace for writing: " + path);
  out << "# locaware-trace-v1: id requester target submit_us keywords...\n";
  for (const QueryEvent& q : queries_) {
    out << q.id << ' ' << q.requester << ' ' << q.target << ' ' << q.submit_time;
    for (KeywordId kw : q.keywords) out << ' ' << catalog.keyword(kw);
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<QueryWorkload> QueryWorkload::LoadTrace(const std::string& path,
                                               FileCatalog* catalog) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open trace: " + path);
  // Parse and validate the entire trace before interning anything: a
  // rejected trace must not leave freshly minted ids behind in the caller's
  // catalog (that would silently fork the "same seed => same catalog"
  // reproducibility guarantee across runs that saw different bad inputs).
  struct ParsedEvent {
    QueryEvent ev;
    std::vector<std::string> words;
  };
  std::vector<ParsedEvent> parsed;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    ParsedEvent pe;
    long long submit = 0;
    if (!(fields >> pe.ev.id >> pe.ev.requester >> pe.ev.target >> submit)) {
      return Status::InvalidArgument("malformed trace line " + std::to_string(lineno));
    }
    pe.ev.submit_time = submit;
    std::string word;
    while (fields >> word) {
      // A repeated keyword would make the canonical set hash and the wire
      // byte charge ambiguous (set semantics vs multiset encoding); the edge
      // rejects it loudly rather than canonicalizing silently.
      if (std::find(pe.words.begin(), pe.words.end(), word) != pe.words.end()) {
        return Status::InvalidArgument("trace line " + std::to_string(lineno) +
                                       " repeats keyword '" + word + "'");
      }
      pe.words.push_back(std::move(word));
    }
    if (pe.words.empty()) {
      return Status::InvalidArgument("trace line " + std::to_string(lineno) +
                                     " has no keywords");
    }
    parsed.push_back(std::move(pe));
  }

  // The trace is valid: now intern. Minting an id for a word no generated
  // filename carries is deliberate — such a query runs and simply never
  // matches, as in the string era.
  QueryWorkload wl;
  wl.queries_.reserve(parsed.size());
  for (ParsedEvent& pe : parsed) {
    for (const std::string& w : pe.words) {
      pe.ev.keywords.push_back(catalog->InternKeyword(w));
    }
    wl.queries_.push_back(std::move(pe.ev));
  }
  return wl;
}

namespace {

/// Fixed-width on-disk query record (BINARY_FORMAT.md). Field-by-field
/// little-endian encoding, 32 bytes per query.
struct TraceRecord {
  uint64_t id;
  uint64_t submit_us;
  uint32_t requester;
  uint32_t target;
  uint32_t kw_begin;  ///< first index into the keyword-ref array
  uint32_t kw_count;
};
constexpr size_t kTraceRecordBytes = 32;

}  // namespace

Status QueryWorkload::SaveBinary(const std::string& path,
                                 const FileCatalog& catalog) const {
  // String table in first-occurrence order over the queries' keywords: the
  // loader interns table entries in order, so it mints the same ids the text
  // loader would — the root of the text-vs-binary determinism contract.
  std::unordered_map<KeywordId, uint32_t> table_index;
  std::vector<KeywordId> table;
  std::vector<uint32_t> refs;
  std::vector<TraceRecord> records;
  records.reserve(queries_.size());
  for (const QueryEvent& q : queries_) {
    if (q.keywords.empty()) {
      return Status::InvalidArgument("query " + std::to_string(q.id) +
                                     " has no keywords; refusing to serialize");
    }
    TraceRecord rec;
    rec.id = q.id;
    rec.submit_us = static_cast<uint64_t>(q.submit_time);
    rec.requester = q.requester;
    rec.target = q.target;
    rec.kw_begin = static_cast<uint32_t>(refs.size());
    rec.kw_count = static_cast<uint32_t>(q.keywords.size());
    for (KeywordId kw : q.keywords) {
      auto [it, inserted] = table_index.emplace(kw, static_cast<uint32_t>(table.size()));
      if (inserted) table.push_back(kw);
      refs.push_back(it->second);
    }
    records.push_back(rec);
  }

  binio::Writer w;
  size_t string_bytes = 0;
  for (KeywordId kw : table) string_bytes += catalog.keyword(kw).size();
  w.U64(table.size());
  w.U64(string_bytes);
  w.U64(refs.size());
  w.U64(records.size());
  for (KeywordId kw : table) w.U32(static_cast<uint32_t>(catalog.keyword(kw).size()));
  for (KeywordId kw : table) {
    const std::string& word = catalog.keyword(kw);
    w.Bytes(word.data(), word.size());
  }
  for (uint32_t ref : refs) w.U32(ref);
  for (const TraceRecord& rec : records) {
    w.U64(rec.id);
    w.U64(rec.submit_us);
    w.U32(rec.requester);
    w.U32(rec.target);
    w.U32(rec.kw_begin);
    w.U32(rec.kw_count);
  }
  return binio::WriteFile(path, binio::kTraceMagic, w.buffer());
}

Result<QueryWorkload> QueryWorkload::LoadBinary(const std::string& path,
                                                FileCatalog* catalog) {
  auto file = binio::InputFile::Open(path);
  if (!file.ok()) return file.status();
  const binio::InputFile& in = file.ValueOrDie();
  binio::Reader r(in.data(), in.size(), path);
  LOCAWARE_RETURN_NOT_OK(r.ExpectHeader(binio::kTraceMagic, binio::kFormatVersion));

  auto num_strings = r.U64();
  if (!num_strings.ok()) return num_strings.status();
  auto string_bytes = r.U64();
  if (!string_bytes.ok()) return string_bytes.status();
  auto num_refs = r.U64();
  if (!num_refs.ok()) return num_refs.status();
  auto num_records = r.U64();
  if (!num_records.ok()) return num_records.status();

  // Exact-size check up front: the section sizes must tile the remainder of
  // the file, which rejects truncation and trailing garbage in one shot
  // (and caps the loop bounds below before any allocation is sized by them).
  const uint64_t strings = num_strings.ValueOrDie();
  const uint64_t bytes = string_bytes.ValueOrDie();
  const uint64_t refs = num_refs.ValueOrDie();
  const uint64_t records = num_records.ValueOrDie();
  const uint64_t avail = r.remaining();
  // Per-count bounds first, so the expected-size arithmetic below cannot
  // overflow on a hostile header (each term is at most `avail`).
  if (strings > avail / 4 || bytes > avail || refs > avail / 4 ||
      records > avail / kTraceRecordBytes) {
    return Status::InvalidArgument(path + ": header counts exceed file size");
  }
  const uint64_t expect =
      4 * strings + bytes + 4 * refs + kTraceRecordBytes * records;
  if (r.remaining() != expect) {
    return Status::InvalidArgument(
        path + ": section sizes disagree with file size (expected " +
        std::to_string(expect) + " payload bytes, have " +
        std::to_string(r.remaining()) + ")");
  }

  // Resolve the string table into views over the mapped bytes.
  std::vector<uint32_t> lengths(strings);
  for (uint64_t i = 0; i < strings; ++i) {
    lengths[i] = r.U32().ValueOrDie();  // sized by the exact-size check
  }
  uint64_t length_sum = 0;
  for (uint32_t len : lengths) length_sum += len;
  if (length_sum != bytes) {
    return Status::InvalidArgument(path + ": string lengths sum to " +
                                   std::to_string(length_sum) + ", header says " +
                                   std::to_string(bytes));
  }
  const uint8_t* chars = r.View(bytes).ValueOrDie();
  std::vector<std::string_view> words(strings);
  std::unordered_set<std::string_view> distinct;
  distinct.reserve(strings);
  size_t offset = 0;
  for (uint64_t i = 0; i < strings; ++i) {
    words[i] = std::string_view(reinterpret_cast<const char*>(chars) + offset,
                                lengths[i]);
    offset += lengths[i];
    if (words[i].empty()) {
      return Status::InvalidArgument(path + ": empty keyword in string table");
    }
    if (!distinct.insert(words[i]).second) {
      return Status::InvalidArgument(path + ": duplicate string-table entry '" +
                                     std::string(words[i]) + "'");
    }
  }

  const uint8_t* ref_bytes = r.View(4 * refs).ValueOrDie();
  auto ref_at = [ref_bytes](uint64_t i) {
    const uint8_t* p = ref_bytes + 4 * i;
    return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
  };
  for (uint64_t i = 0; i < refs; ++i) {
    if (ref_at(i) >= strings) {
      return Status::InvalidArgument(path + ": keyword ref " + std::to_string(ref_at(i)) +
                                     " out of range");
    }
  }

  // Validate every record fully before interning anything (same contract as
  // LoadTrace: a rejected trace must not mint ids into the caller's catalog).
  std::vector<TraceRecord> recs(records);
  for (uint64_t i = 0; i < records; ++i) {
    TraceRecord& rec = recs[i];
    rec.id = r.U64().ValueOrDie();
    rec.submit_us = r.U64().ValueOrDie();
    rec.requester = r.U32().ValueOrDie();
    rec.target = r.U32().ValueOrDie();
    rec.kw_begin = r.U32().ValueOrDie();
    rec.kw_count = r.U32().ValueOrDie();
    if (rec.kw_count == 0) {
      return Status::InvalidArgument(path + ": record " + std::to_string(i) +
                                     " has no keywords");
    }
    if (rec.kw_begin > refs || rec.kw_count > refs - rec.kw_begin) {
      return Status::InvalidArgument(path + ": record " + std::to_string(i) +
                                     " keyword range out of bounds");
    }
    if (rec.submit_us > static_cast<uint64_t>(INT64_MAX)) {
      return Status::InvalidArgument(path + ": record " + std::to_string(i) +
                                     " submit time overflows");
    }
    // Table entries are distinct strings, so ref equality is string
    // equality; queries are short, so the pairwise scan beats a hash set.
    std::unordered_set<uint32_t> big;
    for (uint32_t a = 0; a < rec.kw_count; ++a) {
      const uint32_t ref = ref_at(rec.kw_begin + a);
      bool repeated;
      if (rec.kw_count <= 8) {
        repeated = false;
        for (uint32_t b = 0; b < a && !repeated; ++b) {
          repeated = ref_at(rec.kw_begin + b) == ref;
        }
      } else {
        repeated = !big.insert(ref).second;
      }
      if (repeated) {
        return Status::InvalidArgument(path + ": record " + std::to_string(i) +
                                       " repeats keyword '" + std::string(words[ref]) +
                                       "'");
      }
    }
  }

  // Valid: intern the table in order (= first-occurrence order over the
  // queries, by the writer's construction), then assemble the stream.
  std::vector<KeywordId> ids(strings);
  for (uint64_t i = 0; i < strings; ++i) ids[i] = catalog->InternKeyword(words[i]);
  QueryWorkload wl;
  wl.queries_.reserve(records);
  for (const TraceRecord& rec : recs) {
    QueryEvent ev;
    ev.id = rec.id;
    ev.requester = rec.requester;
    ev.target = rec.target;
    ev.submit_time = static_cast<sim::SimTime>(rec.submit_us);
    ev.keywords.reserve(rec.kw_count);
    for (uint32_t k = 0; k < rec.kw_count; ++k) {
      ev.keywords.push_back(ids[ref_at(rec.kw_begin + k)]);
    }
    wl.queries_.push_back(std::move(ev));
  }
  return wl;
}

Result<QueryWorkload> QueryWorkload::LoadAuto(const std::string& path,
                                              FileCatalog* catalog) {
  auto is_binary = binio::FileStartsWith(path, binio::kTraceMagic);
  if (!is_binary.ok()) return is_binary.status();
  return is_binary.ValueOrDie() ? LoadBinary(path, catalog) : LoadTrace(path, catalog);
}

Result<uint64_t> PeekTraceQueryCount(const std::string& path) {
  auto is_binary = binio::FileStartsWith(path, binio::kTraceMagic);
  if (!is_binary.ok()) return is_binary.status();
  if (is_binary.ValueOrDie()) {
    auto file = binio::InputFile::Open(path);
    if (!file.ok()) return file.status();
    const binio::InputFile& in = file.ValueOrDie();
    binio::Reader r(in.data(), in.size(), path);
    LOCAWARE_RETURN_NOT_OK(r.ExpectHeader(binio::kTraceMagic, binio::kFormatVersion));
    for (int skip = 0; skip < 3; ++skip) {
      auto field = r.U64();
      if (!field.ok()) return field.status();
    }
    return r.U64();
  }
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open trace: " + path);
  uint64_t count = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') ++count;
  }
  return count;
}

std::vector<std::vector<FileId>> AssignInitialFiles(size_t num_peers,
                                                    size_t files_per_peer,
                                                    const FileCatalog& catalog,
                                                    Rng* rng) {
  LOCAWARE_CHECK_LE(files_per_peer, catalog.num_files());
  std::vector<std::vector<FileId>> placement(num_peers);
  for (auto& shared : placement) {
    for (size_t idx : rng->SampleIndices(catalog.num_files(), files_per_peer)) {
      shared.push_back(static_cast<FileId>(idx));
    }
  }
  return placement;
}

}  // namespace locaware::catalog
