#include "catalog/keyword_pool.h"

#include <unordered_set>

#include "common/check.h"

namespace locaware::catalog {

namespace {

constexpr char kConsonants[] = "bcdfgklmnprstvz";
constexpr char kVowels[] = "aeiou";

std::string MakeWord(Rng* rng) {
  const size_t syllables = static_cast<size_t>(rng->UniformInt(2, 4));
  std::string word;
  word.reserve(syllables * 2 + 1);
  for (size_t s = 0; s < syllables; ++s) {
    word += kConsonants[rng->UniformInt(0, sizeof(kConsonants) - 2)];
    word += kVowels[rng->UniformInt(0, sizeof(kVowels) - 2)];
  }
  return word;
}

}  // namespace

KeywordPool::KeywordPool(size_t size, Rng* rng) {
  LOCAWARE_CHECK_GT(size, 0u);
  // 15 consonants * 5 vowels = 75 two-letter syllables; 2-4 syllables give
  // ~75^2..75^4 combinations, comfortably above any realistic pool size.
  LOCAWARE_CHECK_LE(size, 1000000u) << "keyword pool too large for the word space";
  std::unordered_set<std::string> seen;
  words_.reserve(size);
  while (words_.size() < size) {
    std::string w = MakeWord(rng);
    if (seen.insert(w).second) words_.push_back(std::move(w));
  }
}

const std::string& KeywordPool::word(size_t i) const {
  LOCAWARE_CHECK_LT(i, words_.size());
  return words_[i];
}

}  // namespace locaware::catalog
