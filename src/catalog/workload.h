// Query workload generation (paper §5.1).
//
// Queries arrive as a Poisson process at 0.00083 queries/second/peer, target
// files by a Zipf popularity law, and carry 1..K keywords randomly chosen
// from the target filename. Workloads are generated up front (deterministic
// given a seed) and can be saved/loaded as text traces for replay.
#pragma once

#include <string>
#include <vector>

#include "catalog/file_catalog.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/sim_time.h"

namespace locaware::catalog {

/// One query submission.
struct QueryEvent {
  QueryId id = 0;
  PeerId requester = 0;
  FileId target = 0;                 ///< ground-truth file the query derives from
  std::vector<KeywordId> keywords;   ///< 1..K keywords of the target filename,
                                     ///< in sampled order (traces preserve it)
  sim::SimTime submit_time = 0;
};

/// Workload shape parameters.
struct WorkloadConfig {
  uint64_t num_queries = 5000;
  /// Zipf skew over file popularity ranks. The paper states "Zipf
  /// distribution" without the exponent; 1.0 matches classic Gnutella
  /// measurements (see EXPERIMENTS.md for sensitivity).
  double zipf_exponent = 1.0;
  /// Poisson arrival rate per peer (paper: 0.00083 q/s/peer).
  double query_rate_per_peer_s = 0.00083;
  /// Query keyword count X is uniform in [min, min(max, K)].
  size_t min_query_keywords = 1;
  size_t max_query_keywords = 3;
};

/// \brief Generated query stream plus the popularity mapping behind it.
class QueryWorkload {
 public:
  /// Empty workload; assign from Generate or LoadTrace before use.
  QueryWorkload() = default;

  /// Generates the full stream. Fails with InvalidArgument for empty
  /// networks/catalogs or a zero rate.
  static Result<QueryWorkload> Generate(const WorkloadConfig& config,
                                        const FileCatalog& catalog, size_t num_peers,
                                        Rng* rng);

  const std::vector<QueryEvent>& queries() const { return queries_; }

  /// File targeted by popularity rank r (0 = most popular).
  FileId FileAtRank(size_t rank) const;

  /// Popularity rank of a file, or kUnknownRank when the workload was loaded
  /// from a trace (the popularity mapping is not serialized).
  static constexpr uint32_t kUnknownRank = UINT32_MAX;
  uint32_t RankOfFile(FileId file) const;

  /// Serializes to a text trace (one line per query). Overwrites `path`.
  /// Traces carry keyword *strings* (they are an edge format), resolved
  /// through `catalog`.
  Status SaveTrace(const std::string& path, const FileCatalog& catalog) const;

  /// Reloads a trace written by SaveTrace, interning each keyword through
  /// `catalog`. Words the catalog has never seen are interned fresh (the
  /// query then legitimately matches nothing, as in the string era); a
  /// keyword repeated within one query is rejected (ambiguous under the
  /// canonical-set contract). The popularity mapping is not part of the
  /// trace; FileAtRank is unavailable on loaded workloads.
  static Result<QueryWorkload> LoadTrace(const std::string& path,
                                         FileCatalog* catalog);

  /// Serializes to the versioned binary trace format (BINARY_FORMAT.md):
  /// fixed-width id-keyed records plus an embedded keyword string table in
  /// first-occurrence order, so LoadBinary re-interns the exact ids a text
  /// round trip would. ~an order of magnitude faster to load than text.
  Status SaveBinary(const std::string& path, const FileCatalog& catalog) const;

  /// Loads a binary trace written by SaveBinary. Same interning semantics
  /// and same rejection rules as LoadTrace (nothing is minted on a rejected
  /// trace); corrupt/truncated/mismatched files return Status, never crash.
  static Result<QueryWorkload> LoadBinary(const std::string& path,
                                          FileCatalog* catalog);

  /// Sniffs the file's magic and dispatches to LoadBinary or LoadTrace, so
  /// every trace consumer accepts either format transparently.
  static Result<QueryWorkload> LoadAuto(const std::string& path, FileCatalog* catalog);

 private:
  std::vector<QueryEvent> queries_;
  std::vector<FileId> rank_to_file_;    // empty for loaded traces
  std::vector<uint32_t> file_to_rank_;  // inverse of rank_to_file_
};

/// Initial content placement: each peer shares `files_per_peer` distinct files
/// chosen uniformly from the catalog (paper: 3 of 3000). Returned as
/// per-peer file lists.
std::vector<std::vector<FileId>> AssignInitialFiles(size_t num_peers,
                                                    size_t files_per_peer,
                                                    const FileCatalog& catalog,
                                                    Rng* rng);

/// Query count of a trace file in either format without loading it (binary:
/// one header field; text: a line scan). Feeds event-queue capacity hints.
Result<uint64_t> PeekTraceQueryCount(const std::string& path);

}  // namespace locaware::catalog
