// Synthetic keyword vocabulary.
//
// The paper's workload draws filenames from a pool of 9000 keywords (§5.1).
// We generate pronounceable, unique, lowercase words ("runebo", "katima", …)
// so traces and debug output stay readable, and so the tokenization rules in
// common/string_util.h roundtrip them exactly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace locaware::catalog {

/// \brief Deterministic pool of unique keywords.
class KeywordPool {
 public:
  /// Generates `size` unique words using `rng`. Words are 4–9 letters,
  /// alternating consonant/vowel, lowercase ASCII only.
  KeywordPool(size_t size, Rng* rng);

  size_t size() const { return words_.size(); }
  const std::string& word(size_t i) const;
  const std::vector<std::string>& words() const { return words_; }

 private:
  std::vector<std::string> words_;
};

}  // namespace locaware::catalog
