// The shared-file universe: filenames, their keyword decomposition, and an
// inverted keyword index used as ground truth for query matching.
//
// Paper §5.1: 3000 files, each filename formed of 3 keywords drawn from a
// 9000-keyword pool. Matching rule (§3.1): a query is satisfied by any file
// whose filename contains *all* query keywords.
//
// The catalog is also the system's symbol authority (see common/types.h): it
// owns the only KeywordId/FileId <-> string tables, built once at Generate
// time, plus the derived per-symbol constants every hot path reuses instead
// of touching strings — FNV group hashes, 128-bit Bloom probe hashes, and
// wire byte lengths (the WireNames interface).
#pragma once

#include <cstddef>
#include <span>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.h"
#include "common/hash.h"
#include "common/keyword_set.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "common/wire_names.h"
#include "catalog/keyword_pool.h"

namespace locaware::catalog {

/// Shape of the synthetic catalog.
struct CatalogConfig {
  size_t num_files = 3000;
  size_t keyword_pool_size = 9000;
  size_t keywords_per_file = 3;
};

/// \brief Immutable catalog of files with an inverted keyword index.
class FileCatalog : public WireNames {
 public:
  /// Empty catalog; assign from Generate before use.
  FileCatalog() = default;

  // Move-only: the lookup maps hold string_views into the symbol tables, so
  // a copy would alias the source's storage. Moves keep the views valid (the
  // backing heap buffers transfer wholesale).
  FileCatalog(const FileCatalog&) = delete;
  FileCatalog& operator=(const FileCatalog&) = delete;
  FileCatalog(FileCatalog&&) = default;
  FileCatalog& operator=(FileCatalog&&) = default;

  /// Generates a catalog. Filenames are guaranteed unique (keyword sets are
  /// re-sampled on collision). Fails with InvalidArgument when the config is
  /// unsatisfiable (e.g. more keywords per file than the pool holds).
  static Result<FileCatalog> Generate(const CatalogConfig& config, Rng* rng);

  /// Serializes to the versioned binary catalog format (BINARY_FORMAT.md):
  /// the keyword string table in id order plus fixed-width per-file
  /// keyword-id rows. Filenames are not stored — they are the space-join of
  /// the keywords by construction (Internal error if one is not).
  Status SaveBinary(const std::string& path) const;

  /// Loads a catalog written by SaveBinary, rebuilding every derived
  /// constant (FNV/Bloom hashes, sorted sets, set hashes, postings, lookup
  /// maps) exactly as Generate would. Corrupt/truncated/version-mismatched
  /// files return Status, never crash.
  static Result<FileCatalog> LoadBinary(const std::string& path);

  size_t num_files() const { return files_.size(); }
  size_t keywords_per_file() const { return keywords_per_file_; }
  size_t num_keywords() const { return keyword_table_.size(); }

  // --- keyword symbol table -------------------------------------------------

  /// String form of an interned keyword.
  const std::string& keyword(KeywordId kw) const;

  /// Id of a keyword string, or kInvalidKeyword when the word is unknown.
  KeywordId LookupKeyword(std::string_view word) const;

  /// Precomputed FNV-1a of the keyword string (Dicas-Keys group hashing).
  uint64_t KeywordFnv(KeywordId kw) const;

  /// Precomputed 128-bit Murmur3 of the keyword string — the Bloom-filter
  /// probe hash Locaware inserts/checks without re-hashing strings. By value
  /// (16 bytes): a reference into the backing vector could dangle across a
  /// later InternKeyword reallocation.
  KeyHash128 KeywordBloomHash(KeywordId kw) const;

  // --- file symbol table ----------------------------------------------------

  /// Full filename, e.g. "runebo katima zuvalo".
  const std::string& filename(FileId f) const;

  /// The file's keyword ids in filename order.
  const std::vector<KeywordId>& keywords(FileId f) const;

  /// The file's keyword ids sorted ascending — the form every id-plane
  /// containment check consumes.
  const std::vector<KeywordId>& sorted_keywords(FileId f) const;

  /// Precomputed canonical keyword-set hash of the file: FNV-1a over the
  /// lexicographically sorted keywords joined by ' ' (identical to the
  /// string-era GroupOfFilename preimage). Group of the file = this mod M.
  uint64_t FileSetFnv(FileId f) const;

  /// True iff `f`'s keyword set contains every id of `sorted_query` (ids
  /// sorted ascending; duplicates tolerated). Validates the sort order.
  bool Matches(FileId f, std::span<const KeywordId> sorted_query) const;
  /// Braced-list convenience (C++20 spans take no initializer_list).
  bool Matches(FileId f, std::initializer_list<KeywordId> sorted_query) const {
    return Matches(f, std::span<const KeywordId>(sorted_query.begin(),
                                                 sorted_query.size()));
  }

  /// Matches without the is_sorted validation — for loops that check the
  /// same query repeatedly and validated it once at entry (FindMatches, the
  /// engine's per-file-store scans).
  bool MatchesSorted(FileId f, std::span<const KeywordId> sorted_query) const;

  /// All files matching the query, via the inverted index (posting-list
  /// intersection seeded from the rarest keyword). Empty when the query is
  /// empty. `sorted_query` ids must be sorted ascending.
  std::vector<FileId> FindMatches(std::span<const KeywordId> sorted_query) const;
  /// Braced-list convenience (C++20 spans take no initializer_list).
  std::vector<FileId> FindMatches(std::initializer_list<KeywordId> sorted_query) const {
    return FindMatches(std::span<const KeywordId>(sorted_query.begin(),
                                                  sorted_query.size()));
  }

  /// FileId of an exact filename, or kInvalidFile when absent.
  static constexpr FileId kInvalidFile = locaware::kInvalidFile;
  FileId LookupFilename(const std::string& filename) const;

  // --- edge helpers (strings <-> ids; trace I/O, tests, reports) -----------

  /// Interns one keyword string, minting a fresh id when the word is new
  /// (how trace loading admits queries for words no generated filename
  /// carries — they intern, then legitimately never match). Minted keywords
  /// get the same derived constants (FNV, Bloom hash, wire bytes) as
  /// generated ones; existing ids are never invalidated.
  KeywordId InternKeyword(std::string_view word);

  /// Interns a query's keyword strings: resolves each word, sorts ascending
  /// and deduplicates. Fails with InvalidArgument on an unknown word.
  Result<std::vector<KeywordId>> InternQueryKeywords(
      const std::vector<std::string>& words) const;

  /// Canonical keyword-set hash of an arbitrary id set: FNV-1a over the
  /// lexicographically sorted keyword strings joined by ' '. Equals
  /// FileSetFnv(f) when `kws` is f's full keyword set.
  uint64_t CanonicalSetFnv(std::span<const KeywordId> kws) const;

  /// Joins ids back into a display string ("kw1 kw2"), for reports/traces.
  std::string KeywordsToString(const std::vector<KeywordId>& kws) const;

  // --- WireNames ------------------------------------------------------------

  size_t KeywordWireBytes(KeywordId kw) const override;
  size_t FilenameWireBytes(FileId f) const override;

 private:
  struct FileEntry {
    std::string filename;
    std::vector<KeywordId> keywords;         // filename order
    std::vector<KeywordId> sorted_keywords;  // ascending ids
    uint64_t set_fnv = 0;                    // canonical keyword-set hash
  };

  size_t keywords_per_file_ = 0;
  /// KeywordId -> word. A deque, not a vector: InternKeyword appends after
  /// construction, and deque growth never relocates existing strings, so the
  /// string_views keyed into keyword_ids_ stay valid.
  std::deque<std::string> keyword_table_;
  std::vector<uint64_t> keyword_fnv_;        // KeywordId -> FNV-1a(word)
  std::vector<KeyHash128> keyword_bloom_;    // KeywordId -> Murmur3(word)
  /// Flat interning tables (single allocation each; heterogeneous lookup, so
  /// callers probe with whatever string type they hold). Pre-sized from the
  /// generation config or the binary header's counts, so loading never
  /// rehashes. The views key into keyword_table_ / files_ storage.
  FlatMap<std::string_view, KeywordId> keyword_ids_;  // word -> id
  std::vector<FileEntry> files_;
  std::vector<std::vector<FileId>> postings_;  // KeywordId -> resident FileIds
  FlatMap<std::string_view, FileId> filename_index_;
};

}  // namespace locaware::catalog
