// The shared-file universe: filenames, their keyword decomposition, and an
// inverted keyword index used as ground truth for query matching.
//
// Paper §5.1: 3000 files, each filename formed of 3 keywords drawn from a
// 9000-keyword pool. Matching rule (§3.1): a query is satisfied by any file
// whose filename contains *all* query keywords.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "catalog/keyword_pool.h"

namespace locaware::catalog {

/// Shape of the synthetic catalog.
struct CatalogConfig {
  size_t num_files = 3000;
  size_t keyword_pool_size = 9000;
  size_t keywords_per_file = 3;
};

/// \brief Immutable catalog of files with an inverted keyword index.
class FileCatalog {
 public:
  /// Empty catalog; assign from Generate before use.
  FileCatalog() = default;

  /// Generates a catalog. Filenames are guaranteed unique (keyword sets are
  /// re-sampled on collision). Fails with InvalidArgument when the config is
  /// unsatisfiable (e.g. more keywords per file than the pool holds).
  static Result<FileCatalog> Generate(const CatalogConfig& config, Rng* rng);

  size_t num_files() const { return files_.size(); }
  size_t keywords_per_file() const { return keywords_per_file_; }

  /// Full filename, e.g. "runebo katima zuvalo".
  const std::string& filename(FileId f) const;

  /// The file's keywords in filename order.
  const std::vector<std::string>& keywords(FileId f) const;

  /// True iff `f`'s filename contains all of `query_keywords`.
  bool Matches(FileId f, const std::vector<std::string>& query_keywords) const;

  /// All files matching the query, via the inverted index (posting-list
  /// intersection seeded from the rarest keyword). Empty when any keyword is
  /// unknown.
  std::vector<FileId> FindMatches(const std::vector<std::string>& query_keywords) const;

  /// FileId of an exact filename, or kInvalidFile when absent.
  static constexpr FileId kInvalidFile = UINT32_MAX;
  FileId LookupFilename(const std::string& filename) const;

 private:
  struct FileEntry {
    std::string filename;
    std::vector<std::string> keywords;
  };

  size_t keywords_per_file_ = 0;
  std::vector<FileEntry> files_;
  std::unordered_map<std::string, std::vector<FileId>> keyword_index_;
  std::unordered_map<std::string, FileId> filename_index_;
};

}  // namespace locaware::catalog
