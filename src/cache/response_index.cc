#include "cache/response_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/keyword_set.h"

namespace locaware::cache {

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kFifo:
      return "fifo";
    case EvictionPolicy::kRandom:
      return "random";
  }
  return "?";
}

ResponseIndex::ResponseIndex(const ResponseIndexConfig& config)
    : config_(config), eviction_rng_state_(config.eviction_seed | 1) {
  LOCAWARE_CHECK_GT(config.max_filenames, 0u);
  LOCAWARE_CHECK_GT(config.max_providers_per_file, 0u);
  // The tables draw their flat buffers from the same arena as the per-entry
  // spill vectors. Deliberately NOT pre-sized to max_filenames: an Entry slot
  // is fat (inline keyword/provider SmallVectors), the engine builds one
  // index per peer, and most peers' caches stay far below capacity — eager
  // full-capacity buffers cost hundreds of MB of cold arena pages at 10k
  // peers (measured 3x engine slowdown). Growth is amortized and the
  // discarded power-of-two buffers recycle through the arena's free lists.
  entries_.set_arena(config_.arena);
  inverted_.set_arena(config_.arena);
}

void ResponseIndex::AddPostings(FileId file, std::span<const KeywordId> keywords) {
  for (KeywordId kw : keywords) {
    auto [it, inserted] = inverted_.try_emplace(kw);
    if (inserted) it->second.set_arena(config_.arena);
    it->second.push_back(file);
  }
}

void ResponseIndex::RemovePostings(FileId file, std::span<const KeywordId> keywords) {
  for (KeywordId kw : keywords) {
    auto it = inverted_.find(kw);
    LOCAWARE_CHECK(it != inverted_.end());
    auto pos = std::find(it->second.begin(), it->second.end(), file);
    LOCAWARE_CHECK(pos != it->second.end());
    it->second.erase(pos);  // preserves posting order for determinism
    if (it->second.empty()) inverted_.erase(it);
  }
}

ResponseIndex::UpdateOutcome ResponseIndex::AddProvider(
    FileId file, std::span<const KeywordId> sorted_keywords,
    const ProviderEntry& entry, sim::SimTime now) {
  // The id-plane contract (common/types.h): keyword sets travel sorted and
  // deduplicated. A violation would corrupt containment checks or double-
  // post the file under one keyword silently, so fail loudly.
  LOCAWARE_CHECK(std::is_sorted(sorted_keywords.begin(), sorted_keywords.end()))
      << "AddProvider keywords must be sorted ascending";
  LOCAWARE_CHECK(std::adjacent_find(sorted_keywords.begin(), sorted_keywords.end()) ==
                 sorted_keywords.end())
      << "AddProvider keywords must be deduplicated";
  UpdateOutcome outcome;

  auto it = entries_.find(file);
  if (it == entries_.end()) {
    while (entries_.size() >= config_.max_filenames) EvictOne(&outcome.evicted);
    use_order_.push_back(file);
    Entry fresh;
    fresh.keywords.set_arena(config_.arena);
    fresh.providers.set_arena(config_.arena);
    fresh.keywords.assign(sorted_keywords.begin(), sorted_keywords.end());
    fresh.use_pos = std::prev(use_order_.end());
    it = entries_.try_emplace(file, std::move(fresh)).first;
    AddPostings(file, it->second.keywords);
    outcome.file_inserted = true;
  } else {
    Touch(file, &it->second);
  }

  Entry& e = it->second;
  // Refresh an existing provider: drop its old slot, re-insert at front.
  auto existing = std::find_if(e.providers.begin(), e.providers.end(),
                               [&](const ProviderEntry& p) {
                                 return p.provider == entry.provider;
                               });
  if (existing != e.providers.end()) e.providers.erase(existing);

  ProviderEntry stamped = entry;
  stamped.added_at = now;
  e.providers.insert(e.providers.begin(), stamped);
  if (e.providers.size() > config_.max_providers_per_file) {
    e.providers.pop_back();  // most-recent replaces oldest (§4.1.2)
  }
  outcome.provider_inserted = true;
  ++stats_.inserts;
  return outcome;
}

bool ResponseIndex::PruneStale(Entry* entry, sim::SimTime now) {
  if (config_.entry_ttl <= 0) return !entry->providers.empty();
  auto stale = std::remove_if(entry->providers.begin(), entry->providers.end(),
                              [&](const ProviderEntry& p) {
                                return now - p.added_at > config_.entry_ttl;
                              });
  stats_.expirations += static_cast<uint64_t>(entry->providers.end() - stale);
  entry->providers.erase(stale, entry->providers.end());
  return !entry->providers.empty();
}

ProviderVec ResponseIndex::LiveProviders(const Entry& entry, sim::SimTime now) const {
  if (config_.entry_ttl <= 0) return entry.providers;
  ProviderVec live;
  for (const ProviderEntry& p : entry.providers) {
    if (now - p.added_at <= config_.entry_ttl) live.push_back(p);
  }
  return live;
}

std::vector<ResponseIndex::Hit> ResponseIndex::LookupByKeywords(
    std::span<const KeywordId> sorted_query, sim::SimTime now) {
  LOCAWARE_CHECK(std::is_sorted(sorted_query.begin(), sorted_query.end()))
      << "LookupByKeywords query must be sorted ascending";
  ++stats_.lookups;
  // Lookups filter stale providers from what they return but never erase
  // entries: removal happens only in AddProvider (eviction) and ExpireStale
  // (sweep), so owners with derived structures (Locaware's counting Bloom
  // filter) see every removal.
  std::vector<Hit> hits;
  if (sorted_query.empty()) {
    // An empty query is satisfied by every file (vacuous containment), same
    // as the string-era semantics. Sorted file order, not table order: the
    // hit list feeds provider selection, so iteration order is observable.
    for (FileId file : Files()) {
      auto it = entries_.find(file);
      LOCAWARE_CHECK(it != entries_.end());
      ProviderVec live = LiveProviders(it->second, now);
      if (!live.empty()) hits.push_back(Hit{file, std::move(live)});
    }
  } else {
    // Seed from the rarest query keyword's posting list; any query keyword
    // with no posting means no entry can contain them all.
    const FilePostingVec* seed =
        SmallestPosting(sorted_query, [&](KeywordId kw) -> const FilePostingVec* {
          auto it = inverted_.find(kw);
          return it == inverted_.end() ? nullptr : &it->second;
        });
    if (seed != nullptr) {
      for (FileId file : *seed) {
        auto it = entries_.find(file);
        LOCAWARE_CHECK(it != entries_.end());
        if (!ContainsAllIds(it->second.keywords, sorted_query)) continue;
        ProviderVec live = LiveProviders(it->second, now);
        if (live.empty()) continue;
        hits.push_back(Hit{file, std::move(live)});
      }
    }
  }
  for (Hit& h : hits) {
    auto it = entries_.find(h.file);
    LOCAWARE_CHECK(it != entries_.end());
    Touch(h.file, &it->second);
  }
  if (!hits.empty()) ++stats_.hits;
  return hits;
}

std::optional<ResponseIndex::Hit> ResponseIndex::LookupFile(FileId file,
                                                            sim::SimTime now) {
  ++stats_.lookups;
  auto it = entries_.find(file);
  if (it == entries_.end()) return std::nullopt;
  ProviderVec live = LiveProviders(it->second, now);
  if (live.empty()) return std::nullopt;
  Touch(file, &it->second);
  ++stats_.hits;
  return Hit{file, std::move(live)};
}

std::vector<ResponseIndex::EvictedFile> ResponseIndex::ExpireStale(sim::SimTime now) {
  std::vector<EvictedFile> removed;
  if (config_.entry_ttl <= 0) return removed;
  // Collect-and-sort before acting: the table is unordered, so sweeping in
  // iteration order would let table layout leak into the removal report (and
  // through it into any order-sensitive consumer). Sorted keys make the
  // sweep a pure function of the index's *contents*, whatever container
  // backs it.
  for (FileId file : Files()) {
    auto it = entries_.find(file);
    LOCAWARE_CHECK(it != entries_.end());
    if (PruneStale(&it->second, now)) continue;
    removed.push_back(EvictedFile{file, std::move(it->second.keywords)});
    EraseIt(it, removed.back().keywords);
  }
  return removed;
}

std::vector<ResponseIndex::EvictedFile> ResponseIndex::RemoveProvider(
    PeerId provider) {
  std::vector<EvictedFile> removed;
  // Same collect-and-sort rule as ExpireStale: act in sorted key order, never
  // table order.
  for (FileId file : Files()) {
    auto it = entries_.find(file);
    LOCAWARE_CHECK(it != entries_.end());
    ProviderVec& providers = it->second.providers;
    auto pos = std::find_if(providers.begin(), providers.end(),
                            [&](const ProviderEntry& p) {
                              return p.provider == provider;
                            });
    if (pos == providers.end()) continue;
    providers.erase(pos);
    ++stats_.invalidations;
    if (providers.empty()) {
      removed.push_back(EvictedFile{file, std::move(it->second.keywords)});
      EraseIt(it, removed.back().keywords);
    }
  }
  return removed;
}

void ResponseIndex::EraseIt(EntryMap::iterator it) {
  EraseIt(it, it->second.keywords);
}

void ResponseIndex::EraseIt(EntryMap::iterator it,
                            std::span<const KeywordId> keywords) {
  RemovePostings(it->first, keywords);
  use_order_.erase(it->second.use_pos);
  entries_.erase(it);
}

bool ResponseIndex::Erase(FileId file) {
  auto it = entries_.find(file);
  if (it == entries_.end()) return false;
  EraseIt(it);
  return true;
}

bool ResponseIndex::Contains(FileId file) const { return entries_.contains(file); }

size_t ResponseIndex::TotalProviderCount() const {
  size_t total = 0;
  for (const auto& [file, entry] : entries_) total += entry.providers.size();
  return total;
}

std::vector<FileId> ResponseIndex::Files() const {
  std::vector<FileId> out;
  out.reserve(entries_.size());
  for (const auto& [file, entry] : entries_) out.push_back(file);
  // Sorted, not table order: callers act on this list (sweeps, reports), and
  // the backing table's layout must never leak into observable behavior.
  std::sort(out.begin(), out.end());
  return out;
}

const KeywordVec& ResponseIndex::KeywordsOf(FileId file) const {
  auto it = entries_.find(file);
  LOCAWARE_CHECK(it != entries_.end()) << "KeywordsOf(" << file << ") absent";
  return it->second.keywords;
}

void ResponseIndex::Touch(FileId /*file*/, Entry* entry) {
  if (config_.eviction != EvictionPolicy::kLru) return;  // FIFO/random ignore use
  // Splice relocates the existing node (no realloc, iterator stays valid) —
  // the LRU refresh on every lookup and insert is allocation-free.
  use_order_.splice(use_order_.end(), use_order_, entry->use_pos);
}

void ResponseIndex::EvictOne(std::vector<EvictedFile>* evicted) {
  LOCAWARE_CHECK(!entries_.empty());
  FileId victim = kInvalidFile;
  if (config_.eviction == EvictionPolicy::kRandom) {
    // xorshift64* steps a private generator; cheap and reproducible.
    eviction_rng_state_ ^= eviction_rng_state_ >> 12;
    eviction_rng_state_ ^= eviction_rng_state_ << 25;
    eviction_rng_state_ ^= eviction_rng_state_ >> 27;
    const uint64_t r = eviction_rng_state_ * 0x2545F4914F6CDD1DULL;
    size_t idx = static_cast<size_t>(r % entries_.size());
    auto it = use_order_.begin();
    std::advance(it, idx);
    victim = *it;
  } else {
    victim = use_order_.front();  // LRU and FIFO both pop the front
  }
  auto entry_it = entries_.find(victim);
  LOCAWARE_CHECK(entry_it != entries_.end());
  // Keywords are moved into the eviction report first, so posting removal
  // reads them from there (the entry's own vector is empty afterwards).
  evicted->push_back(EvictedFile{victim, std::move(entry_it->second.keywords)});
  EraseIt(entry_it, evicted->back().keywords);
  ++stats_.evictions;
}

}  // namespace locaware::cache
