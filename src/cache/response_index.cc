#include "cache/response_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace locaware::cache {

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kFifo:
      return "fifo";
    case EvictionPolicy::kRandom:
      return "random";
  }
  return "?";
}

ResponseIndex::ResponseIndex(const ResponseIndexConfig& config)
    : config_(config), eviction_rng_state_(config.eviction_seed | 1) {
  LOCAWARE_CHECK_GT(config.max_filenames, 0u);
  LOCAWARE_CHECK_GT(config.max_providers_per_file, 0u);
}

ResponseIndex::UpdateOutcome ResponseIndex::AddProvider(
    const std::string& filename, const std::vector<std::string>& filename_keywords,
    const ProviderEntry& entry, sim::SimTime now) {
  UpdateOutcome outcome;

  auto it = entries_.find(filename);
  if (it == entries_.end()) {
    while (entries_.size() >= config_.max_filenames) EvictOne(&outcome.evicted);
    use_order_.push_back(filename);
    Entry fresh;
    fresh.keywords = filename_keywords;
    fresh.use_pos = std::prev(use_order_.end());
    it = entries_.emplace(filename, std::move(fresh)).first;
    outcome.filename_inserted = true;
  } else {
    Touch(filename, &it->second);
  }

  Entry& e = it->second;
  // Refresh an existing provider: drop its old slot, re-insert at front.
  auto existing = std::find_if(e.providers.begin(), e.providers.end(),
                               [&](const ProviderEntry& p) {
                                 return p.provider == entry.provider;
                               });
  if (existing != e.providers.end()) e.providers.erase(existing);

  ProviderEntry stamped = entry;
  stamped.added_at = now;
  e.providers.insert(e.providers.begin(), stamped);
  if (e.providers.size() > config_.max_providers_per_file) {
    e.providers.pop_back();  // most-recent replaces oldest (§4.1.2)
  }
  outcome.provider_inserted = true;
  ++stats_.inserts;
  return outcome;
}

bool ResponseIndex::PruneStale(Entry* entry, sim::SimTime now) {
  if (config_.entry_ttl <= 0) return !entry->providers.empty();
  auto stale = std::remove_if(entry->providers.begin(), entry->providers.end(),
                              [&](const ProviderEntry& p) {
                                return now - p.added_at > config_.entry_ttl;
                              });
  stats_.expirations += static_cast<uint64_t>(entry->providers.end() - stale);
  entry->providers.erase(stale, entry->providers.end());
  return !entry->providers.empty();
}

std::vector<cache::ProviderEntry> ResponseIndex::LiveProviders(const Entry& entry,
                                                               sim::SimTime now) const {
  if (config_.entry_ttl <= 0) return entry.providers;
  std::vector<ProviderEntry> live;
  for (const ProviderEntry& p : entry.providers) {
    if (now - p.added_at <= config_.entry_ttl) live.push_back(p);
  }
  return live;
}

std::vector<ResponseIndex::Hit> ResponseIndex::LookupByKeywords(
    const std::vector<std::string>& query_keywords, sim::SimTime now) {
  ++stats_.lookups;
  // Lookups filter stale providers from what they return but never erase
  // entries: removal happens only in AddProvider (eviction) and ExpireStale
  // (sweep), so owners with derived structures (Locaware's counting Bloom
  // filter) see every removal.
  std::vector<Hit> hits;
  for (auto& [name, entry] : entries_) {
    if (!ContainsAllKeywords(entry.keywords, query_keywords)) continue;
    std::vector<ProviderEntry> live = LiveProviders(entry, now);
    if (live.empty()) continue;
    hits.push_back(Hit{name, std::move(live)});
  }
  for (Hit& h : hits) {
    auto it = entries_.find(h.filename);
    LOCAWARE_CHECK(it != entries_.end());
    Touch(h.filename, &it->second);
  }
  if (!hits.empty()) ++stats_.hits;
  return hits;
}

std::optional<ResponseIndex::Hit> ResponseIndex::LookupFilename(
    const std::string& filename, sim::SimTime now) {
  ++stats_.lookups;
  auto it = entries_.find(filename);
  if (it == entries_.end()) return std::nullopt;
  std::vector<ProviderEntry> live = LiveProviders(it->second, now);
  if (live.empty()) return std::nullopt;
  Touch(filename, &it->second);
  ++stats_.hits;
  return Hit{filename, std::move(live)};
}

std::vector<ResponseIndex::EvictedFile> ResponseIndex::ExpireStale(sim::SimTime now) {
  std::vector<EvictedFile> removed;
  if (config_.entry_ttl <= 0) return removed;
  for (auto& [name, entry] : entries_) {
    if (!PruneStale(&entry, now)) removed.push_back(EvictedFile{name, entry.keywords});
  }
  for (const EvictedFile& gone : removed) Erase(gone.filename);
  return removed;
}

bool ResponseIndex::Erase(const std::string& filename) {
  auto it = entries_.find(filename);
  if (it == entries_.end()) return false;
  use_order_.erase(it->second.use_pos);
  entries_.erase(it);
  return true;
}

bool ResponseIndex::Contains(const std::string& filename) const {
  return entries_.contains(filename);
}

size_t ResponseIndex::TotalProviderCount() const {
  size_t total = 0;
  for (const auto& [name, entry] : entries_) total += entry.providers.size();
  return total;
}

std::vector<std::string> ResponseIndex::Filenames() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

const std::vector<std::string>& ResponseIndex::KeywordsOf(
    const std::string& filename) const {
  auto it = entries_.find(filename);
  LOCAWARE_CHECK(it != entries_.end()) << "KeywordsOf(" << filename << ") absent";
  return it->second.keywords;
}

void ResponseIndex::Touch(const std::string& filename, Entry* entry) {
  if (config_.eviction != EvictionPolicy::kLru) return;  // FIFO/random ignore use
  use_order_.erase(entry->use_pos);
  use_order_.push_back(filename);
  entry->use_pos = std::prev(use_order_.end());
}

void ResponseIndex::EvictOne(std::vector<EvictedFile>* evicted) {
  LOCAWARE_CHECK(!entries_.empty());
  std::string victim;
  if (config_.eviction == EvictionPolicy::kRandom) {
    // xorshift64* steps a private generator; cheap and reproducible.
    eviction_rng_state_ ^= eviction_rng_state_ >> 12;
    eviction_rng_state_ ^= eviction_rng_state_ << 25;
    eviction_rng_state_ ^= eviction_rng_state_ >> 27;
    const uint64_t r = eviction_rng_state_ * 0x2545F4914F6CDD1DULL;
    size_t idx = static_cast<size_t>(r % entries_.size());
    auto it = use_order_.begin();
    std::advance(it, idx);
    victim = *it;
  } else {
    victim = use_order_.front();  // LRU and FIFO both pop the front
  }
  auto entry_it = entries_.find(victim);
  LOCAWARE_CHECK(entry_it != entries_.end());
  evicted->push_back(EvictedFile{victim, entry_it->second.keywords});
  Erase(victim);
  ++stats_.evictions;
}

}  // namespace locaware::cache
