// The response index (RI) — the per-peer cache of file indexes at the heart
// of all caching protocols in the paper (§3.2, §4.1).
//
// An index maps a file to one or more *providers* (peer address + locId +
// freshness timestamp). Locaware keeps several providers per file,
// most-recent-first ("the most recent pf entries replace the oldest ones",
// §4.1.2); Dicas keeps a single provider. Capacity is bounded in files
// ("each peer can control its cache size in function of its storage
// capacity") with pluggable eviction, and entries can expire after a lifetime
// (Markatos' observation that cached results go stale quickly in Gnutella).
//
// The index lives entirely on the id plane (common/types.h): entries are
// keyed by FileId and carry sorted KeywordId sets — no strings. Keyword
// search intersects per-keyword posting lists (KeywordId -> files) instead
// of scanning every entry with string compares. All three per-entry lists
// (keywords, providers, postings) are SmallVectors with inline storage sized
// for the common case, so steady-state insert/evict churn touches the heap
// only for outlier entries (bench/micro_cache pins the win).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <span>
#include <vector>

#include "common/flat_map.h"
#include "common/small_vector.h"
#include "common/types.h"
#include "sim/sim_time.h"

namespace locaware::cache {

/// One known provider of a cached file.
struct ProviderEntry {
  PeerId provider = kInvalidPeer;
  LocId loc_id = 0;
  sim::SimTime added_at = 0;
};

/// Inline-capacity lists sized for the steady state: the catalog generates 3
/// keywords per file, posting lists stay short under a 50-file cap, and the
/// provider cap defaults to 8 (Locaware's "several providers").
using KeywordVec = SmallVector<KeywordId, 4>;
using ProviderVec = SmallVector<ProviderEntry, 8>;
using FilePostingVec = SmallVector<FileId, 4>;

/// Which cached file to sacrifice when the index is full.
enum class EvictionPolicy {
  kLru,     ///< least-recently *used* (lookups and inserts refresh) — default
  kFifo,    ///< insertion order, ignores use
  kRandom,  ///< uniform random victim
};

const char* EvictionPolicyName(EvictionPolicy policy);

/// Capacity and lifetime knobs.
struct ResponseIndexConfig {
  /// Max distinct files cached (paper sizes Bloom filters for ~50).
  size_t max_filenames = 50;
  /// Max providers remembered per file (Locaware: several; Dicas: 1).
  size_t max_providers_per_file = 8;
  /// Provider entry lifetime; 0 disables expiry.
  sim::SimTime entry_ttl = 0;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  /// Seed for the kRandom eviction policy.
  uint64_t eviction_seed = 0x10caed5eedULL;
  /// Spill source for the per-entry keyword/provider/posting lists (null =
  /// global heap). The sharded engine passes the owning shard's arena; the
  /// index must then only be touched from that shard (it already must be —
  /// the class is not thread-safe).
  common::Arena* arena = nullptr;
};

/// \brief Bounded, keyword-searchable map FileId → provider list.
///
/// Not thread-safe; under the sharded engine each peer's index is owned by
/// the peer's shard.
class ResponseIndex {
 public:
  explicit ResponseIndex(const ResponseIndexConfig& config);

  /// A file removed from the index, with the keyword ids it carried — the
  /// owner needs them to delete the keywords from derived structures
  /// (Locaware's counting Bloom filter).
  struct EvictedFile {
    FileId file = kInvalidFile;
    KeywordVec keywords;  ///< sorted ascending
  };

  /// Outcome of AddProvider, reported so the owner can maintain derived
  /// structures (Locaware updates its counting Bloom filter from these).
  struct UpdateOutcome {
    bool file_inserted = false;            ///< a new file entered the index
    bool provider_inserted = false;        ///< a (new or refreshed) provider landed
    std::vector<EvictedFile> evicted;      ///< files removed to make room
  };

  /// Inserts or refreshes `entry` as a provider of `file`, whose keyword-id
  /// set is `sorted_keywords` (ascending; only read when the file is new). A
  /// provider already present is refreshed (timestamp + locId updated) and
  /// moved to most-recent; when the provider list is full the oldest provider
  /// is dropped. May evict whole files per the eviction policy.
  UpdateOutcome AddProvider(FileId file, std::span<const KeywordId> sorted_keywords,
                            const ProviderEntry& entry, sim::SimTime now);

  /// A matching cached file with its live providers (stale ones filtered).
  struct Hit {
    FileId file = kInvalidFile;
    ProviderVec providers;  ///< most recent first
  };

  /// All cached files whose keyword set contains every query keyword
  /// (`sorted_query` ascending). Counts as a "use" for LRU. Stale providers
  /// are filtered out of the result (but not erased — only AddProvider and
  /// ExpireStale remove state); files with no live provider do not match.
  std::vector<Hit> LookupByKeywords(std::span<const KeywordId> sorted_query,
                                    sim::SimTime now);

  /// Exact-file variant of LookupByKeywords.
  std::optional<Hit> LookupFile(FileId file, sim::SimTime now);

  /// Removes every provider older than the ttl (no-op when ttl = 0); returns
  /// the files that became empty and were removed, sorted by FileId — the
  /// sweep collects keys and processes them in sorted order, so the backing
  /// table's layout never leaks into the report.
  std::vector<EvictedFile> ExpireStale(sim::SimTime now);

  /// Invalidates every entry naming `provider` (a peer known to have left the
  /// network); returns the files that lost their last provider and were
  /// removed (sorted by FileId, like ExpireStale) — the owner mirrors those
  /// into derived structures (Locaware's counting Bloom filter), exactly like
  /// an expiry sweep.
  std::vector<EvictedFile> RemoveProvider(PeerId provider);

  /// Removes one file outright; returns whether it was present.
  bool Erase(FileId file);

  bool Contains(FileId file) const;
  size_t num_filenames() const { return entries_.size(); }
  size_t capacity() const { return config_.max_filenames; }
  /// Total provider entries across all files (the storage-cost metric for
  /// the Dicas-Keys duplication comparison).
  size_t TotalProviderCount() const;
  /// Cached files, sorted ascending (deterministic whatever table backs the
  /// index).
  std::vector<FileId> Files() const;
  /// Sorted keyword ids stored for a cached file. CHECK-fails if absent.
  const KeywordVec& KeywordsOf(FileId file) const;

  // --- lifetime counters (monotonic) ---
  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;           ///< lookups returning >= 1 file
    uint64_t inserts = 0;        ///< provider insertions (incl. refreshes)
    uint64_t evictions = 0;      ///< files evicted for capacity
    uint64_t expirations = 0;    ///< provider entries dropped for age
    uint64_t invalidations = 0;  ///< provider entries dropped via RemoveProvider
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    KeywordVec keywords;                  // sorted ascending
    ProviderVec providers;                // most recent first
    std::list<FileId>::iterator use_pos;  // position in use_order_
  };
  using EntryMap = FlatMap<FileId, Entry>;

  /// Moves a file to the most-recently-used position.
  void Touch(FileId file, Entry* entry);
  /// Evicts one victim per policy; appends it to *evicted.
  void EvictOne(std::vector<EvictedFile>* evicted);
  /// Drops stale providers of one entry; true if any provider survives.
  bool PruneStale(Entry* entry, sim::SimTime now);
  /// Non-mutating copy of an entry's live (non-stale) providers.
  ProviderVec LiveProviders(const Entry& entry, sim::SimTime now) const;
  /// Inverted-index maintenance around entry insertion/removal.
  void AddPostings(FileId file, std::span<const KeywordId> keywords);
  void RemovePostings(FileId file, std::span<const KeywordId> keywords);
  /// Removes the entry at `it` (postings + LRU slot + map entry) without a
  /// second map lookup. The keyword-taking overload is for callers that moved
  /// the entry's keywords into an eviction report first. Invalidates `it`.
  void EraseIt(EntryMap::iterator it);
  void EraseIt(EntryMap::iterator it, std::span<const KeywordId> keywords);

  ResponseIndexConfig config_;
  /// Flat tables (single allocation each, arena-bound like the per-entry
  /// vectors). Iteration is table order — every list the index exposes is
  /// sorted first (the collect-and-sort rule, see common/flat_map.h).
  EntryMap entries_;
  /// KeywordId -> files carrying it (posting order = insertion order). Sized
  /// by residency (max ~3 keywords x max_filenames keys), not by vocabulary.
  FlatMap<KeywordId, FilePostingVec> inverted_;
  /// LRU/FIFO order: front = next victim, back = most recent.
  std::list<FileId> use_order_;
  uint64_t eviction_rng_state_;
  Stats stats_;
};

}  // namespace locaware::cache
