// The response index (RI) — the per-peer cache of file indexes at the heart
// of all caching protocols in the paper (§3.2, §4.1).
//
// An index maps a filename to one or more *providers* (peer address + locId +
// freshness timestamp). Locaware keeps several providers per filename,
// most-recent-first ("the most recent pf entries replace the oldest ones",
// §4.1.2); Dicas keeps a single provider. Capacity is bounded in filenames
// ("each peer can control its cache size in function of its storage
// capacity") with pluggable eviction, and entries can expire after a lifetime
// (Markatos' observation that cached results go stale quickly in Gnutella).
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/sim_time.h"

namespace locaware::cache {

/// One known provider of a cached filename.
struct ProviderEntry {
  PeerId provider = kInvalidPeer;
  LocId loc_id = 0;
  sim::SimTime added_at = 0;
};

/// Which cached filename to sacrifice when the index is full.
enum class EvictionPolicy {
  kLru,     ///< least-recently *used* (lookups and inserts refresh) — default
  kFifo,    ///< insertion order, ignores use
  kRandom,  ///< uniform random victim
};

const char* EvictionPolicyName(EvictionPolicy policy);

/// Capacity and lifetime knobs.
struct ResponseIndexConfig {
  /// Max distinct filenames cached (paper sizes Bloom filters for ~50).
  size_t max_filenames = 50;
  /// Max providers remembered per filename (Locaware: several; Dicas: 1).
  size_t max_providers_per_file = 8;
  /// Provider entry lifetime; 0 disables expiry.
  sim::SimTime entry_ttl = 0;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  /// Seed for the kRandom eviction policy.
  uint64_t eviction_seed = 0x10caed5eedULL;
};

/// \brief Bounded, keyword-searchable map filename → provider list.
///
/// Not thread-safe (the simulator is single-threaded).
class ResponseIndex {
 public:
  explicit ResponseIndex(const ResponseIndexConfig& config);

  /// A filename removed from the index, with the keywords it carried — the
  /// owner needs them to delete the keywords from derived structures
  /// (Locaware's counting Bloom filter).
  struct EvictedFile {
    std::string filename;
    std::vector<std::string> keywords;
  };

  /// Outcome of AddProvider, reported so the owner can maintain derived
  /// structures (Locaware updates its counting Bloom filter from these).
  struct UpdateOutcome {
    bool filename_inserted = false;        ///< a new filename entered the index
    bool provider_inserted = false;        ///< a (new or refreshed) provider landed
    std::vector<EvictedFile> evicted;      ///< filenames removed to make room
  };

  /// Inserts or refreshes `entry` as a provider of `filename`. A provider
  /// already present is refreshed (timestamp + locId updated) and moved to
  /// most-recent; when the provider list is full the oldest provider is
  /// dropped. May evict whole filenames per the eviction policy.
  UpdateOutcome AddProvider(const std::string& filename,
                            const std::vector<std::string>& filename_keywords,
                            const ProviderEntry& entry, sim::SimTime now);

  /// A matching cached filename with its live providers (stale ones filtered).
  struct Hit {
    std::string filename;
    std::vector<ProviderEntry> providers;  ///< most recent first
  };

  /// All cached filenames whose keyword set contains every query keyword.
  /// Counts as a "use" for LRU. Stale providers are filtered out of the
  /// result (but not erased — only AddProvider and ExpireStale remove state);
  /// filenames with no live provider do not match.
  std::vector<Hit> LookupByKeywords(const std::vector<std::string>& query_keywords,
                                    sim::SimTime now);

  /// Exact-filename variant of LookupByKeywords.
  std::optional<Hit> LookupFilename(const std::string& filename, sim::SimTime now);

  /// Removes every provider older than the ttl (no-op when ttl = 0); returns
  /// the filenames that became empty and were removed.
  std::vector<EvictedFile> ExpireStale(sim::SimTime now);

  /// Removes one filename outright; returns whether it was present.
  bool Erase(const std::string& filename);

  bool Contains(const std::string& filename) const;
  size_t num_filenames() const { return entries_.size(); }
  size_t capacity() const { return config_.max_filenames; }
  /// Total provider entries across all filenames (the storage-cost metric for
  /// the Dicas-Keys duplication comparison).
  size_t TotalProviderCount() const;
  /// Cached filenames in no particular order.
  std::vector<std::string> Filenames() const;
  /// Keywords stored for a cached filename. CHECK-fails if absent.
  const std::vector<std::string>& KeywordsOf(const std::string& filename) const;

  // --- lifetime counters (monotonic) ---
  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;          ///< lookups returning >= 1 filename
    uint64_t inserts = 0;       ///< provider insertions (incl. refreshes)
    uint64_t evictions = 0;     ///< filenames evicted for capacity
    uint64_t expirations = 0;   ///< provider entries dropped for age
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::vector<std::string> keywords;
    std::vector<ProviderEntry> providers;      // most recent first
    std::list<std::string>::iterator use_pos;  // position in use_order_
  };

  /// Moves a filename to the most-recently-used position.
  void Touch(const std::string& filename, Entry* entry);
  /// Evicts one victim per policy; appends it to *evicted.
  void EvictOne(std::vector<EvictedFile>* evicted);
  /// Drops stale providers of one entry; true if any provider survives.
  bool PruneStale(Entry* entry, sim::SimTime now);
  /// Non-mutating copy of an entry's live (non-stale) providers.
  std::vector<ProviderEntry> LiveProviders(const Entry& entry, sim::SimTime now) const;

  ResponseIndexConfig config_;
  std::unordered_map<std::string, Entry> entries_;
  /// LRU/FIFO order: front = next victim, back = most recent.
  std::list<std::string> use_order_;
  uint64_t eviction_rng_state_;
  Stats stats_;
};

}  // namespace locaware::cache
