// Protocol comparison: the paper's full evaluation in miniature — every
// registered protocol on one workload, with the three figures' metrics side
// by side. The list comes from core::AllProtocolKinds(), so a protocol added
// to the registry (like PR 10's dht/hybrid) shows up here automatically.
//
// Run with no arguments for a ~2 s demo, or pass a query count:
//   ./build/examples/protocol_comparison 5000
#include <cstdio>
#include <cstdlib>
#include <future>
#include <vector>

#include "core/experiment.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const uint64_t num_queries = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;

  // One scaled-down §5.1 configuration per protocol; identical seed, so every
  // system faces the same topology, catalog and query stream.
  auto make_config = [&](core::ProtocolKind kind) {
    core::ExperimentConfig cfg = core::MakePaperConfig(kind, num_queries, /*seed=*/5);
    cfg.num_peers = 400;
    cfg.underlay.num_routers = 100;
    cfg.catalog.num_files = 1200;
    cfg.catalog.keyword_pool_size = 3600;
    cfg.workload.query_rate_per_peer_s = 0.005;
    return cfg;
  };

  std::vector<std::future<core::ExperimentResult>> futures;
  for (core::ProtocolKind kind : core::AllProtocolKinds()) {
    futures.push_back(std::async(std::launch::async, [&, kind] {
      auto r = core::RunExperiment(make_config(kind), /*num_buckets=*/6);
      if (!r.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", core::ProtocolKindName(kind),
                     r.status().ToString().c_str());
        std::exit(1);
      }
      return std::move(r).ValueOrDie();
    }));
  }

  std::vector<core::ExperimentResult> results;
  std::vector<metrics::LabeledSeries> series;
  for (auto& f : futures) {
    results.push_back(f.get());
    series.push_back({results.back().label, results.back().series});
  }

  std::printf("400 peers, 1200 files, %llu keyword queries, TTL 7\n\n",
              static_cast<unsigned long long>(num_queries));

  std::fputs(metrics::FormatFigureTable(series, metrics::Field::kMsgsPerQuery,
                                        "[Fig.3] search traffic (messages/query)")
                 .c_str(),
             stdout);
  std::printf("\n");
  std::fputs(metrics::FormatFigureTable(series, metrics::Field::kSuccessRate,
                                        "[Fig.4] success rate")
                 .c_str(),
             stdout);
  std::printf("\n");
  std::fputs(metrics::FormatFigureTable(series, metrics::Field::kDownloadMs,
                                        "[Fig.2] download distance (ms RTT)")
                 .c_str(),
             stdout);

  std::printf("\nsummary:\n%-12s %10s %12s %13s %11s\n", "protocol", "success",
              "msgs/query", "download ms", "loc-match");
  for (const auto& r : results) {
    std::printf("%-12s %9.1f%% %12.1f %13.1f %10.1f%%\n", r.label.c_str(),
                r.summary.success_rate * 100, r.summary.msgs_per_query,
                r.summary.avg_download_ms, r.summary.loc_match_rate * 100);
  }
  std::printf(
      "\nreading guide: Flooding buys its success rate with two orders of\n"
      "magnitude more traffic; Locaware keeps Dicas-level traffic, answers\n"
      "more queries than either Dicas variant, and downloads from closer\n"
      "providers — the paper's three claims on one screen. The dht/hybrid\n"
      "rows are PR 10's structured extensions: Chord lookups reach flooding-\n"
      "level success at a fraction of its traffic, and the hybrid adds\n"
      "Locaware's close-provider selection on top.\n");
  return 0;
}
