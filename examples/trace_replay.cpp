// Trace record & replay: reproducible workloads for regression hunting.
//
// Generates the paper's Zipf keyword workload, saves it as a text trace,
// reloads it, and verifies the replay is byte-identical — the mechanism the
// test suite and the benches rely on when comparing protocols on *exactly*
// the same query stream.
#include <cstdio>
#include <cstdlib>

#include "catalog/file_catalog.h"
#include "catalog/workload.h"
#include "common/rng.h"
#include "common/string_util.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const char* path = argc > 1 ? argv[1] : "/tmp/locaware_demo_trace.txt";

  // The paper's catalog: 3000 files, 3 keywords each, from a 9000-word pool.
  Rng rng(2026);
  auto catalog =
      std::move(catalog::FileCatalog::Generate(catalog::CatalogConfig{}, &rng))
          .ValueOrDie();

  catalog::WorkloadConfig wl_cfg;
  wl_cfg.num_queries = 500;
  Rng wl_rng(77);
  auto workload = catalog::QueryWorkload::Generate(wl_cfg, catalog, /*num_peers=*/1000,
                                                   &wl_rng);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n", workload.status().ToString().c_str());
    return 1;
  }
  const auto& original = workload.ValueOrDie();

  std::printf("generated %zu queries; first three:\n", original.queries().size());
  for (size_t i = 0; i < 3; ++i) {
    const auto& q = original.queries()[i];
    std::printf("  t=%8.1fs peer %3u asks for \"%s\" (target: \"%s\")\n",
                sim::ToSeconds(q.submit_time), q.requester,
                catalog.KeywordsToString(q.keywords).c_str(),
                catalog.filename(q.target).c_str());
  }

  const Status saved = original.SaveTrace(path, catalog);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("\nsaved trace to %s\n", path);

  auto reloaded = catalog::QueryWorkload::LoadTrace(path, &catalog);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  const auto& replay = reloaded.ValueOrDie();

  size_t mismatches = 0;
  for (size_t i = 0; i < original.queries().size(); ++i) {
    const auto& a = original.queries()[i];
    const auto& b = replay.queries()[i];
    if (a.id != b.id || a.requester != b.requester || a.target != b.target ||
        a.submit_time != b.submit_time || a.keywords != b.keywords) {
      ++mismatches;
    }
  }
  std::printf("replayed %zu queries, %zu mismatches\n", replay.queries().size(),
              mismatches);
  if (mismatches != 0) return 1;

  // Popularity sanity: the head of the Zipf distribution dominates.
  const FileId hottest = original.FileAtRank(0);
  size_t hot_count = 0;
  for (const auto& q : original.queries()) hot_count += (q.target == hottest);
  std::printf("\nZipf head check: most popular file (\"%s\") drew %zu/%zu queries\n",
              catalog.filename(hottest).c_str(), hot_count,
              original.queries().size());
  std::printf("trace replay is what lets every protocol face the exact same\n"
              "query stream in the figure benches.\n");
  return 0;
}
