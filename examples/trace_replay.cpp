// Trace record & replay: reproducible workloads for regression hunting.
//
// Generates the paper's Zipf keyword workload, saves it as a text trace,
// reloads it, and verifies the replay is byte-identical — the mechanism the
// test suite and the benches rely on when comparing protocols on *exactly*
// the same query stream. Then round-trips the same workload through the
// versioned binary format (BINARY_FORMAT.md) and times both loaders — the
// binary path is what makes 100k-1M-peer storms practical to re-load.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "catalog/file_catalog.h"
#include "catalog/workload.h"
#include "common/rng.h"
#include "common/string_util.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const char* path = argc > 1 ? argv[1] : "/tmp/locaware_demo_trace.txt";

  // The paper's catalog: 3000 files, 3 keywords each, from a 9000-word pool.
  Rng rng(2026);
  auto catalog =
      std::move(catalog::FileCatalog::Generate(catalog::CatalogConfig{}, &rng))
          .ValueOrDie();

  catalog::WorkloadConfig wl_cfg;
  wl_cfg.num_queries = 500;
  Rng wl_rng(77);
  auto workload = catalog::QueryWorkload::Generate(wl_cfg, catalog, /*num_peers=*/1000,
                                                   &wl_rng);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n", workload.status().ToString().c_str());
    return 1;
  }
  const auto& original = workload.ValueOrDie();

  std::printf("generated %zu queries; first three:\n", original.queries().size());
  for (size_t i = 0; i < 3; ++i) {
    const auto& q = original.queries()[i];
    std::printf("  t=%8.1fs peer %3u asks for \"%s\" (target: \"%s\")\n",
                sim::ToSeconds(q.submit_time), q.requester,
                catalog.KeywordsToString(q.keywords).c_str(),
                catalog.filename(q.target).c_str());
  }

  const Status saved = original.SaveTrace(path, catalog);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("\nsaved trace to %s\n", path);

  auto reloaded = catalog::QueryWorkload::LoadTrace(path, &catalog);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load: %s\n", reloaded.status().ToString().c_str());
    return 1;
  }
  const auto& replay = reloaded.ValueOrDie();

  size_t mismatches = 0;
  for (size_t i = 0; i < original.queries().size(); ++i) {
    const auto& a = original.queries()[i];
    const auto& b = replay.queries()[i];
    if (a.id != b.id || a.requester != b.requester || a.target != b.target ||
        a.submit_time != b.submit_time || a.keywords != b.keywords) {
      ++mismatches;
    }
  }
  std::printf("replayed %zu queries, %zu mismatches\n", replay.queries().size(),
              mismatches);
  if (mismatches != 0) return 1;

  // Popularity sanity: the head of the Zipf distribution dominates.
  const FileId hottest = original.FileAtRank(0);
  size_t hot_count = 0;
  for (const auto& q : original.queries()) hot_count += (q.target == hottest);
  std::printf("\nZipf head check: most popular file (\"%s\") drew %zu/%zu queries\n",
              catalog.filename(hottest).c_str(), hot_count,
              original.queries().size());

  // Binary round trip: same workload, versioned binary encoding. LoadBinary
  // interns through the same catalog, so the replay must match query for
  // query — the format boundary is invisible to the simulation.
  const std::string bin_path = std::string(path) + ".bin";
  const Status bin_saved = original.SaveBinary(bin_path, catalog);
  if (!bin_saved.ok()) {
    std::fprintf(stderr, "save binary: %s\n", bin_saved.ToString().c_str());
    return 1;
  }
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  auto text_again = catalog::QueryWorkload::LoadAuto(path, &catalog);
  const auto t1 = Clock::now();
  auto from_binary = catalog::QueryWorkload::LoadAuto(bin_path, &catalog);
  const auto t2 = Clock::now();
  if (!text_again.ok() || !from_binary.ok()) {
    std::fprintf(stderr, "binary replay failed\n");
    return 1;
  }
  size_t bin_mismatches = 0;
  const auto& bin_replay = from_binary.ValueOrDie();
  for (size_t i = 0; i < original.queries().size(); ++i) {
    const auto& a = original.queries()[i];
    const auto& b = bin_replay.queries()[i];
    if (a.id != b.id || a.requester != b.requester || a.target != b.target ||
        a.submit_time != b.submit_time || a.keywords != b.keywords) {
      ++bin_mismatches;
    }
  }
  const double text_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  const double bin_us = std::chrono::duration<double, std::micro>(t2 - t1).count();
  std::printf("\nbinary round trip (%s): %zu queries, %zu mismatches\n",
              bin_path.c_str(), bin_replay.queries().size(), bin_mismatches);
  std::printf("load time: text %.0f us, binary %.0f us (%.1fx)\n", text_us, bin_us,
              bin_us > 0 ? text_us / bin_us : 0.0);
  if (bin_mismatches != 0) return 1;

  std::printf("\ntrace replay is what lets every protocol face the exact same\n"
              "query stream in the figure benches; `locaware_cli convert`\n"
              "rewrites existing traces between the two formats.\n");
  return 0;
}
