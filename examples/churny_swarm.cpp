// Churny swarm: what index caching is worth when peers come and go.
//
// The paper keeps its headline experiments churn-free but §4.1.2 leans on
// Markatos' observation that cached indexes go stale fast in Gnutella, and
// prescribes short index lifetimes. This scenario turns churn on and compares
// Locaware with and without index expiry: stale cached providers turn into
// failed downloads (the requester picks a provider that has left), which the
// engine reports as "stale failures".
#include <cstdio>
#include <future>

#include "core/experiment.h"

namespace {

locaware::core::ExperimentConfig ChurnyConfig(bool with_expiry) {
  using namespace locaware;
  core::ExperimentConfig cfg =
      core::MakePaperConfig(core::ProtocolKind::kLocaware, /*num_queries=*/1500, 31);
  cfg.num_peers = 400;
  cfg.underlay.num_routers = 100;
  cfg.catalog.num_files = 1200;
  cfg.catalog.keyword_pool_size = 3600;
  cfg.workload.query_rate_per_peer_s = 0.005;

  // Sessions average 10 minutes, offline gaps 4 — an aggressive swarm.
  cfg.churn.enabled = true;
  cfg.churn.mean_session_s = 600;
  cfg.churn.mean_offline_s = 240;
  cfg.churn.rejoin_links = 3;

  // The knob under study: drop cached provider entries after 2 minutes.
  cfg.params.ri.entry_ttl = with_expiry ? 120 * sim::kSecond : 0;
  cfg.label = with_expiry ? "Locaware + expiry" : "Locaware, no expiry";
  return cfg;
}

struct Row {
  std::string label;
  locaware::metrics::Summary summary;
};

Row Run(bool with_expiry) {
  auto result = locaware::core::RunExperiment(ChurnyConfig(with_expiry), 5);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  auto r = std::move(result).ValueOrDie();
  return Row{r.label, r.summary};
}

}  // namespace

int main() {
  std::printf("400 peers under churn: mean session 10 min, mean offline 4 min\n");
  std::printf("1500 Zipf keyword queries against the Locaware protocol\n\n");

  auto without_f = std::async(std::launch::async, Run, false);
  auto with_f = std::async(std::launch::async, Run, true);
  const Row rows[] = {without_f.get(), with_f.get()};

  std::printf("%-20s %10s %14s %15s %14s\n", "variant", "success", "msgs/query",
              "stale failures", "download ms");
  for (const Row& row : rows) {
    std::printf("%-20s %9.1f%% %14.1f %15llu %14.1f\n", row.label.c_str(),
                row.summary.success_rate * 100, row.summary.msgs_per_query,
                static_cast<unsigned long long>(row.summary.stale_failures),
                row.summary.avg_download_ms);
  }

  std::printf(
      "\n'stale failures' counts queries whose every offered provider had\n"
      "already left the network — the cost of serving from a stale index.\n"
      "Expiry trades a little hit ratio for fresher answers, which is the\n"
      "trade-off §4.1.2 describes ('cached objects should be kept for a\n"
      "small amount of time to avoid sending stale responses').\n");
  return 0;
}
